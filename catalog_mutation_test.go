package trance_test

import (
	"context"
	"strings"
	"sync"
	"testing"

	"github.com/trance-go/trance"
)

// mutType is the flat dataset shape the mutation tests share.
func mutType() trance.Type {
	return trance.BagOf(trance.Tup("id", trance.IntT, "grp", trance.IntT, "val", trance.RealT))
}

func mutRow(id int64) trance.Tuple {
	return trance.Tuple{id, id % 5, float64(id) / 4}
}

func mutBag(n int) trance.Bag {
	b := make(trance.Bag, n)
	for i := range b {
		b[i] = mutRow(int64(i))
	}
	return b
}

// mutQuery builds `for x in D union if x.id == key then {⟨id, grp⟩}` fresh
// per use (compilation annotates ASTs in place).
func mutQuery(key int64) trance.Expr {
	return trance.ForIn("x", trance.V("D"),
		trance.IfThen(trance.EqOf(trance.P(trance.V("x"), "id"), trance.C(key)),
			trance.SingOf(trance.Record(
				"id", trance.P(trance.V("x"), "id"),
				"grp", trance.P(trance.V("x"), "grp")))))
}

func TestCatalogAppendDelete(t *testing.T) {
	cat := trance.NewCatalog()
	if err := cat.Register("D", mutType(), mutBag(10)); err != nil {
		t.Fatal(err)
	}
	st0, _ := cat.Stats("D")

	info, err := cat.Append("D", trance.Bag{mutRow(100), mutRow(101), mutRow(7)})
	if err != nil {
		t.Fatal(err)
	}
	if info.Rows != 13 {
		t.Fatalf("append: %+v", info)
	}
	st1, _ := cat.Stats("D")
	if st1.Rows != 13 || st1.Generation <= st0.Generation {
		t.Fatalf("append must recollect statistics under a new generation: %+v -> %+v", st0, st1)
	}

	// Empty appends and no-match deletes are no-ops: no generation churn.
	if _, err := cat.Append("D", nil); err != nil {
		t.Fatal(err)
	}
	if n, err := cat.Delete("D", "id", int64(999)); err != nil || n != 0 {
		t.Fatalf("no-match delete: %d, %v", n, err)
	}
	if st, _ := cat.Stats("D"); st.Generation != st1.Generation {
		t.Fatalf("no-op mutations must not bump the generation: %d -> %d", st1.Generation, st.Generation)
	}

	// Appended rows are validated against the registered element type.
	bad := trance.Bag{trance.Tuple{"x", int64(0), 0.5}}
	if _, err := cat.Append("D", bad); err == nil || !strings.Contains(err.Error(), "field id") {
		t.Fatalf("type-mismatched append must name the field: %v", err)
	}

	// Delete by key: both id=7 rows (the original and the appended one) go.
	n, err := cat.Delete("D", "id", int64(7))
	if err != nil || n != 2 {
		t.Fatalf("delete id=7: %d, %v", n, err)
	}
	if info, _ := cat.Info("D"); info.Rows != 11 {
		t.Fatalf("rows after delete: %+v", info)
	}
	if _, err := cat.Delete("D", "id", nil); err == nil {
		t.Fatal("NULL delete key must be rejected")
	}
	if _, err := cat.Delete("D", "nope", int64(1)); err == nil {
		t.Fatal("unknown delete column must be rejected")
	}

	// DeleteWhere with an arbitrary predicate.
	n, err = cat.DeleteWhere("D", func(v trance.Value) bool {
		return v.(trance.Tuple)[1].(int64) == 3 // grp == 3
	})
	if err != nil || n == 0 {
		t.Fatalf("DeleteWhere: %d, %v", n, err)
	}

	if _, err := cat.Append("ghost", trance.Bag{mutRow(1)}); err == nil {
		t.Fatal("append to unknown dataset must fail")
	}
	if _, err := cat.Delete("ghost", "id", int64(1)); err == nil {
		t.Fatal("delete on unknown dataset must fail")
	}
}

func TestCatalogCreateIndexAndListing(t *testing.T) {
	cat := trance.NewCatalog()
	// 200 rows, NDV(id)=200: the statistics layer auto-indexes id (and val).
	if err := cat.Register("D", mutType(), mutBag(200)); err != nil {
		t.Fatal(err)
	}
	byCol := func() map[string]trance.IndexInfo {
		out := map[string]trance.IndexInfo{}
		infos, ok := cat.Indexes("D")
		if !ok {
			t.Fatal("Indexes: dataset missing")
		}
		for _, ii := range infos {
			out[ii.Column] = ii
		}
		return out
	}
	idx := byCol()
	if ii := idx["id"]; !ii.Auto || ii.Kind != "hash+range" || ii.Keys != 200 || ii.Nulls != 0 {
		t.Fatalf("auto index on id: %+v", idx)
	}
	if _, auto := idx["grp"]; auto {
		t.Fatalf("grp (NDV 5) must not be auto-indexed: %+v", idx)
	}

	// Explicit build on the low-NDV column; kinds accumulate across calls.
	ii, err := cat.CreateIndex("D", "grp", "hash")
	if err != nil || ii.Kind != "hash" || ii.Auto || ii.Keys != 5 {
		t.Fatalf("create hash index: %+v, %v", ii, err)
	}
	ii, err = cat.CreateIndex("D", "grp", "range")
	if err != nil || ii.Kind != "hash+range" {
		t.Fatalf("kinds must accumulate: %+v, %v", ii, err)
	}

	if _, err := cat.CreateIndex("D", "nope", ""); err == nil {
		t.Fatal("unknown column must be rejected")
	}
	if _, err := cat.CreateIndex("ghost", "id", ""); err == nil {
		t.Fatal("unknown dataset must be rejected")
	}
	if _, err := cat.CreateIndex("D", "id", "btree"); err == nil {
		t.Fatal("unknown kind must be rejected")
	}

	// Append maintains every index incrementally; Delete rebuilds them.
	before := trance.IndexCounters()
	if _, err := cat.Append("D", trance.Bag{mutRow(500), mutRow(501)}); err != nil {
		t.Fatal(err)
	}
	if idx = byCol(); idx["id"].Rows != 202 || idx["id"].Keys != 202 || idx["grp"].Rows != 202 {
		t.Fatalf("indexes not maintained by append: %+v", idx)
	}
	mid := trance.IndexCounters()
	if mid.Maintained <= before.Maintained {
		t.Fatalf("append must extend indexes incrementally: %+v -> %+v", before, mid)
	}
	if n, err := cat.Delete("D", "id", int64(500)); err != nil || n != 1 {
		t.Fatalf("delete: %d, %v", n, err)
	}
	if idx = byCol(); idx["id"].Rows != 201 || idx["id"].Keys != 201 {
		t.Fatalf("indexes not rebuilt by delete: %+v", idx)
	}
	if after := trance.IndexCounters(); after.Rebuilt <= mid.Rebuilt {
		t.Fatalf("delete must rebuild indexes: %+v -> %+v", mid, after)
	}
}

// TestSessionMutationOracle is the catalog half of the differential oracle:
// one session with index scans enabled and one with the NoIndexScan ablation
// run the same point query across a sequence of appends and deletes, and
// after every mutation both must agree with the reference evaluator over a
// mirrored copy of the data — generation invalidation must never serve stale
// rows, a stale plan, or index results that differ from the full scan.
func TestSessionMutationOracle(t *testing.T) {
	cat := trance.NewCatalog()
	if err := cat.Register("D", mutType(), mutBag(200)); err != nil {
		t.Fatal(err)
	}
	mirror := append(trance.Bag{}, mutBag(200)...)

	ablated := trance.DefaultConfig()
	ablated.NoIndexScan = true
	sessions := map[string]*trance.SessionQuery{}
	for name, cfg := range map[string]*trance.Config{"indexed": nil, "ablated": &ablated} {
		sq, err := cat.NewSession(trance.SessionOptions{Config: cfg}).Prepare(mutQuery(7))
		if err != nil {
			t.Fatal(err)
		}
		sessions[name] = sq
	}

	strategies := []trance.Strategy{trance.Standard, trance.StandardSkew, trance.ShredUnshred, trance.Auto}
	env := trance.Env{"D": mutType()}
	check := func(step string) {
		t.Helper()
		oq := mutQuery(7)
		if _, err := trance.Check(oq, env); err != nil {
			t.Fatalf("%s: oracle query check: %v", step, err)
		}
		want := trance.LocalEval(oq, map[string]trance.Bag{"D": mirror})
		for name, sq := range sessions {
			for _, strat := range strategies {
				res, err := sq.Run(context.Background(), strat)
				if err != nil {
					t.Fatalf("%s: %s %s: %v", step, name, strat, err)
				}
				if got := collectBag(res); !trance.ValuesEqual(got, want) {
					t.Fatalf("%s: %s %s diverges from the oracle\n got: %s\nwant: %s",
						step, name, strat, trance.FormatValue(got), trance.FormatValue(want))
				}
			}
		}
	}

	before := trance.IndexCounters()
	check("initial")

	// Append a tail including a duplicate of the probed key.
	tail := trance.Bag{mutRow(7), mutRow(300), mutRow(301)}
	if _, err := cat.Append("D", tail); err != nil {
		t.Fatal(err)
	}
	mirror = append(mirror, tail...)
	check("after append")

	// Delete the probed key entirely.
	if _, err := cat.Delete("D", "id", int64(7)); err != nil {
		t.Fatal(err)
	}
	kept := mirror[:0:0]
	for _, r := range mirror {
		if r.(trance.Tuple)[0].(int64) != 7 {
			kept = append(kept, r)
		}
	}
	mirror = kept
	check("after delete")

	// Append the key back: the query must see it again.
	if _, err := cat.Append("D", trance.Bag{mutRow(7)}); err != nil {
		t.Fatal(err)
	}
	mirror = append(mirror, mutRow(7))
	check("after re-append")

	// The indexed session must actually have planned and executed index
	// scans, or the comparison above proved nothing about them.
	after := trance.IndexCounters()
	if after.PlannedScans <= before.PlannedScans || after.Scans <= before.Scans {
		t.Fatalf("no index scans planned/executed across the oracle steps: %+v -> %+v", before, after)
	}
	if text, err := sessions["indexed"].Prepared().Explain(trance.Standard); err != nil || !strings.Contains(text, "[index=") {
		t.Fatalf("indexed session explain lacks [index=…]: %v\n%s", err, text)
	}
	if text, err := sessions["ablated"].Prepared().Explain(trance.Standard); err != nil || strings.Contains(text, "[index=") {
		t.Fatalf("ablated session must not plan index scans: %v\n%s", err, text)
	}
}

// TestCatalogAppendRetargetsAuto is the regression test for stale statistics
// after a mutation: Append must recollect statistics under the new generation
// atomically with the data swap, so the Auto route follows the data — a
// uniform dataset that gains a heavily skewed tail re-routes to the
// skew-aware strategy on the very next Run of an already-prepared session
// query.
func TestCatalogAppendRetargetsAuto(t *testing.T) {
	dt := trance.BagOf(trance.Tup("k", trance.IntT, "v", trance.IntT))
	uniform := make(trance.Bag, 2000)
	for i := range uniform {
		uniform[i] = trance.Tuple{int64(i), int64(i)}
	}
	mkQuery := func() trance.Expr {
		return trance.ForIn("x", trance.V("D"),
			trance.SingOf(trance.Record("k", trance.P(trance.V("x"), "k"))))
	}
	cat := trance.NewCatalog()
	if err := cat.Register("D", dt, uniform); err != nil {
		t.Fatal(err)
	}
	sq, err := cat.NewSession(trance.SessionOptions{}).Prepare(mkQuery())
	if err != nil {
		t.Fatal(err)
	}
	route := func() trance.Strategy {
		t.Helper()
		res, err := sq.Run(context.Background(), trance.Auto)
		if err != nil {
			t.Fatal(err)
		}
		return res.Strategy
	}
	if got := route(); got != trance.Standard {
		t.Fatalf("uniform data routed to %s, want STANDARD", got)
	}
	st1, _ := cat.Stats("D")

	// A hot key carrying ~70% of a 3000-row tail pushes the heavy fraction
	// over the skew threshold.
	tail := make(trance.Bag, 3000)
	for i := range tail {
		k := int64(1 + i%97)
		if i%10 < 7 {
			k = 0
		}
		tail[i] = trance.Tuple{k, int64(i)}
	}
	if _, err := cat.Append("D", tail); err != nil {
		t.Fatal(err)
	}
	st2, _ := cat.Stats("D")
	if st2.Rows != 5000 || st2.Generation <= st1.Generation || st2.MaxHeavyFraction() < 0.15 {
		t.Fatalf("append did not recollect statistics: %+v -> %+v", st1, st2)
	}
	if got := route(); got != trance.StandardSkew {
		t.Fatalf("appended skew routed to %s, want STANDARD-SKEW (stale statistics?)", got)
	}
}

// TestCatalogAnalyzeAppendRace: Analyze recollections racing with mutations
// must never install statistics for a superseded generation — the mutation's
// own recollection is authoritative. Run with -race.
func TestCatalogAnalyzeAppendRace(t *testing.T) {
	cat := trance.NewCatalog()
	if err := cat.Register("D", mutType(), mutBag(50)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if w%2 == 0 {
					if _, err := cat.Append("D", trance.Bag{mutRow(int64(1000*w + i))}); err != nil {
						t.Errorf("append: %v", err)
						return
					}
				} else if _, err := cat.Analyze("D", trance.StatsOptions{}); err != nil {
					t.Errorf("analyze: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	info, _ := cat.Info("D")
	st, _ := cat.Stats("D")
	if info.Rows != 100 || st.Rows != 100 {
		t.Fatalf("final statistics stale: info %d rows, stats %d rows (want 100)", info.Rows, st.Rows)
	}
	idx, _ := cat.Indexes("D")
	for _, ii := range idx {
		if ii.Rows != 100 {
			t.Fatalf("index %s rows %d, want 100", ii.Column, ii.Rows)
		}
	}
}
