package trance_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/trance-go/trance"
)

func prepEnv() trance.Env {
	return trance.Env{"R": trance.BagOf(trance.Tup(
		"k", trance.IntT,
		"items", trance.BagOf(trance.Tup("v", trance.IntT)),
	))}
}

// prepQuery nests per row: ⟨k, big := {⟨v⟩ | v ∈ items, v > lo}⟩.
func prepQuery(lo int64) trance.Expr {
	return trance.ForIn("r", trance.V("R"),
		trance.SingOf(trance.Record(
			"k", trance.P(trance.V("r"), "k"),
			"big", trance.ForIn("it", trance.P(trance.V("r"), "items"),
				trance.IfThen(trance.GtOf(trance.P(trance.V("it"), "v"), trance.C(lo)),
					trance.SingOf(trance.V("it")))),
		)))
}

func prepInputs(shift int64) map[string]trance.Bag {
	items := func(vs ...int64) trance.Bag {
		b := make(trance.Bag, len(vs))
		for i, v := range vs {
			b[i] = trance.Tuple{v + shift}
		}
		return b
	}
	return map[string]trance.Bag{"R": {
		trance.Tuple{int64(1), items(5, 20, 35)},
		trance.Tuple{int64(2), items(50)},
		trance.Tuple{int64(3), trance.Bag{}},
	}}
}

func collectBag(res *trance.Result) trance.Bag {
	out := make(trance.Bag, 0)
	for _, r := range res.Output.CollectSorted() {
		out = append(out, trance.Tuple(r))
	}
	return out
}

// Prepare must compile each (query, strategy) exactly once, no matter how
// many goroutines race on first use, and later Runs must hit the cache.
func TestPrepareCompilesEachStrategyOnce(t *testing.T) {
	pq, err := trance.Prepare(prepQuery(7001), trance.PrepareOptions{Name: "compile-once", Env: prepEnv()})
	if err != nil {
		t.Fatal(err)
	}
	before := trance.PlanCacheStats()
	strategies := []trance.Strategy{trance.Standard, trance.Shred, trance.ShredUnshred}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			strat := strategies[g%len(strategies)]
			if _, err := pq.Run(context.Background(), prepInputs(0), strat); err != nil {
				errs <- fmt.Errorf("goroutine %d (%v): %w", g, strat, err)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	after := trance.PlanCacheStats()
	if got := after.Compiles - before.Compiles; got != int64(len(strategies)) {
		t.Fatalf("want exactly %d compilations (one per strategy), got %d", len(strategies), got)
	}
	// Re-running hits the cache without compiling.
	if _, err := pq.Run(context.Background(), prepInputs(0), trance.Standard); err != nil {
		t.Fatal(err)
	}
	final := trance.PlanCacheStats()
	if final.Compiles != after.Compiles {
		t.Fatalf("re-run recompiled: %d -> %d", after.Compiles, final.Compiles)
	}
	if final.Hits <= after.Hits-1 {
		t.Fatalf("re-run should hit the cache: hits %d -> %d", after.Hits, final.Hits)
	}
}

// ≥8 goroutines pushing different datasets through one PreparedQuery under
// several strategies must each get exactly the sequential result.
func TestPreparedQueryConcurrentRuns(t *testing.T) {
	pq, err := trance.Prepare(prepQuery(7002), trance.PrepareOptions{
		Name:       "concurrent-one",
		Env:        prepEnv(),
		Strategies: []trance.Strategy{trance.Standard, trance.Shred, trance.ShredUnshred},
	})
	if err != nil {
		t.Fatal(err)
	}
	strategies := []trance.Strategy{trance.Standard, trance.ShredUnshred}

	// Sequential oracle per dataset shift.
	want := map[int64]trance.Bag{}
	for shift := int64(0); shift < 4; shift++ {
		res, err := pq.Run(context.Background(), prepInputs(shift), trance.Standard)
		if err != nil {
			t.Fatal(err)
		}
		want[shift] = collectBag(res)
	}

	const goroutines = 12
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			shift := int64(g % 4)
			strat := strategies[g%len(strategies)]
			res, err := pq.Run(context.Background(), prepInputs(shift), strat)
			if err != nil {
				errs <- fmt.Errorf("goroutine %d (%v): %w", g, strat, err)
				return
			}
			if got := collectBag(res); !trance.ValuesEqual(got, want[shift]) {
				errs <- fmt.Errorf("goroutine %d (%v, shift %d): got %s want %s",
					g, strat, shift, trance.FormatValue(got), trance.FormatValue(want[shift]))
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// Distinct prepared queries sharing one explicit Pool run concurrently and
// still agree with their sequential results.
func TestDistinctPreparedQueriesSharePool(t *testing.T) {
	pool := trance.NewPool(4)
	var pqs []*trance.PreparedQuery
	for i, lo := range []int64{7103, 7110, 7125} {
		pq, err := trance.Prepare(prepQuery(lo), trance.PrepareOptions{
			Name: fmt.Sprintf("shared-pool-%d", i),
			Env:  prepEnv(),
			Pool: pool,
		})
		if err != nil {
			t.Fatal(err)
		}
		pqs = append(pqs, pq)
	}
	want := make([]trance.Bag, len(pqs))
	for i, pq := range pqs {
		res, err := pq.Run(context.Background(), prepInputs(7100), trance.ShredUnshred)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = collectBag(res)
	}

	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, len(pqs)*rounds)
	for round := 0; round < rounds; round++ {
		for i, pq := range pqs {
			wg.Add(1)
			go func(i int, pq *trance.PreparedQuery) {
				defer wg.Done()
				res, err := pq.Run(context.Background(), prepInputs(7100), trance.ShredUnshred)
				if err != nil {
					errs <- fmt.Errorf("query %d: %w", i, err)
					return
				}
				if got := collectBag(res); !trance.ValuesEqual(got, want[i]) {
					errs <- fmt.Errorf("query %d: got %s want %s",
						i, trance.FormatValue(got), trance.FormatValue(want[i]))
				}
			}(i, pq)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// A malformed query fails Prepare with an error; malformed data fails Run
// with an error (recovered panic) — neither crashes the process.
func TestPrepareAndRunDegradeToErrors(t *testing.T) {
	// Unknown input: typecheck error at Prepare.
	bad := trance.ForIn("x", trance.V("Missing"), trance.SingOf(trance.Record("a", trance.C(int64(1)))))
	if _, err := trance.Prepare(bad, trance.PrepareOptions{Name: "bad", Env: trance.Env{}}); err == nil {
		t.Fatal("Prepare must reject a query over unknown inputs")
	}

	// Well-typed query, corrupt data: the engine panic must come back as an
	// error from Run.
	env := trance.Env{"R": trance.BagOf(trance.Tup("a", trance.IntT))}
	q := trance.ForIn("x", trance.V("R"),
		trance.SingOf(trance.Record("b", trance.AddOf(trance.P(trance.V("x"), "a"), trance.C(int64(1))))))
	pq, err := trance.Prepare(q, trance.PrepareOptions{Name: "corrupt-data", Env: env})
	if err != nil {
		t.Fatal(err)
	}
	_, err = pq.Run(context.Background(), map[string]trance.Bag{"R": {trance.Tuple{int(7)}}}, trance.Standard)
	if err == nil {
		t.Fatal("corrupt input data must fail the run")
	}
	if !strings.Contains(err.Error(), "panic") {
		t.Fatalf("error should mention the recovered panic: %v", err)
	}
	// The prepared query stays healthy for good data afterwards.
	res, err := pq.Run(context.Background(), map[string]trance.Bag{"R": {trance.Tuple{int64(7)}}}, trance.Standard)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Count() != 1 {
		t.Fatalf("want 1 row, got %d", res.Output.Count())
	}
}

// OutputColumns reflects the route: nested schema for unshredding routes,
// label-bearing top schema for Shred.
func TestPreparedOutputColumns(t *testing.T) {
	pq, err := trance.Prepare(prepQuery(7003), trance.PrepareOptions{Name: "cols", Env: prepEnv()})
	if err != nil {
		t.Fatal(err)
	}
	std, err := pq.OutputColumns(trance.Standard)
	if err != nil {
		t.Fatal(err)
	}
	if len(std) != 2 || std[0].Name != "k" || std[1].Name != "big" {
		t.Fatalf("standard columns: %+v", std)
	}
	sh, err := pq.OutputColumns(trance.Shred)
	if err != nil {
		t.Fatal(err)
	}
	if len(sh) != 2 || sh[1].Name != "big" || sh[1].Type.String() != "Label" {
		t.Fatalf("shred top columns should carry a label: %+v", sh)
	}
}

// RunBound must agree with Run while converting/shredding the inputs only
// once per route.
func TestRunBoundMatchesRun(t *testing.T) {
	pq, err := trance.Prepare(prepQuery(7004), trance.PrepareOptions{Name: "bound", Env: prepEnv()})
	if err != nil {
		t.Fatal(err)
	}
	inputs := prepInputs(0)
	data := pq.BindData(inputs)
	for _, strat := range []trance.Strategy{trance.Standard, trance.Shred, trance.ShredUnshred} {
		want, err := pq.Run(context.Background(), inputs, strat)
		if err != nil {
			t.Fatalf("%v run: %v", strat, err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				got, err := pq.RunBound(context.Background(), data, strat)
				if err != nil {
					errs <- err
					return
				}
				if !trance.ValuesEqual(collectBag(got), collectBag(want)) {
					errs <- fmt.Errorf("%v: bound result differs from Run", strat)
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
}

// The compilation cache is bounded: over-filling it evicts the oldest
// entries instead of growing without limit, and evicted queries still work
// (they recompile on next use).
func TestPlanCacheBounded(t *testing.T) {
	defer trance.SetMaxPlanCacheEntriesForTest(2)()
	queries := []*trance.PreparedQuery{}
	for i, lo := range []int64{7201, 7202, 7203, 7204} {
		pq, err := trance.Prepare(prepQuery(lo), trance.PrepareOptions{
			Name:       fmt.Sprintf("bounded-%d", i),
			Env:        prepEnv(),
			Strategies: []trance.Strategy{trance.Standard},
		})
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, pq)
	}
	stats := trance.PlanCacheStats()
	if stats.Entries > 2 {
		t.Fatalf("cache exceeded its bound: %d entries", stats.Entries)
	}
	if stats.Evictions < 2 {
		t.Fatalf("want at least 2 evictions, got %d", stats.Evictions)
	}
	// The first (evicted) query still runs — it just recompiles.
	res, err := queries[0].Run(context.Background(), prepInputs(0), trance.Standard)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Count() != 3 {
		t.Fatalf("want 3 rows, got %d", res.Output.Count())
	}
}
