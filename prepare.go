package trance

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/trance-go/trance/internal/dataflow"
	"github.com/trance-go/trance/internal/index"
	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/plan"
	"github.com/trance-go/trance/internal/runner"
	"github.com/trance-go/trance/internal/trace"
	"github.com/trance-go/trance/internal/value"
)

// Pool is a bounded worker pool shareable across prepared queries, so a
// process serving many concurrent requests draws all partition tasks from
// one goroutine budget. Each in-flight request's own goroutine counts as a
// worker and runs overflow tasks inline; a pool of size w adds at most w-1
// helper goroutines across everything sharing it.
type Pool = dataflow.Pool

// NewPool creates a shared worker pool (0 = NumCPU).
func NewPool(workers int) *Pool { return dataflow.NewPool(workers) }

// defaultPool serves every PreparedQuery that was not given an explicit pool
// or a Config.Workers bound: all prepared queries of a process share the
// machine by default.
var defaultPool = dataflow.NewPool(0)

// poolFor resolves the worker pool for a prepared query, pipeline or
// session: the explicit override, else a private pool sized by
// Config.Workers when set, else the process-wide default.
func poolFor(cfg Config, override *Pool) *Pool {
	if override != nil {
		return override
	}
	if cfg.Workers > 0 {
		return NewPool(cfg.Workers)
	}
	return defaultPool
}

// PrepareOptions configures Prepare.
type PrepareOptions struct {
	// Name labels the prepared query in errors and service metrics.
	Name string
	// Env is the input environment the query is checked against (required).
	Env Env
	// Config sizes the simulated cluster; nil means DefaultConfig().
	Config *Config
	// Strategies to compile eagerly during Prepare. Strategies not listed
	// compile on first Run (still exactly once, through the same cache). Nil
	// compiles nothing eagerly.
	Strategies []Strategy
	// Pool overrides the worker pool the prepared query's runs draw from.
	// Nil uses a pool sized by Config.Workers when that is set, and the
	// process-wide default pool otherwise.
	Pool *Pool
}

// PreparedQuery is a query compiled once and evaluated many times. All
// methods are safe for concurrent use: any number of goroutines may Run the
// same PreparedQuery over different datasets at once; they share the
// per-strategy compiled plans and one bounded worker pool, while every run
// gets its own dataflow context and metrics.
type PreparedQuery struct {
	name    string
	query   Expr
	env     Env
	cfg     Config
	outType Type
	pool    *Pool
	fp      string // fingerprint of (query, env, compile-relevant config)

	// compileMu serializes strategy compilations of this query: compilation
	// type-annotates the shared AST in place, so concurrent first-Runs under
	// different strategies must not compile simultaneously. Cache hits do not
	// take the lock. It is a pointer so a session's generation refresh can
	// share one mutex across re-preparations of the same AST.
	compileMu *sync.Mutex
}

// Prepare typechecks the query and sets up compile-once evaluation: each
// (query, strategy) pair is compiled — NRC typecheck, standard or shredded
// compilation, plan pruning — exactly once and cached in a process-wide,
// thread-safe, fingerprint-keyed compilation cache, no matter how many
// goroutines Run concurrently. Compile- and run-time panics surface as
// errors, so a malformed query cannot crash a serving process.
//
// Prepare takes ownership of the query's AST (compilation annotates it in
// place); do not share one expression tree between concurrent Prepare calls.
func Prepare(query Expr, opts PrepareOptions) (*PreparedQuery, error) {
	if opts.Env == nil {
		return nil, fmt.Errorf("trance: Prepare requires PrepareOptions.Env")
	}
	cfg := DefaultConfig()
	if opts.Config != nil {
		cfg = *opts.Config
	}
	t, err := nrc.Check(query, opts.Env)
	if err != nil {
		if opts.Name != "" {
			return nil, fmt.Errorf("prepare %s: %w", opts.Name, err)
		}
		return nil, err
	}
	pq := &PreparedQuery{
		name:      opts.Name,
		query:     query,
		env:       opts.Env,
		cfg:       cfg,
		outType:   t,
		pool:      poolFor(cfg, opts.Pool),
		fp:        fingerprint(query, opts.Env, cfg),
		compileMu: &sync.Mutex{},
	}
	for _, s := range opts.Strategies {
		if _, err := pq.compiled(s); err != nil {
			return nil, fmt.Errorf("prepare %s (%s): %w", pq.label(), s, err)
		}
	}
	return pq, nil
}

func (pq *PreparedQuery) label() string {
	if pq.name != "" {
		return pq.name
	}
	return "query " + pq.fp[:12]
}

// Name returns the label given at Prepare time.
func (pq *PreparedQuery) Name() string { return pq.name }

// Fingerprint returns the hex digest identifying (query, environment,
// compile-relevant config) in the compilation cache. Strategy keys are
// derived from it.
func (pq *PreparedQuery) Fingerprint() string { return pq.fp }

// OutType returns the query's checked output type.
func (pq *PreparedQuery) OutType() Type { return pq.outType }

// Query returns the prepared NRC expression (shared AST — treat as
// read-only).
func (pq *PreparedQuery) Query() Expr { return pq.query }

// OutputColumn describes one column of a strategy's output dataset.
type OutputColumn struct {
	Name string
	Type Type
}

// OutputColumns reports the flat schema of the dataset Run returns under the
// strategy: the nested output schema for standard and unshredding routes,
// the materialized top-bag schema (labels in place of inner bags) for Shred.
// It compiles the strategy if needed.
func (pq *PreparedQuery) OutputColumns(strat Strategy) ([]OutputColumn, error) {
	cq, err := pq.compiled(strat)
	if err != nil {
		return nil, err
	}
	op := cq.OutputPlan()
	if op == nil {
		return nil, fmt.Errorf("%s (%s): no output plan", pq.label(), strat)
	}
	var cols []OutputColumn
	for _, c := range op.Columns() {
		cols = append(cols, OutputColumn{Name: c.Name, Type: c.Type})
	}
	return cols, nil
}

// OutputSchema is OutputColumns with the query's own field names: when the
// strategy's output is the nested value (standard routes and unshredding
// routes), the columns carry the checked output type's names and types
// instead of the plan's internal column labels (which prefix nested fields
// with compiler variables, e.g. "co.odate"). For Shred the materialized
// top-bag columns are returned unchanged. JSON encoders should prefer this.
func (pq *PreparedQuery) OutputSchema(strat Strategy) ([]OutputColumn, error) {
	cols, err := pq.OutputColumns(strat)
	if err != nil {
		return nil, err
	}
	return namedSchema(cols, pq.outType, strat), nil
}

// namedSchema maps a strategy's plan output columns to the query's own field
// names where the output is the nested value (see OutputSchema).
func namedSchema(cols []OutputColumn, outType Type, strat Strategy) []OutputColumn {
	if strat.IsShredded() && !(strat == ShredUnshred || strat == ShredUnshredSkew) {
		return cols
	}
	bt, ok := outType.(nrc.BagType)
	if !ok {
		return cols
	}
	if tt, ok := bt.Elem.(nrc.TupleType); ok && len(tt.Fields) == len(cols) {
		out := make([]OutputColumn, len(tt.Fields))
		for i, f := range tt.Fields {
			out[i] = OutputColumn{Name: f.Name, Type: f.Type}
		}
		return out
	}
	if len(cols) == 1 {
		return []OutputColumn{{Name: cols[0].Name, Type: bt.Elem}}
	}
	return cols
}

// ExplainOption configures PreparedQuery.Explain.
type ExplainOption func(*explainOptions)

type explainOptions struct {
	analyze bool
	inputs  map[string]Bag
	data    *PreparedData
}

// WithAnalyze makes Explain execute the query over the given inputs and
// annotate every plan operator with the observed runtime statistics — actual
// rows in/out, wall time, batch counts, index probe outcomes — beside the
// static cost annotations, followed by a per-join/per-scan q-error summary
// (EXPLAIN ANALYZE).
func WithAnalyze(inputs map[string]Bag) ExplainOption {
	return func(o *explainOptions) { o.analyze, o.inputs = true, inputs }
}

// WithAnalyzeBound is WithAnalyze over data bound with BindData: the serving
// path, where input conversion is cached and catalog indexes are bound.
func WithAnalyzeBound(data *PreparedData) ExplainOption {
	return func(o *explainOptions) { o.analyze, o.data = true, data }
}

// Explain compiles the strategy if needed and renders every plan of the
// compiled artifact before and after the rule-based optimizer pass
// (predicate pushdown, select fusion, constant folding), plus the
// optimizer's rule-hit counters — the text behind `trance query -explain`
// and the tranced GET /explain route. With WithAnalyze/WithAnalyzeBound the
// query is additionally executed and the plans are rendered with per-operator
// runtime statistics and a q-error summary.
func (pq *PreparedQuery) Explain(strat Strategy, opts ...ExplainOption) (string, error) {
	var o explainOptions
	for _, fn := range opts {
		fn(&o)
	}
	cq, err := pq.compiled(strat)
	if err != nil {
		return "", fmt.Errorf("%s (%s): %w", pq.label(), strat, err)
	}
	if !o.analyze {
		return cq.Explain(), nil
	}
	var res *Result
	if o.data != nil {
		res, err = pq.runBound(context.Background(), o.data, strat, true)
	} else {
		res, err = pq.run(context.Background(), o.inputs, strat, true)
	}
	if err != nil {
		return "", err
	}
	return cq.ExplainAnalyze(res), nil
}

// ExplainAnalyzeResult renders the analyzed plans of a Result produced by
// RunAnalyzed/RunBoundAnalyzed under the same strategy, without re-running.
func (pq *PreparedQuery) ExplainAnalyzeResult(strat Strategy, res *Result) (string, error) {
	cq, err := pq.compiled(strat)
	if err != nil {
		return "", fmt.Errorf("%s (%s): %w", pq.label(), strat, err)
	}
	return cq.ExplainAnalyze(res), nil
}

// Run evaluates the prepared query under the strategy over one set of
// inputs. The compiled plans are looked up in the compilation cache (and
// compiled on first use); execution runs on a fresh dataflow context drawing
// workers from the prepared query's shared pool. Compile errors and
// exec-time failures (including recovered panics) are returned as errors —
// when the returned Result is non-nil its Metrics and Elapsed are valid even
// on failure. Cancellation of ctx is honored between plan statements.
//
// Run converts the nested inputs into engine rows on every call
// (value-shredding them on shredded routes); when the same dataset is
// evaluated repeatedly, BindData + RunBound amortize that conversion too.
func (pq *PreparedQuery) Run(ctx context.Context, inputs map[string]Bag, strat Strategy) (*Result, error) {
	return pq.run(ctx, inputs, strat, false)
}

// RunAnalyzed is Run with EXPLAIN ANALYZE instrumentation: the execution
// collects per-operator runtime statistics into Result.Analyze, renderable
// with ExplainAnalyzeResult. The instrumented run is slightly slower; leave
// it off on hot paths.
func (pq *PreparedQuery) RunAnalyzed(ctx context.Context, inputs map[string]Bag, strat Strategy) (*Result, error) {
	return pq.run(ctx, inputs, strat, true)
}

func (pq *PreparedQuery) run(ctx context.Context, inputs map[string]Bag, strat Strategy, analyze bool) (*Result, error) {
	cq, err := pq.tracedCompile(ctx, strat)
	if err != nil {
		return nil, fmt.Errorf("%s (%s): %w", pq.label(), strat, err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opts, finish := execOptions(ctx, analyze)
	res := cq.ExecuteWithOpts(ctx, inputs, pq.runContext(strat), opts)
	finish(res)
	if res.Err != nil {
		return res, fmt.Errorf("%s (%s): %w", pq.label(), strat, res.Err)
	}
	return res, nil
}

// tracedCompile resolves the compiled artifact for the strategy, recording a
// compile span — with cache-hit/miss attribution and the resolved strategy —
// on the request trace when the context carries one.
func (pq *PreparedQuery) tracedCompile(ctx context.Context, strat Strategy) (*runner.Compiled, error) {
	sp := trace.From(ctx).Span().Child("compile")
	cq, compiled, err := pq.compiledTracked(strat)
	if compiled {
		sp.Set("cache", "miss")
	} else {
		sp.Set("cache", "hit")
	}
	if err == nil {
		sp.Set("strategy", cq.Strategy.String())
	}
	sp.End()
	return cq, err
}

// execOptions builds the runner ExecOptions for one evaluation: an Analysis
// collector when analyze is on, and an execute span when the context carries
// a trace. The returned finish ends the span and stamps the trace ID onto
// the result.
func execOptions(ctx context.Context, analyze bool) (runner.ExecOptions, func(*Result)) {
	var opts runner.ExecOptions
	if analyze {
		opts.Analysis = plan.NewAnalysis()
	}
	tr := trace.From(ctx)
	esp := tr.Span().Child("execute")
	opts.Span = esp
	return opts, func(res *Result) {
		esp.End()
		if res != nil && tr != nil {
			res.TraceID = tr.ID
		}
	}
}

func (pq *PreparedQuery) runContext(strat Strategy) *dataflow.Context {
	dctx := runner.NewRunContext(pq.cfg, strat)
	dctx.SharedPool = pq.pool
	return dctx
}

// PreparedData is a dataset bound to a prepared query: the conversion of
// nested values into engine rows — top-level rows for standard routes,
// value-shredded dictionary components for shredded routes — is computed
// once per route on first use and shared by every RunBound call and any
// number of goroutines. Bind the data once at load time and serve requests
// from it (what cmd/tranced does with its preloaded datasets).
type PreparedData struct {
	raw map[string]Bag

	// convert, when set, converts one named input (all its components);
	// sessions install a converter that shares converted rows per (variable,
	// dataset, route) across every query they prepare, so many ad-hoc
	// queries over one dataset hold one converted copy, not one each. Nil
	// falls back to the compiled query's own whole-map conversion.
	convert func(cq *runner.Compiled, name string, b Bag) (map[string][]dataflow.Row, error)

	// idxs are the secondary indexes of the bound datasets, keyed by variable
	// name (sessions fill them from the catalog). RunBound re-keys them for
	// the route and binds them so IndexScan plans resolve spans against them;
	// nil makes every IndexScan fall back to a full scan plus its predicate.
	idxs map[string]*index.Set

	mu      sync.Mutex
	byRoute map[bool]*preparedRows // IsShredded → converted rows
}

// indexesFor returns the bound secondary indexes keyed for the compilation's
// route (nil when the data has none).
func (pd *PreparedData) indexesFor(cq *runner.Compiled) map[string]*index.Set {
	if len(pd.idxs) == 0 {
		return nil
	}
	return cq.MapIndexes(pd.idxs)
}

type preparedRows struct {
	rows map[string][]dataflow.Row
	err  error
}

// BindData associates a dataset with the prepared query for repeated
// evaluation. The input bags are captured by reference and must not be
// mutated afterwards.
func (pq *PreparedQuery) BindData(inputs map[string]Bag) *PreparedData {
	return newPreparedData(inputs)
}

func newPreparedData(inputs map[string]Bag) *PreparedData {
	return &PreparedData{raw: inputs, byRoute: map[bool]*preparedRows{}}
}

func (pd *PreparedData) rowsFor(cq *runner.Compiled) (map[string][]dataflow.Row, error) {
	key := cq.Strategy.IsShredded()
	pd.mu.Lock()
	defer pd.mu.Unlock()
	if e, ok := pd.byRoute[key]; ok {
		return e.rows, e.err
	}
	var rows map[string][]dataflow.Row
	var err error
	if pd.convert == nil {
		rows, err = cq.InputRows(pd.raw)
	} else {
		rows = map[string][]dataflow.Row{}
		for name, b := range pd.raw {
			comps, cerr := pd.convert(cq, name, b)
			if cerr != nil {
				rows, err = nil, cerr
				break
			}
			for comp, rs := range comps {
				rows[comp] = rs
			}
		}
	}
	pd.byRoute[key] = &preparedRows{rows: rows, err: err}
	return rows, err
}

// RunBound is Run over data bound once with BindData: input conversion is
// cached per route, so the serving hot path does no per-request shredding.
// The data must have been bound by a query with the same input environment.
func (pq *PreparedQuery) RunBound(ctx context.Context, data *PreparedData, strat Strategy) (*Result, error) {
	return pq.runBound(ctx, data, strat, false)
}

// RunBoundAnalyzed is RunBound with EXPLAIN ANALYZE instrumentation (see
// RunAnalyzed).
func (pq *PreparedQuery) RunBoundAnalyzed(ctx context.Context, data *PreparedData, strat Strategy) (*Result, error) {
	return pq.runBound(ctx, data, strat, true)
}

func (pq *PreparedQuery) runBound(ctx context.Context, data *PreparedData, strat Strategy, analyze bool) (*Result, error) {
	cq, err := pq.tracedCompile(ctx, strat)
	if err != nil {
		return nil, fmt.Errorf("%s (%s): %w", pq.label(), strat, err)
	}
	bsp := trace.From(ctx).Span().Child("bind")
	rows, err := data.rowsFor(cq)
	bsp.End()
	if err != nil {
		return nil, fmt.Errorf("%s (%s): prepare inputs: %w", pq.label(), strat, err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opts, finish := execOptions(ctx, analyze)
	res := cq.ExecuteRowsOpts(ctx, rows, data.indexesFor(cq), pq.runContext(strat), opts)
	finish(res)
	if res.Err != nil {
		return res, fmt.Errorf("%s (%s): %w", pq.label(), strat, res.Err)
	}
	return res, nil
}

// compiled returns the cached compilation for the strategy, compiling it
// exactly once process-wide per (fingerprint, strategy).
func (pq *PreparedQuery) compiled(strat Strategy) (*runner.Compiled, error) {
	cq, _, err := pq.compiledTracked(strat)
	return cq, err
}

// compiledTracked is compiled plus whether this call performed the
// compilation (false = served from the plan cache) — the trace layer's
// cache-hit attribution.
func (pq *PreparedQuery) compiledTracked(strat Strategy) (*runner.Compiled, bool, error) {
	entry := planCache.entry(pq.fp + "|" + strat.String())
	ran := false
	entry.once.Do(func() {
		pq.compileMu.Lock()
		defer pq.compileMu.Unlock()
		planCache.compiles.Add(1)
		ran = true
		entry.cq, entry.err = runner.Compile(pq.query, pq.env, strat, pq.cfg)
	})
	return entry.cq, ran, entry.err
}

// fingerprint digests everything that affects compilation: the query's
// canonical surface syntax, the sorted environment, and the
// compile-relevant config knobs. Execution-only knobs (parallelism, worker
// and memory bounds) are deliberately excluded so configs differing only in
// cluster sizing share compiled plans.
func fingerprint(q Expr, env Env, cfg Config) string {
	h := sha256.New()
	fmt.Fprintln(h, nrc.Print(q))
	names := make([]string, 0, len(env))
	for n := range env {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(h, "%s:%s\n", n, env[n])
	}
	fmt.Fprintf(h, "de=%t prune=%t pushdown=%t vec=%t noidx=%t boxedex=%t\n",
		cfg.DomainElimination, !cfg.NoColumnPruning, !cfg.NoPredicatePushdown, !cfg.NoVectorize, cfg.NoIndexScan,
		cfg.BoxedExchange)
	// Cost-model inputs: the broadcast limit and auto thresholds change what
	// Annotate/ChooseStrategy compile, and the statistics digest ties cached
	// plans to the dataset generation they were costed against — a Drop +
	// re-register under the same name yields new statistics (new generation)
	// and therefore a new fingerprint, never a stale cached route.
	fmt.Fprintf(h, "cost=%t bcast=%d skewat=%g selat=%g\n",
		!cfg.NoCostModel, cfg.BroadcastLimit, cfg.AutoSkewFraction, cfg.AutoSelectivity)
	statNames := make([]string, 0, len(cfg.Stats))
	for n := range cfg.Stats {
		statNames = append(statNames, n)
	}
	sort.Strings(statNames)
	for _, n := range statNames {
		te := cfg.Stats[n]
		fmt.Fprintf(h, "stats %s: gen=%d rows=%d bytes=%d\n", n, te.Generation, te.Rows, te.Bytes)
		colNames := make([]string, 0, len(te.Cols))
		for cn := range te.Cols {
			colNames = append(colNames, cn)
		}
		sort.Strings(colNames)
		for _, cn := range colNames {
			ce := te.Cols[cn]
			fmt.Fprintf(h, "  col %s: ndv=%d heavy=%g min=%s max=%s idxh=%t idxo=%t\n",
				cn, ce.NDV, ce.HeavyFraction, value.Format(ce.Min), value.Format(ce.Max),
				ce.IndexHash, ce.IndexOrdered)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// cacheEntry is one (fingerprint, strategy) slot; once guarantees a single
// compilation even when many goroutines race on first use.
type cacheEntry struct {
	once sync.Once
	cq   *runner.Compiled
	err  error
}

// maxPlanCacheEntries bounds the compilation cache so a service preparing
// dynamically built queries (each a fresh fingerprint) cannot grow memory
// without limit; the oldest entry is evicted first and recompiles on next
// use. Long-lived PreparedQuery values are unaffected by eviction of their
// slots — they re-enter the cache on the next Run.
var maxPlanCacheEntries = 512

// compilationCache is the process-wide compilation cache behind Prepare.
type compilationCache struct {
	mu       sync.Mutex
	m        map[string]*cacheEntry
	order    []string // insertion order, for bounded eviction
	compiles atomic.Int64
	hits     atomic.Int64
	evicts   atomic.Int64
}

var planCache = &compilationCache{m: map[string]*cacheEntry{}}

func (c *compilationCache) entry(key string) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok {
		c.hits.Add(1)
		return e
	}
	for len(c.m) >= maxPlanCacheEntries && len(c.order) > 0 {
		delete(c.m, c.order[0])
		c.order = c.order[1:]
		c.evicts.Add(1)
	}
	e := &cacheEntry{}
	c.m[key] = e
	c.order = append(c.order, key)
	return e
}

// CacheStats reports the compilation cache's counters.
type CacheStats struct {
	// Entries is the number of cached (query, strategy) compilations.
	Entries int
	// Compiles counts compilations actually performed.
	Compiles int64
	// Hits counts lookups served from the cache without compiling.
	Hits int64
	// Evictions counts entries dropped by the cache size bound.
	Evictions int64
}

// PlanCacheStats returns a snapshot of the process-wide compilation cache.
func PlanCacheStats() CacheStats {
	planCache.mu.Lock()
	n := len(planCache.m)
	planCache.mu.Unlock()
	return CacheStats{
		Entries:   n,
		Compiles:  planCache.compiles.Load(),
		Hits:      planCache.hits.Load(),
		Evictions: planCache.evicts.Load(),
	}
}

// ResetPlanCache empties the compilation cache (counters included).
// In-flight runs keep their entries; subsequent first uses recompile.
func ResetPlanCache() {
	planCache.mu.Lock()
	planCache.m = map[string]*cacheEntry{}
	planCache.order = nil
	planCache.mu.Unlock()
	planCache.compiles.Store(0)
	planCache.hits.Store(0)
	planCache.evicts.Store(0)
}
