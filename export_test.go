package trance

// SetMaxPlanCacheEntriesForTest shrinks the compilation-cache bound and
// returns a restore func, so tests can exercise eviction without hundreds
// of queries.
func SetMaxPlanCacheEntriesForTest(n int) (restore func()) {
	old := maxPlanCacheEntries
	maxPlanCacheEntries = n
	return func() { maxPlanCacheEntries = old }
}
