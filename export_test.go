package trance

// SetMaxPlanCacheEntriesForTest shrinks the compilation-cache bound and
// returns a restore func, so tests can exercise eviction without hundreds
// of queries.
func SetMaxPlanCacheEntriesForTest(n int) (restore func()) {
	old := maxPlanCacheEntries
	maxPlanCacheEntries = n
	return func() { maxPlanCacheEntries = old }
}

// SessionSharedConversions reports how many (variable, dataset, route) input
// conversions the session's row cache holds — tests use it to assert that
// many queries over one dataset share a single converted copy.
func SessionSharedConversions(s *Session) int {
	s.rowMu.Lock()
	defer s.rowMu.Unlock()
	return len(s.rowCache)
}
