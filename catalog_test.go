package trance_test

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/trance-go/trance"
)

func TestCatalogRegisterAndResolve(t *testing.T) {
	cat := trance.NewCatalog()
	if err := cat.Register("R", prepEnv()["R"], prepInputs(0)["R"]); err != nil {
		t.Fatal(err)
	}
	info, ok := cat.Info("R")
	if !ok || info.Rows != 3 || info.Source != "go" || info.Bytes <= 0 {
		t.Fatalf("info: %+v", info)
	}
	sq, err := cat.NewSession(trance.SessionOptions{}).Prepare(prepQuery(8001))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sq.Run(context.Background(), trance.Standard)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Count() != 3 {
		t.Fatalf("want 3 rows, got %d", res.Output.Count())
	}
}

func TestCatalogRegisterValidates(t *testing.T) {
	cat := trance.NewCatalog()
	// Non-bag type.
	if err := cat.Register("X", trance.IntT, nil); err == nil {
		t.Fatal("non-bag type must be rejected")
	}
	// Value/type mismatch: int where string declared.
	bad := trance.Bag{trance.Tuple{int64(7)}}
	err := cat.Register("Y", trance.BagOf(trance.Tup("s", trance.StringT)), bad)
	if err == nil || !strings.Contains(err.Error(), "field s") {
		t.Fatalf("mismatch should name the field: %v", err)
	}
	// Duplicate name.
	good := trance.BagOf(trance.Tup("a", trance.IntT))
	if err := cat.Register("Z", good, trance.Bag{}); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register("Z", good, trance.Bag{}); err == nil {
		t.Fatal("duplicate registration must fail")
	}
	if !cat.Drop("Z") || cat.Drop("Z") {
		t.Fatal("Drop should remove exactly once")
	}
	if err := cat.Register("Z", good, trance.Bag{}); err != nil {
		t.Fatalf("re-register after Drop: %v", err)
	}
}

// TestCatalogDropInvalidatesStatistics is the regression test for stale
// cached routes: statistics (and the catalog generation stamping them) are
// part of the prepared-query fingerprint, so dropping a dataset and
// re-registering different data under the same name must re-plan — the Auto
// strategy picks its route from the NEW data, never from a cached compilation
// of the old registration.
func TestCatalogDropInvalidatesStatistics(t *testing.T) {
	dt := trance.BagOf(trance.Tup("k", trance.IntT, "v", trance.IntT))
	uniform := make(trance.Bag, 2000)
	for i := range uniform {
		uniform[i] = trance.Tuple{int64(i), int64(i)}
	}
	skewed := make(trance.Bag, 2000)
	for i := range skewed {
		k := int64(1 + i%97)
		if i%10 < 7 {
			k = 0
		}
		skewed[i] = trance.Tuple{k, int64(i)}
	}
	// Rebuilt per Prepare: compilation annotates ASTs in place.
	mkQuery := func() trance.Expr {
		return trance.ForIn("x", trance.V("D"),
			trance.SingOf(trance.Record("k", trance.P(trance.V("x"), "k"))))
	}

	cat := trance.NewCatalog()
	if err := cat.Register("D", dt, uniform); err != nil {
		t.Fatal(err)
	}
	s := cat.NewSession(trance.SessionOptions{})
	autoRoute := func() trance.Strategy {
		t.Helper()
		sq, err := s.Prepare(mkQuery())
		if err != nil {
			t.Fatal(err)
		}
		res, err := sq.Run(context.Background(), trance.Auto)
		if err != nil {
			t.Fatal(err)
		}
		return res.Strategy
	}

	if got := autoRoute(); got != trance.Standard {
		t.Fatalf("uniform data routed to %s, want STANDARD", got)
	}
	st1, ok := cat.Stats("D")
	if !ok || st1.Rows != 2000 || st1.MaxHeavyFraction() != 0 {
		t.Fatalf("uniform stats: %+v", st1)
	}

	if !cat.Drop("D") {
		t.Fatal("Drop failed")
	}
	if err := cat.Register("D", dt, skewed); err != nil {
		t.Fatal(err)
	}
	// Same name, same query, same session — but new data: a stale cached
	// compilation would still route to STANDARD here.
	if got := autoRoute(); got != trance.StandardSkew {
		t.Fatalf("re-registered skewed data routed to %s, want STANDARD-SKEW (stale cached statistics?)", got)
	}
	st2, ok := cat.Stats("D")
	if !ok || st2.MaxHeavyFraction() < 0.15 {
		t.Fatalf("skewed stats not refreshed: %+v", st2)
	}
	if st2.Generation <= st1.Generation {
		t.Fatalf("generation did not advance: %d -> %d", st1.Generation, st2.Generation)
	}

	// Analyze recollects in place (e.g. with a different sketch size) and
	// keeps the same generation.
	st3, err := cat.Analyze("D", trance.StatsOptions{SketchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if st3.Generation != st2.Generation || st3.Rows != 2000 {
		t.Fatalf("analyze: %+v", st3)
	}
}

func TestSessionPrepareUnknownDataset(t *testing.T) {
	cat := trance.NewCatalog()
	_, err := cat.NewSession(trance.SessionOptions{}).Prepare(prepQuery(8002))
	if err == nil || !strings.Contains(err.Error(), "no dataset") {
		t.Fatalf("missing dataset must be a descriptive error: %v", err)
	}
}

// A session binding maps a query variable to a differently named dataset.
func TestSessionBindings(t *testing.T) {
	cat := trance.NewCatalog()
	if err := cat.Register("warehouse/r-v2", prepEnv()["R"], prepInputs(0)["R"]); err != nil {
		t.Fatal(err)
	}
	s := cat.NewSession(trance.SessionOptions{Bindings: map[string]string{"R": "warehouse/r-v2"}})
	sq, err := s.Prepare(prepQuery(8003))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sq.Run(context.Background(), trance.ShredUnshred)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Count() != 3 {
		t.Fatalf("want 3 rows, got %d", res.Output.Count())
	}
}

// JSON-in → query → JSON-out: ingest NDJSON, query it through standard and
// shredded routes, and get the same JSON rows back.
func TestCatalogJSONEndToEnd(t *testing.T) {
	const ndjson = `
{"k": 1, "items": [{"v": 5}, {"v": 20}, {"v": 35}]}
{"k": 2, "items": [{"v": 50}]}
{"k": 3, "items": []}
`
	cat := trance.NewCatalog()
	info, err := cat.RegisterJSON("R", strings.NewReader(ndjson))
	if err != nil {
		t.Fatal(err)
	}
	want := trance.BagOf(trance.Tup("items", trance.BagOf(trance.Tup("v", trance.IntT)), "k", trance.IntT))
	if info.Type.String() != want.String() {
		t.Fatalf("inferred %s, want %s", info.Type, want)
	}
	// The inferred schema must agree with trance.Check on the identity query.
	q := trance.ForIn("x", trance.V("R"), trance.SingOf(trance.V("x")))
	ct, err := trance.Check(q, cat.Env())
	if err != nil {
		t.Fatal(err)
	}
	if ct.String() != info.Type.String() {
		t.Fatalf("Check says %s, catalog says %s", ct, info.Type)
	}

	sq, err := cat.NewSession(trance.SessionOptions{}).PrepareNamed("identity", q)
	if err != nil {
		t.Fatal(err)
	}
	var blobs []string
	for _, strat := range []trance.Strategy{trance.Standard, trance.SparkSQLStyle, trance.ShredUnshred, trance.StandardSkew, trance.ShredUnshredSkew} {
		rows, err := sq.RunJSON(context.Background(), strat)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		b, err := json.Marshal(rows)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, string(b))
	}
	for i := 1; i < len(blobs); i++ {
		if blobs[i] != blobs[0] {
			t.Fatalf("strategies disagree on JSON output:\n%s\nvs\n%s", blobs[0], blobs[i])
		}
	}
	if !strings.Contains(blobs[0], `"items":[{"v":5},{"v":20},{"v":35}]`) {
		t.Fatalf("unexpected JSON: %s", blobs[0])
	}
}

// Session queries are generation-aware: while a referenced dataset is
// dropped they keep serving their last snapshot, and once a dataset is
// (re-)registered under the name the next Run re-resolves to it — never
// serving stale rows after a catalog mutation.
func TestSessionFollowsCatalogGenerations(t *testing.T) {
	cat := trance.NewCatalog()
	if err := cat.Register("R", prepEnv()["R"], prepInputs(0)["R"]); err != nil {
		t.Fatal(err)
	}
	sq, err := cat.NewSession(trance.SessionOptions{}).Prepare(prepQuery(8004))
	if err != nil {
		t.Fatal(err)
	}
	before, err := sq.Run(context.Background(), trance.Standard)
	if err != nil {
		t.Fatal(err)
	}

	// Dropped with no replacement: the query keeps serving its snapshot.
	cat.Drop("R")
	during, err := sq.Run(context.Background(), trance.Standard)
	if err != nil {
		t.Fatal(err)
	}
	if !trance.ValuesEqual(collectBag(before), collectBag(during)) {
		t.Fatal("query over a dropped dataset must keep serving its snapshot")
	}

	// Re-registered under the same name: the next Run serves the new data.
	if err := cat.Register("R", prepEnv()["R"], trance.Bag{}); err != nil {
		t.Fatal(err)
	}
	after, err := sq.Run(context.Background(), trance.Standard)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(collectBag(after)); got != 0 {
		t.Fatalf("re-registered empty dataset served %d rows; session must re-resolve generations", got)
	}
}

func pipelineSteps(lo int64) []trance.PipelineStep {
	// Step 1 filters the nested items; step 2 consumes step 1's output.
	return []trance.PipelineStep{
		{Name: "Big", Query: prepQuery(lo)},
		{Name: "Out", Query: trance.ForIn("b", trance.V("Big"),
			trance.SingOf(trance.Record(
				"k2", trance.P(trance.V("b"), "k"),
				"big2", trance.P(trance.V("b"), "big"))))},
	}
}

// The PR-2 rough edge, fixed: a repeated pipeline compiles each step exactly
// once — later runs hit the plan cache for every step under every strategy.
func TestRunPipelineReusesPlanCache(t *testing.T) {
	env := prepEnv()
	inputs := prepInputs(8100)
	strategies := []trance.Strategy{trance.Standard, trance.Shred, trance.ShredUnshred}

	var want trance.Bag
	before := trance.PlanCacheStats()
	for round := 0; round < 4; round++ {
		for _, strat := range strategies {
			res := trance.RunPipeline(pipelineSteps(8101), env, inputs, strat, trance.DefaultConfig())
			if res.Failed() {
				t.Fatalf("round %d %v: %v", round, strat, res.Err)
			}
			if len(res.StepElapsed) != 2 {
				t.Fatalf("want 2 timed steps, got %v", res.StepElapsed)
			}
			if strat == trance.Shred {
				continue // shredded top output is not comparable to nested
			}
			got := collectPipelineBag(res)
			if want == nil {
				want = got
			} else if !trance.ValuesEqual(got, want) {
				t.Fatalf("round %d %v: pipeline output drifted: %s vs %s",
					round, strat, trance.FormatValue(got), trance.FormatValue(want))
			}
		}
	}
	after := trance.PlanCacheStats()
	// Standard: 2 steps. Shred: 2 steps. ShredUnshred: final step only (its
	// intermediate step shares the Shred slot). 4 rounds never recompile.
	wantCompiles := int64(5)
	if got := after.Compiles - before.Compiles; got != wantCompiles {
		t.Fatalf("want exactly %d step compilations across 12 pipeline runs, got %d", wantCompiles, got)
	}
	if after.Hits <= before.Hits {
		t.Fatal("repeated pipelines should hit the plan cache")
	}
}

func collectPipelineBag(res *trance.PipelineResult) trance.Bag {
	out := make(trance.Bag, 0)
	for _, r := range res.Output.CollectSorted() {
		out = append(out, trance.Tuple(r))
	}
	return out
}

// Env-aware fingerprints: pipelines whose step queries print identically but
// consume differently typed prior outputs must not share compiled plans.
func TestPipelineFingerprintsAreEnvAware(t *testing.T) {
	// Same second step ("for b in Big union {⟨x := b.k⟩}"), but Big's type
	// differs: k is int in one pipeline, string in the other.
	mkSecond := func() trance.Expr {
		return trance.ForIn("b", trance.V("Big"),
			trance.SingOf(trance.Record("x", trance.P(trance.V("b"), "k"))))
	}
	intSteps := []trance.PipelineStep{
		{Name: "Big", Query: trance.ForIn("r", trance.V("RI"), trance.SingOf(trance.V("r")))},
		{Name: "Out", Query: mkSecond()},
	}
	strSteps := []trance.PipelineStep{
		{Name: "Big", Query: trance.ForIn("r", trance.V("RS"), trance.SingOf(trance.V("r")))},
		{Name: "Out", Query: mkSecond()},
	}
	envI := trance.Env{"RI": trance.BagOf(trance.Tup("k", trance.IntT))}
	envS := trance.Env{"RS": trance.BagOf(trance.Tup("k", trance.StringT))}

	ppI, err := trance.PreparePipeline(intSteps, trance.PrepareOptions{Env: envI})
	if err != nil {
		t.Fatal(err)
	}
	ppS, err := trance.PreparePipeline(strSteps, trance.PrepareOptions{Env: envS})
	if err != nil {
		t.Fatal(err)
	}
	ri, err := ppI.Run(context.Background(), map[string]trance.Bag{"RI": {trance.Tuple{int64(7)}}}, trance.Standard)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := ppS.Run(context.Background(), map[string]trance.Bag{"RS": {trance.Tuple{"seven"}}}, trance.Standard)
	if err != nil {
		t.Fatal(err)
	}
	if got := collectPipelineBag(ri); !trance.ValuesEqual(got, trance.Bag{trance.Tuple{int64(7)}}) {
		t.Fatalf("int pipeline: %s", trance.FormatValue(got))
	}
	if got := collectPipelineBag(rs); !trance.ValuesEqual(got, trance.Bag{trance.Tuple{"seven"}}) {
		t.Fatalf("string pipeline: %s", trance.FormatValue(got))
	}
	if ot, want := ppI.OutType(1).String(), "Bag(⟨x: int⟩)"; ot != want {
		t.Fatalf("int pipeline out type %s, want %s", ot, want)
	}
	if ot, want := ppS.OutType(1).String(), "Bag(⟨x: string⟩)"; ot != want {
		t.Fatalf("string pipeline out type %s, want %s", ot, want)
	}
}

// Session pipelines resolve free variables (not step outputs) against the
// catalog and reuse the plan cache across sessions.
func TestSessionPreparePipeline(t *testing.T) {
	cat := trance.NewCatalog()
	if err := cat.Register("R", prepEnv()["R"], prepInputs(0)["R"]); err != nil {
		t.Fatal(err)
	}
	s := cat.NewSession(trance.SessionOptions{})
	sp, err := s.PreparePipeline(pipelineSteps(8201))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := sp.Run(context.Background(), trance.Standard)
	if err != nil {
		t.Fatal(err)
	}
	want := collectPipelineBag(seq)

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			strat := []trance.Strategy{trance.Standard, trance.ShredUnshred}[g%2]
			res, err := sp.Run(context.Background(), strat)
			if err != nil {
				errs <- fmt.Errorf("goroutine %d (%v): %w", g, strat, err)
				return
			}
			if got := collectPipelineBag(res); !trance.ValuesEqual(got, want) {
				errs <- fmt.Errorf("goroutine %d (%v): got %s want %s",
					g, strat, trance.FormatValue(got), trance.FormatValue(want))
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
