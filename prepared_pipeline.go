package trance

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/trance-go/trance/internal/runner"
)

// PreparedPipeline is a multi-step pipeline compiled once and evaluated many
// times. Every step's compilation goes through the same process-wide plan
// cache as Prepare, keyed by an env-aware fingerprint: a step's key digests
// the step query, the base environment *plus the resolved output types of
// every prior step*, the step name, and its effective strategy. Two
// pipelines sharing a prefix therefore share the prefix's compiled plans,
// and re-preparing the same pipeline compiles nothing.
//
// All methods are safe for concurrent use; see PreparedQuery for the
// execution model (shared bounded pool, fresh per-run context and metrics).
type PreparedPipeline struct {
	name     string
	steps    []PipelineStep
	env      Env
	cfg      Config
	pool     *Pool
	stepEnvs []Env  // per-step compile environment (base + prior outputs)
	outTypes []Type // per-step checked output type
	fps      []string

	// compileMu serializes this pipeline's compilations (compilation
	// type-annotates the shared step ASTs in place). Cache hits do not take
	// the lock. It is a pointer so a session's generation refresh can share
	// one mutex across re-preparations of the same step ASTs.
	compileMu *sync.Mutex
}

// PreparePipeline typechecks every step against the base environment
// extended with the outputs of prior steps and sets up compile-once
// evaluation of the whole pipeline. PrepareOptions.Env is required;
// PrepareOptions.Strategies compile eagerly, everything else on first Run —
// each (step, strategy) exactly once process-wide.
//
// PreparePipeline takes ownership of the step ASTs; do not share them
// between concurrent Prepare calls.
func PreparePipeline(steps []PipelineStep, opts PrepareOptions) (*PreparedPipeline, error) {
	if opts.Env == nil {
		return nil, fmt.Errorf("trance: PreparePipeline requires PrepareOptions.Env")
	}
	cfg := DefaultConfig()
	if opts.Config != nil {
		cfg = *opts.Config
	}
	stepEnvs, outTypes, err := runner.ResolveSteps(steps, opts.Env)
	if err != nil {
		if opts.Name != "" {
			return nil, fmt.Errorf("prepare pipeline %s: %w", opts.Name, err)
		}
		return nil, err
	}
	pp := &PreparedPipeline{
		name:      opts.Name,
		steps:     append([]PipelineStep(nil), steps...),
		env:       opts.Env,
		cfg:       cfg,
		pool:      poolFor(cfg, opts.Pool),
		stepEnvs:  stepEnvs,
		outTypes:  outTypes,
		compileMu: &sync.Mutex{},
	}
	for i, st := range steps {
		pp.fps = append(pp.fps, fingerprint(st.Query, stepEnvs[i], cfg)+"|step="+st.Name)
	}
	for _, s := range opts.Strategies {
		if _, err := pp.compiled(s); err != nil {
			return nil, err
		}
	}
	return pp, nil
}

// Name returns the label given at PreparePipeline time.
func (pp *PreparedPipeline) Name() string { return pp.name }

// Steps returns the number of steps.
func (pp *PreparedPipeline) Steps() int { return len(pp.steps) }

// OutType returns the checked output type of step i (the pipeline's final
// output type is OutType(Steps()-1)).
func (pp *PreparedPipeline) OutType(i int) Type { return pp.outTypes[i] }

// Explain compiles the strategy if needed and renders every step's plans
// before and after the rule-based optimizer pass, plus per-step rule-hit
// counters (see PreparedQuery.Explain).
func (pp *PreparedPipeline) Explain(strat Strategy) (string, error) {
	cp, err := pp.compiled(strat)
	if err != nil {
		return "", fmt.Errorf("%s (%s): %w", pp.label(), strat, err)
	}
	return cp.ExplainPipeline(), nil
}

// compiled assembles the per-step compiled artifacts for the strategy from
// the plan cache, compiling each missing (step, strategy) slot exactly once
// process-wide. Intermediate steps of unshredding strategies compile as
// their shredded-only variant (see runner.StepStrategy), sharing cache slots
// with plain Shred pipelines.
func (pp *PreparedPipeline) compiled(strat Strategy) (*runner.CompiledPipeline, error) {
	cp := &runner.CompiledPipeline{Strategy: strat, Cfg: pp.cfg}
	for i, st := range pp.steps {
		eff := runner.StepStrategy(strat, i == len(pp.steps)-1)
		entry := planCache.entry(pp.fps[i] + "|" + eff.String())
		entry.once.Do(func() {
			pp.compileMu.Lock()
			defer pp.compileMu.Unlock()
			planCache.compiles.Add(1)
			entry.cq, entry.err = runner.CompileStep(st.Query, pp.stepEnvs[i], eff, pp.cfg, st.Name)
		})
		if entry.err != nil {
			return nil, &runner.StepError{Step: i, Name: st.Name, Err: entry.err}
		}
		cp.Steps = append(cp.Steps, runner.CompiledStep{Name: st.Name, Out: pp.outTypes[i], CQ: entry.cq})
	}
	return cp, nil
}

// OutputSchema reports the flat schema of the pipeline's final output under
// the strategy, with the final step's own field names for nested-output
// strategies (see PreparedQuery.OutputSchema). It compiles the strategy if
// needed.
func (pp *PreparedPipeline) OutputSchema(strat Strategy) ([]OutputColumn, error) {
	cp, err := pp.compiled(strat)
	if err != nil {
		return nil, err
	}
	last := cp.Steps[len(cp.Steps)-1]
	op := last.CQ.OutputPlan()
	if op == nil {
		return nil, fmt.Errorf("%s (%s): no output plan", pp.label(), strat)
	}
	var cols []OutputColumn
	for _, c := range op.Columns() {
		cols = append(cols, OutputColumn{Name: c.Name, Type: c.Type})
	}
	// The final step of an unshredding pipeline is compiled as its
	// unshredded variant, so the effective strategy equals strat here.
	return namedSchema(cols, pp.outTypes[len(pp.outTypes)-1], strat), nil
}

// Run executes the prepared pipeline under the strategy over one set of
// inputs: compiled plans from the cache, execution on a fresh dataflow
// context drawing workers from the shared pool, panics degraded to errors.
// When the returned PipelineResult is non-nil its Metrics, StepElapsed and
// FailedStep are valid even on failure.
func (pp *PreparedPipeline) Run(ctx context.Context, inputs map[string]Bag, strat Strategy) (*PipelineResult, error) {
	cp, err := pp.compiled(strat)
	if err != nil {
		return nil, fmt.Errorf("%s (%s): %w", pp.label(), strat, err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	dctx := runner.NewRunContext(pp.cfg, strat)
	dctx.SharedPool = pp.pool
	res := cp.Execute(ctx, inputs, dctx)
	if res.Err != nil {
		return res, fmt.Errorf("%s (%s) step %d: %w", pp.label(), strat, res.FailedStep, res.Err)
	}
	return res, nil
}

// BindData associates datasets with the prepared pipeline for repeated
// evaluation: the conversion of nested values into engine rows (value
// shredding on shredded routes) is computed once per route and shared by
// every RunBound call, exactly like PreparedQuery.BindData. The bags are
// captured by reference and must not be mutated afterwards.
func (pp *PreparedPipeline) BindData(inputs map[string]Bag) *PreparedData {
	return newPreparedData(inputs)
}

// RunBound is Run over data bound once with BindData: the serving hot path
// does no per-request input conversion.
func (pp *PreparedPipeline) RunBound(ctx context.Context, data *PreparedData, strat Strategy) (*PipelineResult, error) {
	cp, err := pp.compiled(strat)
	if err != nil {
		return nil, fmt.Errorf("%s (%s): %w", pp.label(), strat, err)
	}
	rows, err := data.rowsFor(cp.Steps[0].CQ)
	if err != nil {
		return nil, fmt.Errorf("%s (%s): prepare inputs: %w", pp.label(), strat, err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	dctx := runner.NewRunContext(pp.cfg, strat)
	dctx.SharedPool = pp.pool
	res := cp.ExecuteRowsIndexed(ctx, rows, data.indexesFor(cp.Steps[0].CQ), dctx)
	if res.Err != nil {
		return res, fmt.Errorf("%s (%s) step %d: %w", pp.label(), strat, res.FailedStep, res.Err)
	}
	return res, nil
}

func (pp *PreparedPipeline) label() string {
	if pp.name != "" {
		return pp.name
	}
	return "pipeline"
}

// RunPipeline executes a multi-step pipeline under one strategy, binding
// each step's output as an input of later steps; shredded strategies keep
// intermediate results shredded between steps and unshred only the final
// output. Compilation goes through the process-wide plan cache — a repeated
// pipeline compiles each step exactly once (see PreparePipeline for the
// compile-once serving API this wraps).
func RunPipeline(steps []PipelineStep, env Env, inputs map[string]Bag, strat Strategy, cfg Config) *PipelineResult {
	pp, err := PreparePipeline(steps, PrepareOptions{Env: env, Config: &cfg})
	if err != nil {
		return pipelineFailure(strat, err)
	}
	res, err := pp.Run(context.Background(), inputs, strat)
	if res == nil {
		return pipelineFailure(strat, err)
	}
	return res
}

func pipelineFailure(strat Strategy, err error) *PipelineResult {
	res := &PipelineResult{Strategy: strat, FailedStep: 0, Err: err}
	var se *runner.StepError
	if errors.As(err, &se) {
		res.FailedStep = se.Step
	}
	return res
}
