// Command trance is the CLI of the library: it prints the standard plan and
// the shredded program of built-in benchmark queries and runs them under any
// strategy.
//
// Usage:
//
//	trance explain  -class nested-to-nested -level 2
//	trance run      -class nested-to-flat   -level 2 -strategy shred
//	trance biomed   -full
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/trance-go/trance"
	"github.com/trance-go/trance/internal/biomed"
	"github.com/trance-go/trance/internal/runner"
	"github.com/trance-go/trance/internal/tpch"
	"github.com/trance-go/trance/internal/value"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "explain":
		cmdExplain(os.Args[2:])
	case "run":
		cmdRun(os.Args[2:])
	case "biomed":
		cmdBiomed(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  trance explain -class <class> -level <0-4> [-wide]
  trance run     -class <class> -level <0-4> [-wide] -strategy <name> [-skew 0-4]
  trance biomed  [-full] [-strategy <name>]

classes:    flat-to-nested | nested-to-nested | nested-to-flat
strategies: standard | sparksql | shred | shred+unshred | standard-skew | shred-skew`)
	os.Exit(2)
}

func parseClass(s string) tpch.QueryClass {
	switch s {
	case "flat-to-nested":
		return tpch.FlatToNested
	case "nested-to-nested":
		return tpch.NestedToNested
	case "nested-to-flat":
		return tpch.NestedToFlat
	}
	log.Fatalf("unknown class %q", s)
	return 0
}

func checkLevel(level int) {
	if err := tpch.ValidateLevel(level); err != nil {
		log.Fatal(err)
	}
}

func parseStrategy(s string) runner.Strategy {
	strat, ok := runner.ParseStrategy(s)
	if !ok {
		log.Fatalf("unknown strategy %q", s)
	}
	return strat
}

func cmdExplain(args []string) {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	class := fs.String("class", "nested-to-nested", "query class")
	level := fs.Int("level", 2, "nesting level")
	wide := fs.Bool("wide", false, "wide variant")
	_ = fs.Parse(args)

	qc := parseClass(*class)
	checkLevel(*level)
	q := tpch.Query(qc, *level, *wide)
	env := tpch.Env(qc, *level, *wide)

	fmt.Println("=== NRC ===")
	fmt.Println(trance.Print(q))
	p, err := trance.ExplainStandard(q, env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== standard plan ===")
	fmt.Println(p)
	sp, err := trance.ExplainShredded(q, env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== shredded program ===")
	fmt.Println(sp)
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	class := fs.String("class", "nested-to-nested", "query class")
	level := fs.Int("level", 2, "nesting level")
	wide := fs.Bool("wide", false, "wide variant")
	strategy := fs.String("strategy", "shred", "evaluation strategy")
	skew := fs.Int("skew", 0, "skew factor")
	customers := fs.Int("customers", 200, "customers to generate")
	show := fs.Int("show", 5, "result rows to print")
	_ = fs.Parse(args)

	qc := parseClass(*class)
	checkLevel(*level)
	tables := tpch.Generate(tpch.Config{
		Customers: *customers, OrdersPerCustomer: 6, LinesPerOrder: 4,
		Parts: 100, SkewFactor: *skew, Seed: 1,
	})
	q := tpch.Query(qc, *level, *wide)
	env := tpch.Env(qc, *level, *wide)
	inputs := map[string]value.Bag{}
	if qc == tpch.FlatToNested {
		inputs = tables.Inputs()
	} else {
		inputs["NDB"] = tpch.BuildNested(tables, *level, true)
		inputs["Part"] = tables.Part
	}

	res := runner.Run(runner.Job{Query: q, Env: env, Inputs: inputs},
		parseStrategy(*strategy), trance.DefaultConfig())
	if res.Failed() {
		log.Fatalf("run failed: %v", res.Err)
	}
	fmt.Printf("%s: %v, rows=%d, %s\n", res.Strategy, res.Elapsed, res.Output.Count(), res.Metrics)
	for i, row := range res.Output.CollectSorted() {
		if i >= *show {
			break
		}
		fmt.Println("  ", value.Format(value.Tuple(row)))
	}
}

func cmdBiomed(args []string) {
	fs := flag.NewFlagSet("biomed", flag.ExitOnError)
	full := fs.Bool("full", false, "full dataset")
	strategy := fs.String("strategy", "shred", "evaluation strategy")
	_ = fs.Parse(args)

	cfg := biomed.SmallConfig()
	if *full {
		cfg = biomed.FullConfig()
	}
	inputs := biomed.Generate(cfg)
	res := runner.RunPipeline(biomed.Steps(), biomed.Env(), inputs,
		parseStrategy(*strategy), trance.DefaultConfig())
	for i, d := range res.StepElapsed {
		fmt.Printf("step%d: %v\n", i+1, d)
	}
	if res.Failed() {
		log.Fatalf("pipeline failed at step %d: %v", res.FailedStep+1, res.Err)
	}
	fmt.Printf("final rows=%d, %s\n", res.Output.Count(), res.Metrics)
}
