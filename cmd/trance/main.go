// Command trance is the CLI of the library: it prints the standard plan and
// the shredded program of built-in benchmark queries, runs them under any
// strategy, and queries ad-hoc JSON datasets with inferred nested schemas.
//
// Usage:
//
//	trance explain  -class nested-to-nested -level 2
//	trance run      -class nested-to-flat   -level 2 -strategy shred
//	trance query    -input data.json -strategy shred+unshred
//	trance biomed   -full
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"github.com/trance-go/trance"
	"github.com/trance-go/trance/internal/biomed"
	"github.com/trance-go/trance/internal/runner"
	"github.com/trance-go/trance/internal/tpch"
	"github.com/trance-go/trance/internal/value"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "explain":
		cmdExplain(os.Args[2:])
	case "run":
		cmdRun(os.Args[2:])
	case "query":
		cmdQuery(os.Args[2:])
	case "biomed":
		cmdBiomed(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  trance explain -class <class> -level <0-4> [-wide]
  trance run     -class <class> -level <0-4> [-wide] -strategy <name> [-skew 0-4]
  trance query   [-input <data.json|->] [-name R] [-q '<query text>'] [-strategy <name>] [-show N] [-explain] [-analyze] [-timing]
  trance biomed  [-full] [-strategy <name>]

classes:    flat-to-nested | nested-to-nested | nested-to-flat
strategies: standard | sparksql | shred | shred+unshred | standard-skew | shred-skew
            shred+unshred-skew | auto (statistics-driven route selection)

query ingests NDJSON or a JSON array (objects become tuples, arrays become
bags, schema inferred with null/numeric widening), registers it in a catalog,
and queries it under the chosen strategy, printing NDJSON rows to stdout.
Without -q the whole dataset is scanned; with -q the textual NRC query (see
docs/QUERYLANG.md) runs against it, e.g.

  trance query -input orders.json -name R \
    -q 'for x in R union if x.qty > 10 then { x }'

-q also accepts multi-statement programs (name := expr; ... result-expr).`)
	os.Exit(2)
}

func parseClass(s string) tpch.QueryClass {
	switch s {
	case "flat-to-nested":
		return tpch.FlatToNested
	case "nested-to-nested":
		return tpch.NestedToNested
	case "nested-to-flat":
		return tpch.NestedToFlat
	}
	log.Fatalf("unknown class %q", s)
	return 0
}

func checkLevel(level int) {
	if err := tpch.ValidateLevel(level); err != nil {
		log.Fatal(err)
	}
}

func parseStrategy(s string) runner.Strategy {
	strat, ok := runner.ParseStrategy(s)
	if !ok {
		log.Fatalf("unknown strategy %q", s)
	}
	return strat
}

func cmdExplain(args []string) {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	class := fs.String("class", "nested-to-nested", "query class")
	level := fs.Int("level", 2, "nesting level")
	wide := fs.Bool("wide", false, "wide variant")
	_ = fs.Parse(args)

	qc := parseClass(*class)
	checkLevel(*level)
	q := tpch.Query(qc, *level, *wide)
	env := tpch.Env(qc, *level, *wide)

	fmt.Println("=== NRC ===")
	fmt.Println(trance.Print(q))
	p, err := trance.ExplainStandard(q, env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== standard plan ===")
	fmt.Println(p)
	sp, err := trance.ExplainShredded(q, env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== shredded program ===")
	fmt.Println(sp)
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	class := fs.String("class", "nested-to-nested", "query class")
	level := fs.Int("level", 2, "nesting level")
	wide := fs.Bool("wide", false, "wide variant")
	strategy := fs.String("strategy", "shred", "evaluation strategy")
	skew := fs.Int("skew", 0, "skew factor")
	customers := fs.Int("customers", 200, "customers to generate")
	show := fs.Int("show", 5, "result rows to print")
	_ = fs.Parse(args)

	qc := parseClass(*class)
	checkLevel(*level)
	tables := tpch.Generate(tpch.Config{
		Customers: *customers, OrdersPerCustomer: 6, LinesPerOrder: 4,
		Parts: 100, SkewFactor: *skew, Seed: 1,
	})
	q := tpch.Query(qc, *level, *wide)
	env := tpch.Env(qc, *level, *wide)
	inputs := map[string]value.Bag{}
	if qc == tpch.FlatToNested {
		inputs = tables.Inputs()
	} else {
		inputs["NDB"] = tpch.BuildNested(tables, *level, true)
		inputs["Part"] = tables.Part
	}

	res := runner.Run(runner.Job{Query: q, Env: env, Inputs: inputs},
		parseStrategy(*strategy), trance.DefaultConfig())
	if res.Failed() {
		log.Fatalf("run failed: %v", res.Err)
	}
	fmt.Printf("%s: %v, rows=%d, %s\n", res.Strategy, res.Elapsed, res.Output.Count(), res.Metrics)
	for i, row := range res.Output.CollectSorted() {
		if i >= *show {
			break
		}
		fmt.Println("  ", value.Format(value.Tuple(row)))
	}
}

// cmdQuery is the JSON-in → query → JSON-out path: ingest a JSON dataset
// into a catalog (schema inferred), prepare either an identity scan or an
// ad-hoc textual NRC query (-q, see docs/QUERYLANG.md) through a session,
// run it under the chosen strategy, and print the rows back as NDJSON.
// Schema and timing go to stderr so stdout stays pipeable. Parse and type
// errors in -q are reported as caret diagnostics pointing into the text.
func cmdQuery(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	input := fs.String("input", "", "JSON input: NDJSON or a JSON array; a file path or - for stdin")
	name := fs.String("name", "R", "dataset (and query variable) name")
	text := fs.String("q", "", "textual NRC query or program over the ingested dataset (default: scan it all)")
	strategy := fs.String("strategy", "standard", "evaluation strategy")
	show := fs.Int("show", 0, "result rows to print (0 = all)")
	explain := fs.Bool("explain", false, "print the compiled plans before and after the rule-based optimizer (predicate pushdown etc.) to stderr")
	analyze := fs.Bool("analyze", false, "run with per-operator instrumentation and print the analyzed plans (actual rows, wall, batches, q-error) to stderr")
	timing := fs.Bool("timing", false, "print the request trace (per-phase wall-clock breakdown) to stderr")
	_ = fs.Parse(args)

	if *input == "" && *text == "" {
		log.Fatal("query: -input and/or -q is required (see trance help)")
	}
	cat := trance.NewCatalog()
	if *input != "" {
		var src io.Reader = os.Stdin
		if *input != "-" {
			f, err := os.Open(*input)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			src = f
		}
		info, err := cat.RegisterJSON(*name, src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dataset %s: %d rows, %d bytes\nschema: %s\n", info.Name, info.Rows, info.Bytes, info.Type)
	}

	sess := cat.NewSession(trance.SessionOptions{})
	strat := parseStrategy(*strategy)
	t := trance.NewTrace("trance query")
	ctx := trance.ContextWithTrace(context.Background(), t)
	var rows []map[string]any
	var err error
	if *text != "" {
		rows, err = runText(ctx, sess, *text, strat, *explain, *analyze)
	} else {
		var sq *trance.SessionQuery
		sq, err = sess.PrepareNamed(*name, trance.ForIn("x", trance.V(*name), trance.SingOf(trance.V("x"))))
		if err == nil {
			if *explain {
				printExplain(sq.Prepared().Explain(strat))
			}
			rows, err = runSessionQuery(ctx, sq, strat, *analyze)
		}
	}
	t.Finish()
	if err != nil {
		log.Fatalf("query failed:\n%v", err)
	}
	enc := json.NewEncoder(os.Stdout)
	for i, row := range rows {
		if *show > 0 && i >= *show {
			fmt.Fprintf(os.Stderr, "… %d more rows (-show 0 for all)\n", len(rows)-i)
			break
		}
		if err := enc.Encode(row); err != nil {
			log.Fatal(err)
		}
	}
	if *timing {
		fmt.Fprint(os.Stderr, t.Tree())
	}
	fmt.Fprintf(os.Stderr, "%s: %d rows\n", strat, len(rows))
}

// runSessionQuery evaluates one prepared session query; with analyze set the
// run is instrumented and the analyzed plans (actual rows, wall times, batch
// counts, q-error) go to stderr.
func runSessionQuery(ctx context.Context, sq *trance.SessionQuery, strat trance.Strategy, analyze bool) ([]map[string]any, error) {
	rows, res, err := sq.RunJSONFull(ctx, strat, analyze)
	if err != nil {
		return nil, err
	}
	if analyze {
		printExplain(sq.Prepared().ExplainAnalyzeResult(strat, res))
	}
	return rows, nil
}

// runText prepares and runs an ad-hoc text query — or, when the text is not
// a bare expression (it contains assignments), a multi-statement program —
// against the session. With explain set, the compiled plans (before and
// after the rule-based optimizer) go to stderr first; analyze additionally
// instruments the run and prints the analyzed plans.
func runText(ctx context.Context, sess *trance.Session, text string, strat trance.Strategy, explain, analyze bool) ([]map[string]any, error) {
	if _, err := trance.Parse(text); err == nil {
		sq, err := sess.PrepareText("adhoc", text)
		if err != nil {
			return nil, err
		}
		if explain {
			printExplain(sq.Prepared().Explain(strat))
		}
		return runSessionQuery(ctx, sq, strat, analyze)
	}
	// Not a bare expression: parse as a program (a single assignment like
	// `y := expr` lands here too). A genuine syntax error reports from the
	// program parse, which accepts a superset.
	sp, err := sess.PrepareTextPipeline(text)
	if err != nil {
		return nil, err
	}
	if explain {
		printExplain(sp.Prepared().Explain(strat))
	}
	if analyze {
		fmt.Fprintln(os.Stderr, "analyze: not supported for multi-statement programs yet")
	}
	return sp.RunJSON(ctx, strat)
}

// printExplain writes an explain text to stderr (compile errors surface when
// the query actually runs, so they are only logged here).
func printExplain(text string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "explain unavailable: %v\n", err)
		return
	}
	fmt.Fprintln(os.Stderr, text)
}

func cmdBiomed(args []string) {
	fs := flag.NewFlagSet("biomed", flag.ExitOnError)
	full := fs.Bool("full", false, "full dataset")
	strategy := fs.String("strategy", "shred", "evaluation strategy")
	_ = fs.Parse(args)

	cfg := biomed.SmallConfig()
	if *full {
		cfg = biomed.FullConfig()
	}
	inputs := biomed.Generate(cfg)
	res := runner.RunPipeline(biomed.Steps(), biomed.Env(), inputs,
		parseStrategy(*strategy), trance.DefaultConfig())
	for i, d := range res.StepElapsed {
		fmt.Printf("step%d: %v\n", i+1, d)
	}
	if res.Failed() {
		log.Fatalf("pipeline failed at step %d: %v", res.FailedStep+1, res.Err)
	}
	fmt.Printf("final rows=%d, %s\n", res.Output.Count(), res.Metrics)
}
