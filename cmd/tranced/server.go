package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/trance-go/trance"
	"github.com/trance-go/trance/internal/biomed"
	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/tpch"
	"github.com/trance-go/trance/internal/value"
)

// serverConfig sizes the preloaded datasets and the engine.
type serverConfig struct {
	Customers   int
	SkewFactor  int
	BiomedFull  bool
	Parallelism int
	Workers     int
	MaxLevel    int
}

func defaultServerConfig() serverConfig {
	return serverConfig{Customers: 100, Parallelism: 8, MaxLevel: 2}
}

// queryEntry is one preloaded query family: a prepared query and its fixed
// input dataset per nesting level.
type queryEntry struct {
	name     string
	levels   []int
	prepared map[int]*trance.PreparedQuery
	// data holds each level's dataset bound once at startup, so requests
	// reuse the converted (and, on shredded routes, value-shredded) rows
	// instead of re-preparing the fixed inputs per request.
	data map[int]*trance.PreparedData
}

// routeStats accumulates per-(query, level, strategy) serving metrics.
type routeStats struct {
	Count        int64
	Errors       int64
	LastElapsed  time.Duration
	TotalElapsed time.Duration
	ShuffleBytes int64
	StageWall    map[string]time.Duration
	stageOrder   []string
}

// server is the tranced HTTP service: prepared queries over preloaded
// datasets, served concurrently on one shared worker pool.
type server struct {
	mux      *http.ServeMux
	queries  map[string]*queryEntry
	order    []string
	pool     *trance.Pool
	started  time.Time
	requests atomic.Int64

	mu    sync.Mutex
	stats map[string]*routeStats
}


// newServer generates the datasets, prepares every query family, and wires
// the HTTP routes. Strategies compile lazily, exactly once each, on first
// request.
func newServer(cfg serverConfig) (*server, error) {
	s := &server{
		mux:     http.NewServeMux(),
		queries: map[string]*queryEntry{},
		pool:    trance.NewPool(cfg.Workers),
		started: time.Now(),
		stats:   map[string]*routeStats{},
	}
	runCfg := trance.DefaultConfig()
	runCfg.Parallelism = cfg.Parallelism

	if err := tpch.ValidateLevel(cfg.MaxLevel); err != nil {
		return nil, err
	}
	tables := tpch.Generate(tpch.Config{
		Customers: cfg.Customers, OrdersPerCustomer: 6, LinesPerOrder: 4,
		Parts: 100, SkewFactor: cfg.SkewFactor, Seed: 1,
	})
	classes := []tpch.QueryClass{tpch.FlatToNested, tpch.NestedToNested, tpch.NestedToFlat}
	for _, qc := range classes {
		entry := &queryEntry{
			name:     "tpch/" + qc.String(),
			prepared: map[int]*trance.PreparedQuery{},
			data:     map[int]*trance.PreparedData{},
		}
		for level := 0; level <= cfg.MaxLevel; level++ {
			pq, err := trance.Prepare(tpch.Query(qc, level, false), trance.PrepareOptions{
				Name:   fmt.Sprintf("%s/L%d", entry.name, level),
				Env:    tpch.Env(qc, level, false),
				Config: &runCfg,
				Pool:   s.pool,
			})
			if err != nil {
				return nil, fmt.Errorf("prepare %s L%d: %w", entry.name, level, err)
			}
			inputs := map[string]trance.Bag{}
			if qc == tpch.FlatToNested {
				for k, v := range tables.Inputs() {
					inputs[k] = v
				}
			} else {
				inputs["NDB"] = tpch.BuildNested(tables, level, true)
				inputs["Part"] = tables.Part
			}
			entry.prepared[level] = pq
			entry.data[level] = pq.BindData(inputs)
			entry.levels = append(entry.levels, level)
		}
		s.queries[entry.name] = entry
		s.order = append(s.order, entry.name)
	}

	bioCfg := biomed.SmallConfig()
	if cfg.BiomedFull {
		bioCfg = biomed.FullConfig()
	}
	bioInputs := biomed.Generate(bioCfg)
	step1 := biomed.Steps()[0]
	bpq, err := trance.Prepare(step1.Query, trance.PrepareOptions{
		Name:   "biomed/step1",
		Env:    biomed.Env(),
		Config: &runCfg,
		Pool:   s.pool,
	})
	if err != nil {
		return nil, fmt.Errorf("prepare biomed/step1: %w", err)
	}
	s.queries["biomed/step1"] = &queryEntry{
		name:     "biomed/step1",
		levels:   []int{0},
		prepared: map[int]*trance.PreparedQuery{0: bpq},
		data:     map[int]*trance.PreparedData{0: bpq.BindData(bioInputs)},
	}
	s.order = append(s.order, "biomed/step1")

	s.mux.HandleFunc("GET /", s.handleIndex)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /query", s.handleQuery)
	s.mux.HandleFunc("GET /strategies", s.handleStrategies)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]any{"error": fmt.Sprintf(format, args...)})
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		httpError(w, http.StatusNotFound, "no such endpoint %q", r.URL.Path)
		return
	}
	type qinfo struct {
		Name   string `json:"name"`
		Levels []int  `json:"levels"`
	}
	var qs []qinfo
	for _, name := range s.order {
		qs = append(qs, qinfo{Name: name, Levels: s.queries[name].levels})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"service":   "tranced",
		"endpoints": []string{"/query?name=&level=&strategy=&limit=", "/strategies", "/metrics", "/healthz"},
		"queries":   qs,
	})
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "uptime_s": time.Since(s.started).Seconds()})
}

func (s *server) handleStrategies(w http.ResponseWriter, r *http.Request) {
	type sinfo struct {
		Name      string `json:"name"`
		Paper     string `json:"paper"`
		Shredded  bool   `json:"shredded"`
		SkewAware bool   `json:"skew_aware"`
	}
	var out []sinfo
	for _, s := range trance.AllStrategies() {
		out = append(out, sinfo{
			Name:      s.CLIName(),
			Paper:     s.String(),
			Shredded:  s.IsShredded(),
			SkewAware: s.SkewAware(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"strategies": out})
}

// handleQuery evaluates one prepared query: name + level + strategy → JSON
// rows. Bad requests (unknown query/level/strategy, compile failures) are
// 4xx; engine failures are 5xx; neither can crash the process.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("name")
	entry, ok := s.queries[name]
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown query %q (see / for the catalog)", name)
		return
	}
	level := 0
	if lv := q.Get("level"); lv != "" {
		var err error
		level, err = strconv.Atoi(lv)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad level %q", lv)
			return
		}
	}
	pq, ok := entry.prepared[level]
	if !ok {
		httpError(w, http.StatusBadRequest, "query %s has no level %d (levels %v)", name, level, entry.levels)
		return
	}
	stratName := q.Get("strategy")
	if stratName == "" {
		stratName = "standard"
	}
	strat, ok := trance.ParseStrategy(stratName)
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown strategy %q (see /strategies)", stratName)
		return
	}
	limit := 20
	if ls := q.Get("limit"); ls != "" {
		var err error
		limit, err = strconv.Atoi(ls)
		if err != nil || limit < 0 {
			httpError(w, http.StatusBadRequest, "bad limit %q", ls)
			return
		}
	}

	cols, err := pq.OutputColumns(strat)
	if err != nil {
		// Compilation failed: the query/strategy combination is unservable —
		// a client-side problem, reported without crashing anything.
		s.record(name, level, stratName, nil, true)
		httpError(w, http.StatusBadRequest, "compile %s (%s): %v", name, stratName, err)
		return
	}
	res, err := pq.RunBound(r.Context(), entry.data[level], strat)
	if err != nil {
		s.record(name, level, stratName, res, true)
		if errors.Is(err, r.Context().Err()) && r.Context().Err() != nil {
			return // client went away; nothing sensible to write
		}
		httpError(w, http.StatusInternalServerError, "execute %s (%s): %v", name, stratName, err)
		return
	}
	s.record(name, level, stratName, res, false)

	rows := res.Output.CollectSorted()
	total := len(rows)
	truncated := false
	if limit > 0 && len(rows) > limit {
		rows = rows[:limit]
		truncated = true
	}
	results := make([]map[string]any, len(rows))
	for i, row := range rows {
		m := make(map[string]any, len(cols))
		for ci, c := range cols {
			if ci < len(row) {
				m[c.Name] = valueJSON(row[ci], c.Type)
			}
		}
		results[i] = m
	}
	type colInfo struct {
		Name string `json:"name"`
		Type string `json:"type"`
	}
	colOut := make([]colInfo, len(cols))
	for i, c := range cols {
		colOut[i] = colInfo{Name: c.Name, Type: c.Type.String()}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"query":      name,
		"level":      level,
		"strategy":   res.Strategy.String(),
		"elapsed_ms": float64(res.Elapsed.Microseconds()) / 1000,
		"rows":       total,
		"returned":   len(results),
		"truncated":  truncated,
		"columns":    colOut,
		"results":    results,
	})
}

// record folds one run's outcome and engine metrics into the route's stats.
func (s *server) record(name string, level int, strat string, res *trance.Result, failed bool) {
	key := fmt.Sprintf("%s/L%d/%s", name, level, strat)
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.stats[key]
	if !ok {
		st = &routeStats{StageWall: map[string]time.Duration{}}
		s.stats[key] = st
	}
	st.Count++
	if failed {
		st.Errors++
	}
	if res == nil {
		return
	}
	st.LastElapsed = res.Elapsed
	st.TotalElapsed += res.Elapsed
	st.ShuffleBytes += res.Metrics.ShuffleBytes
	for _, sw := range res.Metrics.StageWall {
		if _, seen := st.StageWall[sw.Stage]; !seen {
			st.stageOrder = append(st.stageOrder, sw.Stage)
		}
		st.StageWall[sw.Stage] += sw.Wall
	}
}

// handleMetrics reports serving counters, the compilation cache, and the
// accumulated per-stage wall times of every served route.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	type stageMs struct {
		Stage string  `json:"stage"`
		Ms    float64 `json:"ms"`
	}
	type routeOut struct {
		Count        int64     `json:"count"`
		Errors       int64     `json:"errors"`
		LastMs       float64   `json:"last_elapsed_ms"`
		TotalMs      float64   `json:"total_elapsed_ms"`
		ShuffleBytes int64     `json:"shuffle_bytes"`
		StageWallMs  []stageMs `json:"stage_wall_ms"`
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

	s.mu.Lock()
	routes := make(map[string]routeOut, len(s.stats))
	for key, st := range s.stats {
		ro := routeOut{
			Count: st.Count, Errors: st.Errors,
			LastMs: ms(st.LastElapsed), TotalMs: ms(st.TotalElapsed),
			ShuffleBytes: st.ShuffleBytes,
			StageWallMs:  []stageMs{},
		}
		for _, stage := range st.stageOrder {
			ro.StageWallMs = append(ro.StageWallMs, stageMs{Stage: stage, Ms: ms(st.StageWall[stage])})
		}
		routes[key] = ro
	}
	s.mu.Unlock()

	cache := trance.PlanCacheStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_s": time.Since(s.started).Seconds(),
		"requests": s.requests.Load(),
		"workers":  s.pool.Workers(),
		"plan_cache": map[string]any{
			"entries":   cache.Entries,
			"compiles":  cache.Compiles,
			"hits":      cache.Hits,
			"evictions": cache.Evictions,
		},
		"routes": routes,
	})
}

// valueJSON renders a runtime value as JSON guided by its static type:
// tuples become objects (field names come from the type), bags become
// arrays, labels and dates render in the value model's textual form.
func valueJSON(v value.Value, t nrc.Type) any {
	if v == nil {
		return nil
	}
	switch tt := t.(type) {
	case nrc.BagType:
		b, ok := v.(value.Bag)
		if !ok {
			return value.Format(v)
		}
		out := make([]any, len(b))
		for i, e := range b {
			out[i] = valueJSON(e, tt.Elem)
		}
		return out
	case nrc.TupleType:
		tp, ok := v.(value.Tuple)
		if !ok {
			return value.Format(v)
		}
		m := make(map[string]any, len(tt.Fields))
		for i, f := range tt.Fields {
			if i < len(tp) {
				m[f.Name] = valueJSON(tp[i], f.Type)
			}
		}
		return m
	}
	switch x := v.(type) {
	case int64, float64, string, bool:
		return x
	default:
		return value.Format(v)
	}
}
