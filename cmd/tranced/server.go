package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/trance-go/trance"
	"github.com/trance-go/trance/internal/biomed"
	"github.com/trance-go/trance/internal/ingest"
	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/tpch"
	"github.com/trance-go/trance/internal/value"
)

// serverConfig sizes the preloaded datasets and the engine.
type serverConfig struct {
	Customers   int
	SkewFactor  int
	BiomedFull  bool
	Parallelism int
	Workers     int
	MaxLevel    int
	// MaxUploadBytes bounds POST /datasets request bodies.
	MaxUploadBytes int64
	// MaxDatasets and MaxDatasetBytes bound how many uploaded datasets (and
	// how much decoded data) the server holds at once, so an upload loop
	// cannot grow server memory without limit.
	MaxDatasets     int
	MaxDatasetBytes int64
	// SlowQuery, when positive, logs the full span tree of any request whose
	// trace wall time meets the threshold.
	SlowQuery time.Duration
}

func defaultServerConfig() serverConfig {
	return serverConfig{
		Customers: 100, Parallelism: 8, MaxLevel: 2,
		MaxUploadBytes: 32 << 20, MaxDatasets: 100, MaxDatasetBytes: 256 << 20,
	}
}

// queryEntry is one servable query family: a session-prepared query per
// nesting level over catalog datasets.
type queryEntry struct {
	name    string
	levels  []int
	queries map[int]*trance.SessionQuery
}

// latencyBuckets are the fixed upper bounds (seconds) of the per-route
// latency histogram exposed in the Prometheus exposition; observations above
// the last bound land only in the implicit +Inf bucket.
var latencyBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// routeStats accumulates per-(query, level, strategy) serving metrics.
type routeStats struct {
	Count        int64
	Errors       int64
	LastElapsed  time.Duration
	TotalElapsed time.Duration
	ShuffleBytes int64
	// Exchange accounting: how this route's shuffle buffers crossed the
	// wide-operator boundary — typed column buffers metered by their compact
	// encoding vs boxed row buffers metered by value.Size walks.
	ColumnarBuffers int64
	BoxedBuffers    int64
	ColumnarBytes   int64
	BoxedBytes      int64
	StageWall       map[string]time.Duration
	stageOrder      []string
	// Hist counts run latencies per latencyBuckets bound; HistInf counts
	// observations above the last bound and HistSum totals all observed
	// latencies (seconds). Together they form one Prometheus histogram.
	Hist    [numLatencyBuckets]int64
	HistInf int64
	HistSum float64
}

// numLatencyBuckets mirrors len(latencyBuckets) as an array length (Go
// requires a constant there; init asserts they agree).
const numLatencyBuckets = 13

func init() {
	if len(latencyBuckets) != numLatencyBuckets {
		panic("tranced: numLatencyBuckets out of sync with latencyBuckets")
	}
}

// observe folds one run latency into the histogram.
func (st *routeStats) observe(d time.Duration) {
	secs := d.Seconds()
	st.HistSum += secs
	for i, b := range latencyBuckets {
		if secs <= b {
			st.Hist[i]++
			return
		}
	}
	st.HistInf++
}

// server is the tranced HTTP service: a catalog of named nested datasets
// (TPC-H and biomedical preloads registered at startup, ad-hoc JSON uploads
// at runtime) and session-prepared queries over them, served concurrently on
// one shared worker pool.
type server struct {
	mux      *http.ServeMux
	catalog  *trance.Catalog
	cfg      serverConfig
	runCfg   trance.Config
	pool     *trance.Pool
	started  time.Time
	requests atomic.Int64

	// qmu guards queries/order: uploads add servable entries at runtime.
	qmu     sync.RWMutex
	queries map[string]*queryEntry
	order   []string

	// upMu serializes dataset uploads so the capacity admission (count and
	// resident bytes vs MaxDatasets/MaxDatasetBytes) is atomic with
	// registration — concurrent uploads cannot all pass the check and
	// overshoot the bound together. Reads (queries, lists) are unaffected.
	upMu sync.Mutex

	// adhocSess is the one long-lived session every POST /query text is
	// prepared through: sessions share converted input rows per (dataset,
	// route), so however many distinct texts reference a dataset, the server
	// holds one value-shredded copy of it — not one per cached text.
	adhocSess *trance.Session

	// tqMu guards the bounded cache of prepared ad-hoc text queries
	// (POST /query): repeated texts skip parse/resolve/bind, and the plan
	// cache already dedupes compilation underneath.
	tqMu    sync.Mutex
	tqCache map[string]*trance.SessionQuery
	tqOrder []string

	mu    sync.Mutex
	stats map[string]*routeStats

	// traces is the bounded in-memory ring of recent request traces behind
	// X-Trance-Trace-Id and GET /trace/{id}.
	traces *trance.TraceRing
}

// maxTextQueryBytes bounds POST /query bodies; ad-hoc query texts are tiny.
const maxTextQueryBytes = 1 << 20

// maxTextQueryCache bounds how many prepared ad-hoc texts the server keeps
// (oldest evicted first; the underlying plan cache is bounded separately).
const maxTextQueryCache = 128

// newServer generates the preloaded datasets, registers them in the catalog,
// prepares every query family through catalog sessions, and wires the HTTP
// routes. Strategies compile lazily, exactly once each, on first request.
func newServer(cfg serverConfig) (*server, error) {
	runCfg := trance.DefaultConfig()
	runCfg.Parallelism = cfg.Parallelism
	s := &server{
		mux:     http.NewServeMux(),
		catalog: trance.NewCatalog(),
		cfg:     cfg,
		runCfg:  runCfg,
		pool:    trance.NewPool(cfg.Workers),
		started: time.Now(),
		queries: map[string]*queryEntry{},
		tqCache: map[string]*trance.SessionQuery{},
		stats:   map[string]*routeStats{},
		traces:  trance.NewTraceRing(0),
	}

	if err := tpch.ValidateLevel(cfg.MaxLevel); err != nil {
		return nil, err
	}
	tables := tpch.Generate(tpch.Config{
		Customers: cfg.Customers, OrdersPerCustomer: 6, LinesPerOrder: 4,
		Parts: 100, SkewFactor: cfg.SkewFactor, Seed: 1,
	})

	// The preloaded data is nothing special: it lands in the same catalog
	// uploads do, under namespaced names, and queries resolve it through
	// session bindings.
	flatEnv := tpch.Env(tpch.FlatToNested, 0, false)
	for name, bag := range tables.Inputs() {
		if err := s.catalog.Register("tpch/"+strings.ToLower(name), flatEnv[name], bag); err != nil {
			return nil, err
		}
	}
	for level := 0; level <= cfg.MaxLevel; level++ {
		nenv := tpch.Env(tpch.NestedToNested, level, false)
		name := fmt.Sprintf("tpch/ndb-l%d", level)
		if err := s.catalog.Register(name, nenv["NDB"], tpch.BuildNested(tables, level, true)); err != nil {
			return nil, err
		}
	}
	bioCfg := biomed.SmallConfig()
	if cfg.BiomedFull {
		bioCfg = biomed.FullConfig()
	}
	bioEnv := biomed.Env()
	for name, bag := range biomed.Generate(bioCfg) {
		if err := s.catalog.Register("biomed/"+strings.ToLower(name), bioEnv[name], bag); err != nil {
			return nil, err
		}
	}

	// Prepare the query families over the catalog.
	classes := []tpch.QueryClass{tpch.FlatToNested, tpch.NestedToNested, tpch.NestedToFlat}
	for _, qc := range classes {
		entry := &queryEntry{name: "tpch/" + qc.String(), queries: map[int]*trance.SessionQuery{}}
		for level := 0; level <= cfg.MaxLevel; level++ {
			bindings := map[string]string{}
			for varName := range tpch.Env(qc, level, false) {
				if varName == "NDB" {
					bindings[varName] = fmt.Sprintf("tpch/ndb-l%d", level)
				} else {
					bindings[varName] = "tpch/" + strings.ToLower(varName)
				}
			}
			sess := s.catalog.NewSession(trance.SessionOptions{
				Config: &s.runCfg, Pool: s.pool, Bindings: bindings,
			})
			sq, err := sess.PrepareNamed(fmt.Sprintf("%s/L%d", entry.name, level), tpch.Query(qc, level, false))
			if err != nil {
				return nil, fmt.Errorf("prepare %s L%d: %w", entry.name, level, err)
			}
			entry.queries[level] = sq
			entry.levels = append(entry.levels, level)
		}
		s.queries[entry.name] = entry
		s.order = append(s.order, entry.name)
	}

	bioBindings := map[string]string{}
	for varName := range bioEnv {
		bioBindings[varName] = "biomed/" + strings.ToLower(varName)
	}
	bioSess := s.catalog.NewSession(trance.SessionOptions{
		Config: &s.runCfg, Pool: s.pool, Bindings: bioBindings,
	})
	bsq, err := bioSess.PrepareNamed("biomed/step1", biomed.Steps()[0].Query)
	if err != nil {
		return nil, fmt.Errorf("prepare biomed/step1: %w", err)
	}
	s.queries["biomed/step1"] = &queryEntry{
		name: "biomed/step1", levels: []int{0},
		queries: map[int]*trance.SessionQuery{0: bsq},
	}
	s.order = append(s.order, "biomed/step1")

	s.adhocSess = s.catalog.NewSession(trance.SessionOptions{Config: &s.runCfg, Pool: s.pool})

	s.mux.HandleFunc("GET /", s.handleIndex)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /query", s.handleQuery)
	s.mux.HandleFunc("POST /query", s.handleTextQuery)
	s.mux.HandleFunc("GET /explain", s.handleExplain)
	s.mux.HandleFunc("POST /explain", s.handleTextExplain)
	s.mux.HandleFunc("GET /strategies", s.handleStrategies)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /datasets", s.handleDatasetsList)
	s.mux.HandleFunc("POST /datasets", s.handleDatasetUpload)
	s.mux.HandleFunc("GET /datasets/{rest...}", s.handleDatasetGet)
	s.mux.HandleFunc("POST /datasets/{rest...}", s.handleDatasetMutate)
	s.mux.HandleFunc("GET /stats", s.handleDatasetStats)
	s.mux.HandleFunc("GET /trace/{id}", s.handleTrace)
	return s, nil
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]any{"error": fmt.Sprintf(format, args...)})
}

func (s *server) lookupQuery(name string) (*queryEntry, bool) {
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	e, ok := s.queries[name]
	return e, ok
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		httpError(w, http.StatusNotFound, "no such endpoint %q", r.URL.Path)
		return
	}
	type qinfo struct {
		Name   string `json:"name"`
		Levels []int  `json:"levels"`
	}
	var qs []qinfo
	s.qmu.RLock()
	for _, name := range s.order {
		qs = append(qs, qinfo{Name: name, Levels: s.queries[name].levels})
	}
	s.qmu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"service": "tranced",
		"endpoints": []string{
			"/query?name=&level=&strategy=&limit=",
			"/query (POST textual NRC query body, ?strategy=&limit= — see docs/QUERYLANG.md)",
			"/explain?name=&level=&strategy=&analyze= (plans before/after the rule-based optimizer; analyze=1 runs with per-operator stats; POST a textual query body)",
			"/datasets (GET list, POST ?name= upload NDJSON/JSON)",
			"/datasets/{name}/indexes (GET list, POST ?column=&kind= build — docs/INDEXES.md)",
			"/datasets/{name}/append (POST NDJSON/JSON rows)",
			"/datasets/{name}/delete (POST ?column=&value=)",
			"/stats?name= (dataset statistics: NDV, min/max, heavy keys)",
			"/trace/{id} (span tree of a recent request, by X-Trance-Trace-Id)",
			"/strategies", "/metrics (?format=prometheus for text exposition)", "/healthz",
		},
		"queries": qs,
	})
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "uptime_s": time.Since(s.started).Seconds()})
}

func (s *server) handleStrategies(w http.ResponseWriter, r *http.Request) {
	type sinfo struct {
		Name      string `json:"name"`
		Paper     string `json:"paper"`
		Shredded  bool   `json:"shredded"`
		SkewAware bool   `json:"skew_aware"`
	}
	var out []sinfo
	for _, s := range append(trance.AllStrategies(), trance.Auto) {
		out = append(out, sinfo{
			Name:      s.CLIName(),
			Paper:     s.String(),
			Shredded:  s.IsShredded(),
			SkewAware: s.SkewAware(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"strategies": out})
}

// handleDatasetsList reports every catalog dataset: the preloads and
// anything uploaded since startup.
func (s *server) handleDatasetsList(w http.ResponseWriter, r *http.Request) {
	type dinfo struct {
		Name   string `json:"name"`
		Type   string `json:"type"`
		Rows   int    `json:"rows"`
		Bytes  int64  `json:"bytes"`
		Source string `json:"source"`
		// Query names the /query entry that scans the dataset, when one
		// exists (every uploaded dataset gets one).
		Query string `json:"query,omitempty"`
	}
	var out []dinfo
	for _, info := range s.catalog.List() {
		d := dinfo{
			Name: info.Name, Type: info.Type.String(),
			Rows: info.Rows, Bytes: info.Bytes, Source: info.Source,
		}
		if _, ok := s.lookupQuery(info.Name); ok {
			d.Query = info.Name
		}
		out = append(out, d)
	}
	writeJSON(w, http.StatusOK, map[string]any{"datasets": out})
}

var datasetNameRe = regexp.MustCompile(`^[a-zA-Z0-9._-]{1,64}$`)

// uploadedFootprint counts the uploaded (source "json") datasets and their
// resident decoded bytes.
func (s *server) uploadedFootprint() (count int, bytes int64) {
	for _, info := range s.catalog.List() {
		if info.Source == "json" {
			count++
			bytes += info.Bytes
		}
	}
	return count, bytes
}

// handleDatasetUpload ingests an ad-hoc JSON dataset: the body is NDJSON or
// a JSON array, the nested schema is inferred (objects→tuples, arrays→bags,
// null/numeric widening), and the dataset becomes immediately queryable
// under datasets/<name> through every strategy via a prepared identity scan.
func (s *server) handleDatasetUpload(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if !datasetNameRe.MatchString(name) {
		httpError(w, http.StatusBadRequest, "dataset name must match %s (got %q)", datasetNameRe, name)
		return
	}
	qname := "datasets/" + name
	// Read the (bounded) body before taking the upload lock, so a slow
	// client cannot hold every other upload hostage on its connection.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes))
	if err != nil {
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		httpError(w, status, "read upload %s: %v", qname, err)
		return
	}
	s.upMu.Lock()
	defer s.upMu.Unlock()
	if count, bytes := s.uploadedFootprint(); count >= s.cfg.MaxDatasets || bytes >= s.cfg.MaxDatasetBytes {
		httpError(w, http.StatusInsufficientStorage,
			"upload limit reached (%d datasets, %d bytes resident; bounds %d / %d)",
			count, bytes, s.cfg.MaxDatasets, s.cfg.MaxDatasetBytes)
		return
	}
	info, err := s.catalog.RegisterJSON(qname, bytes.NewReader(body))
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, trance.ErrDatasetExists) {
			// The catalog's registration is the authoritative (race-free)
			// duplicate check.
			status = http.StatusConflict
		}
		httpError(w, status, "ingest %s: %v", qname, err)
		return
	}
	if info.Rows == 0 {
		// An empty upload is almost always a truncated pipe or the wrong
		// file; registering it would squat the name (there is no DELETE).
		s.catalog.Drop(qname)
		httpError(w, http.StatusBadRequest, "ingest %s: upload contains no rows", qname)
		return
	}
	// Prepare the identity scan over the new dataset so /query serves it
	// through every strategy (shredded routes value-shred the uploaded data
	// once, on first use per route).
	sess := s.catalog.NewSession(trance.SessionOptions{
		Config: &s.runCfg, Pool: s.pool,
		Bindings: map[string]string{"ds": qname},
	})
	scan := trance.ForIn("x", trance.V("ds"), trance.SingOf(trance.V("x")))
	sq, err := sess.PrepareNamed(qname, scan)
	if err != nil {
		s.catalog.Drop(qname)
		httpError(w, http.StatusBadRequest, "prepare %s: %v", qname, err)
		return
	}
	s.qmu.Lock()
	s.queries[qname] = &queryEntry{name: qname, levels: []int{0}, queries: map[int]*trance.SessionQuery{0: sq}}
	s.order = append(s.order, qname)
	s.qmu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]any{
		"name":  qname,
		"type":  info.Type.String(),
		"rows":  info.Rows,
		"bytes": info.Bytes,
		"query": fmt.Sprintf("/query?name=%s", qname),
	})
}

// splitDatasetAction splits a /datasets/{rest...} path into the catalog
// dataset it addresses and the trailing action segment ("indexes", "append",
// "delete"). The dataset part resolves verbatim first (preloads like
// tpch/customer keep their namespaced names), then under the datasets/ prefix
// uploads live under.
func (s *server) splitDatasetAction(rest string) (name, action string, ok bool) {
	i := strings.LastIndex(rest, "/")
	if i <= 0 {
		return "", "", false
	}
	raw, action := rest[:i], rest[i+1:]
	if _, found := s.catalog.Info(raw); found {
		return raw, action, true
	}
	if _, found := s.catalog.Info("datasets/" + raw); found {
		return "datasets/" + raw, action, true
	}
	return "", "", false
}

// indexInfoJSON renders one catalog IndexInfo for the HTTP API.
func indexInfoJSON(ii trance.IndexInfo) map[string]any {
	return map[string]any{
		"dataset":    ii.Dataset,
		"column":     ii.Column,
		"kind":       ii.Kind,
		"keys":       ii.Keys,
		"nulls":      ii.Nulls,
		"rows":       ii.Rows,
		"generation": ii.Generation,
		"auto":       ii.Auto,
	}
}

// handleDatasetGet serves GET /datasets/{name}/indexes: the dataset's
// secondary indexes (auto-built and explicit), in column order.
func (s *server) handleDatasetGet(w http.ResponseWriter, r *http.Request) {
	rest := r.PathValue("rest")
	name, action, ok := s.splitDatasetAction(rest)
	if !ok || action != "indexes" {
		httpError(w, http.StatusNotFound, "no such endpoint /datasets/%s (GET supports /datasets/{name}/indexes)", rest)
		return
	}
	infos, _ := s.catalog.Indexes(name)
	out := make([]map[string]any, 0, len(infos))
	for _, ii := range infos {
		out = append(out, indexInfoJSON(ii))
	}
	writeJSON(w, http.StatusOK, map[string]any{"dataset": name, "indexes": out})
}

// handleDatasetMutate serves the catalog mutation endpoints:
//
//	POST /datasets/{name}/indexes?column=&kind=   build a secondary index
//	POST /datasets/{name}/append                  append NDJSON/JSON rows
//	POST /datasets/{name}/delete?column=&value=   delete rows by key
//
// Every mutation bumps the dataset's generation: prepared routes over it
// re-resolve on their next request, so an append is immediately visible and
// a new index is immediately planned with (see docs/INDEXES.md).
func (s *server) handleDatasetMutate(w http.ResponseWriter, r *http.Request) {
	rest := r.PathValue("rest")
	name, action, ok := s.splitDatasetAction(rest)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown dataset in /datasets/%s (see /datasets)", rest)
		return
	}
	switch action {
	case "indexes":
		column := r.URL.Query().Get("column")
		if column == "" {
			httpError(w, http.StatusBadRequest, "missing ?column= (a top-level scalar column; see /stats?name=%s)", name)
			return
		}
		ii, err := s.catalog.CreateIndex(name, column, r.URL.Query().Get("kind"))
		if err != nil {
			httpError(w, http.StatusBadRequest, "create index: %v", err)
			return
		}
		writeJSON(w, http.StatusCreated, indexInfoJSON(ii))
	case "append":
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes))
		if err != nil {
			status := http.StatusBadRequest
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				status = http.StatusRequestEntityTooLarge
			}
			httpError(w, status, "read append %s: %v", name, err)
			return
		}
		// Appends grow resident data; admit them under the same footprint
		// bound as uploads so an append loop cannot outgrow the server.
		s.upMu.Lock()
		defer s.upMu.Unlock()
		if count, bytes := s.uploadedFootprint(); bytes >= s.cfg.MaxDatasetBytes {
			httpError(w, http.StatusInsufficientStorage,
				"upload limit reached (%d datasets, %d bytes resident; bound %d)",
				count, bytes, s.cfg.MaxDatasetBytes)
			return
		}
		info, n, err := s.catalog.AppendJSON(name, bytes.NewReader(body))
		if err != nil {
			httpError(w, http.StatusBadRequest, "append %s: %v", name, err)
			return
		}
		st, _ := s.catalog.Stats(name)
		writeJSON(w, http.StatusOK, map[string]any{
			"name": name, "appended": n, "rows": info.Rows, "bytes": info.Bytes,
			"generation": st.Generation,
		})
	case "delete":
		q := r.URL.Query()
		column, val := q.Get("column"), q.Get("value")
		if column == "" || val == "" {
			httpError(w, http.StatusBadRequest, "missing ?column= and ?value= (value is a JSON scalar; bare text for string/date columns)")
			return
		}
		removed, err := s.catalog.DeleteJSON(name, column, val)
		if err != nil {
			httpError(w, http.StatusBadRequest, "delete %s: %v", name, err)
			return
		}
		info, _ := s.catalog.Info(name)
		st, _ := s.catalog.Stats(name)
		writeJSON(w, http.StatusOK, map[string]any{
			"name": name, "removed": removed, "rows": info.Rows,
			"generation": st.Generation,
		})
	default:
		httpError(w, http.StatusNotFound,
			"unknown action %q (POST supports /datasets/{name}/indexes, /append, /delete)", action)
	}
}

// handleDatasetStats reports one dataset's collected statistics — the
// row/byte counts, per-column NDV estimates, min/max bounds, and heavy-key
// histograms the cost model plans with (docs/COSTMODEL.md).
func (s *server) handleDatasetStats(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	st, ok := s.catalog.Stats(name)
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown dataset %q (see /datasets)", name)
		return
	}
	type heavyOut struct {
		Value    string  `json:"value"`
		Count    int64   `json:"count"`
		Fraction float64 `json:"fraction"`
	}
	type colOut struct {
		Name          string     `json:"name"`
		Type          string     `json:"type"`
		NDV           int64      `json:"ndv"`
		Exact         bool       `json:"ndv_exact"`
		Min           string     `json:"min,omitempty"`
		Max           string     `json:"max,omitempty"`
		Nulls         int64      `json:"nulls"`
		HeavyFraction float64    `json:"heavy_fraction"`
		Heavy         []heavyOut `json:"heavy_keys,omitempty"`
	}
	cols := make([]colOut, 0, len(st.Columns))
	for _, c := range st.Columns {
		co := colOut{
			Name: c.Name, Type: c.Type.String(), NDV: c.NDV, Exact: c.Exact,
			Nulls: c.Nulls, HeavyFraction: c.HeavyFraction,
		}
		if c.Min != nil {
			co.Min = trance.FormatValue(c.Min)
		}
		if c.Max != nil {
			co.Max = trance.FormatValue(c.Max)
		}
		for _, hk := range c.Heavy {
			co.Heavy = append(co.Heavy, heavyOut{Value: hk.Value, Count: hk.Count, Fraction: hk.Fraction})
		}
		cols = append(cols, co)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"name":       name,
		"rows":       st.Rows,
		"bytes":      st.Bytes,
		"generation": st.Generation,
		"columns":    cols,
	})
}

// route is a resolved (prepared query, level, strategy) triple shared by
// GET /query and GET /explain.
type route struct {
	name      string
	level     int
	sq        *trance.SessionQuery
	strat     trance.Strategy
	stratName string
}

// resolveRoute resolves the name/level/strategy parameters GET /query and
// GET /explain share, writing a 400 and returning ok=false on any bad
// parameter.
func (s *server) resolveRoute(w http.ResponseWriter, r *http.Request) (route, bool) {
	q := r.URL.Query()
	var rt route
	rt.name = q.Get("name")
	entry, ok := s.lookupQuery(rt.name)
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown query %q (see / for the catalog)", rt.name)
		return rt, false
	}
	if lv := q.Get("level"); lv != "" {
		var err error
		rt.level, err = strconv.Atoi(lv)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad level %q", lv)
			return rt, false
		}
	}
	rt.sq, ok = entry.queries[rt.level]
	if !ok {
		httpError(w, http.StatusBadRequest, "query %s has no level %d (levels %v)", rt.name, rt.level, entry.levels)
		return rt, false
	}
	rt.stratName = q.Get("strategy")
	if rt.stratName == "" {
		rt.stratName = "standard"
	}
	rt.strat, ok = trance.ParseStrategy(rt.stratName)
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown strategy %q (see /strategies)", rt.stratName)
		return rt, false
	}
	return rt, true
}

// handleQuery evaluates one prepared query: name + level + strategy → JSON
// rows. Bad requests (unknown query/level/strategy, compile failures) are
// 4xx; engine failures are 5xx; neither can crash the process.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	rt, ok := s.resolveRoute(w, r)
	if !ok {
		return
	}
	name, level, sq, strat, stratName := rt.name, rt.level, rt.sq, rt.strat, rt.stratName
	limit := 20
	if ls := r.URL.Query().Get("limit"); ls != "" {
		var err error
		limit, err = strconv.Atoi(ls)
		if err != nil || limit < 0 {
			httpError(w, http.StatusBadRequest, "bad limit %q", ls)
			return
		}
	}

	t, r := s.startTrace(w, r, "GET /query "+name)
	defer s.finishTrace(t)
	t.Span().Set("route", fmt.Sprintf("%s/L%d/%s", name, level, stratName))

	cols, err := sq.Prepared().OutputSchema(strat)
	if err != nil {
		// Compilation failed: the query/strategy combination is unservable —
		// a client-side problem, reported without crashing anything.
		s.record(name, level, stratName, nil, true)
		httpError(w, http.StatusBadRequest, "compile %s (%s): %v", name, stratName, err)
		return
	}
	res, err := sq.Run(r.Context(), strat)
	if err != nil {
		s.record(name, level, stratName, res, true)
		if errors.Is(err, r.Context().Err()) && r.Context().Err() != nil {
			return // client went away; nothing sensible to write
		}
		httpError(w, http.StatusInternalServerError, "execute %s (%s): %v", name, stratName, err)
		return
	}
	s.record(name, level, stratName, res, false)
	extra := map[string]any{"query": name, "level": level, "trace_id": t.ID}
	if strat == trance.Auto {
		extra["requested"] = "auto"
		extra["chosen_strategy"] = res.Strategy.CLIName()
	}
	esp := t.Span().Child("encode")
	s.writeQueryResult(w, res, cols, limit, extra)
	esp.End()
}

// writeQueryResult renders a run's rows as typed JSON, applying the row
// limit; extra fields are merged into the response object.
func (s *server) writeQueryResult(w http.ResponseWriter, res *trance.Result, cols []trance.OutputColumn, limit int, extra map[string]any) {
	// The strategy that actually ran — under strategy=auto this is the route
	// the cost model chose, visible without parsing the body.
	w.Header().Set("X-Trance-Strategy", res.Strategy.CLIName())
	rows := res.Output.CollectSorted()
	total := len(rows)
	truncated := false
	if limit > 0 && len(rows) > limit {
		rows = rows[:limit]
		truncated = true
	}
	fields := make([]nrc.Field, len(cols))
	for i, c := range cols {
		fields[i] = nrc.Field{Name: c.Name, Type: c.Type}
	}
	tuples := make([]value.Tuple, len(rows))
	for i, row := range rows {
		tuples[i] = value.Tuple(row)
	}
	results := ingest.EncodeRows(tuples, fields)
	type colInfo struct {
		Name string `json:"name"`
		Type string `json:"type"`
	}
	colOut := make([]colInfo, len(cols))
	for i, c := range cols {
		colOut[i] = colInfo{Name: c.Name, Type: c.Type.String()}
	}
	out := map[string]any{
		"strategy":   res.Strategy.String(),
		"elapsed_ms": float64(res.Elapsed.Microseconds()) / 1000,
		"rows":       total,
		"returned":   len(results),
		"truncated":  truncated,
		"columns":    colOut,
		"results":    results,
	}
	for k, v := range extra {
		out[k] = v
	}
	writeJSON(w, http.StatusOK, out)
}

// textQuery returns a prepared session query for an ad-hoc query text,
// serving repeats from a bounded cache. Only successful preparations are
// cached, so a text that failed because its dataset had not been uploaded
// yet is re-resolved on retry.
func (s *server) textQuery(src string) (*trance.SessionQuery, error) {
	s.tqMu.Lock()
	if sq, ok := s.tqCache[src]; ok {
		s.tqMu.Unlock()
		return sq, nil
	}
	s.tqMu.Unlock()
	// Prepare outside the lock: compilation can be slow and the plan cache
	// already guarantees each (query, strategy) compiles once. The shared
	// ad-hoc session dedupes the converted input rows across texts.
	sq, err := s.adhocSess.PrepareText("adhoc", src)
	if err != nil {
		return nil, err
	}
	s.tqMu.Lock()
	defer s.tqMu.Unlock()
	if cached, ok := s.tqCache[src]; ok {
		return cached, nil // a concurrent request won the race; share its binding
	}
	for len(s.tqCache) >= maxTextQueryCache && len(s.tqOrder) > 0 {
		delete(s.tqCache, s.tqOrder[0])
		s.tqOrder = s.tqOrder[1:]
	}
	s.tqCache[src] = sq
	s.tqOrder = append(s.tqOrder, src)
	return sq, nil
}

// handleTextQuery evaluates an ad-hoc textual NRC query (docs/QUERYLANG.md)
// POSTed as the request body against the catalog's datasets — preloaded and
// uploaded alike; names that aren't identifiers are backquoted, e.g.
//
//	for c in `tpch/customer` union { { name := c.c_name } }
//
// The query's free variables resolve against the catalog, compilation goes
// through the bounded plan cache under the query fingerprint, and rows come
// back as typed JSON like GET /query. Lex, parse, type, and resolution
// errors return 400 with a multi-line caret diagnostic in "error"; nothing a
// client posts can crash the process.
func (s *server) handleTextQuery(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxTextQueryBytes))
	if err != nil {
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		httpError(w, status, "read query text: %v", err)
		return
	}
	src := strings.TrimSpace(string(body))
	if src == "" {
		httpError(w, http.StatusBadRequest, "empty query text (POST the query as the request body)")
		return
	}
	q := r.URL.Query()
	stratName := q.Get("strategy")
	if stratName == "" {
		stratName = "standard"
	}
	strat, ok := trance.ParseStrategy(stratName)
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown strategy %q (see /strategies)", stratName)
		return
	}
	limit := 20
	if ls := q.Get("limit"); ls != "" {
		var lerr error
		limit, lerr = strconv.Atoi(ls)
		if lerr != nil || limit < 0 {
			httpError(w, http.StatusBadRequest, "bad limit %q", ls)
			return
		}
	}

	t, r := s.startTrace(w, r, "POST /query")
	defer s.finishTrace(t)

	psp := t.Span().Child("parse")
	sq, err := s.textQuery(src)
	psp.End()
	if err != nil {
		s.record("adhoc", 0, stratName, nil, true)
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cols, err := sq.Prepared().OutputSchema(strat)
	if err != nil {
		s.record("adhoc", 0, stratName, nil, true)
		httpError(w, http.StatusBadRequest, "compile (%s): %v", stratName, err)
		return
	}
	res, err := sq.Run(r.Context(), strat)
	if err != nil {
		s.record("adhoc", 0, stratName, res, true)
		if errors.Is(err, r.Context().Err()) && r.Context().Err() != nil {
			return
		}
		httpError(w, http.StatusInternalServerError, "execute (%s): %v", stratName, err)
		return
	}
	s.record("adhoc", 0, stratName, res, false)
	extra := map[string]any{
		"query":       "adhoc",
		"fingerprint": sq.Prepared().Fingerprint()[:12],
		"trace_id":    t.ID,
	}
	if strat == trance.Auto {
		extra["requested"] = "auto"
		extra["chosen_strategy"] = res.Strategy.CLIName()
	}
	esp := t.Span().Child("encode")
	s.writeQueryResult(w, res, cols, limit, extra)
	esp.End()
}

// handleExplain renders a served query's compiled plans before and after the
// rule-based optimizer pass (predicate pushdown, select fusion, constant
// folding) plus its rule-hit counters: name + level + strategy → text. The
// same parameters /query takes; compilation happens through the plan cache,
// so explaining a route never recompiles a served query.
func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	rt, ok := s.resolveRoute(w, r)
	if !ok {
		return
	}
	analyze := analyzeParam(r)
	var text string
	var err error
	if analyze {
		// EXPLAIN ANALYZE: execute the route with per-operator instrumentation
		// over the bound catalog data and render actual rows/wall/batches
		// beside the static annotations, plus the q-error summary.
		text, err = rt.sq.ExplainAnalyze(r.Context(), rt.strat)
	} else {
		text, err = rt.sq.Prepared().Explain(rt.strat)
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, "explain %s (%s): %v", rt.name, rt.stratName, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"query":    rt.name,
		"level":    rt.level,
		"strategy": rt.strat.String(),
		"analyze":  analyze,
		"explain":  text,
	})
}

// analyzeParam reports whether the request asked for EXPLAIN ANALYZE
// (?analyze=1 / true / yes).
func analyzeParam(r *http.Request) bool {
	switch strings.ToLower(r.URL.Query().Get("analyze")) {
	case "1", "true", "yes":
		return true
	}
	return false
}

// handleTextExplain renders the compiled plans of an ad-hoc textual query
// (the POST /query body format, same ?strategy= parameter) without running
// it — the serving-side way to check whether a pushed-down predicate planned
// as an index scan (the `[index=…]` operator annotation, docs/INDEXES.md).
// With ?analyze=1 the query IS executed, with per-operator instrumentation,
// and the plans render actual rows/wall/batches plus a q-error summary
// (docs/OBSERVABILITY.md).
func (s *server) handleTextExplain(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxTextQueryBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read query text: %v", err)
		return
	}
	src := strings.TrimSpace(string(body))
	if src == "" {
		httpError(w, http.StatusBadRequest, "empty query text (POST the query as the request body)")
		return
	}
	stratName := r.URL.Query().Get("strategy")
	if stratName == "" {
		stratName = "standard"
	}
	strat, ok := trance.ParseStrategy(stratName)
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown strategy %q (see /strategies)", stratName)
		return
	}
	sq, err := s.textQuery(src)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	analyze := analyzeParam(r)
	var text string
	if analyze {
		text, err = sq.ExplainAnalyze(r.Context(), strat)
	} else {
		text, err = sq.Prepared().Explain(strat)
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, "explain (%s): %v", stratName, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"query":    "adhoc",
		"strategy": strat.String(),
		"analyze":  analyze,
		"explain":  text,
	})
}

// record folds one run's outcome and engine metrics into the route's stats.
func (s *server) record(name string, level int, strat string, res *trance.Result, failed bool) {
	key := fmt.Sprintf("%s/L%d/%s", name, level, strat)
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.stats[key]
	if !ok {
		st = &routeStats{StageWall: map[string]time.Duration{}}
		s.stats[key] = st
	}
	st.Count++
	if failed {
		st.Errors++
	}
	if res == nil {
		return
	}
	st.LastElapsed = res.Elapsed
	st.TotalElapsed += res.Elapsed
	st.ShuffleBytes += res.Metrics.ShuffleBytes
	ex := res.Metrics.Exchange
	st.ColumnarBuffers += ex.ColumnarBuffers
	st.BoxedBuffers += ex.BoxedBuffers
	st.ColumnarBytes += ex.ColumnarBytes
	st.BoxedBytes += ex.BoxedBytes
	st.observe(res.Elapsed)
	for _, sw := range res.Metrics.StageWall {
		if _, seen := st.StageWall[sw.Stage]; !seen {
			st.stageOrder = append(st.stageOrder, sw.Stage)
		}
		st.StageWall[sw.Stage] += sw.Wall
	}
}

// snapshotStats deep-copies every route's stats under the lock, so the
// metrics encoders (JSON and Prometheus alike) marshal from a private copy
// with the lock released — a slow scrape client never blocks serving.
func (s *server) snapshotStats() map[string]*routeStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]*routeStats, len(s.stats))
	for key, st := range s.stats {
		cp := *st
		cp.StageWall = make(map[string]time.Duration, len(st.StageWall))
		for stage, w := range st.StageWall {
			cp.StageWall[stage] = w
		}
		cp.stageOrder = append([]string(nil), st.stageOrder...)
		out[key] = &cp
	}
	return out
}

// handleMetrics reports serving counters, the compilation cache, and the
// accumulated per-stage wall times of every served route. The default body
// is JSON; ?format=prometheus (or a text/plain Accept header, what a
// Prometheus scraper sends) switches to the text exposition format.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	if format == "" && strings.Contains(r.Header.Get("Accept"), "text/plain") {
		format = "prometheus"
	}
	switch format {
	case "", "json":
	case "prometheus":
		s.writeMetricsProm(w)
		return
	default:
		httpError(w, http.StatusBadRequest, "unknown metrics format %q (json or prometheus)", format)
		return
	}

	type stageMs struct {
		Stage string  `json:"stage"`
		Ms    float64 `json:"ms"`
	}
	type exchangeOut struct {
		ColumnarBuffers int64 `json:"columnar_buffers"`
		BoxedBuffers    int64 `json:"boxed_buffers"`
		ColumnarBytes   int64 `json:"columnar_bytes"`
		BoxedBytes      int64 `json:"boxed_bytes"`
	}
	type routeOut struct {
		Count        int64       `json:"count"`
		Errors       int64       `json:"errors"`
		LastMs       float64     `json:"last_elapsed_ms"`
		TotalMs      float64     `json:"total_elapsed_ms"`
		ShuffleBytes int64       `json:"shuffle_bytes"`
		Exchange     exchangeOut `json:"shuffle_exchange"`
		StageWallMs  []stageMs   `json:"stage_wall_ms"`
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

	routes := make(map[string]routeOut, len(s.stats))
	for key, st := range s.snapshotStats() {
		ro := routeOut{
			Count: st.Count, Errors: st.Errors,
			LastMs: ms(st.LastElapsed), TotalMs: ms(st.TotalElapsed),
			ShuffleBytes: st.ShuffleBytes,
			Exchange: exchangeOut{
				ColumnarBuffers: st.ColumnarBuffers,
				BoxedBuffers:    st.BoxedBuffers,
				ColumnarBytes:   st.ColumnarBytes,
				BoxedBytes:      st.BoxedBytes,
			},
			StageWallMs: []stageMs{},
		}
		for _, stage := range st.stageOrder {
			ro.StageWallMs = append(ro.StageWallMs, stageMs{Stage: stage, Ms: ms(st.StageWall[stage])})
		}
		routes[key] = ro
	}

	cache := trance.PlanCacheStats()
	opt := trance.OptimizerCounters()
	vec := trance.VectorizeCounters()
	idx := trance.IndexCounters()
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_s": time.Since(s.started).Seconds(),
		"requests": s.requests.Load(),
		"workers":  s.pool.Workers(),
		"datasets": len(s.catalog.Names()),
		"plan_cache": map[string]any{
			"entries":   cache.Entries,
			"compiles":  cache.Compiles,
			"hits":      cache.Hits,
			"evictions": cache.Evictions,
		},
		"auto_strategy": trance.AutoCounters(),
		"optimizer": map[string]any{
			"predicates_pushed":    opt.PredicatesPushed,
			"join_side_derived":    opt.JoinSideDerived,
			"selects_fused":        opt.SelectsFused,
			"constants_folded":     opt.ConstantsFolded,
			"true_selects_dropped": opt.TrueSelectsDropped,
			"false_selects_cut":    opt.FalseSelectsCut,
			"pushes_refused":       opt.PushesRefused,
		},
		"vectorize": map[string]any{
			"ops_vectorized": vec.OpsVectorized,
			"ops_fallback":   vec.OpsFallback,
		},
		"index": map[string]any{
			"built":           idx.Built,
			"refused":         idx.Refused,
			"maintained":      idx.Maintained,
			"rebuilt":         idx.Rebuilt,
			"planned_scans":   idx.PlannedScans,
			"scans":           idx.Scans,
			"fallbacks":       idx.Fallbacks,
			"rows_matched":    idx.RowsMatched,
			"refusal_reasons": trance.IndexRefusalReasons(),
		},
		"routes": routes,
	})
}
