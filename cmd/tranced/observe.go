// Observability endpoints and helpers: per-request tracing (X-Trance-Trace-Id,
// GET /trace/{id}, the slow-query log) and the Prometheus text exposition of
// GET /metrics?format=prometheus. See docs/OBSERVABILITY.md.
package main

import (
	"bytes"
	"log"
	"net/http"
	"sort"
	"time"

	"github.com/trance-go/trance"
	"github.com/trance-go/trance/internal/promtext"
)

// startTrace opens a request trace, stamps its ID on the response headers
// (before any body byte is written), and returns it with a derived context.
func (s *server) startTrace(w http.ResponseWriter, r *http.Request, name string) (*trance.Trace, *http.Request) {
	t := trance.NewTrace(name)
	w.Header().Set("X-Trance-Trace-Id", t.ID)
	return t, r.WithContext(trance.ContextWithTrace(r.Context(), t))
}

// finishTrace closes the trace, files it in the ring behind GET /trace/{id},
// and logs the full span tree when the request crossed the slow-query
// threshold.
func (s *server) finishTrace(t *trance.Trace) {
	t.Finish()
	s.traces.Put(t)
	if s.cfg.SlowQuery > 0 && t.Dur() >= s.cfg.SlowQuery {
		log.Printf("tranced: slow query (%v >= %v)\n%s", t.Dur().Round(time.Microsecond), s.cfg.SlowQuery, t.Tree())
	}
}

// handleTrace serves one recent request trace from the in-memory ring as a
// span tree with wall times and attributes. Traces are evicted
// oldest-first; a 404 means the ID was never issued or has aged out.
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t := s.traces.Get(id)
	if t == nil {
		httpError(w, http.StatusNotFound, "unknown trace %q (kept: last %d traces)", id, s.traces.Len())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":      t.ID,
		"wall_us": t.Dur().Microseconds(),
		"root":    t.View(),
	})
}

// writeMetricsProm renders the same counters handleMetrics serves as JSON in
// the Prometheus text exposition format (version 0.0.4), hand-rolled via
// internal/promtext: typed counter/gauge families plus one fixed-bucket
// latency histogram per served route.
func (s *server) writeMetricsProm(w http.ResponseWriter) {
	cache := trance.PlanCacheStats()
	opt := trance.OptimizerCounters()
	vec := trance.VectorizeCounters()
	idx := trance.IndexCounters()

	one := func(name, help, typ string, v float64) promtext.Family {
		return promtext.Family{Name: name, Help: help, Type: typ, Samples: []promtext.Sample{{Value: v}}}
	}
	fams := []promtext.Family{
		one("trance_uptime_seconds", "Seconds since the server started.", "gauge", time.Since(s.started).Seconds()),
		one("trance_requests_total", "HTTP requests received.", "counter", float64(s.requests.Load())),
		one("trance_workers", "Shared worker pool size.", "gauge", float64(s.pool.Workers())),
		one("trance_datasets", "Datasets registered in the catalog.", "gauge", float64(len(s.catalog.Names()))),
		one("trance_plan_cache_entries", "Compiled (query, strategy) plans cached.", "gauge", float64(cache.Entries)),
		one("trance_plan_cache_compiles_total", "Compilations performed.", "counter", float64(cache.Compiles)),
		one("trance_plan_cache_hits_total", "Plan cache lookups served without compiling.", "counter", float64(cache.Hits)),
		one("trance_plan_cache_evictions_total", "Plan cache entries evicted by the size bound.", "counter", float64(cache.Evictions)),
	}

	auto := promtext.Family{Name: "trance_auto_strategy_total", Help: "Auto strategy resolutions by chosen route.", Type: "counter"}
	autoCounts := trance.AutoCounters()
	routesChosen := make([]string, 0, len(autoCounts))
	for route := range autoCounts {
		routesChosen = append(routesChosen, route)
	}
	sort.Strings(routesChosen)
	for _, route := range routesChosen {
		auto.Samples = append(auto.Samples, promtext.Sample{
			Labels: []promtext.Label{{Name: "route", Value: route}},
			Value:  float64(autoCounts[route]),
		})
	}
	if len(auto.Samples) > 0 {
		fams = append(fams, auto)
	}

	fams = append(fams,
		one("trance_optimizer_predicates_pushed_total", "Optimizer predicate pushdowns.", "counter", float64(opt.PredicatesPushed)),
		one("trance_optimizer_join_side_derived_total", "Join-side filters derived from key equalities.", "counter", float64(opt.JoinSideDerived)),
		one("trance_optimizer_selects_fused_total", "Adjacent selections fused.", "counter", float64(opt.SelectsFused)),
		one("trance_optimizer_constants_folded_total", "Constant subexpressions folded.", "counter", float64(opt.ConstantsFolded)),
		one("trance_optimizer_true_selects_dropped_total", "Trivially-true selections dropped.", "counter", float64(opt.TrueSelectsDropped)),
		one("trance_optimizer_false_selects_cut_total", "Trivially-false selections cut.", "counter", float64(opt.FalseSelectsCut)),
		one("trance_optimizer_pushes_refused_total", "Pushdowns refused at soundness boundaries.", "counter", float64(opt.PushesRefused)),
		one("trance_vectorize_ops_vectorized_total", "Narrow operators compiled to columnar kernels.", "counter", float64(vec.OpsVectorized)),
		one("trance_vectorize_ops_fallback_total", "Narrow operators kept on the row interpreter.", "counter", float64(vec.OpsFallback)),
		one("trance_index_built_total", "Secondary indexes built.", "counter", float64(idx.Built)),
		one("trance_index_refused_total", "Index builds refused.", "counter", float64(idx.Refused)),
		one("trance_index_maintained_total", "Incremental index maintenance operations.", "counter", float64(idx.Maintained)),
		one("trance_index_rebuilt_total", "Index rebuilds.", "counter", float64(idx.Rebuilt)),
		one("trance_index_planned_scans_total", "Index scans planned.", "counter", float64(idx.PlannedScans)),
		one("trance_index_scans_total", "Index scans executed.", "counter", float64(idx.Scans)),
		one("trance_index_fallbacks_total", "Index scans that fell back to full scans.", "counter", float64(idx.Fallbacks)),
		one("trance_index_rows_matched_total", "Rows matched by index scans.", "counter", float64(idx.RowsMatched)),
	)

	refusals := promtext.Family{Name: "trance_index_refusals_total", Help: "Index build refusals by reason.", Type: "counter"}
	refusalCounts := trance.IndexRefusalReasons()
	reasons := make([]string, 0, len(refusalCounts))
	for reason := range refusalCounts {
		reasons = append(reasons, reason)
	}
	sort.Strings(reasons)
	for _, reason := range reasons {
		refusals.Samples = append(refusals.Samples, promtext.Sample{
			Labels: []promtext.Label{{Name: "reason", Value: reason}},
			Value:  float64(refusalCounts[reason]),
		})
	}
	if len(refusals.Samples) > 0 {
		fams = append(fams, refusals)
	}

	stats := s.snapshotStats()
	routes := make([]string, 0, len(stats))
	for route := range stats {
		routes = append(routes, route)
	}
	sort.Strings(routes)
	reqs := promtext.Family{Name: "trance_route_requests_total", Help: "Query requests by route (query/level/strategy).", Type: "counter"}
	errs := promtext.Family{Name: "trance_route_errors_total", Help: "Failed query requests by route.", Type: "counter"}
	shuf := promtext.Family{Name: "trance_route_shuffle_bytes_total", Help: "Engine bytes shuffled by route.", Type: "counter"}
	exBufs := promtext.Family{Name: "trance_route_shuffle_exchange_buffers_total", Help: "Shuffle buffers moved across the wide-operator boundary by route and representation (columnar = typed column buffers, boxed = row buffers).", Type: "counter"}
	exBytes := promtext.Family{Name: "trance_route_shuffle_exchange_bytes_total", Help: "Metered shuffle bytes by route and representation (columnar buffers meter their compact typed encoding).", Type: "counter"}
	lat := promtext.Family{Name: "trance_route_latency_seconds", Help: "Query execution latency by route.", Type: "histogram"}
	for _, route := range routes {
		st := stats[route]
		ls := []promtext.Label{{Name: "route", Value: route}}
		columnar := []promtext.Label{{Name: "route", Value: route}, {Name: "representation", Value: "columnar"}}
		boxed := []promtext.Label{{Name: "route", Value: route}, {Name: "representation", Value: "boxed"}}
		reqs.Samples = append(reqs.Samples, promtext.Sample{Labels: ls, Value: float64(st.Count)})
		errs.Samples = append(errs.Samples, promtext.Sample{Labels: ls, Value: float64(st.Errors)})
		shuf.Samples = append(shuf.Samples, promtext.Sample{Labels: ls, Value: float64(st.ShuffleBytes)})
		exBufs.Samples = append(exBufs.Samples,
			promtext.Sample{Labels: columnar, Value: float64(st.ColumnarBuffers)},
			promtext.Sample{Labels: boxed, Value: float64(st.BoxedBuffers)})
		exBytes.Samples = append(exBytes.Samples,
			promtext.Sample{Labels: columnar, Value: float64(st.ColumnarBytes)},
			promtext.Sample{Labels: boxed, Value: float64(st.BoxedBytes)})
		lat.Samples = append(lat.Samples, promtext.HistogramSamples(ls, latencyBuckets, st.Hist[:], st.HistInf, st.HistSum)...)
	}
	if len(reqs.Samples) > 0 {
		fams = append(fams, reqs, errs, shuf, exBufs, exBytes, lat)
	}

	var buf bytes.Buffer
	if err := promtext.Write(&buf, fams); err != nil {
		httpError(w, http.StatusInternalServerError, "render metrics: %v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(buf.Bytes())
}
