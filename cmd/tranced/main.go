// Command tranced serves the library's prepared benchmark queries over HTTP:
// compile-once/run-many evaluation of TPC-H and biomedical workloads on a
// shared bounded worker pool, with per-stage engine metrics.
//
// Endpoints:
//
//	GET /                 catalog of preloaded queries and endpoints
//	GET /query            name + level + strategy → JSON result rows
//	GET /strategies       the paper's evaluation strategies
//	GET /metrics          serving counters, plan cache, per-stage wall times
//	GET /healthz          liveness
//
// Example:
//
//	tranced -addr :8080 &
//	curl 'localhost:8080/query?name=tpch/nested-to-nested&level=2&strategy=shred&limit=3'
//	curl 'localhost:8080/metrics'
//
// See docs/SERVING.md for the full reference.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	cfg := defaultServerConfig()
	addr := flag.String("addr", ":8080", "listen address")
	flag.IntVar(&cfg.Customers, "customers", cfg.Customers, "TPC-H customers to generate")
	flag.IntVar(&cfg.SkewFactor, "skew", cfg.SkewFactor, "TPC-H skew factor (0-4)")
	flag.IntVar(&cfg.Parallelism, "parallelism", cfg.Parallelism, "partitions per shuffle")
	flag.IntVar(&cfg.Workers, "workers", cfg.Workers, "shared worker pool size (0 = NumCPU)")
	flag.IntVar(&cfg.MaxLevel, "max-level", cfg.MaxLevel, "highest TPC-H nesting level to preload (0-4)")
	flag.BoolVar(&cfg.BiomedFull, "biomed-full", cfg.BiomedFull, "use the full-size biomedical dataset")
	flag.Parse()

	start := time.Now()
	srv, err := newServer(cfg)
	if err != nil {
		log.Fatalf("tranced: %v", err)
	}
	log.Printf("tranced: prepared %d query families in %v, serving on %s", len(srv.queries), time.Since(start), *addr)

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}
	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-done
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
	}()
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("tranced: %v", err)
	}
}
