// Command tranced serves nested-data queries over HTTP: a catalog of named,
// typed datasets (TPC-H and biomedical preloads registered at startup,
// ad-hoc JSON uploads at runtime with inferred schemas) and compile-once/
// run-many prepared queries over them, on a shared bounded worker pool with
// per-stage engine metrics.
//
// Endpoints:
//
//	GET  /                 catalog of servable queries and endpoints
//	GET  /query            name + level + strategy → JSON result rows
//	GET  /datasets         every dataset: name, schema, rows, bytes, source
//	POST /datasets?name=X  upload NDJSON or a JSON array; schema is inferred
//	                       and the dataset becomes queryable immediately
//	GET  /strategies       the paper's evaluation strategies
//	GET  /metrics          serving counters, plan cache, per-stage wall times
//	GET  /healthz          liveness
//
// Example:
//
//	tranced -addr :8080 &
//	curl 'localhost:8080/query?name=tpch/nested-to-nested&level=2&strategy=shred&limit=3'
//	curl -X POST --data-binary @rows.ndjson 'localhost:8080/datasets?name=mine'
//	curl 'localhost:8080/query?name=datasets/mine&strategy=shred%2Bunshred'
//
// See docs/SERVING.md for the full reference.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	cfg := defaultServerConfig()
	addr := flag.String("addr", ":8080", "listen address")
	debugAddr := flag.String("debug-addr", "", "optional separate listen address for net/http/pprof profiling endpoints (e.g. 127.0.0.1:6060); empty disables them")
	flag.IntVar(&cfg.Customers, "customers", cfg.Customers, "TPC-H customers to generate")
	flag.IntVar(&cfg.SkewFactor, "skew", cfg.SkewFactor, "TPC-H skew factor (0-4)")
	flag.IntVar(&cfg.Parallelism, "parallelism", cfg.Parallelism, "partitions per shuffle")
	flag.IntVar(&cfg.Workers, "workers", cfg.Workers, "shared worker pool size (0 = NumCPU)")
	flag.IntVar(&cfg.MaxLevel, "max-level", cfg.MaxLevel, "highest TPC-H nesting level to preload (0-4)")
	flag.BoolVar(&cfg.BiomedFull, "biomed-full", cfg.BiomedFull, "use the full-size biomedical dataset")
	flag.Int64Var(&cfg.MaxUploadBytes, "max-upload", cfg.MaxUploadBytes, "POST /datasets body size limit in bytes")
	flag.IntVar(&cfg.MaxDatasets, "max-datasets", cfg.MaxDatasets, "uploaded datasets held at once")
	flag.Int64Var(&cfg.MaxDatasetBytes, "max-dataset-bytes", cfg.MaxDatasetBytes, "total resident bytes of uploaded datasets")
	flag.DurationVar(&cfg.SlowQuery, "slow-query", cfg.SlowQuery, "log the full span tree of requests at least this slow (e.g. 250ms; 0 disables)")
	flag.Parse()

	start := time.Now()
	srv, err := newServer(cfg)
	if err != nil {
		log.Fatalf("tranced: %v", err)
	}
	log.Printf("tranced: prepared %d query families in %v, serving on %s", len(srv.queries), time.Since(start), *addr)

	if *debugAddr != "" {
		// Profiling stays off the service mux and (typically) on a loopback
		// address, so production scrapers and clients never see it.
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("tranced: pprof on http://%s/debug/pprof/", *debugAddr)
			ds := &http.Server{Addr: *debugAddr, Handler: dbg, ReadHeaderTimeout: 5 * time.Second}
			if err := ds.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("tranced: pprof server: %v", err)
			}
		}()
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}
	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-done
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
	}()
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("tranced: %v", err)
	}
}
