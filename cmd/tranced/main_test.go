package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// testServer builds a small server once for the whole test file.
var (
	testOnce sync.Once
	testSrv  *server
	testErr  error
)

func smallServer(t *testing.T) *server {
	t.Helper()
	testOnce.Do(func() {
		cfg := defaultServerConfig()
		cfg.Customers = 20
		cfg.MaxLevel = 1
		testSrv, testErr = newServer(cfg)
	})
	if testErr != nil {
		t.Fatalf("newServer: %v", testErr)
	}
	return testSrv
}

func getJSON(t *testing.T, ts *httptest.Server, path string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d (want %d): %s", path, resp.StatusCode, wantStatus, body)
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("GET %s: not JSON: %v\n%s", path, err, body)
	}
	return out
}

func TestQueryEndpoint(t *testing.T) {
	ts := httptest.NewServer(smallServer(t))
	defer ts.Close()

	for _, q := range []string{
		"/query?name=tpch/nested-to-nested&level=1&strategy=standard&limit=3",
		"/query?name=tpch/nested-to-nested&level=1&strategy=shred&limit=3",
		"/query?name=tpch/nested-to-flat&level=1&strategy=shred%2Bunshred",
		"/query?name=tpch/flat-to-nested&level=0",
		"/query?name=biomed/step1&strategy=shred",
	} {
		out := getJSON(t, ts, q, http.StatusOK)
		if out["rows"].(float64) <= 0 {
			t.Fatalf("%s: no rows: %v", q, out)
		}
		results := out["results"].([]any)
		if len(results) == 0 {
			t.Fatalf("%s: empty results", q)
		}
		if _, ok := results[0].(map[string]any); !ok {
			t.Fatalf("%s: result rows should be objects: %v", q, results[0])
		}
	}
}

func TestQueryEndpointRejectsBadRequests(t *testing.T) {
	ts := httptest.NewServer(smallServer(t))
	defer ts.Close()

	for _, q := range []string{
		"/query?name=nope",
		"/query?name=tpch/nested-to-nested&level=9",
		"/query?name=tpch/nested-to-nested&level=x",
		"/query?name=tpch/nested-to-nested&strategy=quantum",
		"/query?name=tpch/nested-to-nested&limit=-2",
	} {
		out := getJSON(t, ts, q, http.StatusBadRequest)
		if out["error"] == nil {
			t.Fatalf("%s: missing error field: %v", q, out)
		}
	}
}

func TestStrategiesEndpoint(t *testing.T) {
	ts := httptest.NewServer(smallServer(t))
	defer ts.Close()

	out := getJSON(t, ts, "/strategies", http.StatusOK)
	list := out["strategies"].([]any)
	if len(list) != 8 { // seven explicit routes plus auto
		t.Fatalf("want 8 strategies, got %d", len(list))
	}
	last := list[len(list)-1].(map[string]any)
	if last["name"] != "auto" {
		t.Fatalf("want auto listed last, got %v", last)
	}
}

// TestAutoQueryEndpoint: strategy=auto resolves to a concrete route, reported
// in the X-Trance-Strategy header and the requested/chosen_strategy fields.
func TestAutoQueryEndpoint(t *testing.T) {
	ts := httptest.NewServer(smallServer(t))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/query?name=tpch/nested-to-nested&level=1&strategy=auto&limit=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	chosen := resp.Header.Get("X-Trance-Strategy")
	if chosen == "" || chosen == "auto" {
		t.Fatalf("X-Trance-Strategy = %q, want a concrete route", chosen)
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, body)
	}
	if out["requested"] != "auto" {
		t.Fatalf("requested = %v, want auto", out["requested"])
	}
	if out["chosen_strategy"] != chosen {
		t.Fatalf("chosen_strategy = %v, header %q — must agree", out["chosen_strategy"], chosen)
	}
	if out["rows"].(float64) <= 0 {
		t.Fatalf("no rows: %v", out)
	}

	// A concrete strategy request carries the route header but no
	// requested/chosen_strategy fields.
	out2 := getJSON(t, ts, "/query?name=tpch/nested-to-nested&level=1&strategy=standard&limit=3", http.StatusOK)
	if _, ok := out2["chosen_strategy"]; ok {
		t.Fatalf("chosen_strategy leaked into a non-auto response: %v", out2)
	}
}

// TestDatasetStatsEndpoint: collected statistics of a preloaded dataset.
func TestDatasetStatsEndpoint(t *testing.T) {
	ts := httptest.NewServer(smallServer(t))
	defer ts.Close()

	out := getJSON(t, ts, "/stats?name=tpch/lineitem", http.StatusOK)
	if out["rows"].(float64) <= 0 || out["generation"].(float64) <= 0 {
		t.Fatalf("stats: %v", out)
	}
	cols := out["columns"].([]any)
	if len(cols) == 0 {
		t.Fatalf("no columns: %v", out)
	}
	first := cols[0].(map[string]any)
	for _, field := range []string{"name", "type", "ndv", "heavy_fraction"} {
		if _, ok := first[field]; !ok {
			t.Fatalf("column missing %q: %v", field, first)
		}
	}

	if out := getJSON(t, ts, "/stats?name=nope", http.StatusBadRequest); out["error"] == nil {
		t.Fatalf("unknown dataset: %v", out)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := httptest.NewServer(smallServer(t))
	defer ts.Close()

	getJSON(t, ts, "/query?name=tpch/nested-to-nested&level=1&strategy=shred", http.StatusOK)
	out := getJSON(t, ts, "/metrics", http.StatusOK)
	cache := out["plan_cache"].(map[string]any)
	if cache["compiles"].(float64) < 1 {
		t.Fatalf("plan cache shows no compilations: %v", out)
	}
	routes := out["routes"].(map[string]any)
	route, ok := routes["tpch/nested-to-nested/L1/shred"].(map[string]any)
	if !ok {
		t.Fatalf("route stats missing: %v", routes)
	}
	stages := route["stage_wall_ms"].([]any)
	if len(stages) == 0 {
		t.Fatal("route should report per-stage wall times")
	}
}

// Hammer one query family from many goroutines across strategies: every
// response must be 200 with identical row counts per strategy class.
func TestConcurrentQueries(t *testing.T) {
	ts := httptest.NewServer(smallServer(t))
	defer ts.Close()

	strategies := []string{"standard", "shred", "shred%2Bunshred", "sparksql"}
	const goroutines = 16
	rowCounts := make([]float64, goroutines)
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := fmt.Sprintf("/query?name=tpch/nested-to-nested&level=1&strategy=%s&limit=1", strategies[g%len(strategies)])
			resp, err := http.Get(ts.URL + q)
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("%s: status %d: %s", q, resp.StatusCode, body)
				return
			}
			var out map[string]any
			if err := json.Unmarshal(body, &out); err != nil {
				errs <- fmt.Errorf("%s: %v", q, err)
				return
			}
			rowCounts[g] = out["rows"].(float64)
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Every strategy returns the same top-level cardinality for this query.
	for g := 1; g < goroutines; g++ {
		if rowCounts[g] != rowCounts[0] {
			t.Fatalf("row counts diverge: %v", rowCounts)
		}
	}
}

func TestIndexAndHealth(t *testing.T) {
	ts := httptest.NewServer(smallServer(t))
	defer ts.Close()

	out := getJSON(t, ts, "/", http.StatusOK)
	if out["queries"] == nil {
		t.Fatalf("index should list queries: %v", out)
	}
	h := getJSON(t, ts, "/healthz", http.StatusOK)
	if h["status"] != "ok" {
		t.Fatalf("health: %v", h)
	}
}

// Upload an ad-hoc NDJSON dataset, list it, and query it through every
// strategy: the inferred schema and the rows must agree across routes — the
// dataset was never seen at compile time.
func TestDatasetUploadAndQuery(t *testing.T) {
	ts := httptest.NewServer(smallServer(t))
	defer ts.Close()

	ndjson := `{"cust": "alice", "orders": [{"pid": 1, "qty": 2.5}, {"pid": 2, "qty": 4}]}
{"cust": "bob", "orders": []}
{"cust": "carol", "orders": [{"pid": 3, "qty": 1}]}`
	resp, err := http.Post(ts.URL+"/datasets?name=adhoc-orders", "application/x-ndjson", strings.NewReader(ndjson))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: status %d: %s", resp.StatusCode, body)
	}
	var up map[string]any
	if err := json.Unmarshal(body, &up); err != nil {
		t.Fatal(err)
	}
	if up["rows"].(float64) != 3 {
		t.Fatalf("want 3 rows, got %v", up)
	}
	wantType := "Bag(⟨cust: string, orders: Bag(⟨pid: int, qty: real⟩)⟩)"
	if up["type"] != wantType {
		t.Fatalf("inferred type %q, want %q", up["type"], wantType)
	}

	// The dataset shows up in the listing, marked queryable.
	list := getJSON(t, ts, "/datasets", http.StatusOK)
	found := false
	for _, d := range list["datasets"].([]any) {
		dm := d.(map[string]any)
		if dm["name"] == "datasets/adhoc-orders" {
			found = true
			if dm["source"] != "json" || dm["query"] != "datasets/adhoc-orders" {
				t.Fatalf("listing entry: %v", dm)
			}
		}
	}
	if !found {
		t.Fatalf("uploaded dataset missing from listing: %v", list)
	}

	// Queryable through every strategy, with identical JSON results.
	var blobs []string
	for _, strat := range []string{"standard", "sparksql", "shred%2Bunshred", "standard-skew", "shred%2Bunshred-skew"} {
		out := getJSON(t, ts, "/query?name=datasets/adhoc-orders&strategy="+strat, http.StatusOK)
		if out["rows"].(float64) != 3 {
			t.Fatalf("%s: want 3 rows: %v", strat, out)
		}
		b, _ := json.Marshal(out["results"])
		blobs = append(blobs, string(b))
	}
	for i := 1; i < len(blobs); i++ {
		if blobs[i] != blobs[0] {
			t.Fatalf("strategies disagree on uploaded data:\n%s\nvs\n%s", blobs[0], blobs[i])
		}
	}
	if !strings.Contains(blobs[0], `"cust":"alice"`) || !strings.Contains(blobs[0], `"qty":2.5`) {
		t.Fatalf("unexpected results: %s", blobs[0])
	}
	// The pure-shred route serves the label-bearing top bag.
	out := getJSON(t, ts, "/query?name=datasets/adhoc-orders&strategy=shred", http.StatusOK)
	if out["rows"].(float64) != 3 {
		t.Fatalf("shred: %v", out)
	}
}

func TestDatasetUploadRejectsBadInput(t *testing.T) {
	ts := httptest.NewServer(smallServer(t))
	defer ts.Close()

	post := func(path, body string) (int, string) {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	// Missing/invalid name.
	if code, _ := post("/datasets", `{"a":1}`); code != http.StatusBadRequest {
		t.Fatalf("missing name: %d", code)
	}
	if code, _ := post("/datasets?name=bad/slash", `{"a":1}`); code != http.StatusBadRequest {
		t.Fatalf("bad name: %d", code)
	}
	// Malformed JSON.
	if code, _ := post("/datasets?name=broken1", `{"a": `); code != http.StatusBadRequest {
		t.Fatalf("malformed body: %d", code)
	}
	// Irreconcilable schema: descriptive 400, not a crash.
	code, body := post("/datasets?name=broken2", "{\"a\": 1}\n{\"a\": \"x\"}")
	if code != http.StatusBadRequest || !strings.Contains(body, "cannot reconcile") {
		t.Fatalf("irreconcilable: %d %s", code, body)
	}
	// Empty body: 400, and the name is not squatted — a retry with data works.
	if code, body := post("/datasets?name=emptyfirst", ""); code != http.StatusBadRequest || !strings.Contains(body, "no rows") {
		t.Fatalf("empty upload: %d %s", code, body)
	}
	if code, _ := post("/datasets?name=emptyfirst", `{"a":1}`); code != http.StatusCreated {
		t.Fatalf("retry after empty upload should succeed: %d", code)
	}
	// Duplicate name: 409.
	if code, _ := post("/datasets?name=dup1", `{"a":1}`); code != http.StatusCreated {
		t.Fatalf("first upload: %d", code)
	}
	if code, _ := post("/datasets?name=dup1", `{"a":2}`); code != http.StatusConflict {
		t.Fatalf("duplicate upload: %d", code)
	}
	// Failed ingestion must not register a queryable dataset.
	if out := getJSON(t, ts, "/query?name=datasets/broken2", http.StatusBadRequest); out["error"] == nil {
		t.Fatalf("broken dataset should not be queryable: %v", out)
	}
}

// The server bounds uploaded-dataset count/bytes: past the cap, uploads get
// 507 instead of growing memory without limit.
func TestDatasetUploadBounded(t *testing.T) {
	cfg := defaultServerConfig()
	cfg.Customers = 5
	cfg.MaxLevel = 0
	cfg.MaxDatasets = 1
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	post := func(name string) int {
		resp, err := http.Post(ts.URL+"/datasets?name="+name, "application/json", strings.NewReader(`{"a":1}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("first"); code != http.StatusCreated {
		t.Fatalf("first upload: %d", code)
	}
	if code := post("second"); code != http.StatusInsufficientStorage {
		t.Fatalf("over-cap upload should be 507, got %d", code)
	}
}
