package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// testServer builds a small server once for the whole test file.
var (
	testOnce sync.Once
	testSrv  *server
	testErr  error
)

func smallServer(t *testing.T) *server {
	t.Helper()
	testOnce.Do(func() {
		cfg := defaultServerConfig()
		cfg.Customers = 20
		cfg.MaxLevel = 1
		testSrv, testErr = newServer(cfg)
	})
	if testErr != nil {
		t.Fatalf("newServer: %v", testErr)
	}
	return testSrv
}

func getJSON(t *testing.T, ts *httptest.Server, path string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d (want %d): %s", path, resp.StatusCode, wantStatus, body)
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("GET %s: not JSON: %v\n%s", path, err, body)
	}
	return out
}

func TestQueryEndpoint(t *testing.T) {
	ts := httptest.NewServer(smallServer(t))
	defer ts.Close()

	for _, q := range []string{
		"/query?name=tpch/nested-to-nested&level=1&strategy=standard&limit=3",
		"/query?name=tpch/nested-to-nested&level=1&strategy=shred&limit=3",
		"/query?name=tpch/nested-to-flat&level=1&strategy=shred%2Bunshred",
		"/query?name=tpch/flat-to-nested&level=0",
		"/query?name=biomed/step1&strategy=shred",
	} {
		out := getJSON(t, ts, q, http.StatusOK)
		if out["rows"].(float64) <= 0 {
			t.Fatalf("%s: no rows: %v", q, out)
		}
		results := out["results"].([]any)
		if len(results) == 0 {
			t.Fatalf("%s: empty results", q)
		}
		if _, ok := results[0].(map[string]any); !ok {
			t.Fatalf("%s: result rows should be objects: %v", q, results[0])
		}
	}
}

func TestQueryEndpointRejectsBadRequests(t *testing.T) {
	ts := httptest.NewServer(smallServer(t))
	defer ts.Close()

	for _, q := range []string{
		"/query?name=nope",
		"/query?name=tpch/nested-to-nested&level=9",
		"/query?name=tpch/nested-to-nested&level=x",
		"/query?name=tpch/nested-to-nested&strategy=quantum",
		"/query?name=tpch/nested-to-nested&limit=-2",
	} {
		out := getJSON(t, ts, q, http.StatusBadRequest)
		if out["error"] == nil {
			t.Fatalf("%s: missing error field: %v", q, out)
		}
	}
}

func TestStrategiesEndpoint(t *testing.T) {
	ts := httptest.NewServer(smallServer(t))
	defer ts.Close()

	out := getJSON(t, ts, "/strategies", http.StatusOK)
	list := out["strategies"].([]any)
	if len(list) != 7 {
		t.Fatalf("want 7 strategies, got %d", len(list))
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := httptest.NewServer(smallServer(t))
	defer ts.Close()

	getJSON(t, ts, "/query?name=tpch/nested-to-nested&level=1&strategy=shred", http.StatusOK)
	out := getJSON(t, ts, "/metrics", http.StatusOK)
	cache := out["plan_cache"].(map[string]any)
	if cache["compiles"].(float64) < 1 {
		t.Fatalf("plan cache shows no compilations: %v", out)
	}
	routes := out["routes"].(map[string]any)
	route, ok := routes["tpch/nested-to-nested/L1/shred"].(map[string]any)
	if !ok {
		t.Fatalf("route stats missing: %v", routes)
	}
	stages := route["stage_wall_ms"].([]any)
	if len(stages) == 0 {
		t.Fatal("route should report per-stage wall times")
	}
}

// Hammer one query family from many goroutines across strategies: every
// response must be 200 with identical row counts per strategy class.
func TestConcurrentQueries(t *testing.T) {
	ts := httptest.NewServer(smallServer(t))
	defer ts.Close()

	strategies := []string{"standard", "shred", "shred%2Bunshred", "sparksql"}
	const goroutines = 16
	rowCounts := make([]float64, goroutines)
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := fmt.Sprintf("/query?name=tpch/nested-to-nested&level=1&strategy=%s&limit=1", strategies[g%len(strategies)])
			resp, err := http.Get(ts.URL + q)
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("%s: status %d: %s", q, resp.StatusCode, body)
				return
			}
			var out map[string]any
			if err := json.Unmarshal(body, &out); err != nil {
				errs <- fmt.Errorf("%s: %v", q, err)
				return
			}
			rowCounts[g] = out["rows"].(float64)
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Every strategy returns the same top-level cardinality for this query.
	for g := 1; g < goroutines; g++ {
		if rowCounts[g] != rowCounts[0] {
			t.Fatalf("row counts diverge: %v", rowCounts)
		}
	}
}

func TestIndexAndHealth(t *testing.T) {
	ts := httptest.NewServer(smallServer(t))
	defer ts.Close()

	out := getJSON(t, ts, "/", http.StatusOK)
	if out["queries"] == nil {
		t.Fatalf("index should list queries: %v", out)
	}
	h := getJSON(t, ts, "/healthz", http.StatusOK)
	if h["status"] != "ok" {
		t.Fatalf("health: %v", h)
	}
}
