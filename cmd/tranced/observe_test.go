package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/trance-go/trance/internal/promtext"
)

// scrapeProm fetches the Prometheus exposition and strict-parses it; any
// format violation (declaration order, label escaping, histogram bucket
// monotonicity) fails the test.
func scrapeProm(t *testing.T, ts *httptest.Server, path string, hdr map[string]string) map[string]*promtext.ParsedFamily {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("GET %s: content type %q, want the 0.0.4 text exposition", path, ct)
	}
	fams, err := promtext.Parse(string(body))
	if err != nil {
		t.Fatalf("GET %s: exposition does not strict-parse: %v\n%s", path, err, body)
	}
	return fams
}

func TestPrometheusScrape(t *testing.T) {
	ts := httptest.NewServer(smallServer(t))
	defer ts.Close()

	getJSON(t, ts, "/query?name=tpch/nested-to-nested&level=1&strategy=shred", http.StatusOK)
	first := scrapeProm(t, ts, "/metrics?format=prometheus", nil)

	wantTypes := map[string]string{
		"trance_requests_total":            "counter",
		"trance_uptime_seconds":            "gauge",
		"trance_plan_cache_compiles_total": "counter",
		"trance_route_requests_total":      "counter",
		"trance_route_latency_seconds":     "histogram",
	}
	for name, typ := range wantTypes {
		fam := first[name]
		if fam == nil {
			t.Fatalf("family %s missing from scrape", name)
		}
		if fam.Type != typ {
			t.Fatalf("family %s has type %s, want %s", name, fam.Type, typ)
		}
	}
	route := "tpch/nested-to-nested/L1/shred"
	found := false
	for _, s := range first["trance_route_requests_total"].Samples {
		if s.Labels["route"] == route {
			found = true
			if s.Value < 1 {
				t.Fatalf("route %s counted %g requests", route, s.Value)
			}
		}
	}
	if !found {
		t.Fatalf("route label %q missing: %+v", route, first["trance_route_requests_total"].Samples)
	}

	// Counters must be monotonic across scrapes: run another query, scrape
	// again (this time via Accept negotiation), and compare sample by sample.
	getJSON(t, ts, "/query?name=tpch/nested-to-nested&level=1&strategy=shred", http.StatusOK)
	second := scrapeProm(t, ts, "/metrics", map[string]string{"Accept": "text/plain"})
	for name, fam := range first {
		if fam.Type != "counter" && fam.Type != "histogram" {
			continue
		}
		after := second[name]
		if after == nil {
			t.Fatalf("family %s disappeared between scrapes", name)
		}
		prev := map[string]float64{}
		for _, s := range fam.Samples {
			prev[s.Key()] = s.Value
		}
		for _, s := range after.Samples {
			if before, ok := prev[s.Key()]; ok && s.Value < before {
				t.Fatalf("%s went backwards: %g -> %g", s.Key(), before, s.Value)
			}
		}
	}
	if reqs := second["trance_route_requests_total"]; reqs != nil {
		for _, s := range reqs.Samples {
			if s.Labels["route"] != route {
				continue
			}
			var firstVal float64
			for _, f := range first["trance_route_requests_total"].Samples {
				if f.Key() == s.Key() {
					firstVal = f.Value
				}
			}
			if s.Value <= firstVal {
				t.Fatalf("route counter did not advance: %g -> %g", firstVal, s.Value)
			}
		}
	}
}

func TestMetricsRejectsUnknownFormat(t *testing.T) {
	ts := httptest.NewServer(smallServer(t))
	defer ts.Close()
	out := getJSON(t, ts, "/metrics?format=xml", http.StatusBadRequest)
	if out["error"] == nil {
		t.Fatalf("unknown format should report an error: %v", out)
	}
}

func TestTraceIDRoundTrip(t *testing.T) {
	ts := httptest.NewServer(smallServer(t))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/query?name=tpch/nested-to-nested&level=1&strategy=standard&limit=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Trance-Trace-Id")
	if id == "" {
		t.Fatal("query response carries no X-Trance-Trace-Id header")
	}

	out := getJSON(t, ts, "/trace/"+id, http.StatusOK)
	if out["id"] != id {
		t.Fatalf("trace id mismatch: %v vs %s", out["id"], id)
	}
	root, ok := out["root"].(map[string]any)
	if !ok {
		t.Fatalf("trace has no root span: %v", out)
	}
	names := spanNames(root)
	for _, want := range []string{"resolve", "execute", "encode"} {
		if !names[want] {
			t.Fatalf("span %q missing from trace tree %v", want, names)
		}
	}

	if bad := getJSON(t, ts, "/trace/ffffffffffffffff", http.StatusNotFound); bad["error"] == nil {
		t.Fatalf("unknown trace should 404 with an error: %v", bad)
	}
}

func spanNames(v map[string]any) map[string]bool {
	out := map[string]bool{v["name"].(string): true}
	children, _ := v["children"].([]any)
	for _, c := range children {
		for n := range spanNames(c.(map[string]any)) {
			out[n] = true
		}
	}
	return out
}

// TestScrapeWhileServing hammers both metrics renderings concurrently with
// query traffic. Under -race this is the guard for the snapshot-under-lock,
// marshal-outside-lock structure of handleMetrics: encoding must never read
// routeStats the recording path is mutating.
func TestScrapeWhileServing(t *testing.T) {
	ts := httptest.NewServer(smallServer(t))
	defer ts.Close()

	const rounds = 8
	var wg sync.WaitGroup
	errs := make(chan error, 3*rounds)
	get := func(path string) error {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, body)
		}
		return nil
	}
	for i := 0; i < rounds; i++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			errs <- get("/query?name=tpch/nested-to-nested&level=1&strategy=shred&limit=1")
		}()
		go func() {
			defer wg.Done()
			errs <- get("/metrics")
		}()
		go func() {
			defer wg.Done()
			errs <- get("/metrics?format=prometheus")
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
