package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// postJSON posts a body and decodes the JSON response, asserting the status.
func postJSON(t *testing.T, ts *httptest.Server, path, body string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: read: %v", path, err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d (want %d): %s", path, resp.StatusCode, wantStatus, raw)
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("POST %s: not JSON: %v\n%s", path, err, raw)
	}
	return out
}

// TestIndexServingSmoke drives the index + mutation surface end to end over
// HTTP: upload a selective dataset (auto-indexed at registration), build an
// explicit index, verify a point query plans as an index scan ([index=…] in
// the explain, counters in /metrics), then append and delete rows and verify
// the served results follow the new generations immediately.
func TestIndexServingSmoke(t *testing.T) {
	cfg := defaultServerConfig()
	cfg.Customers = 5
	cfg.MaxLevel = 0
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// 200 rows with a high-NDV id column: enough for the statistics layer to
	// flag id as selective and auto-build its indexes at registration.
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&sb, "{\"id\": %d, \"grp\": %d, \"val\": %g}\n", i, i%5, float64(i)/4)
	}
	up := postJSON(t, ts, "/datasets?name=smoke-idx", sb.String(), http.StatusCreated)
	if up["rows"].(float64) != 200 {
		t.Fatalf("upload: %v", up)
	}

	// The auto-built index on id is listed.
	list := getJSON(t, ts, "/datasets/smoke-idx/indexes", http.StatusOK)
	var idIdx map[string]any
	for _, e := range list["indexes"].([]any) {
		if m := e.(map[string]any); m["column"] == "id" {
			idIdx = m
		}
	}
	if idIdx == nil || idIdx["auto"] != true || idIdx["keys"].(float64) != 200 {
		t.Fatalf("auto index on id missing or wrong: %v", list)
	}

	// An explicit build on a low-NDV column the auto policy skipped.
	created := postJSON(t, ts, "/datasets/smoke-idx/indexes?column=grp&kind=hash", "", http.StatusCreated)
	if created["kind"] != "hash" || created["auto"] != false || created["keys"].(float64) != 5 {
		t.Fatalf("create index: %v", created)
	}
	// Unknown dataset and unknown column are client errors, not crashes.
	postJSON(t, ts, "/datasets/nope/indexes?column=id", "", http.StatusNotFound)
	postJSON(t, ts, "/datasets/smoke-idx/indexes?column=zzz", "", http.StatusBadRequest)

	// A point query on the indexed column plans as an index scan.
	query := "for r in `datasets/smoke-idx` union if r.id == 7 then { { id := r.id, grp := r.grp } }"
	exp := postJSON(t, ts, "/explain", query, http.StatusOK)
	if text := exp["explain"].(string); !strings.Contains(text, "[index=") || !strings.Contains(text, "col=id") {
		t.Fatalf("explain lacks index scan:\n%s", text)
	}
	out := postJSON(t, ts, "/query", query, http.StatusOK)
	if out["rows"].(float64) != 1 {
		t.Fatalf("point query: %v", out)
	}

	// The scan shows up in /metrics' index block.
	metrics := getJSON(t, ts, "/metrics", http.StatusOK)
	idx := metrics["index"].(map[string]any)
	if idx["built"].(float64) < 2 || idx["planned_scans"].(float64) < 1 ||
		idx["scans"].(float64) < 1 || idx["rows_matched"].(float64) < 1 {
		t.Fatalf("index metrics: %v", idx)
	}

	// Append two rows (one sharing id 7): the next request over the same
	// prepared text serves the new generation — no restart, no re-prepare.
	app := postJSON(t, ts, "/datasets/smoke-idx/append",
		"{\"id\": 7, \"grp\": 1, \"val\": 9.5}\n{\"id\": 500, \"grp\": 0, \"val\": 1.0}",
		http.StatusOK)
	if app["appended"].(float64) != 2 || app["rows"].(float64) != 202 {
		t.Fatalf("append: %v", app)
	}
	if out := postJSON(t, ts, "/query", query, http.StatusOK); out["rows"].(float64) != 2 {
		t.Fatalf("append not visible through prepared query: %v", out)
	}
	fresh := "for r in `datasets/smoke-idx` union if r.id == 500 then { { id := r.id } }"
	if out := postJSON(t, ts, "/query", fresh, http.StatusOK); out["rows"].(float64) != 1 {
		t.Fatalf("appended row not served: %v", out)
	}
	metrics = getJSON(t, ts, "/metrics", http.StatusOK)
	if m := metrics["index"].(map[string]any); m["maintained"].(float64) < 1 {
		t.Fatalf("append did not maintain indexes incrementally: %v", m)
	}

	// Delete by key: both id=7 rows go, and the served results follow.
	del := postJSON(t, ts, "/datasets/smoke-idx/delete?column=id&value=7", "", http.StatusOK)
	if del["removed"].(float64) != 2 || del["rows"].(float64) != 200 {
		t.Fatalf("delete: %v", del)
	}
	if out := postJSON(t, ts, "/query", query, http.StatusOK); out["rows"].(float64) != 0 {
		t.Fatalf("deleted rows still served: %v", out)
	}
	metrics = getJSON(t, ts, "/metrics", http.StatusOK)
	if m := metrics["index"].(map[string]any); m["rebuilt"].(float64) < 1 {
		t.Fatalf("delete did not rebuild indexes: %v", m)
	}
}
