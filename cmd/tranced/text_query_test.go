package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postText(t *testing.T, ts *httptest.Server, path, body string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: read: %v", path, err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d (want %d): %s", path, resp.StatusCode, wantStatus, raw)
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("POST %s: not JSON: %v\n%s", path, err, raw)
	}
	return out
}

// TestTextQueryEndpoint runs ad-hoc textual queries against preloaded and
// uploaded datasets through every route shape: plain scan, nested
// subquery, shredded strategies.
func TestTextQueryEndpoint(t *testing.T) {
	ts := httptest.NewServer(smallServer(t))
	defer ts.Close()

	// A query over a preloaded dataset; the namespaced name is backquoted.
	out := postText(t, ts, "/query?limit=3",
		"for c in `tpch/customer` union { { name := c.c_name, bal := c.c_acctbal } }",
		http.StatusOK)
	if out["rows"].(float64) != 20 {
		t.Fatalf("rows: %v", out["rows"])
	}
	results := out["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("returned: %d", len(results))
	}
	if _, ok := results[0].(map[string]any)["name"]; !ok {
		t.Fatalf("row missing name: %v", results[0])
	}

	// The same text again must hit the prepared-text cache (and still work).
	again := postText(t, ts, "/query?limit=3",
		"for c in `tpch/customer` union { { name := c.c_name, bal := c.c_acctbal } }",
		http.StatusOK)
	if again["fingerprint"] != out["fingerprint"] {
		t.Fatalf("fingerprints differ: %v vs %v", again["fingerprint"], out["fingerprint"])
	}

	// A nested query over an uploaded dataset under a shredded strategy.
	ndjson := `{"cust": "alice", "orders": [{"pid": 1, "qty": 12.5}, {"pid": 2, "qty": 3.0}]}
{"cust": "bob", "orders": []}`
	resp, err := http.Post(ts.URL+"/datasets?name=textq", "application/x-ndjson", strings.NewReader(ndjson))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
		t.Fatalf("upload: %d", resp.StatusCode)
	}
	q := "for r in `datasets/textq` union { { cust := r.cust, big := for o in r.orders union if o.qty > 10.0 then { o } } }"
	for _, strat := range []string{"standard", "shred%2Bunshred"} {
		out := postText(t, ts, "/query?strategy="+strat, q, http.StatusOK)
		if out["rows"].(float64) != 2 {
			t.Fatalf("%s rows: %v", strat, out["rows"])
		}
		rows := out["results"].([]any)
		r0 := rows[0].(map[string]any)
		if r0["cust"] != "alice" || len(r0["big"].([]any)) != 1 {
			t.Fatalf("%s row0: %v", strat, r0)
		}
		r1 := rows[1].(map[string]any)
		if r1["cust"] != "bob" || len(r1["big"].([]any)) != 0 {
			t.Fatalf("%s row1: %v", strat, r1)
		}
	}

	// Aggregation endpoint-to-endpoint: sumby over a join.
	agg := "sumby[cust; total](for r in `datasets/textq` union for o in r.orders union { { cust := r.cust, total := o.qty } })"
	out = postText(t, ts, "/query", agg, http.StatusOK)
	if out["rows"].(float64) != 1 {
		t.Fatalf("agg rows: %v", out["rows"])
	}
	row := out["results"].([]any)[0].(map[string]any)
	if row["cust"] != "alice" || row["total"].(float64) != 15.5 {
		t.Fatalf("agg row: %v", row)
	}
}

// TestTextQueryErrors asserts every failure mode returns a 4xx with a caret
// diagnostic — parse errors, type errors, unknown datasets — and that
// nothing panics the server.
func TestTextQueryErrors(t *testing.T) {
	ts := httptest.NewServer(smallServer(t))
	defer ts.Close()

	cases := []struct {
		name, body, frag string
	}{
		{"parse", "for c in union { c }", "expected"},
		{"unknown dataset", "for c in Nowhere union { c }", "no dataset"},
		{"type error", "for c in `tpch/customer` union { { x := c.nope } }", "nope"},
		{"chained cmp", "for c in `tpch/customer` union if 1 < 2 < 3 then { c }", "chain"},
		{"empty", "   ", "empty query"},
	}
	for _, c := range cases {
		out := postText(t, ts, "/query", c.body, http.StatusBadRequest)
		msg, _ := out["error"].(string)
		if !strings.Contains(msg, c.frag) {
			t.Errorf("%s: error %q missing %q", c.name, msg, c.frag)
		}
		if c.name != "empty" && c.name != "unknown dataset" && !strings.Contains(msg, "^") {
			t.Errorf("%s: error %q lacks caret", c.name, msg)
		}
	}
	// Unknown-dataset errors do carry a caret too (pointing at the variable).
	out := postText(t, ts, "/query", "for c in Nowhere union { c }", http.StatusBadRequest)
	if msg, _ := out["error"].(string); !strings.Contains(msg, "^") {
		t.Errorf("unknown dataset: error %q lacks caret", msg)
	}

	// Bad strategy/limit and oversized bodies are rejected.
	postText(t, ts, "/query?strategy=warp", "for c in `tpch/customer` union { c }", http.StatusBadRequest)
	postText(t, ts, "/query?limit=-2", "for c in `tpch/customer` union { c }", http.StatusBadRequest)
}
