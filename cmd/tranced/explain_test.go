package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// GET /explain renders a served query's plans before and after the
// rule-based optimizer and the optimizer counters land in /metrics.
func TestExplainEndpoint(t *testing.T) {
	ts := httptest.NewServer(smallServer(t))
	defer ts.Close()

	out := getJSON(t, ts, "/explain?name=tpch/nested-to-flat&level=1&strategy=standard", http.StatusOK)
	text, ok := out["explain"].(string)
	if !ok || text == "" {
		t.Fatalf("explain text missing: %v", out)
	}
	if !strings.Contains(text, "strategy: STANDARD") || !strings.Contains(text, "optimizer:") {
		t.Fatalf("explain lacks strategy/optimizer header:\n%s", text)
	}
	if !strings.Contains(text, "Scan") {
		t.Fatalf("explain lacks a plan tree:\n%s", text)
	}

	// The shredded route shows the program's assignments (and, for
	// shred+unshred, the unshred plan).
	out = getJSON(t, ts, "/explain?name=tpch/nested-to-nested&level=1&strategy=shred%2Bunshred", http.StatusOK)
	text = out["explain"].(string)
	if !strings.Contains(text, "assignment") || !strings.Contains(text, "unshred plan") {
		t.Fatalf("shredded explain lacks assignments/unshred sections:\n%s", text)
	}

	// Bad requests are 4xx.
	getJSON(t, ts, "/explain?name=nope", http.StatusBadRequest)
	getJSON(t, ts, "/explain?name=tpch/nested-to-flat&level=9", http.StatusBadRequest)
	getJSON(t, ts, "/explain?name=tpch/nested-to-flat&strategy=warp", http.StatusBadRequest)

	// Optimizer rule-hit counters are served by /metrics. The preloaded
	// queries are equality-only (their filters become join keys), so drive a
	// query with a residual predicate through POST /query first.
	q := "for c in `tpch/customer` union for o in `tpch/orders` union " +
		"if c.c_custkey == o.o_custkey && c.c_acctbal > 1000.0 then { { name := c.c_name, total := o.o_totalprice } }"
	resp, err := http.Post(ts.URL+"/query?strategy=standard", "text/plain", strings.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query: status %d", resp.StatusCode)
	}
	metrics := getJSON(t, ts, "/metrics", http.StatusOK)
	opt, ok := metrics["optimizer"].(map[string]any)
	if !ok {
		t.Fatalf("optimizer counters missing from /metrics: %v", metrics)
	}
	if opt["predicates_pushed"].(float64) < 1 {
		t.Fatalf("the filtered ad-hoc query should have pushed a predicate: %v", opt)
	}
}
