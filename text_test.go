package trance_test

import (
	"context"
	"strings"
	"testing"

	"github.com/trance-go/trance"
	"github.com/trance-go/trance/internal/parse"
)

func textCatalog(t *testing.T) *trance.Catalog {
	t.Helper()
	cat := trance.NewCatalog()
	const ndjson = `
{"cname": "alice", "orders": [{"pid": 1, "qty": 12.0}, {"pid": 2, "qty": 3.0}]}
{"cname": "bob",   "orders": [{"pid": 1, "qty": 40.0}]}
{"cname": "carol", "orders": []}
`
	if _, err := cat.RegisterJSON("CO", strings.NewReader(ndjson)); err != nil {
		t.Fatal(err)
	}
	return cat
}

// TestPrepareText runs a textual query end to end through the Session API
// and checks it against the equivalent builder query under every strategy.
func TestPrepareText(t *testing.T) {
	cat := textCatalog(t)
	sess := cat.NewSession(trance.SessionOptions{})

	const text = `
for c in CO union
  { {
      cname := c.cname,
      big := for o in c.orders union
               if o.qty > 10.0 then { o }
  } }`
	built := trance.ForIn("c", trance.V("CO"),
		trance.SingOf(trance.Record(
			"cname", trance.P(trance.V("c"), "cname"),
			"big", trance.ForIn("o", trance.P(trance.V("c"), "orders"),
				trance.IfThen(trance.GtOf(trance.P(trance.V("o"), "qty"), trance.C(10.0)),
					trance.SingOf(trance.V("o")))))))

	sqText, err := sess.PrepareText("text", text)
	if err != nil {
		t.Fatal(err)
	}
	sqBuilt, err := sess.PrepareNamed("built", built)
	if err != nil {
		t.Fatal(err)
	}
	// Structurally identical queries share a fingerprint (and compiled plans).
	if sqText.Prepared().Fingerprint() != sqBuilt.Prepared().Fingerprint() {
		t.Fatalf("text and builder fingerprints differ:\n%s\nvs\n%s",
			trance.Print(sqText.Prepared().Query()), trance.Print(sqBuilt.Prepared().Query()))
	}
	for _, strat := range []trance.Strategy{trance.Standard, trance.Shred, trance.ShredUnshred} {
		a, err := sqText.RunJSON(context.Background(), strat)
		if err != nil {
			t.Fatalf("%s text: %v", strat, err)
		}
		b, err := sqBuilt.RunJSON(context.Background(), strat)
		if err != nil {
			t.Fatalf("%s built: %v", strat, err)
		}
		if len(a) != 3 || len(a) != len(b) {
			t.Fatalf("%s: %d vs %d rows", strat, len(a), len(b))
		}
	}
}

// TestPrepareTextDiagnostics: type and resolution errors point back into the
// query text with caret diagnostics at every session entry point.
func TestPrepareTextDiagnostics(t *testing.T) {
	cat := textCatalog(t)
	sess := cat.NewSession(trance.SessionOptions{})

	// Parse error.
	_, err := sess.PrepareText("", "for c CO union { c }")
	var pe *parse.Error
	if !asParseError(err, &pe) || !strings.Contains(err.Error(), "^") {
		t.Fatalf("parse error: %v", err)
	}

	// Type error: caret under the bad projection on line 2.
	_, err = sess.PrepareText("", "for c in CO union\n  { { x := c.nope } }")
	if !asParseError(err, &pe) || pe.Pos.Line != 2 || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("type error: %v", err)
	}

	// Unknown dataset: caret under the variable reference.
	_, err = sess.PrepareText("", "for c in Missing union { c }")
	if !asParseError(err, &pe) || pe.Pos.Col != 10 || !strings.Contains(err.Error(), "no dataset") {
		t.Fatalf("resolve error: %v", err)
	}

	// Same for pipelines: the failing statement's node is located.
	_, err = sess.PrepareTextPipeline("A := for c in CO union { { q := c.nope } };\nsumby[q; q](A)")
	if !asParseError(err, &pe) || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("pipeline type error: %v", err)
	}
}

func asParseError(err error, pe **parse.Error) bool {
	if err == nil {
		return false
	}
	e, ok := err.(*parse.Error)
	if ok {
		*pe = e
	}
	return ok
}

// TestPrepareTextPipeline runs a textual multi-statement program and checks
// it against the builder pipeline.
func TestPrepareTextPipeline(t *testing.T) {
	cat := textCatalog(t)
	sess := cat.NewSession(trance.SessionOptions{})

	const prog = `
Flat := for c in CO union
          for o in c.orders union
            { { cname := c.cname, qty := o.qty } };
sumby[cname; qty](Flat)`
	sp, err := sess.PrepareTextPipeline(prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []trance.Strategy{trance.Standard, trance.Shred, trance.ShredUnshred} {
		rows, err := sp.RunJSON(context.Background(), strat)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if len(rows) != 2 {
			t.Fatalf("%s: rows %v", strat, rows)
		}
		byName := map[string]float64{}
		for _, r := range rows {
			byName[r["cname"].(string)] = r["qty"].(float64)
		}
		if byName["alice"] != 15.0 || byName["bob"] != 40.0 {
			t.Fatalf("%s: totals %v", strat, byName)
		}
	}
}

// TestSessionSharesConvertedRows: many ad-hoc queries over one dataset must
// share a single converted (value-shredded) copy per route, not hold one
// each — the bound that keeps a text-query service's memory proportional to
// the data, not to the number of distinct query texts.
func TestSessionSharesConvertedRows(t *testing.T) {
	cat := textCatalog(t)
	sess := cat.NewSession(trance.SessionOptions{})
	texts := []string{
		"for c in CO union { { n := c.cname } }",
		"for c in CO union { { k := c.cname, m := c.cname } }",
		"for c in CO union for o in c.orders union { { q := o.qty } }",
	}
	for _, text := range texts {
		sq, err := sess.PrepareText("", text)
		if err != nil {
			t.Fatal(err)
		}
		for _, strat := range []trance.Strategy{trance.Standard, trance.Shred} {
			if _, err := sq.Run(context.Background(), strat); err != nil {
				t.Fatalf("%s: %v", strat, err)
			}
		}
	}
	// One standard + one shredded conversion of CO, shared by all 3 queries.
	if got := trance.SessionSharedConversions(sess); got != 2 {
		t.Fatalf("shared conversions: %d, want 2 (standard + shredded for CO)", got)
	}
}

// TestParseRoot exercises the root-level Parse/ParseProgram wrappers.
func TestParseRoot(t *testing.T) {
	q, err := trance.Parse("for x in R union { x }")
	if err != nil {
		t.Fatal(err)
	}
	if got := trance.Print(q); !strings.Contains(got, "for x in R union") {
		t.Fatalf("print: %s", got)
	}
	if _, err := trance.Parse("for x in"); err == nil {
		t.Fatal("want parse error")
	}
	p, err := trance.ParseProgram("A := { 1 };\nfor x in A union { x }")
	if err != nil {
		t.Fatal(err)
	}
	steps := trance.ProgramSteps(p)
	if len(steps) != 2 || steps[0].Name != "A" || steps[1].Name != "result" {
		t.Fatalf("steps: %+v", steps)
	}
}
