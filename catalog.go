package trance

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"github.com/trance-go/trance/internal/dataflow"
	"github.com/trance-go/trance/internal/index"
	"github.com/trance-go/trance/internal/ingest"
	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/parse"
	"github.com/trance-go/trance/internal/plan"
	"github.com/trance-go/trance/internal/runner"
	"github.com/trance-go/trance/internal/shred"
	"github.com/trance-go/trance/internal/stats"
	"github.com/trance-go/trance/internal/trace"
	"github.com/trance-go/trance/internal/value"
)

// Catalog is a registry of named, typed nested datasets — the serving-side
// answer to hand-assembling Env + input maps: data is registered once (from
// Go values or straight from JSON, with the schema inferred), and sessions
// resolve queries' free variables against it. All methods are safe for
// concurrent use. Datasets mutate only through the catalog (Append, Delete,
// DeleteWhere — never mutate a registered bag directly): every mutation
// installs a fresh immutable entry under a new generation, maintaining the
// dataset's statistics and secondary indexes, so queries already running keep
// a consistent snapshot while a session's next Run re-resolves against the
// new generation (see docs/INDEXES.md).
type Catalog struct {
	mu      sync.RWMutex
	entries map[string]*catalogEntry
	order   []string
	nextGen int64
}

// catalogEntry is one immutable registration generation of a dataset. Every
// mutation (Append, Delete, CreateIndex, Drop + Register) replaces the entry
// pointer wholesale rather than editing it, which is what makes concurrent
// readers (resolve, Analyze's install check, running queries holding the bag)
// race-free without copying data per read.
type catalogEntry struct {
	info DatasetInfo
	bag  Bag
	// gen distinguishes generations of the same name (mutations and Drop +
	// Register alike): session row caches, cached statistics, and prepared
	// plans key on it, so a changed dataset never serves stale converted rows
	// or stale plan decisions.
	gen int64
	// stats are the dataset's collected statistics (stats.Collect at
	// registration; recollected by mutations and Analyze). Generation-stamped
	// with gen.
	stats *stats.Table
	// idx holds the dataset's secondary indexes: auto-built at registration
	// for columns the statistics flag as selective, extended by CreateIndex,
	// maintained incrementally by Append and rebuilt by Delete.
	idx *index.Set
	// auto marks the idx columns that were auto-built (statistics-driven)
	// rather than requested via CreateIndex.
	auto map[string]bool
}

// DatasetInfo describes one catalog entry.
type DatasetInfo struct {
	// Name is the catalog key (and the variable name queries use, unless a
	// session rebinds it).
	Name string
	// Type is the dataset's bag type — declared at Register, inferred at
	// RegisterJSON.
	Type Type
	// Rows is the top-level element count.
	Rows int
	// Bytes is the approximate in-memory footprint (value.Size).
	Bytes int64
	// Source records how the dataset was registered: "go" or "json".
	Source string
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{entries: map[string]*catalogEntry{}}
}

// Register adds a dataset under name with an explicit bag type. The values
// are structurally validated against the type up front, so a mismatch is a
// registration error here rather than an engine failure at query time.
func (c *Catalog) Register(name string, t Type, b Bag) error {
	bt, ok := t.(nrc.BagType)
	if !ok {
		return fmt.Errorf("catalog: dataset %s: type must be a bag, got %s", name, t)
	}
	if err := conforms(b, bt); err != nil {
		return fmt.Errorf("catalog: dataset %s: %w", name, err)
	}
	_, err := c.add(name, bt, b, "go")
	return err
}

// RegisterJSON ingests a dataset from JSON — NDJSON (one value per row) or a
// single JSON array — inferring its nested type: objects become tuples,
// arrays become bags, with null and int→real widening across rows and
// yyyy-mm-dd strings read as dates (see internal/ingest). Irreconcilable
// rows yield a descriptive error naming the JSON path.
func (c *Catalog) RegisterJSON(name string, r io.Reader) (DatasetInfo, error) {
	ds, err := ingest.ReadJSON(r)
	if err != nil {
		return DatasetInfo{}, fmt.Errorf("catalog: dataset %s: %w", name, err)
	}
	return c.add(name, ds.Type, ds.Bag, "json")
}

// ErrDatasetExists reports a Register/RegisterJSON collision with an
// existing dataset (check with errors.Is; Drop first to replace).
var ErrDatasetExists = errors.New("dataset already registered")

func (c *Catalog) add(name string, t nrc.BagType, b Bag, source string) (DatasetInfo, error) {
	if name == "" {
		return DatasetInfo{}, fmt.Errorf("catalog: dataset name must not be empty")
	}
	// Collect statistics and build the auto indexes outside the lock — both
	// are full passes over the data.
	st := stats.Collect(b, t, stats.Options{})
	idx, auto := autoIndexes(b, t, st)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[name]; dup {
		return DatasetInfo{}, fmt.Errorf("catalog: dataset %s: %w", name, ErrDatasetExists)
	}
	info := DatasetInfo{Name: name, Type: t, Rows: len(b), Bytes: value.Size(b), Source: source}
	c.nextGen++
	st.Generation = c.nextGen
	c.entries[name] = &catalogEntry{info: info, bag: b, gen: c.nextGen, stats: st, idx: idx, auto: auto}
	c.order = append(c.order, name)
	return info, nil
}

// autoIndexes builds the registration-time secondary indexes of a dataset:
// one hash+range index per column the statistics flag as selective (see
// stats.Table.SelectiveColumns). Build refusals (label columns, mixed-type
// keys) are counted under their reason in IndexCounters and skipped.
func autoIndexes(b Bag, bt nrc.BagType, st *stats.Table) (*index.Set, map[string]bool) {
	set := index.NewSet()
	var auto map[string]bool
	for _, col := range st.SelectiveColumns() {
		vals, ok := columnValues(b, bt, col)
		if !ok {
			continue
		}
		ci, err := index.Build(col, true, true, vals)
		if err != nil {
			continue
		}
		set.Put(ci)
		if auto == nil {
			auto = map[string]bool{}
		}
		auto[col] = true
	}
	return set, auto
}

// columnOffset finds a top-level scalar column's tuple offset ("_value" for
// scalar-element bags); -1 when the column is absent or not scalar.
func columnOffset(bt nrc.BagType, col string) int {
	if tt, ok := bt.Elem.(nrc.TupleType); ok {
		for i, f := range tt.Fields {
			if f.Name == col {
				if _, scalar := f.Type.(nrc.ScalarType); scalar {
					return i
				}
				return -1
			}
		}
		return -1
	}
	if _, scalar := bt.Elem.(nrc.ScalarType); scalar && col == "_value" {
		return 0
	}
	return -1
}

// columnValues extracts one top-level scalar column of a bag; vals[i] is the
// key of row i (nil for NULL).
func columnValues(b Bag, bt nrc.BagType, col string) ([]value.Value, bool) {
	off := columnOffset(bt, col)
	if off < 0 {
		return nil, false
	}
	vals := make([]value.Value, len(b))
	for i, e := range b {
		if t, ok := e.(value.Tuple); ok {
			vals[i] = t[off]
		} else {
			vals[i] = e
		}
	}
	return vals, true
}

// replace installs a successor entry under name, bumping the catalog
// generation, provided old is still the current entry. Mutations are
// optimistic: the expensive work (copying, statistics, index maintenance)
// happens outside the lock, and a caller that lost the race retries over the
// winner's data. mk receives the fresh generation.
func (c *Catalog) replace(name string, old *catalogEntry, mk func(gen int64) *catalogEntry) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.entries[name]; !ok || cur != old {
		return false
	}
	c.nextGen++
	c.entries[name] = mk(c.nextGen)
	return true
}

// entry returns the current immutable entry of a dataset.
func (c *Catalog) entry(name string) (*catalogEntry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[name]
	return e, ok
}

// IndexInfo describes one secondary index of a catalog dataset.
type IndexInfo struct {
	// Dataset and Column name the indexed data.
	Dataset string
	Column  string
	// Kind is "hash", "range", or "hash+range".
	Kind string
	// Keys is the number of distinct non-NULL keys; Nulls counts the NULL
	// rows every span excludes; Rows is the covered row count.
	Keys, Nulls, Rows int64
	// Generation is the dataset generation the index describes.
	Generation int64
	// Auto reports a registration-time statistics-driven build rather than an
	// explicit CreateIndex.
	Auto bool
}

func indexInfoOf(dataset string, ci *index.ColumnIndex, gen int64, auto bool) IndexInfo {
	return IndexInfo{
		Dataset: dataset, Column: ci.Col, Kind: ci.KindString(),
		Keys: ci.Keys(), Nulls: ci.Nulls(), Rows: int64(ci.Len()),
		Generation: gen, Auto: auto,
	}
}

// CreateIndex builds a secondary index on a dataset column on demand: kind is
// "hash" (equality spans), "range"/"ordered" (range spans), or ""/"both".
// An existing index on the column keeps its structures — kinds accumulate.
// The build runs outside the catalog lock; installing it bumps the dataset's
// generation so sessions re-plan with the index available.
func (c *Catalog) CreateIndex(dataset, column, kind string) (IndexInfo, error) {
	wantHash, wantOrdered, err := index.ParseKind(kind)
	if err != nil {
		return IndexInfo{}, fmt.Errorf("catalog: dataset %s: %w", dataset, err)
	}
	for {
		e, ok := c.entry(dataset)
		if !ok {
			return IndexInfo{}, fmt.Errorf("catalog: dataset %s is not registered", dataset)
		}
		h, o := wantHash, wantOrdered
		if old := e.idx.Column(column); old != nil {
			h = h || old.HasHash()
			o = o || old.HasOrdered()
		}
		vals, ok := columnValues(e.bag, e.info.Type.(nrc.BagType), column)
		if !ok {
			return IndexInfo{}, fmt.Errorf("catalog: dataset %s has no top-level scalar column %q", dataset, column)
		}
		ci, err := index.Build(column, h, o, vals)
		if err != nil {
			return IndexInfo{}, fmt.Errorf("catalog: dataset %s: %w", dataset, err)
		}
		var out IndexInfo
		if c.replace(dataset, e, func(gen int64) *catalogEntry {
			ne := e.successor(gen)
			ne.idx = e.idx.Clone()
			ne.idx.Put(ci)
			if e.auto[column] {
				ne.auto = make(map[string]bool, len(e.auto))
				for k, v := range e.auto {
					ne.auto[k] = v
				}
				delete(ne.auto, column)
			}
			out = indexInfoOf(dataset, ci, gen, false)
			return ne
		}) {
			return out, nil
		}
	}
}

// Indexes lists a dataset's secondary indexes in column-name order.
func (c *Catalog) Indexes(name string) ([]IndexInfo, bool) {
	e, ok := c.entry(name)
	if !ok {
		return nil, false
	}
	var out []IndexInfo
	for _, col := range e.idx.Names() {
		out = append(out, indexInfoOf(name, e.idx.Column(col), e.gen, e.auto[col]))
	}
	return out, true
}

// successor copies the entry under a fresh generation, re-stamping the
// statistics; callers overwrite the fields the mutation changed.
func (e *catalogEntry) successor(gen int64) *catalogEntry {
	st := *e.stats
	st.Generation = gen
	return &catalogEntry{info: e.info, bag: e.bag, gen: gen, stats: &st, idx: e.idx, auto: e.auto}
}

// Append adds rows to a registered dataset. The rows are validated against
// the dataset's element type up front, statistics are recollected over the
// combined data, and every secondary index is maintained incrementally
// (index extension over the tail — IndexCounters.Maintained). The new entry
// carries a fresh generation, so a session's next Run re-resolves data,
// statistics, and plans — an append is never served from stale rows or a
// stale plan — while queries already executing keep their snapshot.
func (c *Catalog) Append(name string, rows Bag) (DatasetInfo, error) {
	if len(rows) == 0 {
		info, ok := c.Info(name)
		if !ok {
			return DatasetInfo{}, fmt.Errorf("catalog: dataset %s is not registered", name)
		}
		return info, nil
	}
	for {
		e, ok := c.entry(name)
		if !ok {
			return DatasetInfo{}, fmt.Errorf("catalog: dataset %s is not registered", name)
		}
		bt := e.info.Type.(nrc.BagType)
		if err := conforms(rows, bt); err != nil {
			return DatasetInfo{}, fmt.Errorf("catalog: dataset %s: append: %w", name, err)
		}
		nb := make(Bag, 0, len(e.bag)+len(rows))
		nb = append(append(nb, e.bag...), rows...)
		st := stats.Collect(nb, bt, stats.Options{})
		nidx := index.NewSet()
		for _, col := range e.idx.Names() {
			tail, ok := columnValues(rows, bt, col)
			if !ok {
				continue
			}
			ci, err := e.idx.Column(col).Extend(tail)
			if err != nil {
				// The tail broke the index's key invariant (cannot happen for
				// conforming rows, but Extend is defensive): rebuild outright.
				old := e.idx.Column(col)
				vals, vok := columnValues(nb, bt, col)
				if !vok {
					continue
				}
				if ci, err = index.Build(col, old.HasHash(), old.HasOrdered(), vals); err != nil {
					continue
				}
				index.RecordRebuild()
			}
			nidx.Put(ci)
		}
		var out DatasetInfo
		if c.replace(name, e, func(gen int64) *catalogEntry {
			st.Generation = gen
			info := e.info
			info.Rows = len(nb)
			info.Bytes = value.Size(nb)
			out = info
			return &catalogEntry{info: info, bag: nb, gen: gen, stats: st, idx: nidx, auto: e.auto}
		}) {
			return out, nil
		}
	}
}

// AppendJSON is Append over a JSON body — NDJSON or a single JSON array, as
// RegisterJSON reads — converted against the dataset's registered element
// type. It returns the updated info and how many rows the body held.
func (c *Catalog) AppendJSON(name string, r io.Reader) (DatasetInfo, int, error) {
	e, ok := c.entry(name)
	if !ok {
		return DatasetInfo{}, 0, fmt.Errorf("catalog: dataset %s is not registered", name)
	}
	rows, err := ingest.ReadJSONAs(r, e.info.Type.(nrc.BagType).Elem)
	if err != nil {
		return DatasetInfo{}, 0, fmt.Errorf("catalog: dataset %s: append: %w", name, err)
	}
	info, err := c.Append(name, rows)
	return info, len(rows), err
}

// DeleteJSON is Delete with the key given as a JSON scalar literal (the form
// an HTTP parameter arrives in), parsed against the column's registered type;
// unquoted text is accepted for string and date columns.
func (c *Catalog) DeleteJSON(name, column, raw string) (int, error) {
	e, ok := c.entry(name)
	if !ok {
		return 0, fmt.Errorf("catalog: dataset %s is not registered", name)
	}
	st, ok := columnScalarType(e.info.Type.(nrc.BagType), column)
	if !ok {
		return 0, fmt.Errorf("catalog: dataset %s has no top-level scalar column %q", name, column)
	}
	v, err := ingest.ScalarFromJSON(raw, st)
	if err != nil {
		return 0, fmt.Errorf("catalog: dataset %s: delete: %w", name, err)
	}
	return c.Delete(name, column, v)
}

// columnScalarType resolves a top-level scalar column's type (the "_value"
// pseudo-column for scalar-element bags, mirroring columnOffset).
func columnScalarType(bt nrc.BagType, col string) (nrc.ScalarType, bool) {
	if tt, ok := bt.Elem.(nrc.TupleType); ok {
		for _, f := range tt.Fields {
			if f.Name == col {
				st, scalar := f.Type.(nrc.ScalarType)
				return st, scalar
			}
		}
		return nrc.ScalarType{}, false
	}
	if st, scalar := bt.Elem.(nrc.ScalarType); scalar && col == "_value" {
		return st, true
	}
	return nrc.ScalarType{}, false
}

// Delete removes every row whose column equals v (the engine's value.Compare
// equality, so 5 matches 5.0; a NULL column value matches nothing) and
// returns the number removed. Statistics are recollected and the dataset's
// indexes rebuilt over the surviving rows (IndexCounters.Rebuilt); the
// generation bump invalidates prepared routes exactly like Append.
func (c *Catalog) Delete(name, column string, v Value) (int, error) {
	if v == nil {
		return 0, fmt.Errorf("catalog: dataset %s: delete key must not be NULL", name)
	}
	return c.deleteWhere(name, func(bt nrc.BagType) (func(Value) bool, error) {
		off := columnOffset(bt, column)
		if off < 0 {
			return nil, fmt.Errorf("no top-level scalar column %q", column)
		}
		return func(el Value) bool {
			var cv Value
			if t, ok := el.(value.Tuple); ok {
				cv = t[off]
			} else {
				cv = el
			}
			return cv != nil && value.Compare(cv, v) == 0
		}, nil
	})
}

// DeleteWhere removes every top-level row matching pred and returns the
// number removed; index and statistics maintenance and generation semantics
// are those of Delete. pred must be pure — it may run more than once per row
// when a concurrent mutation forces a retry.
func (c *Catalog) DeleteWhere(name string, pred func(Value) bool) (int, error) {
	return c.deleteWhere(name, func(nrc.BagType) (func(Value) bool, error) { return pred, nil })
}

func (c *Catalog) deleteWhere(name string, mk func(nrc.BagType) (func(Value) bool, error)) (int, error) {
	for {
		e, ok := c.entry(name)
		if !ok {
			return 0, fmt.Errorf("catalog: dataset %s is not registered", name)
		}
		bt := e.info.Type.(nrc.BagType)
		pred, err := mk(bt)
		if err != nil {
			return 0, fmt.Errorf("catalog: dataset %s: delete: %w", name, err)
		}
		nb := make(Bag, 0, len(e.bag))
		for _, el := range e.bag {
			if !pred(el) {
				nb = append(nb, el)
			}
		}
		removed := len(e.bag) - len(nb)
		if removed == 0 {
			return 0, nil
		}
		st := stats.Collect(nb, bt, stats.Options{})
		nidx := rebuildIndexes(e.idx, nb, bt)
		if c.replace(name, e, func(gen int64) *catalogEntry {
			st.Generation = gen
			info := e.info
			info.Rows = len(nb)
			info.Bytes = value.Size(nb)
			return &catalogEntry{info: info, bag: nb, gen: gen, stats: st, idx: nidx, auto: e.auto}
		}) {
			return removed, nil
		}
	}
}

// rebuildIndexes rebuilds every index of a set over new data — deletions
// invalidate row positions wholesale. Each rebuild is counted
// (IndexCounters.Rebuilt); a column that is no longer indexable is dropped.
func rebuildIndexes(old *index.Set, b Bag, bt nrc.BagType) *index.Set {
	out := index.NewSet()
	for _, col := range old.Names() {
		oc := old.Column(col)
		vals, ok := columnValues(b, bt, col)
		if !ok {
			continue
		}
		ci, err := index.Build(col, oc.HasHash(), oc.HasOrdered(), vals)
		if err != nil {
			continue
		}
		index.RecordRebuild()
		out.Put(ci)
	}
	return out
}

// Stats returns a dataset's collected statistics (row/byte counts, per-column
// NDV, min/max, heavy-key histograms), stamped with the registration
// generation they describe. The table is shared — treat it as read-only.
func (c *Catalog) Stats(name string) (*DatasetStats, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[name]
	if !ok {
		return nil, false
	}
	return e.stats, true
}

// Analyze recollects a dataset's statistics with the given options and stores
// them, returning the fresh table. Registration already collects statistics
// with default options; Analyze is for tuning collection (sketch size, skew
// threshold) after the fact.
func (c *Catalog) Analyze(name string, opts StatsOptions) (*DatasetStats, error) {
	c.mu.RLock()
	e, ok := c.entries[name]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("catalog: dataset %s is not registered", name)
	}
	bt := e.info.Type.(nrc.BagType)
	st := stats.Collect(e.bag, bt, opts)
	st.Generation = e.gen
	c.mu.Lock()
	// Re-registration between the reads and here moves the name to a new
	// entry; only stamp the entry the statistics describe.
	if cur, ok := c.entries[name]; ok && cur == e {
		cur.stats = st
	}
	c.mu.Unlock()
	return st, nil
}

// Drop removes a dataset. Session queries prepared before the Drop keep
// serving their last snapshot while no dataset is registered under the name;
// re-registering one makes their next Run re-resolve to it.
func (c *Catalog) Drop(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[name]; !ok {
		return false
	}
	delete(c.entries, name)
	for i, n := range c.order {
		if n == name {
			c.order = append(c.order[:i:i], c.order[i+1:]...)
			break
		}
	}
	return true
}

// Names lists the registered datasets in registration order.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]string(nil), c.order...)
}

// List returns every dataset's info in registration order.
func (c *Catalog) List() []DatasetInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]DatasetInfo, 0, len(c.order))
	for _, n := range c.order {
		out = append(out, c.entries[n].info)
	}
	return out
}

// Info returns one dataset's info.
func (c *Catalog) Info(name string) (DatasetInfo, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[name]
	if !ok {
		return DatasetInfo{}, false
	}
	return e.info, true
}

// Data returns a dataset's values and type. The bag is shared, not copied —
// treat it as read-only.
func (c *Catalog) Data(name string) (Bag, Type, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[name]
	if !ok {
		return nil, nil, false
	}
	return e.bag, e.info.Type, true
}

// Env returns the environment of every registered dataset — what
// trance.Check needs to typecheck a query against the whole catalog.
func (c *Catalog) Env() Env {
	c.mu.RLock()
	defer c.mu.RUnlock()
	env := Env{}
	for n, e := range c.entries {
		env[n] = e.info.Type
	}
	return env
}

// UnknownDatasetError reports a query variable that resolved to no catalog
// dataset. Layers that parsed the query from text use Var to point a caret
// at the unresolved reference.
type UnknownDatasetError struct {
	// Var is the variable name the query used.
	Var string
	// Dataset is the catalog name it resolved to (differs from Var only
	// under session bindings).
	Dataset string
	// Have lists the registered dataset names.
	Have []string
}

func (e *UnknownDatasetError) Error() string {
	return fmt.Sprintf("catalog: query references %s, but no dataset %q is registered (have: %v)",
		e.Var, e.Dataset, e.Have)
}

// resolve snapshots the env, data, entry generations, table statistics, and
// secondary indexes for the given variable names, applying the session's
// bindings. Statistics of indexed columns carry the index flags the planner's
// Select→IndexScan conversion keys on, and indexed datasets additionally
// publish their estimate under the shredded top-component name — value
// shredding preserves top-level row order and scalar column positions, so the
// same indexes (re-keyed by runner.Compiled.MapIndexes) serve both routes.
func (c *Catalog) resolve(vars []string, bindings map[string]string) (Env, map[string]Bag, map[string]int64, map[string]plan.TableEstimate, map[string]*index.Set, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	env := Env{}
	inputs := map[string]Bag{}
	gens := map[string]int64{}
	ests := map[string]plan.TableEstimate{}
	var idxs map[string]*index.Set
	for _, v := range vars {
		ds := v
		if b, ok := bindings[v]; ok {
			ds = b
		}
		e, ok := c.entries[ds]
		if !ok {
			return nil, nil, nil, nil, nil, &UnknownDatasetError{Var: v, Dataset: ds, Have: append([]string(nil), c.order...)}
		}
		env[v] = e.info.Type
		inputs[v] = e.bag
		gens[v] = e.gen
		if e.stats == nil {
			continue
		}
		te := e.stats.Estimate()
		if e.idx.Len() > 0 {
			for _, col := range e.idx.Names() {
				ci := e.idx.Column(col)
				ce := te.Cols[col]
				ce.IndexHash = ci.HasHash()
				ce.IndexOrdered = ci.HasOrdered()
				te.Cols[col] = ce
			}
			ests[shred.MatName(v, nil)] = te
			if idxs == nil {
				idxs = map[string]*index.Set{}
			}
			idxs[v] = e.idx
		}
		ests[v] = te
	}
	return env, inputs, gens, ests, idxs, nil
}

// generationsUnchanged reports whether every dataset the variables resolve to
// still carries the given generation — the sessions' cheap staleness probe
// (one read-locked map walk per Run).
func (c *Catalog) generationsUnchanged(vars []string, bindings map[string]string, gens map[string]int64) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, v := range vars {
		ds := v
		if b, ok := bindings[v]; ok {
			ds = b
		}
		e, ok := c.entries[ds]
		if !ok || e.gen != gens[v] {
			return false
		}
	}
	return true
}

// conforms structurally validates a value against a type. NULL conforms to
// everything (the engine's outer joins introduce it freely).
func conforms(v Value, t Type) error {
	if v == nil {
		return nil
	}
	switch tt := t.(type) {
	case nrc.BagType:
		b, ok := v.(Bag)
		if !ok {
			return fmt.Errorf("expected bag for %s, got %T", tt, v)
		}
		for i, e := range b {
			if err := conforms(e, tt.Elem); err != nil {
				return fmt.Errorf("element %d: %w", i, err)
			}
		}
		return nil
	case nrc.TupleType:
		tp, ok := v.(Tuple)
		if !ok {
			return fmt.Errorf("expected tuple for %s, got %T", tt, v)
		}
		if len(tp) != len(tt.Fields) {
			return fmt.Errorf("tuple has %d fields, type %s has %d", len(tp), tt, len(tt.Fields))
		}
		for i, f := range tt.Fields {
			if err := conforms(tp[i], f.Type); err != nil {
				return fmt.Errorf("field %s: %w", f.Name, err)
			}
		}
		return nil
	case nrc.ScalarType:
		ok := false
		switch tt.Kind {
		case nrc.Int:
			_, ok = v.(int64)
		case nrc.Real:
			_, ok = v.(float64)
		case nrc.String:
			_, ok = v.(string)
		case nrc.Bool:
			_, ok = v.(bool)
		case nrc.DateK:
			_, ok = v.(Date)
		}
		if !ok {
			return fmt.Errorf("expected %s, got %T", tt, v)
		}
		return nil
	case nrc.LabelType:
		if _, ok := v.(Label); !ok {
			return fmt.Errorf("expected label, got %T", v)
		}
		return nil
	}
	return fmt.Errorf("unsupported type %s", t)
}

// SessionOptions configures a catalog session.
type SessionOptions struct {
	// Config sizes the simulated cluster; nil means DefaultConfig().
	Config *Config
	// Pool overrides the worker pool the session's queries run on. Nil uses
	// a pool sized by Config.Workers when set, else the process default.
	Pool *Pool
	// Bindings maps query variable names to catalog dataset names when they
	// differ (e.g. a query over "NDB" served from the dataset "tpch/ndb-l2").
	// Unlisted variables resolve to the dataset of the same name.
	Bindings map[string]string
}

// Session prepares and runs queries whose free variables resolve against a
// catalog. A session query is generation-aware: each Run probes the catalog
// and, when any referenced dataset mutated since the last resolution (Append,
// Delete, CreateIndex, Drop + re-Register), re-resolves data, statistics, and
// indexes and re-prepares through the plan cache — a mutation is never served
// from stale rows or a stale plan. Runs already executing keep the snapshot
// they started with; a dataset that is dropped and not re-registered keeps
// serving its last snapshot. Sessions are safe for concurrent use.
//
// A session shares converted input rows across everything it prepares: the
// nested→engine-row conversion (value shredding on shredded routes) of each
// (variable, dataset generation, route) happens once per session, no matter
// how many queries reference the dataset — so a service preparing many
// ad-hoc text queries over one dataset holds one converted copy, not one per
// query.
type Session struct {
	cat  *Catalog
	cfg  Config
	pool *Pool
	bind map[string]string

	rowMu    sync.Mutex
	rowCache map[string]*sharedRows
}

// sharedRows is one (variable, dataset generation, route) conversion slot;
// once guarantees a single conversion under concurrent first use.
type sharedRows struct {
	once sync.Once
	rows map[string][]dataflow.Row
	err  error
}

// NewSession creates a session over the catalog.
func (c *Catalog) NewSession(opts SessionOptions) *Session {
	cfg := DefaultConfig()
	if opts.Config != nil {
		cfg = *opts.Config
	}
	pool := poolFor(cfg, opts.Pool)
	bind := map[string]string{}
	for k, v := range opts.Bindings {
		bind[k] = v
	}
	return &Session{cat: c, cfg: cfg, pool: pool, bind: bind, rowCache: map[string]*sharedRows{}}
}

// converter builds the per-input conversion hook installed on the prepared
// data of every query this session prepares: rows convert once per
// (variable, dataset generation, route kind) and are shared session-wide.
func (s *Session) converter(gens map[string]int64) func(cq *runner.Compiled, name string, b Bag) (map[string][]dataflow.Row, error) {
	return func(cq *runner.Compiled, name string, b Bag) (map[string][]dataflow.Row, error) {
		key := fmt.Sprintf("%s\x00%d\x00%t", name, gens[name], cq.Strategy.IsShredded())
		s.rowMu.Lock()
		e, ok := s.rowCache[key]
		if !ok {
			e = &sharedRows{}
			s.rowCache[key] = e
		}
		s.rowMu.Unlock()
		e.once.Do(func() {
			e.rows, e.err = cq.InputRowsOne(name, b)
		})
		return e.rows, e.err
	}
}

// pruneRows drops cached conversions of superseded generations: a mutating
// dataset must not pin the converted rows of every generation it ever had.
// Conversions another query is still serving re-enter the cache on their next
// first use (their PreparedData keeps its own reference meanwhile).
func (s *Session) pruneRows(gens map[string]int64) {
	s.rowMu.Lock()
	defer s.rowMu.Unlock()
	for key := range s.rowCache {
		name, rest, ok := strings.Cut(key, "\x00")
		if !ok {
			continue
		}
		genStr, _, _ := strings.Cut(rest, "\x00")
		if keep, tracked := gens[name]; tracked && genStr != fmt.Sprint(keep) {
			delete(s.rowCache, key)
		}
	}
}

// Prepare resolves the query's free variables against the catalog,
// typechecks and sets up compile-once evaluation (see Prepare), and binds
// the resolved datasets for repeated runs (see PreparedQuery.BindData). The
// session takes ownership of the query's AST.
func (s *Session) Prepare(q Expr) (*SessionQuery, error) { return s.PrepareNamed("", q) }

// PrepareNamed is Prepare with a label used in errors and metrics.
func (s *Session) PrepareNamed(name string, q Expr) (*SessionQuery, error) {
	sq := &SessionQuery{s: s, name: name, q: q, vars: sortedVars(nrc.FreeVars(q))}
	sq.mu.Lock()
	defer sq.mu.Unlock()
	if err := sq.refreshLocked(); err != nil {
		return nil, err
	}
	return sq, nil
}

// PrepareText parses a query written in the textual surface syntax (see
// docs/QUERYLANG.md and trance.Parse) and prepares it against the catalog
// exactly like Prepare: free variables resolve to datasets (respecting the
// session's bindings), the compilation goes through the process-wide bounded
// plan cache under the query's fingerprint, and the resolved data is bound
// once for repeated runs. Lex, parse, resolution, and type errors all come
// back as position-tracked caret diagnostics pointing into src — never a
// panic.
func (s *Session) PrepareText(name, src string) (*SessionQuery, error) {
	r, err := parse.Query(src)
	if err != nil {
		return nil, err
	}
	sq, err := s.PrepareNamed(name, r.Expr)
	if err != nil {
		return nil, diagnose(&r.Source, err)
	}
	return sq, nil
}

// PrepareTextPipeline parses a multi-statement program (trance.ParseProgram:
// `name := expr;` assignments ending in a result expression) and prepares it
// as a pipeline against the catalog. Errors carry caret diagnostics like
// PrepareText.
func (s *Session) PrepareTextPipeline(src string) (*SessionPipeline, error) {
	r, err := parse.Program(src)
	if err != nil {
		return nil, err
	}
	sp, err := s.PreparePipeline(ProgramSteps(r.Program))
	if err != nil {
		return nil, diagnose(&r.Source, err)
	}
	return sp, nil
}

// diagnose points a prepare-time error back into parsed query text: type
// errors via the node position map, unresolved datasets via the first
// occurrence of the offending variable. Errors with no known position pass
// through unchanged.
func diagnose(src *parse.Source, err error) error {
	var ue *UnknownDatasetError
	if errors.As(err, &ue) {
		if node, ok := src.FirstVar(ue.Var); ok {
			return src.ErrorAt(node, err.Error())
		}
	}
	return src.Diagnose(err)
}

// PreparePipeline resolves the steps' free variables (outputs of earlier
// steps are not free) against the catalog and sets up compile-once
// evaluation of the whole pipeline (see PreparePipeline): repeated runs hit
// the plan cache for every step and re-resolve when a referenced dataset
// mutates, like SessionQuery.
func (s *Session) PreparePipeline(steps []PipelineStep) (*SessionPipeline, error) {
	asg := make([]nrc.Assignment, len(steps))
	for i, st := range steps {
		asg[i] = nrc.Assignment{Name: st.Name, Expr: st.Query}
	}
	sp := &SessionPipeline{s: s, steps: steps, vars: sortedVars(nrc.FreeVarsProgram(asg))}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if err := sp.refreshLocked(); err != nil {
		return nil, err
	}
	return sp, nil
}

func sortedVars(set map[string]bool) []string {
	vars := make([]string, 0, len(set))
	for v := range set {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return vars
}

// SessionQuery is a query prepared against a catalog: compiled plans come
// from the process-wide plan cache, input conversion is cached per route,
// any number of goroutines may Run concurrently, and every Run re-resolves
// against the catalog when a referenced dataset's generation moved (see
// Session).
type SessionQuery struct {
	s    *Session
	name string
	q    Expr
	vars []string

	mu   sync.Mutex // guards the cached resolution below
	pq   *PreparedQuery
	data *PreparedData
	gens map[string]int64
}

// refreshLocked re-resolves the query against the catalog's current
// generations and re-prepares it. Caller holds sq.mu.
func (sq *SessionQuery) refreshLocked() error {
	s := sq.s
	env, inputs, gens, ests, idxs, err := s.cat.resolve(sq.vars, s.bind)
	if err != nil {
		return err
	}
	cfg := s.cfg
	if len(ests) > 0 {
		cfg.Stats = ests
	}
	// Re-preparing shares the query AST with the prior generation's prepared
	// query, and both Prepare's typecheck and lazy compilation annotate it in
	// place — so every generation serializes on one compile mutex.
	var pq *PreparedQuery
	if sq.pq != nil {
		mu := sq.pq.compileMu
		mu.Lock()
		pq, err = Prepare(sq.q, PrepareOptions{Name: sq.name, Env: env, Config: &cfg, Pool: s.pool})
		if pq != nil {
			pq.compileMu = mu
		}
		mu.Unlock()
	} else {
		pq, err = Prepare(sq.q, PrepareOptions{Name: sq.name, Env: env, Config: &cfg, Pool: s.pool})
	}
	if err != nil {
		return err
	}
	data := pq.BindData(inputs)
	data.convert = s.converter(gens)
	data.idxs = idxs
	s.pruneRows(gens)
	sq.pq, sq.data, sq.gens = pq, data, gens
	return nil
}

// current returns the prepared artifacts for a run, re-resolving when any
// referenced dataset's generation moved. The staleness probe is one
// read-locked walk; a refresh re-prepares through the plan cache (a
// generation-stamped fingerprint, so unchanged plans are cache hits).
func (sq *SessionQuery) current() (*PreparedQuery, *PreparedData, error) {
	sq.mu.Lock()
	defer sq.mu.Unlock()
	if sq.pq != nil && sq.s.cat.generationsUnchanged(sq.vars, sq.s.bind, sq.gens) {
		return sq.pq, sq.data, nil
	}
	if err := sq.refreshLocked(); err != nil {
		// A referenced dataset was dropped without a replacement: keep
		// serving the last snapshot rather than failing the serving path.
		var ue *UnknownDatasetError
		if errors.As(err, &ue) && sq.pq != nil {
			return sq.pq, sq.data, nil
		}
		return nil, nil, err
	}
	return sq.pq, sq.data, nil
}

// Prepared exposes the current underlying prepared query (output types,
// columns, fingerprint), refreshed against the catalog like Run.
func (sq *SessionQuery) Prepared() *PreparedQuery {
	pq, _, err := sq.current()
	if err != nil {
		sq.mu.Lock()
		defer sq.mu.Unlock()
		return sq.pq
	}
	return pq
}

// Run evaluates the query under the strategy over the current catalog
// generations of the referenced datasets (re-resolving after mutations; see
// Session).
func (sq *SessionQuery) Run(ctx context.Context, strat Strategy) (*Result, error) {
	return sq.runStrategy(ctx, strat, false)
}

// RunAnalyzed is Run with EXPLAIN ANALYZE instrumentation: the execution
// collects per-operator runtime statistics into Result.Analyze (render with
// ExplainAnalyze or PreparedQuery.ExplainAnalyzeResult).
func (sq *SessionQuery) RunAnalyzed(ctx context.Context, strat Strategy) (*Result, error) {
	return sq.runStrategy(ctx, strat, true)
}

func (sq *SessionQuery) runStrategy(ctx context.Context, strat Strategy, analyze bool) (*Result, error) {
	rsp := trace.From(ctx).Span().Child("resolve")
	pq, data, err := sq.current()
	if err == nil && pq != nil {
		rsp.Set("query", pq.label())
	}
	rsp.End()
	if err != nil {
		return nil, err
	}
	if analyze {
		return pq.RunBoundAnalyzed(ctx, data, strat)
	}
	return pq.RunBound(ctx, data, strat)
}

// ExplainAnalyze executes the query under the strategy with per-operator
// instrumentation over the currently bound catalog data and renders the
// analyzed plans with a q-error summary — the text behind
// `trance query -analyze` and tranced POST /explain?analyze=1.
func (sq *SessionQuery) ExplainAnalyze(ctx context.Context, strat Strategy) (string, error) {
	pq, data, err := sq.current()
	if err != nil {
		return "", err
	}
	res, err := pq.RunBoundAnalyzed(ctx, data, strat)
	if err != nil {
		return "", err
	}
	return pq.ExplainAnalyzeResult(strat, res)
}

// RunJSON is Run plus JSON encoding: the result rows rendered as objects
// using the strategy's output schema — the query half of the catalog's
// JSON-in → query → JSON-out round trip. Rows come back in the engine's
// canonical sorted order, so output is deterministic.
func (sq *SessionQuery) RunJSON(ctx context.Context, strat Strategy) ([]map[string]any, error) {
	rows, _, err := sq.RunJSONFull(ctx, strat, false)
	return rows, err
}

// RunJSONFull is RunJSON returning the underlying Result too — its TraceID,
// engine metrics, and (with analyze set) the per-operator statistics in
// Result.Analyze. The returned Result may be non-nil even on error.
func (sq *SessionQuery) RunJSONFull(ctx context.Context, strat Strategy, analyze bool) ([]map[string]any, *Result, error) {
	cols, err := sq.pq.OutputSchema(strat)
	if err != nil {
		return nil, nil, err
	}
	res, err := sq.runStrategy(ctx, strat, analyze)
	if err != nil {
		return nil, res, err
	}
	esp := trace.From(ctx).Span().Child("encode")
	out := encodeRowsJSON(res.Output.CollectSorted(), cols)
	esp.End()
	return out, res, nil
}

// encodeRowsJSON renders engine rows as JSON objects typed by cols.
func encodeRowsJSON(rows []dataflow.Row, cols []OutputColumn) []map[string]any {
	fields := make([]nrc.Field, len(cols))
	for i, c := range cols {
		fields[i] = nrc.Field{Name: c.Name, Type: c.Type}
	}
	tuples := make([]value.Tuple, len(rows))
	for i, r := range rows {
		tuples[i] = value.Tuple(r)
	}
	return ingest.EncodeRows(tuples, fields)
}

// SessionPipeline is a pipeline prepared against a catalog: compiled step
// plans come from the process-wide plan cache, input conversion is cached
// per route, and every Run re-resolves against the catalog when a referenced
// dataset's generation moved (see Session).
type SessionPipeline struct {
	s     *Session
	steps []PipelineStep
	vars  []string

	mu   sync.Mutex // guards the cached resolution below
	pp   *PreparedPipeline
	data *PreparedData
	gens map[string]int64
}

// refreshLocked re-resolves the pipeline against the catalog's current
// generations and re-prepares it. Caller holds sp.mu.
func (sp *SessionPipeline) refreshLocked() error {
	s := sp.s
	env, inputs, gens, ests, idxs, err := s.cat.resolve(sp.vars, s.bind)
	if err != nil {
		return err
	}
	cfg := s.cfg
	if len(ests) > 0 {
		cfg.Stats = ests
	}
	// Step ASTs are shared across generations; serialize their annotation on
	// one compile mutex exactly like SessionQuery.refreshLocked.
	var pp *PreparedPipeline
	if sp.pp != nil {
		mu := sp.pp.compileMu
		mu.Lock()
		pp, err = PreparePipeline(sp.steps, PrepareOptions{Env: env, Config: &cfg, Pool: s.pool})
		if pp != nil {
			pp.compileMu = mu
		}
		mu.Unlock()
	} else {
		pp, err = PreparePipeline(sp.steps, PrepareOptions{Env: env, Config: &cfg, Pool: s.pool})
	}
	if err != nil {
		return err
	}
	data := pp.BindData(inputs)
	data.convert = s.converter(gens)
	data.idxs = idxs
	s.pruneRows(gens)
	sp.pp, sp.data, sp.gens = pp, data, gens
	return nil
}

func (sp *SessionPipeline) current() (*PreparedPipeline, *PreparedData, error) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.pp != nil && sp.s.cat.generationsUnchanged(sp.vars, sp.s.bind, sp.gens) {
		return sp.pp, sp.data, nil
	}
	if err := sp.refreshLocked(); err != nil {
		var ue *UnknownDatasetError
		if errors.As(err, &ue) && sp.pp != nil {
			return sp.pp, sp.data, nil
		}
		return nil, nil, err
	}
	return sp.pp, sp.data, nil
}

// Prepared exposes the current underlying prepared pipeline, refreshed
// against the catalog like Run.
func (sp *SessionPipeline) Prepared() *PreparedPipeline {
	pp, _, err := sp.current()
	if err != nil {
		sp.mu.Lock()
		defer sp.mu.Unlock()
		return sp.pp
	}
	return pp
}

// Run executes the pipeline under the strategy over the current catalog
// generations of the referenced datasets (re-resolving after mutations; see
// Session).
func (sp *SessionPipeline) Run(ctx context.Context, strat Strategy) (*PipelineResult, error) {
	pp, data, err := sp.current()
	if err != nil {
		return nil, err
	}
	return pp.RunBound(ctx, data, strat)
}

// RunJSON is Run plus JSON encoding of the final step's output, typed by the
// pipeline's output schema — SessionQuery.RunJSON for pipelines.
func (sp *SessionPipeline) RunJSON(ctx context.Context, strat Strategy) ([]map[string]any, error) {
	cols, err := sp.pp.OutputSchema(strat)
	if err != nil {
		return nil, err
	}
	res, err := sp.Run(ctx, strat)
	if err != nil {
		return nil, err
	}
	return encodeRowsJSON(res.Output.CollectSorted(), cols), nil
}

// ToJSON renders a runtime value as a json.Marshal-able Go value guided by
// its static type: tuples become objects, bags arrays, dates yyyy-mm-dd
// strings, NULL null — the inverse of Catalog.RegisterJSON's conversion.
func ToJSON(v Value, t Type) any { return ingest.Encode(v, t) }
