package trance

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/trance-go/trance/internal/dataflow"
	"github.com/trance-go/trance/internal/ingest"
	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/parse"
	"github.com/trance-go/trance/internal/plan"
	"github.com/trance-go/trance/internal/runner"
	"github.com/trance-go/trance/internal/stats"
	"github.com/trance-go/trance/internal/value"
)

// Catalog is a registry of named, typed nested datasets — the serving-side
// answer to hand-assembling Env + input maps: data is registered once (from
// Go values or straight from JSON, with the schema inferred), and sessions
// resolve queries' free variables against it. All methods are safe for
// concurrent use; datasets are immutable once registered (Register captures
// the bag by reference — do not mutate it afterwards).
type Catalog struct {
	mu      sync.RWMutex
	entries map[string]*catalogEntry
	order   []string
	nextGen int64
}

type catalogEntry struct {
	info DatasetInfo
	bag  Bag
	// gen distinguishes re-registrations of the same name (Drop + Register):
	// session row caches and cached statistics key on it, so a replaced
	// dataset never serves stale converted rows or stale plan decisions.
	gen int64
	// stats are the dataset's collected statistics (stats.Collect at
	// registration; refreshed by Analyze). Generation-stamped with gen.
	stats *stats.Table
}

// DatasetInfo describes one catalog entry.
type DatasetInfo struct {
	// Name is the catalog key (and the variable name queries use, unless a
	// session rebinds it).
	Name string
	// Type is the dataset's bag type — declared at Register, inferred at
	// RegisterJSON.
	Type Type
	// Rows is the top-level element count.
	Rows int
	// Bytes is the approximate in-memory footprint (value.Size).
	Bytes int64
	// Source records how the dataset was registered: "go" or "json".
	Source string
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{entries: map[string]*catalogEntry{}}
}

// Register adds a dataset under name with an explicit bag type. The values
// are structurally validated against the type up front, so a mismatch is a
// registration error here rather than an engine failure at query time.
func (c *Catalog) Register(name string, t Type, b Bag) error {
	bt, ok := t.(nrc.BagType)
	if !ok {
		return fmt.Errorf("catalog: dataset %s: type must be a bag, got %s", name, t)
	}
	if err := conforms(b, bt); err != nil {
		return fmt.Errorf("catalog: dataset %s: %w", name, err)
	}
	_, err := c.add(name, bt, b, "go")
	return err
}

// RegisterJSON ingests a dataset from JSON — NDJSON (one value per row) or a
// single JSON array — inferring its nested type: objects become tuples,
// arrays become bags, with null and int→real widening across rows and
// yyyy-mm-dd strings read as dates (see internal/ingest). Irreconcilable
// rows yield a descriptive error naming the JSON path.
func (c *Catalog) RegisterJSON(name string, r io.Reader) (DatasetInfo, error) {
	ds, err := ingest.ReadJSON(r)
	if err != nil {
		return DatasetInfo{}, fmt.Errorf("catalog: dataset %s: %w", name, err)
	}
	return c.add(name, ds.Type, ds.Bag, "json")
}

// ErrDatasetExists reports a Register/RegisterJSON collision with an
// existing dataset (check with errors.Is; Drop first to replace).
var ErrDatasetExists = errors.New("dataset already registered")

func (c *Catalog) add(name string, t nrc.BagType, b Bag, source string) (DatasetInfo, error) {
	if name == "" {
		return DatasetInfo{}, fmt.Errorf("catalog: dataset name must not be empty")
	}
	// Collect statistics outside the lock — a full pass over the data.
	st := stats.Collect(b, t, stats.Options{})
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[name]; dup {
		return DatasetInfo{}, fmt.Errorf("catalog: dataset %s: %w", name, ErrDatasetExists)
	}
	info := DatasetInfo{Name: name, Type: t, Rows: len(b), Bytes: value.Size(b), Source: source}
	c.nextGen++
	st.Generation = c.nextGen
	c.entries[name] = &catalogEntry{info: info, bag: b, gen: c.nextGen, stats: st}
	c.order = append(c.order, name)
	return info, nil
}

// Stats returns a dataset's collected statistics (row/byte counts, per-column
// NDV, min/max, heavy-key histograms), stamped with the registration
// generation they describe. The table is shared — treat it as read-only.
func (c *Catalog) Stats(name string) (*DatasetStats, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[name]
	if !ok {
		return nil, false
	}
	return e.stats, true
}

// Analyze recollects a dataset's statistics with the given options and stores
// them, returning the fresh table. Registration already collects statistics
// with default options; Analyze is for tuning collection (sketch size, skew
// threshold) after the fact.
func (c *Catalog) Analyze(name string, opts StatsOptions) (*DatasetStats, error) {
	c.mu.RLock()
	e, ok := c.entries[name]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("catalog: dataset %s is not registered", name)
	}
	bt := e.info.Type.(nrc.BagType)
	st := stats.Collect(e.bag, bt, opts)
	st.Generation = e.gen
	c.mu.Lock()
	// Re-registration between the reads and here moves the name to a new
	// entry; only stamp the entry the statistics describe.
	if cur, ok := c.entries[name]; ok && cur == e {
		cur.stats = st
	}
	c.mu.Unlock()
	return st, nil
}

// Drop removes a dataset. Sessions and queries prepared before the Drop keep
// serving their snapshot of the data.
func (c *Catalog) Drop(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[name]; !ok {
		return false
	}
	delete(c.entries, name)
	for i, n := range c.order {
		if n == name {
			c.order = append(c.order[:i:i], c.order[i+1:]...)
			break
		}
	}
	return true
}

// Names lists the registered datasets in registration order.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]string(nil), c.order...)
}

// List returns every dataset's info in registration order.
func (c *Catalog) List() []DatasetInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]DatasetInfo, 0, len(c.order))
	for _, n := range c.order {
		out = append(out, c.entries[n].info)
	}
	return out
}

// Info returns one dataset's info.
func (c *Catalog) Info(name string) (DatasetInfo, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[name]
	if !ok {
		return DatasetInfo{}, false
	}
	return e.info, true
}

// Data returns a dataset's values and type. The bag is shared, not copied —
// treat it as read-only.
func (c *Catalog) Data(name string) (Bag, Type, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[name]
	if !ok {
		return nil, nil, false
	}
	return e.bag, e.info.Type, true
}

// Env returns the environment of every registered dataset — what
// trance.Check needs to typecheck a query against the whole catalog.
func (c *Catalog) Env() Env {
	c.mu.RLock()
	defer c.mu.RUnlock()
	env := Env{}
	for n, e := range c.entries {
		env[n] = e.info.Type
	}
	return env
}

// UnknownDatasetError reports a query variable that resolved to no catalog
// dataset. Layers that parsed the query from text use Var to point a caret
// at the unresolved reference.
type UnknownDatasetError struct {
	// Var is the variable name the query used.
	Var string
	// Dataset is the catalog name it resolved to (differs from Var only
	// under session bindings).
	Dataset string
	// Have lists the registered dataset names.
	Have []string
}

func (e *UnknownDatasetError) Error() string {
	return fmt.Sprintf("catalog: query references %s, but no dataset %q is registered (have: %v)",
		e.Var, e.Dataset, e.Have)
}

// resolve snapshots the env, data, entry generations, and table statistics
// for the given variable names, applying the session's bindings.
func (c *Catalog) resolve(vars []string, bindings map[string]string) (Env, map[string]Bag, map[string]int64, map[string]plan.TableEstimate, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	env := Env{}
	inputs := map[string]Bag{}
	gens := map[string]int64{}
	ests := map[string]plan.TableEstimate{}
	for _, v := range vars {
		ds := v
		if b, ok := bindings[v]; ok {
			ds = b
		}
		e, ok := c.entries[ds]
		if !ok {
			return nil, nil, nil, nil, &UnknownDatasetError{Var: v, Dataset: ds, Have: append([]string(nil), c.order...)}
		}
		env[v] = e.info.Type
		inputs[v] = e.bag
		gens[v] = e.gen
		if e.stats != nil {
			ests[v] = e.stats.Estimate()
		}
	}
	return env, inputs, gens, ests, nil
}

// conforms structurally validates a value against a type. NULL conforms to
// everything (the engine's outer joins introduce it freely).
func conforms(v Value, t Type) error {
	if v == nil {
		return nil
	}
	switch tt := t.(type) {
	case nrc.BagType:
		b, ok := v.(Bag)
		if !ok {
			return fmt.Errorf("expected bag for %s, got %T", tt, v)
		}
		for i, e := range b {
			if err := conforms(e, tt.Elem); err != nil {
				return fmt.Errorf("element %d: %w", i, err)
			}
		}
		return nil
	case nrc.TupleType:
		tp, ok := v.(Tuple)
		if !ok {
			return fmt.Errorf("expected tuple for %s, got %T", tt, v)
		}
		if len(tp) != len(tt.Fields) {
			return fmt.Errorf("tuple has %d fields, type %s has %d", len(tp), tt, len(tt.Fields))
		}
		for i, f := range tt.Fields {
			if err := conforms(tp[i], f.Type); err != nil {
				return fmt.Errorf("field %s: %w", f.Name, err)
			}
		}
		return nil
	case nrc.ScalarType:
		ok := false
		switch tt.Kind {
		case nrc.Int:
			_, ok = v.(int64)
		case nrc.Real:
			_, ok = v.(float64)
		case nrc.String:
			_, ok = v.(string)
		case nrc.Bool:
			_, ok = v.(bool)
		case nrc.DateK:
			_, ok = v.(Date)
		}
		if !ok {
			return fmt.Errorf("expected %s, got %T", tt, v)
		}
		return nil
	case nrc.LabelType:
		if _, ok := v.(Label); !ok {
			return fmt.Errorf("expected label, got %T", v)
		}
		return nil
	}
	return fmt.Errorf("unsupported type %s", t)
}

// SessionOptions configures a catalog session.
type SessionOptions struct {
	// Config sizes the simulated cluster; nil means DefaultConfig().
	Config *Config
	// Pool overrides the worker pool the session's queries run on. Nil uses
	// a pool sized by Config.Workers when set, else the process default.
	Pool *Pool
	// Bindings maps query variable names to catalog dataset names when they
	// differ (e.g. a query over "NDB" served from the dataset "tpch/ndb-l2").
	// Unlisted variables resolve to the dataset of the same name.
	Bindings map[string]string
}

// Session prepares and runs queries whose free variables resolve against a
// catalog. Prepare snapshots the referenced datasets, so a session query
// keeps serving consistent data even if the catalog changes afterwards.
// Sessions are safe for concurrent use.
//
// A session shares converted input rows across everything it prepares: the
// nested→engine-row conversion (value shredding on shredded routes) of each
// (variable, dataset, route) happens once per session, no matter how many
// queries reference the dataset — so a service preparing many ad-hoc text
// queries over one dataset holds one converted copy, not one per query.
type Session struct {
	cat  *Catalog
	cfg  Config
	pool *Pool
	bind map[string]string

	rowMu    sync.Mutex
	rowCache map[string]*sharedRows
}

// sharedRows is one (variable, dataset generation, route) conversion slot;
// once guarantees a single conversion under concurrent first use.
type sharedRows struct {
	once sync.Once
	rows map[string][]dataflow.Row
	err  error
}

// NewSession creates a session over the catalog.
func (c *Catalog) NewSession(opts SessionOptions) *Session {
	cfg := DefaultConfig()
	if opts.Config != nil {
		cfg = *opts.Config
	}
	pool := poolFor(cfg, opts.Pool)
	bind := map[string]string{}
	for k, v := range opts.Bindings {
		bind[k] = v
	}
	return &Session{cat: c, cfg: cfg, pool: pool, bind: bind, rowCache: map[string]*sharedRows{}}
}

// converter builds the per-input conversion hook installed on the prepared
// data of every query this session prepares: rows convert once per
// (variable, dataset generation, route kind) and are shared session-wide.
func (s *Session) converter(gens map[string]int64) func(cq *runner.Compiled, name string, b Bag) (map[string][]dataflow.Row, error) {
	return func(cq *runner.Compiled, name string, b Bag) (map[string][]dataflow.Row, error) {
		key := fmt.Sprintf("%s\x00%d\x00%t", name, gens[name], cq.Strategy.IsShredded())
		s.rowMu.Lock()
		e, ok := s.rowCache[key]
		if !ok {
			e = &sharedRows{}
			s.rowCache[key] = e
		}
		s.rowMu.Unlock()
		e.once.Do(func() {
			e.rows, e.err = cq.InputRowsOne(name, b)
		})
		return e.rows, e.err
	}
}

// Prepare resolves the query's free variables against the catalog,
// typechecks and sets up compile-once evaluation (see Prepare), and binds
// the resolved datasets for repeated runs (see PreparedQuery.BindData). The
// session takes ownership of the query's AST.
func (s *Session) Prepare(q Expr) (*SessionQuery, error) { return s.PrepareNamed("", q) }

// PrepareNamed is Prepare with a label used in errors and metrics.
func (s *Session) PrepareNamed(name string, q Expr) (*SessionQuery, error) {
	vars := sortedVars(nrc.FreeVars(q))
	env, inputs, gens, ests, err := s.cat.resolve(vars, s.bind)
	if err != nil {
		return nil, err
	}
	cfg := s.cfg
	if len(ests) > 0 {
		cfg.Stats = ests
	}
	pq, err := Prepare(q, PrepareOptions{Name: name, Env: env, Config: &cfg, Pool: s.pool})
	if err != nil {
		return nil, err
	}
	data := pq.BindData(inputs)
	data.convert = s.converter(gens)
	return &SessionQuery{pq: pq, data: data}, nil
}

// PrepareText parses a query written in the textual surface syntax (see
// docs/QUERYLANG.md and trance.Parse) and prepares it against the catalog
// exactly like Prepare: free variables resolve to datasets (respecting the
// session's bindings), the compilation goes through the process-wide bounded
// plan cache under the query's fingerprint, and the resolved data is bound
// once for repeated runs. Lex, parse, resolution, and type errors all come
// back as position-tracked caret diagnostics pointing into src — never a
// panic.
func (s *Session) PrepareText(name, src string) (*SessionQuery, error) {
	r, err := parse.Query(src)
	if err != nil {
		return nil, err
	}
	sq, err := s.PrepareNamed(name, r.Expr)
	if err != nil {
		return nil, diagnose(&r.Source, err)
	}
	return sq, nil
}

// PrepareTextPipeline parses a multi-statement program (trance.ParseProgram:
// `name := expr;` assignments ending in a result expression) and prepares it
// as a pipeline against the catalog. Errors carry caret diagnostics like
// PrepareText.
func (s *Session) PrepareTextPipeline(src string) (*SessionPipeline, error) {
	r, err := parse.Program(src)
	if err != nil {
		return nil, err
	}
	sp, err := s.PreparePipeline(ProgramSteps(r.Program))
	if err != nil {
		return nil, diagnose(&r.Source, err)
	}
	return sp, nil
}

// diagnose points a prepare-time error back into parsed query text: type
// errors via the node position map, unresolved datasets via the first
// occurrence of the offending variable. Errors with no known position pass
// through unchanged.
func diagnose(src *parse.Source, err error) error {
	var ue *UnknownDatasetError
	if errors.As(err, &ue) {
		if node, ok := src.FirstVar(ue.Var); ok {
			return src.ErrorAt(node, err.Error())
		}
	}
	return src.Diagnose(err)
}

// PreparePipeline resolves the steps' free variables (outputs of earlier
// steps are not free) against the catalog and sets up compile-once
// evaluation of the whole pipeline (see PreparePipeline): repeated runs hit
// the plan cache for every step.
func (s *Session) PreparePipeline(steps []PipelineStep) (*SessionPipeline, error) {
	asg := make([]nrc.Assignment, len(steps))
	for i, st := range steps {
		asg[i] = nrc.Assignment{Name: st.Name, Expr: st.Query}
	}
	vars := sortedVars(nrc.FreeVarsProgram(asg))
	env, inputs, gens, ests, err := s.cat.resolve(vars, s.bind)
	if err != nil {
		return nil, err
	}
	cfg := s.cfg
	if len(ests) > 0 {
		cfg.Stats = ests
	}
	pp, err := PreparePipeline(steps, PrepareOptions{Env: env, Config: &cfg, Pool: s.pool})
	if err != nil {
		return nil, err
	}
	data := pp.BindData(inputs)
	data.convert = s.converter(gens)
	return &SessionPipeline{pp: pp, data: data}, nil
}

func sortedVars(set map[string]bool) []string {
	vars := make([]string, 0, len(set))
	for v := range set {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return vars
}

// SessionQuery is a query prepared against a catalog: compiled plans come
// from the process-wide plan cache, input conversion is cached per route,
// and any number of goroutines may Run concurrently.
type SessionQuery struct {
	pq   *PreparedQuery
	data *PreparedData
}

// Prepared exposes the underlying prepared query (output types, columns,
// fingerprint).
func (sq *SessionQuery) Prepared() *PreparedQuery { return sq.pq }

// Run evaluates the query under the strategy over the datasets snapshotted
// at Prepare time.
func (sq *SessionQuery) Run(ctx context.Context, strat Strategy) (*Result, error) {
	return sq.pq.RunBound(ctx, sq.data, strat)
}

// RunJSON is Run plus JSON encoding: the result rows rendered as objects
// using the strategy's output schema — the query half of the catalog's
// JSON-in → query → JSON-out round trip. Rows come back in the engine's
// canonical sorted order, so output is deterministic.
func (sq *SessionQuery) RunJSON(ctx context.Context, strat Strategy) ([]map[string]any, error) {
	cols, err := sq.pq.OutputSchema(strat)
	if err != nil {
		return nil, err
	}
	res, err := sq.Run(ctx, strat)
	if err != nil {
		return nil, err
	}
	return encodeRowsJSON(res.Output.CollectSorted(), cols), nil
}

// encodeRowsJSON renders engine rows as JSON objects typed by cols.
func encodeRowsJSON(rows []dataflow.Row, cols []OutputColumn) []map[string]any {
	fields := make([]nrc.Field, len(cols))
	for i, c := range cols {
		fields[i] = nrc.Field{Name: c.Name, Type: c.Type}
	}
	tuples := make([]value.Tuple, len(rows))
	for i, r := range rows {
		tuples[i] = value.Tuple(r)
	}
	return ingest.EncodeRows(tuples, fields)
}

// SessionPipeline is a pipeline prepared against a catalog: compiled step
// plans come from the process-wide plan cache and input conversion is
// cached per route.
type SessionPipeline struct {
	pp   *PreparedPipeline
	data *PreparedData
}

// Prepared exposes the underlying prepared pipeline.
func (sp *SessionPipeline) Prepared() *PreparedPipeline { return sp.pp }

// Run executes the pipeline under the strategy over the datasets
// snapshotted (and bound once per route) at PreparePipeline time.
func (sp *SessionPipeline) Run(ctx context.Context, strat Strategy) (*PipelineResult, error) {
	return sp.pp.RunBound(ctx, sp.data, strat)
}

// RunJSON is Run plus JSON encoding of the final step's output, typed by the
// pipeline's output schema — SessionQuery.RunJSON for pipelines.
func (sp *SessionPipeline) RunJSON(ctx context.Context, strat Strategy) ([]map[string]any, error) {
	cols, err := sp.pp.OutputSchema(strat)
	if err != nil {
		return nil, err
	}
	res, err := sp.Run(ctx, strat)
	if err != nil {
		return nil, err
	}
	return encodeRowsJSON(res.Output.CollectSorted(), cols), nil
}

// ToJSON renders a runtime value as a json.Marshal-able Go value guided by
// its static type: tuples become objects, bags arrays, dates yyyy-mm-dd
// strings, NULL null — the inverse of Catalog.RegisterJSON's conversion.
func ToJSON(v Value, t Type) any { return ingest.Encode(v, t) }
