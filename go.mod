module github.com/trance-go/trance

go 1.24
