// Command quickstart runs the paper's Example 1 (the COP/Part query) end to
// end: it prints the query, the standard algebraic plan, the shredded flat
// program, and the results of the standard and shredded+unshredded routes.
// Both routes execute on the parallel pipelined dataflow engine — fused
// narrow operators, goroutine-per-partition on a bounded worker pool, and
// metered shuffles (see docs/ARCHITECTURE.md).
package main

import (
	"fmt"
	"log"

	"github.com/trance-go/trance"
)

func main() {
	// The nested input COP: customers → orders → purchased parts.
	opart := trance.Tup("pid", trance.IntT, "qty", trance.RealT)
	corder := trance.Tup("odate", trance.DateT, "oparts", trance.BagOf(opart))
	env := trance.Env{
		"COP":  trance.BagOf(trance.Tup("cname", trance.StringT, "corders", trance.BagOf(corder))),
		"Part": trance.BagOf(trance.Tup("pid", trance.IntT, "pname", trance.StringT, "price", trance.RealT)),
	}

	inputs := map[string]trance.Bag{
		"COP": {
			trance.Tuple{"alice", trance.Bag{
				trance.Tuple{trance.MakeDate(2020, 1, 15), trance.Bag{
					trance.Tuple{int64(1), 2.0}, trance.Tuple{int64(2), 4.0},
				}},
			}},
			trance.Tuple{"bob", trance.Bag{}},
		},
		"Part": {
			trance.Tuple{int64(1), "bolt", 2.0},
			trance.Tuple{int64(2), "nut", 1.5},
		},
	}

	// The running example: per customer and order, total spent per part name.
	q := trance.ForIn("cop", trance.V("COP"),
		trance.SingOf(trance.Record(
			"cname", trance.P(trance.V("cop"), "cname"),
			"corders", trance.ForIn("co", trance.P(trance.V("cop"), "corders"),
				trance.SingOf(trance.Record(
					"odate", trance.P(trance.V("co"), "odate"),
					"oparts", trance.SumByOf(
						trance.ForIn("op", trance.P(trance.V("co"), "oparts"),
							trance.ForIn("p", trance.V("Part"),
								trance.IfThen(
									trance.EqOf(trance.P(trance.V("op"), "pid"), trance.P(trance.V("p"), "pid")),
									trance.SingOf(trance.Record(
										"pname", trance.P(trance.V("p"), "pname"),
										"total", trance.MulOf(trance.P(trance.V("op"), "qty"), trance.P(trance.V("p"), "price")),
									))))),
						[]string{"pname"}, []string{"total"}),
				))),
		)))

	fmt.Println("=== NRC query (paper Example 1) ===")
	fmt.Println(trance.Print(q))

	plan, err := trance.ExplainStandard(q, env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Standard route: algebraic plan (paper Figure 3) ===")
	fmt.Println(plan)

	prog, err := trance.ExplainShredded(q, env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Shredded route: materialized flat program (paper Example 6) ===")
	fmt.Println(prog)

	cfg := trance.DefaultConfig()
	for _, strat := range []trance.Strategy{trance.Standard, trance.ShredUnshred} {
		res := trance.Run(trance.Job{Query: q, Env: env, Inputs: inputs}, strat, cfg)
		if res.Failed() {
			log.Fatalf("%s failed: %v", strat, res.Err)
		}
		fmt.Printf("=== %s result (%v, %s) ===\n", strat, res.Elapsed, res.Metrics)
		for _, row := range res.Output.CollectSorted() {
			fmt.Println("  ", trance.FormatValue(trance.Tuple(row)))
		}
		fmt.Println()
	}
}
