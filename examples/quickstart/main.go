// Command quickstart runs the paper's Example 1 (the COP/Part query) end to
// end on the Catalog/Session API: the nested input arrives as JSON (NDJSON,
// schema inferred — objects become tuples, arrays become bags, yyyy-mm-dd
// strings become dates), the query is prepared once against the catalog, and
// both the standard and the shredded+unshredded routes evaluate it on the
// parallel pipelined dataflow engine, returning JSON. Along the way it
// prints the NRC query, the standard algebraic plan, and the shredded flat
// program (see docs/ARCHITECTURE.md).
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"strings"

	"github.com/trance-go/trance"
)

// The nested input COP (customers → orders → purchased parts) and the flat
// Part relation, as they would arrive over the wire: newline-delimited JSON.
const copJSON = `
{"cname": "alice", "corders": [
  {"odate": "2020-01-15", "oparts": [{"pid": 1, "qty": 2.0}, {"pid": 2, "qty": 4.0}]}
]}
{"cname": "bob", "corders": []}
`

const partJSON = `
{"pid": 1, "pname": "bolt", "price": 2.0}
{"pid": 2, "pname": "nut", "price": 1.5}
`

func main() {
	// Ingest both datasets; the nested types are inferred from the JSON.
	cat := trance.NewCatalog()
	for name, src := range map[string]string{"COP": copJSON, "Part": partJSON} {
		info, err := cat.RegisterJSON(name, strings.NewReader(src))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ingested %s: %d rows, schema %s\n", info.Name, info.Rows, info.Type)
	}

	// The running example: per customer and order, total spent per part name.
	q := trance.ForIn("cop", trance.V("COP"),
		trance.SingOf(trance.Record(
			"cname", trance.P(trance.V("cop"), "cname"),
			"corders", trance.ForIn("co", trance.P(trance.V("cop"), "corders"),
				trance.SingOf(trance.Record(
					"odate", trance.P(trance.V("co"), "odate"),
					"oparts", trance.SumByOf(
						trance.ForIn("op", trance.P(trance.V("co"), "oparts"),
							trance.ForIn("p", trance.V("Part"),
								trance.IfThen(
									trance.EqOf(trance.P(trance.V("op"), "pid"), trance.P(trance.V("p"), "pid")),
									trance.SingOf(trance.Record(
										"pname", trance.P(trance.V("p"), "pname"),
										"total", trance.MulOf(trance.P(trance.V("op"), "qty"), trance.P(trance.V("p"), "price")),
									))))),
						[]string{"pname"}, []string{"total"}),
				))),
		)))

	fmt.Println("\n=== NRC query (paper Example 1) ===")
	fmt.Println(trance.Print(q))

	// The same query in its textual surface form (docs/QUERYLANG.md): what
	// trance.Print emitted above is exactly this language, and parsing it
	// yields a structurally identical query — same fingerprint, same
	// compiled plans. Serving paths take text directly via
	// Session.PrepareText, `trance query -q`, and tranced's POST /query.
	const qText = `
for cop in COP union
  { {
      cname := cop.cname,
      corders := for co in cop.corders union
        { {
            odate := co.odate,
            oparts := sumby[pname; total](
              for op in co.oparts union
                for p in Part union
                  if op.pid == p.pid then
                    { { pname := p.pname, total := op.qty * p.price } })
        } }
  } }`
	parsed, err := trance.Parse(qText)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Same query, parsed from text ===")
	fmt.Printf("parse(text) == builder AST: %v\n", trance.Print(parsed) == trance.Print(q))

	env := cat.Env()
	plan, err := trance.ExplainStandard(q, env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Standard route: algebraic plan (paper Figure 3) ===")
	fmt.Println(plan)

	prog, err := trance.ExplainShredded(q, env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Shredded route: materialized flat program (paper Example 6) ===")
	fmt.Println(prog)

	// Prepare once against the catalog (free variables COP and Part resolve
	// to the ingested datasets), then run under both routes: compiled plans
	// land in the process-wide cache, results come back as JSON.
	sq, err := cat.NewSession(trance.SessionOptions{}).PrepareNamed("example1", q)
	if err != nil {
		log.Fatal(err)
	}
	for _, strat := range []trance.Strategy{trance.Standard, trance.ShredUnshred} {
		rows, err := sq.RunJSON(context.Background(), strat)
		if err != nil {
			log.Fatalf("%s failed: %v", strat, err)
		}
		fmt.Printf("=== %s result (JSON) ===\n", strat)
		for _, row := range rows {
			b, _ := json.Marshal(row)
			fmt.Println("  ", string(b))
		}
		fmt.Println()
	}
}
