// Command tpch runs one slice of the paper's TPC-H micro-benchmark from the
// command line: pick a query class, nesting level and width, and compare the
// evaluation strategies on generated data. Every strategy executes on the
// parallel pipelined dataflow engine, so the reported runtimes and shuffle
// volumes reflect fused narrow operators and pooled per-partition execution.
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/trance-go/trance"
	"github.com/trance-go/trance/internal/runner"
	"github.com/trance-go/trance/internal/tpch"
	"github.com/trance-go/trance/internal/value"
)

func main() {
	class := flag.String("class", "nested-to-nested", "flat-to-nested | nested-to-nested | nested-to-flat")
	level := flag.Int("level", 2, "nesting level 0-4")
	wide := flag.Bool("wide", false, "keep all attributes at every level")
	customers := flag.Int("customers", 200, "number of customers")
	skew := flag.Int("skew", 0, "Zipf skew factor 0-4")
	flag.Parse()

	if err := tpch.ValidateLevel(*level); err != nil {
		log.Fatal(err)
	}
	var qc tpch.QueryClass
	switch *class {
	case "flat-to-nested":
		qc = tpch.FlatToNested
	case "nested-to-nested":
		qc = tpch.NestedToNested
	case "nested-to-flat":
		qc = tpch.NestedToFlat
	default:
		log.Fatalf("unknown class %q", *class)
	}

	tables := tpch.Generate(tpch.Config{
		Customers: *customers, OrdersPerCustomer: 6, LinesPerOrder: 4,
		Parts: 100, SkewFactor: *skew, Seed: 1,
	})
	q := tpch.Query(qc, *level, *wide)
	env := tpch.Env(qc, *level, *wide)
	inputs := map[string]value.Bag{}
	if qc == tpch.FlatToNested {
		inputs = tables.Inputs()
	} else {
		inputs["NDB"] = tpch.BuildNested(tables, *level, true)
		inputs["Part"] = tables.Part
	}

	cfg := trance.DefaultConfig()
	fmt.Printf("%s, level %d, wide=%t, skew factor %d\n\n", qc, *level, *wide, *skew)
	for _, strat := range []runner.Strategy{
		runner.Standard, runner.SparkSQLStyle, runner.Shred, runner.ShredUnshred,
	} {
		res := runner.Run(runner.Job{Query: q, Env: env, Inputs: inputs}, strat, cfg)
		if res.Failed() {
			fmt.Printf("%-14s FAILED: %v\n", strat, res.Err)
			continue
		}
		fmt.Printf("%-14s %8v  rows=%-8d %s\n", strat, res.Elapsed, res.Output.Count(), res.Metrics)
	}
}
