// Command biomed runs the paper's five-step biomedical E2E pipeline
// (Figure 9) on synthetic ICGC-shaped data, comparing the standard and
// shredded routes step by step. The shredded route keeps every intermediate
// result in shredded form between steps; within each step the parallel
// pipelined engine fuses narrow operator chains and runs partitions on its
// bounded worker pool.
package main

import (
	"flag"
	"fmt"

	"github.com/trance-go/trance"
	"github.com/trance-go/trance/internal/biomed"
	"github.com/trance-go/trance/internal/runner"
)

func main() {
	full := flag.Bool("full", false, "use the full-size dataset")
	flag.Parse()

	cfg := biomed.SmallConfig()
	name := "small"
	if *full {
		cfg = biomed.FullConfig()
		name = "full"
	}
	inputs := biomed.Generate(cfg)
	fmt.Printf("E2E biomedical pipeline, %s dataset (%d samples, %d genes)\n\n",
		name, cfg.Samples, cfg.Genes)

	rcfg := trance.DefaultConfig()
	for _, strat := range []runner.Strategy{runner.SparkSQLStyle, runner.Standard, runner.Shred} {
		res := runner.RunPipeline(biomed.Steps(), biomed.Env(), inputs, strat, rcfg)
		fmt.Printf("%-12s", strat)
		for i, d := range res.StepElapsed {
			fmt.Printf("  step%d=%v", i+1, d)
		}
		if res.Failed() {
			fmt.Printf("  FAILED at step %d: %v", res.FailedStep+1, res.Err)
		} else {
			fmt.Printf("  rows=%d  %s", res.Output.Count(), res.Metrics)
		}
		fmt.Println()
	}
}
