// Command skew demonstrates skew-resilient processing (paper Section 5 and
// Figure 8): the narrow two-level nested-to-nested query on increasingly
// skewed TPC-H data, with and without skew-aware operators, under a
// per-worker memory cap that makes skew-oblivious flattening crash. The cap
// is enforced by the pipelined engine wherever partitions materialize —
// shuffle boundaries and in-place flattening — while fused narrow chains
// between them never materialize at all.
package main

import (
	"fmt"

	"github.com/trance-go/trance/internal/runner"
	"github.com/trance-go/trance/internal/tpch"
	"github.com/trance-go/trance/internal/value"
)

func main() {
	q := tpch.Query(tpch.NestedToNested, 2, false)
	env := tpch.Env(tpch.NestedToNested, 2, false)
	strategies := []runner.Strategy{
		runner.Standard, runner.StandardSkew,
		runner.Shred, runner.ShredSkew, runner.ShredUnshredSkew,
	}

	fmt.Println("nested-to-nested (narrow, 2 levels) under a per-worker memory cap")
	for factor := 0; factor <= 4; factor++ {
		tables := tpch.Generate(tpch.Config{
			Customers: 150, OrdersPerCustomer: 6, LinesPerOrder: 4,
			Parts: 100, SkewFactor: factor, Seed: 1,
		})
		inputs := map[string]value.Bag{
			"NDB":  tpch.BuildNested(tables, 2, true),
			"Part": tables.Part,
		}
		var total int64
		for _, b := range inputs {
			total += value.Size(b)
		}
		cfg := runner.DefaultConfig()
		cfg.MaxPartitionBytes = total / 3

		fmt.Printf("\nskew factor %d:\n", factor)
		for _, strat := range strategies {
			res := runner.Run(runner.Job{Query: q, Env: env, Inputs: inputs}, strat, cfg)
			if res.Failed() {
				fmt.Printf("  %-20s FAIL (%v)\n", strat, res.Err)
				continue
			}
			fmt.Printf("  %-20s %8v shuffled=%dKiB\n", strat, res.Elapsed, res.Metrics.ShuffleBytes/1024)
		}
	}
}
