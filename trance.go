// Package trance is a Go implementation of the compilation framework from
// "Scalable Querying of Nested Data" (Smith, Benedikt, Nikolic, Shaikhha;
// PVLDB 14(3), 2021) — the TraNCE system.
//
// Queries are written in NRC (nested relational calculus with aggregation and
// deduplication) using the builder functions of this package, compiled either
// through the standard route (Fegaras–Maier unnesting to an algebraic plan)
// or the shredded route (symbolic shredding, materialization, domain
// elimination), optionally with skew-resilient operators, and executed on an
// in-process, parallel pipelined dataflow engine: partitions are processed
// goroutine-per-partition on a bounded worker pool, consecutive narrow
// operators are fused into one pass, and the engine meters shuffles,
// per-stage wall time, and peak partition sizes while emulating per-worker
// memory limits.
//
// Quick start — data goes into a Catalog (from Go values or straight from
// JSON with the nested schema inferred), and a Session resolves a query's
// free variables against it:
//
//	cat := trance.NewCatalog()
//	info, _ := cat.RegisterJSON("R", jsonReader)   // objects→tuples, arrays→bags
//	q := trance.ForIn("x", trance.V("R"),
//	        trance.SingOf(trance.Record("b", trance.AddOf(trance.P(trance.V("x"), "a"), trance.C(1)))))
//	sq, _ := cat.NewSession(trance.SessionOptions{}).Prepare(q)
//	rows, _ := sq.RunJSON(ctx, trance.ShredUnshred) // JSON in, JSON out
//
// Queries can equally be written as text in the paper's comprehension
// syntax (docs/QUERYLANG.md) — Parse/ParseProgram produce the same ASTs,
// Session.PrepareText/PrepareTextPipeline serve them with caret
// diagnostics for every lex/parse/type error, and Print renders any query
// back in that syntax:
//
//	sq, _ := cat.NewSession(trance.SessionOptions{}).PrepareText("inc",
//	        `for x in R union { { b := x.a + 1 } }`)
//
// One-shot evaluation over explicit inputs is Run (see ExampleRun); Prepare
// and PreparePipeline are the lower-level compile-once APIs: each
// (query, strategy) — and each pipeline step, under env-aware fingerprints —
// compiles exactly once into a thread-safe process-wide cache, and the
// cached plans evaluate from any number of goroutines over different
// datasets on one shared bounded worker pool, with panics converted to
// errors at the compile and exec boundaries (see ExampleCatalog,
// ExamplePrepare, docs/SERVING.md, and the cmd/tranced HTTP service).
//
// See examples/ for complete programs, README.md for a quickstart,
// docs/ARCHITECTURE.md for the architecture and paper-to-package map, and
// bench_test.go for the reproduction of the paper's evaluation.
package trance

import (
	"context"

	"github.com/trance-go/trance/internal/core"
	"github.com/trance-go/trance/internal/dataflow"
	"github.com/trance-go/trance/internal/index"
	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/parse"
	"github.com/trance-go/trance/internal/plan"
	"github.com/trance-go/trance/internal/runner"
	"github.com/trance-go/trance/internal/shred"
	"github.com/trance-go/trance/internal/stats"
	"github.com/trance-go/trance/internal/trace"
	"github.com/trance-go/trance/internal/value"
)

// Value model.
type (
	// Value is a runtime nested value (nil is NULL).
	Value = value.Value
	// Tuple is an ordered record value.
	Tuple = value.Tuple
	// Bag is a multiset value.
	Bag = value.Bag
	// Date is a calendar date (yyyymmdd encoding).
	Date = value.Date
	// Label identifies an inner bag in the shredded representation.
	Label = value.Label
)

// MakeDate builds a Date from year, month, day.
func MakeDate(y, m, d int) Date { return value.MakeDate(y, m, d) }

// FormatValue renders a value deterministically.
func FormatValue(v Value) string { return value.Format(v) }

// ValuesEqual reports deep (multiset) equality.
func ValuesEqual(a, b Value) bool { return value.Equal(a, b) }

// Language: types.
type (
	// Type is an NRC type.
	Type = nrc.Type
	// Env maps input names to their types.
	Env = nrc.Env
	// Expr is an NRC expression.
	Expr = nrc.Expr
	// Program is a sequence of assignments.
	Program = nrc.Program
)

// Scalar type singletons.
var (
	IntT    = nrc.IntT
	RealT   = nrc.RealT
	StringT = nrc.StringT
	BoolT   = nrc.BoolT
	DateT   = nrc.DateT
)

// Type constructors.
var (
	// Tup builds a tuple type from name/Type pairs.
	Tup = nrc.Tup
	// BagOf builds Bag(elem).
	BagOf = nrc.BagOf
)

// Expression builders (see package nrc for documentation).
var (
	C       = nrc.C
	V       = nrc.V
	P       = nrc.P
	Record  = nrc.Record
	SingOf  = nrc.SingOf
	EmptyOf = nrc.EmptyOf
	GetOf   = nrc.GetOf
	ForIn   = nrc.ForIn
	UnionOf = nrc.UnionOf
	LetIn   = nrc.LetIn
	IfThen  = nrc.IfThen
	IfElse  = nrc.IfElse
	EqOf    = nrc.EqOf
	NeOf    = nrc.NeOf
	LtOf    = nrc.LtOf
	LeOf    = nrc.LeOf
	GtOf    = nrc.GtOf
	GeOf    = nrc.GeOf
	AddOf   = nrc.AddOf
	SubOf   = nrc.SubOf
	MulOf   = nrc.MulOf
	DivOf   = nrc.DivOf
	NotOf   = nrc.NotOf
	AndOf   = nrc.AndOf
	OrOf    = nrc.OrOf
	DedupOf = nrc.DedupOf
	// GroupByOf groups a bag by key attributes into a "group" bag attribute.
	GroupByOf = nrc.GroupByOf
	// SumByOf sums value attributes per distinct key.
	SumByOf = nrc.SumByOf
)

// Check type-checks a query against an environment.
func Check(q Expr, env Env) (Type, error) { return nrc.Check(q, env) }

// Print renders a query in the canonical textual surface syntax — the same
// language Parse accepts, so Parse(Print(q)) returns a structurally
// identical query (see docs/QUERYLANG.md for the grammar).
func Print(q Expr) string { return nrc.Print(q) }

// Parse parses a query written in the textual NRC surface syntax (the
// comprehension language of the paper: `for x in R union ...` — see
// docs/QUERYLANG.md for the full grammar). Lex and parse errors are
// position-tracked caret diagnostics and never panic. The returned
// expression is ready for Check, Prepare, or a Session (Session.PrepareText
// parses and prepares in one step and points type errors back at the text).
func Parse(src string) (Expr, error) {
	r, err := parse.Query(src)
	if err != nil {
		return nil, err
	}
	return r.Expr, nil
}

// ParseProgram parses a multi-statement program: `name := expr;`
// assignments (later statements may reference earlier names) ending in a
// result expression, which maps onto the pipeline machinery — each
// assignment becomes a PipelineStep, and a final bare expression becomes the
// step "result". See Session.PrepareTextPipeline for the catalog-resolved,
// compile-once serving path.
func ParseProgram(src string) (*Program, error) {
	r, err := parse.Program(src)
	if err != nil {
		return nil, err
	}
	return r.Program, nil
}

// ProgramSteps converts a parsed program into pipeline steps, one per
// assignment in order.
func ProgramSteps(p *Program) []PipelineStep {
	steps := make([]PipelineStep, len(p.Stmts))
	for i, st := range p.Stmts {
		steps[i] = PipelineStep{Name: st.Name, Query: st.Expr}
	}
	return steps
}

// LocalEval evaluates a checked query with the tuple-at-a-time reference
// evaluator (the oracle used by this repository's tests).
func LocalEval(q Expr, inputs map[string]Bag) Value {
	var s *nrc.Scope
	for name, b := range inputs {
		s = s.Bind(name, b)
	}
	return nrc.Eval(q, s)
}

// Execution strategies (paper Section 6).
type Strategy = runner.Strategy

// Strategy values.
const (
	Standard         = runner.Standard
	SparkSQLStyle    = runner.SparkSQLStyle
	Shred            = runner.Shred
	ShredUnshred     = runner.ShredUnshred
	StandardSkew     = runner.StandardSkew
	ShredSkew        = runner.ShredSkew
	ShredUnshredSkew = runner.ShredUnshredSkew
	// Auto resolves to a concrete route per query at compile time from
	// catalog statistics (see docs/COSTMODEL.md).
	Auto = runner.Auto
)

// AllStrategies lists every explicit strategy in presentation order (Auto,
// being a meta-strategy, is excluded).
func AllStrategies() []Strategy { return runner.AllStrategies() }

// ParseStrategy resolves a CLI/HTTP strategy name (Strategy.CLIName's
// inverse): standard | sparksql | shred | shred+unshred | standard-skew |
// shred-skew | shred+unshred-skew | auto.
func ParseStrategy(name string) (Strategy, bool) { return runner.ParseStrategy(name) }

// AutoCounters returns the process-wide count of Auto strategy resolutions by
// chosen route (CLI names), one per compilation (served by tranced /metrics).
func AutoCounters() map[string]int64 { return runner.AutoCounters() }

// Dataset statistics (see docs/COSTMODEL.md).
type (
	// DatasetStats holds one dataset's collected statistics: row/byte counts
	// and per-scalar-column NDV, min/max, NULL counts, and heavy-key
	// histograms (Catalog.Stats / Catalog.Analyze).
	DatasetStats = stats.Table
	// ColumnStats is one column's statistics within a DatasetStats.
	ColumnStats = stats.Column
	// StatsOptions tunes statistics collection (Catalog.Analyze).
	StatsOptions = stats.Options
	// TableEstimate is the cost model's view of one input's statistics
	// (Config.Stats; filled automatically by sessions).
	TableEstimate = plan.TableEstimate
)

// Execution configuration and results.
type (
	// Config sizes the simulated cluster.
	Config = runner.Config
	// Job is a query over named nested inputs.
	Job = runner.Job
	// Result reports one run.
	Result = runner.Result
	// PipelineStep is one constituent query of a multi-step pipeline.
	PipelineStep = runner.PipelineStep
	// PipelineResult reports a pipeline run.
	PipelineResult = runner.PipelineResult
	// Metrics is a snapshot of engine counters, including per-stage wall
	// times (Metrics.StageWall).
	Metrics = dataflow.Snapshot
	// StageTime is the measured wall time of one named engine stage.
	StageTime = dataflow.StageTime
)

// DefaultConfig is a laptop-scale stand-in for the paper's cluster.
func DefaultConfig() Config { return runner.DefaultConfig() }

// Run executes a job under a strategy: one-shot compile + execute. Serving
// paths should Prepare (or use a Catalog/Session) instead; RunPipeline in
// prepared_pipeline.go is the multi-step equivalent and reuses the plan
// cache.
func Run(job Job, strat Strategy, cfg Config) *Result { return runner.Run(job, strat, cfg) }

// OptimizerStats counts rule applications of the compile-time plan
// optimizer: predicate pushdown (below projections, joins, unnests,
// structural nests, dedup, union), join-side filters derived from key
// equalities, select fusion, constant folding, trivially-true/false
// predicate elimination, and refusals at soundness boundaries
// (outer-preserving selections, explicit nests, AddIndex, outer-join right
// sides). See docs/OPTIMIZER.md.
type OptimizerStats = plan.OptStats

// OptimizerCounters returns the process-wide optimizer rule-hit counters,
// aggregated over every compilation since start (served by tranced
// /metrics). Per-query counters appear in PreparedQuery.Explain output.
func OptimizerCounters() OptimizerStats { return plan.GlobalOptStats() }

// VectorizeStats counts, per compilation, how many narrow operators
// (selections, extensions, projections) compiled to columnar batch kernels
// versus fell back to the row-at-a-time interpreter. See docs/VECTORIZE.md.
type VectorizeStats = plan.VecStats

// VectorizeCounters returns the process-wide vectorizer counters, aggregated
// over every compilation since start (served by tranced /metrics). Per-query
// counters and per-operator fallback reasons appear in PreparedQuery.Explain
// output.
func VectorizeCounters() VectorizeStats { return plan.GlobalVecStats() }

// IndexStats are the process-wide secondary-index subsystem counters: builds,
// refusals, incremental maintenance, rebuilds, planned and executed index
// scans, fallbacks, and matched rows. See docs/INDEXES.md.
type IndexStats = index.Counters

// IndexCounters returns the process-wide index counters, aggregated since
// start (served by tranced /metrics). Per-query Select→IndexScan conversions
// appear in PreparedQuery.Explain output.
func IndexCounters() IndexStats { return index.Global() }

// IndexRefusalReasons breaks IndexCounters().Refused down by reason (e.g.
// "label column", "mixed-type keys", "range index over bool keys").
func IndexRefusalReasons() map[string]int64 { return index.RefusalReasons() }

// Observability (see docs/OBSERVABILITY.md).
type (
	// Analysis collects per-operator runtime statistics during an
	// EXPLAIN ANALYZE run (Result.Analyze).
	Analysis = plan.Analysis
	// NodeStats are one plan operator's observed runtime statistics.
	NodeStats = plan.NodeStats
	// QError is one operator's cardinality-estimate error (max(est/actual,
	// actual/est), clamped to ≥1).
	QError = plan.QError
	// Trace is one request's span tree (Result.TraceID names it).
	Trace = trace.Trace
	// Span is one timed region of a request trace.
	Span = trace.Span
	// TraceRing is a bounded in-memory buffer of recent traces (what backs
	// tranced GET /trace/{id}).
	TraceRing = trace.Ring
)

// NewTrace starts a request trace with a fresh random ID and an open root
// span. Attach it to a context with ContextWithTrace; every Run/RunBound on
// that context records parse/compile/bind/execute child spans.
func NewTrace(name string) *Trace { return trace.New(name) }

// NewTraceRing creates a bounded trace buffer keeping the most recent n
// traces (n <= 0 uses the default capacity).
func NewTraceRing(n int) *TraceRing { return trace.NewRing(n) }

// ContextWithTrace attaches a trace to a context.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context { return trace.With(ctx, t) }

// TraceFromContext returns the trace attached to ctx, or nil.
func TraceFromContext(ctx context.Context) *Trace { return trace.From(ctx) }

// ExplainStandard compiles a query through the standard route and renders the
// algebraic plan (paper Figure 3 style), before the rule-based optimizer
// pass. For the before/after-optimizer view use PreparedQuery.Explain (or
// `trance query -explain` / tranced GET /explain).
func ExplainStandard(q Expr, env Env) (string, error) {
	if _, err := nrc.Check(q, env); err != nil {
		return "", err
	}
	c, err := core.NewCompiler(env)
	if err != nil {
		return "", err
	}
	op, err := c.Compile(q)
	if err != nil {
		return "", err
	}
	return plan.Explain(op), nil
}

// ExplainShredded shreds and materializes a query and renders the resulting
// flat program (paper Example 5/6 style).
func ExplainShredded(q Expr, env Env) (string, error) {
	mat, err := shred.ShredQuery(q, env, "Q", shred.DefaultOptions())
	if err != nil {
		return "", err
	}
	return nrc.PrintProgram(mat.Program), nil
}
