package core

import (
	"fmt"

	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/plan"
)

// scalar compiles a scalar (or column-carried bag) NRC expression into a plan
// expression over the current row layout.
func (q *qc) scalar(e nrc.Expr) (plan.Expr, error) {
	switch x := e.(type) {
	case *nrc.Const:
		return &plan.ConstE{Val: x.Val, Typ: x.Type()}, nil

	case *nrc.Var:
		b, ok := q.env[x.Name]
		if !ok {
			return nil, fmt.Errorf("core: unbound variable %q in scalar position", x.Name)
		}
		if !b.isTuple {
			return &plan.Col{Idx: b.col, Name: x.Name, Typ: b.typ}, nil
		}
		// Tuple-typed variable in scalar position (e.g. captured by a label):
		// rebuild the tuple from its columns.
		tt := b.typ.(nrc.TupleType)
		names := make([]string, len(tt.Fields))
		exprs := make([]plan.Expr, len(tt.Fields))
		for i, f := range tt.Fields {
			names[i] = f.Name
			exprs[i] = &plan.Col{Idx: b.cols[f.Name], Name: f.Name, Typ: f.Type}
		}
		return &plan.MkTuple{Names: names, Exprs: exprs}, nil

	case *nrc.Proj:
		base, ok := x.Tuple.(*nrc.Var)
		if !ok {
			return nil, fmt.Errorf("core: projection base must be a variable, got %T", x.Tuple)
		}
		b, bound := q.env[base.Name]
		if !bound {
			return nil, fmt.Errorf("core: unbound variable %q", base.Name)
		}
		if !b.isTuple {
			return nil, fmt.Errorf("core: projection .%s on non-tuple variable %q", x.Field, base.Name)
		}
		col, has := b.cols[x.Field]
		if !has {
			return nil, fmt.Errorf("core: variable %q has no field %q", base.Name, x.Field)
		}
		return &plan.Col{Idx: col, Name: base.Name + "." + x.Field, Typ: x.Type()}, nil

	case *nrc.Cmp:
		l, err := q.scalar(x.L)
		if err != nil {
			return nil, err
		}
		r, err := q.scalar(x.R)
		if err != nil {
			return nil, err
		}
		return &plan.CmpE{Op: x.Op, L: l, R: r}, nil

	case *nrc.Arith:
		l, err := q.scalar(x.L)
		if err != nil {
			return nil, err
		}
		r, err := q.scalar(x.R)
		if err != nil {
			return nil, err
		}
		return &plan.ArithE{Op: x.Op, L: l, R: r, Typ: x.Type()}, nil

	case *nrc.Not:
		inner, err := q.scalar(x.E)
		if err != nil {
			return nil, err
		}
		return &plan.NotE{E: inner}, nil

	case *nrc.BoolBin:
		l, err := q.scalar(x.L)
		if err != nil {
			return nil, err
		}
		r, err := q.scalar(x.R)
		if err != nil {
			return nil, err
		}
		return &plan.BoolE{And: x.And, L: l, R: r}, nil

	case *nrc.NewLabel:
		args := make([]plan.Expr, len(x.Capture))
		for i, cap := range x.Capture {
			a, err := q.scalar(cap.Expr)
			if err != nil {
				return nil, err
			}
			args[i] = a
		}
		return &plan.MkLabel{Site: x.Site, Args: args}, nil

	case *nrc.TupleCtor:
		names := make([]string, len(x.Fields))
		exprs := make([]plan.Expr, len(x.Fields))
		for i, f := range x.Fields {
			sub, err := q.scalar(f.Expr)
			if err != nil {
				return nil, err
			}
			names[i] = f.Name
			exprs[i] = sub
		}
		return &plan.MkTuple{Names: names, Exprs: exprs}, nil
	}
	return nil, fmt.Errorf("core: expression %T is not scalar-compilable", e)
}
