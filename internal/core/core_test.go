package core_test

import (
	"strings"
	"testing"

	"github.com/trance-go/trance/internal/core"
	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/plan"
	"github.com/trance-go/trance/internal/testdata"
)

func compile(t *testing.T, q nrc.Expr, env nrc.Env) plan.Op {
	t.Helper()
	c, err := core.NewCompiler(env)
	if err != nil {
		t.Fatal(err)
	}
	op, err := c.Compile(q)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return op
}

// TestRunningExamplePlanShape checks the compiled plan against paper
// Figure 3: two outer unnests, one outer join with Part, a sum nest, and two
// structural bag nests.
func TestRunningExamplePlanShape(t *testing.T) {
	op := compile(t, testdata.RunningExample(), testdata.Env())
	text := plan.Explain(op)
	counts := map[string]int{}
	var walk func(plan.Op)
	walk = func(o plan.Op) {
		switch x := o.(type) {
		case *plan.Unnest:
			if x.Outer {
				counts["outer-unnest"]++
			}
		case *plan.Join:
			if x.Outer {
				counts["outer-join"]++
			}
		case *plan.Nest:
			if x.Agg == plan.AggSum {
				counts["sum-nest"]++
			} else if x.Mode == plan.Structural {
				counts["bag-nest"]++
			}
		}
		for _, ch := range o.Children() {
			walk(ch)
		}
	}
	walk(op)
	want := map[string]int{"outer-unnest": 2, "outer-join": 1, "sum-nest": 1, "bag-nest": 2}
	for k, v := range want {
		if counts[k] != v {
			t.Fatalf("plan shape: %s = %d, want %d\n%s", k, counts[k], v, text)
		}
	}
}

func TestJoinDetectionUsesEqualities(t *testing.T) {
	// for l in L union for r in R union if l.k == r.k then {⟨a := l.k⟩}
	env := nrc.Env{
		"L": nrc.BagOf(nrc.Tup("k", nrc.IntT)),
		"R": nrc.BagOf(nrc.Tup("k", nrc.IntT, "v", nrc.IntT)),
	}
	q := nrc.ForIn("l", nrc.V("L"),
		nrc.ForIn("r", nrc.V("R"),
			nrc.IfThen(nrc.EqOf(nrc.P(nrc.V("l"), "k"), nrc.P(nrc.V("r"), "k")),
				nrc.SingOf(nrc.Record("a", nrc.P(nrc.V("l"), "k"))))))
	op := compile(t, q, env)
	found := false
	var walk func(plan.Op)
	walk = func(o plan.Op) {
		if j, ok := o.(*plan.Join); ok {
			if len(j.LCols) != 1 || len(j.RCols) != 1 {
				t.Fatalf("expected single-key equi-join, got %v=%v", j.LCols, j.RCols)
			}
			found = true
		}
		for _, ch := range o.Children() {
			walk(ch)
		}
	}
	walk(op)
	if !found {
		t.Fatalf("no join in plan:\n%s", plan.Explain(op))
	}
}

func TestCompositeKeyJoin(t *testing.T) {
	env := nrc.Env{
		"L": nrc.BagOf(nrc.Tup("a", nrc.IntT, "b", nrc.IntT)),
		"R": nrc.BagOf(nrc.Tup("a", nrc.IntT, "b", nrc.IntT, "v", nrc.IntT)),
	}
	q := nrc.ForIn("l", nrc.V("L"),
		nrc.ForIn("r", nrc.V("R"),
			nrc.IfThen(nrc.AndOf(
				nrc.EqOf(nrc.P(nrc.V("l"), "a"), nrc.P(nrc.V("r"), "a")),
				nrc.EqOf(nrc.P(nrc.V("l"), "b"), nrc.P(nrc.V("r"), "b"))),
				nrc.SingOf(nrc.Record("v", nrc.P(nrc.V("r"), "v"))))))
	op := compile(t, q, env)
	var joins []*plan.Join
	var walk func(plan.Op)
	walk = func(o plan.Op) {
		if j, ok := o.(*plan.Join); ok {
			joins = append(joins, j)
		}
		for _, ch := range o.Children() {
			walk(ch)
		}
	}
	walk(op)
	if len(joins) != 1 || len(joins[0].LCols) != 2 {
		t.Fatalf("conjunctive condition should form one composite-key join:\n%s", plan.Explain(op))
	}
}

func TestUnsupportedConstructsReportErrors(t *testing.T) {
	env := nrc.Env{"R": nrc.BagOf(nrc.Tup("k", nrc.IntT))}
	c, err := core.NewCompiler(env)
	if err != nil {
		t.Fatal(err)
	}
	// Union below the root is unsupported by the unnesting stage.
	q := nrc.ForIn("x", nrc.V("R"),
		nrc.SingOf(nrc.Record(
			"k", nrc.P(nrc.V("x"), "k"),
			"b", nrc.UnionOf(
				nrc.SingOf(nrc.Record("v", nrc.C(1))),
				nrc.SingOf(nrc.Record("v", nrc.C(2)))),
		)))
	if _, err := c.Compile(q); err == nil || !strings.Contains(err.Error(), "union below the root") {
		t.Fatalf("expected unsupported-union error, got %v", err)
	}
}

func TestCompileProgramThreadsSchemas(t *testing.T) {
	env := nrc.Env{"R": nrc.BagOf(nrc.Tup("k", nrc.IntT))}
	c, err := core.NewCompiler(env)
	if err != nil {
		t.Fatal(err)
	}
	p := &nrc.Program{Stmts: []nrc.Assignment{
		{Name: "A", Expr: nrc.ForIn("x", nrc.V("R"), nrc.SingOf(nrc.Record("k2", nrc.AddOf(nrc.P(nrc.V("x"), "k"), nrc.C(1)))))},
		{Name: "B", Expr: nrc.ForIn("a", nrc.V("A"), nrc.SingOf(nrc.Record("k3", nrc.P(nrc.V("a"), "k2"))))},
	}}
	stmts, err := c.CompileProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 2 || stmts[1].Plan.Columns()[0].Name != "k3" {
		t.Fatalf("program compilation wrong: %v", stmts)
	}
}

func TestScanColumns(t *testing.T) {
	cols, err := core.ScanColumns(testdata.COPType)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 || cols[1].Name != "corders" {
		t.Fatalf("scan columns: %v", cols)
	}
	if _, err := core.ScanColumns(nrc.IntT); err == nil {
		t.Fatal("non-bag must be rejected")
	}
}
