// Package core implements the compilation framework of the paper (Section 3):
// the unnesting stage that translates NRC programs into algebraic plans, with
// the grouping-set (G) tracking, automatic unique-ID insertion, and NULL
// processing that the paper's Figure 3 illustrates on the running example.
//
// The unnesting algorithm follows Fegaras–Maier as adapted by the paper:
// joins written as nested loops with equality conditions become ⋈, for-loops
// over bag-valued attributes become μ, and at non-root levels the outer
// variants (⟕, μ̄) are generated so outer tuples survive with NULLs that the
// Γ operators later cast to empty bags and zeros.
package core

import (
	"fmt"

	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/plan"
)

// Compiler translates checked NRC expressions into plans over named inputs.
type Compiler struct {
	inputs map[string][]plan.Column
	fresh  int
	// NoPrune disables the column-pruning optimization (for ablation).
	NoPrune bool
}

// NewCompiler builds a compiler for the given input environment. Each input
// must be a bag; its element fields become the scan columns.
func NewCompiler(env nrc.Env) (*Compiler, error) {
	c := &Compiler{inputs: map[string][]plan.Column{}}
	for name, t := range env {
		cols, err := ScanColumns(t)
		if err != nil {
			return nil, fmt.Errorf("input %s: %w", name, err)
		}
		c.inputs[name] = cols
	}
	return c, nil
}

// ScanColumns derives the flat scan schema of a bag type.
func ScanColumns(t nrc.Type) ([]plan.Column, error) {
	b, ok := t.(nrc.BagType)
	if !ok {
		return nil, fmt.Errorf("not a bag type: %s", t)
	}
	if tt, ok := b.Elem.(nrc.TupleType); ok {
		cols := make([]plan.Column, len(tt.Fields))
		for i, f := range tt.Fields {
			cols[i] = plan.Column{Name: f.Name, Type: f.Type}
		}
		return cols, nil
	}
	return []plan.Column{{Name: "_value", Type: b.Elem}}, nil
}

// AddInput registers a new named input (used for assignment results).
func (c *Compiler) AddInput(name string, cols []plan.Column) { c.inputs[name] = cols }

// Compile translates a checked expression of bag type into a plan.
func (c *Compiler) Compile(e nrc.Expr) (plan.Op, error) {
	e = nrc.InlineLets(e)
	envTypes := nrc.Env{}
	for name, cols := range c.inputs {
		envTypes[name] = scanType(cols)
	}
	if _, err := nrc.Check(e, envTypes); err != nil {
		return nil, err
	}
	q := &qc{c: c, env: map[string]binding{}}
	op, err := q.compileRoot(e)
	if err != nil {
		return nil, err
	}
	if !c.NoPrune {
		op = plan.Prune(op)
	}
	return op, nil
}

// CompiledStmt is one compiled assignment of a program.
type CompiledStmt struct {
	Name string
	Plan plan.Op
}

// CompileProgram compiles every assignment in order; each result becomes an
// input for later assignments.
func (c *Compiler) CompileProgram(p *nrc.Program) ([]CompiledStmt, error) {
	out := make([]CompiledStmt, 0, len(p.Stmts))
	for _, st := range p.Stmts {
		op, err := c.Compile(st.Expr)
		if err != nil {
			return nil, fmt.Errorf("assignment %s: %w", st.Name, err)
		}
		c.AddInput(st.Name, op.Columns())
		out = append(out, CompiledStmt{Name: st.Name, Plan: op})
	}
	return out, nil
}

func scanType(cols []plan.Column) nrc.Type {
	if len(cols) == 1 && cols[0].Name == "_value" {
		return nrc.BagType{Elem: cols[0].Type}
	}
	fs := make([]nrc.Field, len(cols))
	for i, c := range cols {
		fs[i] = nrc.Field{Name: c.Name, Type: c.Type}
	}
	return nrc.BagType{Elem: nrc.TupleType{Fields: fs}}
}

// binding maps an NRC variable to plan columns.
type binding struct {
	isTuple bool
	cols    map[string]int // field → column (tuple-typed variables)
	col     int            // column (scalar/label/bag-typed variables)
	typ     nrc.Type
}

// qc is the per-query compile state: the current plan, variable bindings, the
// grouping prefix G, and the nesting level.
type qc struct {
	c        *Compiler
	cur      plan.Op
	env      map[string]binding
	g        []int // grouping prefix G (column positions in cur)
	carry    []int // bag-typed columns carried through nests
	presence []int // first columns of this level's generators (phantom detection)
	level    int
	// consumed marks bag columns an unnest has already flattened: μ
	// tombstones the unnested attribute in place (the paper's projection of
	// the flattened column), so a second iteration or copy of the same bag
	// would silently read NULL. Such queries are refused with a descriptive
	// error instead (found by the differential oracle harness).
	consumed map[int]bool
}

func (q *qc) clone() *qc {
	env := make(map[string]binding, len(q.env))
	for k, v := range q.env {
		env[k] = v
	}
	consumed := make(map[int]bool, len(q.consumed))
	for k, v := range q.consumed {
		consumed[k] = v
	}
	return &qc{
		c: q.c, cur: q.cur, env: env,
		g:        append([]int{}, q.g...),
		carry:    append([]int{}, q.carry...),
		presence: append([]int{}, q.presence...),
		level:    q.level,
		consumed: consumed,
	}
}

// markConsumed records that the bag at column col has been flattened in
// place and must not be read again.
func (q *qc) markConsumed(col int) {
	if q.consumed == nil {
		q.consumed = map[int]bool{}
	}
	q.consumed[col] = true
}

func (q *qc) cols() []plan.Column { return q.cur.Columns() }

func (q *qc) width() int {
	if q.cur == nil {
		return 0
	}
	return len(q.cols())
}

// step is one element of a flattened comprehension.
type step interface{ isStep() }

type genStep struct {
	v   string
	src nrc.Expr
}

type filterStep struct{ cond nrc.Expr }

type matchStep struct{ m *nrc.MatchLabel }

func (genStep) isStep()    {}
func (filterStep) isStep() {}
func (matchStep) isStep()  {}

// collect flattens nested for/if/match chains into steps and a head.
func collect(e nrc.Expr) (steps []step, head nrc.Expr, err error) {
	for {
		switch x := e.(type) {
		case *nrc.For:
			steps = append(steps, genStep{v: x.Var, src: x.Source})
			e = x.Body
		case *nrc.If:
			if x.Else != nil {
				return nil, nil, fmt.Errorf("if-then-else inside comprehensions is not supported by the unnesting stage")
			}
			steps = append(steps, filterStep{cond: x.Cond})
			e = x.Then
		case *nrc.MatchLabel:
			steps = append(steps, matchStep{m: x})
			e = x.Body
		case *nrc.Sing:
			return steps, x.Elem, nil
		default:
			// Bag-valued tail that is not a singleton: for v in s union E.
			return steps, nil, nil
		}
	}
}

// compileRoot compiles a bag expression at the root level (level 0).
func (q *qc) compileRoot(e nrc.Expr) (plan.Op, error) {
	switch x := e.(type) {
	case *nrc.Var:
		cols, ok := q.c.inputs[x.Name]
		if !ok {
			return nil, fmt.Errorf("unknown input %q", x.Name)
		}
		return &plan.Scan{Input: x.Name, Cols: cols}, nil

	case *nrc.Union:
		l, err := q.clone().compileRoot(x.L)
		if err != nil {
			return nil, err
		}
		r, err := q.clone().compileRoot(x.R)
		if err != nil {
			return nil, err
		}
		return &plan.UnionAll{L: l, R: r}, nil

	case *nrc.Empty:
		cols, err := ScanColumns(nrc.BagType{Elem: x.ElemType})
		if err != nil {
			return nil, err
		}
		return &plan.Values{Cols: cols}, nil

	case *nrc.Dedup:
		in, err := q.clone().compileRoot(x.E)
		if err != nil {
			return nil, err
		}
		return &plan.DedupOp{In: in}, nil

	case *nrc.SumBy:
		return q.compileRootAgg(x.E, x.Keys, x.Values, plan.AggSum, "")

	case *nrc.GroupBy:
		return q.compileRootAgg(x.E, x.Keys, nil, plan.AggBag, x.GroupAs)

	case *nrc.For, *nrc.If, *nrc.Sing, *nrc.MatchLabel, *nrc.MatLookup:
		return q.compileComprehension(e)
	}
	return nil, fmt.Errorf("core: unsupported root expression %T", e)
}

// compileRootAgg compiles a top-level sumBy/groupBy: compile the input as a
// flat pipeline, then apply Γ in explicit-root mode (pure-phantom groups are
// dropped: NRC aggregates over empty bags are empty).
func (q *qc) compileRootAgg(input nrc.Expr, keys, values []string, agg plan.AggKind, outName string) (plan.Op, error) {
	in, err := q.clone().compileRoot(input)
	if err != nil {
		return nil, err
	}
	cols := in.Columns()
	keyIdx, err := colsByName(cols, keys)
	if err != nil {
		return nil, err
	}
	var valIdx []int
	if agg == plan.AggSum {
		valIdx, err = colsByName(cols, values)
		if err != nil {
			return nil, err
		}
	} else {
		for i := range cols {
			if !intsContain(keyIdx, i) {
				valIdx = append(valIdx, i)
			}
		}
	}
	return &plan.Nest{
		In: in, GroupCols: keyIdx, GDepth: 0, ValueCols: valIdx,
		Agg: agg, Mode: plan.ExplicitRoot, OutName: outName,
	}, nil
}

// compileComprehension compiles a for/if/sing chain. At the root the result
// is a full plan ending in a projection; the nested variant is frame-based.
func (q *qc) compileComprehension(e nrc.Expr) (plan.Op, error) {
	steps, head, err := collect(e)
	if err != nil {
		return nil, err
	}
	if head == nil {
		return nil, fmt.Errorf("core: comprehension tail %T is not a singleton; rewrite as nested for", e)
	}
	if err := q.processSteps(steps); err != nil {
		return nil, err
	}
	return q.compileHeadRoot(head)
}

// processSteps adds generators, filters and label matches to the pipeline.
// All filters are collected up front (in "for … for … if cond" chains the
// condition appears after the generators it links); each dataset generator
// consumes the equality filters joining it to prior bindings as join keys —
// this is the nested-loop-join detection of the unnesting algorithm. The
// remaining filters become selections (outer-preserving nullifying
// selections below the root).
func (q *qc) processSteps(steps []step) error {
	entry := q.width()
	var pending []nrc.Expr
	for _, s := range steps {
		if f, ok := s.(filterStep); ok {
			pending = append(pending, splitConj(f.cond)...)
		}
	}
	for _, s := range steps {
		switch st := s.(type) {
		case genStep:
			var err error
			pending, err = q.addGenerator(st.v, st.src, pending)
			if err != nil {
				return err
			}
		case matchStep:
			if err := q.addMatch(st.m); err != nil {
				return err
			}
		}
	}
	return q.applyFilters(pending, entry)
}

// applyFilters emits the residual selections. Below the root the columns
// introduced at this level are nullified rather than dropping rows, so outer
// tuples survive (their contributions become phantom and Γ casts them away).
func (q *qc) applyFilters(filters []nrc.Expr, entry int) error {
	if len(filters) == 0 {
		return nil
	}
	pred, err := q.scalar(filters[0])
	if err != nil {
		return err
	}
	for _, f := range filters[1:] {
		p2, err := q.scalar(f)
		if err != nil {
			return err
		}
		pred = &plan.BoolE{And: true, L: pred, R: p2}
	}
	var nullify []int
	if q.level > 0 {
		for i := entry; i < q.width(); i++ {
			nullify = append(nullify, i)
		}
		if nullify == nil {
			nullify = []int{} // non-nil: keep rows, nothing to nullify
		}
	}
	q.cur = &plan.Select{In: q.cur, Pred: pred, NullifyCols: nullify}
	return nil
}

// addGenerator extends the pipeline with one generator "for v in src",
// consuming join conditions from pending filters. It returns the filters
// still pending.
func (q *qc) addGenerator(v string, src nrc.Expr, pending []nrc.Expr) ([]nrc.Expr, error) {
	elemT := src.Type().(nrc.BagType).Elem
	outer := q.level > 0

	// Correlated generator over a bag-valued path: unnest.
	if col, ok := q.resolveBagCol(src); ok {
		if q.consumed[col] {
			return nil, consumedBagErr(src)
		}
		q.markConsumed(col)
		q.cur = &plan.Unnest{In: q.cur, BagCol: col, Prefix: v, Outer: outer}
		base := q.width() - len(elemFieldCount(elemT))
		q.bindElem(v, elemT, base)
		q.markPresence(base)
		return pending, nil
	}

	// Lookup in a materialized dictionary: join on the label column.
	if ml, ok := src.(*nrc.MatLookup); ok {
		return q.addDictLookup(v, ml, pending, outer)
	}

	// Independent dataset (input, assignment, or independent subquery).
	sub, err := q.subPlan(src)
	if err != nil {
		return nil, err
	}
	if q.cur == nil {
		q.cur = sub
		q.bindElem(v, elemT, 0)
		return pending, nil
	}
	return q.joinWith(v, sub, elemT, pending, outer)
}

// subPlan compiles an independent bag source on a fresh root context.
func (q *qc) subPlan(src nrc.Expr) (plan.Op, error) {
	for fv := range nrc.FreeVars(src) {
		if _, bound := q.env[fv]; bound {
			return nil, fmt.Errorf("core: correlated subquery over %q is not supported; only bag-path navigation and MatLookup may be correlated", fv)
		}
	}
	sq := &qc{c: q.c, env: map[string]binding{}}
	return sq.compileRoot(src)
}

// joinWith joins the current pipeline with a new dataset generator, pulling
// equality conditions that link prior bindings with the new variable.
func (q *qc) joinWith(v string, right plan.Op, elemT nrc.Type, pending []nrc.Expr, outer bool) ([]nrc.Expr, error) {
	rightWidth := len(right.Columns())

	// Temporary right-side context to compile right-key expressions.
	rq := &qc{c: q.c, cur: right, env: map[string]binding{}}
	rq.bindElem(v, elemT, 0)

	var lkeys, rkeys []plan.Expr
	var remaining []nrc.Expr
	for _, f := range pending {
		l, r, ok := q.splitJoinCond(f, v)
		if ok {
			le, err := q.scalar(l)
			if err != nil {
				return nil, err
			}
			re, err := rq.scalar(r)
			if err != nil {
				return nil, err
			}
			lkeys = append(lkeys, le)
			rkeys = append(rkeys, re)
			continue
		}
		remaining = append(remaining, f)
	}

	lcols, err := q.ensureCols(lkeys)
	if err != nil {
		return nil, err
	}
	rcols, err := rq.ensureCols(rkeys)
	if err != nil {
		return nil, err
	}
	right = rq.cur
	rightWidth = len(right.Columns())

	leftWidth := q.width()
	q.cur = &plan.Join{L: q.cur, R: right, LCols: lcols, RCols: rcols, Outer: outer}
	q.bindElem(v, elemT, leftWidth)
	q.markPresence(leftWidth)
	_ = rightWidth
	return remaining, nil
}

// markPresence records the first column of a generator added below the root;
// the enclosing Γ uses it to detect rows where this generator missed.
func (q *qc) markPresence(col int) {
	if q.level > 0 {
		q.presence = append(q.presence, col)
	}
}

// addDictLookup joins the pipeline with a materialized dictionary on its
// label column (paper Section 4: "a MatLookup is translated directly into an
// outer join").
func (q *qc) addDictLookup(v string, ml *nrc.MatLookup, pending []nrc.Expr, outer bool) ([]nrc.Expr, error) {
	dictVar, ok := ml.Dict.(*nrc.Var)
	if !ok {
		return nil, fmt.Errorf("core: MatLookup dictionary must be a named input, got %T", ml.Dict)
	}
	cols, ok := q.c.inputs[dictVar.Name]
	if !ok {
		return nil, fmt.Errorf("unknown dictionary %q", dictVar.Name)
	}
	lkey, err := q.scalar(ml.Label)
	if err != nil {
		return nil, err
	}
	lcols, err := q.ensureCols([]plan.Expr{lkey})
	if err != nil {
		return nil, err
	}
	right := plan.Op(&plan.Scan{Input: dictVar.Name, Cols: cols})
	leftWidth := q.width()
	q.cur = &plan.Join{L: q.cur, R: right, LCols: lcols, RCols: []int{0}, Outer: outer}
	// v binds to the element fields (everything after the label column).
	elemT := ml.Type().(nrc.BagType).Elem
	q.bindElem(v, elemT, leftWidth+1)
	q.markPresence(leftWidth)
	return pending, nil
}

// addMatch compiles a label-match construct: it extends the plan with the
// destructured payload columns and binds the parameters.
func (q *qc) addMatch(m *nrc.MatchLabel) error {
	lbl, err := q.scalar(m.Label)
	if err != nil {
		return err
	}
	exprs := make([]plan.NamedExpr, len(m.Params))
	for i, p := range m.Params {
		exprs[i] = plan.NamedExpr{
			Name: p,
			Expr: &plan.LabelField{E: lbl, Site: m.Site, Idx: i, NParams: len(m.Params), Typ: m.ParamTypes[i]},
		}
	}
	base := q.width()
	q.cur = &plan.Extend{In: q.cur, Exprs: exprs}
	for i, p := range m.Params {
		q.env[p] = binding{col: base + i, typ: m.ParamTypes[i]}
	}
	return nil
}

// splitConj flattens a conjunction into its conjuncts so each equality can be
// consumed independently as a join key.
func splitConj(e nrc.Expr) []nrc.Expr {
	if b, ok := e.(*nrc.BoolBin); ok && b.And {
		return append(splitConj(b.L), splitConj(b.R)...)
	}
	return []nrc.Expr{e}
}

// splitJoinCond recognizes an equality whose sides separate cleanly between
// previously-bound variables and the new variable v. Returns (priorSide,
// newSide, ok).
func (q *qc) splitJoinCond(f nrc.Expr, v string) (nrc.Expr, nrc.Expr, bool) {
	cmp, ok := f.(*nrc.Cmp)
	if !ok || cmp.Op != nrc.Eq {
		return nil, nil, false
	}
	lv := nrc.FreeVars(cmp.L)
	rv := nrc.FreeVars(cmp.R)
	priorOnly := func(fv map[string]bool) bool {
		for name := range fv {
			if name == v {
				return false
			}
			if _, bound := q.env[name]; !bound {
				return false
			}
		}
		return true
	}
	newOnly := func(fv map[string]bool) bool {
		for name := range fv {
			if name != v {
				return false
			}
		}
		return len(fv) > 0
	}
	if priorOnly(lv) && newOnly(rv) {
		return cmp.L, cmp.R, true
	}
	if priorOnly(rv) && newOnly(lv) {
		return cmp.R, cmp.L, true
	}
	return nil, nil, false
}

// bindElem binds variable v of element type elemT to columns starting at
// base.
func (q *qc) bindElem(v string, elemT nrc.Type, base int) {
	if tt, ok := elemT.(nrc.TupleType); ok {
		cols := make(map[string]int, len(tt.Fields))
		for i, f := range tt.Fields {
			cols[f.Name] = base + i
		}
		q.env[v] = binding{isTuple: true, cols: cols, typ: elemT}
		return
	}
	q.env[v] = binding{col: base, typ: elemT}
}

func elemFieldCount(elemT nrc.Type) []int {
	if tt, ok := elemT.(nrc.TupleType); ok {
		return make([]int, len(tt.Fields))
	}
	return make([]int, 1)
}

// resolveBagCol resolves src to a bag-typed column of the current plan:
// either x.a for a tuple-bound x, or a variable directly bound to a bag
// column.
func (q *qc) resolveBagCol(src nrc.Expr) (int, bool) {
	switch x := src.(type) {
	case *nrc.Proj:
		base, ok := x.Tuple.(*nrc.Var)
		if !ok {
			return 0, false
		}
		b, bound := q.env[base.Name]
		if !bound || !b.isTuple {
			return 0, false
		}
		col, ok := b.cols[x.Field]
		if !ok {
			return 0, false
		}
		if _, isBag := q.cols()[col].Type.(nrc.BagType); !isBag {
			return 0, false
		}
		return col, true
	case *nrc.Var:
		b, bound := q.env[x.Name]
		if !bound || b.isTuple {
			return 0, false
		}
		if _, isBag := b.typ.(nrc.BagType); !isBag {
			return 0, false
		}
		return b.col, true
	}
	return 0, false
}

// ensureCols materializes key expressions as columns, extending the plan for
// non-column expressions.
func (q *qc) ensureCols(exprs []plan.Expr) ([]int, error) {
	out := make([]int, len(exprs))
	var ext []plan.NamedExpr
	base := q.width()
	for i, e := range exprs {
		if c, ok := e.(*plan.Col); ok {
			out[i] = c.Idx
			continue
		}
		out[i] = base + len(ext)
		ext = append(ext, plan.NamedExpr{Name: q.freshName("k"), Expr: e})
	}
	if len(ext) > 0 {
		q.cur = &plan.Extend{In: q.cur, Exprs: ext}
	}
	return out, nil
}

func (q *qc) freshName(prefix string) string {
	q.c.fresh++
	return fmt.Sprintf("_%s%d", prefix, q.c.fresh)
}

func colsByName(cols []plan.Column, names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		idx := -1
		for j, c := range cols {
			if c.Name == n {
				idx = j
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("column %q not found", n)
		}
		out[i] = idx
	}
	return out, nil
}

// consumedBagErr explains the refusal to read a bag attribute a second time.
// The unnest of an enclosing for flattens the bag's column in place (paper
// Section 3: the unnested attribute is projected away), so a later iteration
// or copy would silently see NULL — a wrong empty bag — instead of the data.
func consumedBagErr(src nrc.Expr) error {
	return fmt.Errorf("core: %s is already flattened by an enclosing for; iterating or copying a bag attribute a second time is not supported by the unnesting stage — bind the needed elements in the first iteration instead", nrc.Print(src))
}

func intsContain(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
