package core

import (
	"fmt"

	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/plan"
)

// frame is the result of compiling a bag expression at a nested level: the
// grown plan, the (possibly remapped) positions of the caller's grouping
// prefix G and carried bag columns, the element columns of the compiled bag
// with their NRC field names, and the presence columns used for phantom
// detection (see plan.Nest).
type frame struct {
	op         plan.Op
	g          []int
	carry      []int
	elems      []int
	elemNames  []string
	presence   []int
	scalarElem bool
}

// fieldInfo records where a head field landed in the plan.
type fieldInfo struct {
	name  string
	col   int
	isBag bool
}

// compileHeadRoot finishes a root-level comprehension: it materializes the
// head fields (entering nested levels for bag-valued fields) and emits the
// final projection with the NULL-bag cast.
func (q *qc) compileHeadRoot(head nrc.Expr) (plan.Op, error) {
	if q.cur == nil {
		return q.constantHead(head)
	}
	fields, err := q.compileHeadFields(head)
	if err != nil {
		return nil, err
	}
	outs := make([]plan.NamedExpr, len(fields))
	cols := q.cols()
	for i, f := range fields {
		var e plan.Expr = &plan.Col{Idx: f.col, Name: f.name, Typ: cols[f.col].Type}
		if f.isBag {
			e = &plan.CastNullBag{E: e}
		}
		outs[i] = plan.NamedExpr{Name: f.name, Expr: e}
	}
	return &plan.Project{In: q.cur, Outs: outs, CastBags: true}, nil
}

// constantHead compiles a generator-free head (a constant singleton bag).
func (q *qc) constantHead(head nrc.Expr) (plan.Op, error) {
	fields, err := normalizeHead(head, q)
	if err != nil {
		return nil, err
	}
	cols := make([]plan.Column, len(fields))
	row := make(plan.Row, len(fields))
	for i, f := range fields {
		pe, err := q.scalar(f.Expr)
		if err != nil {
			return nil, fmt.Errorf("constant head: %w", err)
		}
		cols[i] = plan.Column{Name: f.Name, Type: pe.Type()}
		row[i] = pe.Eval(nil)
	}
	return &plan.Values{Cols: cols, Rows: []plan.Row{row}}, nil
}

// compileHeadFields materializes every head field as a column of the current
// plan. Scalar fields (and pure column references, including bag-typed paths)
// extend the pipeline; bag-valued fields enter a new nesting level: the plan
// is extended with a unique ID, the grouping set G becomes every flat column,
// and each bag field is flattened with outer operators and regrouped with a
// structural Γ⊎ (paper Section 3, Unnesting).
func (q *qc) compileHeadFields(head nrc.Expr) ([]fieldInfo, error) {
	nfs, err := normalizeHead(head, q)
	if err != nil {
		return nil, err
	}

	infos := make([]fieldInfo, len(nfs))
	var bagIdx []int
	var ext []plan.NamedExpr
	extBase := q.width()
	for i, f := range nfs {
		_, isBag := f.Expr.Type().(nrc.BagType)
		if isBag && !isColumnPath(f.Expr, q) {
			infos[i] = fieldInfo{name: f.Name, col: -1, isBag: true}
			bagIdx = append(bagIdx, i)
			continue
		}
		pe, err := q.scalar(f.Expr)
		if err != nil {
			return nil, err
		}
		if c, ok := pe.(*plan.Col); ok {
			if isBag && q.consumed[c.Idx] {
				// The column holds a tombstone, not the bag.
				return nil, consumedBagErr(f.Expr)
			}
			infos[i] = fieldInfo{name: f.Name, col: c.Idx, isBag: isBag}
			continue
		}
		infos[i] = fieldInfo{name: f.Name, col: extBase + len(ext), isBag: isBag}
		ext = append(ext, plan.NamedExpr{Name: f.Name, Expr: pe})
	}
	if len(ext) > 0 {
		q.cur = &plan.Extend{In: q.cur, Exprs: ext}
	}
	if len(bagIdx) == 0 {
		return infos, nil
	}

	// Entering nested levels: unique ID, then G := all flat columns and
	// carries := all bag columns of the current plan.
	q.cur = &plan.AddIndex{In: q.cur, Name: q.freshName("id")}
	newG, newCarry := splitFlatBag(q.cols())

	for _, fi := range bagIdx {
		child := q.clone()
		child.g = newG
		child.carry = newCarry
		child.level = q.level + 1
		child.presence = nil
		fr, err := child.compileNested(nfs[fi].Expr)
		if err != nil {
			return nil, fmt.Errorf("nested field %s: %w", nfs[fi].Name, err)
		}
		q.cur = &plan.Nest{
			In: fr.op, GroupCols: fr.g, GDepth: len(fr.g),
			CarryCols: fr.carry, ValueCols: fr.elems, PresenceCols: fr.presence,
			Agg: plan.AggBag, Mode: plan.Structural,
			OutName: nfs[fi].Name, ScalarElem: fr.scalarElem,
		}

		// The nest reordered columns to [G, carries, bag]; remap everything.
		// Bags the nested level consumed stay consumed in the parent (their
		// carried value is the tombstone). child.consumed is keyed in the
		// child's FINAL coordinates — a deeper nested field may have run the
		// child's own remapState — so translate marks on the surviving
		// columns back to parent coordinates via the fr.g↔newG and
		// fr.carry↔newCarry correspondences before the parent's own remap.
		adopted := make(map[int]bool, len(q.consumed))
		for k, v := range q.consumed {
			if v {
				adopted[k] = true
			}
		}
		for i, cc := range fr.g {
			if child.consumed[cc] {
				adopted[newG[i]] = true
			}
		}
		for j, cc := range fr.carry {
			if child.consumed[cc] {
				adopted[newCarry[j]] = true
			}
		}
		q.consumed = adopted
		remap := map[int]int{}
		for i, old := range newG {
			remap[old] = i
		}
		for j, old := range newCarry {
			remap[old] = len(newG) + j
		}
		bagCol := len(newG) + len(newCarry)
		q.remapState(remap)
		for i := range infos {
			if infos[i].col >= 0 {
				infos[i].col = remap[infos[i].col]
			}
		}
		infos[fi].col = bagCol
		newG, newCarry = splitFlatBag(q.cols())
	}
	// Column-path bag fields were resolved BEFORE the nested fields above
	// consumed anything; a plain copy of a bag a sibling nested field has
	// since flattened now points at the tombstoned carry — refuse it.
	for i := range infos {
		if infos[i].isBag && infos[i].col >= 0 && q.consumed[infos[i].col] {
			return nil, consumedBagErr(nfs[i].Expr)
		}
	}
	return infos, nil
}

// compileNested flattens a bag expression into the current pipeline using
// outer operators. See frame for the contract.
func (q *qc) compileNested(e nrc.Expr) (frame, error) {
	switch x := e.(type) {
	case *nrc.Empty:
		return q.nullFrame(x.ElemType)

	case *nrc.SumBy:
		fr, err := q.compileNested(x.E)
		if err != nil {
			return frame{}, err
		}
		return fr.explicitNest(q, x.Keys, x.Values, plan.AggSum, "")

	case *nrc.GroupBy:
		fr, err := q.compileNested(x.E)
		if err != nil {
			return frame{}, err
		}
		return fr.explicitNest(q, x.Keys, nil, plan.AggBag, x.GroupAs)

	case *nrc.Union:
		return frame{}, fmt.Errorf("core: bag union below the root is not supported by the unnesting stage")
	case *nrc.Dedup:
		return frame{}, fmt.Errorf("core: dedup below the root is not supported by the unnesting stage")
	}

	// Comprehension case.
	steps, head, err := collect(e)
	if err != nil {
		return frame{}, err
	}
	savedPresence := q.presence
	q.presence = nil
	entry := q.width()
	if err := q.processSteps(steps); err != nil {
		return frame{}, err
	}
	_ = entry
	if head == nil {
		// Tail is itself a bag expression (e.g. a sumBy under the fors).
		tail := tailOf(e, len(steps))
		fr, err := q.compileNested(tail)
		q.presence = savedPresence
		return fr, err
	}

	fields, err := q.compileHeadFields(head)
	if err != nil {
		return frame{}, err
	}
	fr := frame{
		op: q.cur, g: q.g, carry: q.carry,
		presence: q.presence,
	}
	scalarElem := false
	if _, isTuple := head.Type().(nrc.TupleType); !isTuple {
		scalarElem = true
	}
	fr.scalarElem = scalarElem
	for _, f := range fields {
		fr.elems = append(fr.elems, f.col)
		fr.elemNames = append(fr.elemNames, f.name)
	}
	q.presence = savedPresence
	return fr, nil
}

// explicitNest applies a sumBy/groupBy at a nested level: Γ keyed by G plus
// the aggregation keys, in explicit-nested mode (phantom groups become NULL
// marker rows so the enclosing structural nest keeps outer tuples alive with
// empty bags).
func (fr frame) explicitNest(q *qc, keys, values []string, agg plan.AggKind, outName string) (frame, error) {
	keyPos, err := fr.elemsByName(keys)
	if err != nil {
		return frame{}, err
	}
	var valPos []int
	if agg == plan.AggSum {
		valPos, err = fr.elemsByName(values)
		if err != nil {
			return frame{}, err
		}
	} else {
		for i, c := range fr.elems {
			if !intsContain(keyPos, c) {
				valPos = append(valPos, fr.elems[i])
			}
		}
	}

	group := append(append([]int{}, fr.g...), keyPos...)
	nest := &plan.Nest{
		In: fr.op, GroupCols: group, GDepth: len(fr.g),
		CarryCols: fr.carry, ValueCols: valPos, PresenceCols: fr.presence,
		Agg: agg, Mode: plan.ExplicitNested, OutName: outName,
	}

	// Output layout: [g, keys] ++ carries ++ aggregates.
	out := frame{op: nest}
	for i := range fr.g {
		out.g = append(out.g, i)
	}
	kBase := len(fr.g)
	cBase := kBase + len(keyPos)
	aBase := cBase + len(fr.carry)
	for j := range fr.carry {
		out.carry = append(out.carry, cBase+j)
	}
	for i, k := range keys {
		out.elems = append(out.elems, kBase+i)
		out.elemNames = append(out.elemNames, k)
	}
	if agg == plan.AggSum {
		for i, v := range values {
			out.elems = append(out.elems, aBase+i)
			out.elemNames = append(out.elemNames, v)
		}
		out.presence = []int{aBase}
	} else {
		out.elems = append(out.elems, aBase)
		out.elemNames = append(out.elemNames, outName)
		out.presence = []int{aBase}
	}
	return out, nil
}

func (fr frame) elemsByName(names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		found := -1
		for j, en := range fr.elemNames {
			if en == n {
				found = fr.elems[j]
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("aggregation key/value %q not among element fields %v", n, fr.elemNames)
		}
		out[i] = found
	}
	return out, nil
}

// nullFrame compiles the empty bag at a nested level: NULL element columns
// whose presence is never satisfied, so the structural nest produces empty
// bags.
func (q *qc) nullFrame(elemT nrc.Type) (frame, error) {
	var ext []plan.NamedExpr
	var names []string
	scalarElem := false
	if tt, ok := elemT.(nrc.TupleType); ok {
		for _, f := range tt.Fields {
			ext = append(ext, plan.NamedExpr{Name: f.Name, Expr: &plan.ConstE{Val: nil, Typ: f.Type}})
			names = append(names, f.Name)
		}
	} else {
		ext = append(ext, plan.NamedExpr{Name: "_value", Expr: &plan.ConstE{Val: nil, Typ: elemT}})
		names = append(names, "_value")
		scalarElem = true
	}
	base := q.width()
	q.cur = &plan.Extend{In: q.cur, Exprs: ext}
	fr := frame{op: q.cur, g: q.g, carry: q.carry, scalarElem: scalarElem, elemNames: names}
	for i := range ext {
		fr.elems = append(fr.elems, base+i)
	}
	fr.presence = []int{base}
	return fr, nil
}

// remapState rewrites every column position in the compile state through the
// given map (applied after a structural nest reorders columns).
func (q *qc) remapState(remap map[int]int) {
	mapSlice := func(xs []int) []int {
		out := make([]int, len(xs))
		for i, x := range xs {
			n, ok := remap[x]
			if !ok {
				panic(fmt.Sprintf("core: column %d lost during nesting", x))
			}
			out[i] = n
		}
		return out
	}
	q.g = mapSlice(q.g)
	q.carry = mapSlice(q.carry)
	q.presence = mapSlice(q.presence)
	if len(q.consumed) > 0 {
		consumed := map[int]bool{}
		for old, v := range q.consumed {
			// Columns the nest dropped (the nested level's own additions)
			// are gone; only surviving positions carry the mark forward.
			if n, ok := remap[old]; ok && v {
				consumed[n] = true
			}
		}
		q.consumed = consumed
	}
	for name, b := range q.env {
		if b.isTuple {
			cols := make(map[string]int, len(b.cols))
			ok := true
			for f, c := range b.cols {
				n, has := remap[c]
				if !has {
					ok = false
					break
				}
				cols[f] = n
			}
			if !ok {
				delete(q.env, name) // variable's columns did not survive the nest
				continue
			}
			q.env[name] = binding{isTuple: true, cols: cols, typ: b.typ}
			continue
		}
		if n, has := remap[b.col]; has {
			q.env[name] = binding{col: n, typ: b.typ}
		} else {
			delete(q.env, name)
		}
	}
}

// tailOf re-walks e past n steps to the non-singleton tail.
func tailOf(e nrc.Expr, n int) nrc.Expr {
	for i := 0; i < n; i++ {
		switch x := e.(type) {
		case *nrc.For:
			e = x.Body
		case *nrc.If:
			e = x.Then
		case *nrc.MatchLabel:
			e = x.Body
		}
	}
	return e
}

// normalizeHead turns the head expression into a list of named fields: tuple
// constructors map directly; tuple-typed variables expand to projections; any
// other element type becomes the single implicit field "_value".
func normalizeHead(head nrc.Expr, q *qc) ([]nrc.NamedExpr, error) {
	switch x := head.(type) {
	case *nrc.TupleCtor:
		return x.Fields, nil
	case *nrc.Var:
		if tt, ok := x.Type().(nrc.TupleType); ok {
			out := make([]nrc.NamedExpr, len(tt.Fields))
			for i, f := range tt.Fields {
				p := &nrc.Proj{Tuple: x, Field: f.Name}
				nrc.SetType(p, f.Type)
				out[i] = nrc.NamedExpr{Name: f.Name, Expr: p}
			}
			return out, nil
		}
	}
	if _, isTuple := head.Type().(nrc.TupleType); isTuple {
		return nil, fmt.Errorf("core: unsupported tuple-valued head %T", head)
	}
	return []nrc.NamedExpr{{Name: "_value", Expr: head}}, nil
}

// isColumnPath reports whether e resolves to an existing column (variable or
// single projection) under the current bindings.
func isColumnPath(e nrc.Expr, q *qc) bool {
	switch x := e.(type) {
	case *nrc.Var:
		b, ok := q.env[x.Name]
		return ok && !b.isTuple
	case *nrc.Proj:
		base, ok := x.Tuple.(*nrc.Var)
		if !ok {
			return false
		}
		b, bound := q.env[base.Name]
		if !bound || !b.isTuple {
			return false
		}
		_, has := b.cols[x.Field]
		return has
	}
	return false
}

func splitFlatBag(cols []plan.Column) (flat, bag []int) {
	for i, c := range cols {
		if _, isBag := c.Type.(nrc.BagType); isBag {
			bag = append(bag, i)
		} else {
			flat = append(flat, i)
		}
	}
	return
}
