// Package ingest turns external JSON into the engine's typed nested values:
// it decodes NDJSON streams or JSON arrays, infers a nested NRC type for the
// whole collection (objects become tuples, arrays become bags, with
// null/numeric widening across rows), and converts the decoded rows into a
// value.Bag conforming to the inferred type. The inverse direction — encoding
// runtime values back to JSON guided by their static type — lives in
// encode.go, so a service can round-trip nested data JSON-in → query →
// JSON-out.
//
// Inference rules (applied pointwise and unified across all rows):
//
//   - JSON objects become tuple types; fields order lexicographically within
//     a row (JSON member order is not observable through encoding/json), with
//     fields first seen in later rows appended, and a field missing from some
//     objects is treated as null there.
//   - JSON arrays become bag types; element types unify across all elements
//     of all rows (an everywhere-empty array defaults to Bag(string)).
//   - JSON numbers become int when every occurrence is integral, real
//     otherwise (int widens to real, never the reverse at runtime).
//   - Strings in exact yyyy-mm-dd form become dates; mixing a date with any
//     other string widens back to string.
//   - null unifies with anything (the value stays NULL); a field that is
//     null in every row defaults to string.
//   - Any other mix (e.g. int with string, object with array) is
//     irreconcilable and yields a descriptive error naming the path.
package ingest

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/value"
)

// Dataset is the result of ingesting one JSON collection: the inferred bag
// type and the converted values.
type Dataset struct {
	// Type is the inferred type of the whole collection.
	Type nrc.BagType
	// Bag holds the converted rows.
	Bag value.Bag
}

// ReadJSON ingests a JSON collection from r: either NDJSON (a stream of
// whitespace-separated JSON values, one row each) or a single JSON array
// whose elements are the rows. The two-pass design — decode everything,
// infer the unified type, then convert — means later rows can widen the
// types of earlier ones (int→real, date→string, null→anything).
func ReadJSON(r io.Reader) (*Dataset, error) {
	rows, err := decodeRows(r)
	if err != nil {
		return nil, err
	}
	return FromDecoded(rows)
}

// FromDecoded builds a Dataset from already-decoded JSON rows (the result of
// json.Unmarshal with UseNumber). Exposed for callers that receive JSON
// through another channel (an HTTP body already parsed, a message queue).
func FromDecoded(rows []any) (*Dataset, error) {
	sch := unknownSchema()
	for i, row := range rows {
		obs, err := observe(row, rootPath)
		if err == nil {
			sch, err = unify(sch, obs, rootPath)
		}
		if err != nil {
			return nil, fmt.Errorf("ingest: row %d: %w", i+1, err)
		}
	}
	t := sch.resolve()
	bag := make(value.Bag, len(rows))
	for i, row := range rows {
		v, err := convert(row, t)
		if err != nil {
			return nil, fmt.Errorf("ingest: row %d: %w", i+1, err)
		}
		bag[i] = v
	}
	return &Dataset{Type: nrc.BagType{Elem: t}, Bag: bag}, nil
}

// ReadJSONAs ingests rows from r exactly like ReadJSON but converts them
// against a known element type instead of inferring one — the shape an append
// against an existing dataset needs: the tail must conform to the registered
// schema, not re-negotiate it (ints still read into real columns, nulls into
// anything).
func ReadJSONAs(r io.Reader, elem nrc.Type) (value.Bag, error) {
	rows, err := decodeRows(r)
	if err != nil {
		return nil, err
	}
	bag := make(value.Bag, len(rows))
	for i, row := range rows {
		v, err := convert(row, elem)
		if err != nil {
			return nil, fmt.Errorf("ingest: row %d: %w", i+1, err)
		}
		bag[i] = v
	}
	return bag, nil
}

// ScalarFromJSON parses one JSON scalar literal (5, 4.2, "x", true,
// "2024-01-31") against a column type. Input that is not valid JSON is
// retried as a bare string when the target is string- or date-typed, so
// ?value=ACME works without quoting.
func ScalarFromJSON(src string, t nrc.ScalarType) (value.Value, error) {
	dec := json.NewDecoder(strings.NewReader(src))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		if t.Kind == nrc.String || t.Kind == nrc.DateK {
			return convertScalar(src, t)
		}
		return nil, fmt.Errorf("ingest: %q is not a JSON scalar: %w", src, err)
	}
	if v == nil {
		return nil, nil
	}
	return convertScalar(v, t)
}

const rootPath = "$"

// decodeRows streams JSON values out of r. A leading '[' means one array of
// rows; anything else is treated as NDJSON (a bare stream of values, which
// json.Decoder handles regardless of line breaks).
func decodeRows(r io.Reader) ([]any, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	tok, err := dec.Token()
	if errors.Is(err, io.EOF) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	if d, ok := tok.(json.Delim); ok && d == '[' {
		var rows []any
		for dec.More() {
			var row any
			if err := dec.Decode(&row); err != nil {
				return nil, fmt.Errorf("ingest: array element %d: %w", len(rows)+1, err)
			}
			rows = append(rows, row)
		}
		if _, err := dec.Token(); err != nil {
			return nil, fmt.Errorf("ingest: %w", err)
		}
		if tok, err := dec.Token(); !errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("ingest: trailing content after JSON array: %v", tok)
		}
		return rows, nil
	}
	// NDJSON: re-decode from the first token onward. The first value has
	// already been partially consumed, so reconstruct it via the buffered
	// remainder: simplest is to re-read using a fresh decoder over the
	// original token plus the rest of the stream. Because json.Decoder gives
	// no pushback, handle the first value from the token we hold.
	first, err := valueFromToken(tok, dec)
	if err != nil {
		return nil, err
	}
	rows := []any{first}
	for {
		var row any
		if err := dec.Decode(&row); errors.Is(err, io.EOF) {
			return rows, nil
		} else if err != nil {
			return nil, fmt.Errorf("ingest: row %d: %w", len(rows)+1, err)
		}
		rows = append(rows, row)
	}
}

// valueFromToken rebuilds the first NDJSON value after its opening token was
// consumed to sniff for '['.
func valueFromToken(tok json.Token, dec *json.Decoder) (any, error) {
	switch t := tok.(type) {
	case json.Delim: // '{' — an object row; read members until the matching '}'
		if t != '{' {
			return nil, fmt.Errorf("ingest: unexpected %v at start of input", t)
		}
		obj := map[string]any{}
		for dec.More() {
			keyTok, err := dec.Token()
			if err != nil {
				return nil, fmt.Errorf("ingest: row 1: %w", err)
			}
			key, ok := keyTok.(string)
			if !ok {
				return nil, fmt.Errorf("ingest: row 1: bad object key %v", keyTok)
			}
			var v any
			if err := dec.Decode(&v); err != nil {
				return nil, fmt.Errorf("ingest: row 1, key %q: %w", key, err)
			}
			obj[key] = v
		}
		if _, err := dec.Token(); err != nil { // consume '}'
			return nil, fmt.Errorf("ingest: row 1: %w", err)
		}
		return obj, nil
	default: // scalar row (number, string, bool, null)
		return t, nil
	}
}

// kind discriminates inferred schema shapes before they resolve to nrc types.
type kind int

const (
	kUnknown kind = iota // only nulls (or nothing) seen so far
	kInt
	kReal
	kBool
	kString
	kDate
	kTuple
	kBag
)

func (k kind) String() string {
	return [...]string{"null", "int", "real", "bool", "string", "date", "object", "array"}[k]
}

// schema is the mutable inference state for one position in the nested type.
type schema struct {
	k      kind
	fields []*fieldSchema // kTuple
	elem   *schema        // kBag
}

type fieldSchema struct {
	name string
	s    *schema
}

func unknownSchema() *schema { return &schema{k: kUnknown} }

func (s *schema) field(name string) *fieldSchema {
	for _, f := range s.fields {
		if f.name == name {
			return f
		}
	}
	return nil
}

// observe maps one decoded JSON value at path to a fresh schema describing
// it. Heterogeneous elements inside a single array already conflict here;
// cross-row conflicts surface later, in unify.
func observe(v any, path string) (*schema, error) {
	switch x := v.(type) {
	case nil:
		return unknownSchema(), nil
	case bool:
		return &schema{k: kBool}, nil
	case json.Number:
		if isIntegral(x) {
			return &schema{k: kInt}, nil
		}
		return &schema{k: kReal}, nil
	case float64: // pre-decoded rows (FromDecoded without UseNumber)
		if x == float64(int64(x)) {
			return &schema{k: kInt}, nil
		}
		return &schema{k: kReal}, nil
	case string:
		if _, ok := value.ParseDate(x); ok {
			return &schema{k: kDate}, nil
		}
		return &schema{k: kString}, nil
	case map[string]any:
		t := &schema{k: kTuple}
		for _, name := range sortedKeys(x) {
			fs, err := observe(x[name], path+"."+name)
			if err != nil {
				return nil, err
			}
			t.fields = append(t.fields, &fieldSchema{name: name, s: fs})
		}
		return t, nil
	case []any:
		b := &schema{k: kBag, elem: unknownSchema()}
		for _, e := range x {
			es, err := observe(e, path+"[]")
			if err != nil {
				return nil, err
			}
			if b.elem, err = unify(b.elem, es, path+"[]"); err != nil {
				return nil, err
			}
		}
		return b, nil
	default:
		// json.Unmarshal never produces other types; guard anyway.
		return &schema{k: kString}, nil
	}
}

func isIntegral(n json.Number) bool {
	s := n.String()
	return !strings.ContainsAny(s, ".eE")
}

// sortedKeys gives object rows a deterministic field order: JSON member
// order is not observable through encoding/json, so fields sort
// lexicographically.
func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// unify merges two observations of the same position. path names the
// position in error messages ("$.items[].qty").
func unify(a, b *schema, path string) (*schema, error) {
	switch {
	case a.k == kUnknown:
		return b, nil
	case b.k == kUnknown:
		return a, nil
	case a.k == b.k:
		switch a.k {
		case kTuple:
			return unifyTuples(a, b, path)
		case kBag:
			e, err := unify(a.elem, b.elem, path+"[]")
			if err != nil {
				return nil, err
			}
			return &schema{k: kBag, elem: e}, nil
		default:
			return a, nil
		}
	// Numeric widening: int ∪ real = real.
	case a.k == kInt && b.k == kReal, a.k == kReal && b.k == kInt:
		return &schema{k: kReal}, nil
	// Date/string widening: a yyyy-mm-dd string next to a free-form string
	// is just a string column.
	case a.k == kDate && b.k == kString, a.k == kString && b.k == kDate:
		return &schema{k: kString}, nil
	default:
		return nil, fmt.Errorf("%s: cannot reconcile %s with %s", path, a.k, b.k)
	}
}

func unifyTuples(a, b *schema, path string) (*schema, error) {
	out := &schema{k: kTuple}
	// Keep a's field order, then append b's new fields: first-seen order.
	for _, fa := range a.fields {
		fb := b.field(fa.name)
		if fb == nil {
			out.fields = append(out.fields, fa)
			continue
		}
		u, err := unify(fa.s, fb.s, path+"."+fa.name)
		if err != nil {
			return nil, err
		}
		out.fields = append(out.fields, &fieldSchema{name: fa.name, s: u})
	}
	for _, fb := range b.fields {
		if out.field(fb.name) == nil {
			out.fields = append(out.fields, fb)
		}
	}
	return out, nil
}

// resolve turns the inference state into a concrete nrc type. Positions that
// only ever saw null (or an everywhere-empty array's elements) default to
// string — the widest scalar, and the one JSON can always round-trip.
func (s *schema) resolve() nrc.Type {
	switch s.k {
	case kUnknown:
		return nrc.StringT
	case kInt:
		return nrc.IntT
	case kReal:
		return nrc.RealT
	case kBool:
		return nrc.BoolT
	case kString:
		return nrc.StringT
	case kDate:
		return nrc.DateT
	case kTuple:
		fs := make([]nrc.Field, len(s.fields))
		for i, f := range s.fields {
			fs[i] = nrc.Field{Name: f.name, Type: f.s.resolve()}
		}
		return nrc.TupleType{Fields: fs}
	case kBag:
		return nrc.BagType{Elem: s.elem.resolve()}
	}
	return nrc.StringT
}

// convert maps one decoded JSON value onto the resolved type. The type is
// the unified schema of all rows, so every row converts cleanly; residual
// mismatches (only possible via FromDecoded with hand-built rows) error out
// rather than panic.
func convert(v any, t nrc.Type) (value.Value, error) {
	if v == nil {
		return nil, nil // JSON null is the engine's NULL
	}
	switch tt := t.(type) {
	case nrc.ScalarType:
		return convertScalar(v, tt)
	case nrc.TupleType:
		obj, ok := v.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("expected object for %s, got %T", tt, v)
		}
		out := make(value.Tuple, len(tt.Fields))
		for i, f := range tt.Fields {
			fv, present := obj[f.Name]
			if !present {
				out[i] = nil // missing field ≡ null
				continue
			}
			cv, err := convert(fv, f.Type)
			if err != nil {
				return nil, fmt.Errorf("field %s: %w", f.Name, err)
			}
			out[i] = cv
		}
		return out, nil
	case nrc.BagType:
		arr, ok := v.([]any)
		if !ok {
			return nil, fmt.Errorf("expected array for %s, got %T", tt, v)
		}
		out := make(value.Bag, len(arr))
		for i, e := range arr {
			cv, err := convert(e, tt.Elem)
			if err != nil {
				return nil, fmt.Errorf("element %d: %w", i, err)
			}
			out[i] = cv
		}
		return out, nil
	}
	return nil, fmt.Errorf("unsupported target type %s", t)
}

func convertScalar(v any, t nrc.ScalarType) (value.Value, error) {
	switch t.Kind {
	case nrc.Int:
		switch x := v.(type) {
		case json.Number:
			return x.Int64()
		case float64:
			return int64(x), nil
		}
	case nrc.Real:
		switch x := v.(type) {
		case json.Number:
			return x.Float64()
		case float64:
			return x, nil
		}
	case nrc.Bool:
		if x, ok := v.(bool); ok {
			return x, nil
		}
	case nrc.String:
		if x, ok := v.(string); ok {
			return x, nil
		}
	case nrc.DateK:
		if x, ok := v.(string); ok {
			if d, ok := value.ParseDate(x); ok {
				return d, nil
			}
			return nil, fmt.Errorf("%q is not a yyyy-mm-dd date", x)
		}
	}
	return nil, fmt.Errorf("expected %s, got %T", t, v)
}
