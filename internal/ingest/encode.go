package ingest

import (
	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/value"
)

// Encode renders a runtime value as a json.Marshal-able Go value guided by
// its static type: tuples become objects (field names come from the type),
// bags become arrays, dates render as yyyy-mm-dd strings, labels in their
// textual form, NULL as null. It is the inverse of ReadJSON's conversion, so
// ingested data round-trips (modulo bag order, which is unspecified).
func Encode(v value.Value, t nrc.Type) any {
	if v == nil {
		return nil
	}
	switch tt := t.(type) {
	case nrc.BagType:
		b, ok := v.(value.Bag)
		if !ok {
			return value.Format(v)
		}
		out := make([]any, len(b))
		for i, e := range b {
			out[i] = Encode(e, tt.Elem)
		}
		return out
	case nrc.TupleType:
		tp, ok := v.(value.Tuple)
		if !ok {
			return value.Format(v)
		}
		m := make(map[string]any, len(tt.Fields))
		for i, f := range tt.Fields {
			if i < len(tp) {
				m[f.Name] = Encode(tp[i], f.Type)
			}
		}
		return m
	}
	switch x := v.(type) {
	case int64, float64, string, bool:
		return x
	case value.Date:
		return x.String()
	default:
		return value.Format(v) // labels and anything exotic
	}
}

// EncodeRows renders a flat result dataset — rows plus their column schema —
// as a slice of JSON objects, one per row. This is the shape the HTTP service
// returns and the CLI prints.
func EncodeRows(rows []value.Tuple, cols []nrc.Field) []map[string]any {
	out := make([]map[string]any, len(rows))
	for i, row := range rows {
		m := make(map[string]any, len(cols))
		for ci, c := range cols {
			if ci < len(row) {
				m[c.Name] = Encode(row[ci], c.Type)
			}
		}
		out[i] = m
	}
	return out
}
