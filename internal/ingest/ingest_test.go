package ingest

import (
	"strings"
	"testing"

	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/value"
)

func ingestString(t *testing.T, src string) *Dataset {
	t.Helper()
	ds, err := ReadJSON(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	return ds
}

func wantType(t *testing.T, got nrc.Type, want nrc.Type) {
	t.Helper()
	if !nrc.TypesEqual(got, want) {
		t.Fatalf("inferred %s, want %s", got, want)
	}
}

func TestInferFlatNDJSON(t *testing.T) {
	ds := ingestString(t, `
{"a": 1, "b": "x"}
{"a": 2, "b": "y"}
`)
	wantType(t, ds.Type, nrc.BagOf(nrc.Tup("a", nrc.IntT, "b", nrc.StringT)))
	if len(ds.Bag) != 2 {
		t.Fatalf("want 2 rows, got %d", len(ds.Bag))
	}
	if got := ds.Bag[0].(value.Tuple)[0]; got != int64(1) {
		t.Fatalf("a = %v (%T), want int64 1", got, got)
	}
}

func TestInferJSONArrayEqualsNDJSON(t *testing.T) {
	arr := ingestString(t, `[{"a": 1}, {"a": 2}]`)
	nd := ingestString(t, "{\"a\": 1}\n{\"a\": 2}")
	wantType(t, arr.Type, nd.Type)
	if !value.Equal(arr.Bag, nd.Bag) {
		t.Fatalf("array and NDJSON ingestion disagree: %s vs %s",
			value.Format(arr.Bag), value.Format(nd.Bag))
	}
}

// Int and real occurrences of one field widen to real, and already-converted
// integral values come back as float64.
func TestInferNumericWidening(t *testing.T) {
	ds := ingestString(t, `
{"x": 1}
{"x": 2.5}
{"x": 3}
`)
	wantType(t, ds.Type, nrc.BagOf(nrc.Tup("x", nrc.RealT)))
	for i, row := range ds.Bag {
		if _, ok := row.(value.Tuple)[0].(float64); !ok {
			t.Fatalf("row %d: x should be float64 after widening, got %T", i, row.(value.Tuple)[0])
		}
	}
}

// Nulls unify with any later type; a field that stays null everywhere
// defaults to string, and null values stay NULL.
func TestInferNullFields(t *testing.T) {
	ds := ingestString(t, `
{"a": null, "b": null}
{"a": 7, "b": null}
`)
	wantType(t, ds.Type, nrc.BagOf(nrc.Tup("a", nrc.IntT, "b", nrc.StringT)))
	r0 := ds.Bag[0].(value.Tuple)
	if r0[0] != nil || r0[1] != nil {
		t.Fatalf("nulls must stay NULL: %s", value.Format(r0))
	}
}

// A field missing from some rows is treated as null there, and fields first
// seen in later rows are appended to the tuple type.
func TestInferMissingFields(t *testing.T) {
	ds := ingestString(t, `
{"a": 1}
{"a": 2, "c": true}
`)
	wantType(t, ds.Type, nrc.BagOf(nrc.Tup("a", nrc.IntT, "c", nrc.BoolT)))
	r0 := ds.Bag[0].(value.Tuple)
	if r0[1] != nil {
		t.Fatalf("missing field must be NULL, got %v", r0[1])
	}
}

// Empty bags: an array empty in one row takes its element type from other
// rows; an array empty in every row defaults to Bag(string).
func TestInferEmptyBags(t *testing.T) {
	ds := ingestString(t, `
{"xs": [], "ys": []}
{"xs": [{"v": 1}], "ys": []}
`)
	wantType(t, ds.Type, nrc.BagOf(nrc.Tup(
		"xs", nrc.BagOf(nrc.Tup("v", nrc.IntT)),
		"ys", nrc.BagOf(nrc.StringT),
	)))
	r0 := ds.Bag[0].(value.Tuple)
	if len(r0[0].(value.Bag)) != 0 || len(r0[1].(value.Bag)) != 0 {
		t.Fatalf("empty arrays must convert to empty bags: %s", value.Format(r0))
	}
}

// An entirely empty input yields an empty bag of strings — usable, if dull.
func TestInferEmptyInput(t *testing.T) {
	ds := ingestString(t, ``)
	wantType(t, ds.Type, nrc.BagOf(nrc.StringT))
	if len(ds.Bag) != 0 {
		t.Fatalf("want empty bag, got %s", value.Format(ds.Bag))
	}
}

// Deeply nested arrays-of-objects infer level by level, with widening applied
// at depth (the inner qty mixes int and real across rows).
func TestInferDeepNesting(t *testing.T) {
	ds := ingestString(t, `
{"name": "alice", "orders": [{"date": "2020-01-15", "items": [{"pid": 1, "qty": 2}]}]}
{"name": "bob",   "orders": [{"date": "2020-02-20", "items": [{"pid": 2, "qty": 4.5}, {"pid": 3, "qty": 1}]}, {"date": "2020-03-01", "items": []}]}
`)
	wantType(t, ds.Type, nrc.BagOf(nrc.Tup(
		"name", nrc.StringT,
		"orders", nrc.BagOf(nrc.Tup(
			"date", nrc.DateT,
			"items", nrc.BagOf(nrc.Tup("pid", nrc.IntT, "qty", nrc.RealT)),
		)),
	)))
	// The date strings became real Date values.
	alice := ds.Bag[0].(value.Tuple)
	order := alice[1].(value.Bag)[0].(value.Tuple)
	if d, ok := order[0].(value.Date); !ok || d != value.MakeDate(2020, 1, 15) {
		t.Fatalf("date not parsed: %v (%T)", order[0], order[0])
	}
}

// Dates mixed with non-date strings widen back to string.
func TestInferDateStringWidening(t *testing.T) {
	ds := ingestString(t, `
{"d": "2020-01-15"}
{"d": "not a date"}
`)
	wantType(t, ds.Type, nrc.BagOf(nrc.Tup("d", nrc.StringT)))
	if got := ds.Bag[0].(value.Tuple)[0]; got != "2020-01-15" {
		t.Fatalf("widened date should stay a string: %v", got)
	}
}

// Scalar rows (NDJSON of bare values) make a bag of scalars.
func TestInferScalarRows(t *testing.T) {
	ds := ingestString(t, "1\n2\n3")
	wantType(t, ds.Type, nrc.BagOf(nrc.IntT))
	if !value.Equal(ds.Bag, value.Bag{int64(1), int64(2), int64(3)}) {
		t.Fatalf("got %s", value.Format(ds.Bag))
	}
}

// Irreconcilable types produce a descriptive error naming the path — never a
// panic.
func TestInferIrreconcilable(t *testing.T) {
	cases := []struct {
		name, src, wantPath string
	}{
		{"scalar-vs-string", "{\"a\": 1}\n{\"a\": \"x\"}", "$.a"},
		{"object-vs-array", "{\"a\": {\"b\": 1}}\n{\"a\": [1]}", "$.a"},
		{"nested-field", "{\"a\": [{\"b\": 1}]}\n{\"a\": [{\"b\": true}]}", "$.a[].b"},
		{"hetero-array-one-row", `{"a": [1, "x"]}`, "$.a[]"},
		{"bool-vs-int", "true\n1", "$"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadJSON(strings.NewReader(tc.src))
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !strings.Contains(err.Error(), tc.wantPath) || !strings.Contains(err.Error(), "cannot reconcile") {
				t.Fatalf("error should name path %s and say 'cannot reconcile': %v", tc.wantPath, err)
			}
		})
	}
}

// Malformed JSON errors out with the row position.
func TestMalformedJSON(t *testing.T) {
	for _, src := range []string{`{"a": `, `[{"a": 1},`, `[1, 2] trailing`} {
		if _, err := ReadJSON(strings.NewReader(src)); err == nil {
			t.Fatalf("want error for %q", src)
		}
	}
}

// Encode is the inverse of ingestion: JSON in, values out, JSON back.
func TestEncodeRoundTrip(t *testing.T) {
	ds := ingestString(t, `{"name": "alice", "tags": ["x", "y"], "score": 1.5, "when": "2021-06-30", "ok": true, "gone": null}`)
	enc := Encode(ds.Bag[0], ds.Type.Elem).(map[string]any)
	if enc["name"] != "alice" || enc["score"] != 1.5 || enc["ok"] != true || enc["when"] != "2021-06-30" {
		t.Fatalf("bad encode: %v", enc)
	}
	if enc["gone"] != nil {
		t.Fatalf("null must encode as nil: %v", enc["gone"])
	}
	tags := enc["tags"].([]any)
	if len(tags) != 2 || tags[0] != "x" {
		t.Fatalf("bad tags: %v", tags)
	}
}

// The inferred type always typechecks against the converted values via the
// identity query — the catalog's invariant.
func TestInferredTypeChecks(t *testing.T) {
	ds := ingestString(t, `
{"k": 1, "items": [{"v": 2}, {"v": 3}]}
{"k": 2, "items": []}
`)
	env := nrc.Env{"R": ds.Type}
	q := nrc.ForIn("x", nrc.V("R"), nrc.SingOf(nrc.V("x")))
	got, err := nrc.Check(q, env)
	if err != nil {
		t.Fatalf("identity query must typecheck over inferred env: %v", err)
	}
	if !nrc.TypesEqual(got, ds.Type) {
		t.Fatalf("identity output %s != inferred %s", got, ds.Type)
	}
}
