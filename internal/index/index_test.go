package index

import (
	"reflect"
	"strings"
	"testing"

	"github.com/trance-go/trance/internal/value"
)

func intVals(ns ...int64) []value.Value {
	out := make([]value.Value, len(ns))
	for i, n := range ns {
		out[i] = n
	}
	return out
}

func mustBuild(t *testing.T, col string, hash, ordered bool, vals []value.Value) *ColumnIndex {
	t.Helper()
	ci, err := Build(col, hash, ordered, vals)
	if err != nil {
		t.Fatalf("Build(%s): %v", col, err)
	}
	return ci
}

func wantPos(t *testing.T, got []int32, want ...int32) {
	t.Helper()
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("positions: got %v, want %v", got, want)
	}
}

func TestParseKind(t *testing.T) {
	cases := []struct {
		in            string
		hash, ordered bool
		ok            bool
	}{
		{"", true, true, true},
		{"both", true, true, true},
		{"hash+range", true, true, true},
		{"hash", true, false, true},
		{"range", false, true, true},
		{"ordered", false, true, true},
		{"btree", false, false, false},
	}
	for _, c := range cases {
		h, o, err := ParseKind(c.in)
		if c.ok != (err == nil) || h != c.hash || o != c.ordered {
			t.Errorf("ParseKind(%q) = %v,%v,%v", c.in, h, o, err)
		}
	}
}

func TestKindString(t *testing.T) {
	if Hash.String() != "hash" || Ordered.String() != "range" {
		t.Fatalf("Kind.String: %s/%s", Hash, Ordered)
	}
	both := mustBuild(t, "c", true, true, intVals(1))
	hOnly := mustBuild(t, "c", true, false, intVals(1))
	oOnly := mustBuild(t, "c", false, true, intVals(1))
	if both.KindString() != "hash+range" || hOnly.KindString() != "hash" || oOnly.KindString() != "range" {
		t.Fatalf("KindString: %s/%s/%s", both.KindString(), hOnly.KindString(), oOnly.KindString())
	}
	if !both.HasHash() || !both.HasOrdered() || hOnly.HasOrdered() || oOnly.HasHash() {
		t.Fatal("structure flags wrong")
	}
}

func TestSpanPredicates(t *testing.T) {
	p := Point(int64(5))
	if !p.IsPoint() || p.Empty() {
		t.Fatalf("Point(5): IsPoint=%v Empty=%v", p.IsPoint(), p.Empty())
	}
	// 5 == 5.0 under value.Compare, so a mixed-type point is still a point.
	mixed := Span{Lo: int64(5), Hi: float64(5), LoInc: true, HiInc: true}
	if !mixed.IsPoint() {
		t.Fatal("[5,5.0] should be a point")
	}
	empty := Span{Lo: int64(7), Hi: int64(3), LoInc: true, HiInc: true}
	if !empty.Empty() {
		t.Fatal("[7,3] should be empty")
	}
	halfOpen := Span{Lo: int64(5), Hi: int64(5), LoInc: true, HiInc: false}
	if !halfOpen.Empty() || halfOpen.IsPoint() {
		t.Fatal("[5,5) should be empty, not a point")
	}
	unbounded := Span{}
	if unbounded.Empty() || unbounded.IsPoint() {
		t.Fatal("(-∞,+∞) is neither empty nor a point")
	}
}

func TestSpanFormatting(t *testing.T) {
	cases := []struct {
		s    Span
		want string
	}{
		{Point(int64(5)), "[5]"},
		{Span{Lo: int64(1), Hi: int64(9), LoInc: true, HiInc: false}, "[1,9)"},
		{Span{Lo: int64(1), LoInc: false}, "(1,+∞)"},
		{Span{Hi: "zz", HiInc: true}, `(-∞,"zz"]`},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("Span.String: got %s, want %s", got, c.want)
		}
	}
	if FormatSpans(nil) != "∅" {
		t.Fatalf("FormatSpans(nil) = %s", FormatSpans(nil))
	}
	multi := FormatSpans([]Span{Point(int64(1)), Point(int64(3))})
	if multi != "[1]∪[3]" {
		t.Fatalf("FormatSpans = %s", multi)
	}
}

func TestBuildRefusals(t *testing.T) {
	before := RefusalReasons()
	refusedBefore := Global().Refused

	cases := []struct {
		name          string
		hash, ordered bool
		vals          []value.Value
		reason        string
	}{
		{"no structure", false, false, intVals(1), "no structure requested"},
		{"mixed types", true, true, []value.Value{int64(1), "x"}, "mixed-type keys"},
		{"label column", true, true, []value.Value{value.NewLabel(1, int64(2))}, "label column"},
		{"boxed tuple", true, true, []value.Value{value.Tuple{int64(1)}}, "boxed value"},
		{"boxed bag", true, true, []value.Value{value.Bag{int64(1)}}, "boxed value"},
		{"range over bool", false, true, []value.Value{true, false}, "range index over bool keys"},
	}
	for _, c := range cases {
		ci, err := Build("c", c.hash, c.ordered, c.vals)
		if err == nil || ci != nil {
			t.Fatalf("%s: build should refuse", c.name)
		}
		if !strings.Contains(err.Error(), c.reason) {
			t.Fatalf("%s: error %q lacks reason %q", c.name, err, c.reason)
		}
	}

	after := RefusalReasons()
	for _, reason := range []string{"no structure requested", "mixed-type keys", "label column", "boxed value", "range index over bool keys"} {
		if after[reason] <= before[reason] {
			t.Errorf("refusal reason %q not counted (%d -> %d)", reason, before[reason], after[reason])
		}
	}
	if got := Global().Refused - refusedBefore; got != int64(len(cases)) {
		t.Errorf("Refused counter advanced by %d, want %d", got, len(cases))
	}
}

func TestBoolHashDowngradesOrdered(t *testing.T) {
	// Requesting both structures over bool keeps the hash and silently drops
	// the ordered structure rather than refusing the whole build.
	ci := mustBuild(t, "flag", true, true, []value.Value{true, false, true})
	if !ci.HasHash() || ci.HasOrdered() {
		t.Fatalf("bool column: hash=%v ordered=%v", ci.HasHash(), ci.HasOrdered())
	}
	wantPos(t, ci.Lookup([]Span{Point(true)}), 0, 2)
	wantPos(t, ci.Lookup([]Span{Point(false)}), 1)
}

func TestEmptyDataset(t *testing.T) {
	ci := mustBuild(t, "c", true, true, nil)
	if ci.Len() != 0 || ci.Keys() != 0 || ci.Nulls() != 0 {
		t.Fatalf("empty index: len=%d keys=%d nulls=%d", ci.Len(), ci.Keys(), ci.Nulls())
	}
	wantPos(t, ci.Lookup([]Span{Point(int64(1)), {}}))
	if !ci.CanServe([]Span{Point(int64(1))}) {
		t.Fatal("empty index should still serve spans")
	}
	ext, err := ci.Extend(intVals(10, 20))
	if err != nil {
		t.Fatal(err)
	}
	wantPos(t, ext.Lookup([]Span{Point(int64(20))}), 1)
}

func TestAllNullColumn(t *testing.T) {
	ci := mustBuild(t, "c", true, true, []value.Value{nil, nil, nil})
	if ci.Len() != 3 || ci.Nulls() != 3 || ci.Keys() != 0 {
		t.Fatalf("all-NULL: len=%d nulls=%d keys=%d", ci.Len(), ci.Nulls(), ci.Keys())
	}
	// No span matches a NULL key, not even the unbounded one.
	wantPos(t, ci.Lookup([]Span{{}}))
	wantPos(t, ci.Lookup([]Span{Point(int64(0))}))
	// A non-NULL tail fixes the family after the fact.
	ext, err := ci.Extend(intVals(42))
	if err != nil {
		t.Fatal(err)
	}
	if ext.Len() != 4 || ext.Nulls() != 3 || ext.Keys() != 1 {
		t.Fatalf("extended all-NULL: len=%d nulls=%d keys=%d", ext.Len(), ext.Nulls(), ext.Keys())
	}
	wantPos(t, ext.Lookup([]Span{Point(int64(42))}), 3)
}

func TestNullKeysExcludedFromSpans(t *testing.T) {
	vals := []value.Value{int64(1), nil, int64(3), nil, int64(5)}
	ci := mustBuild(t, "c", true, true, vals)
	if ci.Nulls() != 2 || ci.Keys() != 3 {
		t.Fatalf("nulls=%d keys=%d", ci.Nulls(), ci.Keys())
	}
	// Unbounded range gathers every non-NULL row and skips positions 1 and 3.
	wantPos(t, ci.Lookup([]Span{{}}), 0, 2, 4)
	wantPos(t, ci.Lookup([]Span{{Lo: int64(2), LoInc: true}}), 2, 4)
}

func TestDuplicateKeys(t *testing.T) {
	vals := intVals(7, 3, 7, 3, 7)
	ci := mustBuild(t, "c", true, true, vals)
	if ci.Keys() != 2 {
		t.Fatalf("keys=%d, want 2", ci.Keys())
	}
	wantPos(t, ci.Lookup([]Span{Point(int64(7))}), 0, 2, 4)
	// The ordered structure agrees with the hash structure.
	oOnly := mustBuild(t, "c", false, true, vals)
	wantPos(t, oOnly.Lookup([]Span{Point(int64(7))}), 0, 2, 4)
	wantPos(t, oOnly.Lookup([]Span{{Lo: int64(3), Hi: int64(7), LoInc: true, HiInc: false}}), 1, 3)
}

func TestRangeBounds(t *testing.T) {
	ci := mustBuild(t, "c", false, true, intVals(10, 20, 30, 40))
	cases := []struct {
		span Span
		want []int32
	}{
		{Span{Lo: int64(20), Hi: int64(30), LoInc: true, HiInc: true}, []int32{1, 2}},
		{Span{Lo: int64(20), Hi: int64(30), LoInc: false, HiInc: false}, nil},
		{Span{Lo: int64(15), Hi: int64(35), LoInc: true, HiInc: true}, []int32{1, 2}},
		{Span{Hi: int64(20), HiInc: false}, []int32{0}},
		{Span{Lo: int64(30), LoInc: false}, []int32{3}},
		{Span{Lo: int64(100), LoInc: true}, nil},
	}
	for _, c := range cases {
		wantPos(t, ci.Lookup([]Span{c.span}), c.want...)
	}
}

func TestMultiSpanLookupDedupsAndSorts(t *testing.T) {
	ci := mustBuild(t, "c", true, true, intVals(5, 1, 3, 5, 2))
	// Overlapping spans: the point span and the range both match rows 0 and 3.
	spans := []Span{
		Point(int64(5)),
		{Lo: int64(3), Hi: int64(9), LoInc: true, HiInc: true},
		{Lo: int64(9), Hi: int64(1), LoInc: true, HiInc: true}, // empty, skipped
	}
	wantPos(t, ci.Lookup(spans), 0, 2, 3)
	// Disjoint points come back ascending even though span order is reversed.
	wantPos(t, ci.Lookup([]Span{Point(int64(2)), Point(int64(1))}), 1, 4)
}

func TestCanServe(t *testing.T) {
	hOnly := mustBuild(t, "c", true, false, intVals(1, 2))
	oOnly := mustBuild(t, "c", false, true, intVals(1, 2))
	point := []Span{Point(int64(1))}
	rng := []Span{{Lo: int64(1), Hi: int64(2), LoInc: true, HiInc: true}}
	emptySpan := []Span{{Lo: int64(9), Hi: int64(1), LoInc: true, HiInc: true}}
	if !hOnly.CanServe(point) || hOnly.CanServe(rng) {
		t.Fatal("hash-only: point yes, range no")
	}
	if !oOnly.CanServe(point) || !oOnly.CanServe(rng) {
		t.Fatal("ordered-only serves both span shapes")
	}
	if !hOnly.CanServe(emptySpan) {
		t.Fatal("empty spans need no structure")
	}
	// A point span on a hash-less ordered index resolves by binary search.
	wantPos(t, oOnly.Lookup(point), 0)
}

func TestNormKeyCrossType(t *testing.T) {
	// Pure-int column probed with real constants.
	ints := mustBuild(t, "c", true, true, intVals(4, 5, 6))
	wantPos(t, ints.Lookup([]Span{Point(float64(5))}), 1)
	wantPos(t, ints.Lookup([]Span{Point(float64(5.5))}))
	// Mixed int/real column: hash keys normalize to float64 so 5 == 5.0.
	mixed := mustBuild(t, "c", true, true, []value.Value{int64(5), float64(5), float64(2.5)})
	wantPos(t, mixed.Lookup([]Span{Point(int64(5))}), 0, 1)
	wantPos(t, mixed.Lookup([]Span{Point(float64(2.5))}), 2)
	// Non-numeric probe of a float-keyed column passes through untouched.
	wantPos(t, mixed.Lookup([]Span{Point("x")}))
}

func TestExtendIncremental(t *testing.T) {
	base := mustBuild(t, "c", true, true, intVals(1, 2, 3))
	ext, err := base.Extend([]value.Value{int64(2), nil, int64(9)})
	if err != nil {
		t.Fatal(err)
	}
	// The receiver is untouched.
	if base.Len() != 3 || base.Nulls() != 0 {
		t.Fatalf("Extend mutated receiver: len=%d nulls=%d", base.Len(), base.Nulls())
	}
	wantPos(t, base.Lookup([]Span{Point(int64(2))}), 1)
	if ext.Len() != 6 || ext.Nulls() != 1 || ext.Keys() != 4 {
		t.Fatalf("extended: len=%d nulls=%d keys=%d", ext.Len(), ext.Nulls(), ext.Keys())
	}
	wantPos(t, ext.Lookup([]Span{Point(int64(2))}), 1, 3)
	wantPos(t, ext.Lookup([]Span{{Lo: int64(3), LoInc: true}}), 2, 5)
}

func TestExtendRenormalizesIntHashKeys(t *testing.T) {
	// The base is pure-int; the tail introduces a real, so inherited hash keys
	// must be re-normalized to float64 or point lookups would miss old rows.
	base := mustBuild(t, "c", true, true, intVals(5, 7))
	ext, err := base.Extend([]value.Value{float64(5), float64(1.5)})
	if err != nil {
		t.Fatal(err)
	}
	wantPos(t, ext.Lookup([]Span{Point(int64(5))}), 0, 2)
	wantPos(t, ext.Lookup([]Span{Point(float64(5))}), 0, 2)
	wantPos(t, ext.Lookup([]Span{Point(int64(7))}), 1)
	wantPos(t, ext.Lookup([]Span{Point(float64(1.5))}), 3)
}

func TestExtendRefusals(t *testing.T) {
	base := mustBuild(t, "c", true, true, intVals(1))
	if _, err := base.Extend([]value.Value{"x"}); err == nil || !strings.Contains(err.Error(), "mixed-type keys") {
		t.Fatalf("mixed-type tail: %v", err)
	}
	ordBool := mustBuild(t, "c", false, true, intVals(1))
	// Force the bool-family check: an ordered index whose tail is bool-typed
	// is a mixed-type refusal; a fresh bool ordered extend path needs a
	// hash+bool base, which Build already downgraded, so grow one manually.
	if _, err := ordBool.Extend([]value.Value{true}); err == nil {
		t.Fatal("bool tail over int ordered index should refuse")
	}
}

func TestWordBoundarySizes(t *testing.T) {
	for _, n := range []int{63, 64, 65} {
		vals := make([]value.Value, n)
		for i := range vals {
			vals[i] = int64(i)
		}
		ci := mustBuild(t, "c", true, true, vals)
		if ci.Len() != n || int(ci.Keys()) != n {
			t.Fatalf("n=%d: len=%d keys=%d", n, ci.Len(), ci.Keys())
		}
		got := ci.Lookup([]Span{{}})
		if len(got) != n {
			t.Fatalf("n=%d: unbounded span matched %d rows", n, len(got))
		}
		for i, p := range got {
			if p != int32(i) {
				t.Fatalf("n=%d: position %d = %d", n, i, p)
			}
		}
		wantPos(t, ci.Lookup([]Span{Point(int64(n - 1))}), int32(n-1))
	}
}

func TestDateAndStringKeys(t *testing.T) {
	d1, d2, d3 := value.MakeDate(2020, 1, 15), value.MakeDate(2020, 6, 1), value.MakeDate(2021, 3, 9)
	dates := mustBuild(t, "d", true, true, []value.Value{d2, d1, d3})
	wantPos(t, dates.Lookup([]Span{Point(d1)}), 1)
	wantPos(t, dates.Lookup([]Span{{Lo: d1, Hi: d2, LoInc: false, HiInc: true}}), 0)
	strs := mustBuild(t, "s", true, true, []value.Value{"beta", "alpha", "gamma"})
	wantPos(t, strs.Lookup([]Span{{Lo: "alpha", Hi: "beta", LoInc: true, HiInc: true}}), 0, 1)
}

func TestSetNilSafety(t *testing.T) {
	var nilSet *Set
	if nilSet.Column("c") != nil || nilSet.Len() != 0 || nilSet.Names() != nil {
		t.Fatal("nil Set accessors should be no-ops")
	}
	clone := nilSet.Clone()
	if clone == nil || clone.Len() != 0 {
		t.Fatal("Clone of nil Set should be a usable empty set")
	}

	s := NewSet()
	a := mustBuild(t, "a", true, false, intVals(1))
	b := mustBuild(t, "b", false, true, intVals(2))
	s.Put(a)
	s.Put(b)
	if s.Len() != 2 || s.Column("a") != a || s.Column("zzz") != nil {
		t.Fatal("Set Put/Column")
	}
	if names := s.Names(); !reflect.DeepEqual(names, []string{"a", "b"}) {
		t.Fatalf("Names: %v", names)
	}
	c2 := s.Clone()
	replacement := mustBuild(t, "a", true, true, intVals(9))
	c2.Put(replacement)
	if s.Column("a") != a || c2.Column("a") != replacement || c2.Column("b") != b {
		t.Fatal("Clone should share columns but isolate later Puts")
	}
}

func TestCountersRecord(t *testing.T) {
	before := Global()
	RecordRebuild()
	RecordPlanned()
	RecordScan(7)
	RecordFallback()
	after := Global()
	if after.Rebuilt-before.Rebuilt != 1 || after.PlannedScans-before.PlannedScans != 1 ||
		after.Scans-before.Scans != 1 || after.RowsMatched-before.RowsMatched != 7 ||
		after.Fallbacks-before.Fallbacks != 1 {
		t.Fatalf("counter deltas wrong: before=%+v after=%+v", before, after)
	}
}
