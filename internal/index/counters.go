package index

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counters are the process-wide index subsystem counters, served by
// trance.IndexCounters and the tranced /metrics index block.
type Counters struct {
	// Built counts successful index builds (registration-time auto-builds and
	// explicit CreateIndex calls alike).
	Built int64
	// Refused counts refused builds (non-scalar keys, mixed-type columns,
	// range-over-bool); RefusalReasons breaks them down.
	Refused int64
	// Maintained counts incremental Extend merges performed by Append.
	Maintained int64
	// Rebuilt counts full rebuilds performed by Delete.
	Rebuilt int64
	// PlannedScans counts Select→IndexScan conversions made by the planner.
	PlannedScans int64
	// Scans counts IndexScan nodes executed against a bound index.
	Scans int64
	// Fallbacks counts IndexScan nodes executed without a usable bound index
	// (degraded to a full scan plus the span predicate).
	Fallbacks int64
	// RowsMatched totals the rows gathered by executed index scans.
	RowsMatched int64
}

var global struct {
	built, refused, maintained, rebuilt atomic.Int64
	planned, scans, fallbacks, matched  atomic.Int64
}

var refusals struct {
	mu      sync.Mutex
	reasons map[string]int64
}

// Global returns the process-wide counters.
func Global() Counters {
	return Counters{
		Built:        global.built.Load(),
		Refused:      global.refused.Load(),
		Maintained:   global.maintained.Load(),
		Rebuilt:      global.rebuilt.Load(),
		PlannedScans: global.planned.Load(),
		Scans:        global.scans.Load(),
		Fallbacks:    global.fallbacks.Load(),
		RowsMatched:  global.matched.Load(),
	}
}

// RefusalReasons returns a copy of the per-reason refusal counts.
func RefusalReasons() map[string]int64 {
	refusals.mu.Lock()
	defer refusals.mu.Unlock()
	out := make(map[string]int64, len(refusals.reasons))
	for k, v := range refusals.reasons {
		out[k] = v
	}
	return out
}

// refuse counts a build refusal under its reason and returns the error.
func refuse(col, reason string) error {
	global.refused.Add(1)
	refusals.mu.Lock()
	if refusals.reasons == nil {
		refusals.reasons = map[string]int64{}
	}
	refusals.reasons[reason]++
	refusals.mu.Unlock()
	return fmt.Errorf("index: cannot index column %s: %s", col, reason)
}

func recordBuild()    { global.built.Add(1) }
func recordMaintain() { global.maintained.Add(1) }

// RecordRebuild counts a delete-triggered full rebuild.
func RecordRebuild() { global.rebuilt.Add(1) }

// RecordPlanned counts a Select→IndexScan conversion at plan time.
func RecordPlanned() { global.planned.Add(1) }

// RecordScan counts one executed index scan gathering matched rows.
func RecordScan(matched int64) {
	global.scans.Add(1)
	global.matched.Add(matched)
}

// RecordFallback counts an IndexScan executed without a usable bound index.
func RecordFallback() { global.fallbacks.Add(1) }

// Set is a concurrency-safe collection of column indexes for one dataset (or
// one bound input). Column indexes are immutable; the set itself may gain
// columns after creation.
type Set struct {
	mu   sync.RWMutex
	cols map[string]*ColumnIndex
}

// NewSet returns an empty set.
func NewSet() *Set { return &Set{cols: map[string]*ColumnIndex{}} }

// Put installs (or replaces) the index for its column.
func (s *Set) Put(ci *ColumnIndex) {
	s.mu.Lock()
	s.cols[ci.Col] = ci
	s.mu.Unlock()
}

// Column returns the index for the named column, or nil.
func (s *Set) Column(name string) *ColumnIndex {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cols[name]
}

// Names returns the indexed column names, sorted.
func (s *Set) Names() []string {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.cols))
	for n := range s.cols {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of indexed columns.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.cols)
}

// Clone returns a set sharing the (immutable) column indexes, so a catalog
// mutation can derive a successor set without touching snapshots.
func (s *Set) Clone() *Set {
	out := NewSet()
	if s == nil {
		return out
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for n, ci := range s.cols {
		out.cols[n] = ci
	}
	return out
}
