// Package index implements per-dataset secondary indexes over scalar
// columns: a hash index for equality lookups and an ordered index for range
// lookups (int/real/string/date, ordered by value.Compare). Indexes map
// column keys to row positions in the dataset's bound row store; the planner
// (plan.Annotate) converts pushed-down `col op const` conjuncts on indexed
// columns into IndexScan nodes carrying Spans, and the executor resolves the
// spans against the ColumnIndex to gather matching rows without a full scan.
//
// NULL keys are never indexed: a comparison with a NULL operand evaluates to
// false under the engine's σ semantics, so excluding NULL rows from every
// span keeps index scans bit-identical to the filter they replace.
//
// Indexes are immutable after Build/Extend, so snapshots shared with
// in-flight queries stay valid across catalog mutations: an Append derives a
// new index with Extend (incremental merge of the tail), a Delete rebuilds
// over the surviving rows.
package index

import (
	"fmt"
	"sort"
	"strings"

	"github.com/trance-go/trance/internal/value"
)

// Kind selects the access structure of an index.
type Kind int

// Index kinds.
const (
	// Hash serves equality (point) spans in O(1).
	Hash Kind = iota
	// Ordered serves range spans by binary search over sorted keys.
	Ordered
)

func (k Kind) String() string {
	if k == Hash {
		return "hash"
	}
	return "range"
}

// ParseKind maps the serving-layer kind names to build flags. "" and "both"
// request every structure the column supports.
func ParseKind(s string) (hash, ordered bool, err error) {
	switch s {
	case "", "both", "hash+range":
		return true, true, nil
	case "hash":
		return true, false, nil
	case "range", "ordered":
		return false, true, nil
	}
	return false, false, fmt.Errorf("index: unknown kind %q (want hash, range, or both)", s)
}

// Span is a contiguous key interval. A nil bound is unbounded; a span whose
// bounds are equal and both inclusive is a point (equality) span. Spans never
// match NULL keys.
type Span struct {
	Lo, Hi       value.Value
	LoInc, HiInc bool
}

// Point returns the equality span for key v.
func Point(v value.Value) Span { return Span{Lo: v, Hi: v, LoInc: true, HiInc: true} }

// IsPoint reports whether the span matches exactly one key.
func (s Span) IsPoint() bool {
	return s.Lo != nil && s.Hi != nil && s.LoInc && s.HiInc && value.Compare(s.Lo, s.Hi) == 0
}

// Empty reports whether the span can match no key at all.
func (s Span) Empty() bool {
	if s.Lo == nil || s.Hi == nil {
		return false
	}
	c := value.Compare(s.Lo, s.Hi)
	return c > 0 || (c == 0 && !(s.LoInc && s.HiInc))
}

func (s Span) String() string {
	if s.IsPoint() {
		return "[" + value.Format(s.Lo) + "]"
	}
	var b strings.Builder
	if s.Lo == nil {
		b.WriteString("(-∞")
	} else {
		if s.LoInc {
			b.WriteByte('[')
		} else {
			b.WriteByte('(')
		}
		b.WriteString(value.Format(s.Lo))
	}
	b.WriteByte(',')
	if s.Hi == nil {
		b.WriteString("+∞)")
	} else {
		b.WriteString(value.Format(s.Hi))
		if s.HiInc {
			b.WriteByte(']')
		} else {
			b.WriteByte(')')
		}
	}
	return b.String()
}

// FormatSpans renders a span list for Explain.
func FormatSpans(spans []Span) string {
	if len(spans) == 0 {
		return "∅"
	}
	parts := make([]string, len(spans))
	for i, s := range spans {
		parts[i] = s.String()
	}
	return strings.Join(parts, "∪")
}

// keyFamily classifies scalar keys for build validation and hash
// normalization. Numeric int and real share a family because value.Compare
// (and therefore σ equality) treats them as one numeric domain.
type keyFamily int

const (
	famNone keyFamily = iota
	famBool
	famNumeric
	famDate
	famString
)

func familyOf(v value.Value) (keyFamily, string) {
	switch v.(type) {
	case bool:
		return famBool, ""
	case int64, float64:
		return famNumeric, ""
	case value.Date:
		return famDate, ""
	case string:
		return famString, ""
	case value.Label:
		return famNone, "label column"
	case value.Tuple, value.Bag:
		return famNone, "boxed value"
	}
	return famNone, fmt.Sprintf("unsupported key type %T", v)
}

// ColumnIndex is an immutable secondary index over one scalar column. It may
// carry a hash structure, an ordered structure, or both.
type ColumnIndex struct {
	// Col is the indexed column's name.
	Col string

	rows  int   // rows covered, including NULL-key rows
	nulls int64 // NULL-key rows excluded from the index

	hasHash, hasOrdered bool
	hash                map[value.Value][]int32
	floatKeys           bool // hash keys normalized to float64 (mixed int/real column)
	keys                []value.Value
	pos                 [][]int32
	family              keyFamily
}

// Build indexes vals, where vals[i] is the key of row i. It refuses (with a
// counted reason) non-scalar keys, mixed-type columns, and range structures
// over bool keys.
func Build(col string, hash, ordered bool, vals []value.Value) (*ColumnIndex, error) {
	if !hash && !ordered {
		return nil, refuse(col, "no structure requested")
	}
	ci := &ColumnIndex{Col: col, rows: len(vals), hasHash: hash, hasOrdered: ordered}
	if err := ci.classify(vals); err != nil {
		return nil, err
	}
	if ordered && ci.family == famBool {
		if !hash {
			return nil, refuse(col, "range index over bool keys")
		}
		ci.hasOrdered = false
	}
	ci.insert(vals, 0)
	if ci.hasOrdered {
		ci.sortKeys()
	}
	recordBuild()
	return ci, nil
}

// classify validates the key family of every non-NULL value and sets
// float-key normalization for columns containing reals.
func (ci *ColumnIndex) classify(vals []value.Value) error {
	for _, v := range vals {
		if v == nil {
			continue
		}
		fam, reason := familyOf(v)
		if fam == famNone {
			return refuse(ci.Col, reason)
		}
		if ci.family == famNone {
			ci.family = fam
		} else if ci.family != fam {
			return refuse(ci.Col, "mixed-type keys")
		}
		if _, isReal := v.(float64); isReal {
			ci.floatKeys = true
		}
	}
	return nil
}

// normKey maps a key to its hash-map representative: float64 for numeric
// columns containing reals (value.Compare equates 5 and 5.0; the map must
// too), raw otherwise. ok=false means the key cannot occur in this column.
func (ci *ColumnIndex) normKey(v value.Value) (value.Value, bool) {
	if ci.floatKeys {
		switch n := v.(type) {
		case int64:
			return float64(n), true
		case float64:
			return n, true
		}
		return v, true
	}
	if n, isReal := v.(float64); isReal && ci.family == famNumeric {
		// Pure-int column probed with a real constant: integral reals map to
		// their int key, fractional reals match nothing.
		if n == float64(int64(n)) {
			return int64(n), true
		}
		return nil, false
	}
	return v, true
}

func (ci *ColumnIndex) insert(vals []value.Value, base int32) {
	if ci.hasHash && ci.hash == nil {
		ci.hash = make(map[value.Value][]int32, len(vals))
	}
	for i, v := range vals {
		if v == nil {
			ci.nulls++
			continue
		}
		p := base + int32(i)
		if ci.hasHash {
			k, _ := ci.normKey(v)
			ci.hash[k] = append(ci.hash[k], p)
		}
		if ci.hasOrdered {
			ci.keys = append(ci.keys, v)
			ci.pos = append(ci.pos, []int32{p})
		}
	}
}

// sortKeys sorts the (key, positions) pairs and merges duplicate keys so the
// ordered structure holds distinct sorted keys with ascending position lists.
func (ci *ColumnIndex) sortKeys() {
	type kp struct {
		k value.Value
		p []int32
	}
	pairs := make([]kp, len(ci.keys))
	for i := range ci.keys {
		pairs[i] = kp{ci.keys[i], ci.pos[i]}
	}
	sort.SliceStable(pairs, func(i, j int) bool { return value.Compare(pairs[i].k, pairs[j].k) < 0 })
	ci.keys = ci.keys[:0]
	ci.pos = ci.pos[:0]
	for _, e := range pairs {
		n := len(ci.keys)
		if n > 0 && value.Compare(ci.keys[n-1], e.k) == 0 {
			ci.pos[n-1] = append(ci.pos[n-1], e.p...)
			continue
		}
		ci.keys = append(ci.keys, e.k)
		ci.pos = append(ci.pos, e.p)
	}
	for _, p := range ci.pos {
		sort.Slice(p, func(i, j int) bool { return p[i] < p[j] })
	}
}

// Extend derives a new index covering the old rows plus tail (the incremental
// maintenance path of Catalog.Append). The receiver is not modified.
func (ci *ColumnIndex) Extend(tail []value.Value) (*ColumnIndex, error) {
	out := &ColumnIndex{
		Col: ci.Col, rows: ci.rows, nulls: ci.nulls,
		hasHash: ci.hasHash, hasOrdered: ci.hasOrdered,
		floatKeys: ci.floatKeys, family: ci.family,
	}
	if err := out.classify(tail); err != nil {
		return nil, err
	}
	if out.hasOrdered && out.family == famBool {
		return nil, refuse(ci.Col, "range index over bool keys")
	}
	if out.floatKeys && !ci.floatKeys && ci.hasHash {
		// The tail introduced reals into an int-keyed column: re-normalize the
		// inherited hash keys.
		out.hash = make(map[value.Value][]int32, len(ci.hash))
		for k, p := range ci.hash {
			nk, _ := out.normKey(k)
			out.hash[nk] = append(out.hash[nk], p...)
		}
		for _, p := range out.hash {
			sort.Slice(p, func(i, j int) bool { return p[i] < p[j] })
		}
	} else if ci.hasHash {
		out.hash = make(map[value.Value][]int32, len(ci.hash))
		for k, p := range ci.hash {
			out.hash[k] = append([]int32{}, p...)
		}
	}
	if ci.hasOrdered {
		out.keys = append([]value.Value{}, ci.keys...)
		out.pos = make([][]int32, len(ci.pos))
		for i, p := range ci.pos {
			out.pos[i] = append([]int32{}, p...)
		}
	}
	out.rows = ci.rows
	out.nulls = ci.nulls
	out.insert(tail, int32(ci.rows))
	out.rows = ci.rows + len(tail)
	if out.hasOrdered {
		out.sortKeys()
	}
	recordMaintain()
	return out, nil
}

// Len returns the number of rows the index covers (NULL-key rows included).
func (ci *ColumnIndex) Len() int { return ci.rows }

// Nulls returns the number of NULL-key rows excluded from every span.
func (ci *ColumnIndex) Nulls() int64 { return ci.nulls }

// Keys returns the number of distinct non-NULL keys.
func (ci *ColumnIndex) Keys() int64 {
	if ci.hasHash {
		return int64(len(ci.hash))
	}
	return int64(len(ci.keys))
}

// HasHash reports whether the hash structure was built.
func (ci *ColumnIndex) HasHash() bool { return ci.hasHash }

// HasOrdered reports whether the ordered structure was built.
func (ci *ColumnIndex) HasOrdered() bool { return ci.hasOrdered }

// KindString renders the built structures for the serving layer.
func (ci *ColumnIndex) KindString() string {
	switch {
	case ci.hasHash && ci.hasOrdered:
		return "hash+range"
	case ci.hasHash:
		return "hash"
	default:
		return "range"
	}
}

// CanServe reports whether the index can resolve every span: point spans need
// either structure, true ranges need the ordered one.
func (ci *ColumnIndex) CanServe(spans []Span) bool {
	for _, s := range spans {
		if s.Empty() {
			continue
		}
		if s.IsPoint() {
			if !ci.hasHash && !ci.hasOrdered {
				return false
			}
			continue
		}
		if !ci.hasOrdered {
			return false
		}
	}
	return true
}

// Lookup resolves spans to the ascending, deduplicated row positions whose
// keys fall in any span. NULL-key rows never match.
func (ci *ColumnIndex) Lookup(spans []Span) []int32 {
	var out []int32
	for _, s := range spans {
		if s.Empty() {
			continue
		}
		if s.IsPoint() && ci.hasHash {
			if k, ok := ci.normKey(s.Lo); ok {
				out = append(out, ci.hash[k]...)
			}
			continue
		}
		out = append(out, ci.rangeLookup(s)...)
	}
	if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i] < out[j] }) {
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	}
	if len(spans) > 1 {
		out = dedupPos(out)
	}
	return out
}

func (ci *ColumnIndex) rangeLookup(s Span) []int32 {
	lo := 0
	if s.Lo != nil {
		lo = sort.Search(len(ci.keys), func(i int) bool {
			c := value.Compare(ci.keys[i], s.Lo)
			if s.LoInc {
				return c >= 0
			}
			return c > 0
		})
	}
	hi := len(ci.keys)
	if s.Hi != nil {
		hi = sort.Search(len(ci.keys), func(i int) bool {
			c := value.Compare(ci.keys[i], s.Hi)
			if s.HiInc {
				return c > 0
			}
			return c >= 0
		})
	}
	var out []int32
	for i := lo; i < hi; i++ {
		out = append(out, ci.pos[i]...)
	}
	return out
}

func dedupPos(p []int32) []int32 {
	if len(p) < 2 {
		return p
	}
	w := 1
	for i := 1; i < len(p); i++ {
		if p[i] != p[w-1] {
			p[w] = p[i]
			w++
		}
	}
	return p[:w]
}
