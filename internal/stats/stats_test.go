package stats

import (
	"fmt"
	"math"
	"testing"

	"github.com/trance-go/trance/internal/dataflow"
	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/skew"
	"github.com/trance-go/trance/internal/value"
)

// mkBag builds a one-int-column bag from a value sequence.
func mkBag(vals []int64) (value.Bag, nrc.BagType) {
	b := make(value.Bag, len(vals))
	for i, v := range vals {
		b[i] = value.Tuple{v}
	}
	return b, nrc.BagOf(nrc.Tup("k", nrc.IntT))
}

// seq is a deterministic pseudo-random sequence (splitmix-style), so the
// tests draw the same synthetic columns on every run.
func seq(n int, mod int64, seed uint64) []int64 {
	out := make([]int64, n)
	s := seed
	for i := range out {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		out[i] = int64(z % uint64(mod))
	}
	return out
}

func TestCollectExactSmallColumn(t *testing.T) {
	b, bt := mkBag([]int64{5, 1, 3, 1, 5, 9})
	tab := Collect(b, bt, Options{})
	if tab.Rows != 6 {
		t.Fatalf("rows = %d, want 6", tab.Rows)
	}
	c, ok := tab.Column("k")
	if !ok {
		t.Fatal("column k missing")
	}
	if !c.Exact || c.NDV != 4 {
		t.Fatalf("NDV = %d (exact=%t), want exact 4", c.NDV, c.Exact)
	}
	if c.Min != int64(1) || c.Max != int64(9) {
		t.Fatalf("min/max = %v/%v, want 1/9", c.Min, c.Max)
	}
	if c.Nulls != 0 {
		t.Fatalf("nulls = %d, want 0", c.Nulls)
	}
}

func TestCollectCountsNulls(t *testing.T) {
	b := value.Bag{value.Tuple{int64(1)}, value.Tuple{nil}, value.Tuple{nil}, value.Tuple{int64(7)}}
	tab := Collect(b, nrc.BagOf(nrc.Tup("k", nrc.IntT)), Options{})
	c, _ := tab.Column("k")
	if c.Nulls != 2 {
		t.Fatalf("nulls = %d, want 2", c.Nulls)
	}
	if c.NDV != 2 || c.Min != int64(1) || c.Max != int64(7) {
		t.Fatalf("NDV/min/max = %d/%v/%v, want 2/1/7", c.NDV, c.Min, c.Max)
	}
}

// TestKMVEstimateWithinBound draws columns with known distinct counts well
// above the sketch size and checks the KMV estimate lands within the
// documented error bound: standard error ≈ 1/√(k−2), so 5σ ≈ 16% at k=1024.
// The sequences are deterministic, so this is a fixed regression check, not a
// flaky statistical one.
func TestKMVEstimateWithinBound(t *testing.T) {
	for _, tc := range []struct {
		n    int
		mod  int64
		seed uint64
	}{
		{n: 40000, mod: 20000, seed: 1},
		{n: 60000, mod: 50000, seed: 2},
		{n: 30000, mod: 5000, seed: 3},
	} {
		t.Run(fmt.Sprintf("n=%d mod=%d", tc.n, tc.mod), func(t *testing.T) {
			vals := seq(tc.n, tc.mod, tc.seed)
			truth := map[int64]bool{}
			for _, v := range vals {
				truth[v] = true
			}
			b, bt := mkBag(vals)
			tab := Collect(b, bt, Options{})
			c, _ := tab.Column("k")
			if c.Exact {
				t.Fatalf("NDV reported exact with %d distinct values (k=%d)", len(truth), DefaultSketchSize)
			}
			relErr := math.Abs(float64(c.NDV)-float64(len(truth))) / float64(len(truth))
			bound := 5 / math.Sqrt(float64(DefaultSketchSize-2))
			if relErr > bound {
				t.Fatalf("NDV = %d, true %d: relative error %.3f exceeds bound %.3f", c.NDV, len(truth), relErr, bound)
			}
		})
	}
}

func TestKMVExactBelowSketchSize(t *testing.T) {
	vals := seq(5000, 800, 4) // 800 < DefaultSketchSize distinct values
	truth := map[int64]bool{}
	for _, v := range vals {
		truth[v] = true
	}
	b, bt := mkBag(vals)
	tab := Collect(b, bt, Options{})
	c, _ := tab.Column("k")
	if !c.Exact || c.NDV != int64(len(truth)) {
		t.Fatalf("NDV = %d (exact=%t), want exact %d", c.NDV, c.Exact, len(truth))
	}
}

// TestHeavyKeysAgreeWithDetector checks Collect's heavy-key histogram flags
// exactly the keys skew.Detector.HeavyKeys flags on the same data with the
// same options — the property keeping the cost model and the skew-aware
// executor in agreement about what "heavy" means.
func TestHeavyKeysAgreeWithDetector(t *testing.T) {
	// ~60% of rows share key 0; the rest spread over 997 keys.
	n := 4000
	vals := make([]int64, n)
	rest := seq(n, 997, 7)
	for i := range vals {
		if i%5 < 3 {
			vals[i] = 0
		} else {
			vals[i] = 1 + rest[i]
		}
	}
	b, bt := mkBag(vals)
	opts := Options{Parallelism: 8}.withDefaults()
	tab := Collect(b, bt, opts)
	c, _ := tab.Column("k")

	// Reference: the detector over the same partitioning shape.
	ctx := dataflow.NewContext(opts.Parallelism)
	rows := make([]dataflow.Row, len(b))
	for i, e := range b {
		rows[i] = dataflow.Row(e.(value.Tuple))
	}
	det := skew.Detector{Threshold: opts.Threshold, SampleSize: opts.SampleSize}
	want := det.HeavyKeys(ctx.FromRows(rows), []int{0})

	if len(want) == 0 {
		t.Fatal("detector flagged no heavy keys on the skewed data")
	}
	if len(c.Heavy) != len(want) {
		t.Fatalf("histogram has %d heavy keys, detector flagged %d", len(c.Heavy), len(want))
	}
	for _, hk := range c.Heavy {
		if !want[value.KeyCols(dataflow.Row{parseIntKey(t, hk.Value)}, []int{0})] {
			t.Fatalf("histogram key %q not flagged by detector", hk.Value)
		}
	}
	// The hot key carries ~60% of rows; its exact count must be exact.
	if c.Heavy[0].Value != "0" || c.Heavy[0].Count != int64(3*n/5) {
		t.Fatalf("top heavy key = %q count %d, want \"0\" count %d", c.Heavy[0].Value, c.Heavy[0].Count, 3*n/5)
	}
	if c.HeavyFraction < 0.55 || c.HeavyFraction > 0.7 {
		t.Fatalf("heavy fraction = %.3f, want ≈0.6", c.HeavyFraction)
	}
}

func parseIntKey(t *testing.T, s string) int64 {
	t.Helper()
	var v int64
	if _, err := fmt.Sscanf(s, "%d", &v); err != nil {
		t.Fatalf("heavy key %q is not an int", s)
	}
	return v
}

func TestUniformColumnHasNoHeavyKeys(t *testing.T) {
	b, bt := mkBag(seq(4000, 3989, 11))
	tab := Collect(b, bt, Options{})
	c, _ := tab.Column("k")
	if c.HeavyFraction != 0 || len(c.Heavy) != 0 {
		t.Fatalf("uniform column flagged heavy keys: fraction %.3f, %d keys", c.HeavyFraction, len(c.Heavy))
	}
}

func TestCollectScalarElem(t *testing.T) {
	b := value.Bag{int64(3), int64(1), int64(3)}
	tab := Collect(b, nrc.BagOf(nrc.IntT), Options{})
	c, ok := tab.Column("_value")
	if !ok {
		t.Fatal("_value column missing")
	}
	if c.NDV != 2 || c.Min != int64(1) || c.Max != int64(3) {
		t.Fatalf("NDV/min/max = %d/%v/%v, want 2/1/3", c.NDV, c.Min, c.Max)
	}
}

func TestCollectSkipsNestedFields(t *testing.T) {
	et := nrc.Tup("k", nrc.IntT, "items", nrc.BagOf(nrc.Tup("v", nrc.IntT)))
	b := value.Bag{value.Tuple{int64(1), value.Bag{value.Tuple{int64(2)}}}}
	tab := Collect(b, nrc.BagOf(et), Options{})
	if len(tab.Columns) != 1 || tab.Columns[0].Name != "k" {
		t.Fatalf("columns = %+v, want only k", tab.Columns)
	}
}

func TestEstimateConversion(t *testing.T) {
	b, bt := mkBag([]int64{1, 2, 2})
	tab := Collect(b, bt, Options{})
	tab.Generation = 42
	te := tab.Estimate()
	if te.Generation != 42 || te.Rows != 3 {
		t.Fatalf("estimate gen/rows = %d/%d, want 42/3", te.Generation, te.Rows)
	}
	ce, ok := te.Cols["k"]
	if !ok || ce.NDV != 2 || ce.Min != int64(1) || ce.Max != int64(2) {
		t.Fatalf("col estimate = %+v, want NDV 2 min 1 max 2", ce)
	}
}

func TestCollectDeterministic(t *testing.T) {
	b, bt := mkBag(seq(3000, 50, 5))
	a := Collect(b, bt, Options{})
	c := Collect(b, bt, Options{})
	ca, _ := a.Column("k")
	cb, _ := c.Column("k")
	if ca.NDV != cb.NDV || ca.HeavyFraction != cb.HeavyFraction || len(ca.Heavy) != len(cb.Heavy) {
		t.Fatalf("collection not deterministic: %+v vs %+v", ca, cb)
	}
}
