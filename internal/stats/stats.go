// Package stats collects per-dataset statistics for the cost-based planning
// layer: row/byte counts, per-scalar-column NDV estimates (exact below the
// sketch size, KMV-estimated above it), min/max bounds, NULL counts, and
// heavy-key histograms computed with the same sampling detector the
// skew-aware operators use (internal/skew), so the cost model and the
// executor agree on what "heavy" means. Collection is deterministic: the KMV
// sketch hashes values with the engine's canonical encoding, and the heavy-key
// sampler runs on a context with the default fixed sample seed. See
// docs/COSTMODEL.md for the estimation formulas and error bounds.
package stats

import (
	"container/heap"
	"math"
	"sort"

	"github.com/trance-go/trance/internal/dataflow"
	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/plan"
	"github.com/trance-go/trance/internal/skew"
	"github.com/trance-go/trance/internal/value"
)

// DefaultSketchSize is the KMV sketch size k: NDV estimates above k distinct
// values have standard error ≈ 1/√(k−2) (about 3% at 1024).
const DefaultSketchSize = 1024

// Options configures collection. Zero values select the defaults.
type Options struct {
	// Parallelism is the partition count the heavy-key sampler sees (the
	// per-partition threshold semantics of skew.Detector depend on it).
	// 0 = 8, matching runner.DefaultConfig.
	Parallelism int
	// SampleSize and Threshold configure the skew detector; zero values use
	// the paper's defaults (400 samples, 2.5%).
	SampleSize int
	Threshold  float64
	// SketchSize is the KMV sketch bound k; 0 = DefaultSketchSize.
	SketchSize int
}

func (o Options) withDefaults() Options {
	if o.Parallelism <= 0 {
		o.Parallelism = 8
	}
	if o.SampleSize <= 0 {
		o.SampleSize = skew.DefaultSampleSize
	}
	if o.Threshold <= 0 {
		o.Threshold = skew.DefaultThreshold
	}
	if o.SketchSize <= 0 {
		o.SketchSize = DefaultSketchSize
	}
	return o
}

// HeavyKey is one heavy-key histogram bucket: a key the sampling detector
// flagged, with its exact frequency over the full data.
type HeavyKey struct {
	// Value is the key rendered with value.Format.
	Value string
	// Count is the exact number of rows carrying the key.
	Count int64
	// Fraction is Count over the table's row count.
	Fraction float64
}

// Column is the collected statistics of one top-level scalar column.
type Column struct {
	Name string
	Type nrc.Type
	// NDV is the estimated number of distinct non-NULL values; Exact reports
	// whether it is an exact count (distinct count stayed under the sketch
	// size) or a KMV estimate.
	NDV   int64
	Exact bool
	// Min and Max bound the non-NULL values (value.Compare order); nil when
	// the column is all-NULL.
	Min, Max value.Value
	// Nulls counts NULL entries.
	Nulls int64
	// Heavy is the heavy-key histogram (keys the skew detector flags), by
	// descending frequency. HeavyFraction is the total fraction of rows they
	// carry — the signal the Auto strategy thresholds on.
	Heavy         []HeavyKey
	HeavyFraction float64
}

// Table is the collected statistics of one dataset.
type Table struct {
	Rows  int64
	Bytes int64
	// Columns covers the top-level scalar columns, in schema order. Nested
	// (bag- or tuple-typed) fields carry no statistics.
	Columns []Column
	// Generation stamps the catalog registration the statistics describe;
	// 0 outside a catalog (see Catalog.Analyze).
	Generation int64
}

// Column returns the named column's statistics.
func (t *Table) Column(name string) (Column, bool) {
	for _, c := range t.Columns {
		if c.Name == name {
			return c, true
		}
	}
	return Column{}, false
}

// Auto-index thresholds: a column is worth a registration-time secondary
// index when the dataset is big enough for index probes to beat a scan and
// the column is selective enough for equality/range predicates to keep only a
// small fraction of rows (see docs/INDEXES.md).
const (
	// MinIndexRows is the smallest dataset auto-indexing considers; below it a
	// full scan is effectively free.
	MinIndexRows = 128
	// MinIndexNDV is the smallest distinct-value count auto-indexing
	// considers; below it an equality predicate keeps too large a fraction of
	// the rows for an index probe to pay off.
	MinIndexNDV = 50
)

// SelectiveColumns lists the scalar columns the auto-index policy flags:
// those of a dataset with at least MinIndexRows rows whose NDV estimate is at
// least MinIndexNDV. Catalog registration builds secondary indexes for
// exactly these (see trance.Catalog).
func (t *Table) SelectiveColumns() []string {
	if t.Rows < MinIndexRows {
		return nil
	}
	var out []string
	for _, c := range t.Columns {
		if c.NDV >= MinIndexNDV {
			out = append(out, c.Name)
		}
	}
	return out
}

// MaxHeavyFraction returns the largest per-column heavy-key fraction — the
// table-level skew signal.
func (t *Table) MaxHeavyFraction() float64 {
	f := 0.0
	for _, c := range t.Columns {
		if c.HeavyFraction > f {
			f = c.HeavyFraction
		}
	}
	return f
}

// Estimate converts the collected statistics into the cost model's form.
func (t *Table) Estimate() plan.TableEstimate {
	te := plan.TableEstimate{Generation: t.Generation, Rows: t.Rows, Bytes: t.Bytes, Cols: map[string]plan.ColEstimate{}}
	for _, c := range t.Columns {
		te.Cols[c.Name] = plan.ColEstimate{NDV: c.NDV, Min: c.Min, Max: c.Max, HeavyFraction: c.HeavyFraction}
	}
	return te
}

// Collect computes the statistics of a bag under its declared type. The bag
// is read-only; collection never mutates it. Rows whose element type is a
// tuple contribute per-field statistics for scalar fields; a scalar element
// type is treated as a single column named "_value".
func Collect(b value.Bag, t nrc.BagType, opts Options) *Table {
	opts = opts.withDefaults()
	fields := scalarFields(t)
	tab := &Table{Rows: int64(len(b)), Bytes: value.Size(b)}
	if len(fields) == 0 || len(b) == 0 {
		for _, f := range fields {
			tab.Columns = append(tab.Columns, Column{Name: f.name, Type: f.typ})
		}
		return tab
	}

	// Heavy keys per column, via the same detector the skew-aware operators
	// use, over the same partitioning shape.
	ctx := dataflow.NewContext(opts.Parallelism)
	rows := make([]dataflow.Row, len(b))
	for i, e := range b {
		if tp, ok := e.(value.Tuple); ok {
			rows[i] = dataflow.Row(tp)
		} else {
			rows[i] = dataflow.Row{e}
		}
	}
	d := ctx.FromRows(rows)
	det := skew.Detector{Threshold: opts.Threshold, SampleSize: opts.SampleSize}
	heavy := make([]map[string]bool, len(fields))
	for i, f := range fields {
		heavy[i] = det.HeavyKeys(d, []int{f.idx})
	}

	cols := make([]colAcc, len(fields))
	for i := range cols {
		cols[i] = colAcc{sketch: newKMV(opts.SketchSize), heavyCounts: map[string]heavyCount{}}
	}
	for _, r := range rows {
		for i, f := range fields {
			v := r[f.idx]
			ca := &cols[i]
			if v == nil {
				ca.nulls++
				continue
			}
			if ca.min == nil || value.Compare(v, ca.min) < 0 {
				ca.min = v
			}
			if ca.max == nil || value.Compare(v, ca.max) > 0 {
				ca.max = v
			}
			ca.sketch.add(value.Hash64(v))
			if len(heavy[i]) > 0 {
				if k := value.KeyCols(r, []int{f.idx}); heavy[i][k] {
					hc := ca.heavyCounts[k]
					hc.count++
					if hc.count == 1 {
						hc.rendered = value.Format(v)
					}
					ca.heavyCounts[k] = hc
				}
			}
			cols[i] = *ca
		}
	}

	for i, f := range fields {
		ca := cols[i]
		ndv, exact := ca.sketch.estimate()
		col := Column{Name: f.name, Type: f.typ, NDV: ndv, Exact: exact, Min: ca.min, Max: ca.max, Nulls: ca.nulls}
		var heavyRows int64
		for _, hc := range ca.heavyCounts {
			col.Heavy = append(col.Heavy, HeavyKey{Value: hc.rendered, Count: hc.count, Fraction: float64(hc.count) / float64(tab.Rows)})
			heavyRows += hc.count
		}
		sort.Slice(col.Heavy, func(a, b int) bool {
			if col.Heavy[a].Count != col.Heavy[b].Count {
				return col.Heavy[a].Count > col.Heavy[b].Count
			}
			return col.Heavy[a].Value < col.Heavy[b].Value
		})
		col.HeavyFraction = float64(heavyRows) / float64(tab.Rows)
		tab.Columns = append(tab.Columns, col)
	}
	return tab
}

type heavyCount struct {
	rendered string
	count    int64
}

type colAcc struct {
	min, max    value.Value
	nulls       int64
	sketch      *kmv
	heavyCounts map[string]heavyCount
}

type scalarField struct {
	name string
	typ  nrc.Type
	idx  int
}

// scalarFields lists the top-level scalar columns of the element type.
func scalarFields(t nrc.BagType) []scalarField {
	tt, ok := t.Elem.(nrc.TupleType)
	if !ok {
		if _, scalar := t.Elem.(nrc.ScalarType); scalar {
			return []scalarField{{name: "_value", typ: t.Elem, idx: 0}}
		}
		return nil
	}
	var out []scalarField
	for i, f := range tt.Fields {
		if _, scalar := f.Type.(nrc.ScalarType); scalar {
			out = append(out, scalarField{name: f.Name, typ: f.Type, idx: i})
		}
	}
	return out
}

// kmv is a k-minimum-values distinct-count sketch: it retains the k smallest
// distinct 64-bit hashes seen. While fewer than k distinct hashes exist the
// count is exact; beyond that NDV ≈ (k−1) · 2⁶⁴ / kth-smallest-hash, with
// standard error ≈ 1/√(k−2).
type kmv struct {
	k  int
	in map[uint64]struct{}
	h  hashHeap // max-heap of the retained hashes
}

func newKMV(k int) *kmv { return &kmv{k: k, in: map[uint64]struct{}{}} }

// mix64 is a bijective finalizer (splitmix64's) applied over the engine's
// FNV-1a value hash: KMV needs the kth-smallest hash to behave like a uniform
// order statistic, and raw FNV over short structured key encodings is not
// uniform enough near the extremes.
func mix64(h uint64) uint64 {
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

func (s *kmv) add(raw uint64) {
	h := mix64(raw)
	if _, dup := s.in[h]; dup {
		return
	}
	if len(s.h) < s.k {
		s.in[h] = struct{}{}
		heap.Push(&s.h, h)
		return
	}
	if h >= s.h[0] {
		return
	}
	delete(s.in, s.h[0])
	s.in[h] = struct{}{}
	s.h[0] = h
	heap.Fix(&s.h, 0)
}

func (s *kmv) estimate() (ndv int64, exact bool) {
	n := len(s.h)
	if n == 0 {
		return 0, true
	}
	if n < s.k {
		return int64(n), true
	}
	kth := float64(s.h[0]) // largest retained = kth smallest overall
	if kth == 0 {
		return int64(n), false
	}
	est := float64(s.k-1) * math.Ldexp(1, 64) / kth
	return int64(est + 0.5), false
}

type hashHeap []uint64

func (h hashHeap) Len() int           { return len(h) }
func (h hashHeap) Less(i, j int) bool { return h[i] > h[j] } // max-heap
func (h hashHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *hashHeap) Push(x any)        { *h = append(*h, x.(uint64)) }
func (h *hashHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }
