package parse

import (
	"fmt"
	"strconv"
	"strings"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tInt
	tReal
	tString

	// Keywords.
	tFor
	tIn
	tUnion
	tIf
	tThen
	tElse
	tLet
	tGet
	tDedup
	tGroupBy
	tSumBy
	tAs
	tTrue
	tFalse
	tDate
	tEmpty

	// Punctuation and operators.
	tLParen
	tRParen
	tLBrace
	tRBrace
	tLBrack
	tRBrack
	tComma
	tSemi
	tColon
	tDot
	tAssign // :=
	tEq     // ==
	tNe     // !=
	tLt
	tLe
	tGt
	tGe
	tPlus
	tMinus
	tStar
	tSlash
	tAndAnd
	tOrOr
	tBang
)

var keywordKinds = map[string]tokKind{
	"for": tFor, "in": tIn, "union": tUnion, "if": tIf, "then": tThen,
	"else": tElse, "let": tLet, "get": tGet, "dedup": tDedup,
	"groupby": tGroupBy, "sumby": tSumBy, "as": tAs, "true": tTrue,
	"false": tFalse, "date": tDate, "empty": tEmpty,
}

// describe renders a token kind for error messages.
func (k tokKind) String() string {
	switch k {
	case tEOF:
		return "end of input"
	case tIdent:
		return "identifier"
	case tInt:
		return "integer literal"
	case tReal:
		return "real literal"
	case tString:
		return "string literal"
	}
	for name, kk := range keywordKinds {
		if kk == k {
			return "'" + name + "'"
		}
	}
	punct := map[tokKind]string{
		tLParen: "(", tRParen: ")", tLBrace: "{", tRBrace: "}",
		tLBrack: "[", tRBrack: "]", tComma: ",", tSemi: ";", tColon: ":",
		tDot: ".", tAssign: ":=", tEq: "==", tNe: "!=", tLt: "<", tLe: "<=",
		tGt: ">", tGe: ">=", tPlus: "+", tMinus: "-", tStar: "*",
		tSlash: "/", tAndAnd: "&&", tOrOr: "||", tBang: "!",
	}
	if s, ok := punct[k]; ok {
		return "'" + s + "'"
	}
	return "token"
}

// token is one lexeme. Text holds the decoded payload for identifiers
// (backquotes stripped), strings (escapes resolved), and number literals
// (raw digits).
type token struct {
	Kind tokKind
	Text string
	Pos  Pos
}

// lexer scans src into tokens, tracking line/column positions.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func lex(src string) ([]token, *Error) {
	lx := &lexer{src: src, line: 1, col: 1}
	var toks []token
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == tEOF {
			return toks, nil
		}
	}
}

func (lx *lexer) pos() Pos { return Pos{Offset: lx.off, Line: lx.line, Col: lx.col} }

func (lx *lexer) errf(p Pos, format string, args ...any) *Error {
	return &Error{Pos: p, Msg: fmt.Sprintf(format, args...), src: lx.src}
}

// advance consumes n bytes (which must not span a newline except singly).
func (lx *lexer) advance(n int) {
	for i := 0; i < n; i++ {
		if lx.src[lx.off] == '\n' {
			lx.line++
			lx.col = 1
		} else {
			lx.col++
		}
		lx.off++
	}
}

func (lx *lexer) peekAt(i int) byte {
	if lx.off+i >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+i]
}

func (lx *lexer) skipSpaceAndComments() {
	for lx.off < len(lx.src) {
		c := lx.src[lx.off]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance(1)
		case c == '-' && lx.peekAt(1) == '-', c == '/' && lx.peekAt(1) == '/':
			for lx.off < len(lx.src) && lx.src[lx.off] != '\n' {
				lx.advance(1)
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (lx *lexer) next() (token, *Error) {
	lx.skipSpaceAndComments()
	p := lx.pos()
	if lx.off >= len(lx.src) {
		return token{Kind: tEOF, Pos: p}, nil
	}
	c := lx.src[lx.off]

	switch {
	case isIdentStart(c):
		start := lx.off
		for lx.off < len(lx.src) && isIdentPart(lx.src[lx.off]) {
			lx.advance(1)
		}
		word := lx.src[start:lx.off]
		if k, ok := keywordKinds[word]; ok {
			return token{Kind: k, Text: word, Pos: p}, nil
		}
		return token{Kind: tIdent, Text: word, Pos: p}, nil

	case c == '`':
		// Backquoted identifier: any characters, with a doubled backquote
		// standing for a literal one (so every name round-trips through
		// nrc.QuoteIdent). Newlines are allowed — names are arbitrary.
		lx.advance(1)
		var name strings.Builder
		for {
			if lx.off >= len(lx.src) {
				return token{}, lx.errf(p, "unterminated backquoted identifier")
			}
			if lx.src[lx.off] == '`' {
				if lx.peekAt(1) == '`' {
					name.WriteByte('`')
					lx.advance(2)
					continue
				}
				lx.advance(1)
				break
			}
			name.WriteByte(lx.src[lx.off])
			lx.advance(1)
		}
		if name.Len() == 0 {
			return token{}, lx.errf(p, "empty backquoted identifier")
		}
		return token{Kind: tIdent, Text: name.String(), Pos: p}, nil

	case isDigit(c):
		return lx.number(p)

	case c == '"':
		return lx.stringLit(p)
	}

	two := ""
	if lx.off+1 < len(lx.src) {
		two = lx.src[lx.off : lx.off+2]
	}
	switch two {
	case ":=":
		lx.advance(2)
		return token{Kind: tAssign, Text: two, Pos: p}, nil
	case "==":
		lx.advance(2)
		return token{Kind: tEq, Text: two, Pos: p}, nil
	case "!=":
		lx.advance(2)
		return token{Kind: tNe, Text: two, Pos: p}, nil
	case "<=":
		lx.advance(2)
		return token{Kind: tLe, Text: two, Pos: p}, nil
	case ">=":
		lx.advance(2)
		return token{Kind: tGe, Text: two, Pos: p}, nil
	case "&&":
		lx.advance(2)
		return token{Kind: tAndAnd, Text: two, Pos: p}, nil
	case "||":
		lx.advance(2)
		return token{Kind: tOrOr, Text: two, Pos: p}, nil
	}

	one := map[byte]tokKind{
		'(': tLParen, ')': tRParen, '{': tLBrace, '}': tRBrace,
		'[': tLBrack, ']': tRBrack, ',': tComma, ';': tSemi, ':': tColon,
		'.': tDot, '<': tLt, '>': tGt, '+': tPlus, '-': tMinus,
		'*': tStar, '/': tSlash, '!': tBang,
	}
	if k, ok := one[c]; ok {
		lx.advance(1)
		return token{Kind: k, Text: string(c), Pos: p}, nil
	}
	if c == '&' || c == '|' || c == '=' {
		return token{}, lx.errf(p, "unexpected %q (did you mean %q?)", string(c), strings.Repeat(string(c), 2))
	}
	return token{}, lx.errf(p, "unexpected character %q", string(c))
}

// number scans an int or real literal: digits, optional fraction, optional
// exponent. The raw text is kept; the parser converts it (so a leading '-'
// can be folded in for MinInt64).
func (lx *lexer) number(p Pos) (token, *Error) {
	start := lx.off
	for lx.off < len(lx.src) && isDigit(lx.src[lx.off]) {
		lx.advance(1)
	}
	isReal := false
	// A '.' starts a fraction only when followed by a digit, so `123.f`
	// lexes as a projection on an int literal.
	if lx.peekAt(0) == '.' && isDigit(lx.peekAt(1)) {
		isReal = true
		lx.advance(1)
		for lx.off < len(lx.src) && isDigit(lx.src[lx.off]) {
			lx.advance(1)
		}
	}
	if e := lx.peekAt(0); e == 'e' || e == 'E' {
		j := 1
		if s := lx.peekAt(1); s == '+' || s == '-' {
			j = 2
		}
		if isDigit(lx.peekAt(j)) {
			isReal = true
			lx.advance(j)
			for lx.off < len(lx.src) && isDigit(lx.src[lx.off]) {
				lx.advance(1)
			}
		}
	}
	text := lx.src[start:lx.off]
	if isReal {
		if _, err := strconv.ParseFloat(text, 64); err != nil {
			return token{}, lx.errf(p, "bad real literal %q", text)
		}
		return token{Kind: tReal, Text: text, Pos: p}, nil
	}
	return token{Kind: tInt, Text: text, Pos: p}, nil
}

// stringLit scans a double-quoted string with Go escape sequences.
func (lx *lexer) stringLit(p Pos) (token, *Error) {
	start := lx.off
	lx.advance(1)
	for lx.off < len(lx.src) {
		switch lx.src[lx.off] {
		case '\\':
			if lx.off+1 >= len(lx.src) {
				return token{}, lx.errf(p, "unterminated string literal")
			}
			lx.advance(2)
		case '"':
			lx.advance(1)
			raw := lx.src[start:lx.off]
			dec, err := strconv.Unquote(raw)
			if err != nil {
				return token{}, lx.errf(p, "bad string literal %s: %v", raw, err)
			}
			return token{Kind: tString, Text: dec, Pos: p}, nil
		case '\n':
			return token{}, lx.errf(p, "unterminated string literal (newline in string)")
		default:
			lx.advance(1)
		}
	}
	return token{}, lx.errf(p, "unterminated string literal")
}
