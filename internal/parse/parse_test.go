package parse_test

import (
	"strings"
	"testing"

	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/parse"
	"github.com/trance-go/trance/internal/value"
)

// mustParse parses src or fails the test.
func mustParse(t *testing.T, src string) *parse.Result {
	t.Helper()
	r, err := parse.Query(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return r
}

// reprint asserts the canonical print of src's AST equals want (single-space
// normalized), and that the print re-parses to the same print.
func assertPrint(t *testing.T, src, want string) {
	t.Helper()
	r := mustParse(t, src)
	got := normalize(nrc.Print(r.Expr))
	if got != want {
		t.Fatalf("parse %q\n  printed %q\n  want    %q", src, got, want)
	}
	r2, err := parse.Query(nrc.Print(r.Expr))
	if err != nil {
		t.Fatalf("reparse of print %q: %v", got, err)
	}
	if p2 := normalize(nrc.Print(r2.Expr)); p2 != got {
		t.Fatalf("print not stable: %q vs %q", got, p2)
	}
}

func normalize(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

func TestParseBasics(t *testing.T) {
	cases := map[string]string{
		"1 + 2 * 3":                 "1 + 2 * 3",
		"(1 + 2) * 3":               "(1 + 2) * 3",
		"1 - 2 - 3":                 "1 - 2 - 3",
		"1 - (2 - 3)":               "1 - (2 - 3)",
		"x.a.b":                     "x.a.b",
		"-5":                        "-5",
		"-x.a":                      "0 - x.a",
		"-2.5":                      "-2.5",
		"1.0":                       "1.0",
		"1e3":                       "1000.0",
		`"hi\n"`:                    `"hi\n"`,
		"true && false || ! true":   "true && false || !true",
		"a == b && c != d":          "a == b && c != d",
		"a union b union c":         "a union b union c",
		"a union (b union c)":       "a union (b union c)",
		`date("2020-01-15")`:        `date("2020-01-15")`,
		"{ x }":                     "{ x }",
		"{}":                        "{}",
		"{a := 1, b := x.f}":        "{ a := 1, b := x.f }",
		"{ {a := 1} }":              "{ { a := 1 } }",
		"get(x)":                    "get(x)",
		"dedup(R)":                  "dedup(R)",
		"empty(int)":                "empty(int)",
		"empty({a: int, b: bag({c: date})})": "empty({a: int, b: bag({c: date})})",
		"groupby[a,b](R)":           "groupby[a,b](R)",
		"groupby[a as grp](R)":      "groupby[a as grp](R)",
		"sumby[a; t](R)":            "sumby[a; t](R)",
		"sumby[; t](R)":             "sumby[; t](R)",
		"for x in R union { x }":    "for x in R union { x }",
		"if a then { x }":           "if a then { x }",
		"if a then 1 else 2":        "if a then 1 else 2",
		"let x := 1 in { x }":       "let x := 1 in { x }",
		"`tpch/ndb-l2`":             "`tpch/ndb-l2`",
		"`for`":                     "`for`",
		"x.`weird field`":           "x.`weird field`",
		"x.`a``b`":                  "x.`a``b`",
		"if a then (if b then 1 else 2) else 3": "if a then (if b then 1 else 2) else 3",
		"for x in (for y in R union { y }) union { x }": "for x in (for y in R union { y }) union { x }",
		"for x in R union for y in S union { x }":       "for x in R union for y in S union { x }",
		"-- comment\n1 // more\n+ 2":                    "1 + 2",
	}
	for src, want := range cases {
		assertPrint(t, src, want)
	}
}

func TestParseNestedComprehension(t *testing.T) {
	src := `
for c in COP union
  { {
      cname := c.cname,
      totals := sumby[pname; total](
        for o in c.corders union
          for p in Part union
            if o.pid == p.pid then
              { { pname := p.pname, total := o.qty * p.price } })
  } }`
	r := mustParse(t, src)
	f, ok := r.Expr.(*nrc.For)
	if !ok {
		t.Fatalf("want For, got %T", r.Expr)
	}
	if f.Var != "c" {
		t.Fatalf("var: %s", f.Var)
	}
	sing := f.Body.(*nrc.Sing)
	tup := sing.Elem.(*nrc.TupleCtor)
	if len(tup.Fields) != 2 || tup.Fields[0].Name != "cname" || tup.Fields[1].Name != "totals" {
		t.Fatalf("fields: %+v", tup.Fields)
	}
	if _, ok := tup.Fields[1].Expr.(*nrc.SumBy); !ok {
		t.Fatalf("totals is %T", tup.Fields[1].Expr)
	}
}

func TestParseErrorsCarryPositions(t *testing.T) {
	cases := []struct {
		src     string
		wantPos string // "line:col"
		frag    string
	}{
		{"for x R union { x }", "1:7", "'in'"},
		{"1 +", "1:4", "expression"},
		{"{a := }", "1:7", "expression"},
		{"a == b == c", "1:8", "chain"},
		{"for for in R union { x }", "1:5", "reserved"},
		{`"unterminated`, "1:1", "unterminated"},
		{"`unterminated", "1:1", "unterminated"},
		{"1 & 2", "1:3", "&&"},
		{"99999999999999999999", "1:1", "out of range"},
		{`date("not-a-date")`, "1:6", "yyyy-mm-dd"},
		{"x.", "1:3", "field"},
		{"A union for x in R union { x }", "1:9", "parenthesize"},
		{"line1 +\n  @", "2:3", "unexpected"},
	}
	for _, c := range cases {
		_, err := parse.Query(c.src)
		if err == nil {
			t.Fatalf("parse %q: want error", c.src)
		}
		pe, ok := err.(*parse.Error)
		if !ok {
			t.Fatalf("parse %q: error is %T, not *parse.Error: %v", c.src, err, err)
		}
		if got := pe.Pos.String(); got != c.wantPos {
			t.Errorf("parse %q: error at %s, want %s (%v)", c.src, got, c.wantPos, err)
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("parse %q: error %q missing %q", c.src, err.Error(), c.frag)
		}
		if !strings.Contains(err.Error(), "^") {
			t.Errorf("parse %q: error lacks caret diagnostic:\n%s", c.src, err)
		}
	}
}

func TestDiagnoseTypeError(t *testing.T) {
	r := mustParse(t, "for x in R union\n  { x.nope }")
	env := nrc.Env{"R": nrc.BagOf(nrc.Tup("a", nrc.IntT))}
	_, err := nrc.Check(r.Expr, env)
	if err == nil {
		t.Fatal("want type error")
	}
	derr := r.Diagnose(err)
	pe, ok := derr.(*parse.Error)
	if !ok {
		t.Fatalf("diagnosed error is %T: %v", derr, derr)
	}
	if pe.Pos.Line != 2 {
		t.Fatalf("type error at %s, want line 2:\n%s", pe.Pos, derr)
	}
	if !strings.Contains(derr.Error(), "nope") || !strings.Contains(derr.Error(), "^") {
		t.Fatalf("diagnostic: %s", derr)
	}
}

func TestParseEvalAgainstBuilder(t *testing.T) {
	// The parsed text and the builder AST must evaluate identically.
	src := `
for c in CO union
  { {
      name := c.cname,
      big := for o in c.orders union
               if o.qty >= 10 then { o }
  } }`
	built := nrc.ForIn("c", nrc.V("CO"),
		nrc.SingOf(nrc.Record(
			"name", nrc.P(nrc.V("c"), "cname"),
			"big", nrc.ForIn("o", nrc.P(nrc.V("c"), "orders"),
				nrc.IfThen(nrc.GeOf(nrc.P(nrc.V("o"), "qty"), nrc.C(10)),
					nrc.SingOf(nrc.V("o")))))))
	if got, want := nrc.Print(mustParse(t, src).Expr), nrc.Print(built); got != want {
		t.Fatalf("structural mismatch:\n%s\nvs\n%s", got, want)
	}

	env := nrc.Env{"CO": nrc.BagOf(nrc.Tup("cname", nrc.StringT,
		"orders", nrc.BagOf(nrc.Tup("qty", nrc.IntT))))}
	inputs := map[string]bool{}
	_ = inputs
	r := mustParse(t, src)
	if _, err := nrc.Check(r.Expr, env); err != nil {
		t.Fatal(err)
	}
	if _, err := nrc.Check(built, env); err != nil {
		t.Fatal(err)
	}
	data := value.Bag{
		value.Tuple{"alice", value.Bag{value.Tuple{int64(3)}, value.Tuple{int64(12)}}},
	}
	var s *nrc.Scope
	s = s.Bind("CO", data)
	if !value.Equal(nrc.Eval(r.Expr, s), nrc.Eval(built, s)) {
		t.Fatal("parsed and built queries evaluate differently")
	}
}

func TestParseProgram(t *testing.T) {
	src := `
Step1 := for x in R union { { a := x.a + 1 } };
Step2 := for y in Step1 union { { b := y.a * 2 } };
for z in Step2 union { z }`
	pr, err := parse.Program(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Program.Stmts) != 3 {
		t.Fatalf("stmts: %d", len(pr.Program.Stmts))
	}
	if pr.Program.Stmts[0].Name != "Step1" || pr.Program.Stmts[1].Name != "Step2" {
		t.Fatalf("names: %+v", pr.Program.Stmts)
	}
	if pr.ResultName != "result" {
		t.Fatalf("result name: %s", pr.ResultName)
	}

	// `let name := e;` statements are accepted, and a trailing let-expression
	// still parses as the result expression.
	pr2, err := parse.Program("let A := for x in R union { x };\nlet y := 1 in { y }")
	if err != nil {
		t.Fatal(err)
	}
	if len(pr2.Program.Stmts) != 2 || pr2.Program.Stmts[0].Name != "A" {
		t.Fatalf("stmts: %+v", pr2.Program.Stmts)
	}
	if _, ok := pr2.Program.Stmts[1].Expr.(*nrc.Let); !ok {
		t.Fatalf("result is %T, want let-expression", pr2.Program.Stmts[1].Expr)
	}

	// All-assignment programs use the last assignment as the result.
	pr3, err := parse.Program("A := for x in R union { x };")
	if err != nil {
		t.Fatal(err)
	}
	if pr3.ResultName != "A" {
		t.Fatalf("result: %s", pr3.ResultName)
	}

	if _, err := parse.Program("  "); err == nil {
		t.Fatal("empty program should fail")
	}
}

func TestPrintProgramRoundTrip(t *testing.T) {
	src := "A := for x in R union { x };\nsumby[a; b](A)"
	pr, err := parse.Program(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := nrc.PrintProgram(pr.Program)
	pr2, err := parse.Program(printed)
	if err != nil {
		t.Fatalf("reparse of PrintProgram output:\n%s\n%v", printed, err)
	}
	if got, want := nrc.PrintProgram(pr2.Program), printed; got != want {
		t.Fatalf("program print not stable:\n%s\nvs\n%s", got, want)
	}
}

// TestHostileIdentifiers: names containing backquotes or newlines (JSON
// keys are arbitrary) round-trip through print and parse, and deep nesting
// — expressions and types — errors with a position instead of crashing.
func TestHostileIdentifiers(t *testing.T) {
	for _, name := range []string{"a`b", "``", "line\nbreak", "tab\there"} {
		v := &nrc.Var{Name: name}
		printed := nrc.Print(v)
		r, err := parse.Query(printed)
		if err != nil {
			t.Fatalf("name %q: print %q does not re-parse: %v", name, printed, err)
		}
		got, ok := r.Expr.(*nrc.Var)
		if !ok || got.Name != name {
			t.Fatalf("name %q: round-tripped to %#v", name, r.Expr)
		}
	}
}

func TestDeepNestingErrorsNotCrash(t *testing.T) {
	deepExpr := strings.Repeat("get(", 200000) + "x" + strings.Repeat(")", 200000)
	if _, err := parse.Query(deepExpr); err == nil {
		t.Fatal("deep expression should error")
	} else if pe, ok := err.(*parse.Error); !ok || pe.Pos.Line < 1 {
		t.Fatalf("deep expression error unpositioned: %v", err)
	}
	deepType := "empty(" + strings.Repeat("bag(", 200000) + "int" + strings.Repeat(")", 200000) + ")"
	if _, err := parse.Query(deepType); err == nil {
		t.Fatal("deep type should error")
	} else if !strings.Contains(err.Error(), "nests deeper") {
		t.Fatalf("deep type error: %v", err)
	}
}

func TestFirstVarAndErrorAt(t *testing.T) {
	r := mustParse(t, "for x in Missing union { x }")
	v, ok := r.FirstVar("Missing")
	if !ok {
		t.Fatal("FirstVar")
	}
	err := r.ErrorAt(v, "no dataset Missing")
	pe, ok := err.(*parse.Error)
	if !ok || pe.Pos.Col != 10 {
		t.Fatalf("ErrorAt: %v", err)
	}
}
