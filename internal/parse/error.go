// Package parse implements the textual NRC+ surface language: a hand-written
// lexer and recursive-descent parser producing internal/nrc ASTs, with
// position-tracked caret diagnostics for lexical, syntactic, and (via
// nrc.ExprError and the parse result's position map) type errors.
//
// The grammar, the operator precedence table, and worked examples are
// documented in docs/QUERYLANG.md. The canonical printed form of an AST
// (nrc.Print) re-parses to a structurally identical AST; fuzz targets in
// this package enforce both that round trip and the absence of panics on
// arbitrary input.
package parse

import (
	"errors"
	"fmt"
	"strings"

	"github.com/trance-go/trance/internal/nrc"
)

// Pos is a position in the query text. Line and Col are 1-based; Col counts
// bytes from the start of the line (tabs count as one column).
type Pos struct {
	Offset int
	Line   int
	Col    int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is a positioned lex/parse/diagnosed-type error. Its Error string is
// a multi-line caret diagnostic quoting the offending source line:
//
//	3:14: expected 'in' after the loop variable of 'for'
//	  3 | for x In X union
//	    |       ^
type Error struct {
	Pos Pos
	Msg string
	src string
}

func (e *Error) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s", e.Pos, e.Msg)
	line, ok := sourceLine(e.src, e.Pos.Line)
	if !ok {
		return sb.String()
	}
	prefix := fmt.Sprintf("  %d | ", e.Pos.Line)
	fmt.Fprintf(&sb, "\n%s%s\n", prefix, line)
	sb.WriteString(strings.Repeat(" ", len(fmt.Sprintf("  %d ", e.Pos.Line))))
	sb.WriteString("| ")
	// Reproduce tabs so the caret lines up under the offending column.
	for i := 0; i < e.Pos.Col-1 && i < len(line); i++ {
		if line[i] == '\t' {
			sb.WriteByte('\t')
		} else {
			sb.WriteByte(' ')
		}
	}
	sb.WriteString("^")
	return sb.String()
}

// sourceLine returns 1-based line n of src.
func sourceLine(src string, n int) (string, bool) {
	if n < 1 {
		return "", false
	}
	lines := strings.Split(src, "\n")
	if n > len(lines) {
		return "", false
	}
	return lines[n-1], true
}

// source carries the query text and the node position map shared by Result
// and ProgramResult.
type Source struct {
	src  string
	pos  map[nrc.Expr]Pos
	vars map[string]nrc.Expr // first Var node per name, for dataset errors
}

// Pos returns the start position of a parsed node.
func (s *Source) Pos(e nrc.Expr) (Pos, bool) {
	p, ok := s.pos[e]
	return p, ok
}

// FirstVar returns the first occurrence of a variable named name, so layers
// resolving free variables (the catalog) can point at the reference that
// failed to resolve.
func (s *Source) FirstVar(name string) (nrc.Expr, bool) {
	v, ok := s.vars[name]
	return v, ok
}

// ErrorAt builds a caret diagnostic anchored at node (which must come from
// this parse); when the node is unknown the message is returned unadorned.
func (s *Source) ErrorAt(node nrc.Expr, msg string) error {
	if p, ok := s.pos[node]; ok {
		return &Error{Pos: p, Msg: msg, src: s.src}
	}
	return errors.New(msg)
}

// Diagnose upgrades an error that carries an nrc.ExprError for a node of
// this parse into a positioned caret diagnostic; anything else (including
// nil and errors that already are *Error) passes through unchanged. Wrap the
// errors of nrc.Check — or of any API built on it, such as trance.Prepare —
// with it to point type errors at the query text.
func (s *Source) Diagnose(err error) error {
	if err == nil {
		return nil
	}
	var pe *Error
	if errors.As(err, &pe) {
		return err
	}
	var xe *nrc.ExprError
	if errors.As(err, &xe) {
		if p, ok := s.pos[xe.Node]; ok {
			return &Error{Pos: p, Msg: err.Error(), src: s.src}
		}
	}
	return err
}
