package parse_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/trance-go/trance/internal/biomed"
	"github.com/trance-go/trance/internal/dataflow"
	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/parse"
	"github.com/trance-go/trance/internal/runner"
	"github.com/trance-go/trance/internal/tpch"
	"github.com/trance-go/trance/internal/value"
)

// -update regenerates the text fixtures from the builder ASTs:
//
//	go test ./internal/parse -run TestFixtures -update
var update = flag.Bool("update", false, "rewrite testdata fixtures from the builder queries")

// fixtureLevels are the representative nesting depths covered by the text
// fixtures (the depths tranced preloads by default).
var fixtureLevels = []int{0, 1, 2}

// fixtureStrategies are the three headline execution routes of the paper.
var fixtureStrategies = []runner.Strategy{runner.Standard, runner.Shred, runner.ShredUnshred}

type tpchFixture struct {
	class tpch.QueryClass
	level int
}

func (f tpchFixture) file() string {
	return fmt.Sprintf("tpch-%s-l%d.nrc", f.class, f.level)
}

func tpchFixtures() []tpchFixture {
	var out []tpchFixture
	for _, class := range []tpch.QueryClass{tpch.FlatToNested, tpch.NestedToNested, tpch.NestedToFlat} {
		for _, level := range fixtureLevels {
			out = append(out, tpchFixture{class: class, level: level})
		}
	}
	return out
}

func fixturePath(name string) string { return filepath.Join("testdata", name) }

func readFixture(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(fixturePath(name))
	if err != nil {
		t.Fatalf("read fixture (run `go test ./internal/parse -run TestFixtures -update` to regenerate): %v", err)
	}
	return string(b)
}

// TestFixturesTPCH asserts, for every TPC-H fixture, that the text form
// parses to the exact structure of the builder query and that running the
// parsed query matches the builder query's output under STANDARD, SHRED,
// and SHRED+UNSHRED.
func TestFixturesTPCH(t *testing.T) {
	tables := tpch.Generate(tpch.Config{
		Customers: 12, OrdersPerCustomer: 4, LinesPerOrder: 3,
		Parts: 30, SkewFactor: 0, Seed: 7,
	})
	for _, f := range tpchFixtures() {
		f := f
		t.Run(f.file(), func(t *testing.T) {
			built := tpch.Query(f.class, f.level, false)
			if *update {
				if err := os.WriteFile(fixturePath(f.file()), []byte(nrc.Print(built)+"\n"), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			text := readFixture(t, f.file())
			r, err := parse.Query(text)
			if err != nil {
				t.Fatalf("parse fixture: %v", err)
			}
			// Structural equality via the canonical print.
			if got, want := nrc.Print(r.Expr), nrc.Print(built); got != want {
				t.Fatalf("fixture parses to a different query:\n--- parsed\n%s\n--- builder\n%s", got, want)
			}

			env := tpch.Env(f.class, f.level, false)
			inputs := map[string]value.Bag{}
			if f.class == tpch.FlatToNested {
				inputs = tables.Inputs()
			} else {
				inputs["NDB"] = tpch.BuildNested(tables, f.level, true)
				inputs["Part"] = tables.Part
			}
			cfg := runner.DefaultConfig()
			for _, strat := range fixtureStrategies {
				parsedRes := runner.Run(runner.Job{Query: r.Expr, Env: env, Inputs: inputs}, strat, cfg)
				if parsedRes.Failed() {
					t.Fatalf("%s parsed run: %v", strat, parsedRes.Err)
				}
				builtRes := runner.Run(runner.Job{Query: built, Env: env, Inputs: inputs}, strat, cfg)
				if builtRes.Failed() {
					t.Fatalf("%s builder run: %v", strat, builtRes.Err)
				}
				a := collectBag(parsedRes.Output.CollectSorted())
				b := collectBag(builtRes.Output.CollectSorted())
				if !value.Equal(a, b) {
					t.Fatalf("%s: parsed and builder outputs differ (%d vs %d rows)", strat, len(a), len(b))
				}
				if len(a) == 0 {
					t.Fatalf("%s: empty output — fixture exercises nothing", strat)
				}
			}
		})
	}
}

// TestFixtureBiomed does the same for the five-step biomedical pipeline,
// expressed as a multi-statement program fixture.
func TestFixtureBiomed(t *testing.T) {
	steps := biomed.Steps()
	prog := &nrc.Program{}
	for _, st := range steps {
		prog.Stmts = append(prog.Stmts, nrc.Assignment{Name: st.Name, Expr: st.Query})
	}
	if *update {
		if err := os.WriteFile(fixturePath("biomed-e2e.nrc"), []byte(nrc.PrintProgram(prog)), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	text := readFixture(t, "biomed-e2e.nrc")
	pr, err := parse.Program(text)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	if got, want := nrc.PrintProgram(pr.Program), nrc.PrintProgram(prog); got != want {
		t.Fatalf("fixture parses to a different program:\n--- parsed\n%s\n--- builder\n%s", got, want)
	}

	parsedSteps := make([]runner.PipelineStep, len(pr.Program.Stmts))
	for i, st := range pr.Program.Stmts {
		parsedSteps[i] = runner.PipelineStep{Name: st.Name, Query: st.Expr}
	}
	inputs := biomed.Generate(biomed.SmallConfig())
	cfg := runner.DefaultConfig()
	for _, strat := range fixtureStrategies {
		a := runner.RunPipeline(parsedSteps, biomed.Env(), inputs, strat, cfg)
		if a.Failed() {
			t.Fatalf("%s parsed pipeline: step %d: %v", strat, a.FailedStep, a.Err)
		}
		// Rebuild the builder steps each run: compilation annotates ASTs.
		b := runner.RunPipeline(biomed.Steps(), biomed.Env(), inputs, strat, cfg)
		if b.Failed() {
			t.Fatalf("%s builder pipeline: step %d: %v", strat, b.FailedStep, b.Err)
		}
		av := collectBag(a.Output.CollectSorted())
		bv := collectBag(b.Output.CollectSorted())
		if !value.Equal(av, bv) {
			t.Fatalf("%s: parsed and builder pipeline outputs differ (%d vs %d rows)", strat, len(av), len(bv))
		}
		if len(av) == 0 {
			t.Fatalf("%s: empty pipeline output", strat)
		}
	}
}

func collectBag(rows []dataflow.Row) value.Bag {
	out := make(value.Bag, len(rows))
	for i, r := range rows {
		out[i] = value.Tuple(r)
	}
	return out
}
