package parse_test

import (
	"math"
	"strings"
	"testing"

	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/parse"
	"github.com/trance-go/trance/internal/value"
)

// FuzzParse feeds arbitrary text to the parser and asserts the contract
// every entry point relies on: no panics, errors are positioned caret
// diagnostics, and a successful parse prints canonically (the print
// re-parses and prints identically).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"for x in R union { x }",
		"for c in `tpch/ndb-l2` union { { n := c.c_name } }",
		"sumby[a; t](groupby[k as g](dedup(R)))",
		"let x := 1 in if x == 1 then { x } else empty(int)",
		"{a := 1, b := \"s\", c := date(\"2020-01-15\"), d := 2.5e3}",
		"A := for x in R union { x };\nsumby[; a](A)",
		"a union (b union c) union { 1 + 2 * -3 }",
		"empty({a: int, b: bag({c: date})})",
		"x.`weird field`.y == !true && 1 <= 2 || false",
		"for x in R unio { x }",
		"((((", "{{{{", "\"", "`", "1e", "--", "date(\"x\")",
		"if a then b else c", "0-0-0", "\x00\xff\xfe",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		r, err := parse.Query(src) // must not panic
		if err != nil {
			pe, ok := err.(*parse.Error)
			if !ok {
				t.Fatalf("error is %T, not *parse.Error: %v", err, err)
			}
			if pe.Pos.Line < 1 || pe.Pos.Col < 1 {
				t.Fatalf("error lacks a position: %+v", pe.Pos)
			}
		} else {
			assertCanonical(t, r.Expr)
		}
		// Programs share the machinery but have their own statement layer.
		if pr, perr := parse.Program(src); perr == nil {
			for _, st := range pr.Program.Stmts {
				assertCanonical(t, st.Expr)
			}
		} else if pe, ok := perr.(*parse.Error); !ok || pe.Pos.Line < 1 {
			t.Fatalf("program error unpositioned: %v", perr)
		}
	})
}

// assertCanonical: printing a parsed expression must yield text that parses
// back to the same print — the printer emits only valid surface syntax.
func assertCanonical(t *testing.T, e nrc.Expr) {
	t.Helper()
	printed := nrc.Print(e)
	r2, err := parse.Query(printed)
	if err != nil {
		t.Fatalf("print does not re-parse: %v\n--- printed\n%s", err, printed)
	}
	if again := nrc.Print(r2.Expr); again != printed {
		t.Fatalf("print not canonical:\n--- first\n%s\n--- second\n%s", printed, again)
	}
}

// FuzzPrintParseRoundTrip drives the property from the AST side: generate an
// arbitrary source-language expression from the fuzz bytes, print it, parse
// the print, and require structural identity (modulo the canonical print).
func FuzzPrintParseRoundTrip(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte("deterministic seed bytes driving the ast generator"))
	f.Add([]byte{250, 251, 252, 253, 254, 255, 0, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := &gen{data: data}
		e := g.expr(3)
		printed := nrc.Print(e)
		r, err := parse.Query(printed)
		if err != nil {
			t.Fatalf("generated AST prints unparseable text: %v\n--- printed\n%s", err, printed)
		}
		if got := nrc.Print(r.Expr); got != printed {
			t.Fatalf("round trip changed the AST:\n--- printed\n%s\n--- reparsed\n%s", printed, got)
		}
	})
}

// gen deterministically builds source-language ASTs from a byte stream.
type gen struct {
	data []byte
	i    int
}

func (g *gen) byte() byte {
	if g.i >= len(g.data) {
		return 0
	}
	b := g.data[g.i]
	g.i++
	return b
}

func (g *gen) int64() int64 {
	var v uint64
	for k := 0; k < 8; k++ {
		v = v<<8 | uint64(g.byte())
	}
	return int64(v)
}

// names mixes plain identifiers, reserved words, and characters that force
// backquoting — including backquotes and newlines themselves.
var names = []string{"x", "R", "a1", "_u", "union", "for", "tpch/ndb-l2", "weird name", "läble", "a`b", "line\nbreak"}

func (g *gen) name() string { return names[int(g.byte())%len(names)] }

var strs = []string{"", "plain", "with \"quotes\"", "tab\tnewline\n", "unié", "\x01\x80"}

func (g *gen) expr(depth int) nrc.Expr {
	if depth <= 0 {
		switch g.byte() % 6 {
		case 0:
			return &nrc.Const{Val: g.int64()}
		case 1:
			f := math.Float64frombits(uint64(g.int64()))
			if math.IsNaN(f) || math.IsInf(f, 0) {
				f = 1.5
			}
			return &nrc.Const{Val: f}
		case 2:
			return &nrc.Const{Val: strs[int(g.byte())%len(strs)]}
		case 3:
			return &nrc.Const{Val: g.byte()%2 == 0}
		case 4:
			y := 1 + int(g.byte())%9999
			m := 1 + int(g.byte())%12
			d := 1 + int(g.byte())%28
			return &nrc.Const{Val: value.MakeDate(y, m, d)}
		default:
			return &nrc.Var{Name: g.name()}
		}
	}
	switch g.byte() % 17 {
	case 0:
		return &nrc.Proj{Tuple: g.expr(depth - 1), Field: g.name()}
	case 1:
		n := int(g.byte()) % 3
		fields := make([]nrc.NamedExpr, n)
		for i := range fields {
			fields[i] = nrc.NamedExpr{Name: g.name(), Expr: g.expr(depth - 1)}
		}
		return &nrc.TupleCtor{Fields: fields}
	case 2:
		return &nrc.Sing{Elem: g.expr(depth - 1)}
	case 3:
		return &nrc.Empty{ElemType: g.typ(2)}
	case 4:
		return &nrc.Get{Bag: g.expr(depth - 1)}
	case 5:
		return &nrc.For{Var: g.name(), Source: g.expr(depth - 1), Body: g.expr(depth - 1)}
	case 6:
		return &nrc.Union{L: g.expr(depth - 1), R: g.expr(depth - 1)}
	case 7:
		return &nrc.Let{Var: g.name(), Val: g.expr(depth - 1), Body: g.expr(depth - 1)}
	case 8:
		node := &nrc.If{Cond: g.expr(depth - 1), Then: g.expr(depth - 1)}
		if g.byte()%2 == 0 {
			node.Else = g.expr(depth - 1)
		}
		return node
	case 9:
		op := nrc.CmpOp(int(g.byte()) % 6)
		return &nrc.Cmp{Op: op, L: g.expr(depth - 1), R: g.expr(depth - 1)}
	case 10:
		op := nrc.ArithOp(int(g.byte()) % 4)
		return &nrc.Arith{Op: op, L: g.expr(depth - 1), R: g.expr(depth - 1)}
	case 11:
		return &nrc.Not{E: g.expr(depth - 1)}
	case 12:
		return &nrc.BoolBin{And: g.byte()%2 == 0, L: g.expr(depth - 1), R: g.expr(depth - 1)}
	case 13:
		return &nrc.Dedup{E: g.expr(depth - 1)}
	case 14:
		groupAs := "group"
		if g.byte()%3 == 0 {
			groupAs = g.name()
		}
		return &nrc.GroupBy{E: g.expr(depth - 1), Keys: g.names(2), GroupAs: groupAs}
	case 15:
		return &nrc.SumBy{E: g.expr(depth - 1), Keys: g.names(2), Values: g.names(2)}
	default:
		return g.expr(0)
	}
}

// names yields up to max distinct attribute names (possibly none).
func (g *gen) names(max int) []string {
	n := int(g.byte()) % (max + 1)
	seen := map[string]bool{}
	var out []string
	for i := 0; i < n; i++ {
		nm := g.name()
		if !seen[nm] {
			seen[nm] = true
			out = append(out, nm)
		}
	}
	return out
}

func (g *gen) typ(depth int) nrc.Type {
	if depth <= 0 {
		return scalarTypes[int(g.byte())%len(scalarTypes)]
	}
	switch g.byte() % 4 {
	case 0:
		return nrc.BagType{Elem: g.typ(depth - 1)}
	case 1:
		n := int(g.byte()) % 3
		fields := make([]nrc.Field, 0, n)
		seen := map[string]bool{}
		for i := 0; i < n; i++ {
			nm := g.name()
			if seen[nm] {
				continue
			}
			seen[nm] = true
			fields = append(fields, nrc.Field{Name: nm, Type: g.typ(depth - 1)})
		}
		return nrc.TupleType{Fields: fields}
	default:
		return scalarTypes[int(g.byte())%len(scalarTypes)]
	}
}

var scalarTypes = []nrc.Type{nrc.IntT, nrc.RealT, nrc.StringT, nrc.BoolT, nrc.DateT, nrc.LabelT}

// TestFuzzSeedsDirect runs the fuzz bodies over their seed corpora so plain
// `go test` (and -race CI) exercises them without the fuzz engine.
func TestFuzzSeedsDirect(t *testing.T) {
	for _, src := range []string{
		"for x in R union { x }",
		"A := { {a := 1} };\nfor x in A union { x.a + -2 }",
		strings.Repeat("(", 1000) + "x" + strings.Repeat(")", 1000),
	} {
		if r, err := parse.Query(src); err == nil {
			assertCanonical(t, r.Expr)
		}
	}
	for seed := 0; seed < 256; seed++ {
		data := make([]byte, 64)
		for i := range data {
			data[i] = byte((seed*31 + i*7 + i*i) % 256)
		}
		g := &gen{data: data}
		e := g.expr(3)
		printed := nrc.Print(e)
		r, err := parse.Query(printed)
		if err != nil {
			t.Fatalf("seed %d: print unparseable: %v\n%s", seed, err, printed)
		}
		if got := nrc.Print(r.Expr); got != printed {
			t.Fatalf("seed %d: round trip changed AST:\n%s\nvs\n%s", seed, printed, got)
		}
	}
}
