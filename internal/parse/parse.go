package parse

import (
	"fmt"
	"math"
	"strconv"

	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/value"
)

// Result is a successfully parsed query expression plus the source/position
// context needed to diagnose later (type, resolution) errors against the
// text.
type Result struct {
	Source
	Expr nrc.Expr
}

// ProgramResult is a successfully parsed multi-statement program.
type ProgramResult struct {
	Source
	Program *nrc.Program
	// ResultName is the name of the final statement (the program's result):
	// the synthesized "result" when the program ended in a bare expression,
	// otherwise the last assignment's name.
	ResultName string
}

// Query parses a single query expression. Errors are *Error caret
// diagnostics and never panics.
func Query(src string) (*Result, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	e, perr := p.parseExpr()
	if perr != nil {
		return nil, perr
	}
	if perr := p.expect(tEOF, "after the query"); perr != nil {
		return nil, perr
	}
	return &Result{Source: p.source(), Expr: e}, nil
}

// Program parses a multi-statement program: zero or more `name := expr;`
// assignments (later statements may reference earlier names) ending in a
// result expression — either a final bare expression (assigned the name
// "result") or, when every statement is an assignment, the last assignment.
// The statement form `let name := expr;` is also accepted; it is
// disambiguated from a trailing let-expression by the absence of `in`.
func Program(src string) (*ProgramResult, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	prog, perr := p.parseProgram()
	if perr != nil {
		return nil, perr
	}
	return &ProgramResult{
		Source:     p.source(),
		Program:    prog,
		ResultName: prog.Stmts[len(prog.Stmts)-1].Name,
	}, nil
}

type parser struct {
	src   string
	toks  []token
	i     int
	depth int
	pos   map[nrc.Expr]Pos
	vars  map[string]nrc.Expr
}

// maxNestingDepth bounds expression nesting so pathological input (a
// megabyte of open parens) reports a positioned error instead of exhausting
// the stack. Real queries nest a few dozen levels at most.
const maxNestingDepth = 5000

func newParser(src string) (*parser, *Error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	return &parser{
		src: src, toks: toks,
		pos:  map[nrc.Expr]Pos{},
		vars: map[string]nrc.Expr{},
	}, nil
}

func (p *parser) source() Source {
	return Source{src: p.src, pos: p.pos, vars: p.vars}
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) peekAt(n int) token {
	if p.i+n >= len(p.toks) {
		return p.toks[len(p.toks)-1] // EOF
	}
	return p.toks[p.i+n]
}

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.Kind != tEOF {
		p.i++
	}
	return t
}

func (p *parser) at(k tokKind) bool { return p.peek().Kind == k }

func (p *parser) accept(k tokKind) (token, bool) {
	if p.at(k) {
		return p.next(), true
	}
	return token{}, false
}

func (p *parser) errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...), src: p.src}
}

func (p *parser) errHere(format string, args ...any) *Error {
	return p.errf(p.peek().Pos, format, args...)
}

func (p *parser) expect(k tokKind, where string) *Error {
	if _, ok := p.accept(k); ok {
		return nil
	}
	return p.errHere("expected %s %s, found %s", k, where, p.describeHere())
}

func (p *parser) describeHere() string {
	t := p.peek()
	switch t.Kind {
	case tEOF:
		return "end of input"
	case tIdent:
		return fmt.Sprintf("identifier %q", t.Text)
	case tInt, tReal:
		return fmt.Sprintf("number %s", t.Text)
	case tString:
		return fmt.Sprintf("string %q", t.Text)
	default:
		return t.Kind.String()
	}
}

func (p *parser) expectIdent(where string) (token, *Error) {
	if t, ok := p.accept(tIdent); ok {
		return t, nil
	}
	if kw := p.peek(); kw.Kind >= tFor && kw.Kind <= tEmpty {
		return token{}, p.errHere("%q is a reserved word and cannot be used as %s (backquote it: `%s`)", kw.Text, where, kw.Text)
	}
	return token{}, p.errHere("expected %s, found %s", where, p.describeHere())
}

// record registers a node's start position and returns it.
func (p *parser) record(e nrc.Expr, pos Pos) nrc.Expr {
	p.pos[e] = pos
	return e
}

// --- program ---

func (p *parser) parseProgram() (*nrc.Program, *Error) {
	var stmts []nrc.Assignment
	names := map[string]bool{}
	for {
		if p.at(tIdent) && p.peekAt(1).Kind == tAssign {
			name := p.next().Text
			p.next() // :=
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmts = append(stmts, nrc.Assignment{Name: name, Expr: e})
			names[name] = true
			p.accept(tSemi)
			continue
		}
		if p.at(tLet) && p.peekAt(1).Kind == tIdent && p.peekAt(2).Kind == tAssign {
			// `let x := e in body` is an expression; `let x := e;` a
			// statement. Parse the assignment, then decide on `in`.
			mark := p.i
			p.next() // let
			name := p.next().Text
			p.next() // :=
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if p.at(tIn) {
				p.i = mark // a let-expression: re-parse as the result expression
				break
			}
			stmts = append(stmts, nrc.Assignment{Name: name, Expr: e})
			names[name] = true
			p.accept(tSemi)
			continue
		}
		break
	}
	if p.at(tEOF) {
		if len(stmts) == 0 {
			return nil, p.errHere("empty program")
		}
		return &nrc.Program{Stmts: stmts}, nil
	}
	final, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tEOF, "after the result expression"); err != nil {
		return nil, err
	}
	name := "result"
	for names[name] {
		name += "_"
	}
	stmts = append(stmts, nrc.Assignment{Name: name, Expr: final})
	return &nrc.Program{Stmts: stmts}, nil
}

// --- expressions, lowest precedence first ---

// parseExpr parses a full expression. The binder forms (for, let, if) live
// at the lowest precedence level and extend as far right as possible; as an
// operand of any operator they must be parenthesized.
func (p *parser) parseExpr() (nrc.Expr, *Error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxNestingDepth {
		return nil, p.errHere("expression nests deeper than %d levels", maxNestingDepth)
	}
	switch p.peek().Kind {
	case tFor:
		return p.parseFor()
	case tLet:
		return p.parseLet()
	case tIf:
		return p.parseIf()
	}
	return p.parseOr()
}

func (p *parser) parseFor() (nrc.Expr, *Error) {
	start := p.next().Pos // for
	v, err := p.expectIdent("a loop variable after 'for'")
	if err != nil {
		return nil, err
	}
	if err := p.expect(tIn, "after the loop variable"); err != nil {
		return nil, err
	}
	// The source binds tighter than `union`: the first `union` token
	// separates it from the body. Parenthesize union/comparison/binder
	// sources.
	src, err := p.parseBin(precAddL)
	if err != nil {
		return nil, err
	}
	if err := p.expect(tUnion, "separating the source from the body of 'for'"); err != nil {
		return nil, err
	}
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return p.record(&nrc.For{Var: v.Text, Source: src, Body: body}, start), nil
}

func (p *parser) parseLet() (nrc.Expr, *Error) {
	start := p.next().Pos // let
	v, err := p.expectIdent("a variable after 'let'")
	if err != nil {
		return nil, err
	}
	if err := p.expect(tAssign, "after the 'let' variable"); err != nil {
		return nil, err
	}
	val, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tIn, "after the 'let' value"); err != nil {
		return nil, err
	}
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return p.record(&nrc.Let{Var: v.Text, Val: val, Body: body}, start), nil
}

func (p *parser) parseIf() (nrc.Expr, *Error) {
	start := p.next().Pos // if
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tThen, "after the 'if' condition"); err != nil {
		return nil, err
	}
	then, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	node := &nrc.If{Cond: cond, Then: then}
	if _, ok := p.accept(tElse); ok {
		els, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		node.Else = els
	}
	return p.record(node, start), nil
}

// Binary levels, lowest first. Mirrors the printer's precedence table in
// internal/nrc/print.go.
type binLevel int

const (
	precOrL binLevel = iota
	precAndL
	precCmpL
	precUnionL
	precAddL
	precMulL
)

func (p *parser) parseOr() (nrc.Expr, *Error) { return p.parseBin(precOrL) }

func (p *parser) parseBin(level binLevel) (nrc.Expr, *Error) {
	if level > precMulL {
		return p.parseUnary()
	}
	l, err := p.parseBin(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch level {
		case precOrL:
			if t.Kind != tOrOr {
				return l, nil
			}
		case precAndL:
			if t.Kind != tAndAnd {
				return l, nil
			}
		case precCmpL:
			op, ok := cmpOps[t.Kind]
			if !ok {
				return l, nil
			}
			p.next()
			r, err := p.parseBin(level + 1)
			if err != nil {
				return nil, err
			}
			if nxt, chained := cmpOps[p.peek().Kind]; chained {
				return nil, p.errHere("comparisons do not chain: parenthesize one side of %s", nxt)
			}
			return p.record(&nrc.Cmp{Op: op, L: l, R: r}, t.Pos), nil
		case precUnionL:
			if t.Kind != tUnion {
				return l, nil
			}
		case precAddL:
			if t.Kind != tPlus && t.Kind != tMinus {
				return l, nil
			}
		case precMulL:
			if t.Kind != tStar && t.Kind != tSlash {
				return l, nil
			}
		}
		p.next()
		r, err := p.parseBin(level + 1)
		if err != nil {
			return nil, err
		}
		switch level {
		case precOrL:
			l = p.record(&nrc.BoolBin{And: false, L: l, R: r}, t.Pos)
		case precAndL:
			l = p.record(&nrc.BoolBin{And: true, L: l, R: r}, t.Pos)
		case precUnionL:
			l = p.record(&nrc.Union{L: l, R: r}, t.Pos)
		case precAddL:
			op := nrc.Add
			if t.Kind == tMinus {
				op = nrc.Sub
			}
			l = p.record(&nrc.Arith{Op: op, L: l, R: r}, t.Pos)
		case precMulL:
			op := nrc.Mul
			if t.Kind == tSlash {
				op = nrc.Div
			}
			l = p.record(&nrc.Arith{Op: op, L: l, R: r}, t.Pos)
		}
	}
}

var cmpOps = map[tokKind]nrc.CmpOp{
	tEq: nrc.Eq, tNe: nrc.Ne, tLt: nrc.Lt, tLe: nrc.Le, tGt: nrc.Gt, tGe: nrc.Ge,
}

func (p *parser) parseUnary() (nrc.Expr, *Error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxNestingDepth {
		return nil, p.errHere("expression nests deeper than %d levels", maxNestingDepth)
	}
	if t, ok := p.accept(tBang); ok {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return p.record(&nrc.Not{E: e}, t.Pos), nil
	}
	if t, ok := p.accept(tMinus); ok {
		// Fold a minus into a numeric literal (also the only way to write
		// MinInt64); otherwise desugar -e to 0 - e.
		if lit := p.peek(); lit.Kind == tInt {
			p.next()
			u, perr := strconv.ParseUint(lit.Text, 10, 64)
			if perr != nil || u > 1<<63 {
				return nil, p.errf(lit.Pos, "integer literal -%s out of range", lit.Text)
			}
			return p.record(&nrc.Const{Val: -int64(u)}, t.Pos), nil
		}
		if lit := p.peek(); lit.Kind == tReal {
			p.next()
			f, _ := strconv.ParseFloat(lit.Text, 64)
			return p.record(&nrc.Const{Val: -f}, t.Pos), nil
		}
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		zero := p.record(&nrc.Const{Val: int64(0)}, t.Pos)
		return p.record(&nrc.Arith{Op: nrc.Sub, L: zero, R: e}, t.Pos), nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (nrc.Expr, *Error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t, ok := p.accept(tDot)
		if !ok {
			return e, nil
		}
		f, err := p.expectIdent("a field name after '.'")
		if err != nil {
			return nil, err
		}
		e = p.record(&nrc.Proj{Tuple: e, Field: f.Text}, t.Pos)
	}
}

func (p *parser) parsePrimary() (nrc.Expr, *Error) {
	t := p.peek()
	switch t.Kind {
	case tInt:
		p.next()
		u, err := strconv.ParseUint(t.Text, 10, 64)
		if err != nil || u > math.MaxInt64 {
			return nil, p.errf(t.Pos, "integer literal %s out of range", t.Text)
		}
		return p.record(&nrc.Const{Val: int64(u)}, t.Pos), nil
	case tReal:
		p.next()
		f, _ := strconv.ParseFloat(t.Text, 64)
		return p.record(&nrc.Const{Val: f}, t.Pos), nil
	case tString:
		p.next()
		return p.record(&nrc.Const{Val: t.Text}, t.Pos), nil
	case tTrue, tFalse:
		p.next()
		return p.record(&nrc.Const{Val: t.Kind == tTrue}, t.Pos), nil
	case tDate:
		return p.parseDate()
	case tIdent:
		p.next()
		v := &nrc.Var{Name: t.Text}
		if _, seen := p.vars[t.Text]; !seen {
			p.vars[t.Text] = v
		}
		return p.record(v, t.Pos), nil
	case tLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tRParen, "to close '('"); err != nil {
			return nil, err
		}
		return e, nil
	case tLBrace:
		return p.parseBraces()
	case tGet, tDedup:
		p.next()
		e, err := p.parseCallArg(t.Text)
		if err != nil {
			return nil, err
		}
		if t.Kind == tGet {
			return p.record(&nrc.Get{Bag: e}, t.Pos), nil
		}
		return p.record(&nrc.Dedup{E: e}, t.Pos), nil
	case tEmpty:
		p.next()
		if err := p.expect(tLParen, "after 'empty'"); err != nil {
			return nil, err
		}
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tRParen, "to close 'empty('"); err != nil {
			return nil, err
		}
		return p.record(&nrc.Empty{ElemType: ty}, t.Pos), nil
	case tGroupBy:
		return p.parseGroupBy()
	case tSumBy:
		return p.parseSumBy()
	case tFor, tLet, tIf:
		return nil, p.errf(t.Pos, "'%s' cannot be an operand here: parenthesize it, e.g. (%s ...)", t.Text, t.Text)
	case tEOF:
		return nil, p.errHere("expected an expression, found end of input")
	}
	return nil, p.errHere("expected an expression, found %s", p.describeHere())
}

func (p *parser) parseCallArg(fn string) (nrc.Expr, *Error) {
	if err := p.expect(tLParen, "after '"+fn+"'"); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tRParen, "to close '"+fn+"('"); err != nil {
		return nil, err
	}
	return e, nil
}

// parseDate parses date("yyyy-mm-dd").
func (p *parser) parseDate() (nrc.Expr, *Error) {
	t := p.next() // date
	if err := p.expect(tLParen, "after 'date'"); err != nil {
		return nil, err
	}
	lit := p.peek()
	if lit.Kind != tString {
		return nil, p.errHere("date() takes a \"yyyy-mm-dd\" string literal, found %s", p.describeHere())
	}
	p.next()
	d, ok := value.ParseDate(lit.Text)
	if !ok {
		return nil, p.errf(lit.Pos, "bad date %q: want yyyy-mm-dd", lit.Text)
	}
	if err := p.expect(tRParen, "to close 'date('"); err != nil {
		return nil, err
	}
	return p.record(&nrc.Const{Val: d}, t.Pos), nil
}

// parseBraces parses the three brace forms: {} (empty tuple),
// {a := e, ...} (tuple constructor), {e} (singleton bag).
func (p *parser) parseBraces() (nrc.Expr, *Error) {
	open := p.next() // {
	if _, ok := p.accept(tRBrace); ok {
		return p.record(&nrc.TupleCtor{}, open.Pos), nil
	}
	if p.at(tIdent) && p.peekAt(1).Kind == tAssign {
		var fields []nrc.NamedExpr
		for {
			f, err := p.expectIdent("a field name")
			if err != nil {
				return nil, err
			}
			if err := p.expect(tAssign, "after the field name"); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fields = append(fields, nrc.NamedExpr{Name: f.Text, Expr: e})
			if _, ok := p.accept(tComma); !ok {
				break
			}
			if p.at(tRBrace) {
				break // trailing comma
			}
		}
		if err := p.expect(tRBrace, "to close the tuple"); err != nil {
			return nil, err
		}
		return p.record(&nrc.TupleCtor{Fields: fields}, open.Pos), nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tRBrace, "to close the singleton bag"); err != nil {
		return nil, err
	}
	return p.record(&nrc.Sing{Elem: e}, open.Pos), nil
}

func (p *parser) parseGroupBy() (nrc.Expr, *Error) {
	t := p.next() // groupby
	if err := p.expect(tLBrack, "after 'groupby'"); err != nil {
		return nil, err
	}
	keys, err := p.parseNameList(tAs, tRBrack)
	if err != nil {
		return nil, err
	}
	groupAs := "group"
	if _, ok := p.accept(tAs); ok {
		g, err := p.expectIdent("the group attribute name after 'as'")
		if err != nil {
			return nil, err
		}
		groupAs = g.Text
	}
	if err := p.expect(tRBrack, "to close 'groupby['"); err != nil {
		return nil, err
	}
	e, err := p.parseCallArg("groupby[...]")
	if err != nil {
		return nil, err
	}
	return p.record(&nrc.GroupBy{E: e, Keys: keys, GroupAs: groupAs}, t.Pos), nil
}

func (p *parser) parseSumBy() (nrc.Expr, *Error) {
	t := p.next() // sumby
	if err := p.expect(tLBrack, "after 'sumby'"); err != nil {
		return nil, err
	}
	keys, err := p.parseNameList(tSemi, tRBrack)
	if err != nil {
		return nil, err
	}
	if err := p.expect(tSemi, "separating sumby keys from values"); err != nil {
		return nil, err
	}
	values, err := p.parseNameList(tRBrack, tRBrack)
	if err != nil {
		return nil, err
	}
	if err := p.expect(tRBrack, "to close 'sumby['"); err != nil {
		return nil, err
	}
	e, err := p.parseCallArg("sumby[...]")
	if err != nil {
		return nil, err
	}
	return p.record(&nrc.SumBy{E: e, Keys: keys, Values: values}, t.Pos), nil
}

// parseNameList parses a comma-separated (possibly empty) identifier list,
// stopping before either terminator token.
func (p *parser) parseNameList(stop1, stop2 tokKind) ([]string, *Error) {
	var names []string
	if p.at(stop1) || p.at(stop2) {
		return names, nil
	}
	for {
		n, err := p.expectIdent("an attribute name")
		if err != nil {
			return nil, err
		}
		names = append(names, n.Text)
		if _, ok := p.accept(tComma); !ok {
			return names, nil
		}
	}
}

// parseType parses the surface type syntax used by empty(T):
// int | real | string | bool | date | label | bag(T) | {a: T, ...}.
func (p *parser) parseType() (nrc.Type, *Error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxNestingDepth {
		return nil, p.errHere("type nests deeper than %d levels", maxNestingDepth)
	}
	t := p.peek()
	switch t.Kind {
	case tDate:
		p.next()
		return nrc.DateT, nil
	case tIdent:
		switch t.Text {
		case "int":
			p.next()
			return nrc.IntT, nil
		case "real":
			p.next()
			return nrc.RealT, nil
		case "string":
			p.next()
			return nrc.StringT, nil
		case "bool":
			p.next()
			return nrc.BoolT, nil
		case "label":
			p.next()
			return nrc.LabelT, nil
		case "bag":
			p.next()
			if err := p.expect(tLParen, "after 'bag'"); err != nil {
				return nil, err
			}
			elem, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tRParen, "to close 'bag('"); err != nil {
				return nil, err
			}
			return nrc.BagType{Elem: elem}, nil
		}
		return nil, p.errf(t.Pos, "unknown type %q (want int, real, string, bool, date, bag(T), or {a: T, ...})", t.Text)
	case tLBrace:
		p.next()
		var fields []nrc.Field
		if _, ok := p.accept(tRBrace); ok {
			return nrc.TupleType{}, nil
		}
		for {
			f, err := p.expectIdent("a field name")
			if err != nil {
				return nil, err
			}
			if err := p.expect(tColon, "after the field name"); err != nil {
				return nil, err
			}
			ft, err := p.parseType()
			if err != nil {
				return nil, err
			}
			fields = append(fields, nrc.Field{Name: f.Text, Type: ft})
			if _, ok := p.accept(tComma); !ok {
				break
			}
		}
		if err := p.expect(tRBrace, "to close the tuple type"); err != nil {
			return nil, err
		}
		return nrc.TupleType{Fields: fields}, nil
	}
	return nil, p.errHere("expected a type, found %s", p.describeHere())
}
