package plan

import (
	"fmt"
	"sync/atomic"
)

// VecNote records the vectorizer's verdict for one narrow operator. The
// executor's kernel compiler (internal/exec) is the authority: it annotates
// plans after optimization, so Explain always shows exactly what the engine
// will do. OK means the operator's expressions compile to vector kernels;
// otherwise Reason names the first construct that forced the row interpreter.
type VecNote struct {
	OK     bool
	Reason string
}

func (v *VecNote) describe() string {
	if v == nil {
		return ""
	}
	if v.OK {
		return " [vec]"
	}
	return " [no-vec: " + v.Reason + "]"
}

// VecStats counts vectorization outcomes over the narrow operators of a
// compiled plan (per compilation when returned by the annotator;
// GlobalVecStats aggregates process-wide for serving metrics).
type VecStats struct {
	// OpsVectorized counts Select/Extend/Project operators taking the
	// columnar batch path.
	OpsVectorized int64
	// OpsFallback counts narrow operators kept on the row interpreter, with
	// the reason rendered in Explain.
	OpsFallback int64
}

// Add accumulates o into s.
func (s *VecStats) Add(o VecStats) {
	s.OpsVectorized += o.OpsVectorized
	s.OpsFallback += o.OpsFallback
}

// Total returns the number of annotated operators.
func (s *VecStats) Total() int64 { return s.OpsVectorized + s.OpsFallback }

func (s *VecStats) String() string {
	return fmt.Sprintf("vectorized=%d fallback=%d", s.OpsVectorized, s.OpsFallback)
}

// globalVec aggregates vectorization verdicts across every annotation call in
// the process, for serving-layer metrics (tranced /metrics).
var globalVec struct {
	vectorized, fallback atomic.Int64
}

// RecordVecStats folds one compilation's verdicts into the process-wide
// counters.
func RecordVecStats(st VecStats) {
	globalVec.vectorized.Add(st.OpsVectorized)
	globalVec.fallback.Add(st.OpsFallback)
}

// GlobalVecStats returns the process-wide vectorization counters.
func GlobalVecStats() VecStats {
	return VecStats{
		OpsVectorized: globalVec.vectorized.Load(),
		OpsFallback:   globalVec.fallback.Load(),
	}
}
