package plan

import (
	"math"
	"strings"
	"testing"

	"github.com/trance-go/trance/internal/index"
	"github.com/trance-go/trance/internal/nrc"
)

func intCol(idx int, name string) *Col { return &Col{Idx: idx, Name: name, Typ: nrc.IntT} }

func scanOf(input string, names ...string) *Scan {
	cols := make([]Column, len(names))
	for i, n := range names {
		cols[i] = Column{Name: n, Type: nrc.IntT}
	}
	return &Scan{Input: input, Cols: cols}
}

// tables: R is large (10k rows, 1 MB), S is small (100 rows, 4 KB).
func testTables() map[string]TableEstimate {
	return map[string]TableEstimate{
		"R": {Rows: 10000, Bytes: 1 << 20, Cols: map[string]ColEstimate{
			"a": {NDV: 5000, Min: int64(0), Max: int64(9999)},
			"b": {NDV: 10},
		}},
		"S": {Rows: 100, Bytes: 4 << 10, Cols: map[string]ColEstimate{
			"k": {NDV: 100, Min: int64(0), Max: int64(99)},
		}},
	}
}

func findJoin(t *testing.T, op Op) *Join {
	t.Helper()
	var found *Join
	var walk func(Op)
	walk = func(o Op) {
		if j, ok := o.(*Join); ok {
			found = j
		}
		for _, c := range o.Children() {
			walk(c)
		}
	}
	walk(op)
	if found == nil {
		t.Fatalf("no join in plan:\n%s", Explain(op))
	}
	return found
}

func TestAnnotateBroadcastSmallRight(t *testing.T) {
	op := &Join{L: scanOf("R", "a", "b"), R: scanOf("S", "k"), LCols: []int{0}, RCols: []int{0}}
	out := Annotate(op, testTables(), 64<<10)
	j := findJoin(t, out)
	if j.Cost == nil {
		t.Fatalf("join not annotated:\n%s", Explain(out))
	}
	if j.Cost.Method != JoinBroadcast || j.Cost.Swapped {
		t.Fatalf("cost = %+v, want broadcast unswapped", j.Cost)
	}
	// |R ⋈ S| ≈ 10000·100 / max(NDV) = 10000·100/5000 = 200.
	if j.Cost.EstRows != 200 {
		t.Fatalf("est rows = %d, want 200", j.Cost.EstRows)
	}
	if !strings.Contains(j.Describe(), "est_rows=200 join=broadcast") {
		t.Fatalf("describe = %q", j.Describe())
	}
	// The original plan must not have been mutated.
	if op.Cost != nil {
		t.Fatal("Annotate mutated the input plan")
	}
}

func TestAnnotateShuffleLargeBothSides(t *testing.T) {
	op := &Join{L: scanOf("R", "a", "b"), R: scanOf("R", "a", "b"), LCols: []int{0}, RCols: []int{0}}
	out := Annotate(op, testTables(), 64<<10)
	j := findJoin(t, out)
	if j.Cost == nil || j.Cost.Method != JoinShuffle {
		t.Fatalf("cost = %+v, want shuffle", j.Cost)
	}
}

// TestAnnotateSwapsSmallLeft: when only the LEFT side fits under the limit, an
// inner join is swapped (small side becomes the broadcast build side) and a
// projection above restores the original column order.
func TestAnnotateSwapsSmallLeft(t *testing.T) {
	op := &Join{L: scanOf("S", "k"), R: scanOf("R", "a", "b"), LCols: []int{0}, RCols: []int{0}}
	out := Annotate(op, testTables(), 64<<10)
	p, ok := out.(*Project)
	if !ok {
		t.Fatalf("want column-restoring projection at root, got %T:\n%s", out, Explain(out))
	}
	j := findJoin(t, out)
	if j.Cost == nil || j.Cost.Method != JoinBroadcast || !j.Cost.Swapped {
		t.Fatalf("cost = %+v, want swapped broadcast", j.Cost)
	}
	// Swapped join scans R on the left, S on the right.
	if j.L.(*Scan).Input != "R" || j.R.(*Scan).Input != "S" {
		t.Fatalf("join sides not swapped: L=%s R=%s", j.L.(*Scan).Input, j.R.(*Scan).Input)
	}
	// The projection restores the original schema: k, a, b.
	want := []string{"k", "a", "b"}
	cols := p.Columns()
	if len(cols) != len(want) {
		t.Fatalf("restored columns = %v", cols)
	}
	for i, w := range want {
		if cols[i].Name != w {
			t.Fatalf("restored column %d = %s, want %s", i, cols[i].Name, w)
		}
	}
}

func TestAnnotateNeverSwapsOuterJoin(t *testing.T) {
	op := &Join{L: scanOf("S", "k"), R: scanOf("R", "a", "b"), LCols: []int{0}, RCols: []int{0}, Outer: true}
	out := Annotate(op, testTables(), 64<<10)
	j := findJoin(t, out)
	if _, isProject := out.(*Project); isProject {
		t.Fatal("outer join was swapped")
	}
	if j.Cost == nil || j.Cost.Method != JoinShuffle || j.Cost.Swapped {
		t.Fatalf("cost = %+v, want unswapped shuffle", j.Cost)
	}
	// Outer joins keep at least the left side's rows.
	if j.Cost.EstRows < 100 {
		t.Fatalf("outer join est rows = %d, want ≥ |S| = 100", j.Cost.EstRows)
	}
}

func TestAnnotateCrossJoinUnannotated(t *testing.T) {
	op := &Join{L: scanOf("R", "a", "b"), R: scanOf("S", "k")}
	out := Annotate(op, testTables(), 64<<10)
	if j := findJoin(t, out); j.Cost != nil {
		t.Fatalf("cross join annotated: %+v (executor always broadcasts it)", j.Cost)
	}
}

func TestAnnotateUnknownInputPropagates(t *testing.T) {
	op := &Join{L: scanOf("Mystery", "x"), R: scanOf("S", "k"), LCols: []int{0}, RCols: []int{0}}
	out := Annotate(op, testTables(), 64<<10)
	if j := findJoin(t, out); j.Cost != nil {
		t.Fatalf("join over unknown input annotated: %+v", j.Cost)
	}
}

func TestAnnotateSelectivityShrinksJoinSide(t *testing.T) {
	// σ(a = 7) over R keeps ~1/5000 of rows, far under the broadcast limit,
	// so the filtered R broadcasts even though the raw R would not.
	sel := &Select{
		In:   scanOf("R", "a", "b"),
		Pred: &CmpE{Op: nrc.Eq, L: intCol(0, "a"), R: &ConstE{Val: int64(7), Typ: nrc.IntT}},
	}
	op := &Join{L: scanOf("R", "a", "b"), R: sel, LCols: []int{0}, RCols: []int{0}}
	out := Annotate(op, testTables(), 64<<10)
	j := findJoin(t, out)
	if j.Cost == nil || j.Cost.Method != JoinBroadcast {
		t.Fatalf("cost = %+v, want broadcast of the filtered side", j.Cost)
	}
}

func TestAnnotateEmptyTablesNoop(t *testing.T) {
	op := &Join{L: scanOf("R", "a", "b"), R: scanOf("S", "k"), LCols: []int{0}, RCols: []int{0}}
	if out := Annotate(op, nil, 64<<10); out != op {
		t.Fatal("Annotate without statistics should return the plan unchanged")
	}
}

func TestSelectivityFormulas(t *testing.T) {
	cols := []ColEstimate{
		{NDV: 100, Min: int64(0), Max: int64(1000)},
		{NDV: 4},
	}
	eq := &CmpE{Op: nrc.Eq, L: intCol(0, "a"), R: &ConstE{Val: int64(5), Typ: nrc.IntT}}
	if s := Selectivity(eq, cols); s != 0.01 {
		t.Fatalf("eq selectivity = %v, want 1/NDV = 0.01", s)
	}
	ne := &CmpE{Op: nrc.Ne, L: intCol(1, "b"), R: &ConstE{Val: int64(5), Typ: nrc.IntT}}
	if s := Selectivity(ne, cols); s != 0.75 {
		t.Fatalf("ne selectivity = %v, want 1-1/4 = 0.75", s)
	}
	lt := &CmpE{Op: nrc.Lt, L: intCol(0, "a"), R: &ConstE{Val: int64(250), Typ: nrc.IntT}}
	if s := Selectivity(lt, cols); s != 0.25 {
		t.Fatalf("range selectivity = %v, want (250-0)/(1000-0) = 0.25", s)
	}
	// Constant on the left flips the operator: 250 < a  ≡  a > 250.
	flipped := &CmpE{Op: nrc.Lt, L: &ConstE{Val: int64(250), Typ: nrc.IntT}, R: intCol(0, "a")}
	if s := Selectivity(flipped, cols); s != 0.75 {
		t.Fatalf("flipped selectivity = %v, want 0.75", s)
	}
	and := &BoolE{And: true, L: eq, R: lt}
	if s := Selectivity(and, cols); math.Abs(s-0.0025) > 1e-12 {
		t.Fatalf("and selectivity = %v, want 0.01·0.25", s)
	}
	or := &BoolE{And: false, L: eq, R: lt}
	if s := Selectivity(or, cols); math.Abs(s-(0.01+0.25-0.0025)) > 1e-12 {
		t.Fatalf("or selectivity = %v", s)
	}
	not := &NotE{E: lt}
	if s := Selectivity(not, cols); s != 0.75 {
		t.Fatalf("not selectivity = %v, want 0.75", s)
	}
	// Unknown shapes default to 1/3.
	if s := Selectivity(&ConstE{Val: "x", Typ: nrc.StringT}, cols); s != 1.0/3 {
		t.Fatalf("default selectivity = %v, want 1/3", s)
	}
}

// indexedTables is testTables with secondary-index structures declared on R:
// an ordered index on a (range-capable) and a hash index on b (point-only).
func indexedTables() map[string]TableEstimate {
	tabs := testTables()
	r := tabs["R"]
	a := r.Cols["a"]
	a.IndexOrdered = true
	r.Cols["a"] = a
	b := r.Cols["b"]
	b.IndexHash = true
	r.Cols["b"] = b
	tabs["R"] = r
	return tabs
}

func findIndexScan(op Op) *IndexScan {
	var found *IndexScan
	var walk func(Op)
	walk = func(o Op) {
		if is, ok := o.(*IndexScan); ok {
			found = is
		}
		for _, c := range o.Children() {
			walk(c)
		}
	}
	walk(op)
	return found
}

// TestIndexScanRangeGate pins the split conversion gate: the ablation
// benchmark measured the gathered range scan losing to the fused full scan at
// ~10% selectivity (3.8ms vs 2.1ms), so a range span may only convert below
// the measured crossover (~1/18), while equality probes keep the original 0.5
// gate.
func TestIndexScanRangeGate(t *testing.T) {
	mkSel := func(op nrc.CmpOp, col *Col, k int64) *Select {
		return &Select{
			In:   scanOf("R", "a", "b"),
			Pred: &CmpE{Op: op, L: col, R: &ConstE{Val: k, Typ: nrc.IntT}},
		}
	}

	// a < 1000 over [0,9999] ≈ 10% selectivity: the regression case. This is
	// exactly where the ablation measured the index arm losing, so it must NOT
	// plan an IndexScan anymore.
	wide, stats := AnnotateOpts(mkSel(nrc.Lt, intCol(0, "a"), 1000), indexedTables(), AnnotateOptions{BroadcastLimit: 64 << 10})
	if is := findIndexScan(wide); is != nil {
		t.Fatalf("~10%% range predicate converted to IndexScan (gate regressed):\n%s", Explain(wide))
	}
	if stats.Planned != 0 {
		t.Fatalf("planner counted %d index scans for the rejected range", stats.Planned)
	}

	// a < 400 ≈ 4% selectivity sits under the measured crossover and still
	// converts.
	tight, stats := AnnotateOpts(mkSel(nrc.Lt, intCol(0, "a"), 400), indexedTables(), AnnotateOptions{BroadcastLimit: 64 << 10})
	is := findIndexScan(tight)
	if is == nil {
		t.Fatalf("4%% range predicate no longer converts:\n%s", Explain(tight))
	}
	if is.Kind != index.Ordered {
		t.Fatalf("range span planned kind %v, want ordered", is.Kind)
	}
	if stats.Planned != 1 {
		t.Fatalf("planner counted %d index scans, want 1", stats.Planned)
	}

	// b = k has selectivity 1/NDV(b) = 10%: far above the range gate but a
	// hash point probe, which keeps the looser equality gate and still plans
	// (this is the tpch.PointLookup shape).
	point, _ := AnnotateOpts(mkSel(nrc.Eq, intCol(1, "b"), 3), indexedTables(), AnnotateOptions{BroadcastLimit: 64 << 10})
	is = findIndexScan(point)
	if is == nil {
		t.Fatalf("10%% equality probe no longer converts:\n%s", Explain(point))
	}
	if is.Kind != index.Hash {
		t.Fatalf("point probe planned kind %v, want hash", is.Kind)
	}

	// An equality conjunct that also tightens a range span to a point keeps
	// the equality gate: a = 42 over NDV 5000 is far under 0.5 either way, but
	// the span is a point, so it must use the ordered index without tripping
	// the range gate.
	eqa, _ := AnnotateOpts(mkSel(nrc.Eq, intCol(0, "a"), 42), indexedTables(), AnnotateOptions{BroadcastLimit: 64 << 10})
	if findIndexScan(eqa) == nil {
		t.Fatalf("point predicate on ordered column no longer converts:\n%s", Explain(eqa))
	}
}
