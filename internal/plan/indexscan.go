package plan

import (
	"fmt"

	"github.com/trance-go/trance/internal/index"
)

// IndexScan reads the rows of a named input whose key column falls in Spans,
// resolved through the input's bound secondary index instead of a full scan.
// It is produced by the cost model (Annotate) from a pushed-down Select
// directly above a Scan when the consumed conjuncts restrict an indexed
// column selectively enough; residual conjuncts stay in a σ above the node.
type IndexScan struct {
	Input string
	Cols  []Column
	// Col and ColIdx name the indexed key column.
	Col    string
	ColIdx int
	// Kind is the access structure the planner chose (hash for pure point
	// spans, range otherwise).
	Kind index.Kind
	// Spans is the union of key intervals to gather; an empty list matches no
	// row (contradictory conjuncts). NULL keys never match, mirroring the σ
	// NULL→false semantics of the conjuncts the spans replace.
	Spans []index.Span
	// Fallback is the predicate equivalent of Spans. The executor applies it
	// as a plain filter when no usable index is bound at run time, so an
	// IndexScan plan never changes results — only access paths.
	Fallback Expr
	// EstRows is the cost model's output cardinality estimate.
	EstRows int64
}

func (s *IndexScan) Columns() []Column { return s.Cols }
func (s *IndexScan) Children() []Op    { return nil }
func (s *IndexScan) Describe() string {
	return fmt.Sprintf("IndexScan %s [index=%s col=%s spans=%s est_rows=%s]",
		s.Input, s.Kind, s.Col, index.FormatSpans(s.Spans), itoa(s.EstRows))
}

// IndexStats counts the planner's index decisions for one compilation;
// process-wide totals live in the index package counters.
type IndexStats struct {
	// Planned counts Select→IndexScan conversions.
	Planned int64
}

// Add accumulates another stats record into s.
func (s *IndexStats) Add(o IndexStats) { s.Planned += o.Planned }

func (s *IndexStats) String() string { return fmt.Sprintf("scans=%d", s.Planned) }
