package plan

import (
	"strings"
	"testing"

	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/value"
)

func scanR() *Scan {
	return &Scan{Input: "R", Cols: []Column{
		{Name: "a", Type: nrc.IntT},
		{Name: "b", Type: nrc.StringT},
		{Name: "c", Type: nrc.RealT},
	}}
}

func TestExprEval(t *testing.T) {
	row := Row{int64(3), "x", 2.5}
	add := &ArithE{Op: nrc.Add, L: &Col{Idx: 0, Typ: nrc.IntT}, R: &ConstE{Val: int64(4), Typ: nrc.IntT}, Typ: nrc.IntT}
	if add.Eval(row).(int64) != 7 {
		t.Fatal("arith")
	}
	cmp := &CmpE{Op: nrc.Lt, L: &Col{Idx: 2, Typ: nrc.RealT}, R: &ConstE{Val: 3.0, Typ: nrc.RealT}}
	if cmp.Eval(row) != true {
		t.Fatal("cmp")
	}
	// NULL semantics.
	nullRow := Row{nil, "x", nil}
	if add.Eval(nullRow) != nil {
		t.Fatal("null arithmetic must be NULL")
	}
	if cmp.Eval(nullRow) != false {
		t.Fatal("null comparison must be false")
	}
	cast := &CastNullBag{E: &Col{Idx: 0, Typ: nrc.BagOf(nrc.IntT)}}
	if len(cast.Eval(nullRow).(value.Bag)) != 0 {
		t.Fatal("cast of NULL must be empty bag")
	}
}

func TestMkLabelAndLabelField(t *testing.T) {
	mk := &MkLabel{Site: 5, Args: []Expr{&Col{Idx: 0, Typ: nrc.IntT}}}
	l := mk.Eval(Row{int64(9)}).(value.Label)
	if l.Site != 5 || l.Payload[0].(int64) != 9 {
		t.Fatalf("label: %v", l)
	}
	lf := &LabelField{E: &ConstE{Val: l, Typ: nrc.LabelT}, Site: 5, Idx: 0, NParams: 1, Typ: nrc.IntT}
	if lf.Eval(nil).(int64) != 9 {
		t.Fatal("label field")
	}
	// Site mismatch with non-label param type yields NULL.
	lf2 := &LabelField{E: &ConstE{Val: l, Typ: nrc.LabelT}, Site: 6, Idx: 0, NParams: 2, Typ: nrc.IntT}
	if lf2.Eval(nil) != nil {
		t.Fatal("mismatched site should be NULL")
	}
	// Label-reuse: single label-typed param returns the label itself.
	lf3 := &LabelField{E: &ConstE{Val: l, Typ: nrc.LabelT}, Site: 6, Idx: 0, NParams: 1, Typ: nrc.LabelT}
	if !value.Equal(lf3.Eval(nil), l) {
		t.Fatal("label reuse destructuring failed")
	}
}

func TestRemapExpr(t *testing.T) {
	e := &ArithE{Op: nrc.Mul, L: &Col{Idx: 2, Typ: nrc.RealT}, R: &Col{Idx: 0, Typ: nrc.RealT}, Typ: nrc.RealT}
	r := RemapExpr(e, map[int]int{2: 0, 0: 1}).(*ArithE)
	if r.L.(*Col).Idx != 0 || r.R.(*Col).Idx != 1 {
		t.Fatal("remap failed")
	}
	cols := ExprCols(e, nil)
	if len(cols) != 2 {
		t.Fatalf("expr cols: %v", cols)
	}
}

func TestColumnsThroughOperators(t *testing.T) {
	s := scanR()
	ext := &Extend{In: s, Exprs: []NamedExpr{{Name: "d", Expr: &ConstE{Val: int64(1), Typ: nrc.IntT}}}}
	if len(ext.Columns()) != 4 || ext.Columns()[3].Name != "d" {
		t.Fatalf("extend cols: %v", ext.Columns())
	}
	j := &Join{L: s, R: scanR(), LCols: []int{0}, RCols: []int{0}}
	if len(j.Columns()) != 6 {
		t.Fatal("join cols")
	}
	n := &Nest{In: s, GroupCols: []int{0}, ValueCols: []int{1, 2}, Agg: AggBag, OutName: "g"}
	cols := n.Columns()
	if len(cols) != 2 || cols[1].Name != "g" {
		t.Fatalf("nest cols: %v", cols)
	}
	if _, ok := cols[1].Type.(nrc.BagType); !ok {
		t.Fatal("nest output must be bag-typed")
	}
}

func TestExplainContainsOperators(t *testing.T) {
	s := scanR()
	op := &Nest{In: &Join{L: s, R: scanR(), LCols: []int{0}, RCols: []int{0}, Outer: true},
		GroupCols: []int{0}, ValueCols: []int{1}, Agg: AggBag, OutName: "g"}
	text := Explain(op)
	for _, frag := range []string{"Γ⊎", "⟕", "Scan R"} {
		if !strings.Contains(text, frag) {
			t.Fatalf("explain missing %q:\n%s", frag, text)
		}
	}
}

func TestPruneDropsDeadColumns(t *testing.T) {
	// π(a) over Join(R, R on a=a): columns b and c of both sides are dead;
	// pruning must narrow both join inputs.
	s1, s2 := scanR(), scanR()
	j := &Join{L: s1, R: s2, LCols: []int{0}, RCols: []int{0}}
	p := &Project{In: j, Outs: []NamedExpr{{Name: "a", Expr: &Col{Idx: 0, Name: "a", Typ: nrc.IntT}}}}
	pruned := Prune(p)
	// The join's inputs must now be 1-column projections.
	pj := pruned.(*Project).In.(*Join)
	if len(pj.L.Columns()) != 1 || len(pj.R.Columns()) != 1 {
		t.Fatalf("join inputs not narrowed:\n%s", Explain(pruned))
	}
}

func TestPruneKeepsNestSemantics(t *testing.T) {
	s := scanR()
	n := &Nest{In: s, GroupCols: []int{0}, ValueCols: []int{1}, Agg: AggBag, OutName: "g"}
	pruned := Prune(n).(*Nest)
	// Column c is unused: input must be narrowed to (a, b).
	if len(pruned.In.Columns()) != 2 {
		t.Fatalf("nest input not narrowed:\n%s", Explain(pruned))
	}
	if len(pruned.GroupCols) != 1 || len(pruned.ValueCols) != 1 {
		t.Fatal("nest columns lost")
	}
}

func TestPruneDropsUnusedExtend(t *testing.T) {
	s := scanR()
	ext := &Extend{In: s, Exprs: []NamedExpr{
		{Name: "dead", Expr: &ArithE{Op: nrc.Add, L: &Col{Idx: 0, Typ: nrc.IntT}, R: &Col{Idx: 0, Typ: nrc.IntT}, Typ: nrc.IntT}},
	}}
	p := &Project{In: ext, Outs: []NamedExpr{{Name: "b", Expr: &Col{Idx: 1, Name: "b", Typ: nrc.StringT}}}}
	pruned := Prune(p)
	if _, isExtend := pruned.(*Project).In.(*Extend); isExtend {
		t.Fatalf("dead extend not eliminated:\n%s", Explain(pruned))
	}
}
