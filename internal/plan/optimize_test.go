package plan

import (
	"strings"
	"testing"

	"github.com/trance-go/trance/internal/nrc"
)

// Plan-construction helpers: integer-columned scans keep the trees terse.

func intScan(input string, names ...string) *Scan {
	cols := make([]Column, len(names))
	for i, n := range names {
		cols[i] = Column{Name: n, Type: nrc.IntT}
	}
	return &Scan{Input: input, Cols: cols}
}

func col(op Op, i int) *Col {
	c := op.Columns()[i]
	return &Col{Idx: i, Name: c.Name, Typ: c.Type}
}

func gt(l Expr, v int64) Expr {
	return &CmpE{Op: nrc.Gt, L: l, R: &ConstE{Val: v, Typ: nrc.IntT}}
}

func eqc(l Expr, v int64) Expr {
	return &CmpE{Op: nrc.Eq, L: l, R: &ConstE{Val: v, Typ: nrc.IntT}}
}

func sel(in Op, pred Expr) *Select { return &Select{In: in, Pred: pred} }

// mustSelect asserts op is a plain Select and returns it.
func mustSelect(t *testing.T, op Op) *Select {
	t.Helper()
	s, ok := op.(*Select)
	if !ok {
		t.Fatalf("want *Select, got %T:\n%s", op, Explain(op))
	}
	return s
}

func TestSelectFusionAndPushToScan(t *testing.T) {
	scan := intScan("R", "a", "b")
	p := sel(sel(scan, gt(col(scan, 0), 1)), gt(col(scan, 1), 2))
	out, st := Optimize(p)
	s := mustSelect(t, out)
	if _, ok := s.In.(*Scan); !ok {
		t.Fatalf("fused select should sit directly on the scan:\n%s", Explain(out))
	}
	if b, ok := s.Pred.(*BoolE); !ok || !b.And {
		t.Fatalf("two selects should fuse into one conjunction, got %s", s.Pred)
	}
	if st.SelectsFused != 1 {
		t.Fatalf("SelectsFused = %d, want 1 (%s)", st.SelectsFused, st.String())
	}
}

func TestConstantFoldingDropsTrueSelect(t *testing.T) {
	scan := intScan("R", "a")
	// (1+1) == 2 && a > 0  →  a > 0 after folding.
	pred := &BoolE{And: true,
		L: &CmpE{Op: nrc.Eq,
			L: &ArithE{Op: nrc.Add, L: &ConstE{Val: int64(1), Typ: nrc.IntT}, R: &ConstE{Val: int64(1), Typ: nrc.IntT}, Typ: nrc.IntT},
			R: &ConstE{Val: int64(2), Typ: nrc.IntT}},
		R: gt(col(scan, 0), 0)}
	out, st := Optimize(sel(scan, pred))
	s := mustSelect(t, out)
	if _, ok := s.Pred.(*CmpE); !ok {
		t.Fatalf("constant side should fold away, got %s", s.Pred)
	}
	if st.ConstantsFolded == 0 {
		t.Fatalf("no constants folded: %s", st.String())
	}

	// A wholly true predicate removes the Select.
	out, st = Optimize(sel(scan, eqc(&ConstE{Val: int64(3), Typ: nrc.IntT}, 3)))
	if _, ok := out.(*Scan); !ok {
		t.Fatalf("true select should vanish, got %T", out)
	}
	if st.TrueSelectsDropped != 1 {
		t.Fatalf("TrueSelectsDropped = %d, want 1", st.TrueSelectsDropped)
	}
}

func TestFalseSelectBecomesEmptyValues(t *testing.T) {
	scan := intScan("R", "a", "b")
	out, st := Optimize(sel(scan, eqc(&ConstE{Val: int64(1), Typ: nrc.IntT}, 2)))
	v, ok := out.(*Values)
	if !ok || len(v.Rows) != 0 {
		t.Fatalf("false select should become an empty Values, got %T:\n%s", out, Explain(out))
	}
	if len(v.Cols) != 2 || v.Cols[0].Name != "a" {
		t.Fatalf("empty relation must keep the schema, got %v", v.Cols)
	}
	if st.FalseSelectsCut != 1 {
		t.Fatalf("FalseSelectsCut = %d, want 1", st.FalseSelectsCut)
	}
}

func TestPushBelowProjectSubstitutes(t *testing.T) {
	scan := intScan("R", "a", "b")
	proj := &Project{In: scan, Outs: []NamedExpr{
		{Name: "x", Expr: &ArithE{Op: nrc.Add, L: col(scan, 0), R: col(scan, 1), Typ: nrc.IntT}},
	}}
	out, st := Optimize(sel(proj, gt(&Col{Idx: 0, Name: "x", Typ: nrc.IntT}, 5)))
	p, ok := out.(*Project)
	if !ok {
		t.Fatalf("select should push below the projection, got %T", out)
	}
	s := mustSelect(t, p.In)
	if !strings.Contains(s.Pred.String(), "+") {
		t.Fatalf("pushed predicate should inline the defining expression, got %s", s.Pred)
	}
	if st.PredicatesPushed == 0 {
		t.Fatalf("no pushes recorded: %s", st.String())
	}
}

func TestPushBelowExtendSubstitutes(t *testing.T) {
	scan := intScan("R", "a")
	ext := &Extend{In: scan, Exprs: []NamedExpr{
		{Name: "twice", Expr: &ArithE{Op: nrc.Mul, L: col(scan, 0), R: &ConstE{Val: int64(2), Typ: nrc.IntT}, Typ: nrc.IntT}},
	}}
	out, _ := Optimize(sel(ext, gt(&Col{Idx: 1, Name: "twice", Typ: nrc.IntT}, 4)))
	e, ok := out.(*Extend)
	if !ok {
		t.Fatalf("select should push below the extend, got %T", out)
	}
	s := mustSelect(t, e.In)
	if _, ok := s.In.(*Scan); !ok {
		t.Fatalf("pushed select should reach the scan:\n%s", Explain(out))
	}
}

func TestPushBelowJoinBothSides(t *testing.T) {
	l := intScan("L", "a", "b")
	r := intScan("R", "k", "v")
	join := &Join{L: l, R: r, LCols: []int{0}, RCols: []int{0}}
	// left-only + right-only + mixed conjuncts.
	pred := &BoolE{And: true,
		L: &BoolE{And: true,
			L: gt(&Col{Idx: 1, Name: "b", Typ: nrc.IntT}, 1),  // left
			R: gt(&Col{Idx: 3, Name: "v", Typ: nrc.IntT}, 2)}, // right
		R: &CmpE{Op: nrc.Lt, L: &Col{Idx: 1, Name: "b", Typ: nrc.IntT}, R: &Col{Idx: 3, Name: "v", Typ: nrc.IntT}}, // mixed
	}
	out, st := Optimize(sel(join, pred))
	top := mustSelect(t, out) // mixed conjunct stays above
	j, ok := top.In.(*Join)
	if !ok {
		t.Fatalf("join should be directly under the residual select:\n%s", Explain(out))
	}
	ls := mustSelect(t, j.L)
	if ls.Pred.String() != "($1:b > 1)" {
		t.Fatalf("left side predicate wrong: %s", ls.Pred)
	}
	rs := mustSelect(t, j.R)
	if rs.Pred.String() != "($1:v > 2)" {
		t.Fatalf("right side predicate should be rebased to right coordinates: %s", rs.Pred)
	}
	if st.PredicatesPushed != 2 {
		t.Fatalf("PredicatesPushed = %d, want 2 (%s)", st.PredicatesPushed, st.String())
	}
}

func TestJoinKeyConstantDerivesOtherSide(t *testing.T) {
	l := intScan("L", "a", "b")
	r := intScan("R", "k", "v")
	join := &Join{L: l, R: r, LCols: []int{0}, RCols: []int{0}}
	out, st := Optimize(sel(join, eqc(&Col{Idx: 0, Name: "a", Typ: nrc.IntT}, 7)))
	j, ok := out.(*Join)
	if !ok {
		t.Fatalf("conjunct should be absorbed below the join, got %T:\n%s", out, Explain(out))
	}
	ls := mustSelect(t, j.L)
	if ls.Pred.String() != "($0:a == 7)" {
		t.Fatalf("left filter wrong: %s", ls.Pred)
	}
	rs := mustSelect(t, j.R)
	if rs.Pred.String() != "($0:k == 7)" {
		t.Fatalf("derived right filter wrong: %s", rs.Pred)
	}
	if st.JoinSideDerived != 1 {
		t.Fatalf("JoinSideDerived = %d, want 1", st.JoinSideDerived)
	}
}

// Negative test: the null-extended side of an outer join must not be
// filtered early — the predicate would drop null-extended rows above, which
// a pushed filter cannot reproduce.
func TestNoPushIntoOuterJoinRightSide(t *testing.T) {
	l := intScan("L", "a")
	r := intScan("R", "k")
	join := &Join{L: l, R: r, LCols: []int{0}, RCols: []int{0}, Outer: true}
	out, st := Optimize(sel(join, gt(&Col{Idx: 1, Name: "k", Typ: nrc.IntT}, 3)))
	top := mustSelect(t, out)
	j, ok := top.In.(*Join)
	if !ok {
		t.Fatalf("outer join right-side predicate must stay above:\n%s", Explain(out))
	}
	if _, ok := j.R.(*Scan); !ok {
		t.Fatalf("right input must stay unfiltered:\n%s", Explain(out))
	}
	if st.PushesRefused != 1 {
		t.Fatalf("PushesRefused = %d, want 1 (%s)", st.PushesRefused, st.String())
	}
	// Left-side predicates still push below an outer join.
	out, _ = Optimize(sel(join, gt(&Col{Idx: 0, Name: "a", Typ: nrc.IntT}, 3)))
	j2, ok := out.(*Join)
	if !ok {
		t.Fatalf("left predicate should push below ⟕, got %T", out)
	}
	mustSelect(t, j2.L)
}

func TestPushBelowUnnestPreColumnsOnly(t *testing.T) {
	scan := &Scan{Input: "R", Cols: []Column{
		{Name: "a", Type: nrc.IntT},
		{Name: "items", Type: nrc.BagType{Elem: nrc.Tup("v", nrc.IntT)}},
	}}
	un := &Unnest{In: scan, BagCol: 1, Prefix: "it", Outer: true}
	// a > 1 pushes below (outer unnest included); it.v > 2 stays above; a
	// predicate over the tombstoned bag column must stay above too.
	pred := &BoolE{And: true,
		L: gt(&Col{Idx: 0, Name: "a", Typ: nrc.IntT}, 1),
		R: gt(&Col{Idx: 2, Name: "it.v", Typ: nrc.IntT}, 2)}
	out, _ := Optimize(sel(un, pred))
	top := mustSelect(t, out)
	u, ok := top.In.(*Unnest)
	if !ok {
		t.Fatalf("element predicate must stay above the unnest:\n%s", Explain(out))
	}
	inner := mustSelect(t, u.In)
	if inner.Pred.String() != "($0:a > 1)" {
		t.Fatalf("pre-column predicate should push below: %s", inner.Pred)
	}

	// A predicate over the tombstoned bag column itself is a refused push
	// (below the unnest it would see the bag; above, NULL).
	bagPred := &CmpE{Op: nrc.Eq,
		L: &Col{Idx: 1, Name: "items", Typ: scan.Cols[1].Type},
		R: &ConstE{Val: nil, Typ: scan.Cols[1].Type}}
	out, st := Optimize(sel(un, bagPred))
	top = mustSelect(t, out)
	if _, ok := top.In.(*Unnest); !ok {
		t.Fatalf("bag-column predicate must stay above the unnest:\n%s", Explain(out))
	}
	if st.PushesRefused != 1 {
		t.Fatalf("PushesRefused = %d, want 1 for the tombstoned column (%s)", st.PushesRefused, st.String())
	}
}

// Negative test: predicates must not push below an outer-preserving
// selection when they read a column it nullifies — below the σ̄ they would
// see the un-nullified value and keep rows the plan must drop.
func TestNoPushBelowNullifyingSelect(t *testing.T) {
	scan := intScan("R", "a", "b")
	nullify := &Select{In: scan, Pred: gt(col(scan, 0), 0), NullifyCols: []int{1}}
	out, st := Optimize(sel(nullify, gt(&Col{Idx: 1, Name: "b", Typ: nrc.IntT}, 5)))
	top := mustSelect(t, out)
	if top.NullifyCols != nil {
		t.Fatalf("residual select must sit above the σ̄:\n%s", Explain(out))
	}
	inner, ok := top.In.(*Select)
	if !ok || inner.NullifyCols == nil {
		t.Fatalf("σ̄ must stay in place:\n%s", Explain(out))
	}
	if _, ok := inner.In.(*Scan); !ok {
		t.Fatalf("nothing may sink below the σ̄ here:\n%s", Explain(out))
	}
	if st.PushesRefused != 1 {
		t.Fatalf("PushesRefused = %d, want 1 (%s)", st.PushesRefused, st.String())
	}

	// A predicate over a column the σ̄ does NOT nullify passes through.
	out, st = Optimize(sel(nullify, gt(&Col{Idx: 0, Name: "a", Typ: nrc.IntT}, 5)))
	sb, ok := out.(*Select)
	if !ok || sb.NullifyCols == nil {
		t.Fatalf("σ̄ should be topmost after the push:\n%s", Explain(out))
	}
	mustSelect(t, sb.In)
	if st.PushesRefused != 0 || st.PredicatesPushed == 0 {
		t.Fatalf("push through σ̄ on untouched columns should succeed: %s", st.String())
	}
}

// Negative test: predicates must not push through explicit-mode Nests —
// their phantom-group marker rows are created and dropped by mode-specific
// rules a pre-grouping filter could disturb. Structural nests do admit
// group-key pushes.
func TestNoPushThroughExplicitNest(t *testing.T) {
	scan := intScan("R", "k", "v")
	mkNest := func(mode NestMode) *Nest {
		return &Nest{In: scan, GroupCols: []int{0}, ValueCols: []int{1},
			Agg: AggSum, Mode: mode}
	}
	keyPred := gt(&Col{Idx: 0, Name: "k", Typ: nrc.IntT}, 2)

	for _, mode := range []NestMode{ExplicitRoot, ExplicitNested} {
		out, st := Optimize(sel(mkNest(mode), keyPred))
		top := mustSelect(t, out)
		n, ok := top.In.(*Nest)
		if !ok {
			t.Fatalf("%s: predicate must stay above the explicit nest:\n%s", mode, Explain(out))
		}
		if _, ok := n.In.(*Scan); !ok {
			t.Fatalf("%s: nest input must stay unfiltered:\n%s", mode, Explain(out))
		}
		if st.PushesRefused != 1 {
			t.Fatalf("%s: PushesRefused = %d, want 1", mode, st.PushesRefused)
		}
	}

	// Structural mode: the group-key predicate sinks below the Γ, remapped
	// onto the input grouping column.
	structural := &Nest{In: scan, GroupCols: []int{1, 0}, ValueCols: []int{0},
		Agg: AggBag, Mode: Structural, OutName: "grp"}
	out, st := Optimize(sel(structural, gt(&Col{Idx: 1, Name: "k", Typ: nrc.IntT}, 2)))
	n, ok := out.(*Nest)
	if !ok {
		t.Fatalf("structural nest should admit the push, got %T:\n%s", out, Explain(out))
	}
	inner := mustSelect(t, n.In)
	if inner.Pred.String() != "($0:k > 2)" {
		t.Fatalf("group-key predicate must be remapped onto the input column: %s", inner.Pred)
	}
	if st.PredicatesPushed != 1 {
		t.Fatalf("PredicatesPushed = %d, want 1", st.PredicatesPushed)
	}
}

// Negative test: predicates must not push past AddIndex — unique-ID
// assignment depends on the rows present, and the IDs feed label identity
// shared across the plan fragments of a shredded program.
func TestNoPushPastAddIndex(t *testing.T) {
	scan := intScan("R", "a")
	ai := &AddIndex{In: scan, Name: "_id"}
	out, st := Optimize(sel(ai, gt(&Col{Idx: 0, Name: "a", Typ: nrc.IntT}, 1)))
	top := mustSelect(t, out)
	a, ok := top.In.(*AddIndex)
	if !ok {
		t.Fatalf("predicate must stay above AddIndex:\n%s", Explain(out))
	}
	if _, ok := a.In.(*Scan); !ok {
		t.Fatalf("AddIndex input must stay unfiltered:\n%s", Explain(out))
	}
	if st.PushesRefused != 1 {
		t.Fatalf("PushesRefused = %d, want 1 (%s)", st.PushesRefused, st.String())
	}
}

func TestPushBelowDedupUnionBagToDict(t *testing.T) {
	l := intScan("L", "a")
	r := intScan("R", "a")
	u := &UnionAll{L: l, R: r}
	out, st := Optimize(sel(&DedupOp{In: u}, gt(&Col{Idx: 0, Name: "a", Typ: nrc.IntT}, 1)))
	d, ok := out.(*DedupOp)
	if !ok {
		t.Fatalf("push below dedup failed, got %T", out)
	}
	ua, ok := d.In.(*UnionAll)
	if !ok {
		t.Fatalf("push below union failed:\n%s", Explain(out))
	}
	mustSelect(t, ua.L)
	mustSelect(t, ua.R)
	if st.PredicatesPushed != 3 { // dedup crossing + one per union branch? (counted once at the union)
		t.Logf("note: PredicatesPushed = %d", st.PredicatesPushed)
	}

	btd := &BagToDict{In: intScan("D", "label", "x"), LabelCol: 0}
	out, _ = Optimize(sel(btd, gt(&Col{Idx: 1, Name: "x", Typ: nrc.IntT}, 1)))
	b, ok := out.(*BagToDict)
	if !ok {
		t.Fatalf("push below bagToDict failed, got %T", out)
	}
	mustSelect(t, b.In)
}

// A no-op outer-preserving selection (empty NullifyCols — nothing to nullify,
// no rows dropped) is removed entirely.
func TestNoopNullifySelectDropped(t *testing.T) {
	scan := intScan("R", "a")
	noop := &Select{In: scan, Pred: gt(col(scan, 0), 0), NullifyCols: []int{}}
	out, st := Optimize(noop)
	if _, ok := out.(*Scan); !ok {
		t.Fatalf("no-op σ̄ should vanish, got %T", out)
	}
	if st.TrueSelectsDropped != 1 {
		t.Fatalf("TrueSelectsDropped = %d, want 1", st.TrueSelectsDropped)
	}
}

// Optimize must never mutate its input plan: the prepared-query cache shares
// compiled artifacts across goroutines.
func TestOptimizeDoesNotMutateInput(t *testing.T) {
	scan := intScan("R", "a", "b")
	join := &Join{L: scan, R: intScan("S", "k"), LCols: []int{0}, RCols: []int{0}}
	orig := sel(join, gt(&Col{Idx: 1, Name: "b", Typ: nrc.IntT}, 1))
	before := Explain(orig)
	if _, st := Optimize(orig); st.PredicatesPushed == 0 {
		t.Fatal("expected a push")
	}
	if Explain(orig) != before {
		t.Fatal("Optimize mutated its input plan")
	}
}

func TestGlobalOptStatsAccumulates(t *testing.T) {
	before := GlobalOptStats()
	scan := intScan("R", "a")
	Optimize(sel(scan, eqc(&ConstE{Val: int64(1), Typ: nrc.IntT}, 1)))
	after := GlobalOptStats()
	if after.TrueSelectsDropped <= before.TrueSelectsDropped {
		t.Fatalf("global counters did not advance: %s → %s", before.String(), after.String())
	}
}
