// Package plan defines the algebraic plan language of the paper (Section 2):
// selection, projection, equi-join and left outer join, unnest and outer
// unnest, the nest operators Γ⊎ and Γ+, dedup, union, and BagToDict — plus a
// scalar expression IR evaluated per row. The unnesting stage (internal/core)
// produces plans in this language; internal/exec binds them to the dataflow
// engine.
package plan

import (
	"fmt"
	"strings"

	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/value"
)

// Row is an engine row.
type Row = value.Tuple

// Expr is a scalar expression evaluated against a row. NULL propagates
// through arithmetic; comparisons involving NULL are false.
type Expr interface {
	Eval(Row) value.Value
	Type() nrc.Type
	String() string
}

// Col references a column by position.
type Col struct {
	Idx  int
	Name string
	Typ  nrc.Type
}

func (c *Col) Eval(r Row) value.Value { return r[c.Idx] }
func (c *Col) Type() nrc.Type         { return c.Typ }
func (c *Col) String() string         { return fmt.Sprintf("$%d:%s", c.Idx, c.Name) }

// ConstE is a literal.
type ConstE struct {
	Val value.Value
	Typ nrc.Type
}

func (c *ConstE) Eval(Row) value.Value { return c.Val }
func (c *ConstE) Type() nrc.Type       { return c.Typ }
func (c *ConstE) String() string       { return fmt.Sprintf("%v", c.Val) }

// CmpE compares two scalars; NULL operands yield false.
type CmpE struct {
	Op   nrc.CmpOp
	L, R Expr
}

func (e *CmpE) Eval(r Row) value.Value {
	l, rr := e.L.Eval(r), e.R.Eval(r)
	if l == nil || rr == nil {
		return false
	}
	c := value.Compare(l, rr)
	switch e.Op {
	case nrc.Eq:
		return c == 0
	case nrc.Ne:
		return c != 0
	case nrc.Lt:
		return c < 0
	case nrc.Le:
		return c <= 0
	case nrc.Gt:
		return c > 0
	default:
		return c >= 0
	}
}
func (e *CmpE) Type() nrc.Type { return nrc.BoolT }
func (e *CmpE) String() string { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }

// ArithE applies a scalar primitive with NULL propagation.
type ArithE struct {
	Op   nrc.ArithOp
	L, R Expr
	Typ  nrc.Type
}

func (e *ArithE) Eval(r Row) value.Value { return nrc.EvalArith(e.Op, e.L.Eval(r), e.R.Eval(r)) }
func (e *ArithE) Type() nrc.Type         { return e.Typ }
func (e *ArithE) String() string         { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }

// NotE negates a boolean; NULL yields false.
type NotE struct{ E Expr }

func (e *NotE) Eval(r Row) value.Value {
	v := e.E.Eval(r)
	if v == nil {
		return false
	}
	return !v.(bool)
}
func (e *NotE) Type() nrc.Type { return nrc.BoolT }
func (e *NotE) String() string { return fmt.Sprintf("¬%s", e.E) }

// BoolE is && or || with NULL treated as false.
type BoolE struct {
	And  bool
	L, R Expr
}

func (e *BoolE) Eval(r Row) value.Value {
	l, _ := e.L.Eval(r).(bool)
	if e.And {
		if !l {
			return false
		}
		rv, _ := e.R.Eval(r).(bool)
		return rv
	}
	if l {
		return true
	}
	rv, _ := e.R.Eval(r).(bool)
	return rv
}
func (e *BoolE) Type() nrc.Type { return nrc.BoolT }
func (e *BoolE) String() string {
	op := "||"
	if e.And {
		op = "&&"
	}
	return fmt.Sprintf("(%s %s %s)", e.L, op, e.R)
}

// MkTuple builds a tuple value from sub-expressions.
type MkTuple struct {
	Names []string
	Exprs []Expr
}

func (e *MkTuple) Eval(r Row) value.Value {
	out := make(value.Tuple, len(e.Exprs))
	for i, sub := range e.Exprs {
		out[i] = sub.Eval(r)
	}
	return out
}

func (e *MkTuple) Type() nrc.Type {
	fs := make([]nrc.Field, len(e.Exprs))
	for i := range e.Exprs {
		fs[i] = nrc.Field{Name: e.Names[i], Type: e.Exprs[i].Type()}
	}
	return nrc.TupleType{Fields: fs}
}
func (e *MkTuple) String() string { return fmt.Sprintf("tuple%v", e.Names) }

// MkLabel constructs a shredding label at a NewLabel occurrence. The
// label-reuse refinement of value.NewLabel applies.
type MkLabel struct {
	Site int32
	Args []Expr
}

func (e *MkLabel) Eval(r Row) value.Value {
	payload := make([]value.Value, len(e.Args))
	for i, a := range e.Args {
		payload[i] = a.Eval(r)
	}
	return value.NewLabel(e.Site, payload...)
}
func (e *MkLabel) Type() nrc.Type { return nrc.LabelT }
func (e *MkLabel) String() string { return fmt.Sprintf("label#%d/%d", e.Site, len(e.Args)) }

// LabelField destructures a label payload (the match-label construct). On a
// label from a different site it yields the label itself when the match has a
// single label-typed parameter (the label-reuse refinement), NULL otherwise.
type LabelField struct {
	E       Expr
	Site    int32
	Idx     int
	NParams int
	Typ     nrc.Type
}

func (e *LabelField) Eval(r Row) value.Value {
	v := e.E.Eval(r)
	if v == nil {
		return nil
	}
	l, ok := v.(value.Label)
	if !ok {
		return nil
	}
	if l.Site == e.Site {
		if e.Idx < len(l.Payload) {
			return l.Payload[e.Idx]
		}
		return nil
	}
	if e.NParams == 1 && nrc.TypesEqual(e.Typ, nrc.LabelT) {
		return l
	}
	return nil
}
func (e *LabelField) Type() nrc.Type { return e.Typ }
func (e *LabelField) String() string { return fmt.Sprintf("%s#%d[%d]", e.E, e.Site, e.Idx) }

// CastNullBag turns NULL into the empty bag — the final NULL cast applied at
// output boundaries for bag-typed columns (paper Section 2: Γ casts NULLs).
type CastNullBag struct{ E Expr }

func (e *CastNullBag) Eval(r Row) value.Value {
	v := e.E.Eval(r)
	if v == nil {
		return value.Bag{}
	}
	return v
}
func (e *CastNullBag) Type() nrc.Type { return e.E.Type() }
func (e *CastNullBag) String() string { return fmt.Sprintf("castBag(%s)", e.E) }

// ExprCols appends the column indexes referenced by e to out.
func ExprCols(e Expr, out []int) []int {
	switch x := e.(type) {
	case *Col:
		return append(out, x.Idx)
	case *ConstE:
		return out
	case *CmpE:
		return ExprCols(x.R, ExprCols(x.L, out))
	case *ArithE:
		return ExprCols(x.R, ExprCols(x.L, out))
	case *NotE:
		return ExprCols(x.E, out)
	case *BoolE:
		return ExprCols(x.R, ExprCols(x.L, out))
	case *MkTuple:
		for _, s := range x.Exprs {
			out = ExprCols(s, out)
		}
		return out
	case *MkLabel:
		for _, s := range x.Args {
			out = ExprCols(s, out)
		}
		return out
	case *LabelField:
		return ExprCols(x.E, out)
	case *CastNullBag:
		return ExprCols(x.E, out)
	default:
		panic(fmt.Sprintf("plan: unknown expr %T", e))
	}
}

// RemapExpr rewrites column references through a position map; the map must
// cover every referenced column.
func RemapExpr(e Expr, remap map[int]int) Expr {
	return substCols(e, func(c *Col) Expr {
		n, ok := remap[c.Idx]
		if !ok {
			panic(fmt.Sprintf("plan: remap missing column %d (%s)", c.Idx, c.Name))
		}
		return &Col{Idx: n, Name: c.Name, Typ: c.Typ}
	})
}

// NamedExpr pairs an output column name with its defining expression.
type NamedExpr struct {
	Name string
	Expr Expr
}

func namedExprString(nes []NamedExpr) string {
	parts := make([]string, len(nes))
	for i, ne := range nes {
		parts[i] = ne.Name + "=" + ne.Expr.String()
	}
	return strings.Join(parts, ", ")
}
