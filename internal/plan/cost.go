// Cost-based plan annotation: the statistics-driven layer on top of the
// rule-based optimizer. Annotate walks an optimized plan bottom-up, propagating
// cardinality and byte estimates from per-input table statistics
// (internal/stats collects them; the runner threads them in via Config.Stats),
// estimating predicate selectivity from NDV and min/max, and stamping every
// equi-join with a Costs annotation that fixes the join method at compile time:
// broadcast when the build side's estimated bytes fit under the broadcast
// limit, shuffle otherwise — and, for inner joins whose left side is the only
// broadcastable one, the inputs are swapped (with a column-restoring
// projection) so the small side becomes the build side. Explain renders the
// annotations as "est_rows=…/join=broadcast|shuffle". See docs/COSTMODEL.md.
package plan

import (
	"math"

	"github.com/trance-go/trance/internal/index"
	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/value"
)

// ColEstimate summarizes one scalar column for the cost model. The zero value
// means "unknown".
type ColEstimate struct {
	// NDV is the (estimated) number of distinct values; 0 = unknown.
	NDV int64
	// Min and Max bound the column's non-NULL values; nil = unknown.
	Min, Max value.Value
	// HeavyFraction is the fraction of rows carried by heavy keys (keys whose
	// per-partition sample frequency exceeds the skew detector's threshold).
	HeavyFraction float64
	// IndexHash and IndexOrdered report which secondary-index structures exist
	// for the column on the bound input, enabling Select→IndexScan conversion.
	IndexHash    bool
	IndexOrdered bool
}

// TableEstimate summarizes one input for the cost model.
type TableEstimate struct {
	// Generation stamps the catalog registration the statistics were collected
	// from, so re-registered datasets never reuse stale cost decisions (it is
	// folded into the compilation fingerprint). 0 outside a catalog.
	Generation int64
	// Rows and Bytes size the whole input.
	Rows  int64
	Bytes int64
	// Cols maps column names to their estimates.
	Cols map[string]ColEstimate
}

// JoinMethod is the physical join choice fixed by the cost model.
type JoinMethod int

// Join methods.
const (
	JoinShuffle JoinMethod = iota
	JoinBroadcast
)

func (m JoinMethod) String() string {
	if m == JoinBroadcast {
		return "broadcast"
	}
	return "shuffle"
}

// Costs is the cost-model annotation on a Join node.
type Costs struct {
	// EstRows is the estimated output cardinality.
	EstRows int64
	// BuildBytes is the estimated size of the build (right) side.
	BuildBytes int64
	// Method is the physical join choice the executor honors.
	Method JoinMethod
	// Swapped records that the cost model exchanged the join inputs so the
	// smaller side is broadcast (inner equi-joins only; a projection above
	// restores the original column order).
	Swapped bool
}

func (c *Costs) describe() string {
	s := " [est_rows=" + itoa(c.EstRows) + " join=" + c.Method.String()
	if c.Swapped {
		s += " swapped"
	}
	return s + "]"
}

func itoa(n int64) string {
	if n < 0 {
		return "?"
	}
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return string(buf[i:])
}

// nodeEst carries the bottom-up estimate of one plan node. rows < 0 means the
// node's cardinality is unknown (some scan had no statistics) — joins above it
// get no annotation and fall back to the executor's runtime heuristic.
type nodeEst struct {
	rows  float64
	bytes float64
	cols  []ColEstimate // by output position; zero value = unknown
}

func unknownEst(n int) nodeEst { return nodeEst{rows: -1, bytes: -1, cols: make([]ColEstimate, n)} }

func (e nodeEst) known() bool { return e.rows >= 0 }

// avgRowBytes estimates one row's footprint, defaulting when unknown.
func (e nodeEst) avgRowBytes() float64 {
	if e.rows > 0 && e.bytes > 0 {
		return e.bytes / e.rows
	}
	return 64
}

// defaultFanout is the assumed per-row bag size of an Unnest (and its inverse
// the assumed grouping factor of a Nest) when statistics say nothing about
// inner-collection sizes.
const defaultFanout = 4

// Annotate rewrites the plan with cost annotations: every Join whose both
// sides have known estimates gets a Costs annotation choosing broadcast vs
// shuffle under broadcastLimit (and possibly swapped inputs). The input plan
// is not mutated; shared subtrees are rebuilt. tables maps Scan input names to
// their statistics — inputs without statistics propagate "unknown" upward.
func Annotate(op Op, tables map[string]TableEstimate, broadcastLimit int64) Op {
	out, _ := AnnotateOpts(op, tables, AnnotateOptions{BroadcastLimit: broadcastLimit})
	return out
}

// AnnotateOptions configures AnnotateOpts.
type AnnotateOptions struct {
	// BroadcastLimit is the byte budget under which a join side is broadcast.
	BroadcastLimit int64
	// NoIndexScan disables Select→IndexScan conversion (the index ablation).
	NoIndexScan bool
}

// AnnotateOpts is Annotate with options, additionally returning the planner's
// index decisions for this plan.
func AnnotateOpts(op Op, tables map[string]TableEstimate, opts AnnotateOptions) (Op, IndexStats) {
	if len(tables) == 0 {
		return op, IndexStats{}
	}
	a := &annotator{tables: tables, limit: opts.BroadcastLimit, noIndex: opts.NoIndexScan}
	out, _ := a.walk(op)
	return out, a.idx
}

type annotator struct {
	tables  map[string]TableEstimate
	limit   int64
	noIndex bool
	idx     IndexStats
}

func (a *annotator) walk(op Op) (Op, nodeEst) {
	switch x := op.(type) {
	case *Scan:
		te, ok := a.tables[x.Input]
		if !ok {
			return x, unknownEst(len(x.Cols))
		}
		est := nodeEst{rows: float64(te.Rows), bytes: float64(te.Bytes), cols: make([]ColEstimate, len(x.Cols))}
		for i, c := range x.Cols {
			est.cols[i] = te.Cols[c.Name]
		}
		return x, est

	case *Values:
		return x, nodeEst{rows: float64(len(x.Rows)), bytes: float64(value.SizeRows(x.Rows)), cols: make([]ColEstimate, len(x.Cols))}

	case *Select:
		in, e := a.walk(x.In)
		if scan, isScan := in.(*Scan); isScan && x.NullifyCols == nil && e.known() && !a.noIndex {
			if op, est, ok := a.tryIndexScan(scan, x.Pred, e); ok {
				return op, est
			}
		}
		out := &Select{In: in, Pred: x.Pred, NullifyCols: x.NullifyCols}
		if !e.known() {
			return out, unknownEst(len(out.Columns()))
		}
		if x.NullifyCols != nil {
			// Outer-preserving selection keeps every row.
			return out, e
		}
		sel := Selectivity(x.Pred, e.cols)
		return out, nodeEst{rows: e.rows * sel, bytes: e.bytes * sel, cols: e.cols}

	case *Extend:
		in, e := a.walk(x.In)
		out := &Extend{In: in, Exprs: x.Exprs}
		cols := append(append([]ColEstimate{}, e.cols...), make([]ColEstimate, len(x.Exprs))...)
		return out, nodeEst{rows: e.rows, bytes: e.bytes, cols: cols}

	case *Project:
		in, e := a.walk(x.In)
		out := &Project{In: in, Outs: x.Outs, CastBags: x.CastBags}
		cols := make([]ColEstimate, len(x.Outs))
		if e.known() {
			for i, ne := range x.Outs {
				if c, ok := ne.Expr.(*Col); ok && c.Idx < len(e.cols) {
					cols[i] = e.cols[c.Idx]
				}
			}
		}
		return out, nodeEst{rows: e.rows, bytes: e.bytes, cols: cols}

	case *AddIndex:
		in, e := a.walk(x.In)
		out := &AddIndex{In: in, Name: x.Name}
		return out, nodeEst{rows: e.rows, bytes: e.bytes, cols: append(append([]ColEstimate{}, e.cols...), ColEstimate{})}

	case *Unnest:
		in, e := a.walk(x.In)
		out := &Unnest{In: in, BagCol: x.BagCol, Prefix: x.Prefix, Outer: x.Outer}
		n := len(out.Columns())
		if !e.known() {
			return out, unknownEst(n)
		}
		cols := make([]ColEstimate, n)
		copy(cols, e.cols)
		cols[x.BagCol] = ColEstimate{} // tombstoned
		return out, nodeEst{rows: e.rows * defaultFanout, bytes: e.bytes * defaultFanout, cols: cols}

	case *Join:
		return a.join(x)

	case *Nest:
		in, e := a.walk(x.In)
		out := &Nest{In: in, GroupCols: x.GroupCols, GDepth: x.GDepth, CarryCols: x.CarryCols,
			ValueCols: x.ValueCols, PresenceCols: x.PresenceCols, Agg: x.Agg, Mode: x.Mode,
			OutName: x.OutName, ScalarElem: x.ScalarElem}
		n := len(out.Columns())
		if !e.known() {
			return out, unknownEst(n)
		}
		cols := make([]ColEstimate, n)
		for i, c := range x.GroupCols {
			if c < len(e.cols) {
				cols[i] = e.cols[c]
			}
		}
		rows := math.Max(1, e.rows/defaultFanout)
		return out, nodeEst{rows: rows, bytes: e.bytes, cols: cols}

	case *DedupOp:
		in, e := a.walk(x.In)
		out := &DedupOp{In: in}
		return out, e

	case *UnionAll:
		l, le := a.walk(x.L)
		r, re := a.walk(x.R)
		out := &UnionAll{L: l, R: r}
		if !le.known() || !re.known() {
			return out, unknownEst(len(out.Columns()))
		}
		return out, nodeEst{rows: le.rows + re.rows, bytes: le.bytes + re.bytes, cols: le.cols}

	case *BagToDict:
		in, e := a.walk(x.In)
		return &BagToDict{In: in, LabelCol: x.LabelCol}, e

	default:
		// Unknown operator: leave untouched, estimate unknown.
		return op, unknownEst(len(op.Columns()))
	}
}

// join estimates an equi-join's output and fixes the physical method. With
// both sides known: broadcast when the right side fits under the limit; for
// inner joins where only the LEFT side fits, the inputs are swapped (and a
// projection restores column order) so the small side is built and broadcast.
func (a *annotator) join(x *Join) (Op, nodeEst) {
	l, le := a.walk(x.L)
	r, re := a.walk(x.R)
	out := &Join{L: l, R: r, LCols: x.LCols, RCols: x.RCols, Outer: x.Outer}
	outCols := append(append([]ColEstimate{}, le.cols...), re.cols...)
	if !le.known() || !re.known() {
		return out, nodeEst{rows: -1, bytes: -1, cols: outCols}
	}

	var rows float64
	if len(x.LCols) == 0 {
		rows = le.rows * re.rows
	} else {
		denom := float64(0)
		for i := range x.LCols {
			var dl, dr int64
			if x.LCols[i] < len(le.cols) {
				dl = le.cols[x.LCols[i]].NDV
			}
			if x.RCols[i] < len(re.cols) {
				dr = re.cols[x.RCols[i]].NDV
			}
			denom = math.Max(denom, math.Max(float64(dl), float64(dr)))
		}
		if denom == 0 {
			denom = math.Max(1, math.Max(le.rows, re.rows))
		}
		rows = le.rows * re.rows / denom
	}
	if x.Outer {
		rows = math.Max(rows, le.rows)
	}
	est := nodeEst{rows: rows, bytes: rows * (le.avgRowBytes() + re.avgRowBytes()), cols: outCols}

	if len(x.LCols) == 0 {
		// Cross joins always broadcast the right side (executor invariant);
		// no annotation needed.
		return out, est
	}
	cost := &Costs{EstRows: int64(rows), BuildBytes: int64(re.bytes), Method: JoinShuffle}
	if a.limit > 0 && re.bytes <= float64(a.limit) {
		cost.Method = JoinBroadcast
	} else if a.limit > 0 && !x.Outer && le.bytes <= float64(a.limit) {
		// Only the left side fits: swap so it becomes the broadcast build
		// side. Inner equi-joins are symmetric up to column order, which the
		// projection restores; outer joins are not swappable.
		cost.Method = JoinBroadcast
		cost.Swapped = true
		cost.BuildBytes = int64(le.bytes)
		swapped := &Join{L: r, R: l, LCols: x.RCols, RCols: x.LCols, Cost: cost}
		lw, rw := len(l.Columns()), len(r.Columns())
		sc := swapped.Columns()
		outs := make([]NamedExpr, 0, lw+rw)
		for i := 0; i < lw; i++ {
			outs = append(outs, NamedExpr{Name: sc[rw+i].Name, Expr: &Col{Idx: rw + i, Name: sc[rw+i].Name, Typ: sc[rw+i].Type}})
		}
		for i := 0; i < rw; i++ {
			outs = append(outs, NamedExpr{Name: sc[i].Name, Expr: &Col{Idx: i, Name: sc[i].Name, Typ: sc[i].Type}})
		}
		return &Project{In: swapped, Outs: outs}, est
	}
	out.Cost = cost
	return out, est
}

// Index-scan conversion thresholds: a Select over a Scan becomes an IndexScan
// only when the consumed conjuncts are estimated to keep at most this fraction
// of the input — above it, the gather (random access + output materialization)
// is not expected to beat the fused full scan. The two shapes cross over at
// very different points, so they gate separately:
//
//   - Equality probes answer from the hash map in O(matches); even a
//     half-selective point predicate beats rescanning everything.
//   - Range spans walk the ordered index and gather row-by-row; the ablation
//     benchmark (BenchmarkIndexScanAblation) measured the gathered range scan
//     ~1.8× SLOWER than the fused full scan at ~10% selectivity, putting the
//     break-even near 1/18 of the input. Gate with a little headroom below
//     that crossover.
const (
	indexScanMaxEqSelectivity    = 0.5
	indexScanMaxRangeSelectivity = 0.055
)

// tryIndexScan converts a pushed-down Select directly above a Scan into an
// IndexScan when some `col op const` conjuncts restrict an indexed column
// selectively enough. Consumed conjuncts become Spans (their conjunction is
// kept as the node's runtime Fallback); the remaining conjuncts stay in a σ
// above the new node.
func (a *annotator) tryIndexScan(scan *Scan, pred Expr, e nodeEst) (Op, nodeEst, bool) {
	te, ok := a.tables[scan.Input]
	if !ok {
		return nil, nodeEst{}, false
	}
	type cand struct {
		conj  Expr
		op    nrc.CmpOp
		konst *ConstE
	}
	conjs := splitConjExpr(pred)
	byCol := map[int][]cand{}
	colName := map[int]string{}
	for _, c := range conjs {
		cmp, isCmp := c.(*CmpE)
		if !isCmp {
			continue
		}
		col, konst, op := normalizeCmp(cmp)
		if col == nil || konst.Val == nil {
			// NULL constants compare to false everywhere; leave the conjunct
			// residual (it will drop every row by itself).
			continue
		}
		if col.Idx < 0 || col.Idx >= len(scan.Cols) {
			continue
		}
		// The predicate's Col carries a display name scoped to the query
		// (e.g. "r.id"); the scan's own column at the same position carries
		// the statistics key.
		ce := te.Cols[scan.Cols[col.Idx].Name]
		switch op {
		case nrc.Eq:
			if !ce.IndexHash && !ce.IndexOrdered {
				continue
			}
		case nrc.Lt, nrc.Le, nrc.Gt, nrc.Ge:
			if !ce.IndexOrdered {
				continue
			}
		default:
			continue
		}
		byCol[col.Idx] = append(byCol[col.Idx], cand{c, op, konst})
		colName[col.Idx] = scan.Cols[col.Idx].Name
	}
	if len(byCol) == 0 {
		return nil, nodeEst{}, false
	}

	// Pick the column whose candidate conjuncts are most selective
	// (tie-broken by position for determinism).
	best, bestSel := -1, 2.0
	for idx, cs := range byCol {
		sel := 1.0
		for _, c := range cs {
			sel *= Selectivity(c.conj, e.cols)
		}
		if sel < bestSel || (sel == bestSel && idx < best) {
			best, bestSel = idx, sel
		}
	}

	// Intersect the chosen column's conjuncts into one span.
	var span index.Span
	tightenLo := func(v value.Value, inc bool) {
		if span.Lo == nil {
			span.Lo, span.LoInc = v, inc
			return
		}
		if c := value.Compare(v, span.Lo); c > 0 {
			span.Lo, span.LoInc = v, inc
		} else if c == 0 {
			span.LoInc = span.LoInc && inc
		}
	}
	tightenHi := func(v value.Value, inc bool) {
		if span.Hi == nil {
			span.Hi, span.HiInc = v, inc
			return
		}
		if c := value.Compare(v, span.Hi); c < 0 {
			span.Hi, span.HiInc = v, inc
		} else if c == 0 {
			span.HiInc = span.HiInc && inc
		}
	}
	consumed := make([]Expr, 0, len(byCol[best]))
	ranged := false
	for _, c := range byCol[best] {
		consumed = append(consumed, c.conj)
		switch c.op {
		case nrc.Eq:
			tightenLo(c.konst.Val, true)
			tightenHi(c.konst.Val, true)
		case nrc.Lt:
			tightenHi(c.konst.Val, false)
			ranged = true
		case nrc.Le:
			tightenHi(c.konst.Val, true)
			ranged = true
		case nrc.Gt:
			tightenLo(c.konst.Val, false)
			ranged = true
		case nrc.Ge:
			tightenLo(c.konst.Val, true)
			ranged = true
		}
	}
	empty := span.Empty()
	// A span assembled from any range conjunct walks the ordered index, so it
	// gates at the measured range crossover even if equality conjuncts also
	// tightened it; pure point probes keep the looser equality gate.
	gate := indexScanMaxEqSelectivity
	if ranged && !span.IsPoint() {
		gate = indexScanMaxRangeSelectivity
	}
	if !empty && bestSel > gate {
		return nil, nodeEst{}, false
	}
	if empty {
		bestSel = 0
	}

	ce := te.Cols[colName[best]]
	var spans []index.Span
	if !empty {
		spans = []index.Span{span}
	}
	kind := index.Ordered
	if (empty || span.IsPoint()) && ce.IndexHash {
		kind = index.Hash
	}
	node := &IndexScan{
		Input: scan.Input, Cols: scan.Cols,
		Col: colName[best], ColIdx: best,
		Kind: kind, Spans: spans,
		Fallback: conjoin(consumed),
		EstRows:  int64(e.rows * bestSel),
	}
	a.idx.Planned++
	index.RecordPlanned()

	est := nodeEst{rows: e.rows * bestSel, bytes: e.bytes * bestSel, cols: e.cols}
	var residual []Expr
	for _, c := range conjs {
		used := false
		for _, u := range consumed {
			if c == u {
				used = true
				break
			}
		}
		if !used {
			residual = append(residual, c)
		}
	}
	if len(residual) == 0 {
		return node, est, true
	}
	rp := conjoin(residual)
	rsel := Selectivity(rp, e.cols)
	return &Select{In: node, Pred: rp},
		nodeEst{rows: est.rows * rsel, bytes: est.bytes * rsel, cols: e.cols}, true
}

// conjoin folds conjuncts back into one predicate.
func conjoin(preds []Expr) Expr {
	pred := preds[0]
	for _, p := range preds[1:] {
		pred = &BoolE{And: true, L: pred, R: p}
	}
	return pred
}

// Selectivity estimates the fraction of rows a predicate keeps, given
// per-column estimates (by position). Equality against a constant selects
// 1/NDV; range comparisons interpolate against min/max when the column and
// constant are numeric; conjunctions multiply, disjunctions add (capped), and
// anything unrecognized defaults to 1/3.
func Selectivity(pred Expr, cols []ColEstimate) float64 {
	const dflt = 1.0 / 3
	switch e := pred.(type) {
	case *ConstE:
		if b, ok := e.Val.(bool); ok {
			if b {
				return 1
			}
			return 0
		}
		return dflt
	case *NotE:
		return clamp01(1 - Selectivity(e.E, cols))
	case *BoolE:
		l, r := Selectivity(e.L, cols), Selectivity(e.R, cols)
		if e.And {
			return l * r
		}
		return clamp01(l + r - l*r)
	case *CmpE:
		return cmpSelectivity(e, cols)
	}
	return dflt
}

func cmpSelectivity(e *CmpE, cols []ColEstimate) float64 {
	const dflt = 1.0 / 3
	col, konst, op := normalizeCmp(e)
	if col == nil {
		// Column-to-column comparison: use the larger NDV when known.
		lc, lok := e.L.(*Col)
		rc, rok := e.R.(*Col)
		if lok && rok && e.Op == nrc.Eq {
			ndv := int64(0)
			if lc.Idx < len(cols) {
				ndv = cols[lc.Idx].NDV
			}
			if rc.Idx < len(cols) && cols[rc.Idx].NDV > ndv {
				ndv = cols[rc.Idx].NDV
			}
			if ndv > 0 {
				return 1 / float64(ndv)
			}
		}
		return dflt
	}
	var ce ColEstimate
	if col.Idx < len(cols) {
		ce = cols[col.Idx]
	}
	switch op {
	case nrc.Eq:
		if ce.NDV > 0 {
			return 1 / float64(ce.NDV)
		}
		return 0.1
	case nrc.Ne:
		if ce.NDV > 0 {
			return clamp01(1 - 1/float64(ce.NDV))
		}
		return 0.9
	default: // range comparison
		lo, lok := numeric(ce.Min)
		hi, hok := numeric(ce.Max)
		k, kok := numeric(konst.Val)
		if !lok || !hok || !kok || hi <= lo {
			return dflt
		}
		frac := clamp01((k - lo) / (hi - lo))
		if op == nrc.Gt || op == nrc.Ge {
			frac = 1 - frac
		}
		return clamp01(frac)
	}
}

// normalizeCmp returns the (column, constant, op) of a col-vs-const
// comparison, flipping the operator when the constant is on the left. Nil
// column means the comparison has another shape.
func normalizeCmp(e *CmpE) (*Col, *ConstE, nrc.CmpOp) {
	if c, ok := e.L.(*Col); ok {
		if k, ok := e.R.(*ConstE); ok {
			return c, k, e.Op
		}
	}
	if k, ok := e.L.(*ConstE); ok {
		if c, ok := e.R.(*Col); ok {
			return c, k, flipCmp(e.Op)
		}
	}
	return nil, nil, e.Op
}

func flipCmp(op nrc.CmpOp) nrc.CmpOp {
	switch op {
	case nrc.Lt:
		return nrc.Gt
	case nrc.Le:
		return nrc.Ge
	case nrc.Gt:
		return nrc.Lt
	case nrc.Ge:
		return nrc.Le
	}
	return op
}

func numeric(v value.Value) (float64, bool) {
	switch n := v.(type) {
	case int64:
		return float64(n), true
	case float64:
		return n, true
	case value.Date:
		return float64(n), true
	}
	return 0, false
}

func clamp01(f float64) float64 { return math.Min(1, math.Max(0, f)) }
