package plan

import (
	"fmt"
	"strings"

	"github.com/trance-go/trance/internal/nrc"
)

// Column describes one output column of an operator. Columns may be
// bag-typed: the standard compilation route carries nested collections
// through the pipeline.
type Column struct {
	Name string
	Type nrc.Type
}

// Op is a plan operator.
type Op interface {
	Columns() []Column
	Children() []Op
	Describe() string
}

// AggKind selects the nest aggregate: bag union (Γ⊎) or sum (Γ+).
type AggKind int

// Nest aggregates.
const (
	AggBag AggKind = iota
	AggSum
)

// NestMode controls the NULL-casting behaviour of Γ (see DESIGN.md):
// structural nests (from tuple-constructor nesting) always keep their group;
// explicit nests (from sumBy/groupBy) emit NULL marker rows below the root
// and drop pure-phantom groups at the root.
type NestMode int

// Nest modes.
const (
	Structural NestMode = iota
	ExplicitNested
	ExplicitRoot
)

func (m NestMode) String() string {
	return [...]string{"structural", "explicit", "explicit-root"}[m]
}

// Scan reads a named input (a base relation, a shredded input dictionary, or
// the result of a prior assignment).
type Scan struct {
	Input string
	Cols  []Column
}

func (s *Scan) Columns() []Column { return s.Cols }
func (s *Scan) Children() []Op    { return nil }
func (s *Scan) Describe() string  { return "Scan " + s.Input }

// Values is an inline literal relation (used for constant queries).
type Values struct {
	Cols []Column
	Rows []Row
}

func (v *Values) Columns() []Column { return v.Cols }
func (v *Values) Children() []Op    { return nil }
func (v *Values) Describe() string  { return fmt.Sprintf("Values(%d rows)", len(v.Rows)) }

// Select filters rows. With NullifyCols set, rows failing the predicate are
// kept but their NullifyCols are set to NULL: the outer-level-preserving
// selection used below the root so outer tuples survive with empty inner
// collections.
type Select struct {
	In          Op
	Pred        Expr
	NullifyCols []int
	// Vec is the vectorizer's verdict (set by exec.AnnotateVectorize).
	Vec *VecNote
}

func (s *Select) Columns() []Column { return s.In.Columns() }
func (s *Select) Children() []Op    { return []Op{s.In} }
func (s *Select) Describe() string {
	if s.NullifyCols != nil {
		return fmt.Sprintf("σ̄ %s (nullify %v)%s", s.Pred, s.NullifyCols, s.Vec.describe())
	}
	return fmt.Sprintf("σ %s%s", s.Pred, s.Vec.describe())
}

// Extend appends computed columns, keeping all input columns in place.
type Extend struct {
	In    Op
	Exprs []NamedExpr
	// Vec is the vectorizer's verdict (set by exec.AnnotateVectorize).
	Vec *VecNote
}

func (e *Extend) Columns() []Column {
	in := e.In.Columns()
	out := make([]Column, 0, len(in)+len(e.Exprs))
	out = append(out, in...)
	for _, ne := range e.Exprs {
		out = append(out, Column{Name: ne.Name, Type: ne.Expr.Type()})
	}
	return out
}
func (e *Extend) Children() []Op   { return []Op{e.In} }
func (e *Extend) Describe() string { return "ext " + namedExprString(e.Exprs) + e.Vec.describe() }

// Project replaces the schema with the given output expressions. CastBags
// additionally converts NULL bag-typed outputs to empty bags — applied at the
// root of a query (the final NULL cast of the Γ machinery).
type Project struct {
	In       Op
	Outs     []NamedExpr
	CastBags bool
	// Vec is the vectorizer's verdict (set by exec.AnnotateVectorize).
	Vec *VecNote
}

func (p *Project) Columns() []Column {
	out := make([]Column, len(p.Outs))
	for i, ne := range p.Outs {
		out[i] = Column{Name: ne.Name, Type: ne.Expr.Type()}
	}
	return out
}
func (p *Project) Children() []Op   { return []Op{p.In} }
func (p *Project) Describe() string { return "π " + namedExprString(p.Outs) + p.Vec.describe() }

// AddIndex appends a column holding an ID unique across the dataset — the
// unique-ID insertion the outer operators of the paper perform before
// entering a nesting level.
type AddIndex struct {
	In   Op
	Name string
}

func (a *AddIndex) Columns() []Column {
	return append(append([]Column{}, a.In.Columns()...), Column{Name: a.Name, Type: nrc.IntT})
}
func (a *AddIndex) Children() []Op   { return []Op{a.In} }
func (a *AddIndex) Describe() string { return "addIndex " + a.Name }

// Unnest is μ^a / outer-unnest μ̄^a: it pairs each input row with each
// element of its bag column, appending the element's fields (prefixed with
// Prefix). The bag column itself is tombstoned (set to NULL) in the output,
// mirroring the paper's projection of the unnested attribute. Outer unnest
// emits one NULL-extended row for an empty or NULL bag.
type Unnest struct {
	In     Op
	BagCol int
	Prefix string
	Outer  bool
}

// ElemFields returns the element fields of the unnested bag column.
func (u *Unnest) ElemFields() []nrc.Field {
	bt := u.In.Columns()[u.BagCol].Type.(nrc.BagType)
	if tt, ok := bt.Elem.(nrc.TupleType); ok {
		return tt.Fields
	}
	return []nrc.Field{{Name: "_value", Type: bt.Elem}}
}

func (u *Unnest) Columns() []Column {
	in := u.In.Columns()
	out := make([]Column, 0, len(in)+2)
	out = append(out, in...)
	for _, f := range u.ElemFields() {
		out = append(out, Column{Name: u.Prefix + "." + f.Name, Type: f.Type})
	}
	return out
}
func (u *Unnest) Children() []Op { return []Op{u.In} }
func (u *Unnest) Describe() string {
	sym := "μ"
	if u.Outer {
		sym = "μ̄"
	}
	return fmt.Sprintf("%s $%d as %s", sym, u.BagCol, u.Prefix)
}

// Join is an equi-join (⋈) or left outer join (⧑) on column equality. Output
// rows are left columns followed by right columns.
type Join struct {
	L, R         Op
	LCols, RCols []int
	Outer        bool
	// Cost, when set, is the cost model's annotation (see Annotate): the
	// executor honors Cost.Method instead of its runtime size heuristic, and
	// Explain renders the estimate.
	Cost *Costs
}

func (j *Join) Columns() []Column {
	return append(append([]Column{}, j.L.Columns()...), j.R.Columns()...)
}
func (j *Join) Children() []Op { return []Op{j.L, j.R} }
func (j *Join) Describe() string {
	sym := "⋈"
	if j.Outer {
		sym = "⟕"
	}
	s := fmt.Sprintf("%s L%v=R%v", sym, j.LCols, j.RCols)
	if j.Cost != nil {
		s += j.Cost.describe()
	}
	return s
}

// Nest is Γ^{agg value}_{key}: a key-based reduce (paper Section 2). Rows are
// grouped by GroupCols; ValueCols form the contribution of each row — a
// collected element for Γ⊎, summands for Γ+. CarryCols are columns
// functionally determined by the group key (previously built inner bags)
// passed through from the first row of each group. GDepth marks how many of
// GroupCols form the outer grouping prefix G (used by explicit modes).
//
// NULL casting: a row whose ValueCols are all NULL contributes nothing.
// Structural nests always emit their group; a group with no contributions
// yields a NULL bag (cast to empty downstream). Explicit nests below the root
// emit a NULL marker row for groups that exist only to keep outer tuples
// alive; at the root such groups are dropped.
//
// Output layout: GroupCols ++ CarryCols ++ aggregate column(s).
type Nest struct {
	In        Op
	GroupCols []int
	GDepth    int
	CarryCols []int
	ValueCols []int
	// PresenceCols determine phantom rows: a row is phantom when any of
	// these columns is NULL (an outer join or outer unnest missed, or an
	// outer-preserving selection nullified the level). Empty means every row
	// is a real contribution.
	PresenceCols []int
	Agg          AggKind
	Mode         NestMode
	OutName      string // bag column name for AggBag
	ScalarElem   bool   // AggBag collects raw scalars instead of tuples
}

// ElemType returns the element type of the collected bag (AggBag only).
func (n *Nest) ElemType() nrc.Type {
	in := n.In.Columns()
	if n.ScalarElem {
		return in[n.ValueCols[0]].Type
	}
	fs := make([]nrc.Field, len(n.ValueCols))
	for i, c := range n.ValueCols {
		fs[i] = nrc.Field{Name: in[c].Name, Type: in[c].Type}
	}
	return nrc.TupleType{Fields: fs}
}

func (n *Nest) Columns() []Column {
	in := n.In.Columns()
	out := make([]Column, 0, len(n.GroupCols)+len(n.CarryCols)+len(n.ValueCols))
	for _, c := range n.GroupCols {
		out = append(out, in[c])
	}
	for _, c := range n.CarryCols {
		out = append(out, in[c])
	}
	if n.Agg == AggBag {
		out = append(out, Column{Name: n.OutName, Type: nrc.BagType{Elem: n.ElemType()}})
	} else {
		for _, c := range n.ValueCols {
			out = append(out, in[c])
		}
	}
	return out
}
func (n *Nest) Children() []Op { return []Op{n.In} }
func (n *Nest) Describe() string {
	agg := "⊎"
	if n.Agg == AggSum {
		agg = "+"
	}
	return fmt.Sprintf("Γ%s key%v carry%v val%v (%s)", agg, n.GroupCols, n.CarryCols, n.ValueCols, n.Mode)
}

// DedupOp removes duplicate rows of a flat bag.
type DedupOp struct{ In Op }

func (d *DedupOp) Columns() []Column { return d.In.Columns() }
func (d *DedupOp) Children() []Op    { return []Op{d.In} }
func (d *DedupOp) Describe() string  { return "dedup" }

// UnionAll is additive bag union of two inputs with identical schemas.
type UnionAll struct{ L, R Op }

func (u *UnionAll) Columns() []Column { return u.L.Columns() }
func (u *UnionAll) Children() []Op    { return []Op{u.L, u.R} }
func (u *UnionAll) Describe() string  { return "⊎" }

// BagToDict casts a flat bag with a label column to a dictionary: the
// executor repartitions by the label, establishing the label-based
// partitioning guarantee of dictionaries (paper Section 4). The skew-aware
// variant repartitions only light labels (paper Figure 6).
type BagToDict struct {
	In       Op
	LabelCol int
}

func (b *BagToDict) Columns() []Column { return b.In.Columns() }
func (b *BagToDict) Children() []Op    { return []Op{b.In} }
func (b *BagToDict) Describe() string  { return fmt.Sprintf("bagToDict $%d", b.LabelCol) }

// Explain renders the plan as an indented tree with output column lists.
func Explain(op Op) string {
	var sb strings.Builder
	explain(&sb, op, 0)
	return sb.String()
}

func explain(sb *strings.Builder, op Op, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
	sb.WriteString(op.Describe())
	sb.WriteString("  → (")
	cols := op.Columns()
	for i, c := range cols {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.Name)
		if _, isBag := c.Type.(nrc.BagType); isBag {
			sb.WriteString("ᴮ")
		}
	}
	sb.WriteString(")\n")
	for _, ch := range op.Children() {
		explain(sb, ch, depth+1)
	}
}
