package plan

import (
	"fmt"
	"sync/atomic"

	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/value"
)

// This file implements the rule-based plan optimizer: predicate pushdown,
// select fusion, constant folding, and trivial-predicate elimination, applied
// at compile time to every plan of every strategy (standard plans, shredded
// program statements, and unshred plans — see runner.Compile and
// docs/OPTIMIZER.md for the rule catalogue and soundness notes).
//
// The pass is a single top-down traversal carrying a set of predicate
// conjuncts. Each Select encountered is dissolved into conjuncts; each
// conjunct independently sinks as deep as the operators below allow, and
// whatever cannot sink past an operator is re-emitted as a (fused) Select
// directly above it. Pushes are refused wherever they would change
// semantics:
//
//   - below an outer-preserving selection (Select.NullifyCols) when the
//     predicate reads a nullified column — the σ̄ changes those values;
//   - below an explicit-mode Nest (sumBy/groupBy Γ) — phantom-group marker
//     rows are created and dropped by mode-specific rules, and a predicate
//     evaluated before grouping could see rows the marker machinery needs;
//   - past AddIndex — unique-ID assignment depends on the input cardinality,
//     and the IDs feed label identity shared across plan fragments;
//   - into the null-extended side of an outer join.

// OptStats counts optimizer rule applications. Counters are per-compilation
// when returned by Optimize; GlobalOptStats aggregates them process-wide for
// serving metrics.
type OptStats struct {
	// PredicatesPushed counts conjunct × operator crossings: a single
	// predicate sinking below three operators counts three.
	PredicatesPushed int64
	// JoinSideDerived counts column=constant conjuncts on a join key cloned
	// onto the other join input, so both sides filter before the shuffle.
	JoinSideDerived int64
	// SelectsFused counts Select nodes dissolved into an already-collected
	// conjunct set (adjacent selections merging into one predicate).
	SelectsFused int64
	// ConstantsFolded counts scalar sub-expressions folded to literals.
	ConstantsFolded int64
	// TrueSelectsDropped counts selections proven always-true (or no-op
	// outer-preserving selections) and removed.
	TrueSelectsDropped int64
	// FalseSelectsCut counts always-false selections replaced by an empty
	// relation, truncating their whole input subtree.
	FalseSelectsCut int64
	// PushesRefused counts conjunct pushes refused on soundness grounds
	// (outer-preserving selections, explicit nests, AddIndex, outer-join
	// right sides, and predicates over tombstoned unnest columns).
	PushesRefused int64
}

// Add accumulates another stats record into s.
func (s *OptStats) Add(o OptStats) {
	s.PredicatesPushed += o.PredicatesPushed
	s.JoinSideDerived += o.JoinSideDerived
	s.SelectsFused += o.SelectsFused
	s.ConstantsFolded += o.ConstantsFolded
	s.TrueSelectsDropped += o.TrueSelectsDropped
	s.FalseSelectsCut += o.FalseSelectsCut
	s.PushesRefused += o.PushesRefused
}

// Total returns the number of rewrites applied (refusals excluded).
func (s *OptStats) Total() int64 {
	return s.PredicatesPushed + s.JoinSideDerived + s.SelectsFused +
		s.ConstantsFolded + s.TrueSelectsDropped + s.FalseSelectsCut
}

func (s *OptStats) String() string {
	return fmt.Sprintf("pushed=%d join-side=%d fused=%d folded=%d true-dropped=%d false-cut=%d refused=%d",
		s.PredicatesPushed, s.JoinSideDerived, s.SelectsFused, s.ConstantsFolded,
		s.TrueSelectsDropped, s.FalseSelectsCut, s.PushesRefused)
}

// globalOpt aggregates rule hits across every Optimize call in the process,
// for serving-layer metrics (tranced /metrics).
var globalOpt struct {
	pushed, joinSide, fused, folded, trueDrop, falseCut, refused atomic.Int64
}

// GlobalOptStats returns the process-wide optimizer rule-hit counters.
func GlobalOptStats() OptStats {
	return OptStats{
		PredicatesPushed:   globalOpt.pushed.Load(),
		JoinSideDerived:    globalOpt.joinSide.Load(),
		SelectsFused:       globalOpt.fused.Load(),
		ConstantsFolded:    globalOpt.folded.Load(),
		TrueSelectsDropped: globalOpt.trueDrop.Load(),
		FalseSelectsCut:    globalOpt.falseCut.Load(),
		PushesRefused:      globalOpt.refused.Load(),
	}
}

// Optimize applies the rule-based rewrite pass to a plan and returns the
// rewritten plan plus the rule-hit counts. The input plan is never mutated:
// rewritten regions are fresh nodes, untouched regions are shared.
func Optimize(op Op) (Op, OptStats) {
	var st OptStats
	out := pushdown(op, nil, &st)
	globalOpt.pushed.Add(st.PredicatesPushed)
	globalOpt.joinSide.Add(st.JoinSideDerived)
	globalOpt.fused.Add(st.SelectsFused)
	globalOpt.folded.Add(st.ConstantsFolded)
	globalOpt.trueDrop.Add(st.TrueSelectsDropped)
	globalOpt.falseCut.Add(st.FalseSelectsCut)
	globalOpt.refused.Add(st.PushesRefused)
	return out, st
}

// pushdown rewrites op so the conjuncts in preds — expressions over op's
// OUTPUT columns — are applied at or below op, as deep as soundness allows.
func pushdown(op Op, preds []Expr, st *OptStats) Op {
	switch x := op.(type) {
	case *Scan:
		return wrapSelect(x, preds)

	case *Values:
		if len(x.Rows) == 0 {
			// An empty relation satisfies every filter.
			return x
		}
		return wrapSelect(x, preds)

	case *Select:
		pred := foldExpr(x.Pred, st)
		if x.NullifyCols == nil {
			if isConstBool(pred, true) {
				st.TrueSelectsDropped++
				return pushdown(x.In, preds, st)
			}
			if isConstBool(pred, false) {
				// The whole input subtree is dead: replace it with an empty
				// literal relation of the same schema.
				st.FalseSelectsCut++
				return &Values{Cols: x.Columns()}
			}
			conj := splitConjExpr(pred)
			if len(preds) > 0 {
				st.SelectsFused++
			}
			return pushdown(x.In, append(append([]Expr{}, preds...), conj...), st)
		}
		// Outer-preserving selection σ̄: it keeps every row and nullifies
		// NullifyCols on failure. A predicate reading none of those columns
		// sees identical values below it; one that does must stay above.
		if len(x.NullifyCols) == 0 {
			// Nothing to nullify and no rows dropped: the operator is a no-op.
			st.TrueSelectsDropped++
			return pushdown(x.In, preds, st)
		}
		if isConstBool(pred, true) {
			st.TrueSelectsDropped++
			return pushdown(x.In, preds, st)
		}
		var below, above []Expr
		for _, p := range preds {
			if refsAnyCol(p, x.NullifyCols) {
				st.PushesRefused++
				above = append(above, p)
			} else {
				st.PredicatesPushed++
				below = append(below, p)
			}
		}
		out := &Select{In: pushdown(x.In, below, st), Pred: pred, NullifyCols: x.NullifyCols}
		return wrapSelect(out, above)

	case *Extend:
		base := len(x.In.Columns())
		exprs := make([]NamedExpr, len(x.Exprs))
		for i, ne := range x.Exprs {
			exprs[i] = NamedExpr{Name: ne.Name, Expr: foldExpr(ne.Expr, st)}
		}
		// Every predicate pushes: references to computed columns inline the
		// defining expression (evaluated per-row below exactly as above).
		pushed := make([]Expr, len(preds))
		for i, p := range preds {
			pushed[i] = substCols(p, func(c *Col) Expr {
				if c.Idx < base {
					return c
				}
				return exprs[c.Idx-base].Expr
			})
			st.PredicatesPushed++
		}
		return &Extend{In: pushdown(x.In, pushed, st), Exprs: exprs}

	case *Project:
		outs := make([]NamedExpr, len(x.Outs))
		for i, ne := range x.Outs {
			outs[i] = NamedExpr{Name: ne.Name, Expr: foldExpr(ne.Expr, st)}
		}
		pushed := make([]Expr, len(preds))
		for i, p := range preds {
			pushed[i] = substCols(p, func(c *Col) Expr {
				e := outs[c.Idx].Expr
				if _, isBag := e.Type().(nrc.BagType); isBag && x.CastBags {
					// The projection casts NULL bags to empty; preserve that
					// for the inlined reference.
					return &CastNullBag{E: e}
				}
				return e
			})
			st.PredicatesPushed++
		}
		return &Project{In: pushdown(x.In, pushed, st), Outs: outs, CastBags: x.CastBags}

	case *AddIndex:
		// Never push below: unique-ID assignment depends on the rows present,
		// and the IDs feed label identity shared across plan fragments
		// (dictionaries joined by label in other statements). Filtering first
		// would renumber them.
		st.PushesRefused += int64(len(preds))
		return wrapSelect(&AddIndex{In: pushdown(x.In, nil, st), Name: x.Name}, preds)

	case *Unnest:
		base := len(x.In.Columns())
		var below, above []Expr
		for _, p := range preds {
			cols := ExprCols(p, nil)
			ok := true
			for _, c := range cols {
				// Element columns don't exist below; the unnested bag column
				// is tombstoned (NULL) above, so its value differs too — a
				// push below would be unsound, count it as refused.
				if c == x.BagCol {
					ok = false
					st.PushesRefused++
					break
				}
				if c >= base {
					ok = false
					break
				}
			}
			if ok {
				// Sound for inner and outer unnest alike: pass-through columns
				// are unchanged and each input row maps to ≥0 output rows
				// carrying them verbatim.
				st.PredicatesPushed++
				below = append(below, p)
			} else {
				above = append(above, p)
			}
		}
		out := &Unnest{In: pushdown(x.In, below, st), BagCol: x.BagCol, Prefix: x.Prefix, Outer: x.Outer}
		return wrapSelect(out, above)

	case *Join:
		return pushJoin(x, preds, st)

	case *Nest:
		groupN := len(x.GroupCols)
		remap := make(map[int]int, groupN)
		for i, c := range x.GroupCols {
			remap[i] = c
		}
		var below, above []Expr
		for _, p := range preds {
			cols := ExprCols(p, nil)
			groupOnly := true
			for _, c := range cols {
				if c >= groupN {
					groupOnly = false
					break
				}
			}
			switch {
			case groupOnly && x.Mode == Structural:
				// Grouping columns are constant within a group, so filtering
				// groups after Γ equals filtering rows before it. Structural
				// nests emit every group unconditionally, so no marker-row
				// machinery can observe the difference.
				st.PredicatesPushed++
				below = append(below, RemapExpr(p, remap))
			case groupOnly:
				// Explicit modes (sumBy/groupBy Γ) emit or drop phantom-group
				// marker rows; refuse rather than reason about them.
				st.PushesRefused++
				above = append(above, p)
			default:
				above = append(above, p)
			}
		}
		out := &Nest{
			In:           pushdown(x.In, below, st),
			GroupCols:    x.GroupCols,
			GDepth:       x.GDepth,
			CarryCols:    x.CarryCols,
			ValueCols:    x.ValueCols,
			PresenceCols: x.PresenceCols,
			Agg:          x.Agg,
			Mode:         x.Mode,
			OutName:      x.OutName,
			ScalarElem:   x.ScalarElem,
		}
		return wrapSelect(out, above)

	case *DedupOp:
		// Filtering commutes with duplicate elimination.
		st.PredicatesPushed += int64(len(preds))
		return &DedupOp{In: pushdown(x.In, preds, st)}

	case *UnionAll:
		// Both branches share the schema; the same conjuncts filter each.
		st.PredicatesPushed += int64(len(preds))
		return &UnionAll{L: pushdown(x.L, preds, st), R: pushdown(x.R, preds, st)}

	case *BagToDict:
		// Pure repartitioning: filtering before moves strictly less data.
		st.PredicatesPushed += int64(len(preds))
		return &BagToDict{In: pushdown(x.In, preds, st), LabelCol: x.LabelCol}
	}
	panic(fmt.Sprintf("plan: optimize of unknown operator %T", op))
}

// pushJoin distributes conjuncts over a join: left-only conjuncts filter the
// left input, right-only conjuncts the right input (inner joins only — the
// right side of ⟕ is null-extended, so a right-only predicate evaluated above
// drops null-extended rows a pushed filter could not), and column=constant
// conjuncts on a join key additionally derive the mirrored filter for the
// other side, so equality conjuncts cut both inputs before the shuffle.
func pushJoin(x *Join, preds []Expr, st *OptStats) Op {
	lw := len(x.L.Columns())
	lcols := x.L.Columns()
	rcols := x.R.Columns()
	var lp, rp, above []Expr
	for _, p := range preds {
		// Transitive constant transfer across the join equality. The derived
		// filter only drops rows that cannot match any row surviving the
		// original conjunct, so it is sound for inner and outer joins alike.
		if col, cst, ok := constEqCol(p); ok {
			if col.Idx < lw {
				for j, lc := range x.LCols {
					if lc == col.Idx {
						rc := x.RCols[j]
						rp = append(rp, &CmpE{Op: nrc.Eq,
							L: &Col{Idx: rc, Name: rcols[rc].Name, Typ: rcols[rc].Type}, R: cst})
						st.JoinSideDerived++
						break
					}
				}
			} else {
				for j, rc := range x.RCols {
					if rc == col.Idx-lw {
						lc := x.LCols[j]
						lp = append(lp, &CmpE{Op: nrc.Eq,
							L: &Col{Idx: lc, Name: lcols[lc].Name, Typ: lcols[lc].Type}, R: cst})
						st.JoinSideDerived++
						break
					}
				}
			}
		}
		cols := ExprCols(p, nil)
		left, right := true, true
		for _, c := range cols {
			if c >= lw {
				left = false
			} else {
				right = false
			}
		}
		switch {
		case left:
			// Sound for ⟕ too: left rows are preserved by the join, their
			// columns pass through verbatim, and dropping a left row drops
			// exactly its (matched or null-extended) output rows.
			st.PredicatesPushed++
			lp = append(lp, p)
		case right && !x.Outer:
			st.PredicatesPushed++
			rp = append(rp, substCols(p, func(c *Col) Expr {
				return &Col{Idx: c.Idx - lw, Name: c.Name, Typ: c.Typ}
			}))
		case right:
			st.PushesRefused++
			above = append(above, p)
		default:
			above = append(above, p)
		}
	}
	out := &Join{
		L: pushdown(x.L, lp, st), R: pushdown(x.R, rp, st),
		LCols: x.LCols, RCols: x.RCols, Outer: x.Outer,
	}
	return wrapSelect(out, above)
}

// constEqCol recognizes Col == Const (either order) on scalar operands.
func constEqCol(p Expr) (*Col, *ConstE, bool) {
	cmp, ok := p.(*CmpE)
	if !ok || cmp.Op != nrc.Eq {
		return nil, nil, false
	}
	if c, ok := cmp.L.(*Col); ok {
		if k, ok := cmp.R.(*ConstE); ok {
			return c, k, true
		}
	}
	if c, ok := cmp.R.(*Col); ok {
		if k, ok := cmp.L.(*ConstE); ok {
			return c, k, true
		}
	}
	return nil, nil, false
}

// wrapSelect re-emits residual conjuncts as a single fused Select above op.
func wrapSelect(op Op, preds []Expr) Op {
	if len(preds) == 0 {
		return op
	}
	pred := preds[0]
	for _, p := range preds[1:] {
		pred = &BoolE{And: true, L: pred, R: p}
	}
	return &Select{In: op, Pred: pred}
}

// splitConjExpr flattens a plan-level conjunction into conjuncts.
func splitConjExpr(e Expr) []Expr {
	if b, ok := e.(*BoolE); ok && b.And {
		return append(splitConjExpr(b.L), splitConjExpr(b.R)...)
	}
	return []Expr{e}
}

// refsAnyCol reports whether e references any of the given columns.
func refsAnyCol(e Expr, cols []int) bool {
	for _, c := range ExprCols(e, nil) {
		for _, n := range cols {
			if c == n {
				return true
			}
		}
	}
	return false
}

// substCols rewrites column references through fn, rebuilding the tree.
func substCols(e Expr, fn func(*Col) Expr) Expr {
	switch x := e.(type) {
	case *Col:
		return fn(x)
	case *ConstE:
		return x
	case *CmpE:
		return &CmpE{Op: x.Op, L: substCols(x.L, fn), R: substCols(x.R, fn)}
	case *ArithE:
		return &ArithE{Op: x.Op, L: substCols(x.L, fn), R: substCols(x.R, fn), Typ: x.Typ}
	case *NotE:
		return &NotE{E: substCols(x.E, fn)}
	case *BoolE:
		return &BoolE{And: x.And, L: substCols(x.L, fn), R: substCols(x.R, fn)}
	case *MkTuple:
		es := make([]Expr, len(x.Exprs))
		for i, s := range x.Exprs {
			es[i] = substCols(s, fn)
		}
		return &MkTuple{Names: x.Names, Exprs: es}
	case *MkLabel:
		es := make([]Expr, len(x.Args))
		for i, s := range x.Args {
			es[i] = substCols(s, fn)
		}
		return &MkLabel{Site: x.Site, Args: es}
	case *LabelField:
		return &LabelField{E: substCols(x.E, fn), Site: x.Site, Idx: x.Idx, NParams: x.NParams, Typ: x.Typ}
	case *CastNullBag:
		return &CastNullBag{E: substCols(x.E, fn)}
	default:
		panic(fmt.Sprintf("plan: unknown expr %T", e))
	}
}

// isConstBool reports whether e is the boolean literal b.
func isConstBool(e Expr, b bool) bool {
	c, ok := e.(*ConstE)
	if !ok {
		return false
	}
	v, ok := c.Val.(bool)
	return ok && v == b
}

// neverNull reports whether e's Eval can never return NULL — the comparison,
// negation, boolean and non-NULL literal nodes coerce NULL operands to a
// boolean. Column references can be NULL (null-extended rows), so replacing
// `true && col` by `col` would turn a false into a NULL; the short-circuit
// simplifications below only fire when the survivor is NULL-free.
func neverNull(e Expr) bool {
	switch x := e.(type) {
	case *CmpE, *NotE, *BoolE:
		return true
	case *ConstE:
		return x.Val != nil
	}
	return false
}

// foldExpr performs constant folding with the engine's own NULL semantics:
// scalar operator nodes whose operands are all literals are evaluated once at
// compile time, and boolean connectives with a literal side short-circuit
// when doing so cannot change NULL coercion.
func foldExpr(e Expr, st *OptStats) Expr {
	switch x := e.(type) {
	case *Col, *ConstE:
		return e
	case *CmpE:
		l, r := foldExpr(x.L, st), foldExpr(x.R, st)
		if isConst(l) && isConst(r) {
			st.ConstantsFolded++
			return &ConstE{Val: (&CmpE{Op: x.Op, L: l, R: r}).Eval(nil), Typ: nrc.BoolT}
		}
		return &CmpE{Op: x.Op, L: l, R: r}
	case *ArithE:
		l, r := foldExpr(x.L, st), foldExpr(x.R, st)
		if isConst(l) && isConst(r) {
			st.ConstantsFolded++
			return &ConstE{Val: (&ArithE{Op: x.Op, L: l, R: r, Typ: x.Typ}).Eval(nil), Typ: x.Typ}
		}
		return &ArithE{Op: x.Op, L: l, R: r, Typ: x.Typ}
	case *NotE:
		sub := foldExpr(x.E, st)
		if isConst(sub) {
			st.ConstantsFolded++
			return &ConstE{Val: (&NotE{E: sub}).Eval(nil), Typ: nrc.BoolT}
		}
		return &NotE{E: sub}
	case *BoolE:
		l, r := foldExpr(x.L, st), foldExpr(x.R, st)
		if isConst(l) && isConst(r) {
			st.ConstantsFolded++
			return &ConstE{Val: (&BoolE{And: x.And, L: l, R: r}).Eval(nil), Typ: nrc.BoolT}
		}
		if x.And {
			if isConstBool(l, false) || isConstBool(r, false) {
				st.ConstantsFolded++
				return &ConstE{Val: false, Typ: nrc.BoolT}
			}
			if isConstBool(l, true) && neverNull(r) {
				st.ConstantsFolded++
				return r
			}
			if isConstBool(r, true) && neverNull(l) {
				st.ConstantsFolded++
				return l
			}
		} else {
			if isConstBool(l, true) || isConstBool(r, true) {
				st.ConstantsFolded++
				return &ConstE{Val: true, Typ: nrc.BoolT}
			}
			if isConstBool(l, false) && neverNull(r) {
				st.ConstantsFolded++
				return r
			}
			if isConstBool(r, false) && neverNull(l) {
				st.ConstantsFolded++
				return l
			}
		}
		return &BoolE{And: x.And, L: l, R: r}
	case *MkTuple:
		es := make([]Expr, len(x.Exprs))
		for i, s := range x.Exprs {
			es[i] = foldExpr(s, st)
		}
		return &MkTuple{Names: x.Names, Exprs: es}
	case *MkLabel:
		es := make([]Expr, len(x.Args))
		for i, s := range x.Args {
			es[i] = foldExpr(s, st)
		}
		return &MkLabel{Site: x.Site, Args: es}
	case *LabelField:
		return &LabelField{E: foldExpr(x.E, st), Site: x.Site, Idx: x.Idx, NParams: x.NParams, Typ: x.Typ}
	case *CastNullBag:
		sub := foldExpr(x.E, st)
		if c, ok := sub.(*ConstE); ok && c.Val == nil {
			st.ConstantsFolded++
			return &ConstE{Val: value.Bag{}, Typ: c.Typ}
		}
		return &CastNullBag{E: sub}
	}
	panic(fmt.Sprintf("plan: unknown expr %T", e))
}

// isConst reports whether e is a literal.
func isConst(e Expr) bool {
	_, ok := e.(*ConstE)
	return ok
}
