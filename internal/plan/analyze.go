// EXPLAIN ANALYZE support: per-operator runtime statistics collected during
// one execution and rendered beside the static plan annotations. An Analysis
// is created per run (plan trees are shared by concurrent executions, so
// stats cannot live on the nodes) and maps each plan node to its NodeStats.
// Narrow operators accumulate rows and wall time from inside their fused
// closures; wide operators record the dataflow stage they ran under, and the
// renderer resolves their wall time from the run's per-stage metrics — so
// analyze wall totals agree with Result.Metrics by construction.
package plan

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/trance-go/trance/internal/nrc"
)

// NodeStats holds the measured runtime behaviour of one plan node for one
// execution. Counter fields are atomic: fused closures update them from
// concurrent partition tasks. Stage is written driver-side before the
// operator runs and read only after the run completes.
type NodeStats struct {
	// RowsIn and RowsOut count rows entering and leaving the operator.
	RowsIn, RowsOut atomic.Int64
	// WallNS accumulates wall time spent inside the operator's own closures
	// (narrow operators). Wide operators leave it zero and report the wall of
	// their dataflow Stage instead.
	WallNS atomic.Int64
	// Batches counts columnar batches; VecBatches of them ran on vector
	// kernels, FallbackBatches demoted to the row interpreter mid-run.
	Batches, VecBatches, FallbackBatches atomic.Int64
	// IndexMatched counts rows gathered through a secondary index;
	// IndexFallbacks counts executions that degraded to the full scan plus
	// the span predicate.
	IndexMatched, IndexFallbacks atomic.Int64
	// Stage names the dataflow stage a wide operator ran under ("join#3");
	// empty for narrow operators.
	Stage string
}

// Wall returns the accumulated closure wall time.
func (ns *NodeStats) Wall() time.Duration { return time.Duration(ns.WallNS.Load()) }

// Analysis collects NodeStats per plan node for one execution. The zero
// pointer is inert: every method is nil-safe, so execution code can thread a
// possibly-nil *Analysis and pay only a nil check when analyze is off.
type Analysis struct {
	mu    sync.Mutex
	nodes map[Op]*NodeStats
}

// NewAnalysis returns an empty per-run stats collector.
func NewAnalysis() *Analysis { return &Analysis{nodes: map[Op]*NodeStats{}} }

// Node returns the stats slot for op, creating it on first use. Returns nil
// when a is nil (analyze off).
func (a *Analysis) Node(op Op) *NodeStats {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	ns, ok := a.nodes[op]
	if !ok {
		ns = &NodeStats{}
		a.nodes[op] = ns
	}
	return ns
}

// Lookup returns op's stats without creating a slot; nil when absent.
func (a *Analysis) Lookup(op Op) *NodeStats {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.nodes[op]
}

// Alias makes synthetic point to the same stats slot as canonical: the
// executor sometimes evaluates a node through a synthetic stand-in (an
// IndexScan's fallback predicate becomes an ad-hoc Select), and its work
// should be charged to the plan node the user sees.
func (a *Analysis) Alias(synthetic, canonical Op) {
	if a == nil {
		return
	}
	ns := a.Node(canonical)
	a.mu.Lock()
	a.nodes[synthetic] = ns
	a.mu.Unlock()
}

// QError is one operator's estimation error: q = max(est/actual, actual/est),
// the standard symmetric cardinality-estimation quality measure (1.0 is a
// perfect estimate). Both sides are clamped to ≥1 so empty results stay
// finite.
type QError struct {
	// Node is the operator's Describe() text.
	Node string
	// Est is the cost model's row estimate, Actual the measured output rows.
	Est, Actual int64
	// Q is the symmetric error factor, ≥ 1.
	Q float64
}

func qerr(est, actual int64) float64 {
	e, a := float64(max64(est, 1)), float64(max64(actual, 1))
	if e > a {
		return e / a
	}
	return a / e
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// QErrors walks the plan and reports the q-error of every cost-annotated
// operator (joins with a Costs annotation, IndexScans) that has measured
// stats. Order is the Explain walk order.
func QErrors(op Op, a *Analysis) []QError {
	var out []QError
	collectQErrors(op, a, &out)
	return out
}

func collectQErrors(op Op, a *Analysis, out *[]QError) {
	ns := a.Lookup(op)
	if ns != nil {
		switch x := op.(type) {
		case *Join:
			if x.Cost != nil {
				actual := ns.RowsOut.Load()
				*out = append(*out, QError{Node: x.Describe(), Est: x.Cost.EstRows, Actual: actual, Q: qerr(x.Cost.EstRows, actual)})
			}
		case *IndexScan:
			actual := ns.RowsOut.Load()
			*out = append(*out, QError{Node: x.Describe(), Est: x.EstRows, Actual: actual, Q: qerr(x.EstRows, actual)})
		}
	}
	for _, ch := range op.Children() {
		collectQErrors(ch, a, out)
	}
}

// ExchangeStat summarizes how a wide operator's shuffle stage moved its data
// across the exchange: typed column buffers (columnar) versus boxed rows, and
// the metered bytes of each. Runners aggregate the engine's per-stage
// exchange accounting under the operator's base stage name before rendering.
type ExchangeStat struct {
	ColumnarBuffers, BoxedBuffers int64
	ColumnarBytes, BoxedBytes     int64
}

// ExplainAnalyzed renders the plan like Explain, appending each node's
// measured runtime annotation beside its static one: `[est_rows=N]` gains
// `[actual_rows=M wall=… batches=…]`. stageWall resolves wide operators'
// wall time from the run's per-stage metrics (pass the Result.Metrics stage
// walls); nil omits wide-op walls. exchange resolves wide operators' shuffle
// exchange accounting (columnar vs boxed buffers and compact bytes), keyed
// like stageWall by the operator's stage name; nil omits the annotation.
// Nodes the execution never touched (or an execution without analysis)
// render without a runtime annotation.
func ExplainAnalyzed(op Op, a *Analysis, stageWall map[string]time.Duration, exchange map[string]ExchangeStat) string {
	var sb strings.Builder
	explainAnalyzed(&sb, op, a, stageWall, exchange, 0)
	return sb.String()
}

func explainAnalyzed(sb *strings.Builder, op Op, a *Analysis, stageWall map[string]time.Duration, exchange map[string]ExchangeStat, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
	sb.WriteString(op.Describe())
	if ann := analyzeAnnotation(op, a, stageWall, exchange); ann != "" {
		sb.WriteString(ann)
	}
	sb.WriteString("  → (")
	cols := op.Columns()
	for i, c := range cols {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.Name)
		if _, isBag := c.Type.(nrc.BagType); isBag {
			sb.WriteString("ᴮ")
		}
	}
	sb.WriteString(")\n")
	for _, ch := range op.Children() {
		explainAnalyzed(sb, ch, a, stageWall, exchange, depth+1)
	}
}

// analyzeAnnotation formats one node's runtime annotation, "" when the node
// has no measured stats.
func analyzeAnnotation(op Op, a *Analysis, stageWall map[string]time.Duration, exchange map[string]ExchangeStat) string {
	ns := a.Lookup(op)
	if ns == nil {
		return ""
	}
	var sb strings.Builder
	sb.WriteString(" [actual_rows=")
	sb.WriteString(itoa(ns.RowsOut.Load()))
	if in := ns.RowsIn.Load(); in > 0 {
		sb.WriteString(" rows_in=")
		sb.WriteString(itoa(in))
	}
	wall := ns.Wall()
	if ns.Stage != "" && stageWall != nil {
		wall += stageWall[ns.Stage]
	}
	if wall > 0 {
		fmt.Fprintf(&sb, " wall=%s", wall.Round(time.Microsecond))
	}
	if b := ns.Batches.Load(); b > 0 {
		fmt.Fprintf(&sb, " batches=%d vec=%d fallback=%d",
			b, ns.VecBatches.Load(), ns.FallbackBatches.Load())
	}
	if m := ns.IndexMatched.Load(); m > 0 || ns.IndexFallbacks.Load() > 0 {
		if fb := ns.IndexFallbacks.Load(); fb > 0 {
			fmt.Fprintf(&sb, " index_fallbacks=%d", fb)
		} else {
			fmt.Fprintf(&sb, " index_matched=%d", m)
		}
	}
	if ns.Stage != "" && exchange != nil {
		if es, ok := exchange[ns.Stage]; ok && es.ColumnarBuffers+es.BoxedBuffers > 0 {
			mode := "columnar"
			switch {
			case es.ColumnarBuffers == 0:
				mode = "boxed"
			case es.BoxedBuffers > 0:
				mode = "mixed"
			}
			fmt.Fprintf(&sb, " exchange=%s exchange_bytes=%d", mode, es.ColumnarBytes+es.BoxedBytes)
		}
	}
	switch x := op.(type) {
	case *Join:
		if x.Cost != nil {
			fmt.Fprintf(&sb, " q_err=%.2f", qerr(x.Cost.EstRows, ns.RowsOut.Load()))
		}
	case *IndexScan:
		fmt.Fprintf(&sb, " q_err=%.2f", qerr(x.EstRows, ns.RowsOut.Load()))
	}
	sb.WriteString("]")
	return sb.String()
}
