package plan

import (
	"strings"
	"testing"
	"time"

	"github.com/trance-go/trance/internal/index"
	"github.com/trance-go/trance/internal/nrc"
)

func TestAnalysisNilSafety(t *testing.T) {
	var a *Analysis
	op := scanR()
	if a.Node(op) != nil || a.Lookup(op) != nil {
		t.Fatal("nil analysis must hand out nil stats")
	}
	a.Alias(op, op)
	if got := QErrors(op, a); len(got) != 0 {
		t.Fatalf("nil analysis q-errors: %v", got)
	}
	// Rendering against a nil analysis is just Explain without annotations.
	if text := ExplainAnalyzed(op, a, nil, nil); !strings.Contains(text, "Scan R") || strings.Contains(text, "actual_rows") {
		t.Fatalf("nil-analysis render: %q", text)
	}
}

func TestAnalysisNodeAndAlias(t *testing.T) {
	a := NewAnalysis()
	op := scanR()
	ns := a.Node(op)
	if ns == nil || a.Node(op) != ns || a.Lookup(op) != ns {
		t.Fatal("Node must create once and Lookup must find it")
	}
	synthetic := &Select{In: op, Pred: &ConstE{Val: true, Typ: nrc.BoolT}}
	a.Alias(synthetic, op)
	if a.Lookup(synthetic) != ns {
		t.Fatal("aliased node must share the canonical stats slot")
	}
	if a.Lookup(&Scan{Input: "other"}) != nil {
		t.Fatal("Lookup must not create slots")
	}
}

func TestQErr(t *testing.T) {
	cases := []struct {
		est, actual int64
		want        float64
	}{
		{100, 100, 1},
		{200, 100, 2},
		{100, 200, 2},
		{0, 0, 1},   // both clamped to 1
		{0, 10, 10}, // empty estimate vs real rows
	}
	for _, c := range cases {
		if got := qerr(c.est, c.actual); got != c.want {
			t.Errorf("qerr(%d, %d) = %g, want %g", c.est, c.actual, got, c.want)
		}
	}
}

// analyzedTree builds Select(σ) over Join(cost-annotated) over {Scan,
// IndexScan} with measured stats on every node.
func analyzedTree() (Op, *Analysis) {
	scan := scanR()
	idx := &IndexScan{
		Input: "S", Col: "k", Kind: index.Hash,
		Cols:    []Column{{Name: "k", Type: nrc.IntT}},
		EstRows: 4,
	}
	join := &Join{L: scan, R: idx, LCols: []int{0}, RCols: []int{0}, Cost: &Costs{EstRows: 600}}
	sel := &Select{In: join, Pred: &CmpE{Op: nrc.Gt, L: &Col{Idx: 0, Typ: nrc.IntT}, R: &ConstE{Val: int64(3), Typ: nrc.IntT}}}

	a := NewAnalysis()
	a.Node(scan).RowsOut.Store(100)
	ins := a.Node(idx)
	ins.RowsOut.Store(50)
	ins.IndexMatched.Store(50)
	jns := a.Node(join)
	jns.RowsOut.Store(580)
	jns.Stage = "join#1"
	sns := a.Node(sel)
	sns.RowsIn.Store(580)
	sns.RowsOut.Store(97)
	sns.WallNS.Store(int64(180 * time.Microsecond))
	sns.Batches.Store(4)
	sns.VecBatches.Store(3)
	sns.FallbackBatches.Store(1)
	return sel, a
}

func TestQErrorsCollection(t *testing.T) {
	root, a := analyzedTree()
	qs := QErrors(root, a)
	if len(qs) != 2 {
		t.Fatalf("want q-errors for the join and the index scan, got %v", qs)
	}
	join, idx := qs[0], qs[1]
	if join.Est != 600 || join.Actual != 580 || join.Q < 1.03 || join.Q > 1.04 {
		t.Fatalf("join q-error: %+v", join)
	}
	if idx.Est != 4 || idx.Actual != 50 || idx.Q != 12.5 {
		t.Fatalf("index q-error: %+v", idx)
	}
}

func TestExplainAnalyzedRendering(t *testing.T) {
	root, a := analyzedTree()
	text := ExplainAnalyzed(root, a, map[string]time.Duration{"join#1": 2 * time.Millisecond}, nil)
	for _, want := range []string{
		"[actual_rows=97 rows_in=580 wall=180µs batches=4 vec=3 fallback=1]",
		"wall=2ms",    // the join resolves its stage wall from the map
		"q_err=1.03",  // join: 600 est vs 580 actual
		"q_err=12.50", // index scan: 4 est vs 50 actual
		"index_matched=50",
		"[actual_rows=100]", // plain scan: no wall, no batches
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("analyzed explain missing %q:\n%s", want, text)
		}
	}

	// Without the stage-wall map the wide operator renders without a wall.
	noWall := ExplainAnalyzed(root, a, nil, nil)
	if strings.Contains(noWall, "wall=2ms") {
		t.Fatalf("stage wall rendered without a map:\n%s", noWall)
	}

	// An index scan that fell back reports the fallback, not matches.
	ins := a.Lookup(root.(*Select).In.(*Join).R)
	ins.IndexFallbacks.Store(1)
	fb := ExplainAnalyzed(root, a, nil, nil)
	if !strings.Contains(fb, "index_fallbacks=1") || strings.Contains(fb, "index_matched") {
		t.Fatalf("fallback annotation wrong:\n%s", fb)
	}

	// Nodes without measured stats render with no runtime annotation.
	fresh := ExplainAnalyzed(scanR(), NewAnalysis(), nil, nil)
	if strings.Contains(fresh, "actual_rows") {
		t.Fatalf("untouched node gained an annotation:\n%s", fresh)
	}
}

func TestNodeStatsWall(t *testing.T) {
	ns := &NodeStats{}
	ns.WallNS.Store(int64(3 * time.Millisecond))
	if ns.Wall() != 3*time.Millisecond {
		t.Fatalf("Wall() = %v", ns.Wall())
	}
}
