package plan

import "fmt"

// Prune performs column pruning (paper Section 3, Optimization): unused
// columns are projected away before the data-moving operators (joins and
// nests), and computed columns nobody reads are dropped. This is the
// optimization that lets the shredded route drop all non-label attributes of
// intermediate dictionaries (paper Section 6, nested-to-flat discussion).
func Prune(op Op) Op {
	need := make([]bool, len(op.Columns()))
	for i := range need {
		need[i] = true
	}
	out, _ := prune(op, need)
	return out
}

// prune rewrites op to compute (at least) the needed columns, returning the
// rewritten operator and the old→new position map, which covers every column
// marked needed.
func prune(op Op, need []bool) (Op, map[int]int) {
	switch x := op.(type) {
	case *Scan, *Values:
		return op, identity(len(op.Columns()))

	case *Select:
		w := len(x.In.Columns())
		childNeed := cloneNeed(need, w)
		markCols(childNeed, ExprCols(x.Pred, nil))
		markCols(childNeed, x.NullifyCols)
		in, rm := prune(x.In, childNeed)
		return &Select{
			In:          in,
			Pred:        RemapExpr(x.Pred, rm),
			NullifyCols: remapInts(x.NullifyCols, rm),
		}, rm

	case *Extend:
		base := len(x.In.Columns())
		childNeed := make([]bool, base)
		for i := 0; i < base && i < len(need); i++ {
			childNeed[i] = need[i]
		}
		var kept []int
		for i := range x.Exprs {
			if need[base+i] {
				kept = append(kept, i)
				markCols(childNeed, ExprCols(x.Exprs[i].Expr, nil))
			}
		}
		in, rm := prune(x.In, childNeed)
		newBase := len(in.Columns())
		exprs := make([]NamedExpr, len(kept))
		out := copyMap(rm)
		for j, i := range kept {
			exprs[j] = NamedExpr{Name: x.Exprs[i].Name, Expr: RemapExpr(x.Exprs[i].Expr, rm)}
			out[base+i] = newBase + j
		}
		if len(exprs) == 0 {
			return in, out
		}
		return &Extend{In: in, Exprs: exprs}, out

	case *Project:
		childNeed := make([]bool, len(x.In.Columns()))
		var outs []NamedExpr
		out := map[int]int{}
		for i, ne := range x.Outs {
			if !need[i] {
				continue
			}
			out[i] = len(outs)
			outs = append(outs, ne)
			markCols(childNeed, ExprCols(ne.Expr, nil))
		}
		in, rm := prune(x.In, childNeed)
		for i := range outs {
			outs[i] = NamedExpr{Name: outs[i].Name, Expr: RemapExpr(outs[i].Expr, rm)}
		}
		return &Project{In: in, Outs: outs, CastBags: x.CastBags}, out

	case *AddIndex:
		base := len(x.In.Columns())
		childNeed := make([]bool, base)
		for i := 0; i < base && i < len(need); i++ {
			childNeed[i] = need[i]
		}
		in, rm := prune(x.In, childNeed)
		out := copyMap(rm)
		out[base] = len(in.Columns())
		return &AddIndex{In: in, Name: x.Name}, out

	case *Unnest:
		base := len(x.In.Columns())
		childNeed := make([]bool, base)
		for i := 0; i < base && i < len(need); i++ {
			childNeed[i] = need[i]
		}
		childNeed[x.BagCol] = true
		in, rm := prune(x.In, childNeed)
		out := copyMap(rm)
		newBase := len(in.Columns())
		for i := range x.ElemFields() {
			out[base+i] = newBase + i
		}
		return &Unnest{In: in, BagCol: rm[x.BagCol], Prefix: x.Prefix, Outer: x.Outer}, out

	case *Join:
		lw := len(x.L.Columns())
		rw := len(x.R.Columns())
		lNeed := make([]bool, lw)
		rNeed := make([]bool, rw)
		for i := 0; i < lw && i < len(need); i++ {
			lNeed[i] = need[i]
		}
		for i := 0; i < rw && lw+i < len(need); i++ {
			rNeed[i] = need[lw+i]
		}
		markCols(lNeed, x.LCols)
		markCols(rNeed, x.RCols)
		l, lrm := pruneNarrow(x.L, lNeed)
		r, rrm := pruneNarrow(x.R, rNeed)
		out := copyMap(lrm)
		nlw := len(l.Columns())
		for old, nw := range rrm {
			out[lw+old] = nlw + nw
		}
		return &Join{
			L: l, R: r,
			LCols: remapInts(x.LCols, lrm),
			RCols: remapInts(x.RCols, rrm),
			Outer: x.Outer,
		}, out

	case *Nest:
		w := len(x.In.Columns())
		childNeed := make([]bool, w)
		markCols(childNeed, x.GroupCols)
		markCols(childNeed, x.ValueCols)
		markCols(childNeed, x.PresenceCols)
		// Carry columns are only kept when the parent reads them.
		var keptCarry []int
		for j, c := range x.CarryCols {
			outPos := len(x.GroupCols) + j
			if outPos < len(need) && need[outPos] {
				keptCarry = append(keptCarry, c)
				childNeed[c] = true
			}
		}
		in, rm := pruneNarrow(x.In, childNeed)
		n := &Nest{
			In:           in,
			GroupCols:    remapInts(x.GroupCols, rm),
			GDepth:       x.GDepth,
			CarryCols:    remapInts(keptCarry, rm),
			ValueCols:    remapInts(x.ValueCols, rm),
			PresenceCols: remapInts(x.PresenceCols, rm),
			Agg:          x.Agg,
			Mode:         x.Mode,
			OutName:      x.OutName,
			ScalarElem:   x.ScalarElem,
		}
		// Output remap: groups keep positions; kept carries compact; the
		// aggregate column(s) shift left by the dropped carries.
		out := map[int]int{}
		for i := range x.GroupCols {
			out[i] = i
		}
		pos := len(x.GroupCols)
		for j := range x.CarryCols {
			old := len(x.GroupCols) + j
			kept := false
			for _, c := range keptCarry {
				if c == x.CarryCols[j] {
					kept = true
					break
				}
			}
			if kept {
				out[old] = pos
				pos++
			}
		}
		aggWidth := 1
		if x.Agg == AggSum {
			aggWidth = len(x.ValueCols)
		}
		oldAggBase := len(x.GroupCols) + len(x.CarryCols)
		for i := 0; i < aggWidth; i++ {
			out[oldAggBase+i] = pos + i
		}
		return n, out

	case *DedupOp:
		// Dedup compares whole rows: every column is semantically needed.
		all := make([]bool, len(x.In.Columns()))
		for i := range all {
			all[i] = true
		}
		in, rm := prune(x.In, all)
		return &DedupOp{In: in}, rm

	case *UnionAll:
		// Both branches must keep identical layouts: require everything.
		all := make([]bool, len(x.L.Columns()))
		for i := range all {
			all[i] = true
		}
		l, _ := prune(x.L, all)
		r, _ := prune(x.R, all)
		return &UnionAll{L: l, R: r}, identity(len(all))

	case *BagToDict:
		w := len(x.In.Columns())
		childNeed := cloneNeed(need, w)
		childNeed[x.LabelCol] = true
		in, rm := prune(x.In, childNeed)
		return &BagToDict{In: in, LabelCol: rm[x.LabelCol]}, rm
	}
	panic(fmt.Sprintf("plan: prune of unknown operator %T", op))
}

// pruneNarrow prunes the child and then inserts an explicit narrowing
// projection when unused pass-through columns remain, so joins and nests
// never shuffle dead columns.
func pruneNarrow(op Op, need []bool) (Op, map[int]int) {
	in, rm := prune(op, need)
	cols := in.Columns()
	// Columns actually required at the new positions.
	req := make([]bool, len(cols))
	for old, ok := range iterNeed(need) {
		if ok {
			req[rm[old]] = true
		}
	}
	n := 0
	for _, ok := range req {
		if ok {
			n++
		}
	}
	if n == len(cols) {
		return in, rm
	}
	var outs []NamedExpr
	newPos := map[int]int{}
	for i, ok := range req {
		if !ok {
			continue
		}
		newPos[i] = len(outs)
		outs = append(outs, NamedExpr{Name: cols[i].Name, Expr: &Col{Idx: i, Name: cols[i].Name, Typ: cols[i].Type}})
	}
	final := map[int]int{}
	for old, ok := range iterNeed(need) {
		if ok {
			final[old] = newPos[rm[old]]
		}
	}
	return &Project{In: in, Outs: outs}, final
}

func iterNeed(need []bool) map[int]bool {
	out := make(map[int]bool, len(need))
	for i, ok := range need {
		out[i] = ok
	}
	return out
}

func identity(n int) map[int]int {
	out := make(map[int]int, n)
	for i := 0; i < n; i++ {
		out[i] = i
	}
	return out
}

func cloneNeed(need []bool, w int) []bool {
	out := make([]bool, w)
	for i := 0; i < w && i < len(need); i++ {
		out[i] = need[i]
	}
	return out
}

func markCols(need []bool, cols []int) {
	for _, c := range cols {
		need[c] = true
	}
}

func remapInts(xs []int, rm map[int]int) []int {
	if xs == nil {
		return nil
	}
	out := make([]int, len(xs))
	for i, x := range xs {
		n, ok := rm[x]
		if !ok {
			panic(fmt.Sprintf("plan: prune lost column %d", x))
		}
		out[i] = n
	}
	return out
}

func copyMap(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
