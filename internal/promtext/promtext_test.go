package promtext

import (
	"strings"
	"testing"
)

func TestWriteAndParseRoundTrip(t *testing.T) {
	fams := []Family{
		{Name: "up_seconds", Help: "Uptime.", Type: "gauge", Samples: []Sample{{Value: 12.5}}},
		{Name: "reqs_total", Help: "Requests.", Type: "counter", Samples: []Sample{
			{Labels: []Label{{Name: "route", Value: "a/L0/standard"}}, Value: 3},
			{Labels: []Label{{Name: "route", Value: "b/L1/shred"}}, Value: 7},
		}},
	}
	var sb strings.Builder
	if err := Write(&sb, fams); err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(sb.String())
	if err != nil {
		t.Fatalf("parse own output: %v\n%s", err, sb.String())
	}
	if got := parsed["up_seconds"]; got == nil || got.Type != "gauge" || got.Samples[0].Value != 12.5 {
		t.Fatalf("up_seconds parsed wrong: %+v", got)
	}
	reqs := parsed["reqs_total"]
	if reqs == nil || len(reqs.Samples) != 2 {
		t.Fatalf("reqs_total parsed wrong: %+v", reqs)
	}
	if reqs.Samples[0].Labels["route"] != "a/L0/standard" {
		t.Fatalf("label lost: %+v", reqs.Samples[0])
	}
}

func TestLabelEscaping(t *testing.T) {
	fams := []Family{{Name: "m", Help: "H.", Type: "gauge", Samples: []Sample{
		{Labels: []Label{{Name: "k", Value: `a\b"c` + "\nd"}}, Value: 1},
	}}}
	var sb strings.Builder
	if err := Write(&sb, fams); err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(sb.String())
	if err != nil {
		t.Fatalf("parse escaped labels: %v\n%s", err, sb.String())
	}
	got := parsed["m"].Samples[0].Labels["k"]
	want := `a\b"c` + "\nd"
	if got != want {
		t.Fatalf("escape round trip: got %q want %q", got, want)
	}
}

func TestHistogramSamples(t *testing.T) {
	bounds := []float64{0.1, 1, 10}
	counts := []int64{2, 3, 0}
	samples := HistogramSamples([]Label{{Name: "route", Value: "r"}}, bounds, counts, 1, 4.2)
	fams := []Family{{Name: "lat_seconds", Help: "Latency.", Type: "histogram", Samples: samples}}
	var sb strings.Builder
	if err := Write(&sb, fams); err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(sb.String())
	if err != nil {
		t.Fatalf("parse histogram: %v\n%s", err, sb.String())
	}
	var infVal, countVal float64
	for _, s := range parsed["lat_seconds"].Samples {
		switch s.Name {
		case "lat_seconds_bucket":
			if s.Labels["le"] == "+Inf" {
				infVal = s.Value
			}
		case "lat_seconds_count":
			countVal = s.Value
		}
	}
	if infVal != 6 || countVal != 6 {
		t.Fatalf("+Inf=%g count=%g, want 6", infVal, countVal)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []struct {
		name, text string
	}{
		{"sample before HELP", "m 1\n"},
		{"sample before TYPE", "# HELP m h\nm 1\n"},
		{"unknown type", "# HELP m h\n# TYPE m widget\nm 1\n"},
		{"duplicate HELP", "# HELP m h\n# TYPE m gauge\n# HELP m h2\n"},
		{"duplicate TYPE", "# HELP m h\n# TYPE m gauge\n# TYPE m gauge\n"},
		{"foreign sample", "# HELP m h\n# TYPE m gauge\nother 1\n"},
		{"trailing content", "# HELP m h\n# TYPE m gauge\nm 1 extra stuff\n"},
		{"bad value", "# HELP m h\n# TYPE m gauge\nm xyz\n"},
		{"duplicate label", `# HELP m h` + "\n" + `# TYPE m gauge` + "\n" + `m{a="1",a="2"} 1` + "\n"},
		{"unterminated labels", `# HELP m h` + "\n" + `# TYPE m gauge` + "\n" + `m{a="1" 1` + "\n"},
		{"histogram missing inf", "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_count 2\n"},
		{"histogram non-cumulative", "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n"},
		{"histogram count mismatch", "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 4\n"},
	}
	for _, tc := range bad {
		if _, err := Parse(tc.text); err == nil {
			t.Errorf("%s: parse accepted malformed input", tc.name)
		}
	}
}

func TestParseAcceptsInfAndComments(t *testing.T) {
	text := "# HELP m h\n# TYPE m gauge\n# a free-form comment\nm +Inf\n"
	parsed, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed["m"].Samples) != 1 {
		t.Fatalf("samples: %+v", parsed["m"].Samples)
	}
}
