// Package promtext implements the Prometheus text exposition format (version
// 0.0.4) by hand — no client library dependency. The Writer side backs
// tranced's `GET /metrics?format=prometheus`; the Parser side is a strict
// validator used by tests and the CI smoke to prove the exposition parses
// cleanly: HELP/TYPE declarations must precede samples, types must be known,
// sample names must belong to their family, label values must escape
// correctly, and histogram buckets must be cumulative with a +Inf bucket
// matching _count.
package promtext

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Label is one name="value" pair on a sample.
type Label struct {
	Name, Value string
}

// Sample is one exposition line of a family. Suffix distinguishes histogram
// series ("_bucket", "_sum", "_count"); plain counters and gauges leave it
// empty.
type Sample struct {
	Suffix string
	Labels []Label
	Value  float64
}

// Family is one metric family: a HELP line, a TYPE line, and its samples.
type Family struct {
	Name    string
	Help    string
	Type    string // "counter", "gauge" or "histogram"
	Samples []Sample
}

// Write renders the families in order. Families render deterministically:
// samples keep their given order.
func Write(w io.Writer, fams []Family) error {
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.Name, escapeHelp(f.Help), f.Name, f.Type); err != nil {
			return err
		}
		for _, s := range f.Samples {
			if _, err := io.WriteString(w, f.Name+s.Suffix+formatLabels(s.Labels)+" "+formatValue(s.Value)+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatLabels(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// HistogramSamples renders one histogram series: counts[i] observations fell
// in (bounds[i-1], bounds[i]], overflow above the last bound. Buckets are
// emitted cumulatively with a trailing +Inf bucket, followed by _sum and
// _count, all carrying the given base labels.
func HistogramSamples(labels []Label, bounds []float64, counts []int64, overflow int64, sum float64) []Sample {
	out := make([]Sample, 0, len(bounds)+3)
	var cum int64
	for i, b := range bounds {
		cum += counts[i]
		le := append(append([]Label(nil), labels...), Label{Name: "le", Value: formatValue(b)})
		out = append(out, Sample{Suffix: "_bucket", Labels: le, Value: float64(cum)})
	}
	cum += overflow
	inf := append(append([]Label(nil), labels...), Label{Name: "le", Value: "+Inf"})
	out = append(out,
		Sample{Suffix: "_bucket", Labels: inf, Value: float64(cum)},
		Sample{Suffix: "_sum", Labels: labels, Value: sum},
		Sample{Suffix: "_count", Labels: labels, Value: float64(cum)},
	)
	return out
}

// ParsedSample is one parsed exposition line.
type ParsedSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Key renders the sample's identity (name plus sorted labels) — convenient
// for comparing two scrapes.
func (s ParsedSample) Key() string {
	names := make([]string, 0, len(s.Labels))
	for n := range s.Labels {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteString(s.Name)
	for _, n := range names {
		fmt.Fprintf(&sb, "{%s=%q}", n, s.Labels[n])
	}
	return sb.String()
}

// ParsedFamily is one parsed metric family.
type ParsedFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []ParsedSample
}

// Parse strictly parses an exposition document. Violations — samples before
// their HELP/TYPE declarations, unknown types, sample names outside the
// declared family, malformed labels or values, non-cumulative histogram
// buckets, a missing +Inf bucket, or _count disagreeing with it — are
// errors.
func Parse(text string) (map[string]*ParsedFamily, error) {
	fams := map[string]*ParsedFamily{}
	helpSeen := map[string]bool{}
	var current *ParsedFamily
	for lineNo, line := range strings.Split(text, "\n") {
		n := lineNo + 1
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				return nil, fmt.Errorf("line %d: malformed HELP", n)
			}
			if helpSeen[name] {
				return nil, fmt.Errorf("line %d: duplicate HELP for %s", n, name)
			}
			helpSeen[name] = true
			help := rest[len(name)+1:]
			fams[name] = &ParsedFamily{Name: name, Help: help}
			current = fams[name]
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: malformed TYPE", n)
			}
			name, typ := fields[0], fields[1]
			f, ok := fams[name]
			if !ok {
				return nil, fmt.Errorf("line %d: TYPE %s before its HELP", n, name)
			}
			if f.Type != "" {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %s", n, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown type %q", n, typ)
			}
			f.Type = typ
			current = f
		case strings.HasPrefix(line, "#"):
			// Free-form comment.
		default:
			s, err := parseSample(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", n, err)
			}
			if current == nil || !sampleBelongs(current, s.Name) {
				return nil, fmt.Errorf("line %d: sample %s outside its family declaration", n, s.Name)
			}
			if current.Type == "" {
				return nil, fmt.Errorf("line %d: sample %s before TYPE", n, s.Name)
			}
			current.Samples = append(current.Samples, s)
		}
	}
	for _, f := range fams {
		if f.Type == "" {
			return nil, fmt.Errorf("family %s: HELP without TYPE", f.Name)
		}
		if f.Type == "histogram" {
			if err := checkHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

func sampleBelongs(f *ParsedFamily, name string) bool {
	if name == f.Name {
		return f.Type != "histogram"
	}
	if f.Type == "histogram" {
		switch strings.TrimPrefix(name, f.Name) {
		case "_bucket", "_sum", "_count":
			return true
		}
	}
	return false
}

// checkHistogram validates cumulative bucket monotonicity per label set and
// that the +Inf bucket exists and equals _count.
func checkHistogram(f *ParsedFamily) error {
	type series struct {
		lastLE   float64
		lastCum  float64
		infCount float64
		hasInf   bool
		count    float64
		hasCount bool
	}
	byKey := map[string]*series{}
	get := func(labels map[string]string) *series {
		names := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				names = append(names, k)
			}
		}
		sort.Strings(names)
		var sb strings.Builder
		for _, k := range names {
			fmt.Fprintf(&sb, "%s=%q;", k, labels[k])
		}
		k := sb.String()
		s, ok := byKey[k]
		if !ok {
			s = &series{lastLE: math.Inf(-1)}
			byKey[k] = s
		}
		return s
	}
	for _, s := range f.Samples {
		ser := get(s.Labels)
		switch strings.TrimPrefix(s.Name, f.Name) {
		case "_bucket":
			leStr, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("family %s: _bucket without le label", f.Name)
			}
			le, err := parseFloat(leStr)
			if err != nil {
				return fmt.Errorf("family %s: bad le %q", f.Name, leStr)
			}
			if le <= ser.lastLE {
				return fmt.Errorf("family %s: le buckets out of order (%q)", f.Name, leStr)
			}
			if s.Value < ser.lastCum {
				return fmt.Errorf("family %s: non-cumulative buckets at le=%q", f.Name, leStr)
			}
			ser.lastLE, ser.lastCum = le, s.Value
			if math.IsInf(le, 1) {
				ser.hasInf, ser.infCount = true, s.Value
			}
		case "_count":
			ser.hasCount, ser.count = true, s.Value
		}
	}
	for _, ser := range byKey {
		if !ser.hasInf {
			return fmt.Errorf("family %s: missing +Inf bucket", f.Name)
		}
		if ser.hasCount && ser.count != ser.infCount {
			return fmt.Errorf("family %s: _count %g != +Inf bucket %g", f.Name, ser.count, ser.infCount)
		}
	}
	return nil
}

func parseFloat(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseSample parses `name{label="value",…} value`.
func parseSample(line string) (ParsedSample, error) {
	s := ParsedSample{Labels: map[string]string{}}
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("malformed sample name in %q", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, labels, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " ")
	// A timestamp after the value is allowed by the format; we emit none and
	// reject any here for strictness.
	if strings.ContainsAny(rest, " ") {
		return s, fmt.Errorf("trailing content after value in %q", line)
	}
	v, err := parseFloat(rest)
	if err != nil {
		return s, fmt.Errorf("bad value %q", rest)
	}
	s.Value = v
	return s, nil
}

func isNameChar(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' {
		return true
	}
	return !first && c >= '0' && c <= '9'
}

// parseLabels parses `{k="v",…}` returning the byte offset past the closing
// brace.
func parseLabels(s string) (int, map[string]string, error) {
	labels := map[string]string{}
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return 0, nil, fmt.Errorf("unterminated label set")
		}
		if s[i] == '}' {
			return i + 1, labels, nil
		}
		start := i
		for i < len(s) && isNameChar(s[i], i == start) {
			i++
		}
		name := s[start:i]
		if name == "" || i >= len(s) || s[i] != '=' {
			return 0, nil, fmt.Errorf("malformed label near %q", s[start:])
		}
		i++
		if i >= len(s) || s[i] != '"' {
			return 0, nil, fmt.Errorf("label value must be quoted near %q", s[start:])
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, nil, fmt.Errorf("unterminated label value")
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return 0, nil, fmt.Errorf("dangling escape in label value")
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("bad escape \\%c in label value", s[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := labels[name]; dup {
			return 0, nil, fmt.Errorf("duplicate label %s", name)
		}
		labels[name] = val.String()
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}
