// Package testdata provides shared fixtures: the paper's running example
// (Section 2, Example 1 — the COP/Part query) and random nested-data
// generators used by property tests across the compiler packages.
package testdata

import (
	"math/rand"

	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/value"
)

// OPartType is the innermost element of COP: ⟨pid: int, qty: real⟩.
var OPartType = nrc.Tup("pid", nrc.IntT, "qty", nrc.RealT)

// COrderType is ⟨odate: date, oparts: Bag(OPartType)⟩.
var COrderType = nrc.Tup("odate", nrc.DateT, "oparts", nrc.BagOf(OPartType))

// COPType is the paper's COP relation type:
// Bag(⟨cname: string, corders: Bag(⟨odate: date, oparts: Bag(⟨pid,qty⟩)⟩)⟩).
var COPType = nrc.BagOf(nrc.Tup("cname", nrc.StringT, "corders", nrc.BagOf(COrderType)))

// PartType is Bag(⟨pid: int, pname: string, price: real⟩).
var PartType = nrc.BagOf(nrc.Tup("pid", nrc.IntT, "pname", nrc.StringT, "price", nrc.RealT))

// Env is the input environment of the running example.
func Env() nrc.Env {
	return nrc.Env{"COP": COPType, "Part": PartType}
}

// RunningExample is the paper's Example 1 query: for each customer and each
// of their orders, the total amount spent per part name.
func RunningExample() nrc.Expr {
	inner := nrc.SumByOf(
		nrc.ForIn("op", nrc.P(nrc.V("co"), "oparts"),
			nrc.ForIn("p", nrc.V("Part"),
				nrc.IfThen(nrc.EqOf(nrc.P(nrc.V("op"), "pid"), nrc.P(nrc.V("p"), "pid")),
					nrc.SingOf(nrc.Record(
						"pname", nrc.P(nrc.V("p"), "pname"),
						"total", nrc.MulOf(nrc.P(nrc.V("op"), "qty"), nrc.P(nrc.V("p"), "price")),
					))))),
		[]string{"pname"}, []string{"total"})

	return nrc.ForIn("cop", nrc.V("COP"),
		nrc.SingOf(nrc.Record(
			"cname", nrc.P(nrc.V("cop"), "cname"),
			"corders", nrc.ForIn("co", nrc.P(nrc.V("cop"), "corders"),
				nrc.SingOf(nrc.Record(
					"odate", nrc.P(nrc.V("co"), "odate"),
					"oparts", inner,
				))),
		)))
}

// SmallPart is a tiny Part relation.
func SmallPart() value.Bag {
	return value.Bag{
		value.Tuple{int64(1), "bolt", 2.0},
		value.Tuple{int64(2), "nut", 1.5},
		value.Tuple{int64(3), "washer", 0.25},
	}
}

// SmallCOP is a tiny COP instance exercising the edge cases: a customer with
// no orders, an order with no parts, an order whose part is missing from
// Part, and duplicate part names within one order.
func SmallCOP() value.Bag {
	mk := func(pid int64, qty float64) value.Tuple { return value.Tuple{pid, qty} }
	return value.Bag{
		value.Tuple{"alice", value.Bag{
			value.Tuple{value.MakeDate(2020, 1, 15), value.Bag{mk(1, 2), mk(2, 4), mk(1, 1)}},
			value.Tuple{value.MakeDate(2020, 3, 2), value.Bag{}},
		}},
		value.Tuple{"bob", value.Bag{
			value.Tuple{value.MakeDate(2019, 11, 30), value.Bag{mk(3, 10), mk(99, 7)}},
		}},
		value.Tuple{"carol", value.Bag{}},
	}
}

// Scope returns an evaluator scope binding COP and Part.
func Scope() *nrc.Scope {
	var s *nrc.Scope
	s = s.Bind("COP", SmallCOP())
	return s.Bind("Part", SmallPart())
}

// RandomCOP generates a random COP instance: nCust customers with up to
// maxOrders orders of up to maxParts parts, pids drawn from [1, pidDomain].
func RandomCOP(r *rand.Rand, nCust, maxOrders, maxParts, pidDomain int) value.Bag {
	names := []string{"ann", "ben", "cam", "dee", "eli", "fay", "gus", "hal"}
	out := make(value.Bag, 0, nCust)
	for i := 0; i < nCust; i++ {
		cname := names[i%len(names)]
		if i >= len(names) {
			cname = cname + string(rune('0'+i/len(names)))
		}
		orders := value.Bag{}
		for j := 0; j < r.Intn(maxOrders+1); j++ {
			parts := value.Bag{}
			for k := 0; k < r.Intn(maxParts+1); k++ {
				parts = append(parts, value.Tuple{
					int64(1 + r.Intn(pidDomain)),
					float64(1+r.Intn(8)) / 2,
				})
			}
			orders = append(orders, value.Tuple{
				value.MakeDate(2015+r.Intn(6), 1+r.Intn(12), 1+r.Intn(28)),
				parts,
			})
		}
		out = append(out, value.Tuple{cname, orders})
	}
	return out
}

// RandomPart generates a Part relation covering pids [1, pidDomain] with a
// hole (pid divisible by 5 missing) so joins exercise misses.
func RandomPart(r *rand.Rand, pidDomain int) value.Bag {
	names := []string{"bolt", "nut", "washer", "screw", "cog", "rod", "pin", "cap"}
	out := value.Bag{}
	for pid := 1; pid <= pidDomain; pid++ {
		if pid%5 == 0 {
			continue
		}
		out = append(out, value.Tuple{
			int64(pid),
			names[pid%len(names)],
			float64(1+r.Intn(16)) / 4,
		})
	}
	return out
}
