package value

// Size estimates the in-memory footprint of a value in bytes. The dataflow
// engine uses it to meter shuffle volume and per-partition memory pressure,
// playing the role of Spark's Tungsten size accounting in the paper's
// experiments. The estimate is deterministic and cheap; constants approximate
// a compact binary row format rather than Go's boxed representation.
func Size(v Value) int64 {
	switch x := v.(type) {
	case nil:
		return 1
	case bool:
		return 1
	case int64, float64, Date:
		return 8
	case string:
		return int64(len(x)) + 4
	case Label:
		return 6 + Size(x.Payload)
	case Tuple:
		var s int64 = 4
		for _, e := range x {
			s += Size(e)
		}
		return s
	case Bag:
		var s int64 = 4
		for _, e := range x {
			s += Size(e)
		}
		return s
	default:
		panic("value: unsupported type in Size")
	}
}

// SizeRows sums Size over a slice of rows.
func SizeRows(rows []Tuple) int64 {
	var s int64
	for _, r := range rows {
		s += Size(r)
	}
	return s
}
