package value

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// AppendKey appends a canonical byte encoding of v to dst. Two values have
// equal encodings iff Compare(a, b) == 0 for flat values (scalars, labels,
// and tuples thereof). The encoding is prefix-free per value: each value is
// introduced by a one-byte tag, and variable-length payloads carry a length.
//
// Bags deliberately panic here: bags are never legal grouping, join, or
// partitioning keys (the paper restricts keys to flat types).
func AppendKey(dst []byte, v Value) []byte {
	switch x := v.(type) {
	case nil:
		return append(dst, 0x00)
	case bool:
		if x {
			return append(dst, 0x01, 1)
		}
		return append(dst, 0x01, 0)
	case int64:
		dst = append(dst, 0x02)
		return binary.BigEndian.AppendUint64(dst, uint64(x))
	case float64:
		dst = append(dst, 0x03)
		return binary.BigEndian.AppendUint64(dst, math.Float64bits(x))
	case Date:
		dst = append(dst, 0x04)
		return binary.BigEndian.AppendUint64(dst, uint64(x))
	case string:
		dst = append(dst, 0x05)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(x)))
		return append(dst, x...)
	case Label:
		dst = append(dst, 0x06)
		dst = binary.BigEndian.AppendUint32(dst, uint32(x.Site))
		return AppendKey(dst, x.Payload)
	case Tuple:
		dst = append(dst, 0x07)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(x)))
		for _, e := range x {
			dst = AppendKey(dst, e)
		}
		return dst
	default:
		panic("value: bags and unknown types cannot be keys")
	}
}

// Key returns the canonical string key of a flat value, suitable as a Go map
// key for grouping and joining.
func Key(v Value) string { return string(AppendKey(nil, v)) }

// KeyCols returns the composite key of row projected on cols.
func KeyCols(row Tuple, cols []int) string {
	buf := make([]byte, 0, 16*len(cols))
	for _, c := range cols {
		buf = AppendKey(buf, row[c])
	}
	return string(buf)
}

// Hash64 hashes a flat value with FNV-1a over its canonical encoding.
func Hash64(v Value) uint64 {
	h := fnv.New64a()
	h.Write(AppendKey(nil, v))
	return h.Sum64()
}

// HashCols hashes the composite key of row projected on cols.
func HashCols(row Tuple, cols []int) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 0, 16*len(cols))
	for _, c := range cols {
		buf = AppendKey(buf[:0], row[c])
		h.Write(buf)
	}
	return h.Sum64()
}
