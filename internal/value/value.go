// Package value defines the runtime representation of nested data: the
// scalars of NRC (int, real, string, bool, date), tuples, bags, and the
// labels introduced by the shredding transformation.
//
// A Value is dynamically typed. The Go nil Value is NULL — the marker
// introduced by outer joins and outer unnests during plan evaluation.
// Arithmetic over NULL yields NULL and comparisons against NULL are false,
// mirroring the plan semantics of Section 2 of the paper.
package value

import (
	"fmt"
	"sort"
	"strings"
)

// Value is one of: nil (NULL), int64, float64, string, bool, Date, Label,
// Tuple, Bag. Any other dynamic type is a programming error and the helper
// functions panic on it.
type Value any

// Date is a calendar date encoded as yyyymmdd. The encoding is ordered, so
// date comparison is integer comparison.
type Date int64

// MakeDate builds a Date from year, month and day.
func MakeDate(y, m, d int) Date { return Date(int64(y)*10000 + int64(m)*100 + int64(d)) }

// Year returns the year component.
func (d Date) Year() int { return int(d / 10000) }

// Month returns the month component.
func (d Date) Month() int { return int(d/100) % 100 }

// Day returns the day component.
func (d Date) Day() int { return int(d % 100) }

// String formats the date as yyyy-mm-dd.
func (d Date) String() string {
	return fmt.Sprintf("%04d-%02d-%02d", d.Year(), d.Month(), d.Day())
}

// ParseDate parses a yyyy-mm-dd string (Date.String's inverse). It accepts
// only the exact 10-character form with plausible month/day components, so
// JSON schema inference can distinguish dates from free-form strings without
// false positives.
func ParseDate(s string) (Date, bool) {
	if len(s) != 10 || s[4] != '-' || s[7] != '-' {
		return 0, false
	}
	n := 0
	for i, c := range []byte(s) {
		if i == 4 || i == 7 {
			continue
		}
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	d := Date(n)
	if d.Month() < 1 || d.Month() > 12 || d.Day() < 1 || d.Day() > 31 {
		return 0, false
	}
	return d, true
}

// Tuple is an ordered sequence of field values. Field names live in the
// schema (the type), not in the value, exactly like engine rows.
type Tuple []Value

// Bag is an unordered collection with multiplicities. Elements are tuples
// or scalars (paper Figure 1 restricts bag contents to flat types or tuple
// types).
type Bag []Value

// Label identifies an inner bag in the shredded representation. Site
// identifies the NewLabel occurrence that created it; Payload carries the
// captured (relevant) attributes of the free variables at that occurrence.
//
// Per the refinement in Section 4 of the paper, construction via NewLabel
// reuses an existing label when the payload is exactly one label value; use
// NewLabel rather than building Label literals so that refinement applies.
type Label struct {
	Site    int32
	Payload Tuple
}

// NewLabel constructs a label for occurrence site with the given captured
// values. When the payload is a single label, that label is reused
// unchanged — the identity-relabeling refinement that makes
// domain-elimination rule 1 sound.
func NewLabel(site int32, payload ...Value) Value {
	if len(payload) == 1 {
		if l, ok := payload[0].(Label); ok {
			return l
		}
	}
	return Label{Site: site, Payload: Tuple(payload)}
}

// IsNull reports whether v is the NULL marker.
func IsNull(v Value) bool { return v == nil }

// AllNull reports whether every column of the row restricted to cols is
// NULL. An empty cols set is vacuously all-NULL.
func AllNull(row Tuple, cols []int) bool {
	for _, c := range cols {
		if row[c] != nil {
			return false
		}
	}
	return true
}

// Clone deep-copies a value. Scalars are immutable and shared.
func Clone(v Value) Value {
	switch x := v.(type) {
	case Tuple:
		out := make(Tuple, len(x))
		for i, e := range x {
			out[i] = Clone(e)
		}
		return out
	case Bag:
		out := make(Bag, len(x))
		for i, e := range x {
			out[i] = Clone(e)
		}
		return out
	case Label:
		return Label{Site: x.Site, Payload: Clone(x.Payload).(Tuple)}
	default:
		return v
	}
}

// Equal reports deep equality of two values. Bags are compared as unordered
// multisets via canonical sorting.
func Equal(a, b Value) bool {
	return Compare(a, b) == 0
}

// typeRank orders the dynamic types so Compare yields a total order across
// heterogeneous values (needed to canonicalize bags).
func typeRank(v Value) int {
	switch v.(type) {
	case nil:
		return 0
	case bool:
		return 1
	case int64:
		return 2
	case float64:
		return 3
	case Date:
		return 4
	case string:
		return 5
	case Label:
		return 6
	case Tuple:
		return 7
	case Bag:
		return 8
	default:
		panic(fmt.Sprintf("value: unsupported type %T", v))
	}
}

// Compare defines a deterministic total order over values: NULL first, then
// by type rank, then by content. Bags compare as sorted multisets, so Compare
// implements multiset equality. Int and Real compare numerically against each
// other when mixed inside one column would otherwise be incomparable.
func Compare(a, b Value) int {
	ra, rb := typeRank(a), typeRank(b)
	// Numeric cross-type comparison keeps int64/float64 columns coherent.
	if (ra == 2 || ra == 3) && (rb == 2 || rb == 3) && ra != rb {
		fa, fb := toF(a), toF(b)
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch x := a.(type) {
	case nil:
		return 0
	case bool:
		y := b.(bool)
		switch {
		case x == y:
			return 0
		case !x:
			return -1
		default:
			return 1
		}
	case int64:
		y := b.(int64)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		default:
			return 0
		}
	case float64:
		y := b.(float64)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		default:
			return 0
		}
	case Date:
		y := b.(Date)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		default:
			return 0
		}
	case string:
		return strings.Compare(x, b.(string))
	case Label:
		y := b.(Label)
		if x.Site != y.Site {
			if x.Site < y.Site {
				return -1
			}
			return 1
		}
		return Compare(x.Payload, y.Payload)
	case Tuple:
		y := b.(Tuple)
		if c := compareSeq([]Value(x), []Value(y)); c != 0 {
			return c
		}
		return 0
	case Bag:
		y := b.(Bag)
		xs, ys := sortedBag(x), sortedBag(y)
		return compareSeq(xs, ys)
	default:
		panic(fmt.Sprintf("value: unsupported type %T", a))
	}
}

func toF(v Value) float64 {
	switch x := v.(type) {
	case int64:
		return float64(x)
	case float64:
		return x
	}
	panic("value: not numeric")
}

func compareSeq(xs, ys []Value) int {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	for i := 0; i < n; i++ {
		if c := Compare(xs[i], ys[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(xs) < len(ys):
		return -1
	case len(xs) > len(ys):
		return 1
	default:
		return 0
	}
}

func sortedBag(b Bag) []Value {
	out := make([]Value, len(b))
	copy(out, b)
	sort.Slice(out, func(i, j int) bool { return Compare(out[i], out[j]) < 0 })
	return out
}

// Format renders a value for display: tuples as ⟨…⟩, bags as {…} with
// canonical element order so output is deterministic.
func Format(v Value) string {
	var sb strings.Builder
	format(&sb, v)
	return sb.String()
}

func format(sb *strings.Builder, v Value) {
	switch x := v.(type) {
	case nil:
		sb.WriteString("NULL")
	case bool:
		fmt.Fprintf(sb, "%t", x)
	case int64:
		fmt.Fprintf(sb, "%d", x)
	case float64:
		fmt.Fprintf(sb, "%g", x)
	case Date:
		sb.WriteString(x.String())
	case string:
		fmt.Fprintf(sb, "%q", x)
	case Label:
		fmt.Fprintf(sb, "L%d", x.Site)
		format(sb, x.Payload)
	case Tuple:
		sb.WriteString("⟨")
		for i, e := range x {
			if i > 0 {
				sb.WriteString(", ")
			}
			format(sb, e)
		}
		sb.WriteString("⟩")
	case Bag:
		sb.WriteString("{")
		for i, e := range sortedBag(x) {
			if i > 0 {
				sb.WriteString(", ")
			}
			format(sb, e)
		}
		sb.WriteString("}")
	default:
		panic(fmt.Sprintf("value: unsupported type %T", v))
	}
}
