package value

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestDate(t *testing.T) {
	d := MakeDate(1997, 3, 9)
	if d.Year() != 1997 || d.Month() != 3 || d.Day() != 9 {
		t.Fatalf("date components wrong: %v", d)
	}
	if d.String() != "1997-03-09" {
		t.Fatalf("date string: %s", d.String())
	}
	if MakeDate(1996, 12, 31) >= d {
		t.Fatal("date order broken")
	}
}

func TestCompareScalars(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{int64(1), int64(2), -1},
		{int64(2), int64(2), 0},
		{int64(3), int64(2), 1},
		{"a", "b", -1},
		{true, false, 1},
		{nil, int64(0), -1},
		{nil, nil, 0},
		{1.5, 1.5, 0},
		{int64(2), 2.0, 0}, // numeric cross-type
		{int64(2), 2.5, -1},
		{MakeDate(1995, 1, 1), MakeDate(1995, 1, 2), -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); sign(got) != c.want {
			t.Errorf("Compare(%v,%v)=%d want %d", c.a, c.b, got, c.want)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestBagMultisetEquality(t *testing.T) {
	a := Bag{int64(1), int64(2), int64(2)}
	b := Bag{int64(2), int64(1), int64(2)}
	c := Bag{int64(1), int64(2)}
	if !Equal(a, b) {
		t.Fatal("bags with same multiset should be equal")
	}
	if Equal(a, c) {
		t.Fatal("bags with different multiplicities must differ")
	}
}

func TestNestedEquality(t *testing.T) {
	v1 := Tuple{"alice", Bag{Tuple{MakeDate(2020, 1, 1), Bag{Tuple{int64(1), 2.5}}}}}
	v2 := Tuple{"alice", Bag{Tuple{MakeDate(2020, 1, 1), Bag{Tuple{int64(1), 2.5}}}}}
	if !Equal(v1, v2) {
		t.Fatal("deep equal failed")
	}
	v3 := Clone(v1).(Tuple)
	v3[1].(Bag)[0].(Tuple)[1].(Bag)[0].(Tuple)[1] = 3.5
	if Equal(v1, v3) {
		t.Fatal("mutated clone should differ")
	}
	// Clone must not share structure.
	if Equal(v1, v3) {
		t.Fatal("clone shares structure with original")
	}
}

func TestLabelReuse(t *testing.T) {
	inner := Label{Site: 7, Payload: Tuple{int64(42)}}
	got := NewLabel(9, inner)
	if !Equal(got, inner) {
		t.Fatalf("single-label payload must reuse label, got %v", Format(got))
	}
	composite := NewLabel(9, inner, int64(1))
	l := composite.(Label)
	if l.Site != 9 || len(l.Payload) != 2 {
		t.Fatalf("composite label wrong: %v", Format(composite))
	}
}

func TestKeyInjective(t *testing.T) {
	vals := []Value{
		nil, true, false, int64(0), int64(1), 0.0, 1.0, "", "a", "ab",
		MakeDate(2020, 5, 5), int64(20200505), // Date vs int64 with same bits
		Label{Site: 1, Payload: Tuple{int64(1)}},
		Label{Site: 2, Payload: Tuple{int64(1)}},
		Tuple{int64(1), int64(2)},
		Tuple{Tuple{int64(1)}, int64(2)},
		Tuple{"a", "b"},
		Tuple{"ab", ""}, // concatenation attack
	}
	seen := map[string]Value{}
	for _, v := range vals {
		k := Key(v)
		if prev, dup := seen[k]; dup {
			t.Fatalf("key collision: %v vs %v", Format(prev), Format(v))
		}
		seen[k] = v
	}
}

func TestKeyColsMatchesKey(t *testing.T) {
	row := Tuple{int64(1), "x", nil}
	if KeyCols(row, []int{0, 2}) != Key(int64(1))+Key(nil) {
		t.Fatal("KeyCols must concatenate per-column keys")
	}
}

func TestAllNull(t *testing.T) {
	row := Tuple{nil, int64(1), nil}
	if !AllNull(row, []int{0, 2}) {
		t.Fatal("expected all null")
	}
	if AllNull(row, []int{0, 1}) {
		t.Fatal("expected not all null")
	}
	if !AllNull(row, nil) {
		t.Fatal("empty column set is vacuously all-null")
	}
}

func TestSizeMonotone(t *testing.T) {
	small := Tuple{int64(1)}
	big := Tuple{int64(1), "hello world", Bag{Tuple{int64(1), int64(2)}}}
	if Size(small) >= Size(big) {
		t.Fatal("size should grow with content")
	}
	if SizeRows([]Tuple{small, small}) != 2*Size(small) {
		t.Fatal("SizeRows should sum")
	}
}

func TestFormatDeterministic(t *testing.T) {
	a := Bag{Tuple{int64(2)}, Tuple{int64(1)}}
	b := Bag{Tuple{int64(1)}, Tuple{int64(2)}}
	if Format(a) != Format(b) {
		t.Fatalf("bag formatting must canonicalize: %s vs %s", Format(a), Format(b))
	}
}

// randomFlat produces a random flat value (scalar or label), the domain of
// keys.
func randomFlat(r *rand.Rand, depth int) Value {
	switch r.Intn(7) {
	case 0:
		return nil
	case 1:
		return r.Int63n(100)
	case 2:
		return float64(r.Intn(100)) / 4
	case 3:
		return string(rune('a' + r.Intn(26)))
	case 4:
		return r.Intn(2) == 0
	case 5:
		return MakeDate(1990+r.Intn(30), 1+r.Intn(12), 1+r.Intn(28))
	default:
		if depth > 2 {
			return r.Int63n(10)
		}
		n := r.Intn(3)
		p := make(Tuple, n)
		for i := range p {
			p[i] = randomFlat(r, depth+1)
		}
		return Label{Site: int32(r.Intn(4)), Payload: p}
	}
}

func TestQuickKeyConsistency(t *testing.T) {
	// Property: Key(a)==Key(b) ⇔ Compare(a,b)==0 for flat values, modulo the
	// numeric cross-type case (int64 vs float64 keys differ by design: keys
	// are used only within homogeneous columns).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomFlat(r, 0), randomFlat(r, 0)
		_, aInt := a.(int64)
		_, bFloat := b.(float64)
		_, aFloat := a.(float64)
		_, bInt := b.(int64)
		if (aInt && bFloat) || (aFloat && bInt) {
			return true
		}
		return (Key(a) == Key(b)) == (Compare(a, b) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCompareTotalOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomFlat(r, 0), randomFlat(r, 0), randomFlat(r, 0)
		// Antisymmetry.
		if sign(Compare(a, b)) != -sign(Compare(b, a)) {
			return false
		}
		// Transitivity over a <= b <= c.
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCloneEqual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := Tuple{randomFlat(r, 0), Bag{randomFlat(r, 0), randomFlat(r, 0)}}
		cl := Clone(v)
		if !Equal(v, cl) {
			return false
		}
		// reflect.DeepEqual is stricter (ordered); should also hold for a
		// structural clone.
		return reflect.DeepEqual(v, cl)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestParseDate(t *testing.T) {
	d, ok := ParseDate("2020-01-15")
	if !ok || d != MakeDate(2020, 1, 15) {
		t.Fatalf("ParseDate: %v %v", d, ok)
	}
	if d.String() != "2020-01-15" {
		t.Fatalf("round trip: %s", d.String())
	}
	for _, bad := range []string{"", "2020-1-15", "2020/01/15", "2020-13-01", "2020-01-32", "2020-00-10", "not-a-date!", "20200115x-"} {
		if _, ok := ParseDate(bad); ok {
			t.Fatalf("ParseDate(%q) should fail", bad)
		}
	}
}
