package skew

import (
	"testing"

	"github.com/trance-go/trance/internal/dataflow"
	"github.com/trance-go/trance/internal/value"
)

func skewedDataset(ctx *dataflow.Context, n int, heavyShare float64) *dataflow.Dataset {
	rows := make([]dataflow.Row, n)
	heavy := int(float64(n) * heavyShare)
	for i := range rows {
		if i < heavy {
			rows[i] = dataflow.Row{int64(7), int64(i)}
		} else {
			rows[i] = dataflow.Row{int64(1000 + i), int64(i)}
		}
	}
	return ctx.FromRows(rows)
}

func TestHeavyKeysDetectsSkew(t *testing.T) {
	ctx := dataflow.NewContext(4)
	d := skewedDataset(ctx, 4000, 0.5)
	det := NewDetector()
	hk := det.HeavyKeys(d, []int{0})
	if !hk[value.Key(int64(7))] {
		t.Fatal("heavy key 7 not detected")
	}
	// The bound from the threshold: at most 1/threshold heavy keys per
	// partition (paper Section 5).
	if len(hk) > 4*int(1/det.Threshold) {
		t.Fatalf("too many heavy keys: %d", len(hk))
	}
}

func TestHeavyKeysUniformDataHasFew(t *testing.T) {
	ctx := dataflow.NewContext(4)
	rows := make([]dataflow.Row, 4000)
	for i := range rows {
		rows[i] = dataflow.Row{int64(i), int64(i)}
	}
	det := NewDetector()
	hk := det.HeavyKeys(ctx.FromRows(rows), []int{0})
	if len(hk) != 0 {
		t.Fatalf("uniform keys misdetected as heavy: %d", len(hk))
	}
}

func TestSplitPartitionsRows(t *testing.T) {
	ctx := dataflow.NewContext(4)
	d := skewedDataset(ctx, 1000, 0.3)
	det := NewDetector()
	hk := det.HeavyKeys(d, []int{0})
	light, heavy := Split(d, []int{0}, hk)
	if light.Count()+heavy.Count() != 1000 {
		t.Fatalf("split lost rows: %d + %d", light.Count(), heavy.Count())
	}
	for _, r := range heavy.Collect() {
		if !hk[value.KeyCols(r, []int{0})] {
			t.Fatal("light row in heavy component")
		}
	}
	for _, r := range light.Collect() {
		if hk[value.KeyCols(r, []int{0})] {
			t.Fatal("heavy row in light component")
		}
	}
}

func TestSplitNoHeavyKeysIsIdentity(t *testing.T) {
	ctx := dataflow.NewContext(2)
	d := ctx.FromRows([]dataflow.Row{{int64(1)}, {int64(2)}})
	light, heavy := Split(d, []int{0}, nil)
	if light != d || heavy.Count() != 0 {
		t.Fatal("empty heavy-key set must return the input unchanged")
	}
}
