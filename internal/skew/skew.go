// Package skew implements the skew-resilient processing of paper Section 5:
// lightweight sampling to identify heavy keys, and the splitting of a
// distributed bag into the light/heavy components of a skew-triple.
//
// A key is heavy when at least Threshold of the sampled tuples in some
// partition carry it; with the paper's threshold of 2.5% there can be at most
// 40 distinct heavy keys per sampled partition, keeping the heavy-key set
// cheap to broadcast.
package skew

import (
	"github.com/trance-go/trance/internal/dataflow"
	"github.com/trance-go/trance/internal/value"
)

// Defaults from the paper's experiments.
const (
	DefaultThreshold  = 0.025
	DefaultSampleSize = 400
)

// Detector configures heavy-key detection.
type Detector struct {
	Threshold  float64
	SampleSize int
}

// NewDetector returns a detector with the paper's defaults.
func NewDetector() Detector {
	return Detector{Threshold: DefaultThreshold, SampleSize: DefaultSampleSize}
}

// HeavyKeys samples each partition of d and returns the set of composite
// keys (over cols) that exceed the per-partition frequency threshold.
func (det Detector) HeavyKeys(d *dataflow.Dataset, cols []int) map[string]bool {
	type partResult struct{ keys []string }
	results := make([]partResult, d.NumPartitions())
	d.SamplePartitions(det.SampleSize, func(p int, sample []dataflow.Row) {
		if len(sample) == 0 {
			return
		}
		counts := map[string]int{}
		for _, r := range sample {
			counts[value.KeyCols(r, cols)]++
		}
		limit := int(det.Threshold * float64(len(sample)))
		if limit < 1 {
			limit = 1
		}
		var heavy []string
		for k, c := range counts {
			if c >= limit && c > 1 {
				heavy = append(heavy, k)
			}
		}
		results[p] = partResult{keys: heavy}
	})
	out := map[string]bool{}
	for _, r := range results {
		for _, k := range r.keys {
			out[k] = true
		}
	}
	return out
}

// Split divides d into the light and heavy components of a skew-triple.
func Split(d *dataflow.Dataset, cols []int, heavy map[string]bool) (light, heavyDS *dataflow.Dataset) {
	if len(heavy) == 0 {
		return d, d.Context().Empty()
	}
	light = d.Filter(func(r dataflow.Row) bool { return !heavy[value.KeyCols(r, cols)] })
	heavyDS = d.Filter(func(r dataflow.Row) bool { return heavy[value.KeyCols(r, cols)] })
	return light, heavyDS
}
