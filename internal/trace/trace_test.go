package trace

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestSpanTreeAndViews(t *testing.T) {
	tr := New("req")
	c1 := tr.Span().Child("parse")
	c1.Set("query", "adhoc")
	c1.End()
	c2 := tr.Span().Child("execute")
	c2.Child("execute plan").End()
	c2.Setf("rows", "%d", 42)
	c2.End()
	tr.Finish()

	if tr.ID == "" || len(tr.ID) != 16 {
		t.Fatalf("trace ID %q, want 16 hex chars", tr.ID)
	}
	v := tr.View()
	if v.Name != "req" || len(v.Children) != 2 {
		t.Fatalf("view: %+v", v)
	}
	if v.Children[0].Attrs[0] != (Attr{Key: "query", Value: "adhoc"}) {
		t.Fatalf("attrs: %+v", v.Children[0].Attrs)
	}
	if v.Children[1].Attrs[0].Value != "42" {
		t.Fatalf("Setf attr: %+v", v.Children[1].Attrs)
	}
	tree := tr.Tree()
	for _, want := range []string{"trace " + tr.ID, "parse", "[query=adhoc]", "execute plan", "[rows=42]"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("tree missing %q:\n%s", want, tree)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Trace
	var sp *Span
	// None of these may panic; children of nil are nil.
	tr.Finish()
	if tr.Span() != nil {
		t.Fatal("nil trace root")
	}
	if tr.Dur() != 0 {
		t.Fatal("nil trace dur")
	}
	if tr.Tree() != "" {
		t.Fatal("nil trace tree")
	}
	if got := tr.View(); got.Name != "" {
		t.Fatal("nil trace view")
	}
	if c := sp.Child("x"); c != nil {
		t.Fatal("nil span child")
	}
	sp.End()
	sp.Set("k", "v")
	sp.Setf("k", "%d", 1)
	if sp.Dur() != 0 {
		t.Fatal("nil span dur")
	}
	// Chaining through nil composes.
	tr.Span().Child("a").Child("b").Set("k", "v")
}

func TestContextRoundTrip(t *testing.T) {
	if From(context.Background()) != nil {
		t.Fatal("empty context should have no trace")
	}
	tr := New("r")
	ctx := With(context.Background(), tr)
	if From(ctx) != tr {
		t.Fatal("context round trip lost the trace")
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	ids := make([]string, 5)
	for i := range ids {
		tr := New(fmt.Sprintf("t%d", i))
		tr.Finish()
		ids[i] = tr.ID
		r.Put(tr)
	}
	if r.Len() != 3 {
		t.Fatalf("len=%d, want 3", r.Len())
	}
	for _, id := range ids[:2] {
		if r.Get(id) != nil {
			t.Fatalf("evicted trace %s still retrievable", id)
		}
	}
	for _, id := range ids[2:] {
		if r.Get(id) == nil {
			t.Fatalf("retained trace %s lost", id)
		}
	}
	if r.Get("nope") != nil {
		t.Fatal("unknown ID should be nil")
	}
}

func TestRingDefaultsAndNil(t *testing.T) {
	if n := len(NewRing(0).buf); n != 512 {
		t.Fatalf("default ring size %d, want 512", n)
	}
	var r *Ring
	r.Put(New("x"))
	if r.Get("x") != nil || r.Len() != 0 {
		t.Fatal("nil ring should be inert")
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New("parallel")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := tr.Span().Child(fmt.Sprintf("stmt%d", i))
			c.Set("i", fmt.Sprint(i))
			c.End()
		}(i)
	}
	wg.Wait()
	tr.Finish()
	if got := len(tr.View().Children); got != 8 {
		t.Fatalf("children=%d, want 8", got)
	}
}
