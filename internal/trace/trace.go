// Package trace is a lightweight per-request span recorder for the serving
// stack: a request gets one Trace (a random ID plus a root span), layers
// along the request path open child spans (parse → resolve →
// compile-or-cache-hit → bind → per-statement execute → encode) and attach
// key/value attributes (strategy chosen, cache hit, generation). Traces are
// carried through context.Context; every method is nil-safe, so code paths
// without an attached trace pay a single nil check. Finished traces are
// retained in a bounded in-memory Ring for `GET /trace/{id}` and the
// slow-query log.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed step of a request. Spans form a tree under the trace's
// root. A span is mutated by the goroutine driving its step; the internal
// mutex makes concurrent child creation (parallel statements) safe too.
type Span struct {
	Name  string
	Start time.Time

	mu       sync.Mutex
	end      time.Time
	attrs    []Attr
	children []*Span
}

// Child opens a sub-span. Nil-safe: a nil receiver returns nil, so callers
// can chain through unconditionally.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span (idempotent, nil-safe).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Set attaches an attribute (nil-safe).
func (s *Span) Set(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Setf attaches a formatted attribute (nil-safe).
func (s *Span) Setf(key, format string, args ...any) {
	if s == nil {
		return
	}
	s.Set(key, fmt.Sprintf(format, args...))
}

// Dur returns the span's wall time; for an unfinished span, time elapsed so
// far.
func (s *Span) Dur() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	end := s.end
	s.mu.Unlock()
	if end.IsZero() {
		return time.Since(s.Start)
	}
	return end.Sub(s.Start)
}

// SpanView is the exported, immutable snapshot of a span tree — what
// `GET /trace/{id}` serializes.
type SpanView struct {
	Name     string     `json:"name"`
	StartUS  int64      `json:"start_us"` // microseconds since the trace's root started
	WallUS   int64      `json:"wall_us"`
	Attrs    []Attr     `json:"attrs,omitempty"`
	Children []SpanView `json:"children,omitempty"`
}

func (s *Span) view(origin time.Time) SpanView {
	s.mu.Lock()
	attrs := append([]Attr(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	v := SpanView{
		Name:    s.Name,
		StartUS: s.Start.Sub(origin).Microseconds(),
		WallUS:  s.Dur().Microseconds(),
		Attrs:   attrs,
	}
	for _, c := range children {
		v.Children = append(v.Children, c.view(origin))
	}
	return v
}

// Trace is one request's span tree.
type Trace struct {
	ID   string
	Root *Span
}

// New starts a trace with a fresh random ID and an open root span.
func New(name string) *Trace {
	return &Trace{ID: newID(), Root: &Span{Name: name, Start: time.Now()}}
}

func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand is documented never to fail on supported platforms;
		// degrade to a constant rather than panicking a request path.
		return "trace-rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// Finish closes the root span (nil-safe).
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.Root.End()
}

// Span returns the root span; nil for a nil trace, so `tr.Span().Child(…)`
// composes without guards.
func (t *Trace) Span() *Span {
	if t == nil {
		return nil
	}
	return t.Root
}

// Dur returns the root span's wall time.
func (t *Trace) Dur() time.Duration { return t.Span().Dur() }

// View snapshots the whole trace for serialization.
func (t *Trace) View() SpanView {
	if t == nil {
		return SpanView{}
	}
	return t.Root.view(t.Root.Start)
}

// Tree renders the span tree as indented text — the slow-query log and
// `trance query -timing` format.
func (t *Trace) Tree() string {
	if t == nil {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace %s (%s)\n", t.ID, t.Dur().Round(time.Microsecond))
	writeSpan(&sb, t.Root, 1)
	return sb.String()
}

func writeSpan(sb *strings.Builder, s *Span, depth int) {
	s.mu.Lock()
	attrs := append([]Attr(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
	fmt.Fprintf(sb, "%s %s", s.Name, s.Dur().Round(time.Microsecond))
	for _, a := range attrs {
		fmt.Fprintf(sb, " [%s=%s]", a.Key, a.Value)
	}
	sb.WriteString("\n")
	for _, c := range children {
		writeSpan(sb, c, depth+1)
	}
}

type ctxKey struct{}

// With attaches a trace to the context.
func With(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// From returns the context's trace, nil when none is attached (or when the
// context itself is nil).
func From(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// Ring retains the most recent finished traces, bounded; older entries are
// overwritten and become unqueryable.
type Ring struct {
	mu   sync.Mutex
	buf  []*Trace
	next int
	byID map[string]*Trace
}

// NewRing creates a ring holding up to n traces (n ≤ 0 defaults to 512).
func NewRing(n int) *Ring {
	if n <= 0 {
		n = 512
	}
	return &Ring{buf: make([]*Trace, n), byID: make(map[string]*Trace, n)}
}

// Put retains a trace, evicting the oldest when full.
func (r *Ring) Put(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old := r.buf[r.next]; old != nil {
		delete(r.byID, old.ID)
	}
	r.buf[r.next] = t
	r.byID[t.ID] = t
	r.next = (r.next + 1) % len(r.buf)
}

// Get returns the retained trace with the given ID, nil when unknown or
// already evicted.
func (r *Ring) Get(id string) *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byID[id]
}

// Len reports how many traces are currently retained.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byID)
}
