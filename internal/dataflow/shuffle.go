package dataflow

import (
	"time"

	"github.com/trance-go/trance/internal/value"
)

// RepartitionBy hash-partitions the dataset on the given key columns. If the
// dataset already carries an identical partitioning guarantee the shuffle is
// skipped entirely — this is how partitioning guarantees cut data movement
// (paper Section 3). Every row moved through the shuffle is metered.
//
// Key-based shuffles take the columnar exchange path (see colbuffer.go)
// unless the context's BoxedExchange ablation is set: map tasks transpose
// their output into typed per-target column buffers, hash directly over the
// vectors, and meter the compact typed encoding instead of walking every row.
func (d *Dataset) RepartitionBy(stage string, cols []int) (*Dataset, error) {
	if d.err != nil {
		return nil, d.err
	}
	want := &Partitioner{Cols: cols}
	if !d.ctx.DisableGuarantees && d.partitioner.equal(want) && len(d.parts) == d.ctx.Parallelism {
		d.ctx.Metrics.SkippedShuffles.Add(1)
		return d, nil
	}
	out, err := d.shuffle(stage, cols, func(int) func(Row) uint64 {
		return func(r Row) uint64 { return value.HashCols(r, cols) }
	})
	if err != nil {
		return nil, err
	}
	out.partitioner = want
	return out, nil
}

// shuffle redistributes rows into Parallelism partitions. keyCols names the
// hash key columns when the shuffle is key-based — only then can the exchange
// go columnar; keyless shuffles (Rebalance) pass nil and use hashFor, which
// builds one hash function per source partition (stateful routing stays
// partition-local and race-free).
//
// The exchange is pipelined: each map-side task streams its partition through
// the dataset's fused narrow-operator chain directly into P per-target
// buffers — the pre-shuffle map/filter chain is never materialized. Each
// reduce-side task then concatenates its (source,target) buffers; on the
// columnar path that concatenation also produces per-partition column sets
// that seed the receiving chain's vectorized stages. Both sides run
// goroutine-per-partition on the bounded worker pool, and every buffer
// crossing the boundary is metered (per buffer, not per row).
func (d *Dataset) shuffle(stage string, keyCols []int, hashFor func(part int) func(Row) uint64) (*Dataset, error) {
	c := d.ctx
	p := c.Parallelism
	c.Metrics.Stages.Add(1)
	start := time.Now()

	if d.err != nil {
		return nil, d.err
	}

	columnar := keyCols != nil && !c.BoxedExchange

	// Map side: source partition i streams into buckets[i][t] for target t.
	// Columnar sources additionally fill colBufs[i][t]; a source that spilled
	// (non-uniform row width) leaves its colBufs entry nil.
	buckets := make([][][]Row, len(d.parts))
	var colBufs [][]*ColBuffer
	if columnar {
		colBufs = make([][]*ColBuffer, len(d.parts))
	}
	mapErr := c.runParts(len(d.parts), func(i int) error {
		local := make([][]Row, p)
		// Pre-size every per-target slice for a uniform spread of this
		// source's rows — a capacity hint only, skew just grows past it.
		hint := len(d.parts[i])/p + 1
		for t := range local {
			local[t] = make([]Row, 0, hint)
		}
		var ex ExchangeStat
		var recs int64
		if columnar {
			bufs := make([]*ColBuffer, p)
			m := newColMapper(keyCols, p, bufs, local, hint)
			d.feed(i, m.add)
			m.flush()
			if m.spilled {
				for t := range local {
					if len(local[t]) == 0 {
						continue
					}
					ex.BoxedBuffers++
					ex.BoxedBytes += value.SizeRows(local[t])
					recs += int64(len(local[t]))
				}
			} else {
				colBufs[i] = bufs
				for t := range bufs {
					if bufs[t] == nil || bufs[t].Len() == 0 {
						continue
					}
					ex.ColumnarBuffers++
					ex.ColumnarBytes += bufs[t].CompactBytes()
					recs += int64(bufs[t].Len())
				}
			}
		} else {
			hash := hashFor(i)
			d.feed(i, func(r Row) {
				t := int(hash(r) % uint64(p))
				local[t] = append(local[t], r)
			})
			for t := range local {
				if len(local[t]) == 0 {
					continue
				}
				ex.BoxedBuffers++
				ex.BoxedBytes += value.SizeRows(local[t])
				recs += int64(len(local[t]))
			}
		}
		buckets[i] = local
		c.Metrics.ShuffleBytes.Add(ex.ColumnarBytes + ex.BoxedBytes)
		c.Metrics.ShuffleRecords.Add(recs)
		c.Metrics.addExchange(stage, ex)
		return nil
	})
	if mapErr != nil {
		c.Metrics.AddStageWall(stage, time.Since(start))
		return nil, mapErr
	}

	// Reduce side: each target partition concatenates its row buckets and
	// keeps the per-source column buffers as chunks in the same order — the
	// columnar mirror is zero-copy, the map-side buffers are handed to the
	// receiving chain's first vectorized stage as-is. A source that spilled
	// (rows without columns) or a cross-source width disagreement drops the
	// mirror for the affected target; the rows always stand alone.
	parts := make([][]Row, p)
	var colChunks [][]colChunk
	if columnar {
		colChunks = make([][]colChunk, p)
	}
	reduceErr := c.runParts(p, func(t int) error {
		var n int
		for i := range buckets {
			n += len(buckets[i][t])
		}
		rows := make([]Row, 0, n)
		for i := range buckets {
			rows = append(rows, buckets[i][t]...)
		}
		parts[t] = rows
		if columnar && n > 0 {
			chunks := make([]colChunk, 0, len(colBufs))
			width := -1
			for i := range buckets {
				bn := len(buckets[i][t])
				if bn == 0 {
					continue
				}
				if colBufs[i] == nil || colBufs[i][t] == nil || colBufs[i][t].Len() != bn {
					chunks = nil
					break
				}
				cols := colBufs[i][t].Columns()
				if len(cols) == 0 || (width >= 0 && len(cols) != width) {
					chunks = nil
					break
				}
				width = len(cols)
				chunks = append(chunks, colChunk{cols: cols})
			}
			if len(chunks) > 0 {
				colChunks[t] = chunks
			}
		}
		return nil
	})
	if reduceErr != nil {
		c.Metrics.AddStageWall(stage, time.Since(start))
		return nil, reduceErr
	}

	c.Metrics.AddStageWall(stage, time.Since(start))
	if err := c.checkPartitions(stage, parts); err != nil {
		return nil, err
	}
	return &Dataset{ctx: c, parts: parts, colChunks: colChunks}, nil
}

// Rebalance redistributes rows round-robin (no key), dropping any guarantee.
// Used to spread data evenly, e.g. after a highly selective filter. The
// round-robin counter is per source partition (offset by the partition index
// so sources do not all target the same sequence), keeping the map side free
// of shared state.
func (d *Dataset) Rebalance(stage string) (*Dataset, error) {
	return d.shuffle(stage, nil, func(part int) func(Row) uint64 {
		i := uint64(part)
		return func(Row) uint64 {
			i++
			return i
		}
	})
}
