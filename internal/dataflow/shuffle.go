package dataflow

import (
	"github.com/trance-go/trance/internal/value"
)

// RepartitionBy hash-partitions the dataset on the given key columns. If the
// dataset already carries an identical partitioning guarantee the shuffle is
// skipped entirely — this is how partitioning guarantees cut data movement
// (paper Section 3). Every row moved through the shuffle is metered.
func (d *Dataset) RepartitionBy(stage string, cols []int) (*Dataset, error) {
	want := &Partitioner{Cols: cols}
	if !d.ctx.DisableGuarantees && d.partitioner.equal(want) && len(d.parts) == d.ctx.Parallelism {
		d.ctx.Metrics.SkippedShuffles.Add(1)
		return d, nil
	}
	out, err := d.shuffle(stage, func(r Row) uint64 { return value.HashCols(r, cols) })
	if err != nil {
		return nil, err
	}
	out.partitioner = want
	return out, nil
}

// shuffle redistributes rows into Parallelism partitions by the given hash
// function, metering every row written across the boundary.
func (d *Dataset) shuffle(stage string, hash func(Row) uint64) (*Dataset, error) {
	c := d.ctx
	p := c.Parallelism
	c.Metrics.Stages.Add(1)

	// Map side: each source partition writes P buckets.
	buckets := make([][][]Row, len(d.parts))
	_ = runParts(len(d.parts), func(i int) error {
		local := make([][]Row, p)
		var bytes, recs int64
		for _, r := range d.parts[i] {
			t := int(hash(r) % uint64(p))
			local[t] = append(local[t], r)
			bytes += value.Size(r)
			recs++
		}
		buckets[i] = local
		c.Metrics.ShuffleBytes.Add(bytes)
		c.Metrics.ShuffleRecords.Add(recs)
		return nil
	})

	// Reduce side: each target partition concatenates its buckets.
	parts := make([][]Row, p)
	_ = runParts(p, func(t int) error {
		var n int
		for i := range buckets {
			n += len(buckets[i][t])
		}
		rows := make([]Row, 0, n)
		for i := range buckets {
			rows = append(rows, buckets[i][t]...)
		}
		parts[t] = rows
		return nil
	})

	if err := c.checkPartitions(stage, parts); err != nil {
		return nil, err
	}
	return &Dataset{ctx: c, parts: parts}, nil
}

// Rebalance redistributes rows round-robin (no key), dropping any guarantee.
// Used to spread data evenly, e.g. after a highly selective filter.
func (d *Dataset) Rebalance(stage string) (*Dataset, error) {
	var i int64
	return d.shuffle(stage, func(Row) uint64 {
		i++
		return uint64(i)
	})
}
