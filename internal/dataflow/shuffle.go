package dataflow

import (
	"time"

	"github.com/trance-go/trance/internal/value"
)

// RepartitionBy hash-partitions the dataset on the given key columns. If the
// dataset already carries an identical partitioning guarantee the shuffle is
// skipped entirely — this is how partitioning guarantees cut data movement
// (paper Section 3). Every row moved through the shuffle is metered.
func (d *Dataset) RepartitionBy(stage string, cols []int) (*Dataset, error) {
	if d.err != nil {
		return nil, d.err
	}
	want := &Partitioner{Cols: cols}
	if !d.ctx.DisableGuarantees && d.partitioner.equal(want) && len(d.parts) == d.ctx.Parallelism {
		d.ctx.Metrics.SkippedShuffles.Add(1)
		return d, nil
	}
	out, err := d.shuffle(stage, func(int) func(Row) uint64 {
		return func(r Row) uint64 { return value.HashCols(r, cols) }
	})
	if err != nil {
		return nil, err
	}
	out.partitioner = want
	return out, nil
}

// shuffle redistributes rows into Parallelism partitions. hashFor builds one
// hash function per source partition (stateful routing, e.g. Rebalance's
// round-robin counter, stays partition-local and race-free).
//
// The exchange is pipelined: each map-side task streams its partition through
// the dataset's fused narrow-operator chain directly into P per-target
// buffers — the pre-shuffle map/filter chain is never materialized. Each
// reduce-side task then concatenates its (source,target) buffers. Both sides
// run goroutine-per-partition on the bounded worker pool, and every row
// crossing the boundary is metered.
func (d *Dataset) shuffle(stage string, hashFor func(part int) func(Row) uint64) (*Dataset, error) {
	c := d.ctx
	p := c.Parallelism
	c.Metrics.Stages.Add(1)
	start := time.Now()

	if d.err != nil {
		return nil, d.err
	}

	// Map side: source partition i streams into buckets[i][t] for target t.
	buckets := make([][][]Row, len(d.parts))
	mapErr := c.runParts(len(d.parts), func(i int) error {
		local := make([][]Row, p)
		hash := hashFor(i)
		var bytes, recs int64
		d.feed(i, func(r Row) {
			t := int(hash(r) % uint64(p))
			local[t] = append(local[t], r)
			bytes += value.Size(r)
			recs++
		})
		buckets[i] = local
		c.Metrics.ShuffleBytes.Add(bytes)
		c.Metrics.ShuffleRecords.Add(recs)
		return nil
	})
	if mapErr != nil {
		c.Metrics.AddStageWall(stage, time.Since(start))
		return nil, mapErr
	}

	// Reduce side: each target partition concatenates its buffers.
	parts := make([][]Row, p)
	reduceErr := c.runParts(p, func(t int) error {
		var n int
		for i := range buckets {
			n += len(buckets[i][t])
		}
		rows := make([]Row, 0, n)
		for i := range buckets {
			rows = append(rows, buckets[i][t]...)
		}
		parts[t] = rows
		return nil
	})
	if reduceErr != nil {
		c.Metrics.AddStageWall(stage, time.Since(start))
		return nil, reduceErr
	}

	c.Metrics.AddStageWall(stage, time.Since(start))
	if err := c.checkPartitions(stage, parts); err != nil {
		return nil, err
	}
	return &Dataset{ctx: c, parts: parts}, nil
}

// Rebalance redistributes rows round-robin (no key), dropping any guarantee.
// Used to spread data evenly, e.g. after a highly selective filter. The
// round-robin counter is per source partition (offset by the partition index
// so sources do not all target the same sequence), keeping the map side free
// of shared state.
func (d *Dataset) Rebalance(stage string) (*Dataset, error) {
	return d.shuffle(stage, func(part int) func(Row) uint64 {
		i := uint64(part)
		return func(Row) uint64 {
			i++
			return i
		}
	})
}
