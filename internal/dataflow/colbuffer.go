// Columnar exchange buffers: the typed per-(source,target) representation
// rows take across the shuffle boundary. The map side of a key-based shuffle
// transposes its fused-chain output into BatchSize windows, hashes the key
// columns directly over the column vectors (bit-identical to the row-at-a-
// time value.HashCols), and scatters each window into per-target ColBuffers.
// ShuffleBytes is metered from the buffers' compact typed encoding instead of
// per-row value.Size walks, and the reduce side concatenates the buffers into
// per-partition column sets that seed the receiving chain's vectorized
// stages without a transpose round-trip.
//
// The accumulators reconcile kinds across windows: a column latches the first
// non-NULL kind it sees, NULL-only appends are kind-neutral, and any
// conflicting kind demotes the column to KindBoxed (re-boxing the prefix), so
// the buffered representation is always faithful to the rows it mirrors.
package dataflow

import (
	"math"
	"slices"

	"github.com/trance-go/trance/internal/value"
)

// ColBuffer accumulates one (source,target) exchange buffer as typed columns.
type ColBuffer struct {
	cols []colAcc
	n    int
	// hint, when non-zero, pre-sizes each column's typed backing at latch
	// time so a steady stream of appends never re-allocates. It is a capacity
	// hint only — buffers grow past it normally.
	hint int
}

// NewColBuffer returns an empty buffer expecting roughly hint rows.
func NewColBuffer(hint int) *ColBuffer { return &ColBuffer{hint: hint} }

// Len returns the number of buffered rows.
func (b *ColBuffer) Len() int { return b.n }

// AppendSel appends the selected rows of a transposed window (cols, one
// Column per field) to the buffer. idxs lists the window-relative row indices
// to take; nil means every row of the window. Reports false on a width
// conflict, in which case the caller must abandon the buffer and keep the row
// representation.
func (b *ColBuffer) AppendSel(cols []Column, idxs []int32) bool {
	if b.cols == nil {
		b.cols = make([]colAcc, len(cols))
		for i := range b.cols {
			b.cols[i].hint = b.hint
		}
	} else if len(b.cols) != len(cols) {
		return false
	}
	m := len(idxs)
	if idxs == nil && len(cols) > 0 {
		m = cols[0].Len
	}
	for ci := range cols {
		b.cols[ci].append(&cols[ci], idxs, m)
	}
	b.n += m
	return true
}

// Columns materializes the buffer as one Column per field. Accumulators that
// only ever saw NULLs export as all-NULL boxed columns.
func (b *ColBuffer) Columns() []Column {
	out := make([]Column, len(b.cols))
	for i := range b.cols {
		a := &b.cols[i]
		if !a.typed {
			out[i] = Column{Kind: KindBoxed, Len: b.n, Nulls: a.col.Nulls, Boxed: make([]value.Value, b.n)}
			continue
		}
		out[i] = a.col
	}
	return out
}

// CompactBytes returns the size of the buffer's compact wire encoding: 8
// bytes per int64/float64/date cell, string bytes plus a 4-byte length per
// string cell, one bit per bool cell (rounded to bitmap words), value.Size
// per boxed cell, plus the words of every materialized null bitmap. This is
// what a network shuffle of the typed representation would move, and is what
// ShuffleBytes meters on the columnar exchange path.
func (b *ColBuffer) CompactBytes() int64 {
	var total int64
	for i := range b.cols {
		a := &b.cols[i]
		c := &a.col
		if c.Nulls != nil {
			total += int64(len(c.Nulls) * 8)
		}
		if !a.typed {
			continue // all-NULL column: only the null bitmap crosses the wire
		}
		switch c.Kind {
		case KindInt64, KindFloat64, KindDate:
			total += int64(8 * b.n)
		case KindString:
			total += int64(4 * b.n)
			for _, s := range c.Strs {
				total += int64(len(s))
			}
		case KindBool:
			total += int64(8 * ((b.n + 63) / 64))
		default:
			for _, v := range c.Boxed {
				if v != nil {
					total += value.Size(v)
				}
			}
		}
	}
	return total
}

// ConcatColBuffers concatenates one target partition's per-source buffers
// into a single column set, reconciling kinds across sources through the same
// accumulator state machine used on the map side. Returns ok=false when the
// buffers disagree on width or describe zero-width rows, in which case the
// caller keeps only the row representation.
func ConcatColBuffers(bufs []*ColBuffer) ([]Column, bool) {
	var dst *ColBuffer
	for _, b := range bufs {
		if b == nil || b.n == 0 {
			continue
		}
		if len(b.cols) == 0 {
			return nil, false
		}
		cols := b.Columns()
		if dst == nil {
			dst = &ColBuffer{cols: make([]colAcc, len(cols))}
		}
		if !dst.AppendSel(cols, nil) {
			return nil, false
		}
	}
	if dst == nil {
		return nil, false
	}
	return dst.Columns(), true
}

// colAcc is one column of a ColBuffer. Until the first non-NULL cell arrives
// the accumulator is unlatched (typed=false): it tracks only length and the
// null bitmap, so an all-NULL prefix can still latch onto whatever kind shows
// up later.
type colAcc struct {
	col   Column
	typed bool
	hint  int
}

// append extends the accumulator with m cells of window column w, selected by
// idxs (nil = the first m rows of w in order).
func (a *colAcc) append(w *Column, idxs []int32, m int) {
	if m == 0 {
		return
	}
	n := a.col.Len
	fin := n + m
	// One prescan classifies the selection. A window column with no bitmap at
	// all (the common case — TransposeColInto materializes one only when a
	// NULL shows up) skips every per-cell null check below; a selection that
	// is entirely NULL is kind-neutral and extends any accumulator without
	// latching or demoting its kind.
	anyNull, allNull := false, false
	if w.Nulls != nil {
		allNull = true
		for k := 0; k < m; k++ {
			i := k
			if idxs != nil {
				i = int(idxs[k])
			}
			if w.Nulls.Get(i) {
				anyNull = true
			} else {
				allNull = false
			}
			if anyNull && !allNull {
				break
			}
		}
	}
	if allNull {
		a.growZero(m)
		a.col.Nulls = growBitmapTo(a.col.Nulls, fin)
		for p := n; p < fin; p++ {
			a.col.Nulls.Set(p)
		}
		a.col.Len = fin
		return
	}
	if !a.typed {
		a.latch(w.Kind)
	} else if a.col.Kind != w.Kind && a.col.Kind != KindBoxed {
		a.demote()
	}
	dst := &a.col
	// Size the null bitmap up front only when this append contains NULLs;
	// Bitmap.Get past the backing words already reports valid.
	if anyNull {
		dst.Nulls = growBitmapTo(dst.Nulls, fin)
	}
	if dst.Kind == w.Kind && w.Kind != KindBoxed {
		switch w.Kind {
		case KindInt64, KindDate:
			if !anyNull {
				dst.Ints = slices.Grow(dst.Ints, m)
				if idxs == nil {
					dst.Ints = append(dst.Ints, w.Ints[:m]...)
				} else {
					for _, i := range idxs {
						dst.Ints = append(dst.Ints, w.Ints[i])
					}
				}
				dst.Len = fin
				return
			}
			for k := 0; k < m; k++ {
				i := k
				if idxs != nil {
					i = int(idxs[k])
				}
				if w.Nulls.Get(i) {
					dst.Nulls.Set(dst.Len)
					dst.Ints = append(dst.Ints, 0)
				} else {
					dst.Ints = append(dst.Ints, w.Ints[i])
				}
				dst.Len++
			}
		case KindFloat64:
			if !anyNull {
				dst.Floats = slices.Grow(dst.Floats, m)
				if idxs == nil {
					dst.Floats = append(dst.Floats, w.Floats[:m]...)
				} else {
					for _, i := range idxs {
						dst.Floats = append(dst.Floats, w.Floats[i])
					}
				}
				dst.Len = fin
				return
			}
			for k := 0; k < m; k++ {
				i := k
				if idxs != nil {
					i = int(idxs[k])
				}
				if w.Nulls.Get(i) {
					dst.Nulls.Set(dst.Len)
					dst.Floats = append(dst.Floats, 0)
				} else {
					dst.Floats = append(dst.Floats, w.Floats[i])
				}
				dst.Len++
			}
		case KindString:
			if !anyNull {
				dst.Strs = slices.Grow(dst.Strs, m)
				if idxs == nil {
					dst.Strs = append(dst.Strs, w.Strs[:m]...)
				} else {
					for _, i := range idxs {
						dst.Strs = append(dst.Strs, w.Strs[i])
					}
				}
				dst.Len = fin
				return
			}
			for k := 0; k < m; k++ {
				i := k
				if idxs != nil {
					i = int(idxs[k])
				}
				if w.Nulls.Get(i) {
					dst.Nulls.Set(dst.Len)
					dst.Strs = append(dst.Strs, "")
				} else {
					dst.Strs = append(dst.Strs, w.Strs[i])
				}
				dst.Len++
			}
		default: // KindBool
			dst.Bools = growBitmapTo(dst.Bools, fin)
			if !anyNull {
				for k := 0; k < m; k++ {
					i := k
					if idxs != nil {
						i = int(idxs[k])
					}
					if w.Bools.Get(i) {
						dst.Bools.Set(dst.Len)
					}
					dst.Len++
				}
				return
			}
			for k := 0; k < m; k++ {
				i := k
				if idxs != nil {
					i = int(idxs[k])
				}
				if w.Nulls.Get(i) {
					dst.Nulls.Set(dst.Len)
				} else if w.Bools.Get(i) {
					dst.Bools.Set(dst.Len)
				}
				dst.Len++
			}
		}
		return
	}
	// Boxed destination (demoted, latched boxed, or boxed source): re-box
	// cell by cell. Cold path — only mixed-kind or non-scalar columns land
	// here.
	for k := 0; k < m; k++ {
		i := k
		if idxs != nil {
			i = int(idxs[k])
		}
		if w.Nulls.Get(i) {
			dst.Nulls.Set(dst.Len)
			dst.Boxed = append(dst.Boxed, nil)
		} else {
			dst.Boxed = append(dst.Boxed, w.Get(i))
		}
		dst.Len++
	}
}

// latch fixes the accumulator's kind, materializing zeroed backing for the
// all-NULL prefix accumulated so far (with capacity for the hinted row count,
// so hinted buffers allocate their typed backing exactly once).
func (a *colAcc) latch(k Kind) {
	n := a.col.Len
	c := n
	if a.hint > c {
		c = a.hint
	}
	a.typed = true
	a.col.Kind = k
	switch k {
	case KindInt64, KindDate:
		a.col.Ints = make([]int64, n, c)
	case KindFloat64:
		a.col.Floats = make([]float64, n, c)
	case KindString:
		a.col.Strs = make([]string, n, c)
	case KindBool:
		a.col.Bools = growBitmapTo(nil, n)
	default:
		a.col.Boxed = make([]value.Value, n, c)
	}
}

// demote re-boxes a typed accumulator after a kind conflict.
func (a *colAcc) demote() {
	n := a.col.Len
	boxed := make([]value.Value, n)
	for i := 0; i < n; i++ {
		boxed[i] = a.col.Get(i)
	}
	a.col.Kind = KindBoxed
	a.col.Ints, a.col.Floats, a.col.Strs, a.col.Bools = nil, nil, nil, nil
	a.col.Boxed = boxed
}

// growZero extends the typed backing by m zero cells (the cells are covered
// by null bits, so the zeros are never observed). Unlatched accumulators
// carry no backing to grow.
func (a *colAcc) growZero(m int) {
	if !a.typed {
		return
	}
	switch a.col.Kind {
	case KindInt64, KindDate:
		for i := 0; i < m; i++ {
			a.col.Ints = append(a.col.Ints, 0)
		}
	case KindFloat64:
		for i := 0; i < m; i++ {
			a.col.Floats = append(a.col.Floats, 0)
		}
	case KindString:
		for i := 0; i < m; i++ {
			a.col.Strs = append(a.col.Strs, "")
		}
	case KindBool:
		a.col.Bools = growBitmapTo(a.col.Bools, a.col.Len+m)
	default:
		for i := 0; i < m; i++ {
			a.col.Boxed = append(a.col.Boxed, nil)
		}
	}
}

// growBitmapTo extends b to cover n bits, preserving existing bits and
// clearing the new ones.
func growBitmapTo(b Bitmap, n int) Bitmap {
	w := (n + 63) / 64
	if w <= len(b) {
		return b
	}
	if cap(b) >= w {
		old := len(b)
		b = b[:w]
		for i := old; i < w; i++ {
			b[i] = 0
		}
		return b
	}
	nb := make(Bitmap, w)
	copy(nb, b)
	return nb
}

// sliceCol points dst at the [lo,hi) window of c without copying the value
// backing. lo must be 64-aligned (feed windows are BatchSize-strided and
// BatchSize is a multiple of 64, so bitmap windows start on word boundaries).
func sliceCol(dst *Column, c *Column, lo, hi int) {
	*dst = Column{Kind: c.Kind, Len: hi - lo}
	dst.Nulls = sliceBitmap(c.Nulls, lo, hi)
	switch c.Kind {
	case KindInt64, KindDate:
		dst.Ints = c.Ints[lo:hi]
	case KindFloat64:
		dst.Floats = c.Floats[lo:hi]
	case KindString:
		dst.Strs = c.Strs[lo:hi]
	case KindBool:
		dst.Bools = sliceBitmap(c.Bools, lo, hi)
	default:
		dst.Boxed = c.Boxed[lo:hi]
	}
}

// sliceBitmap windows b to bits [lo,hi); lo must be 64-aligned. Full windows
// are zero-copy word slices. A partial tail window whose last word would
// carry the next rows' bits is copied and masked — word-wise kernels and
// Count must never observe bits beyond the window length. Bitmaps shorter
// than the window stay short (Get past the backing reports clear).
func sliceBitmap(b Bitmap, lo, hi int) Bitmap {
	if b == nil {
		return nil
	}
	lw := lo >> 6
	hw := (hi + 63) >> 6
	if lw >= len(b) {
		return nil
	}
	if hw > len(b) {
		hw = len(b)
	}
	s := b[lw:hw]
	n := hi - lo
	if uint(n)&63 != 0 && len(s) == (n+63)>>6 {
		s = append(Bitmap(nil), s...)
		maskTail(s, n)
	}
	return s
}

// FNV-1a 64-bit, unrolled so the shuffle can fold canonical key bytes into
// per-row hash states column-major without the per-row hash.Hash64
// allocation of value.HashCols. The constants and fold order match
// hash/fnv.New64a exactly.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

func fnvU32(h uint64, v uint32) uint64 {
	h = fnvByte(h, byte(v>>24))
	h = fnvByte(h, byte(v>>16))
	h = fnvByte(h, byte(v>>8))
	return fnvByte(h, byte(v))
}

func fnvU64(h uint64, v uint64) uint64 {
	for s := 56; s >= 0; s -= 8 {
		h = fnvByte(h, byte(v>>uint(s)))
	}
	return h
}

// hashWindow folds the canonical key encoding (value.AppendKey) of every key
// column into per-row FNV-1a states, column-major, producing hashes
// bit-identical to value.HashCols without re-boxing typed cells. scratch is
// the reusable encode buffer for boxed cells; the (possibly grown) buffer is
// returned for reuse.
func hashWindow(cols []Column, keyCols []int, n int, out []uint64, scratch []byte) []byte {
	for i := 0; i < n; i++ {
		out[i] = fnvOffset64
	}
	for _, kc := range keyCols {
		c := &cols[kc]
		switch c.Kind {
		case KindInt64, KindDate:
			tag := byte(0x02)
			if c.Kind == KindDate {
				tag = 0x04
			}
			for i := 0; i < n; i++ {
				if c.Nulls.Get(i) {
					out[i] = fnvByte(out[i], 0x00)
					continue
				}
				out[i] = fnvU64(fnvByte(out[i], tag), uint64(c.Ints[i]))
			}
		case KindFloat64:
			for i := 0; i < n; i++ {
				if c.Nulls.Get(i) {
					out[i] = fnvByte(out[i], 0x00)
					continue
				}
				out[i] = fnvU64(fnvByte(out[i], 0x03), math.Float64bits(c.Floats[i]))
			}
		case KindString:
			for i := 0; i < n; i++ {
				if c.Nulls.Get(i) {
					out[i] = fnvByte(out[i], 0x00)
					continue
				}
				s := c.Strs[i]
				h := fnvU32(fnvByte(out[i], 0x05), uint32(len(s)))
				for j := 0; j < len(s); j++ {
					h = fnvByte(h, s[j])
				}
				out[i] = h
			}
		case KindBool:
			for i := 0; i < n; i++ {
				if c.Nulls.Get(i) {
					out[i] = fnvByte(out[i], 0x00)
					continue
				}
				h := fnvByte(out[i], 0x01)
				if c.Bools.Get(i) {
					h = fnvByte(h, 1)
				} else {
					h = fnvByte(h, 0)
				}
				out[i] = h
			}
		default:
			for i := 0; i < n; i++ {
				scratch = value.AppendKey(scratch[:0], c.Boxed[i])
				h := out[i]
				for _, bb := range scratch {
					h = fnvByte(h, bb)
				}
				out[i] = h
			}
		}
	}
	return scratch
}

// colMapper is the map-side state of one columnar shuffle task: it windows
// the fused chain's output, transposes each window, hashes the key columns
// over the vectors, and scatters rows (as handles, preserving identity and
// feed order) and cells (into per-target typed buffers) in one pass. A width
// conflict spills the whole source back to row-at-a-time routing — the hash
// function is identical either way, so placement never changes.
type colMapper struct {
	keyCols []int
	p       int
	bufs    []*ColBuffer
	local   [][]Row
	win     []Row
	winCols []Column
	hashes  []uint64
	scratch []byte
	selIdx  [][]int32
	width   int
	hint    int
	latched bool
	spilled bool
}

// newColMapper builds the map-side state for one source partition. hint is
// the expected per-target row count (source rows / targets); it pre-sizes the
// typed buffers so steady-state scattering never re-allocates.
func newColMapper(keyCols []int, p int, bufs []*ColBuffer, local [][]Row, hint int) *colMapper {
	return &colMapper{
		keyCols: keyCols,
		p:       p,
		bufs:    bufs,
		local:   local,
		win:     make([]Row, 0, BatchSize),
		hashes:  make([]uint64, BatchSize),
		selIdx:  make([][]int32, p),
		hint:    hint,
	}
}

func (m *colMapper) add(r Row) {
	if m.spilled {
		t := int(value.HashCols(r, m.keyCols) % uint64(m.p))
		m.local[t] = append(m.local[t], r)
		return
	}
	m.win = append(m.win, r)
	if len(m.win) == BatchSize {
		m.flushWin()
	}
}

func (m *colMapper) flush() {
	if !m.spilled {
		m.flushWin()
	}
}

func (m *colMapper) flushWin() {
	n := len(m.win)
	if n == 0 {
		return
	}
	w := len(m.win[0])
	if !m.latched {
		m.width, m.latched = w, true
	}
	if w != m.width {
		m.spill()
		return
	}
	for _, r := range m.win {
		if len(r) != w {
			m.spill()
			return
		}
	}
	if cap(m.winCols) < w {
		m.winCols = make([]Column, w)
	}
	wc := m.winCols[:w]
	for ci := 0; ci < w; ci++ {
		TransposeColInto(&wc[ci], m.win, ci, InferKind(m.win, ci))
	}
	m.scratch = hashWindow(wc, m.keyCols, n, m.hashes, m.scratch)
	for t := range m.selIdx {
		m.selIdx[t] = m.selIdx[t][:0]
	}
	for i := 0; i < n; i++ {
		t := int(m.hashes[i] % uint64(m.p))
		m.selIdx[t] = append(m.selIdx[t], int32(i))
		m.local[t] = append(m.local[t], m.win[i])
	}
	// The window is routed; clear it before the buffer scatter so a spill
	// there cannot route the same rows twice.
	m.win = m.win[:0]
	for t := 0; t < m.p; t++ {
		if len(m.selIdx[t]) == 0 {
			continue
		}
		if m.bufs[t] == nil {
			m.bufs[t] = NewColBuffer(m.hint)
		}
		if !m.bufs[t].AppendSel(wc, m.selIdx[t]) {
			m.spill()
			return
		}
	}
}

// spill abandons the typed buffers for this source: buffered-but-unrouted
// rows are routed per-row with the identical value.HashCols hash, and every
// subsequent row takes the row path. Rows already routed stay where they are
// — placement is hash-determined, not representation-determined.
func (m *colMapper) spill() {
	m.spilled = true
	for t := range m.bufs {
		m.bufs[t] = nil
	}
	for _, r := range m.win {
		t := int(value.HashCols(r, m.keyCols) % uint64(m.p))
		m.local[t] = append(m.local[t], r)
	}
	m.win = m.win[:0]
}
