package dataflow

import (
	"math/rand"
)

// SamplePartitions draws a deterministic pseudo-random sample of up to n rows
// from every partition and hands each sample, with its partition index, to
// visit. Sampling runs in parallel on the worker pool; visit is called
// sequentially on the caller's goroutine, in partition order, so callers need
// no synchronization. The skew detector of Section 5 uses it to estimate
// per-partition key frequencies without a full pass being charged as a
// shuffle.
func (d *Dataset) SamplePartitions(n int, visit func(part int, sample []Row)) {
	d.force()
	samples := make([][]Row, len(d.parts))
	_ = d.ctx.runParts(len(d.parts), func(i int) error {
		rows := d.parts[i]
		if len(rows) <= n {
			samples[i] = rows
			return nil
		}
		rng := rand.New(rand.NewSource(d.ctx.SampleSeed + int64(i)))
		sample := make([]Row, n)
		// Reservoir sampling keeps the draw uniform and single-pass.
		copy(sample, rows[:n])
		for j := n; j < len(rows); j++ {
			if k := rng.Intn(j + 1); k < n {
				sample[k] = rows[j]
			}
		}
		samples[i] = sample
		return nil
	})
	for i, s := range samples {
		visit(i, s)
	}
}
