package dataflow

import (
	"errors"
	"sort"
	"sync"

	"github.com/trance-go/trance/internal/value"
)

// rowBufPool recycles the BatchSize row-header buffers used by the batching
// stages (FilterVec/MapVec). Stage factories run once per partition, and
// shredded plans instantiate many small partitions — allocating a fresh 24KB
// buffer each time dominated the vectorized path's allocation profile. Buffers
// are fetched lazily on the first row and returned at flush, the one point
// feed guarantees a stage is done emitting.
var rowBufPool = sync.Pool{New: func() any {
	s := make([]Row, 0, BatchSize)
	return &s
}}

func getRowBuf() *[]Row { return rowBufPool.Get().(*[]Row) }

// putRowBuf clears the buffered row headers (so pooled buffers don't pin row
// memory) and returns the buffer to the pool; always returns nil for
// assignment back to the owner.
func putRowBuf(bufp *[]Row) *[]Row {
	if bufp != nil {
		b := (*bufp)[:cap(*bufp)]
		clear(b)
		*bufp = b[:0]
		rowBufPool.Put(bufp)
	}
	return nil
}

// Partitioner records a key-based partitioning guarantee: all rows whose
// composite key over Cols is equal live in the same partition.
type Partitioner struct {
	Cols []int
}

// equal reports whether two guarantees are the same column sequence.
func (p *Partitioner) equal(o *Partitioner) bool {
	if p == nil || o == nil {
		return false
	}
	if len(p.Cols) != len(o.Cols) {
		return false
	}
	for i := range p.Cols {
		if p.Cols[i] != o.Cols[i] {
			return false
		}
	}
	return true
}

// stageFn is one fused narrow operator: it transforms a single input row into
// zero or more output rows via emit.
type stageFn func(r Row, emit func(Row))

// stage is one instantiated fused operator. Row-at-a-time operators populate
// only fn. Batching operators (the vectorized filter/map stages) additionally
// set flush, called once after the partition's last row so a buffered partial
// batch still reaches the downstream chain, and colFn, the column-aware entry
// feed drives window-by-window when the stage heads the chain of a partition
// that carries a columnar mirror (a columnar shuffle output) — the stage then
// starts from ready-made columns instead of re-transposing its row window.
type stage struct {
	fn    stageFn
	flush func(emit func(Row))
	colFn func(rows []Row, cols []Column, emit func(Row))
}

// stageFactory instantiates a stage for one partition. Stages that carry
// per-partition state (AddUniqueID's sequence counter, a vectorized stage's
// batch buffer) get a fresh instance per partition per pass, which keeps
// replays deterministic and parallel passes race-free.
type stageFactory func(part int) stage

// Dataset is a partitioned collection of rows bound to a Context. Rows are
// never mutated, but the Dataset itself is lazy with respect to narrow
// operators: parts holds the materialized source partitions and stages the
// pending fused operator chain. Wide operators and actions stream rows
// through the chain (one pass, no intermediate slices); force caches the
// result in place when a caller needs the materialized rows themselves.
//
// Driving a Dataset — operators and actions — is a single-goroutine (driver)
// activity: force mutates parts/stages without synchronization. Publish a
// dataset to concurrent readers only after Force.
type Dataset struct {
	ctx   *Context
	parts [][]Row
	// colChunks, when non-nil, is the columnar mirror of parts produced by a
	// columnar shuffle: per partition, the per-source exchange buffers in
	// bucket order, each covering a contiguous run of the partition's rows.
	// Keeping the chunks instead of concatenating them makes the reduce side
	// zero-copy — the buffers built on the map side are handed to the
	// receiving chain as-is. The mirror rides along the fused chain untouched
	// and is consumed by feed when the chain's first stage is column-aware;
	// materializing any stage invalidates it.
	colChunks   [][]colChunk
	stages      []stageFactory
	partitioner *Partitioner
	// err poisons the dataset after a partition task failed (memory cap or a
	// recovered panic): operators and actions keep returning it instead of
	// computing over partial data.
	err error
}

// FromRows distributes rows round-robin over Parallelism partitions. Inputs
// that have not been altered by an operator carry no partitioning guarantee
// (paper Section 3).
func (c *Context) FromRows(rows []Row) *Dataset {
	n := c.Parallelism
	parts := make([][]Row, n)
	per := (len(rows) + n - 1) / n
	for i := range parts {
		lo := i * per
		hi := lo + per
		if lo > len(rows) {
			lo = len(rows)
		}
		if hi > len(rows) {
			hi = len(rows)
		}
		parts[i] = rows[lo:hi]
	}
	return &Dataset{ctx: c, parts: parts}
}

// FromPartitions wraps pre-partitioned rows; used by tests and by operators.
func (c *Context) FromPartitions(parts [][]Row) *Dataset {
	return &Dataset{ctx: c, parts: parts}
}

// Empty returns an empty dataset with the context's parallelism.
func (c *Context) Empty() *Dataset {
	return &Dataset{ctx: c, parts: make([][]Row, c.Parallelism)}
}

// Context returns the engine context the dataset is bound to.
func (d *Dataset) Context() *Context { return d.ctx }

// NumPartitions returns the partition count (narrow operators never change
// it).
func (d *Dataset) NumPartitions() int { return len(d.parts) }

// Partitioner returns the current partitioning guarantee, or nil.
func (d *Dataset) Partitioner() *Partitioner { return d.partitioner }

// withStage returns a new dataset with one more fused narrow operator. The
// stage slice is copied, never shared, so sibling datasets derived from the
// same parent cannot alias each other's chains.
func (d *Dataset) withStage(f stageFactory) *Dataset {
	stages := make([]stageFactory, len(d.stages)+1)
	copy(stages, d.stages)
	stages[len(d.stages)] = f
	return &Dataset{ctx: d.ctx, parts: d.parts, colChunks: d.colChunks, stages: stages, err: d.err}
}

// feed streams partition part through the fused operator chain into sink.
// This is the pipelined execution path: a row travels Map → Filter → … →
// sink without any intermediate partition ever being allocated. Batching
// stages are flushed upstream-first after the last source row, so a partial
// batch flushed out of stage i still flows through stages i+1…n (and their
// flushes, in turn).
// When the partition carries a columnar mirror (a columnar shuffle output)
// and the chain's first stage is column-aware, the source loop instead walks
// BatchSize windows of the mirror, handing the stage zero-copy column slices
// alongside the row window — the consumer starts from columns without a
// transpose round-trip. Everything downstream of the first stage is
// row-at-a-time exactly as before, so results are bit-identical.
func (d *Dataset) feed(part int, sink func(Row)) {
	type boundFlush struct {
		flush func(emit func(Row))
		next  func(Row)
	}
	emit := sink
	var flushes []boundFlush
	var head stage
	var headNext func(Row)
	for i := len(d.stages) - 1; i >= 0; i-- {
		st := d.stages[i](part)
		next := emit
		emit = func(r Row) { st.fn(r, next) }
		if i == 0 {
			head, headNext = st, next
		}
		if st.flush != nil {
			flushes = append(flushes, boundFlush{st.flush, next})
		}
	}
	rows := d.parts[part]
	if chunks := d.partChunks(part, len(rows)); chunks != nil && head.colFn != nil {
		var win []Column
		off := 0
		for _, ch := range chunks {
			cn := ch.cols[0].Len
			if cap(win) < len(ch.cols) {
				win = make([]Column, len(ch.cols))
			}
			w := win[:len(ch.cols)]
			// Window offsets are chunk-local, so full windows start on bitmap
			// word boundaries and sliceCol aliases them without copying.
			for lo := 0; lo < cn; lo += BatchSize {
				hi := lo + BatchSize
				if hi > cn {
					hi = cn
				}
				for ci := range ch.cols {
					sliceCol(&w[ci], &ch.cols[ci], lo, hi)
				}
				head.colFn(rows[off+lo:off+hi], w, headNext)
			}
			off += cn
		}
	} else {
		for _, r := range rows {
			emit(r)
		}
	}
	for i := len(flushes) - 1; i >= 0; i-- {
		flushes[i].flush(flushes[i].next)
	}
}

// colChunk is one source's contribution to a shuffled partition's columnar
// mirror: uniform-width columns covering a contiguous run (cols[0].Len rows)
// of the partition, in bucket-concatenation order.
type colChunk struct {
	cols []Column
}

// partChunks returns the columnar mirror of one partition, or nil when absent
// or inconsistent with the partition's row count.
func (d *Dataset) partChunks(part, nrows int) []colChunk {
	if d.colChunks == nil || part >= len(d.colChunks) || nrows == 0 {
		return nil
	}
	chunks := d.colChunks[part]
	n := 0
	for _, ch := range chunks {
		if len(ch.cols) == 0 {
			return nil
		}
		n += ch.cols[0].Len
	}
	if n != nrows {
		return nil
	}
	return chunks
}

// force runs the pending fused chain (in parallel over the worker pool) and
// caches the materialized partitions in place, returning (and recording) the
// first failure. Idempotent; a dataset with no pending stages is already
// materialized.
func (d *Dataset) force() error {
	if len(d.stages) == 0 {
		return d.err
	}
	parts := make([][]Row, len(d.parts))
	err := d.ctx.runParts(len(d.parts), func(i int) error {
		var out []Row
		d.feed(i, func(r Row) { out = append(out, r) })
		parts[i] = out
		return nil
	})
	d.parts = parts
	d.stages = nil
	d.colChunks = nil // the mirror described the pre-chain rows
	if err != nil && d.err == nil {
		d.err = err
	}
	return d.err
}

// Force materializes any pending fused stages in place and returns d. Wide
// operators and actions force automatically; callers that publish a dataset
// to concurrent readers, or that time a run, force explicitly first so no
// deferred work escapes them. Check Err afterwards: a recovered partition
// panic or memory-cap hit poisons the dataset instead of crashing.
func (d *Dataset) Force() *Dataset {
	d.force()
	return d
}

// Err reports the failure that poisoned the dataset, if any.
func (d *Dataset) Err() error { return d.err }

// Count returns the total number of rows, materializing pending stages.
func (d *Dataset) Count() int64 {
	d.force()
	var n int64
	for _, p := range d.parts {
		n += int64(len(p))
	}
	return n
}

// SizeBytes estimates the total materialized size.
func (d *Dataset) SizeBytes() int64 {
	d.force()
	var s int64
	for _, p := range d.parts {
		s += value.SizeRows(p)
	}
	return s
}

// Collect gathers all rows into one slice (driver-side action).
func (d *Dataset) Collect() []Row {
	d.force()
	out := make([]Row, 0, d.Count())
	for _, p := range d.parts {
		out = append(out, p...)
	}
	return out
}

// CollectSorted gathers all rows in the deterministic value order, for tests
// and reproducible output.
func (d *Dataset) CollectSorted() []Row {
	rows := d.Collect()
	sort.Slice(rows, func(i, j int) bool {
		return value.Compare(value.Tuple(rows[i]), value.Tuple(rows[j])) < 0
	})
	return rows
}

// Map applies fn to every row. Narrow, fused, and lazy: nothing runs until a
// wide operator or action consumes the dataset. Preserves partitioning only
// if the caller says key columns survive — use MapPreserving for that.
func (d *Dataset) Map(fn func(Row) Row) *Dataset {
	return d.withStage(func(int) stage {
		return stage{fn: func(r Row, emit func(Row)) { emit(fn(r)) }}
	})
}

// MapPreserving is Map for transformations that leave the key columns of the
// current partitioning guarantee intact at the same positions, so the
// guarantee survives (e.g. value-side projections of a dictionary).
func (d *Dataset) MapPreserving(fn func(Row) Row) *Dataset {
	out := d.Map(fn)
	out.partitioner = d.partitioner
	return out
}

// Filter keeps rows satisfying pred. Narrow, fused, lazy; preserves the
// partitioning guarantee.
func (d *Dataset) Filter(pred func(Row) bool) *Dataset {
	out := d.withStage(func(int) stage {
		return stage{fn: func(r Row, emit func(Row)) {
			if pred(r) {
				emit(r)
			}
		}}
	})
	out.partitioner = d.partitioner
	return out
}

// FilterVec keeps rows satisfying a batched predicate. Rows are buffered into
// BatchSize windows; pred sees one window at a time and returns its selection
// bitmap (typically produced by the vector kernels over transposed columns).
// cols is non-nil only when the window arrived pre-transposed from a columnar
// shuffle (the stage heads the chain of such a partition); predicates should
// prefer those columns over re-transposing rows. Selected rows are emitted
// untouched — no reconstruction from columns — so results are bit-identical
// to Filter with the equivalent row predicate. Narrow, fused, lazy; preserves
// the partitioning guarantee.
func (d *Dataset) FilterVec(pred func(rows []Row, cols []Column) Bitmap) *Dataset {
	m := &d.ctx.Metrics
	out := d.withStage(func(int) stage {
		var bufp *[]Row
		run := func(emit func(Row)) {
			if bufp == nil || len(*bufp) == 0 {
				return
			}
			buf := *bufp
			sel := pred(buf, nil)
			for i, r := range buf {
				if sel.Get(i) {
					emit(r)
				}
			}
			m.VectorizedBatches.Add(1)
			m.VectorizedRows.Add(int64(len(buf)))
			*bufp = buf[:0]
		}
		return stage{
			fn: func(r Row, emit func(Row)) {
				if bufp == nil {
					bufp = getRowBuf()
				}
				*bufp = append(*bufp, r)
				if len(*bufp) == BatchSize {
					run(emit)
				}
			},
			flush: func(emit func(Row)) {
				run(emit)
				bufp = putRowBuf(bufp)
			},
			colFn: func(rows []Row, cols []Column, emit func(Row)) {
				sel := pred(rows, cols)
				for i, r := range rows {
					if sel.Get(i) {
						emit(r)
					}
				}
				m.VectorizedBatches.Add(1)
				m.VectorizedRows.Add(int64(len(rows)))
			},
		}
	})
	out.partitioner = d.partitioner
	return out
}

// MapVec applies a batched 1:1 transform: fn receives a BatchSize window and
// must return exactly one output row per input row, in order. cols is non-nil
// only when the window arrived pre-transposed from a columnar shuffle, as in
// FilterVec. Narrow, fused, lazy; drops the guarantee (use MapVecPreserving
// when key columns survive).
func (d *Dataset) MapVec(fn func(rows []Row, cols []Column) []Row) *Dataset {
	m := &d.ctx.Metrics
	return d.withStage(func(int) stage {
		var bufp *[]Row
		run := func(emit func(Row)) {
			if bufp == nil || len(*bufp) == 0 {
				return
			}
			buf := *bufp
			for _, r := range fn(buf, nil) {
				emit(r)
			}
			m.VectorizedBatches.Add(1)
			m.VectorizedRows.Add(int64(len(buf)))
			*bufp = buf[:0]
		}
		return stage{
			fn: func(r Row, emit func(Row)) {
				if bufp == nil {
					bufp = getRowBuf()
				}
				*bufp = append(*bufp, r)
				if len(*bufp) == BatchSize {
					run(emit)
				}
			},
			flush: func(emit func(Row)) {
				run(emit)
				bufp = putRowBuf(bufp)
			},
			colFn: func(rows []Row, cols []Column, emit func(Row)) {
				for _, r := range fn(rows, cols) {
					emit(r)
				}
				m.VectorizedBatches.Add(1)
				m.VectorizedRows.Add(int64(len(rows)))
			},
		}
	})
}

// MapVecPreserving is MapVec keeping the partitioning guarantee; the caller
// asserts key columns survive in place.
func (d *Dataset) MapVecPreserving(fn func(rows []Row, cols []Column) []Row) *Dataset {
	out := d.MapVec(fn)
	out.partitioner = d.partitioner
	return out
}

// FlatMap expands every row to zero or more rows. Narrow, fused, lazy; drops
// the guarantee.
func (d *Dataset) FlatMap(fn func(Row) []Row) *Dataset {
	return d.withStage(func(int) stage {
		return stage{fn: func(r Row, emit func(Row)) {
			for _, o := range fn(r) {
				emit(o)
			}
		}}
	})
}

// FlatMapPreserving is FlatMap keeping the partitioning guarantee; the caller
// asserts key columns survive in place (e.g. unnesting a dictionary value bag
// while keeping the label column).
func (d *Dataset) FlatMapPreserving(fn func(Row) []Row) *Dataset {
	out := d.FlatMap(fn)
	out.partitioner = d.partitioner
	return out
}

// AddUniqueID appends a new column holding an ID unique across the dataset,
// without any shuffle: IDs combine the partition index and a per-partition
// sequence number, assigned by a fused stage whose counter is instantiated
// per partition per pass (so replays produce identical IDs). This implements
// the unique-ID insertion performed by the outer-unnest operator of the
// paper.
func (d *Dataset) AddUniqueID() *Dataset {
	out := d.withStage(func(part int) stage {
		base := int64(part) << 40
		var seq int64
		return stage{fn: func(r Row, emit func(Row)) {
			nr := make(Row, len(r)+1)
			copy(nr, r)
			nr[len(r)] = base | seq
			seq++
			emit(nr)
		}}
	})
	out.partitioner = d.partitioner
	return out
}

// Union concatenates two datasets partition-wise (no shuffle, guarantee
// dropped — Spark's union likewise drops the partitioner). Both sides are
// materialized first so their fused chains are not cross-multiplied.
func (d *Dataset) Union(o *Dataset) *Dataset {
	d.force()
	o.force()
	n := len(d.parts)
	if len(o.parts) > n {
		n = len(o.parts)
	}
	parts := make([][]Row, n)
	for i := 0; i < n; i++ {
		var p []Row
		if i < len(d.parts) {
			p = append(p, d.parts[i]...)
		}
		if i < len(o.parts) {
			p = append(p, o.parts[i]...)
		}
		parts[i] = p
	}
	return &Dataset{ctx: d.ctx, parts: parts, err: errors.Join(d.err, o.err)}
}

// CheckMemory materializes pending stages and enforces the per-partition
// memory cap, recording the peak. Operators that materially expand data in
// place (flattening a nested collection) call it to model worker memory
// pressure outside shuffle boundaries.
func (d *Dataset) CheckMemory(stage string) error {
	return d.ctx.timeStage(stage, func() error {
		if err := d.force(); err != nil {
			return err
		}
		return d.ctx.checkPartitions(stage, d.parts)
	})
}
