package dataflow

import (
	"sort"

	"github.com/trance-go/trance/internal/value"
)

// Partitioner records a key-based partitioning guarantee: all rows whose
// composite key over Cols is equal live in the same partition.
type Partitioner struct {
	Cols []int
}

// equal reports whether two guarantees are the same column sequence.
func (p *Partitioner) equal(o *Partitioner) bool {
	if p == nil || o == nil {
		return false
	}
	if len(p.Cols) != len(o.Cols) {
		return false
	}
	for i := range p.Cols {
		if p.Cols[i] != o.Cols[i] {
			return false
		}
	}
	return true
}

// Dataset is a partitioned, immutable collection of rows bound to a Context.
type Dataset struct {
	ctx         *Context
	parts       [][]Row
	partitioner *Partitioner
}

// FromRows distributes rows round-robin over Parallelism partitions. Inputs
// that have not been altered by an operator carry no partitioning guarantee
// (paper Section 3).
func (c *Context) FromRows(rows []Row) *Dataset {
	n := c.Parallelism
	parts := make([][]Row, n)
	per := (len(rows) + n - 1) / n
	for i := range parts {
		lo := i * per
		hi := lo + per
		if lo > len(rows) {
			lo = len(rows)
		}
		if hi > len(rows) {
			hi = len(rows)
		}
		parts[i] = rows[lo:hi]
	}
	return &Dataset{ctx: c, parts: parts}
}

// FromPartitions wraps pre-partitioned rows; used by tests and by operators.
func (c *Context) FromPartitions(parts [][]Row) *Dataset {
	return &Dataset{ctx: c, parts: parts}
}

// Context returns the engine context the dataset is bound to.
func (d *Dataset) Context() *Context { return d.ctx }

// NumPartitions returns the partition count.
func (d *Dataset) NumPartitions() int { return len(d.parts) }

// Partitioner returns the current partitioning guarantee, or nil.
func (d *Dataset) Partitioner() *Partitioner { return d.partitioner }

// Count returns the total number of rows.
func (d *Dataset) Count() int64 {
	var n int64
	for _, p := range d.parts {
		n += int64(len(p))
	}
	return n
}

// SizeBytes estimates the total materialized size.
func (d *Dataset) SizeBytes() int64 {
	var s int64
	for _, p := range d.parts {
		s += value.SizeRows(p)
	}
	return s
}

// Collect gathers all rows into one slice (driver-side action).
func (d *Dataset) Collect() []Row {
	out := make([]Row, 0, d.Count())
	for _, p := range d.parts {
		out = append(out, p...)
	}
	return out
}

// CollectSorted gathers all rows in the deterministic value order, for tests
// and reproducible output.
func (d *Dataset) CollectSorted() []Row {
	rows := d.Collect()
	sort.Slice(rows, func(i, j int) bool {
		return value.Compare(value.Tuple(rows[i]), value.Tuple(rows[j])) < 0
	})
	return rows
}

// Map applies fn to every row. Narrow (no shuffle); preserves partitioning
// only if the caller says key columns survive — use MapPreserving for that.
func (d *Dataset) Map(fn func(Row) Row) *Dataset {
	out := d.mapPartitions(func(rows []Row) []Row {
		res := make([]Row, len(rows))
		for i, r := range rows {
			res[i] = fn(r)
		}
		return res
	})
	return out
}

// MapPreserving is Map for transformations that leave the key columns of the
// current partitioning guarantee intact at the same positions, so the
// guarantee survives (e.g. value-side projections of a dictionary).
func (d *Dataset) MapPreserving(fn func(Row) Row) *Dataset {
	out := d.Map(fn)
	out.partitioner = d.partitioner
	return out
}

// Filter keeps rows satisfying pred. Preserves the partitioning guarantee.
func (d *Dataset) Filter(pred func(Row) bool) *Dataset {
	out := d.mapPartitions(func(rows []Row) []Row {
		res := make([]Row, 0, len(rows))
		for _, r := range rows {
			if pred(r) {
				res = append(res, r)
			}
		}
		return res
	})
	out.partitioner = d.partitioner
	return out
}

// FlatMap expands every row to zero or more rows. Drops the guarantee.
func (d *Dataset) FlatMap(fn func(Row) []Row) *Dataset {
	return d.mapPartitions(func(rows []Row) []Row {
		var res []Row
		for _, r := range rows {
			res = append(res, fn(r)...)
		}
		return res
	})
}

// FlatMapPreserving is FlatMap keeping the partitioning guarantee; the caller
// asserts key columns survive in place (e.g. unnesting a dictionary value bag
// while keeping the label column).
func (d *Dataset) FlatMapPreserving(fn func(Row) []Row) *Dataset {
	out := d.FlatMap(fn)
	out.partitioner = d.partitioner
	return out
}

// mapPartitions applies fn to each partition in parallel.
func (d *Dataset) mapPartitions(fn func([]Row) []Row) *Dataset {
	parts := make([][]Row, len(d.parts))
	_ = runParts(len(d.parts), func(i int) error {
		parts[i] = fn(d.parts[i])
		return nil
	})
	return &Dataset{ctx: d.ctx, parts: parts}
}

// Union concatenates two datasets partition-wise (no shuffle, guarantee
// dropped — Spark's union likewise drops the partitioner).
func (d *Dataset) Union(o *Dataset) *Dataset {
	n := len(d.parts)
	if len(o.parts) > n {
		n = len(o.parts)
	}
	parts := make([][]Row, n)
	for i := 0; i < n; i++ {
		var p []Row
		if i < len(d.parts) {
			p = append(p, d.parts[i]...)
		}
		if i < len(o.parts) {
			p = append(p, o.parts[i]...)
		}
		parts[i] = p
	}
	return &Dataset{ctx: d.ctx, parts: parts}
}

// AddUniqueID appends a new column holding an ID unique across the dataset,
// without any shuffle: IDs combine the partition index and a per-partition
// sequence number. This implements the unique-ID insertion performed by the
// outer-unnest operator of the paper.
func (d *Dataset) AddUniqueID() *Dataset {
	parts := make([][]Row, len(d.parts))
	_ = runParts(len(d.parts), func(i int) error {
		src := d.parts[i]
		res := make([]Row, len(src))
		base := int64(i) << 40
		for j, r := range src {
			nr := make(Row, len(r)+1)
			copy(nr, r)
			nr[len(r)] = base | int64(j)
			res[j] = nr
		}
		parts[i] = res
		return nil
	})
	out := &Dataset{ctx: d.ctx, parts: parts}
	out.partitioner = d.partitioner
	return out
}

// Empty returns an empty dataset with the context's parallelism.
func (c *Context) Empty() *Dataset {
	return &Dataset{ctx: c, parts: make([][]Row, c.Parallelism)}
}

// CheckMemory enforces the per-partition memory cap on the dataset's current
// partitions, recording the peak. Operators that materially expand data in
// place (flattening a nested collection) call it to model worker memory
// pressure outside shuffle boundaries.
func (d *Dataset) CheckMemory(stage string) error {
	return d.ctx.checkPartitions(stage, d.parts)
}
