package dataflow

import (
	"time"

	"github.com/trance-go/trance/internal/value"
)

// GroupReduce hash-partitions by the key columns (skipping the shuffle when
// the guarantee already holds) and applies reduce to every key group,
// streaming rows through any pending fused operator chain into the group
// table. The groups slice passed to reduce contains all rows sharing the
// composite key; rows keep their original layout. The result carries no
// guarantee; callers that keep key columns in place can reinstate it with
// WithPartitioner.
func (d *Dataset) GroupReduce(stage string, cols []int, reduce func(rows []Row) []Row) (*Dataset, error) {
	sh, err := d.RepartitionBy(stage, cols)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	parts := make([][]Row, len(sh.parts))
	reduceErr := d.ctx.runParts(len(sh.parts), func(i int) error {
		groups := make(map[string][]Row)
		order := make([]string, 0, 64)
		sh.feed(i, func(r Row) {
			k := value.KeyCols(r, cols)
			if _, ok := groups[k]; !ok {
				order = append(order, k)
			}
			groups[k] = append(groups[k], r)
		})
		var out []Row
		for _, k := range order {
			out = append(out, reduce(groups[k])...)
		}
		parts[i] = out
		return nil
	})
	d.ctx.Metrics.AddStageWall(stage+"/reduce", time.Since(start))
	if reduceErr != nil {
		return nil, reduceErr
	}
	if err := d.ctx.checkPartitions(stage+"/reduce", parts); err != nil {
		return nil, err
	}
	return &Dataset{ctx: d.ctx, parts: parts}, nil
}

// WithPartitioner asserts a partitioning guarantee on the dataset. It is the
// caller's responsibility that the assertion holds (used by executor
// operators whose output provably keeps key co-location).
func (d *Dataset) WithPartitioner(cols []int) *Dataset {
	d.partitioner = &Partitioner{Cols: cols}
	return d
}

// Distinct removes duplicate rows (whole-row key). Implements the paper's
// dedup over flat bags: one shuffle, then per-partition elimination. Pending
// stages are materialized first because the key spans every output column.
func (d *Dataset) Distinct(stage string) (*Dataset, error) {
	if err := d.force(); err != nil {
		return nil, err
	}
	width := 0
	for _, p := range d.parts {
		if len(p) > 0 {
			width = len(p[0])
			break
		}
	}
	cols := make([]int, width)
	for i := range cols {
		cols[i] = i
	}
	return d.GroupReduce(stage, cols, func(rows []Row) []Row { return rows[:1] })
}
