package dataflow

import (
	"fmt"
	"testing"
)

func benchRows(n int) []Row {
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{int64(i % 97), int64(i), fmt.Sprintf("payload-%d", i%13)}
	}
	return rows
}

// BenchmarkShuffle measures the engine's hash repartitioning throughput —
// the dominant cost of every distributed strategy.
func BenchmarkShuffle(b *testing.B) {
	rows := benchRows(50_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := NewContext(8)
		if _, err := c.FromRows(rows).RepartitionBy("b", []int{0}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColumnarShuffle compares the typed-column exchange against the
// BoxedExchange ablation on the same typed-key repartition, reporting the
// metered ShuffleBytes per op so benchstat can compare the two encodings
// directly. Two row shapes bracket the compact encoding's win: "mixed"
// (int64/float64/string/bool — scalars and string bytes meter the same both
// ways, so the saving is the dropped per-row tuple framing plus bit-packed
// bools) and "flags" (two int64s and six bools — the flag-heavy shape where
// bit-packing one-eighth-sizes most of the row).
func BenchmarkColumnarShuffle(b *testing.B) {
	mixed := make([]Row, 50_000)
	for i := range mixed {
		mixed[i] = Row{
			int64(i % 211),
			int64(i),
			float64(i) / 7,
			fmt.Sprintf("payload-%d", i%13),
			i%2 == 0,
			i%3 == 0,
			i%5 == 0,
		}
	}
	flags := make([]Row, 50_000)
	for i := range flags {
		flags[i] = Row{
			int64(i % 211),
			int64(i),
			i%2 == 0,
			i%3 == 0,
			i%5 == 0,
			i%7 == 0,
			i%11 == 0,
			i%13 == 0,
		}
	}
	for _, s := range []struct {
		name string
		rows []Row
	}{
		{"schema=mixed", mixed},
		{"schema=flags", flags},
	} {
		for _, boxed := range []bool{false, true} {
			name := s.name + "/exchange=columnar"
			if boxed {
				name = s.name + "/exchange=boxed"
			}
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				var bytes int64
				for i := 0; i < b.N; i++ {
					c := NewContext(8)
					c.BoxedExchange = boxed
					d, err := c.FromRows(s.rows).RepartitionBy("b", []int{0})
					if err != nil {
						b.Fatal(err)
					}
					if d.Count() != int64(len(s.rows)) {
						b.Fatal("wrong count")
					}
					bytes = c.Metrics.Snapshot().ShuffleBytes
				}
				b.ReportMetric(float64(bytes), "shuffle-B/op")
			})
		}
	}
}

// BenchmarkHashJoin measures the build-probe equi-join.
func BenchmarkHashJoin(b *testing.B) {
	left := benchRows(20_000)
	right := benchRows(5_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := NewContext(8)
		l := c.FromRows(left)
		r := c.FromRows(right)
		if _, err := l.Join("b", r, []int{0}, []int{0}, 3, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBroadcastJoin measures the shuffle-free broadcast variant used
// for small inputs and skewed heavy keys.
func BenchmarkBroadcastJoin(b *testing.B) {
	left := benchRows(20_000)
	right := benchRows(500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := NewContext(8)
		l := c.FromRows(left)
		r := c.FromRows(right)
		if _, err := l.BroadcastJoin("b", r, []int{0}, []int{0}, 3, false); err != nil {
			b.Fatal(err)
		}
	}
}

// narrowChain applies the benchmark's three-operator narrow chain to d.
func narrowChain(d *Dataset) *Dataset {
	return d.
		Map(func(r Row) Row { return Row{r[0], r[1].(int64) * 3, r[2]} }).
		Filter(func(r Row) bool { return r[1].(int64)%2 == 0 }).
		Map(func(r Row) Row { return Row{r[0], r[1]} })
}

// BenchmarkNarrowChainFused measures a map→filter→map chain executed the
// pipelined way: one fused pass, no intermediate partitions.
func BenchmarkNarrowChainFused(b *testing.B) {
	rows := benchRows(50_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := NewContext(8)
		if narrowChain(c.FromRows(rows)).Count() != 25_000 {
			b.Fatal("wrong count")
		}
	}
}

// BenchmarkNarrowChainMaterialized measures the same chain with every
// intermediate forced — how the engine executed before operator fusion.
func BenchmarkNarrowChainMaterialized(b *testing.B) {
	rows := benchRows(50_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := NewContext(8)
		d := c.FromRows(rows)
		d = d.Map(func(r Row) Row { return Row{r[0], r[1].(int64) * 3, r[2]} })
		d.force()
		d = d.Filter(func(r Row) bool { return r[1].(int64)%2 == 0 })
		d.force()
		d = d.Map(func(r Row) Row { return Row{r[0], r[1]} })
		d.force()
		if d.Count() != 25_000 {
			b.Fatal("wrong count")
		}
	}
}

// BenchmarkFusedShuffle measures a narrow chain flowing straight into a
// shuffle — the map side consumes the fused chain without materializing the
// pre-shuffle dataset.
func BenchmarkFusedShuffle(b *testing.B) {
	rows := benchRows(50_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := NewContext(8)
		if _, err := narrowChain(c.FromRows(rows)).RepartitionBy("b", []int{0}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupReduce measures key-based reduction (the engine primitive
// under Γ⊎ and Γ+).
func BenchmarkGroupReduce(b *testing.B) {
	rows := benchRows(50_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := NewContext(8)
		_, err := c.FromRows(rows).GroupReduce("b", []int{0}, func(rs []Row) []Row {
			var s int64
			for _, r := range rs {
				s += r[1].(int64)
			}
			return []Row{{rs[0][0], s}}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
