package dataflow

import (
	"fmt"
	"testing"
)

func benchRows(n int) []Row {
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{int64(i % 97), int64(i), fmt.Sprintf("payload-%d", i%13)}
	}
	return rows
}

// BenchmarkShuffle measures the engine's hash repartitioning throughput —
// the dominant cost of every distributed strategy.
func BenchmarkShuffle(b *testing.B) {
	rows := benchRows(50_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := NewContext(8)
		if _, err := c.FromRows(rows).RepartitionBy("b", []int{0}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHashJoin measures the build-probe equi-join.
func BenchmarkHashJoin(b *testing.B) {
	left := benchRows(20_000)
	right := benchRows(5_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := NewContext(8)
		l := c.FromRows(left)
		r := c.FromRows(right)
		if _, err := l.Join("b", r, []int{0}, []int{0}, 3, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBroadcastJoin measures the shuffle-free broadcast variant used
// for small inputs and skewed heavy keys.
func BenchmarkBroadcastJoin(b *testing.B) {
	left := benchRows(20_000)
	right := benchRows(500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := NewContext(8)
		l := c.FromRows(left)
		r := c.FromRows(right)
		if _, err := l.BroadcastJoin("b", r, []int{0}, []int{0}, 3, false); err != nil {
			b.Fatal(err)
		}
	}
}

// narrowChain applies the benchmark's three-operator narrow chain to d.
func narrowChain(d *Dataset) *Dataset {
	return d.
		Map(func(r Row) Row { return Row{r[0], r[1].(int64) * 3, r[2]} }).
		Filter(func(r Row) bool { return r[1].(int64)%2 == 0 }).
		Map(func(r Row) Row { return Row{r[0], r[1]} })
}

// BenchmarkNarrowChainFused measures a map→filter→map chain executed the
// pipelined way: one fused pass, no intermediate partitions.
func BenchmarkNarrowChainFused(b *testing.B) {
	rows := benchRows(50_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := NewContext(8)
		if narrowChain(c.FromRows(rows)).Count() != 25_000 {
			b.Fatal("wrong count")
		}
	}
}

// BenchmarkNarrowChainMaterialized measures the same chain with every
// intermediate forced — how the engine executed before operator fusion.
func BenchmarkNarrowChainMaterialized(b *testing.B) {
	rows := benchRows(50_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := NewContext(8)
		d := c.FromRows(rows)
		d = d.Map(func(r Row) Row { return Row{r[0], r[1].(int64) * 3, r[2]} })
		d.force()
		d = d.Filter(func(r Row) bool { return r[1].(int64)%2 == 0 })
		d.force()
		d = d.Map(func(r Row) Row { return Row{r[0], r[1]} })
		d.force()
		if d.Count() != 25_000 {
			b.Fatal("wrong count")
		}
	}
}

// BenchmarkFusedShuffle measures a narrow chain flowing straight into a
// shuffle — the map side consumes the fused chain without materializing the
// pre-shuffle dataset.
func BenchmarkFusedShuffle(b *testing.B) {
	rows := benchRows(50_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := NewContext(8)
		if _, err := narrowChain(c.FromRows(rows)).RepartitionBy("b", []int{0}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupReduce measures key-based reduction (the engine primitive
// under Γ⊎ and Γ+).
func BenchmarkGroupReduce(b *testing.B) {
	rows := benchRows(50_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := NewContext(8)
		_, err := c.FromRows(rows).GroupReduce("b", []int{0}, func(rs []Row) []Row {
			var s int64
			for _, r := range rs {
				s += r[1].(int64)
			}
			return []Row{{rs[0][0], s}}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
