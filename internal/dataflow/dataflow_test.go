package dataflow

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/trance-go/trance/internal/value"
)

func rowsOfInts(pairs ...int64) []Row {
	out := make([]Row, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, Row{pairs[i], pairs[i+1]})
	}
	return out
}

func TestFromRowsRoundTrip(t *testing.T) {
	c := NewContext(4)
	rows := rowsOfInts(1, 10, 2, 20, 3, 30, 4, 40, 5, 50)
	d := c.FromRows(rows)
	if d.Count() != 5 {
		t.Fatalf("count=%d", d.Count())
	}
	if d.NumPartitions() != 4 {
		t.Fatalf("parts=%d", d.NumPartitions())
	}
	got := d.CollectSorted()
	if len(got) != 5 || got[0][0].(int64) != 1 || got[4][1].(int64) != 50 {
		t.Fatalf("collect wrong: %v", got)
	}
}

func TestMapFilterFlatMap(t *testing.T) {
	c := NewContext(3)
	d := c.FromRows(rowsOfInts(1, 1, 2, 2, 3, 3, 4, 4))
	doubled := d.Map(func(r Row) Row { return Row{r[0], r[1].(int64) * 2} })
	evens := doubled.Filter(func(r Row) bool { return r[1].(int64)%4 == 0 })
	if evens.Count() != 2 {
		t.Fatalf("filter count=%d", evens.Count())
	}
	expanded := d.FlatMap(func(r Row) []Row {
		n := int(r[0].(int64))
		out := make([]Row, n)
		for i := range out {
			out[i] = Row{r[0], int64(i)}
		}
		return out
	})
	if expanded.Count() != 1+2+3+4 {
		t.Fatalf("flatmap count=%d", expanded.Count())
	}
}

func TestRepartitionColocatesKeys(t *testing.T) {
	c := NewContext(5)
	var rows []Row
	for i := 0; i < 100; i++ {
		rows = append(rows, Row{int64(i % 7), int64(i)})
	}
	d, err := c.FromRows(rows).RepartitionBy("t", []int{0})
	if err != nil {
		t.Fatal(err)
	}
	// Every key must live in exactly one partition.
	where := map[string]int{}
	for pi, p := range d.parts {
		for _, r := range p {
			k := value.Key(r[0])
			if prev, ok := where[k]; ok && prev != pi {
				t.Fatalf("key %v split across partitions %d and %d", r[0], prev, pi)
			}
			where[k] = pi
		}
	}
	if d.Count() != 100 {
		t.Fatalf("rows lost: %d", d.Count())
	}
}

func TestPartitioningGuaranteeSkipsShuffle(t *testing.T) {
	c := NewContext(4)
	d, err := c.FromRows(rowsOfInts(1, 1, 2, 2, 3, 3)).RepartitionBy("a", []int{0})
	if err != nil {
		t.Fatal(err)
	}
	before := c.Metrics.Snapshot()
	d2, err := d.RepartitionBy("b", []int{0})
	if err != nil {
		t.Fatal(err)
	}
	after := c.Metrics.Snapshot()
	if after.ShuffleRecords != before.ShuffleRecords {
		t.Fatal("second repartition on same key must not shuffle")
	}
	if after.SkippedShuffles != before.SkippedShuffles+1 {
		t.Fatal("skipped shuffle not recorded")
	}
	if d2 != d {
		t.Fatal("no-op repartition should return the same dataset")
	}
}

func TestShuffleMetrics(t *testing.T) {
	c := NewContext(4)
	d := c.FromRows(rowsOfInts(1, 1, 2, 2, 3, 3, 4, 4))
	_, err := d.RepartitionBy("t", []int{0})
	if err != nil {
		t.Fatal(err)
	}
	m := c.Metrics.Snapshot()
	if m.ShuffleRecords != 4 {
		t.Fatalf("shuffle records=%d want 4", m.ShuffleRecords)
	}
	if m.ShuffleBytes <= 0 || m.Stages != 1 {
		t.Fatalf("metrics wrong: %+v", m)
	}
}

func TestInnerJoin(t *testing.T) {
	c := NewContext(4)
	l := c.FromRows([]Row{{int64(1), "a"}, {int64(2), "b"}, {int64(2), "b2"}, {int64(3), "c"}})
	r := c.FromRows([]Row{{int64(2), "X"}, {int64(2), "Y"}, {int64(3), "Z"}, {int64(9), "w"}})
	j, err := l.Join("j", r, []int{0}, []int{0}, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	got := j.CollectSorted()
	// key 2: 2 left × 2 right = 4; key 3: 1; total 5.
	if len(got) != 5 {
		t.Fatalf("join rows=%d want 5: %v", len(got), got)
	}
	for _, row := range got {
		if !value.Equal(row[0], row[2]) {
			t.Fatalf("key mismatch in %v", row)
		}
	}
}

func TestLeftOuterJoinPadsNulls(t *testing.T) {
	c := NewContext(3)
	l := c.FromRows([]Row{{int64(1), "a"}, {int64(2), "b"}})
	r := c.FromRows([]Row{{int64(2), "X"}})
	j, err := l.Join("j", r, []int{0}, []int{0}, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	got := j.CollectSorted()
	if len(got) != 2 {
		t.Fatalf("rows=%d", len(got))
	}
	miss := got[0]
	if miss[0].(int64) != 1 || miss[2] != nil || miss[3] != nil {
		t.Fatalf("outer miss not padded: %v", miss)
	}
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	c := NewContext(2)
	l := c.FromRows([]Row{{nil, "a"}, {int64(1), "b"}})
	r := c.FromRows([]Row{{nil, "X"}, {int64(1), "Y"}})
	inner, err := l.Join("j", r, []int{0}, []int{0}, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if inner.Count() != 1 {
		t.Fatalf("null keys must not match, got %d rows", inner.Count())
	}
	outer, err := l.Join("j2", r, []int{0}, []int{0}, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if outer.Count() != 2 {
		t.Fatalf("outer should keep null-key left row: %d", outer.Count())
	}
}

func TestBroadcastJoinNoShuffleOfLeft(t *testing.T) {
	c := NewContext(4)
	var rows []Row
	for i := 0; i < 50; i++ {
		rows = append(rows, Row{int64(i % 5), int64(i)})
	}
	l := c.FromRows(rows)
	r := c.FromRows([]Row{{int64(0), "z"}, {int64(1), "o"}})
	before := c.Metrics.Snapshot()
	j, err := l.BroadcastJoin("bj", r, []int{0}, []int{0}, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	after := c.Metrics.Snapshot()
	if after.ShuffleRecords != before.ShuffleRecords {
		t.Fatal("broadcast join must not shuffle")
	}
	if after.BroadcastBytes == before.BroadcastBytes {
		t.Fatal("broadcast bytes not metered")
	}
	if j.Count() != 20 {
		t.Fatalf("join count=%d want 20", j.Count())
	}
}

func TestGroupReduceSum(t *testing.T) {
	c := NewContext(4)
	var rows []Row
	for i := 0; i < 40; i++ {
		rows = append(rows, Row{int64(i % 4), int64(1)})
	}
	g, err := c.FromRows(rows).GroupReduce("g", []int{0}, func(rs []Row) []Row {
		var s int64
		for _, r := range rs {
			s += r[1].(int64)
		}
		return []Row{{rs[0][0], s}}
	})
	if err != nil {
		t.Fatal(err)
	}
	got := g.CollectSorted()
	if len(got) != 4 {
		t.Fatalf("groups=%d", len(got))
	}
	for _, r := range got {
		if r[1].(int64) != 10 {
			t.Fatalf("bad sum: %v", r)
		}
	}
}

func TestDistinct(t *testing.T) {
	c := NewContext(4)
	d := c.FromRows([]Row{{int64(1), "a"}, {int64(1), "a"}, {int64(1), "b"}, {int64(2), "a"}})
	u, err := d.Distinct("d")
	if err != nil {
		t.Fatal(err)
	}
	if u.Count() != 3 {
		t.Fatalf("distinct=%d want 3", u.Count())
	}
}

func TestCoGroup(t *testing.T) {
	c := NewContext(3)
	l := c.FromRows([]Row{{int64(1), "a"}, {int64(1), "b"}, {int64(2), "c"}})
	r := c.FromRows([]Row{{int64(1), int64(10)}, {int64(3), int64(30)}})
	cg, err := l.CoGroup("cg", r, []int{0}, []int{0}, func(ls, rs []Row) []Row {
		return []Row{{ls[0][0], int64(len(ls)), int64(len(rs))}}
	})
	if err != nil {
		t.Fatal(err)
	}
	got := cg.CollectSorted()
	// Keys from the left drive the output: 1 (2 left, 1 right), 2 (1 left, 0).
	if len(got) != 2 {
		t.Fatalf("cogroup keys=%d: %v", len(got), got)
	}
	if got[0][1].(int64) != 2 || got[0][2].(int64) != 1 {
		t.Fatalf("key1 wrong: %v", got[0])
	}
	if got[1][1].(int64) != 1 || got[1][2].(int64) != 0 {
		t.Fatalf("key2 wrong: %v", got[1])
	}
}

func TestUnionAndAddUniqueID(t *testing.T) {
	c := NewContext(3)
	a := c.FromRows(rowsOfInts(1, 1, 2, 2))
	b := c.FromRows(rowsOfInts(3, 3))
	u := a.Union(b)
	if u.Count() != 3 {
		t.Fatalf("union=%d", u.Count())
	}
	withID := u.AddUniqueID()
	seen := map[int64]bool{}
	for _, r := range withID.Collect() {
		id := r[2].(int64)
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
}

func TestMemoryCapFailsJob(t *testing.T) {
	c := NewContext(4)
	c.MaxPartitionBytes = 64 // tiny cap
	var rows []Row
	for i := 0; i < 100; i++ {
		rows = append(rows, Row{int64(7), int64(i)}) // all on one partition
	}
	_, err := c.FromRows(rows).RepartitionBy("skewed", []int{0})
	if !errors.Is(err, ErrMemoryExceeded) {
		t.Fatalf("want ErrMemoryExceeded, got %v", err)
	}
}

func TestMemoryCapPassesWhenBalanced(t *testing.T) {
	c := NewContext(4)
	c.MaxPartitionBytes = 4096
	var rows []Row
	for i := 0; i < 100; i++ {
		rows = append(rows, Row{int64(i), int64(i)})
	}
	d, err := c.FromRows(rows).RepartitionBy("ok", []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if d.Count() != 100 {
		t.Fatal("rows lost")
	}
	if c.Metrics.Snapshot().PeakPartition == 0 {
		t.Fatal("peak partition not tracked")
	}
}

func TestSamplePartitionsDeterministic(t *testing.T) {
	c := NewContext(2)
	var rows []Row
	for i := 0; i < 1000; i++ {
		rows = append(rows, Row{int64(i)})
	}
	d := c.FromRows(rows)
	collect := func() map[int][]Row {
		out := map[int][]Row{}
		d.SamplePartitions(10, func(p int, s []Row) {
			cp := make([]Row, len(s))
			copy(cp, s)
			out[p] = cp
		})
		return out
	}
	a, b := collect(), collect()
	for p := range a {
		if len(a[p]) != 10 || len(b[p]) != 10 {
			t.Fatalf("sample size wrong: %d/%d", len(a[p]), len(b[p]))
		}
		for i := range a[p] {
			if !value.Equal(value.Tuple(a[p][i]), value.Tuple(b[p][i])) {
				t.Fatal("sampling must be deterministic")
			}
		}
	}
}

func TestQuickJoinMatchesNestedLoop(t *testing.T) {
	// Property: distributed hash join == naive nested-loop join.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nl, nr := r.Intn(30), r.Intn(30)
		lrows := make([]Row, nl)
		for i := range lrows {
			lrows[i] = Row{int64(r.Intn(5)), int64(i)}
		}
		rrows := make([]Row, nr)
		for i := range rrows {
			rrows[i] = Row{int64(r.Intn(5)), int64(100 + i)}
		}
		c := NewContext(1 + r.Intn(6))
		j, err := c.FromRows(lrows).Join("q", c.FromRows(rrows), []int{0}, []int{0}, 2, false)
		if err != nil {
			return false
		}
		var want int
		for _, l := range lrows {
			for _, rr := range rrows {
				if l[0] == rr[0] {
					want++
				}
			}
		}
		return int(j.Count()) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGroupPreservesRowMultiset(t *testing.T) {
	// Property: grouping with an identity reducer is a permutation.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(100)
		rows := make([]Row, n)
		for i := range rows {
			rows[i] = Row{int64(r.Intn(7)), int64(r.Intn(3))}
		}
		c := NewContext(1 + r.Intn(8))
		d := c.FromRows(rows)
		g, err := d.GroupReduce("q", []int{0}, func(rs []Row) []Row { return rs })
		if err != nil {
			return false
		}
		a := c.FromRows(rows).CollectSorted()
		b := g.CollectSorted()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if !value.Equal(value.Tuple(a[i]), value.Tuple(b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRebalanceSpreadsRows(t *testing.T) {
	c := NewContext(4)
	var rows []Row
	for i := 0; i < 100; i++ {
		rows = append(rows, Row{int64(1)})
	}
	d := c.FromRows(rows)
	rb, err := d.Rebalance("rb")
	if err != nil {
		t.Fatal(err)
	}
	if rb.Count() != 100 {
		t.Fatal("rows lost in rebalance")
	}
	nonEmpty := 0
	for _, p := range rb.parts {
		if len(p) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Fatalf("rebalance left data on %d partitions", nonEmpty)
	}
}

func ExampleDataset_Join() {
	c := NewContext(2)
	parts := c.FromRows([]Row{{int64(1), "bolt"}, {int64(2), "nut"}})
	orders := c.FromRows([]Row{{int64(1), int64(10)}, {int64(1), int64(5)}})
	j, _ := orders.Join("ex", parts, []int{0}, []int{0}, 2, false)
	for _, r := range j.CollectSorted() {
		fmt.Println(r[1], r[3])
	}
	// Output:
	// 5 bolt
	// 10 bolt
}
