package dataflow

import (
	"strings"
	"sync"
	"testing"
)

// A panic inside a partition task must surface as a job error, not crash the
// process: partition tasks run on pool goroutines where no caller-side
// recover could catch them.
func TestPartitionPanicBecomesError(t *testing.T) {
	ctx := NewContext(4)
	rows := make([]Row, 16)
	for i := range rows {
		rows[i] = Row{int64(i)}
	}
	d := ctx.FromRows(rows).Map(func(r Row) Row {
		if r[0].(int64) == 7 {
			panic("poisoned row")
		}
		return r
	})
	_, err := d.Distinct("boom")
	if err == nil {
		t.Fatal("want an error from the poisoned partition")
	}
	if !strings.Contains(err.Error(), "poisoned row") || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("error does not describe the panic: %v", err)
	}
}

// Contexts sharing a Pool still compute correct results concurrently, and a
// Workers=1 pool keeps every helper off — each job runs sequentially on its
// caller.
func TestSharedPoolConcurrentJobs(t *testing.T) {
	for _, workers := range []int{1, 4} {
		pool := NewPool(workers)
		const jobs = 8
		var wg sync.WaitGroup
		errs := make([]error, jobs)
		sums := make([]int64, jobs)
		for j := 0; j < jobs; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				ctx := NewContext(8)
				ctx.SharedPool = pool
				rows := make([]Row, 100)
				for i := range rows {
					rows[i] = Row{int64(i + j)}
				}
				d := ctx.FromRows(rows).Map(func(r Row) Row {
					return Row{r[0].(int64) * 2}
				})
				out, err := d.Distinct("dedup")
				if err != nil {
					errs[j] = err
					return
				}
				for _, r := range out.Collect() {
					sums[j] += r[0].(int64)
				}
			}(j)
		}
		wg.Wait()
		for j := 0; j < jobs; j++ {
			if errs[j] != nil {
				t.Fatalf("workers=%d job %d: %v", workers, j, errs[j])
			}
			want := int64(0)
			for i := 0; i < 100; i++ {
				want += int64(i+j) * 2
			}
			if sums[j] != want {
				t.Fatalf("workers=%d job %d: sum %d want %d", workers, j, sums[j], want)
			}
		}
	}
}

// The pool semaphore bounds helper goroutines across jobs that share it.
func TestPoolWorkersDefaulting(t *testing.T) {
	if NewPool(3).Workers() != 3 {
		t.Fatal("explicit size")
	}
	if NewPool(0).Workers() < 1 {
		t.Fatal("default size must be at least 1")
	}
	if cap(NewPool(1).semaphore()) != 0 {
		t.Fatal("Workers=1 pool must have no helper slots")
	}
}
