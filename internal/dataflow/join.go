package dataflow

import (
	"time"

	"github.com/trance-go/trance/internal/value"
)

// Join performs an equi-join with d as the left input. Both sides are
// hash-partitioned on their key columns (shuffles are skipped for sides whose
// partitioning guarantee already matches), then joined per partition with a
// build-probe hash join; probe rows stream through any pending fused operator
// chain of the left side. Output rows are left ++ right. With leftOuter set,
// unmatched left rows survive padded with rightWidth NULL columns — the NULL
// machinery the Γ operators later cast away.
//
// Rows whose key contains a NULL never match (SQL semantics); under
// leftOuter they are preserved with NULL padding.
func (d *Dataset) Join(stage string, right *Dataset, lcols, rcols []int, rightWidth int, leftOuter bool) (*Dataset, error) {
	ls, err := d.RepartitionBy(stage+"/L", lcols)
	if err != nil {
		return nil, err
	}
	// Right must land on the same partition for equal keys: hash the key
	// values, not positions. RepartitionBy hashes column values, so equal
	// keys on both sides collide iff their value encodings match.
	rs, err := right.RepartitionBy(stage+"/R", rcols)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	parts := make([][]Row, len(ls.parts))
	joinErr := d.ctx.runParts(len(ls.parts), func(i int) error {
		var build map[string][]Row
		if i < len(rs.parts) {
			build = buildJoinMap(rs, i, rcols)
		}
		var out []Row
		ls.feed(i, func(l Row) {
			probeJoin(l, build, lcols, rightWidth, leftOuter, func(r Row) { out = append(out, r) })
		})
		parts[i] = out
		return nil
	})
	d.ctx.Metrics.AddStageWall(stage, time.Since(start))
	if joinErr != nil {
		return nil, joinErr
	}
	if err := d.ctx.checkPartitions(stage+"/out", parts); err != nil {
		return nil, err
	}
	out := &Dataset{ctx: d.ctx, parts: parts}
	out.partitioner = &Partitioner{Cols: lcols}
	return out, nil
}

// BroadcastJoin replicates the right side to every partition of the left and
// joins locally: no shuffle of the left at all — left rows stream through
// their fused chain straight into the probe. The broadcast volume is metered
// separately from shuffle (Spark likewise reports it apart). The left's
// partitioning guarantee is preserved — the property the skew-aware join of
// paper Figure 6 relies on to leave heavy keys where they are.
func (d *Dataset) BroadcastJoin(stage string, right *Dataset, lcols, rcols []int, rightWidth int, leftOuter bool) (*Dataset, error) {
	if d.err != nil {
		return nil, d.err
	}
	rrows := right.Collect()
	if right.err != nil {
		return nil, right.err
	}
	d.ctx.Metrics.BroadcastBytes.Add(value.SizeRows(rrows) * int64(d.ctx.Parallelism))
	start := time.Now()
	build := buildJoinMapRows(rrows, rcols)
	parts := make([][]Row, len(d.parts))
	joinErr := d.ctx.runParts(len(d.parts), func(i int) error {
		var out []Row
		d.feed(i, func(l Row) {
			probeJoin(l, build, lcols, rightWidth, leftOuter, func(r Row) { out = append(out, r) })
		})
		parts[i] = out
		return nil
	})
	d.ctx.Metrics.AddStageWall(stage, time.Since(start))
	if joinErr != nil {
		return nil, joinErr
	}
	if err := d.ctx.checkPartitions(stage+"/out", parts); err != nil {
		return nil, err
	}
	out := &Dataset{ctx: d.ctx, parts: parts}
	out.partitioner = d.partitioner
	return out, nil
}

// buildJoinMap builds the hash table over one partition of the right side,
// streaming through any pending fused chain.
func buildJoinMap(rs *Dataset, part int, rcols []int) map[string][]Row {
	build := make(map[string][]Row, len(rs.parts[part]))
	rs.feed(part, func(r Row) {
		if anyNullCols(r, rcols) {
			return
		}
		k := value.KeyCols(r, rcols)
		build[k] = append(build[k], r)
	})
	return build
}

// buildJoinMapRows builds the hash table over collected rows (broadcast
// side). With rcols nil (cross join) every row lands under the empty key, so
// each probe matches all of them.
func buildJoinMapRows(rows []Row, rcols []int) map[string][]Row {
	build := make(map[string][]Row, len(rows))
	for _, r := range rows {
		if anyNullCols(r, rcols) {
			continue
		}
		k := value.KeyCols(r, rcols)
		build[k] = append(build[k], r)
	}
	return build
}

// probeJoin probes one left row against the build table, emitting joined rows
// (or the NULL-padded row under leftOuter).
func probeJoin(l Row, build map[string][]Row, lcols []int, rightWidth int, leftOuter bool, emit func(Row)) {
	var matches []Row
	if !anyNullCols(l, lcols) {
		matches = build[value.KeyCols(l, lcols)]
	}
	if len(matches) == 0 {
		if leftOuter {
			emit(padRight(l, rightWidth))
		}
		return
	}
	for _, r := range matches {
		nr := make(Row, len(l)+len(r))
		copy(nr, l)
		copy(nr[len(l):], r)
		emit(nr)
	}
}

func anyNullCols(r Row, cols []int) bool {
	for _, c := range cols {
		if r[c] == nil {
			return true
		}
	}
	return false
}

func padRight(l Row, rightWidth int) Row {
	nr := make(Row, len(l)+rightWidth)
	copy(nr, l)
	return nr
}

// CoGroup shuffles both sides on their keys and invokes fn once per distinct
// key with all left and right rows carrying it. It is the engine primitive
// behind the paper's join+nest → cogroup fusion (Section 3, Optimization):
// grouping happens during the join, avoiding a separate regrouping shuffle.
func (d *Dataset) CoGroup(stage string, right *Dataset, lcols, rcols []int, fn func(lrows, rrows []Row) []Row) (*Dataset, error) {
	ls, err := d.RepartitionBy(stage+"/L", lcols)
	if err != nil {
		return nil, err
	}
	rs, err := right.RepartitionBy(stage+"/R", rcols)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	parts := make([][]Row, len(ls.parts))
	cgErr := d.ctx.runParts(len(ls.parts), func(i int) error {
		lgroups := make(map[string][]Row)
		order := make([]string, 0, 64)
		ls.feed(i, func(r Row) {
			k := value.KeyCols(r, lcols)
			if _, ok := lgroups[k]; !ok {
				order = append(order, k)
			}
			lgroups[k] = append(lgroups[k], r)
		})
		rgroups := make(map[string][]Row)
		if i < len(rs.parts) {
			rs.feed(i, func(r Row) {
				if anyNullCols(r, rcols) {
					return
				}
				k := value.KeyCols(r, rcols)
				rgroups[k] = append(rgroups[k], r)
			})
		}
		var out []Row
		for _, k := range order {
			out = append(out, fn(lgroups[k], rgroups[k])...)
		}
		parts[i] = out
		return nil
	})
	d.ctx.Metrics.AddStageWall(stage, time.Since(start))
	if cgErr != nil {
		return nil, cgErr
	}
	if err := d.ctx.checkPartitions(stage+"/out", parts); err != nil {
		return nil, err
	}
	return &Dataset{ctx: d.ctx, parts: parts}, nil
}
