package dataflow

import (
	"github.com/trance-go/trance/internal/value"
)

// Join performs an equi-join with d as the left input. Both sides are
// hash-partitioned on their key columns (shuffles are skipped for sides whose
// partitioning guarantee already matches), then joined per partition with a
// build-probe hash join. Output rows are left ++ right. With leftOuter set,
// unmatched left rows survive padded with rightWidth NULL columns — the NULL
// machinery the Γ operators later cast away.
//
// Rows whose key contains a NULL never match (SQL semantics); under
// leftOuter they are preserved with NULL padding.
func (d *Dataset) Join(stage string, right *Dataset, lcols, rcols []int, rightWidth int, leftOuter bool) (*Dataset, error) {
	ls, err := d.RepartitionBy(stage+"/L", lcols)
	if err != nil {
		return nil, err
	}
	// Right must land on the same partition for equal keys: hash the key
	// values, not positions. RepartitionBy hashes column values, so equal
	// keys on both sides collide iff their value encodings match.
	rs, err := right.RepartitionBy(stage+"/R", rcols)
	if err != nil {
		return nil, err
	}
	parts := make([][]Row, len(ls.parts))
	_ = runParts(len(ls.parts), func(i int) error {
		var rrows []Row
		if i < len(rs.parts) {
			rrows = rs.parts[i]
		}
		parts[i] = hashJoinPartition(ls.parts[i], rrows, lcols, rcols, rightWidth, leftOuter)
		return nil
	})
	if err := d.ctx.checkPartitions(stage+"/out", parts); err != nil {
		return nil, err
	}
	out := &Dataset{ctx: d.ctx, parts: parts}
	out.partitioner = &Partitioner{Cols: lcols}
	return out, nil
}

// BroadcastJoin replicates the right side to every partition of the left and
// joins locally: no shuffle of the left at all. The broadcast volume is
// metered separately from shuffle (Spark likewise reports it apart). The
// left's partitioning guarantee is preserved — the property the skew-aware
// join of paper Figure 6 relies on to leave heavy keys where they are.
func (d *Dataset) BroadcastJoin(stage string, right *Dataset, lcols, rcols []int, rightWidth int, leftOuter bool) (*Dataset, error) {
	rrows := right.Collect()
	d.ctx.Metrics.BroadcastBytes.Add(value.SizeRows(rrows) * int64(d.ctx.Parallelism))
	parts := make([][]Row, len(d.parts))
	_ = runParts(len(d.parts), func(i int) error {
		parts[i] = hashJoinPartition(d.parts[i], rrows, lcols, rcols, rightWidth, leftOuter)
		return nil
	})
	if err := d.ctx.checkPartitions(stage+"/out", parts); err != nil {
		return nil, err
	}
	out := &Dataset{ctx: d.ctx, parts: parts}
	out.partitioner = d.partitioner
	return out, nil
}

func hashJoinPartition(left, right []Row, lcols, rcols []int, rightWidth int, leftOuter bool) []Row {
	build := make(map[string][]Row, len(right))
	for _, r := range right {
		if anyNullCols(r, rcols) {
			continue
		}
		k := value.KeyCols(r, rcols)
		build[k] = append(build[k], r)
	}
	var out []Row
	for _, l := range left {
		var matches []Row
		if !anyNullCols(l, lcols) {
			matches = build[value.KeyCols(l, lcols)]
		}
		if len(matches) == 0 {
			if leftOuter {
				out = append(out, padRight(l, rightWidth))
			}
			continue
		}
		for _, r := range matches {
			nr := make(Row, len(l)+len(r))
			copy(nr, l)
			copy(nr[len(l):], r)
			out = append(out, nr)
		}
	}
	return out
}

func anyNullCols(r Row, cols []int) bool {
	for _, c := range cols {
		if r[c] == nil {
			return true
		}
	}
	return false
}

func padRight(l Row, rightWidth int) Row {
	nr := make(Row, len(l)+rightWidth)
	copy(nr, l)
	return nr
}

// CoGroup shuffles both sides on their keys and invokes fn once per distinct
// key with all left and right rows carrying it. It is the engine primitive
// behind the paper's join+nest → cogroup fusion (Section 3, Optimization):
// grouping happens during the join, avoiding a separate regrouping shuffle.
func (d *Dataset) CoGroup(stage string, right *Dataset, lcols, rcols []int, fn func(lrows, rrows []Row) []Row) (*Dataset, error) {
	ls, err := d.RepartitionBy(stage+"/L", lcols)
	if err != nil {
		return nil, err
	}
	rs, err := right.RepartitionBy(stage+"/R", rcols)
	if err != nil {
		return nil, err
	}
	parts := make([][]Row, len(ls.parts))
	_ = runParts(len(ls.parts), func(i int) error {
		lgroups := make(map[string][]Row)
		order := make([]string, 0, 64)
		for _, r := range ls.parts[i] {
			k := value.KeyCols(r, lcols)
			if _, ok := lgroups[k]; !ok {
				order = append(order, k)
			}
			lgroups[k] = append(lgroups[k], r)
		}
		rgroups := make(map[string][]Row)
		if i < len(rs.parts) {
			for _, r := range rs.parts[i] {
				if anyNullCols(r, rcols) {
					continue
				}
				rgroups[value.KeyCols(r, rcols)] = append(rgroups[value.KeyCols(r, rcols)], r)
			}
		}
		var out []Row
		for _, k := range order {
			out = append(out, fn(lgroups[k], rgroups[k])...)
		}
		parts[i] = out
		return nil
	})
	if err := d.ctx.checkPartitions(stage+"/out", parts); err != nil {
		return nil, err
	}
	out := &Dataset{ctx: d.ctx, parts: parts}
	return out, nil
}
