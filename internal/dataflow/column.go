// Columnar batch representation: typed column vectors with null bitmaps,
// plus a boxed-value fallback column for labels and nested values. The
// shredded route's flat dictionary fragments (paper Section 4) are naturally
// columnar — scalar columns transpose to compact typed slices, and the vector
// kernels in batch.go evaluate predicates and arithmetic over them in tight
// per-column loops instead of per-row interpreter dispatch.
//
// Transposition is schema-directed: the caller states the expected Kind per
// column (derived from the plan's static types). A value that contradicts the
// static kind demotes the column to KindBoxed, so a dynamic/static mismatch
// can never produce a silently wrong typed vector — consumers detect the
// demotion and fall back to row-at-a-time evaluation.
package dataflow

import (
	"math/bits"

	"github.com/trance-go/trance/internal/value"
)

// Bitmap is a dense bit vector used for null masks, boolean column values,
// and selection vectors. The zero value (nil) is a valid all-clear bitmap:
// Get past the backing words reports false, so all-valid columns carry no
// allocation at all.
type Bitmap []uint64

// NewBitmap returns an all-clear bitmap with capacity for n bits.
func NewBitmap(n int) Bitmap { return make(Bitmap, (n+63)/64) }

// Get reports bit i; out-of-range bits (including any i on a nil bitmap) are
// clear.
func (b Bitmap) Get(i int) bool {
	w := i >> 6
	if w >= len(b) {
		return false
	}
	return b[w]>>(uint(i)&63)&1 != 0
}

// Set sets bit i; the bitmap must have been sized to cover i.
func (b Bitmap) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Count returns the number of set bits.
func (b Bitmap) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Any reports whether any bit is set.
func (b Bitmap) Any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// Kind identifies the physical vector type of a column.
type Kind uint8

// Column kinds. KindBoxed is the fallback for labels, nested bags/tuples,
// and columns whose dynamic values contradict their static type.
const (
	KindInt64 Kind = iota
	KindFloat64
	KindString
	KindBool
	KindDate
	KindBoxed
)

func (k Kind) String() string {
	switch k {
	case KindInt64:
		return "int64"
	case KindFloat64:
		return "float64"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	case KindDate:
		return "date"
	default:
		return "boxed"
	}
}

// Column is one typed vector of a batch. Exactly one backing slice is
// populated according to Kind (Ints doubles for KindDate; Bools is a value
// bitmap for KindBool). Nulls marks NULL positions; a nil Nulls bitmap means
// no NULLs. Boxed columns keep raw values (nil at NULL positions) so nothing
// representable in a Row is ever lost.
type Column struct {
	Kind   Kind
	Len    int
	Nulls  Bitmap
	Ints   []int64
	Floats []float64
	Strs   []string
	Bools  Bitmap
	Boxed  []value.Value
}

// Get boxes the value at index i back into the dynamic representation. Typed
// kinds re-box on every call; hot paths should loop over the backing slices
// directly instead.
func (c *Column) Get(i int) value.Value {
	if c.Nulls.Get(i) {
		return nil
	}
	switch c.Kind {
	case KindInt64:
		return c.Ints[i]
	case KindFloat64:
		return c.Floats[i]
	case KindString:
		return c.Strs[i]
	case KindBool:
		return c.Bools.Get(i)
	case KindDate:
		return value.Date(c.Ints[i])
	default:
		return c.Boxed[i]
	}
}

// ConstColumn builds a length-n column repeating one already-typed value; a
// nil value yields an all-NULL column. Used to materialize plan constants
// inside a batch. A value that does not match kind demotes to boxed, exactly
// like TransposeCol.
func ConstColumn(kind Kind, v value.Value, n int) Column {
	c := Column{Kind: kind, Len: n}
	if v == nil {
		c.Nulls = FullBitmap(n)
		switch kind {
		case KindInt64, KindDate:
			c.Ints = make([]int64, n)
		case KindFloat64:
			c.Floats = make([]float64, n)
		case KindString:
			c.Strs = make([]string, n)
		case KindBool:
			c.Bools = NewBitmap(n)
		default:
			c.Boxed = make([]value.Value, n)
		}
		return c
	}
	switch kind {
	case KindInt64:
		if x, ok := v.(int64); ok {
			c.Ints = make([]int64, n)
			for i := range c.Ints {
				c.Ints[i] = x
			}
			return c
		}
	case KindDate:
		if x, ok := v.(value.Date); ok {
			c.Ints = make([]int64, n)
			for i := range c.Ints {
				c.Ints[i] = int64(x)
			}
			return c
		}
	case KindFloat64:
		if x, ok := v.(float64); ok {
			c.Floats = make([]float64, n)
			for i := range c.Floats {
				c.Floats[i] = x
			}
			return c
		}
	case KindString:
		if x, ok := v.(string); ok {
			c.Strs = make([]string, n)
			for i := range c.Strs {
				c.Strs[i] = x
			}
			return c
		}
	case KindBool:
		if x, ok := v.(bool); ok {
			if x {
				c.Bools = FullBitmap(n)
			} else {
				c.Bools = NewBitmap(n)
			}
			return c
		}
	}
	c.Kind = KindBoxed
	c.Boxed = make([]value.Value, n)
	for i := range c.Boxed {
		c.Boxed[i] = v
	}
	return c
}

// growInts returns s resized to n, reusing its backing array when possible.
// Contents are unspecified: transposition writes every non-NULL position and
// kernels mask NULL positions, so stale cells are never observed.
func growInts(s []int64, n int) []int64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int64, n)
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

func growStrs(s []string, n int) []string {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]string, n)
}

func growBoxed(s []value.Value, n int) []value.Value {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]value.Value, n)
}

// clearBitmap returns an all-clear bitmap covering n bits, reusing b's
// backing array when large enough.
func clearBitmap(b Bitmap, n int) Bitmap {
	w := (n + 63) / 64
	if cap(b) < w {
		return make(Bitmap, w)
	}
	b = b[:w]
	for i := range b {
		b[i] = 0
	}
	return b
}

// TransposeCol extracts column idx of rows into a typed vector of the
// expected kind. A non-NULL value whose dynamic type contradicts kind demotes
// the whole column to KindBoxed (restarting the copy), so the result is
// always faithful: Get(i) == rows[i][idx] for every i under value.Equal.
func TransposeCol(rows []Row, idx int, kind Kind) Column {
	var c Column
	TransposeColInto(&c, rows, idx, kind)
	return c
}

// TransposeColInto is TransposeCol reusing c's backing slices and bitmaps —
// the steady-state path of the vectorized stages, which recycle one scratch
// Column per input column across batches (so a long scan allocates nothing
// after its first batch).
func TransposeColInto(c *Column, rows []Row, idx int, kind Kind) {
	n := len(rows)
	spareNulls := c.Nulls
	c.Kind, c.Len, c.Nulls = kind, n, nil
	nullBit := func(i int) {
		if c.Nulls == nil {
			c.Nulls = clearBitmap(spareNulls, n)
		}
		c.Nulls.Set(i)
	}
	switch kind {
	case KindInt64:
		c.Ints = growInts(c.Ints, n)
		for i, r := range rows {
			v := r[idx]
			if v == nil {
				nullBit(i)
				continue
			}
			x, ok := v.(int64)
			if !ok {
				transposeBoxedInto(c, rows, idx, spareNulls)
				return
			}
			c.Ints[i] = x
		}
	case KindDate:
		c.Ints = growInts(c.Ints, n)
		for i, r := range rows {
			v := r[idx]
			if v == nil {
				nullBit(i)
				continue
			}
			x, ok := v.(value.Date)
			if !ok {
				transposeBoxedInto(c, rows, idx, spareNulls)
				return
			}
			c.Ints[i] = int64(x)
		}
	case KindFloat64:
		c.Floats = growFloats(c.Floats, n)
		for i, r := range rows {
			v := r[idx]
			if v == nil {
				nullBit(i)
				continue
			}
			x, ok := v.(float64)
			if !ok {
				transposeBoxedInto(c, rows, idx, spareNulls)
				return
			}
			c.Floats[i] = x
		}
	case KindString:
		c.Strs = growStrs(c.Strs, n)
		for i, r := range rows {
			v := r[idx]
			if v == nil {
				nullBit(i)
				continue
			}
			x, ok := v.(string)
			if !ok {
				transposeBoxedInto(c, rows, idx, spareNulls)
				return
			}
			c.Strs[i] = x
		}
	case KindBool:
		c.Bools = clearBitmap(c.Bools, n)
		for i, r := range rows {
			v := r[idx]
			if v == nil {
				nullBit(i)
				continue
			}
			x, ok := v.(bool)
			if !ok {
				transposeBoxedInto(c, rows, idx, spareNulls)
				return
			}
			if x {
				c.Bools.Set(i)
			}
		}
	default:
		transposeBoxedInto(c, rows, idx, spareNulls)
	}
}

// transposeBoxedInto restarts the copy as a boxed column (the typed backing
// slices stay in place on c for reuse by later batches of the right shape).
func transposeBoxedInto(c *Column, rows []Row, idx int, spareNulls Bitmap) {
	n := len(rows)
	c.Kind, c.Len, c.Nulls = KindBoxed, n, nil
	c.Boxed = growBoxed(c.Boxed, n)
	for i, r := range rows {
		v := r[idx]
		if v == nil {
			if c.Nulls == nil {
				c.Nulls = clearBitmap(spareNulls, n)
			}
			c.Nulls.Set(i)
			c.Boxed[i] = nil
			continue
		}
		c.Boxed[i] = v
	}
}

// InferKind inspects the non-NULL values of column idx and returns the
// tightest kind that represents all of them (KindBoxed when mixed or
// non-scalar). An all-NULL column infers KindBoxed.
func InferKind(rows []Row, idx int) Kind {
	kind := KindBoxed
	seen := false
	for _, r := range rows {
		v := r[idx]
		if v == nil {
			continue
		}
		var k Kind
		switch v.(type) {
		case int64:
			k = KindInt64
		case float64:
			k = KindFloat64
		case string:
			k = KindString
		case bool:
			k = KindBool
		case value.Date:
			k = KindDate
		default:
			return KindBoxed
		}
		if !seen {
			kind, seen = k, true
		} else if k != kind {
			return KindBoxed
		}
	}
	return kind
}

// Batch is a fixed-width window of rows in columnar layout.
type Batch struct {
	Cols []Column
	Len  int
}

// Transpose converts a uniform-width row slice into a full columnar batch,
// inferring the tightest kind per column. Empty input yields an empty batch.
func Transpose(rows []Row) *Batch {
	b := &Batch{Len: len(rows)}
	if len(rows) == 0 {
		return b
	}
	width := len(rows[0])
	b.Cols = make([]Column, width)
	for c := 0; c < width; c++ {
		b.Cols[c] = TransposeCol(rows, c, InferKind(rows, c))
	}
	return b
}

// Rows converts the batch back into rows; with Transpose it is a lossless
// round trip (value.Equal per cell, including all-NULL columns, dates,
// negative ints, empty strings, and boxed nested values).
func (b *Batch) Rows() []Row {
	out := make([]Row, b.Len)
	for i := range out {
		r := make(Row, len(b.Cols))
		for c := range b.Cols {
			r[c] = b.Cols[c].Get(i)
		}
		out[i] = r
	}
	return out
}
