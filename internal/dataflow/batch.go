// Vector kernels over Columns: comparisons, arithmetic, and boolean logic in
// per-column loops. Every kernel replicates the row interpreter's semantics
// exactly — NULL comparisons yield false (not NULL), arithmetic propagates
// NULL, integer ops wrap natively, Div always takes the float path with
// divide-by-zero yielding 0.0, and float comparisons use the same
// three-way <(lt)/>(gt) protocol as value.Compare so NaN behaves identically.
// Kernels return ok=false for kind combinations they do not cover; callers
// fall back to row-at-a-time evaluation.
package dataflow

import "github.com/trance-go/trance/internal/value"

// BatchSize is the number of rows per columnar batch processed by the
// vectorized narrow stages.
const BatchSize = 1024

// CmpOp is a dataflow-local comparison opcode (mirrors nrc.CmpOp without
// importing it, keeping the engine independent of the query language).
type CmpOp uint8

// Comparison opcodes.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// ArithOp is a dataflow-local arithmetic opcode.
type ArithOp uint8

// Arithmetic opcodes.
const (
	ArithAdd ArithOp = iota
	ArithSub
	ArithMul
	ArithDiv
)

// CmpColumns compares two columns element-wise, returning the selection
// bitmap (a NULL on either side compares false, so the result carries no null
// mask). Supported: matching scalar kinds, plus int64×float64 cross-compares
// promoted through float64 exactly like value.Compare. Boxed columns and
// mismatched kinds return ok=false.
func CmpColumns(op CmpOp, l, r *Column) (Bitmap, bool) {
	if l.Kind == r.Kind {
		switch l.Kind {
		case KindInt64, KindDate:
			return cmpVec(op, l.Ints, r.Ints, l.Nulls, r.Nulls), true
		case KindFloat64:
			return cmpVecF(op, l.Floats, r.Floats, l.Nulls, r.Nulls), true
		case KindString:
			return cmpVec(op, l.Strs, r.Strs, l.Nulls, r.Nulls), true
		case KindBool:
			return cmpBools(op, l, r), true
		}
		return nil, false
	}
	if l.Kind == KindInt64 && r.Kind == KindFloat64 {
		return cmpVecF(op, promoteInts(l.Ints), r.Floats, l.Nulls, r.Nulls), true
	}
	if l.Kind == KindFloat64 && r.Kind == KindInt64 {
		return cmpVecF(op, l.Floats, promoteInts(r.Ints), l.Nulls, r.Nulls), true
	}
	return nil, false
}

// cmpVec compares two equal-length typed slices where == and the three-way
// order agree (ints, dates, strings — not floats, where NaN breaks the
// equivalence).
func cmpVec[T int64 | string](op CmpOp, l, r []T, ln, rn Bitmap) Bitmap {
	switch op {
	case CmpGt:
		return cmpVec(CmpLt, r, l, rn, ln)
	case CmpGe:
		return cmpVec(CmpLe, r, l, rn, ln)
	}
	out := NewBitmap(len(l))
	if ln == nil && rn == nil {
		switch op {
		case CmpEq:
			for i := range l {
				if l[i] == r[i] {
					out.Set(i)
				}
			}
		case CmpNe:
			for i := range l {
				if l[i] != r[i] {
					out.Set(i)
				}
			}
		case CmpLt:
			for i := range l {
				if l[i] < r[i] {
					out.Set(i)
				}
			}
		case CmpLe:
			for i := range l {
				if l[i] <= r[i] {
					out.Set(i)
				}
			}
		}
		return out
	}
	switch op {
	case CmpEq:
		for i := range l {
			if !ln.Get(i) && !rn.Get(i) && l[i] == r[i] {
				out.Set(i)
			}
		}
	case CmpNe:
		for i := range l {
			if !ln.Get(i) && !rn.Get(i) && l[i] != r[i] {
				out.Set(i)
			}
		}
	case CmpLt:
		for i := range l {
			if !ln.Get(i) && !rn.Get(i) && l[i] < r[i] {
				out.Set(i)
			}
		}
	case CmpLe:
		for i := range l {
			if !ln.Get(i) && !rn.Get(i) && l[i] <= r[i] {
				out.Set(i)
			}
		}
	}
	return out
}

// cmpVecF compares float slices with value.Compare's three-way protocol
// (a<b → lt, a>b → gt, otherwise equal) so NaN operands compare "equal" to
// everything, exactly as the row engine does.
func cmpVecF(op CmpOp, l, r []float64, ln, rn Bitmap) Bitmap {
	switch op {
	case CmpGt:
		return cmpVecF(CmpLt, r, l, rn, ln)
	case CmpGe:
		return cmpVecF(CmpLe, r, l, rn, ln)
	}
	out := NewBitmap(len(l))
	if ln == nil && rn == nil {
		switch op {
		case CmpEq:
			for i := range l {
				if !(l[i] < r[i]) && !(r[i] < l[i]) {
					out.Set(i)
				}
			}
		case CmpNe:
			for i := range l {
				if l[i] < r[i] || r[i] < l[i] {
					out.Set(i)
				}
			}
		case CmpLt:
			for i := range l {
				if l[i] < r[i] {
					out.Set(i)
				}
			}
		case CmpLe:
			for i := range l {
				if !(r[i] < l[i]) {
					out.Set(i)
				}
			}
		}
		return out
	}
	switch op {
	case CmpEq:
		for i := range l {
			if !ln.Get(i) && !rn.Get(i) && !(l[i] < r[i]) && !(r[i] < l[i]) {
				out.Set(i)
			}
		}
	case CmpNe:
		for i := range l {
			if !ln.Get(i) && !rn.Get(i) && (l[i] < r[i] || r[i] < l[i]) {
				out.Set(i)
			}
		}
	case CmpLt:
		for i := range l {
			if !ln.Get(i) && !rn.Get(i) && l[i] < r[i] {
				out.Set(i)
			}
		}
	case CmpLe:
		for i := range l {
			if !ln.Get(i) && !rn.Get(i) && !(r[i] < l[i]) {
				out.Set(i)
			}
		}
	}
	return out
}

// cmpBools compares two bool columns (false < true).
func cmpBools(op CmpOp, l, r *Column) Bitmap {
	out := NewBitmap(l.Len)
	for i := 0; i < l.Len; i++ {
		if l.Nulls.Get(i) || r.Nulls.Get(i) {
			continue
		}
		c := 0
		lv, rv := l.Bools.Get(i), r.Bools.Get(i)
		if lv != rv {
			if rv {
				c = -1
			} else {
				c = 1
			}
		}
		if cmpHolds(op, c) {
			out.Set(i)
		}
	}
	return out
}

func cmpHolds(op CmpOp, c int) bool {
	switch op {
	case CmpEq:
		return c == 0
	case CmpNe:
		return c != 0
	case CmpLt:
		return c < 0
	case CmpLe:
		return c <= 0
	case CmpGt:
		return c > 0
	default:
		return c >= 0
	}
}

// CmpColumnConstInt compares a column against an int64 constant — the
// commonest shape the optimizer pushes down ($col < literal). Covers int64
// and date columns directly and float columns through numeric cross-compare.
func CmpColumnConstInt(op CmpOp, l *Column, c int64) (Bitmap, bool) {
	switch l.Kind {
	case KindInt64:
		return cmpVecConst(op, l.Ints, c, l.Nulls), true
	case KindFloat64:
		return cmpVecConstF(op, l.Floats, float64(c), l.Nulls), true
	}
	return nil, false
}

// CmpColumnConstFloat compares a column against a float64 constant.
func CmpColumnConstFloat(op CmpOp, l *Column, c float64) (Bitmap, bool) {
	switch l.Kind {
	case KindFloat64:
		return cmpVecConstF(op, l.Floats, c, l.Nulls), true
	case KindInt64:
		return cmpVecConstF(op, promoteInts(l.Ints), c, l.Nulls), true
	}
	return nil, false
}

// CmpColumnConstString compares a string column against a constant.
func CmpColumnConstString(op CmpOp, l *Column, c string) (Bitmap, bool) {
	if l.Kind != KindString {
		return nil, false
	}
	return cmpVecConst(op, l.Strs, c, l.Nulls), true
}

// CmpColumnConstDate compares a date column against a constant date (held as
// its int64 ordinal).
func CmpColumnConstDate(op CmpOp, l *Column, c int64) (Bitmap, bool) {
	if l.Kind != KindDate {
		return nil, false
	}
	return cmpVecConst(op, l.Ints, c, l.Nulls), true
}

// CmpRowsConst fuses TransposeCol + CmpColumnConst* into a single pass over
// the raw rows: unbox, compare against the constant, set the selection bit.
// The hot σ shape ($col op literal) pays one cache miss per cell instead of a
// transpose write plus a kernel read, and materializes no column at all.
// Semantics are exactly the materializing path's: NULL cells leave their bit
// clear (NULL compares false), and any non-NULL cell whose dynamic type
// contradicts kind returns ok=false — the same batches that would demote a
// transposed column to boxed and refuse the kernel.
func CmpRowsConst(op CmpOp, rows []Row, idx int, kind Kind, cv value.Value) (Bitmap, bool) {
	out := NewBitmap(len(rows))
	switch c := cv.(type) {
	case int64:
		switch kind {
		case KindInt64:
			for i, r := range rows {
				v := r[idx]
				if v == nil {
					continue
				}
				x, ok := v.(int64)
				if !ok {
					return nil, false
				}
				if cmpOrdHolds(op, x, c) {
					out.Set(i)
				}
			}
			return out, true
		case KindFloat64:
			fc := float64(c)
			for i, r := range rows {
				v := r[idx]
				if v == nil {
					continue
				}
				x, ok := v.(float64)
				if !ok {
					return nil, false
				}
				if cmpFloatHolds(op, x, fc) {
					out.Set(i)
				}
			}
			return out, true
		}
	case float64:
		switch kind {
		case KindFloat64:
			for i, r := range rows {
				v := r[idx]
				if v == nil {
					continue
				}
				x, ok := v.(float64)
				if !ok {
					return nil, false
				}
				if cmpFloatHolds(op, x, c) {
					out.Set(i)
				}
			}
			return out, true
		case KindInt64:
			for i, r := range rows {
				v := r[idx]
				if v == nil {
					continue
				}
				x, ok := v.(int64)
				if !ok {
					return nil, false
				}
				if cmpFloatHolds(op, float64(x), c) {
					out.Set(i)
				}
			}
			return out, true
		}
	case string:
		if kind == KindString {
			for i, r := range rows {
				v := r[idx]
				if v == nil {
					continue
				}
				x, ok := v.(string)
				if !ok {
					return nil, false
				}
				if cmpOrdHolds(op, x, c) {
					out.Set(i)
				}
			}
			return out, true
		}
	case value.Date:
		if kind == KindDate {
			cd := int64(c)
			for i, r := range rows {
				v := r[idx]
				if v == nil {
					continue
				}
				x, ok := v.(value.Date)
				if !ok {
					return nil, false
				}
				if cmpOrdHolds(op, int64(x), cd) {
					out.Set(i)
				}
			}
			return out, true
		}
	}
	return nil, false
}

// cmpOrdHolds applies op to one ordered pair where == and < agree (ints,
// dates, strings).
func cmpOrdHolds[T int64 | string](op CmpOp, a, b T) bool {
	switch op {
	case CmpEq:
		return a == b
	case CmpNe:
		return a != b
	case CmpLt:
		return a < b
	case CmpLe:
		return a <= b
	case CmpGt:
		return a > b
	default:
		return a >= b
	}
}

// cmpFloatHolds applies op to one float pair under value.Compare's three-way
// <-only protocol (NaN compares "equal" to everything).
func cmpFloatHolds(op CmpOp, a, b float64) bool {
	switch op {
	case CmpEq:
		return !(a < b) && !(b < a)
	case CmpNe:
		return a < b || b < a
	case CmpLt:
		return a < b
	case CmpLe:
		return !(b < a)
	case CmpGt:
		return b < a
	default:
		return !(a < b)
	}
}

// cmpVecConst compares a typed slice against one constant (==/order agree).
func cmpVecConst[T int64 | string](op CmpOp, l []T, c T, ln Bitmap) Bitmap {
	out := NewBitmap(len(l))
	if ln == nil {
		switch op {
		case CmpEq:
			for i := range l {
				if l[i] == c {
					out.Set(i)
				}
			}
		case CmpNe:
			for i := range l {
				if l[i] != c {
					out.Set(i)
				}
			}
		case CmpLt:
			for i := range l {
				if l[i] < c {
					out.Set(i)
				}
			}
		case CmpLe:
			for i := range l {
				if l[i] <= c {
					out.Set(i)
				}
			}
		case CmpGt:
			for i := range l {
				if l[i] > c {
					out.Set(i)
				}
			}
		case CmpGe:
			for i := range l {
				if l[i] >= c {
					out.Set(i)
				}
			}
		}
		return out
	}
	switch op {
	case CmpEq:
		for i := range l {
			if !ln.Get(i) && l[i] == c {
				out.Set(i)
			}
		}
	case CmpNe:
		for i := range l {
			if !ln.Get(i) && l[i] != c {
				out.Set(i)
			}
		}
	case CmpLt:
		for i := range l {
			if !ln.Get(i) && l[i] < c {
				out.Set(i)
			}
		}
	case CmpLe:
		for i := range l {
			if !ln.Get(i) && l[i] <= c {
				out.Set(i)
			}
		}
	case CmpGt:
		for i := range l {
			if !ln.Get(i) && l[i] > c {
				out.Set(i)
			}
		}
	case CmpGe:
		for i := range l {
			if !ln.Get(i) && l[i] >= c {
				out.Set(i)
			}
		}
	}
	return out
}

// cmpVecConstF is cmpVecConst for floats under the three-way protocol.
func cmpVecConstF(op CmpOp, l []float64, c float64, ln Bitmap) Bitmap {
	out := NewBitmap(len(l))
	if ln == nil {
		switch op {
		case CmpEq:
			for i := range l {
				if !(l[i] < c) && !(c < l[i]) {
					out.Set(i)
				}
			}
		case CmpNe:
			for i := range l {
				if l[i] < c || c < l[i] {
					out.Set(i)
				}
			}
		case CmpLt:
			for i := range l {
				if l[i] < c {
					out.Set(i)
				}
			}
		case CmpLe:
			for i := range l {
				if !(c < l[i]) {
					out.Set(i)
				}
			}
		case CmpGt:
			for i := range l {
				if c < l[i] {
					out.Set(i)
				}
			}
		case CmpGe:
			for i := range l {
				if !(l[i] < c) {
					out.Set(i)
				}
			}
		}
		return out
	}
	switch op {
	case CmpEq:
		for i := range l {
			if !ln.Get(i) && !(l[i] < c) && !(c < l[i]) {
				out.Set(i)
			}
		}
	case CmpNe:
		for i := range l {
			if !ln.Get(i) && (l[i] < c || c < l[i]) {
				out.Set(i)
			}
		}
	case CmpLt:
		for i := range l {
			if !ln.Get(i) && l[i] < c {
				out.Set(i)
			}
		}
	case CmpLe:
		for i := range l {
			if !ln.Get(i) && !(c < l[i]) {
				out.Set(i)
			}
		}
	case CmpGt:
		for i := range l {
			if !ln.Get(i) && c < l[i] {
				out.Set(i)
			}
		}
	case CmpGe:
		for i := range l {
			if !ln.Get(i) && !(l[i] < c) {
				out.Set(i)
			}
		}
	}
	return out
}

func promoteInts(xs []int64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// KernelScratch holds reusable promotion buffers for the Into kernel
// variants. Buffers are only live during one kernel call, so one pair
// suffices for any expression tree evaluated sequentially.
type KernelScratch struct {
	fa, fb []float64
}

// ArithColumns applies an arithmetic op element-wise with NULL propagation,
// replicating nrc.EvalArith: int64 op int64 stays native (wrapping) except
// Div, everything else promotes to float64, and Div by zero yields 0.0.
// Supported kinds: int64 and float64 (ok=false otherwise).
func ArithColumns(op ArithOp, l, r *Column) (Column, bool) {
	var out Column
	ok := ArithColumnsInto(op, l, r, &out, nil)
	return out, ok
}

// ArithColumnsInto is ArithColumns reusing out's backing slices and sc's
// promotion buffers — the vectorized stages recycle one scratch Column per
// arithmetic node across batches. A nil sc allocates fresh promotions.
// Stale cells at NULL positions are never observed: consumers mask with
// out.Nulls.
func ArithColumnsInto(op ArithOp, l, r *Column, out *Column, sc *KernelScratch) bool {
	n := l.Len
	out.Len, out.Nulls = n, unionNulls(l.Nulls, r.Nulls)
	if l.Kind == KindInt64 && r.Kind == KindInt64 && op != ArithDiv {
		out.Kind = KindInt64
		out.Ints = growInts(out.Ints, n)
		switch op {
		case ArithAdd:
			for i := range out.Ints {
				out.Ints[i] = l.Ints[i] + r.Ints[i]
			}
		case ArithSub:
			for i := range out.Ints {
				out.Ints[i] = l.Ints[i] - r.Ints[i]
			}
		case ArithMul:
			for i := range out.Ints {
				out.Ints[i] = l.Ints[i] * r.Ints[i]
			}
		}
		return true
	}
	var sa, sb *[]float64
	if sc != nil {
		sa, sb = &sc.fa, &sc.fb
	}
	lf, ok := floatView(l, sa)
	if !ok {
		return false
	}
	rf, ok := floatView(r, sb)
	if !ok {
		return false
	}
	out.Kind = KindFloat64
	out.Floats = growFloats(out.Floats, n)
	switch op {
	case ArithAdd:
		for i := range out.Floats {
			out.Floats[i] = lf[i] + rf[i]
		}
	case ArithSub:
		for i := range out.Floats {
			out.Floats[i] = lf[i] - rf[i]
		}
	case ArithMul:
		for i := range out.Floats {
			out.Floats[i] = lf[i] * rf[i]
		}
	case ArithDiv:
		for i := range out.Floats {
			if rf[i] == 0 {
				out.Floats[i] = 0.0
			} else {
				out.Floats[i] = lf[i] / rf[i]
			}
		}
	}
	return true
}

// floatView returns the column's values as float64s, promoting ints into the
// scratch buffer (nil scratch allocates); null positions hold arbitrary
// values, which downstream kernels mask out.
func floatView(c *Column, scratch *[]float64) ([]float64, bool) {
	switch c.Kind {
	case KindFloat64:
		return c.Floats, true
	case KindInt64:
		if scratch == nil {
			return promoteInts(c.Ints), true
		}
		*scratch = growFloats(*scratch, len(c.Ints))
		for i, x := range c.Ints {
			(*scratch)[i] = float64(x)
		}
		return *scratch, true
	}
	return nil, false
}

// unionNulls ORs two null masks; the result may alias an input (masks are
// immutable after construction).
func unionNulls(a, b Bitmap) Bitmap {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(Bitmap, len(a))
	for i := range a {
		out[i] = a[i] | b[i]
	}
	return out
}

// CoerceBool reduces a bool column to a selection bitmap with the row
// engine's coercion: NULL counts as false (the `b, _ := v.(bool)` idiom).
func CoerceBool(c *Column) (Bitmap, bool) {
	if c.Kind != KindBool {
		return nil, false
	}
	return AndNotBitmap(c.Bools, c.Nulls, c.Len), true
}

// AndBitmaps returns a∧b over n bits; nil inputs are all-clear.
func AndBitmaps(a, b Bitmap, n int) Bitmap {
	out := NewBitmap(n)
	if a == nil || b == nil {
		return out
	}
	for i := range out {
		if i < len(a) && i < len(b) {
			out[i] = a[i] & b[i]
		}
	}
	return out
}

// OrBitmaps returns a∨b over n bits; nil inputs are all-clear.
func OrBitmaps(a, b Bitmap, n int) Bitmap {
	out := NewBitmap(n)
	for i := range out {
		var w uint64
		if i < len(a) {
			w = a[i]
		}
		if i < len(b) {
			w |= b[i]
		}
		out[i] = w
	}
	return out
}

// AndNotBitmap returns a∧¬b over n bits; nil inputs are all-clear.
func AndNotBitmap(a, b Bitmap, n int) Bitmap {
	out := NewBitmap(n)
	if a == nil {
		return out
	}
	for i := range out {
		var w uint64
		if i < len(a) {
			w = a[i]
		}
		if i < len(b) {
			w &^= b[i]
		}
		out[i] = w
	}
	return out
}

// NotBitmap returns ¬a over n bits, with bits past n kept clear.
func NotBitmap(a Bitmap, n int) Bitmap {
	out := NewBitmap(n)
	for i := range out {
		var w uint64
		if i < len(a) {
			w = a[i]
		}
		out[i] = ^w
	}
	maskTail(out, n)
	return out
}

// FullBitmap returns an all-set bitmap over n bits.
func FullBitmap(n int) Bitmap {
	out := NewBitmap(n)
	for i := range out {
		out[i] = ^uint64(0)
	}
	maskTail(out, n)
	return out
}

// maskTail clears the bits of the last word beyond n.
func maskTail(b Bitmap, n int) {
	if rem := uint(n) & 63; rem != 0 && len(b) > 0 {
		b[len(b)-1] &= (1 << rem) - 1
	}
}

// BoolColumn wraps a kernel-produced selection bitmap (never NULL) as a bool
// column of length n.
func BoolColumn(bits Bitmap, n int) Column {
	return Column{Kind: KindBool, Len: n, Bools: bits}
}
