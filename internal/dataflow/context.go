// Package dataflow is the distributed-processing substrate of this
// repository: an in-process, multi-partition, parallel pipelined dataflow
// engine that plays the role Apache Spark plays in the paper.
//
// A Dataset is a collection of rows split into partitions. Narrow operators
// (Map, Filter, FlatMap, AddUniqueID) do not materialize their output:
// consecutive narrow operators are fused into a single per-row pass that runs
// when a wide operator (shuffle, join, group) or an action (Collect, Count)
// consumes the dataset. Partitions are processed goroutine-per-partition on a
// bounded worker pool shared by the whole Context, so no matter how many
// partitions a stage has, at most Workers tasks (counting the submitting
// goroutine, which runs overflow tasks inline) compute at once.
//
// Key-based repartitioning is an explicit shuffle: map-side tasks stream rows
// through the fused operator chain directly into per-(source,target) buffers,
// and reduce-side tasks concatenate their buffers in parallel. The engine
// meters every row that crosses the shuffle boundary (bytes and records),
// records per-stage wall time, tracks peak partition sizes, and enforces an
// optional per-partition memory cap that emulates the executor out-of-memory
// failures reported as "F = FAIL" in the paper's figures. Datasets carry
// partitioning guarantees so that co-partitioned inputs skip shuffles,
// exactly as Spark's partitioner-aware planning does (paper Section 3,
// "Operators effect the partitioning guarantee").
package dataflow

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/trance-go/trance/internal/value"
)

// Row is a flat engine tuple. Columns may hold nested bags: the standard
// compilation route carries inner collections through the pipeline the same
// way Spark Datasets do.
type Row = value.Tuple

// ErrMemoryExceeded reports that some partition outgrew the configured
// per-partition memory cap — the simulator's equivalent of a Spark executor
// crashing with memory saturation.
var ErrMemoryExceeded = errors.New("dataflow: partition memory cap exceeded (worker crash)")

// Context configures and instruments an engine run.
type Context struct {
	// Parallelism is the number of partitions used by shuffles. It plays the
	// role of the paper's "1000 partitions used for shuffling data".
	Parallelism int
	// Workers bounds the number of partition tasks executing at any moment
	// (the cluster's core count); the submitting goroutine counts as one
	// worker and runs overflow tasks inline, so Workers=1 executes every
	// task sequentially on the caller. 0 means runtime.NumCPU(). The pool
	// size is latched on the context's first operation; set Workers before
	// running anything — later changes are ignored.
	Workers int
	// MaxPartitionBytes caps the estimated size of any single materialized
	// partition; 0 disables the cap. Exceeding it fails the job with
	// ErrMemoryExceeded.
	MaxPartitionBytes int64
	// BroadcastLimit is the maximum estimated size of a dataset the engine
	// will broadcast instead of shuffling (the paper defers to Spark's 10MB
	// auto-broadcast threshold).
	BroadcastLimit int64
	// SampleSeed seeds the deterministic per-partition sampling used by the
	// skew detector.
	SampleSeed int64
	// DisableGuarantees makes every RepartitionBy shuffle even when the
	// partitioning guarantee already holds. The SparkSQL-style baseline uses
	// it to model plans that keep operators with their source relations and
	// re-exchange data at every key-based step.
	DisableGuarantees bool
	// BoxedExchange forces every key-based shuffle onto the boxed row path,
	// disabling the typed column buffers of the columnar exchange. Ablation
	// knob: the differential oracle runs both arms and the benchmarks use it
	// as the baseline.
	BoxedExchange bool

	// SharedPool, when non-nil, replaces the context's private worker pool so
	// several concurrent jobs (each with its own Context) draw helper
	// goroutines from one bounded budget — the serving layer's "many requests,
	// one cluster" model. Workers is ignored when SharedPool is set. Set it
	// before running anything on the context.
	SharedPool *Pool

	Metrics Metrics

	poolOnce sync.Once
	pool     chan struct{}
}

// Pool is a bounded worker pool that can be shared by any number of Contexts.
// Each job's submitting goroutine counts as one worker and runs overflow
// tasks inline (exactly as with a private pool), so a pool of size w bounds
// the EXTRA helper goroutines across all sharing jobs to w-1; total
// computing tasks are at most (concurrent jobs) + w - 1. A zero or negative
// size means runtime.NumCPU().
type Pool struct {
	size  int
	once  sync.Once
	slots chan struct{}
}

// NewPool creates a pool bounding helper goroutines to workers-1 (0 =
// NumCPU).
func NewPool(workers int) *Pool { return &Pool{size: workers} }

// Workers reports the pool's configured worker count after defaulting.
func (p *Pool) Workers() int {
	w := p.size
	if w <= 0 {
		w = runtime.NumCPU()
	}
	return w
}

func (p *Pool) semaphore() chan struct{} {
	p.once.Do(func() { p.slots = make(chan struct{}, p.Workers()-1) })
	return p.slots
}

// NewContext returns a context with the given parallelism, a NumCPU-sized
// worker pool, and no memory cap.
func NewContext(parallelism int) *Context {
	if parallelism <= 0 {
		parallelism = 1
	}
	return &Context{Parallelism: parallelism, BroadcastLimit: 10 << 20, SampleSeed: 42}
}

// slots returns the shared bounded worker pool, initializing it on first use.
// The caller of runParts counts as one worker (it runs overflow tasks
// inline), so the pool holds Workers-1 goroutine slots; with Workers=1 the
// pool is empty and every task runs sequentially on the caller.
func (c *Context) slots() chan struct{} {
	if c.SharedPool != nil {
		return c.SharedPool.semaphore()
	}
	c.poolOnce.Do(func() {
		w := c.Workers
		if w <= 0 {
			w = runtime.NumCPU()
		}
		c.pool = make(chan struct{}, w-1)
	})
	return c.pool
}

// StageTime is the measured wall time of one named engine stage.
type StageTime struct {
	Stage string
	Wall  time.Duration
}

// Metrics accumulates engine counters for one run. The atomic fields are
// updated lock-free from partition tasks; stage wall times are recorded under
// a mutex by the driver-side operator code. Read everything after the job
// completes (or via Snapshot at any point).
type Metrics struct {
	ShuffleBytes      atomic.Int64 // bytes of rows written across a shuffle boundary
	ShuffleRecords    atomic.Int64 // rows written across a shuffle boundary
	BroadcastBytes    atomic.Int64 // bytes replicated to every partition by broadcasts
	PeakPartition     atomic.Int64 // largest materialized partition observed (bytes)
	PeakPartitionRows atomic.Int64 // largest materialized partition observed (rows)
	Stages            atomic.Int64 // shuffle stages executed
	SkippedShuffles   atomic.Int64 // shuffles avoided thanks to partitioning guarantees
	VectorizedBatches atomic.Int64 // columnar batches processed by vectorized stages
	VectorizedRows    atomic.Int64 // rows processed by vectorized stages

	mu        sync.Mutex
	stageWall map[string]time.Duration
	stageSeen []string // first-seen order, for stable reporting
	exchange  ExchangeStat
	stageExch map[string]ExchangeStat
	exchSeen  []string // first-seen order, for stable reporting
}

// ExchangeStat describes how shuffle data crossed the exchange boundary:
// how many (source,target) buffers went out typed (columnar) versus boxed,
// and the metered bytes of each representation. Boxed buffers are metered by
// value.Size row walks; columnar buffers by their compact typed encoding.
type ExchangeStat struct {
	ColumnarBuffers int64
	BoxedBuffers    int64
	ColumnarBytes   int64
	BoxedBytes      int64
}

// add accumulates o into e.
func (e *ExchangeStat) add(o ExchangeStat) {
	e.ColumnarBuffers += o.ColumnarBuffers
	e.BoxedBuffers += o.BoxedBuffers
	e.ColumnarBytes += o.ColumnarBytes
	e.BoxedBytes += o.BoxedBytes
}

// StageExchange is the exchange accounting of one named shuffle stage.
type StageExchange struct {
	Stage string
	ExchangeStat
}

// addExchange accumulates one map task's exchange accounting under a stage
// name and into the run totals.
func (m *Metrics) addExchange(stage string, e ExchangeStat) {
	if e == (ExchangeStat{}) {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.exchange.add(e)
	if m.stageExch == nil {
		m.stageExch = map[string]ExchangeStat{}
	}
	if _, ok := m.stageExch[stage]; !ok {
		m.exchSeen = append(m.exchSeen, stage)
	}
	cur := m.stageExch[stage]
	cur.add(e)
	m.stageExch[stage] = cur
}

// AddStageWall accumulates wall time under a stage name.
func (m *Metrics) AddStageWall(stage string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stageWall == nil {
		m.stageWall = map[string]time.Duration{}
	}
	if _, ok := m.stageWall[stage]; !ok {
		m.stageSeen = append(m.stageSeen, stage)
	}
	m.stageWall[stage] += d
}

// Reset zeroes all counters.
func (m *Metrics) Reset() {
	m.ShuffleBytes.Store(0)
	m.ShuffleRecords.Store(0)
	m.BroadcastBytes.Store(0)
	m.PeakPartition.Store(0)
	m.PeakPartitionRows.Store(0)
	m.Stages.Store(0)
	m.SkippedShuffles.Store(0)
	m.VectorizedBatches.Store(0)
	m.VectorizedRows.Store(0)
	m.mu.Lock()
	m.stageWall = nil
	m.stageSeen = nil
	m.exchange = ExchangeStat{}
	m.stageExch = nil
	m.exchSeen = nil
	m.mu.Unlock()
}

// Snapshot is a plain-struct copy of Metrics, convenient for reporting.
type Snapshot struct {
	ShuffleBytes      int64
	ShuffleRecords    int64
	BroadcastBytes    int64
	PeakPartition     int64
	PeakPartitionRows int64
	Stages            int64
	SkippedShuffles   int64
	VectorizedBatches int64
	VectorizedRows    int64
	// Exchange totals how shuffle buffers crossed the boundary.
	Exchange ExchangeStat
	// StageWall lists per-stage wall times in first-execution order.
	StageWall []StageTime
	// StageExchange lists per-stage exchange accounting in first-execution
	// order (key-based and rebalance shuffle stages only).
	StageExchange []StageExchange
}

// Snapshot copies the current counter values.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		ShuffleBytes:      m.ShuffleBytes.Load(),
		ShuffleRecords:    m.ShuffleRecords.Load(),
		BroadcastBytes:    m.BroadcastBytes.Load(),
		PeakPartition:     m.PeakPartition.Load(),
		PeakPartitionRows: m.PeakPartitionRows.Load(),
		Stages:            m.Stages.Load(),
		SkippedShuffles:   m.SkippedShuffles.Load(),
		VectorizedBatches: m.VectorizedBatches.Load(),
		VectorizedRows:    m.VectorizedRows.Load(),
	}
	m.mu.Lock()
	for _, name := range m.stageSeen {
		s.StageWall = append(s.StageWall, StageTime{Stage: name, Wall: m.stageWall[name]})
	}
	s.Exchange = m.exchange
	for _, name := range m.exchSeen {
		s.StageExchange = append(s.StageExchange, StageExchange{Stage: name, ExchangeStat: m.stageExch[name]})
	}
	m.mu.Unlock()
	return s
}

func (s Snapshot) String() string {
	return fmt.Sprintf("shuffle=%dB/%drec broadcast=%dB peakPart=%dB/%drows stages=%d skipped=%d vec=%dbatch/%drows exchange=%dcol/%dboxed",
		s.ShuffleBytes, s.ShuffleRecords, s.BroadcastBytes, s.PeakPartition, s.PeakPartitionRows,
		s.Stages, s.SkippedShuffles, s.VectorizedBatches, s.VectorizedRows,
		s.Exchange.ColumnarBuffers, s.Exchange.BoxedBuffers)
}

// StageReport renders the per-stage wall times, slowest first.
func (s Snapshot) StageReport() string {
	st := append([]StageTime(nil), s.StageWall...)
	sort.SliceStable(st, func(i, j int) bool { return st[i].Wall > st[j].Wall })
	var b strings.Builder
	for _, t := range st {
		fmt.Fprintf(&b, "%-24s %12s\n", t.Stage, t.Wall)
	}
	return b.String()
}

// runParts invokes fn for every partition index and returns the joined
// errors. Execution is work-stealing over the context's bounded worker pool:
// helper goroutines (as many as free pool slots allow, at most Workers-1)
// and the caller itself all pull the next unclaimed index from a shared
// counter, so a long-running partition never stalls dispatch of the ones
// behind it. At most Workers tasks compute at once — the caller counts as
// one worker, so Workers=1 runs every task sequentially on the caller — and
// scheduling can never deadlock.
func (c *Context) runParts(n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if n == 1 {
		return runTask(fn, 0)
	}
	errs := make([]error, n)
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			errs[i] = runTask(fn, i)
		}
	}
	sem := c.slots()
	var wg sync.WaitGroup
	for spawned := 0; spawned < n-1; spawned++ {
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				work()
			}()
			continue
		default:
		}
		break
	}
	work()
	wg.Wait()
	return errors.Join(errs...)
}

// runTask runs one partition task, converting a panic into an error. Tasks
// run on pool goroutines where a panic would kill the whole process — no
// caller-side recover can reach them — so this boundary is what lets a
// malformed query or corrupt row degrade to a failed job instead of a crash.
func runTask(fn func(i int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("dataflow: partition %d panicked: %v\n%s", i, r, debug.Stack())
		}
	}()
	return fn(i)
}

// timeStage measures fn's wall time under the stage name.
func (c *Context) timeStage(stage string, fn func() error) error {
	start := time.Now()
	err := fn()
	c.Metrics.AddStageWall(stage, time.Since(start))
	return err
}

// checkPartitions records peak partition sizes and enforces the memory cap.
func (c *Context) checkPartitions(stage string, parts [][]Row) error {
	var failed atomic.Bool
	_ = c.runParts(len(parts), func(i int) error {
		sz := value.SizeRows(parts[i])
		maxInt64(&c.Metrics.PeakPartition, sz)
		maxInt64(&c.Metrics.PeakPartitionRows, int64(len(parts[i])))
		if c.MaxPartitionBytes > 0 && sz > c.MaxPartitionBytes {
			failed.Store(true)
		}
		return nil
	})
	if failed.Load() {
		return fmt.Errorf("stage %s: %w", stage, ErrMemoryExceeded)
	}
	return nil
}

// maxInt64 raises an atomic counter to v if v is larger.
func maxInt64(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
