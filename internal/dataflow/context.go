// Package dataflow is the distributed-processing substrate of this
// repository: an in-process, multi-partition bulk dataflow engine that plays
// the role Apache Spark plays in the paper.
//
// A Dataset is a collection of rows split into partitions. Operators process
// partitions in parallel (one goroutine per partition). Key-based
// repartitioning is an explicit shuffle; the engine meters every row that
// crosses the shuffle boundary (bytes and records), tracks peak partition
// sizes, and enforces an optional per-partition memory cap that emulates the
// executor out-of-memory failures reported as "F = FAIL" in the paper's
// figures. Datasets carry partitioning guarantees so that co-partitioned
// inputs skip shuffles, exactly as Spark's partitioner-aware planning does
// (paper Section 3, "Operators effect the partitioning guarantee").
package dataflow

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/trance-go/trance/internal/value"
)

// Row is a flat engine tuple. Columns may hold nested bags: the standard
// compilation route carries inner collections through the pipeline the same
// way Spark Datasets do.
type Row = value.Tuple

// ErrMemoryExceeded reports that some partition outgrew the configured
// per-partition memory cap — the simulator's equivalent of a Spark executor
// crashing with memory saturation.
var ErrMemoryExceeded = errors.New("dataflow: partition memory cap exceeded (worker crash)")

// Context configures and instruments an engine run.
type Context struct {
	// Parallelism is the number of partitions used by shuffles. It plays the
	// role of the paper's "1000 partitions used for shuffling data".
	Parallelism int
	// MaxPartitionBytes caps the estimated size of any single materialized
	// partition; 0 disables the cap. Exceeding it fails the job with
	// ErrMemoryExceeded.
	MaxPartitionBytes int64
	// BroadcastLimit is the maximum estimated size of a dataset the engine
	// will broadcast instead of shuffling (the paper defers to Spark's 10MB
	// auto-broadcast threshold).
	BroadcastLimit int64
	// SampleSeed seeds the deterministic per-partition sampling used by the
	// skew detector.
	SampleSeed int64
	// DisableGuarantees makes every RepartitionBy shuffle even when the
	// partitioning guarantee already holds. The SparkSQL-style baseline uses
	// it to model plans that keep operators with their source relations and
	// re-exchange data at every key-based step.
	DisableGuarantees bool

	Metrics Metrics
}

// NewContext returns a context with the given parallelism and no memory cap.
func NewContext(parallelism int) *Context {
	if parallelism <= 0 {
		parallelism = 1
	}
	return &Context{Parallelism: parallelism, BroadcastLimit: 10 << 20, SampleSeed: 42}
}

// Metrics accumulates engine counters for one run. All fields are updated
// atomically; read them after the job completes.
type Metrics struct {
	ShuffleBytes    atomic.Int64 // bytes of rows written across a shuffle boundary
	ShuffleRecords  atomic.Int64 // rows written across a shuffle boundary
	BroadcastBytes  atomic.Int64 // bytes replicated to every partition by broadcasts
	PeakPartition   atomic.Int64 // largest materialized partition observed
	Stages          atomic.Int64 // shuffle stages executed
	SkippedShuffles atomic.Int64 // shuffles avoided thanks to partitioning guarantees
}

// Reset zeroes all counters.
func (m *Metrics) Reset() {
	m.ShuffleBytes.Store(0)
	m.ShuffleRecords.Store(0)
	m.BroadcastBytes.Store(0)
	m.PeakPartition.Store(0)
	m.Stages.Store(0)
	m.SkippedShuffles.Store(0)
}

// Snapshot is a plain-struct copy of Metrics, convenient for reporting.
type Snapshot struct {
	ShuffleBytes    int64
	ShuffleRecords  int64
	BroadcastBytes  int64
	PeakPartition   int64
	Stages          int64
	SkippedShuffles int64
}

// Snapshot copies the current counter values.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		ShuffleBytes:    m.ShuffleBytes.Load(),
		ShuffleRecords:  m.ShuffleRecords.Load(),
		BroadcastBytes:  m.BroadcastBytes.Load(),
		PeakPartition:   m.PeakPartition.Load(),
		Stages:          m.Stages.Load(),
		SkippedShuffles: m.SkippedShuffles.Load(),
	}
}

func (s Snapshot) String() string {
	return fmt.Sprintf("shuffle=%dB/%drec broadcast=%dB peakPart=%dB stages=%d skipped=%d",
		s.ShuffleBytes, s.ShuffleRecords, s.BroadcastBytes, s.PeakPartition, s.Stages, s.SkippedShuffles)
}

// runParts invokes fn for every partition index in parallel and returns the
// first error.
func runParts(n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if n == 1 {
		return fn(0)
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// checkPartitions records peak partition sizes and enforces the memory cap.
func (c *Context) checkPartitions(stage string, parts [][]Row) error {
	var failed atomic.Bool
	_ = runParts(len(parts), func(i int) error {
		sz := value.SizeRows(parts[i])
		for {
			cur := c.Metrics.PeakPartition.Load()
			if sz <= cur || c.Metrics.PeakPartition.CompareAndSwap(cur, sz) {
				break
			}
		}
		if c.MaxPartitionBytes > 0 && sz > c.MaxPartitionBytes {
			failed.Store(true)
		}
		return nil
	})
	if failed.Load() {
		return fmt.Errorf("stage %s: %w", stage, ErrMemoryExceeded)
	}
	return nil
}
