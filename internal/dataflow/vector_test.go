// Property tests for the columnar kernels: every vector kernel is compared
// element-wise against the row interpreter's semantics (value.Compare /
// nrc.EvalArith / the NULL-coercion idioms), over randomized columns that
// include NULLs, NaN/Inf floats, negative ints, empty strings, and lengths
// that straddle bitmap word boundaries.
package dataflow

import (
	"math"
	"math/rand"
	"testing"

	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/value"
)

// Value pools chosen to hit the interpreter's edge cases.
var (
	intPool    = []int64{0, 1, -1, 42, -42, math.MaxInt64, math.MinInt64, 7}
	floatPool  = []float64{0, math.Copysign(0, -1), 1.5, -2.5, math.NaN(), math.Inf(1), math.Inf(-1), 3}
	stringPool = []string{"", "a", "ab", "é", "zzz", "Z"}
	datePool   = []value.Date{0, 1, -1, 18262, 7305}
)

// randCell draws one dynamic value of the kind (nil with probability
// nullFrac).
func randCell(rng *rand.Rand, kind Kind, nullFrac float64) value.Value {
	if rng.Float64() < nullFrac {
		return nil
	}
	switch kind {
	case KindInt64:
		return intPool[rng.Intn(len(intPool))]
	case KindFloat64:
		return floatPool[rng.Intn(len(floatPool))]
	case KindString:
		return stringPool[rng.Intn(len(stringPool))]
	case KindBool:
		return rng.Intn(2) == 1
	case KindDate:
		return datePool[rng.Intn(len(datePool))]
	default:
		return value.Tuple{intPool[rng.Intn(len(intPool))]}
	}
}

// randColumn builds a column of the kind through TransposeCol, so transpose
// and the kernels are exercised together.
func randColumn(rng *rand.Rand, kind Kind, n int, nullFrac float64) Column {
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{randCell(rng, kind, nullFrac)}
	}
	return TransposeCol(rows, 0, kind)
}

var allCmpOps = []CmpOp{CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe}

// refCmp is the row interpreter's comparison: NULL on either side is false
// (not NULL), everything else three-ways through value.Compare.
func refCmp(op CmpOp, l, r value.Value) bool {
	if l == nil || r == nil {
		return false
	}
	return cmpHolds(op, value.Compare(l, r))
}

// checkBits verifies a kernel-produced selection bitmap bit-for-bit against
// the row reference, including that no bits leak past n.
func checkBits(t *testing.T, what string, bits Bitmap, n int, ref func(i int) bool) {
	t.Helper()
	want := 0
	for i := 0; i < n; i++ {
		w := ref(i)
		if w {
			want++
		}
		if bits.Get(i) != w {
			t.Fatalf("%s: bit %d = %t, row interpreter says %t", what, i, bits.Get(i), w)
		}
	}
	if got := bits.Count(); got != want {
		t.Fatalf("%s: count=%d want %d — selection has bits set past n=%d", what, got, want, n)
	}
}

// TestCmpColumnsProperty compares CmpColumns against the row interpreter for
// every kind, every op, and NULL densities from none to all-NULL.
func TestCmpColumnsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	kinds := []Kind{KindInt64, KindFloat64, KindString, KindBool, KindDate}
	lengths := []int{0, 1, 63, 64, 65, 130}
	for trial := 0; trial < 200; trial++ {
		kind := kinds[rng.Intn(len(kinds))]
		n := lengths[rng.Intn(len(lengths))]
		nf := []float64{0, 0.3, 1}[rng.Intn(3)]
		l := randColumn(rng, kind, n, nf)
		r := randColumn(rng, kind, n, nf)
		for _, op := range allCmpOps {
			bits, ok := CmpColumns(op, &l, &r)
			if !ok {
				t.Fatalf("CmpColumns refused %v on %v", op, kind)
			}
			checkBits(t, kind.String(), bits, n, func(i int) bool { return refCmp(op, l.Get(i), r.Get(i)) })
		}
	}
}

// TestCmpColumnsCross covers the int64×float64 numeric cross-compare (both
// orders), which value.Compare resolves through float64 promotion.
func TestCmpColumnsCross(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(90)
		l := randColumn(rng, KindInt64, n, 0.2)
		r := randColumn(rng, KindFloat64, n, 0.2)
		for _, op := range allCmpOps {
			bits, ok := CmpColumns(op, &l, &r)
			if !ok {
				t.Fatal("int×float cross-compare refused")
			}
			checkBits(t, "int×float", bits, n, func(i int) bool { return refCmp(op, l.Get(i), r.Get(i)) })
			bits, ok = CmpColumns(op, &r, &l)
			if !ok {
				t.Fatal("float×int cross-compare refused")
			}
			checkBits(t, "float×int", bits, n, func(i int) bool { return refCmp(op, r.Get(i), l.Get(i)) })
		}
	}
}

// TestCmpColumnsBoxedRefuses pins the fallback contract: boxed columns and
// non-numeric kind mismatches must return ok=false, never a wrong bitmap.
func TestCmpColumnsBoxedRefuses(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	boxed := randColumn(rng, KindBoxed, 10, 0.2)
	ints := randColumn(rng, KindInt64, 10, 0.2)
	strs := randColumn(rng, KindString, 10, 0.2)
	if _, ok := CmpColumns(CmpEq, &boxed, &boxed); ok {
		t.Fatal("boxed×boxed must refuse")
	}
	if _, ok := CmpColumns(CmpEq, &ints, &strs); ok {
		t.Fatal("int×string must refuse")
	}
}

// TestCmpColumnConstProperty compares the specialized constant kernels
// against the row interpreter, including numeric cross-typed constants.
func TestCmpColumnConstProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(130)
		nf := []float64{0, 0.3, 1}[rng.Intn(3)]
		for _, op := range allCmpOps {
			ic := intPool[rng.Intn(len(intPool))]
			fc := floatPool[rng.Intn(len(floatPool))]
			sc := stringPool[rng.Intn(len(stringPool))]
			dc := datePool[rng.Intn(len(datePool))]

			ints := randColumn(rng, KindInt64, n, nf)
			floats := randColumn(rng, KindFloat64, n, nf)
			strs := randColumn(rng, KindString, n, nf)
			dates := randColumn(rng, KindDate, n, nf)

			cases := []struct {
				what  string
				col   *Column
				cv    value.Value
				bits  Bitmap
				valid bool
			}{}
			add := func(what string, col *Column, cv value.Value, bits Bitmap, valid bool) {
				cases = append(cases, struct {
					what  string
					col   *Column
					cv    value.Value
					bits  Bitmap
					valid bool
				}{what, col, cv, bits, valid})
			}
			b, ok := CmpColumnConstInt(op, &ints, ic)
			add("int col × int const", &ints, ic, b, ok)
			b, ok = CmpColumnConstInt(op, &floats, ic)
			add("float col × int const", &floats, ic, b, ok)
			b, ok = CmpColumnConstFloat(op, &floats, fc)
			add("float col × float const", &floats, fc, b, ok)
			b, ok = CmpColumnConstFloat(op, &ints, fc)
			add("int col × float const", &ints, fc, b, ok)
			b, ok = CmpColumnConstString(op, &strs, sc)
			add("string col × const", &strs, sc, b, ok)
			b, ok = CmpColumnConstDate(op, &dates, int64(dc))
			add("date col × const", &dates, dc, b, ok)
			for _, c := range cases {
				if !c.valid {
					t.Fatalf("%s refused", c.what)
				}
				col, cv := c.col, c.cv
				checkBits(t, c.what, c.bits, n, func(i int) bool { return refCmp(op, col.Get(i), cv) })
			}
		}
	}
}

// TestCmpRowsConstProperty checks the fused single-pass kernel against the
// row interpreter for every (column kind × constant type × op) combo it
// claims to cover, and that its accept/refuse verdicts match the
// materializing path (TransposeCol + CmpColumnConst*) exactly.
func TestCmpRowsConstProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	kinds := []Kind{KindInt64, KindFloat64, KindString, KindBool, KindDate}
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(130)
		nf := []float64{0, 0.3, 1}[rng.Intn(3)]
		kind := kinds[rng.Intn(len(kinds))]
		rows := make([]Row, n)
		for i := range rows {
			rows[i] = Row{randCell(rng, kind, nf)}
		}
		consts := []value.Value{
			intPool[rng.Intn(len(intPool))],
			floatPool[rng.Intn(len(floatPool))],
			stringPool[rng.Intn(len(stringPool))],
			datePool[rng.Intn(len(datePool))],
		}
		for _, cv := range consts {
			for _, op := range allCmpOps {
				bits, ok := CmpRowsConst(op, rows, 0, kind, cv)
				col := TransposeCol(rows, 0, kind)
				var wantBits Bitmap
				wantOK := false
				switch x := cv.(type) {
				case int64:
					wantBits, wantOK = CmpColumnConstInt(op, &col, x)
				case float64:
					wantBits, wantOK = CmpColumnConstFloat(op, &col, x)
				case string:
					wantBits, wantOK = CmpColumnConstString(op, &col, x)
				case value.Date:
					wantBits, wantOK = CmpColumnConstDate(op, &col, int64(x))
				}
				if ok != wantOK {
					t.Fatalf("fused %v col × %T const op %v: ok=%t, materializing path says %t", kind, cv, op, ok, wantOK)
				}
				if !ok {
					continue
				}
				what := kind.String() + " fused"
				checkBits(t, what, bits, n, func(i int) bool { return refCmp(op, rows[i][0], cv) })
				for i := 0; i < n; i++ {
					if bits.Get(i) != wantBits.Get(i) {
						t.Fatalf("%s: bit %d diverges from materializing kernel", what, i)
					}
				}
			}
		}
	}
}

// TestCmpRowsConstRefuses: a dynamic value contradicting the stated kind must
// refuse the whole batch — the same verdict the materializing path reaches by
// demoting the transposed column to boxed.
func TestCmpRowsConstRefuses(t *testing.T) {
	rows := []Row{{int64(1)}, {"poison"}, {int64(3)}}
	if _, ok := CmpRowsConst(CmpGt, rows, 0, KindInt64, int64(2)); ok {
		t.Fatal("fused kernel accepted a batch with a type-contradicting cell")
	}
	if _, ok := CmpRowsConst(CmpGt, rows, 0, KindBoxed, int64(2)); ok {
		t.Fatal("fused kernel accepted a boxed column")
	}
}

// arithToNrc maps the engine-local opcode to the interpreter's.
func arithToNrc(op ArithOp) nrc.ArithOp {
	switch op {
	case ArithAdd:
		return nrc.Add
	case ArithSub:
		return nrc.Sub
	case ArithMul:
		return nrc.Mul
	default:
		return nrc.Div
	}
}

// cellEq compares kernel output to interpreter output exactly: same type,
// same value, with NaN equal to NaN (value.Equal's three-way protocol would
// also call 1 and 1.0 equal, which must NOT pass here — int/float output
// typing is part of EvalArith's contract).
func cellEq(a, b value.Value) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	switch x := a.(type) {
	case int64:
		y, ok := b.(int64)
		return ok && x == y
	case float64:
		y, ok := b.(float64)
		if !ok {
			return false
		}
		return x == y || (math.IsNaN(x) && math.IsNaN(y))
	default:
		return value.Equal(a, b)
	}
}

// TestArithColumnsProperty compares ArithColumns against nrc.EvalArith over
// every kind pairing and op: native wrapping int arithmetic, float promotion,
// NULL propagation, and Div-by-zero → 0.0.
func TestArithColumnsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ops := []ArithOp{ArithAdd, ArithSub, ArithMul, ArithDiv}
	kinds := []Kind{KindInt64, KindFloat64}
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(130)
		nf := []float64{0, 0.3, 1}[rng.Intn(3)]
		lk := kinds[rng.Intn(2)]
		rk := kinds[rng.Intn(2)]
		l := randColumn(rng, lk, n, nf)
		r := randColumn(rng, rk, n, nf)
		for _, op := range ops {
			out, ok := ArithColumns(op, &l, &r)
			if !ok {
				t.Fatalf("ArithColumns refused %v×%v", lk, rk)
			}
			if out.Len != n {
				t.Fatalf("len=%d want %d", out.Len, n)
			}
			for i := 0; i < n; i++ {
				want := nrc.EvalArith(arithToNrc(op), l.Get(i), r.Get(i))
				if got := out.Get(i); !cellEq(got, want) {
					t.Fatalf("op %v at %d: %v %T, interpreter %v %T (l=%v r=%v)",
						op, i, got, got, want, want, l.Get(i), r.Get(i))
				}
			}
		}
	}
}

// TestArithColumnsRefuses pins fallback for kinds the kernels don't cover.
func TestArithColumnsRefuses(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	strs := randColumn(rng, KindString, 5, 0)
	ints := randColumn(rng, KindInt64, 5, 0)
	if _, ok := ArithColumns(ArithAdd, &strs, &ints); ok {
		t.Fatal("string arithmetic must refuse")
	}
}

// TestCoerceBoolProperty pins the predicate coercion: NULL counts as false,
// exactly like the row engine's `b, _ := pred.Eval(r).(bool)`.
func TestCoerceBoolProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(130)
		c := randColumn(rng, KindBool, n, 0.4)
		bits, ok := CoerceBool(&c)
		if !ok {
			t.Fatal("CoerceBool refused a bool column")
		}
		checkBits(t, "coerce", bits, n, func(i int) bool {
			b, _ := c.Get(i).(bool)
			return b
		})
		ints := randColumn(rng, KindInt64, n, 0)
		if _, ok := CoerceBool(&ints); ok {
			t.Fatal("CoerceBool must refuse non-bool columns")
		}
	}
}

// TestBitmapLogicProperty checks the word-wise bitmap combinators bit-for-bit
// against their boolean definitions, over lengths that straddle word
// boundaries, including nil (all-clear) inputs and tail-bit hygiene.
func TestBitmapLogicProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	randBits := func(n int) Bitmap {
		if rng.Intn(4) == 0 {
			return nil
		}
		b := NewBitmap(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				b.Set(i)
			}
		}
		return b
	}
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 200} {
		for trial := 0; trial < 20; trial++ {
			a, b := randBits(n), randBits(n)
			checkBits(t, "and", AndBitmaps(a, b, n), n, func(i int) bool { return a.Get(i) && b.Get(i) })
			checkBits(t, "or", OrBitmaps(a, b, n), n, func(i int) bool { return a.Get(i) || b.Get(i) })
			checkBits(t, "andnot", AndNotBitmap(a, b, n), n, func(i int) bool { return a.Get(i) && !b.Get(i) })
			checkBits(t, "not", NotBitmap(a, n), n, func(i int) bool { return !a.Get(i) })
			checkBits(t, "full", FullBitmap(n), n, func(i int) bool { return true })
		}
	}
}

// TestConstColumn pins the constant materializer: nil constants are all-NULL,
// true bool columns keep tail bits clear, and a kind/value mismatch demotes
// to boxed instead of producing a wrong typed vector.
func TestConstColumn(t *testing.T) {
	for _, kind := range []Kind{KindInt64, KindFloat64, KindString, KindBool, KindDate, KindBoxed} {
		c := ConstColumn(kind, nil, 70)
		for i := 0; i < 70; i++ {
			if c.Get(i) != nil {
				t.Fatalf("%v nil const: Get(%d)=%v", kind, i, c.Get(i))
			}
		}
		if c.Nulls.Count() != 70 {
			t.Fatalf("%v nil const: null count %d (tail bits?)", kind, c.Nulls.Count())
		}
	}
	c := ConstColumn(KindBool, true, 70)
	if c.Bools.Count() != 70 {
		t.Fatalf("true const: %d bits set, want 70 with clear tail", c.Bools.Count())
	}
	c = ConstColumn(KindInt64, "oops", 3)
	if c.Kind != KindBoxed || !value.Equal(c.Get(2), "oops") {
		t.Fatalf("mismatched const must demote to boxed, got %v %v", c.Kind, c.Get(2))
	}
	c = ConstColumn(KindDate, value.Date(42), 3)
	if c.Kind != KindDate || !value.Equal(c.Get(0), value.Date(42)) {
		t.Fatalf("date const: %v %v", c.Kind, c.Get(0))
	}
}

// TestTransposeColDemotes pins schema-contradiction handling: a single value
// of the wrong dynamic type demotes the whole column to boxed, losslessly.
func TestTransposeColDemotes(t *testing.T) {
	rows := []Row{{int64(1)}, {"surprise"}, {nil}, {int64(3)}}
	c := TransposeCol(rows, 0, KindInt64)
	if c.Kind != KindBoxed {
		t.Fatalf("kind=%v want boxed", c.Kind)
	}
	for i, r := range rows {
		if !value.Equal(c.Get(i), r[0]) && !(c.Get(i) == nil && r[0] == nil) {
			t.Fatalf("demoted column lost cell %d: %v != %v", i, c.Get(i), r[0])
		}
	}
}

// decodeFuzzRows derives a deterministic row set from a fuzz byte stream:
// width and per-column kind come from the header, cells from the tail, with
// NULLs, negative ints, dates, empty strings, and boxed nested values all
// reachable.
func decodeFuzzRows(data []byte) []Row {
	if len(data) < 2 {
		return nil
	}
	width := 1 + int(data[0])%4
	kinds := make([]byte, width)
	for c := 0; c < width; c++ {
		kinds[c] = data[1+c%max(1, len(data)-1)] % 8
	}
	pos := 1 + width
	next := func() byte {
		if pos >= len(data) {
			pos = 1 + width
			if pos >= len(data) {
				return 0
			}
		}
		b := data[pos]
		pos++
		return b
	}
	nRows := int(next()) % 70
	rows := make([]Row, nRows)
	for i := range rows {
		r := make(Row, width)
		for c := 0; c < width; c++ {
			k := kinds[c]
			if k == 7 { // mixed column: re-draw the kind per cell
				k = next() % 7
			}
			switch sel := next(); k {
			case 0:
				r[c] = nil
			case 1:
				r[c] = int64(sel) - 128 // negative and positive ints
			case 2:
				r[c] = (float64(sel) - 128) / 4
			case 3:
				r[c] = string([]byte{'a' + sel%3})[:int(sel)%2] // "" or one char
			case 4:
				r[c] = sel%2 == 1
			case 5:
				r[c] = value.Date(int64(sel) - 128)
			default:
				r[c] = value.Tuple{int64(sel)} // boxed fallback
			}
		}
		rows[i] = r
	}
	return rows
}

// FuzzColumnRoundTrip fuzzes transpose → columns → rows losslessness: every
// cell must survive under value.Equal for inferred kinds, for the boxed
// fallback, and for deliberately wrong schema kinds (which must demote, not
// corrupt).
func FuzzColumnRoundTrip(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 4, 5, 10, 200, 30, 4, 250, 6})      // typed columns
	f.Add([]byte{0, 0, 9, 1, 2, 3})                              // all-NULL column
	f.Add([]byte{1, 5, 5, 0, 127, 255, 64})                      // dates incl. negatives
	f.Add([]byte{2, 3, 3, 8, 0, 1, 2, 3, 4, 5, 6, 7})            // empty strings
	f.Add([]byte{3, 6, 7, 1, 12, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0})  // boxed + mixed
	f.Add([]byte{1, 1, 66, 1, 2, 3, 4, 5, 6, 7, 8, 9, 250, 251}) // >64 rows, word boundary
	f.Fuzz(func(t *testing.T, data []byte) {
		rows := decodeFuzzRows(data)
		b := Transpose(rows)
		if b.Len != len(rows) {
			t.Fatalf("batch len %d != %d rows", b.Len, len(rows))
		}
		back := b.Rows()
		for i, r := range rows {
			for c := range r {
				got := back[i][c]
				if r[c] == nil {
					if got != nil {
						t.Fatalf("row %d col %d: NULL became %v", i, c, got)
					}
					continue
				}
				if !value.Equal(got, r[c]) {
					t.Fatalf("row %d col %d: %v (%T) != %v (%T)", i, c, got, got, r[c], r[c])
				}
			}
		}
		if len(rows) == 0 {
			return
		}
		// Transposing under a wrong static kind must demote to boxed (or
		// accept, for the kind that happens to match) — never corrupt cells.
		for c := range rows[0] {
			for _, kind := range []Kind{KindInt64, KindString, KindBoxed} {
				col := TransposeCol(rows, c, kind)
				for i := range rows {
					got := col.Get(i)
					if rows[i][c] == nil {
						if got != nil {
							t.Fatalf("kind %v: NULL became %v", kind, got)
						}
					} else if !value.Equal(got, rows[i][c]) {
						t.Fatalf("kind %v row %d col %d: %v != %v", kind, i, c, got, rows[i][c])
					}
				}
			}
		}
	})
}
