package dataflow

import (
	"sync/atomic"
	"testing"

	"github.com/trance-go/trance/internal/value"
)

// TestNarrowOperatorsAreFusedAndLazy verifies the pipelining contract:
// chained Map/Filter/FlatMap calls accumulate fused stages without running
// anything, and a single action materializes the whole chain in one pass.
func TestNarrowOperatorsAreFusedAndLazy(t *testing.T) {
	c := NewContext(4)
	var calls atomic.Int64
	d := c.FromRows(rowsOfInts(1, 1, 2, 2, 3, 3, 4, 4))
	chained := d.
		Map(func(r Row) Row { calls.Add(1); return Row{r[0], r[1].(int64) * 10} }).
		Filter(func(r Row) bool { calls.Add(1); return r[1].(int64) >= 20 }).
		Map(func(r Row) Row { calls.Add(1); return Row{r[0]} })
	if got := len(chained.stages); got != 3 {
		t.Fatalf("pending fused stages = %d, want 3", got)
	}
	if calls.Load() != 0 {
		t.Fatalf("narrow operators ran eagerly: %d calls before any action", calls.Load())
	}
	if chained.Count() != 3 {
		t.Fatalf("count = %d, want 3", chained.Count())
	}
	// 4 map calls + 4 filter calls + 3 surviving second-map calls.
	if calls.Load() != 11 {
		t.Fatalf("fused pass ran %d operator calls, want 11", calls.Load())
	}
	if len(chained.stages) != 0 {
		t.Fatal("action must cache the materialized partitions")
	}
	// A second action must reuse the cache, not recompute.
	_ = chained.Count()
	if calls.Load() != 11 {
		t.Fatalf("second action recomputed the chain: %d calls", calls.Load())
	}
}

// TestShuffleConsumesFusedChain verifies that a map/filter chain feeding a
// shuffle is executed inside the shuffle's map-side tasks: the lazy input
// dataset keeps its original base partitions (nothing materialized between
// the narrow operators and the exchange).
func TestShuffleConsumesFusedChain(t *testing.T) {
	c := NewContext(4)
	d := c.FromRows(rowsOfInts(1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6))
	lazy := d.Map(func(r Row) Row { return Row{r[0].(int64) % 2, r[1]} }).
		Filter(func(r Row) bool { return r[1].(int64) != 6 })
	out, err := lazy.RepartitionBy("fused", []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(lazy.stages) != 2 {
		t.Fatal("shuffle must stream the chain, not force the input dataset")
	}
	if out.Count() != 5 {
		t.Fatalf("rows after fused shuffle = %d, want 5", out.Count())
	}
	m := c.Metrics.Snapshot()
	if m.ShuffleRecords != 5 {
		t.Fatalf("metered shuffle records = %d, want post-filter 5", m.ShuffleRecords)
	}
}

// TestWorkerPoolBounded verifies that partition tasks never exceed the
// configured worker budget (the caller counts as one worker), and that
// Workers=1 executes every task sequentially.
func TestWorkerPoolBounded(t *testing.T) {
	for _, workers := range []int{1, 2} {
		c := NewContext(64)
		c.Workers = workers
		var cur, peak atomic.Int64
		rows := make([]Row, 256)
		for i := range rows {
			rows[i] = Row{int64(i)}
		}
		d := c.FromRows(rows).Map(func(r Row) Row {
			n := cur.Add(1)
			maxInt64(&peak, n)
			for i := 0; i < 1000; i++ { // widen the overlap window
				_ = i
			}
			cur.Add(-1)
			return r
		})
		if d.Count() != 256 {
			t.Fatal("rows lost")
		}
		if peak.Load() > int64(workers) {
			t.Fatalf("observed %d concurrent partition tasks with Workers=%d", peak.Load(), workers)
		}
	}
}

// TestStageWallTimesRecorded verifies per-stage wall-time metering across
// shuffles, joins, and group-reduces.
func TestStageWallTimesRecorded(t *testing.T) {
	c := NewContext(4)
	d := c.FromRows(rowsOfInts(1, 1, 2, 2, 3, 3, 4, 4))
	if _, err := d.RepartitionBy("exchange", []int{0}); err != nil {
		t.Fatal(err)
	}
	r := c.FromRows(rowsOfInts(1, 10, 2, 20))
	if _, err := d.Join("probe", r, []int{0}, []int{0}, 2, false); err != nil {
		t.Fatal(err)
	}
	if _, err := d.GroupReduce("gamma", []int{0}, func(rs []Row) []Row { return rs[:1] }); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, st := range c.Metrics.Snapshot().StageWall {
		seen[st.Stage] = true
	}
	for _, want := range []string{"exchange", "probe", "gamma/reduce"} {
		if !seen[want] {
			t.Fatalf("stage %q missing from wall-time metrics: %v", want, seen)
		}
	}
	if c.Metrics.Snapshot().StageReport() == "" {
		t.Fatal("empty stage report")
	}
}

// TestPeakPartitionRowsTracked verifies the row-count sibling of the byte
// peak counter.
func TestPeakPartitionRowsTracked(t *testing.T) {
	c := NewContext(4)
	var rows []Row
	for i := 0; i < 100; i++ {
		rows = append(rows, Row{int64(7), int64(i)}) // one heavy key
	}
	if _, err := c.FromRows(rows).RepartitionBy("skewed", []int{0}); err != nil {
		t.Fatal(err)
	}
	if got := c.Metrics.Snapshot().PeakPartitionRows; got != 100 {
		t.Fatalf("peak partition rows = %d, want 100", got)
	}
}

// TestAddUniqueIDDeterministicAcrossReplays verifies that the fused ID stage
// assigns the same IDs on every pass over the same base partitions (the
// pipeline may replay when a lazy dataset is consumed by two operators).
func TestAddUniqueIDDeterministicAcrossReplays(t *testing.T) {
	c := NewContext(3)
	d := c.FromRows(rowsOfInts(1, 1, 2, 2, 3, 3, 4, 4, 5, 5)).AddUniqueID()
	collect := func() []Row {
		var out []Row
		for i := range d.parts {
			d.feed(i, func(r Row) { out = append(out, r) })
		}
		return out
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatal("replay changed row count")
	}
	for i := range a {
		if !value.Equal(value.Tuple(a[i]), value.Tuple(b[i])) {
			t.Fatalf("replay changed IDs: %v vs %v", a[i], b[i])
		}
	}
}

// TestParallelismEquivalence verifies that the same chain of narrow and wide
// operators produces identical results at Workers=1/Parallelism=1 and at
// full parallelism — the correctness half of the scaling claim.
func TestParallelismEquivalence(t *testing.T) {
	run := func(parallelism, workers int) []Row {
		c := NewContext(parallelism)
		c.Workers = workers
		var rows []Row
		for i := 0; i < 200; i++ {
			rows = append(rows, Row{int64(i % 13), int64(i)})
		}
		d := c.FromRows(rows).
			Map(func(r Row) Row { return Row{r[0], r[1].(int64) * 3} }).
			Filter(func(r Row) bool { return r[1].(int64)%2 == 0 })
		g, err := d.GroupReduce("g", []int{0}, func(rs []Row) []Row {
			var s int64
			for _, r := range rs {
				s += r[1].(int64)
			}
			return []Row{{rs[0][0], s}}
		})
		if err != nil {
			t.Fatal(err)
		}
		return g.CollectSorted()
	}
	seq := run(1, 1)
	par := run(8, 0)
	if len(seq) != len(par) {
		t.Fatalf("row counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if !value.Equal(value.Tuple(seq[i]), value.Tuple(par[i])) {
			t.Fatalf("row %d differs: %v vs %v", i, seq[i], par[i])
		}
	}
}

// TestBroadcastJoinStreamsLazyLeft verifies the broadcast probe consumes the
// left side's fused chain without materializing it first.
func TestBroadcastJoinStreamsLazyLeft(t *testing.T) {
	c := NewContext(4)
	var rows []Row
	for i := 0; i < 40; i++ {
		rows = append(rows, Row{int64(i % 4), int64(i)})
	}
	lazy := c.FromRows(rows).Filter(func(r Row) bool { return r[0].(int64) < 2 })
	r := c.FromRows([]Row{{int64(0), "z"}, {int64(1), "o"}, {int64(2), "t"}})
	j, err := lazy.BroadcastJoin("bj", r, []int{0}, []int{0}, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(lazy.stages) != 1 {
		t.Fatal("broadcast join must stream the left chain, not force it")
	}
	if j.Count() != 20 {
		t.Fatalf("join count = %d, want 20", j.Count())
	}
}
