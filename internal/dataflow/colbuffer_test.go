package dataflow

import (
	"fmt"
	"testing"

	"github.com/trance-go/trance/internal/value"
)

// windowOf transposes rows into one Column per field, inferring kinds the way
// the map side of a columnar shuffle does.
func windowOf(rows []Row) []Column {
	if len(rows) == 0 {
		return nil
	}
	w := len(rows[0])
	cols := make([]Column, w)
	for c := 0; c < w; c++ {
		TransposeColInto(&cols[c], rows, c, InferKind(rows, c))
	}
	return cols
}

// checkColumns compares materialized buffer columns against the expected rows
// cell by cell.
func checkColumns(t *testing.T, cols []Column, rows []Row) {
	t.Helper()
	if len(rows) == 0 {
		return
	}
	for c := range cols {
		if cols[c].Len != len(rows) {
			t.Fatalf("col %d: Len=%d, want %d", c, cols[c].Len, len(rows))
		}
		for i := range rows {
			got, want := cols[c].Get(i), rows[i][c]
			if want == nil {
				if got != nil {
					t.Fatalf("col %d row %d: NULL became %v", c, i, got)
				}
				continue
			}
			if !value.Equal(got, want) {
				t.Fatalf("col %d row %d: %v (%T) != %v (%T)", c, i, got, got, want, want)
			}
		}
	}
}

// TestColBufferWordBoundary appends row counts straddling the bitmap word and
// BatchSize boundaries, with NULLs pinned to bits 63 and 64, and checks the
// buffered columns reproduce every cell.
func TestColBufferWordBoundary(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 1023, 1024, 1025} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			rows := make([]Row, n)
			for i := range rows {
				var v value.Value = int64(i)
				if i == 63 || i == 64 {
					v = nil
				}
				rows[i] = Row{v, i%3 == 0, fmt.Sprintf("s%d", i%7)}
			}
			var b ColBuffer
			// Append in BatchSize windows like the shuffle map side.
			for lo := 0; lo < n; lo += BatchSize {
				hi := lo + BatchSize
				if hi > n {
					hi = n
				}
				if !b.AppendSel(windowOf(rows[lo:hi]), nil) {
					t.Fatal("AppendSel reported a width conflict on uniform rows")
				}
			}
			if b.Len() != n {
				t.Fatalf("Len=%d, want %d", b.Len(), n)
			}
			checkColumns(t, b.Columns(), rows)
		})
	}
}

// TestColBufferSelection scatters a window across two buffers by an index
// selection (the shuffle's per-target routing) and checks both sides.
func TestColBufferSelection(t *testing.T) {
	rows := make([]Row, 100)
	for i := range rows {
		var s value.Value = fmt.Sprintf("v%d", i)
		if i%10 == 9 {
			s = nil
		}
		rows[i] = Row{int64(i), s}
	}
	w := windowOf(rows)
	var even, odd ColBuffer
	var evenRows, oddRows []Row
	var evenIdx, oddIdx []int32
	for i := range rows {
		if i%2 == 0 {
			evenIdx = append(evenIdx, int32(i))
			evenRows = append(evenRows, rows[i])
		} else {
			oddIdx = append(oddIdx, int32(i))
			oddRows = append(oddRows, rows[i])
		}
	}
	if !even.AppendSel(w, evenIdx) || !odd.AppendSel(w, oddIdx) {
		t.Fatal("selection append failed")
	}
	checkColumns(t, even.Columns(), evenRows)
	checkColumns(t, odd.Columns(), oddRows)
}

// TestColBufferAllNullThenTyped: an accumulator that has only seen NULLs is
// unlatched; the first typed window must latch its kind and materialize a
// zeroed, null-covered prefix.
func TestColBufferAllNullThenTyped(t *testing.T) {
	nulls := make([]Row, 70) // spans a bitmap word boundary
	for i := range nulls {
		nulls[i] = Row{nil}
	}
	typed := []Row{{int64(7)}, {nil}, {int64(9)}}
	var b ColBuffer
	if !b.AppendSel(windowOf(nulls), nil) || !b.AppendSel(windowOf(typed), nil) {
		t.Fatal("append failed")
	}
	checkColumns(t, b.Columns(), append(append([]Row{}, nulls...), typed...))
	if k := b.Columns()[0].Kind; k != KindInt64 {
		t.Fatalf("latched kind %v, want KindInt64", k)
	}
}

// TestColBufferAllNullOnly: a buffer that never sees a non-NULL cell exports
// an all-NULL boxed column and meters only the bitmap.
func TestColBufferAllNullOnly(t *testing.T) {
	rows := []Row{{nil}, {nil}, {nil}}
	var b ColBuffer
	if !b.AppendSel(windowOf(rows), nil) {
		t.Fatal("append failed")
	}
	cols := b.Columns()
	checkColumns(t, cols, rows)
	if cols[0].Kind != KindBoxed {
		t.Fatalf("all-NULL column kind %v, want KindBoxed", cols[0].Kind)
	}
	if got, want := b.CompactBytes(), int64(8); got != want {
		t.Fatalf("all-NULL CompactBytes=%d, want %d (one bitmap word)", got, want)
	}
}

// TestColBufferKindConflictDemotes: appending a window of a different kind
// re-boxes the accumulated prefix without corrupting it.
func TestColBufferKindConflictDemotes(t *testing.T) {
	ints := []Row{{int64(1)}, {int64(2)}}
	strs := []Row{{"x"}, {nil}}
	var b ColBuffer
	if !b.AppendSel(windowOf(ints), nil) || !b.AppendSel(windowOf(strs), nil) {
		t.Fatal("append failed")
	}
	cols := b.Columns()
	if cols[0].Kind != KindBoxed {
		t.Fatalf("conflicting kinds gave %v, want KindBoxed", cols[0].Kind)
	}
	checkColumns(t, cols, append(append([]Row{}, ints...), strs...))
}

// TestColBufferWidthConflict: a window of a different width must be refused,
// signalling the caller to spill to row routing.
func TestColBufferWidthConflict(t *testing.T) {
	var b ColBuffer
	if !b.AppendSel(windowOf([]Row{{int64(1), "a"}}), nil) {
		t.Fatal("first append failed")
	}
	if b.AppendSel(windowOf([]Row{{int64(2)}}), nil) {
		t.Fatal("width conflict not detected")
	}
}

// TestConcatColBuffers covers the reduce side: per-source buffers with
// different (but reconcilable) kind histories concatenate into one column
// set; width disagreement and all-empty inputs report not-ok.
func TestConcatColBuffers(t *testing.T) {
	a := []Row{{int64(1), true}, {nil, false}}
	bb := []Row{{nil, nil}, {int64(4), true}}
	var ba, bc ColBuffer
	if !ba.AppendSel(windowOf(a), nil) || !bc.AppendSel(windowOf(bb), nil) {
		t.Fatal("append failed")
	}
	cols, ok := ConcatColBuffers([]*ColBuffer{&ba, nil, &bc, {}})
	if !ok {
		t.Fatal("concat reported conflict on uniform buffers")
	}
	checkColumns(t, cols, append(append([]Row{}, a...), bb...))

	var wide ColBuffer
	if !wide.AppendSel(windowOf([]Row{{int64(1)}}), nil) {
		t.Fatal("append failed")
	}
	if _, ok := ConcatColBuffers([]*ColBuffer{&ba, &wide}); ok {
		t.Fatal("width conflict across sources not detected")
	}
	if _, ok := ConcatColBuffers([]*ColBuffer{nil, {}}); ok {
		t.Fatal("all-empty concat should report not-ok")
	}
}

// TestCompactBytesAccounting checks the compact wire sizes against hand
// computation: typed cells at their fixed widths, strings at len+4, bools one
// bit per row, and null bitmaps at their word footprint.
func TestCompactBytesAccounting(t *testing.T) {
	rows := []Row{
		{int64(1), 2.5, "ab", true},
		{int64(2), nil, "", false},
		{nil, 1.0, "xyz", true},
	}
	var b ColBuffer
	if !b.AppendSel(windowOf(rows), nil) {
		t.Fatal("append failed")
	}
	// ints: 3×8 + 1 null word; floats: 3×8 + 1 null word; strings: 3×4 + 5
	// bytes of payload; bools: 1 word.
	want := int64(3*8+8) + int64(3*8+8) + int64(3*4+5) + int64(8)
	if got := b.CompactBytes(); got != want {
		t.Fatalf("CompactBytes=%d, want %d", got, want)
	}
	// At scale the compact encoding undercuts the value.Size row walk: no
	// per-tuple framing and bit-packed bools. (Tiny buffers can go the other
	// way — a null bitmap word covers 64 rows whether 3 or 64 are present.)
	big := make([]Row, 1024)
	for i := range big {
		big[i] = Row{int64(i), i%2 == 0}
	}
	var bb ColBuffer
	if !bb.AppendSel(windowOf(big), nil) {
		t.Fatal("append failed")
	}
	if rowBytes := value.SizeRows(big); bb.CompactBytes() >= rowBytes {
		t.Fatalf("compact %dB not smaller than row walk %dB at 1024 rows", bb.CompactBytes(), rowBytes)
	}
}

// TestHashWindowMatchesHashCols: the column-major FNV fold must be
// bit-identical to the per-row value.HashCols for every kind, including NULLs
// and boxed cells — partition placement depends on it.
func TestHashWindowMatchesHashCols(t *testing.T) {
	rows := []Row{
		{int64(-3), "key", 2.5, true, value.Date(11), value.Tuple{int64(1), "t"}},
		{nil, nil, nil, nil, nil, nil},
		{int64(9), "", -0.0, false, value.Date(-2), value.Tuple{}},
		{int64(1 << 40), "long-key-with-bytes", 1e300, true, value.Date(0), value.Tuple{nil}},
	}
	cols := windowOf(rows)
	keyCols := []int{0, 1, 2, 3, 4, 5}
	out := make([]uint64, len(rows))
	hashWindow(cols, keyCols, len(rows), out, nil)
	for i, r := range rows {
		if want := value.HashCols(r, keyCols); out[i] != want {
			t.Fatalf("row %d: hashWindow=%x, HashCols=%x", i, out[i], want)
		}
	}
	// Single-column subsets too (shuffles usually key one or two columns).
	for _, kc := range keyCols {
		hashWindow(cols, []int{kc}, len(rows), out, nil)
		for i, r := range rows {
			if want := value.HashCols(r, []int{kc}); out[i] != want {
				t.Fatalf("col %d row %d: hashWindow=%x, HashCols=%x", kc, i, out[i], want)
			}
		}
	}
}

// TestSliceBitmapTailMask: a partial tail window whose backing word carries
// bits beyond the window must come back masked; aligned full windows are
// zero-copy.
func TestSliceBitmapTailMask(t *testing.T) {
	b := NewBitmap(130)
	for i := 0; i < 130; i++ {
		b.Set(i)
	}
	s := sliceBitmap(b, 64, 100) // 36-bit window in a full word
	if got := s.Count(); got != 36 {
		t.Fatalf("window Count=%d, want 36 (tail word not masked)", got)
	}
	// Masked tails are copies: mutating the slice must not touch the source.
	s[0] = 0
	if !b.Get(64) {
		t.Fatal("masked tail window aliases the source bitmap")
	}
	// A full aligned window is a zero-copy word slice.
	full := sliceBitmap(b, 64, 128)
	full[0] = 0
	if b.Get(64) {
		t.Fatal("full window should alias the source words")
	}
	b.Set(64)
	// A window past the backing reports nil (all clear).
	if sliceBitmap(Bitmap{1}, 64, 128) != nil {
		t.Fatal("window past the backing should be nil")
	}
}

// TestColMapperMatchesRowRouting drives the map-side state machine with
// uniform rows and checks both representations: per-target row buckets equal
// per-row value.HashCols routing, and the typed buffers reproduce the routed
// rows.
func TestColMapperMatchesRowRouting(t *testing.T) {
	const p = 3
	rows := make([]Row, 2500) // several BatchSize windows plus a partial tail
	for i := range rows {
		var s value.Value = fmt.Sprintf("k%d", i%17)
		if i%13 == 0 {
			s = nil
		}
		rows[i] = Row{int64(i % 31), s, float64(i) / 3}
	}
	keyCols := []int{0, 1}
	bufs := make([]*ColBuffer, p)
	local := make([][]Row, p)
	m := newColMapper(keyCols, p, bufs, local, 0)
	for _, r := range rows {
		m.add(r)
	}
	m.flush()
	if m.spilled {
		t.Fatal("uniform rows spilled")
	}
	want := make([][]Row, p)
	for _, r := range rows {
		tt := int(value.HashCols(r, keyCols) % uint64(p))
		want[tt] = append(want[tt], r)
	}
	for tt := 0; tt < p; tt++ {
		if len(m.local[tt]) != len(want[tt]) {
			t.Fatalf("target %d: %d rows routed, want %d", tt, len(m.local[tt]), len(want[tt]))
		}
		for i := range want[tt] {
			if !value.Equal(value.Tuple(m.local[tt][i]), value.Tuple(want[tt][i])) {
				t.Fatalf("target %d row %d: routed %v, want %v", tt, i, m.local[tt][i], want[tt][i])
			}
		}
		if m.bufs[tt] == nil {
			if len(want[tt]) > 0 {
				t.Fatalf("target %d: no buffer for %d rows", tt, len(want[tt]))
			}
			continue
		}
		cols, ok := ConcatColBuffers([]*ColBuffer{m.bufs[tt]})
		if !ok {
			t.Fatalf("target %d: concat failed", tt)
		}
		checkColumns(t, cols, want[tt])
	}
}

// TestColMapperSpillsOnWidthConflict: ragged rows must abandon the typed
// buffers but keep routing every row to the hash-determined target.
func TestColMapperSpillsOnWidthConflict(t *testing.T) {
	rows := []Row{
		{int64(1), "a"}, {int64(2), "b"}, {int64(3)}, {int64(4), "d"},
	}
	const p = 2
	m := newColMapper([]int{0}, p, make([]*ColBuffer, p), make([][]Row, p), 0)
	for _, r := range rows {
		m.add(r)
	}
	m.flush()
	if !m.spilled {
		t.Fatal("ragged rows did not spill")
	}
	for tt := 0; tt < p; tt++ {
		if m.bufs[tt] != nil {
			t.Fatalf("target %d kept a typed buffer after spill", tt)
		}
	}
	total := 0
	for tt := 0; tt < p; tt++ {
		for _, r := range m.local[tt] {
			if want := int(value.HashCols(r, []int{0}) % uint64(p)); want != tt {
				t.Fatalf("row %v routed to %d, hash says %d", r, tt, want)
			}
			total++
		}
	}
	if total != len(rows) {
		t.Fatalf("routed %d rows, want %d (lost or duplicated by spill)", total, len(rows))
	}
}

// FuzzShuffleBufferRoundTrip fuzzes the encode/scatter/concat cycle the way
// FuzzColumnRoundTrip fuzzes transpose: generator-shaped rows (mixed kinds,
// NULLs, boxed cells) go through the map-side state machine, and the routed
// row buckets must agree with per-row hashing while the typed buffers must
// reproduce the routed rows cell for cell.
func FuzzShuffleBufferRoundTrip(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 4, 5, 10, 200, 30, 4, 250, 6})
	f.Add([]byte{0, 0, 9, 1, 2, 3})
	f.Add([]byte{2, 7, 7, 8, 0, 1, 2, 3, 4, 5, 6, 7, 9}) // mixed-kind columns
	f.Add([]byte{1, 1, 66, 1, 2, 3, 4, 5, 6, 7, 8, 9, 250, 251})
	f.Fuzz(func(t *testing.T, data []byte) {
		rows := decodeFuzzRows(data)
		if len(rows) == 0 {
			return
		}
		const p = 3
		keyCols := []int{0}
		m := newColMapper(keyCols, p, make([]*ColBuffer, p), make([][]Row, p), 0)
		for _, r := range rows {
			m.add(r)
		}
		m.flush()
		want := make([][]Row, p)
		for _, r := range rows {
			tt := int(value.HashCols(r, keyCols) % uint64(p))
			want[tt] = append(want[tt], r)
		}
		for tt := 0; tt < p; tt++ {
			if len(m.local[tt]) != len(want[tt]) {
				t.Fatalf("target %d: %d rows, want %d", tt, len(m.local[tt]), len(want[tt]))
			}
			for i := range want[tt] {
				if !value.Equal(value.Tuple(m.local[tt][i]), value.Tuple(want[tt][i])) {
					t.Fatalf("target %d row %d: %v != %v", tt, i, m.local[tt][i], want[tt][i])
				}
			}
			if m.spilled {
				continue
			}
			if m.bufs[tt] == nil {
				if len(want[tt]) > 0 {
					t.Fatalf("target %d: missing buffer for %d rows", tt, len(want[tt]))
				}
				continue
			}
			if got, wantN := m.bufs[tt].Len(), len(want[tt]); got != wantN {
				t.Fatalf("target %d buffer holds %d rows, want %d", tt, got, wantN)
			}
			cols, ok := ConcatColBuffers([]*ColBuffer{m.bufs[tt]})
			if !ok {
				t.Fatalf("target %d: concat failed", tt)
			}
			for c := range cols {
				for i := range want[tt] {
					got, wantV := cols[c].Get(i), want[tt][i][c]
					if wantV == nil {
						if got != nil {
							t.Fatalf("target %d col %d row %d: NULL became %v", tt, c, i, got)
						}
						continue
					}
					if !value.Equal(got, wantV) {
						t.Fatalf("target %d col %d row %d: %v != %v", tt, c, i, got, wantV)
					}
				}
			}
		}
	})
}
