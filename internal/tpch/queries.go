package tpch

import (
	"fmt"

	"github.com/trance-go/trance/internal/nrc"
)

// QueryClass selects one of the paper's three suites.
type QueryClass int

// The three query classes of the micro-benchmark.
const (
	FlatToNested QueryClass = iota
	NestedToNested
	NestedToFlat
)

func (c QueryClass) String() string {
	return [...]string{"flat-to-nested", "nested-to-nested", "nested-to-flat"}[c]
}

// record builds a tuple constructor copying the given attributes of variable
// v, followed by extra fields.
func record(v string, attrs []string, extra ...nrc.NamedExpr) *nrc.TupleCtor {
	fields := make([]nrc.NamedExpr, 0, len(attrs)+len(extra))
	for _, a := range attrs {
		fields = append(fields, nrc.NamedExpr{Name: a, Expr: nrc.P(nrc.V(v), a)})
	}
	fields = append(fields, extra...)
	return &nrc.TupleCtor{Fields: fields}
}

// FlatToNestedQuery groups the flat relations into the level-deep hierarchy.
// Level 0 projects Lineitem.
func FlatToNestedQuery(level int, wide bool) nrc.Expr {
	if level == 0 {
		return nrc.ForIn("l", nrc.V("Lineitem"), nrc.SingOf(record("l", leafFields(wide))))
	}
	// Construct recursively: head(lvl) is the singleton for one unit at lvl.
	var head func(lvl int) func(v string) nrc.Expr
	head = func(lvl int) func(v string) nrc.Expr {
		u := hierarchy[lvl]
		return func(v string) nrc.Expr {
			var bag nrc.Expr
			if lvl == 1 {
				bag = nrc.ForIn("li", nrc.V("Lineitem"),
					nrc.IfThen(nrc.EqOf(nrc.P(nrc.V("li"), u.childFK), nrc.P(nrc.V(v), u.key)),
						nrc.SingOf(record("li", leafFields(wide)))))
			} else {
				cu := hierarchy[lvl-1]
				cv := varFor(lvl - 1)
				bag = nrc.ForIn(cv, nrc.V(cu.table),
					nrc.IfThen(nrc.EqOf(nrc.P(nrc.V(cv), u.childFK), nrc.P(nrc.V(v), u.key)),
						head(lvl-1)(cv)))
			}
			return nrc.SingOf(record(v, levelFields(lvl, wide),
				nrc.NamedExpr{Name: u.bagAttr, Expr: bag}))
		}
	}
	top := hierarchy[level]
	tv := varFor(level)
	return nrc.ForIn(tv, nrc.V(top.table), head(level)(tv))
}

func varFor(lvl int) string {
	return [...]string{"li", "o", "c", "n", "r"}[lvl]
}

// leafJoinAgg is the paper's Example 1 aggregate: join the lineitems bag of
// ordVar with Part and sum quantity×price per part name.
func leafJoinAgg(bagExpr nrc.Expr) nrc.Expr {
	return nrc.SumByOf(
		nrc.ForIn("li2", bagExpr,
			nrc.ForIn("p", nrc.V("Part"),
				nrc.IfThen(nrc.EqOf(nrc.P(nrc.V("li2"), "l_partkey"), nrc.P(nrc.V("p"), "p_partkey")),
					nrc.SingOf(nrc.Record(
						"p_name", nrc.P(nrc.V("p"), "p_name"),
						"total", nrc.MulOf(nrc.P(nrc.V("li2"), "l_quantity"), nrc.P(nrc.V("p"), "p_retailprice")),
					))))),
		[]string{"p_name"}, []string{"total"})
}

// NestedToNestedQuery takes the wide nested input NDB and rebuilds the same
// hierarchy with the leaf replaced by the join-and-aggregate of Example 1.
// The narrow variant projects each level down to its narrow attributes.
func NestedToNestedQuery(level int, narrowOut bool) nrc.Expr {
	if level == 0 {
		// Flat input: join with Part, aggregate per order and part name.
		return nrc.SumByOf(
			nrc.ForIn("li", nrc.V("NDB"),
				nrc.ForIn("p", nrc.V("Part"),
					nrc.IfThen(nrc.EqOf(nrc.P(nrc.V("li"), "l_partkey"), nrc.P(nrc.V("p"), "p_partkey")),
						nrc.SingOf(nrc.Record(
							"l_orderkey", nrc.P(nrc.V("li"), "l_orderkey"),
							"p_name", nrc.P(nrc.V("p"), "p_name"),
							"total", nrc.MulOf(nrc.P(nrc.V("li"), "l_quantity"), nrc.P(nrc.V("p"), "p_retailprice")),
						))))),
			[]string{"l_orderkey", "p_name"}, []string{"total"})
	}
	var rebuild func(lvl int, v string) nrc.Expr
	rebuild = func(lvl int, v string) nrc.Expr {
		u := hierarchy[lvl]
		var bag nrc.Expr
		if lvl == 1 {
			bag = leafJoinAgg(nrc.P(nrc.V(v), u.bagAttr))
		} else {
			cv := varFor(lvl - 1)
			bag = nrc.ForIn(cv, nrc.P(nrc.V(v), u.bagAttr), rebuild(lvl-1, cv))
		}
		attrs := levelFields(lvl, !narrowOut)
		return nrc.SingOf(record(v, attrs, nrc.NamedExpr{Name: u.bagAttr, Expr: bag}))
	}
	tv := varFor(level)
	return nrc.ForIn(tv, nrc.V("NDB"), rebuild(level, tv))
}

// NestedToFlatQuery navigates the wide nested input down to the leaf, joins
// with Part, and aggregates at the top level on the top unit's display
// attribute, returning a flat collection (paper Section 6).
func NestedToFlatQuery(level int) nrc.Expr {
	if level == 0 {
		return nrc.SumByOf(
			nrc.ForIn("li", nrc.V("NDB"),
				nrc.ForIn("p", nrc.V("Part"),
					nrc.IfThen(nrc.EqOf(nrc.P(nrc.V("li"), "l_partkey"), nrc.P(nrc.V("p"), "p_partkey")),
						nrc.SingOf(nrc.Record(
							"name", nrc.P(nrc.V("p"), "p_name"),
							"total", nrc.MulOf(nrc.P(nrc.V("li"), "l_quantity"), nrc.P(nrc.V("p"), "p_retailprice")),
						))))),
			[]string{"name"}, []string{"total"})
	}
	top := hierarchy[level]
	tv := varFor(level)
	// Chain of fors navigating to the leaf.
	inner := nrc.SingOf(nrc.Record(
		"name", nrc.P(nrc.V(tv), top.narrow),
		"total", nrc.MulOf(nrc.P(nrc.V("li2"), "l_quantity"), nrc.P(nrc.V("p"), "p_retailprice")),
	))
	body := nrc.Expr(nrc.ForIn("p", nrc.V("Part"),
		nrc.IfThen(nrc.EqOf(nrc.P(nrc.V("li2"), "l_partkey"), nrc.P(nrc.V("p"), "p_partkey")), inner)))
	// innermost loop over lineitems of level-1 unit.
	body = nrc.ForIn("li2", nrc.P(nrc.V(varFor(1)), hierarchy[1].bagAttr), body)
	for lvl := 2; lvl <= level; lvl++ {
		body = nrc.ForIn(varFor(lvl-1), nrc.P(nrc.V(varFor(lvl)), hierarchy[lvl].bagAttr), body)
	}
	return nrc.SumByOf(nrc.ForIn(tv, nrc.V("NDB"), body), []string{"name"}, []string{"total"})
}

// NestedToFlatSelective is NestedToFlatQuery with two selective guards
// layered onto the leaf join: only expensive parts (p_retailprice ≥ 19.0,
// ~9% of the generated parts) and large lineitems (l_quantity > 45.0, ~10%)
// contribute. Both guards land as residual selections above the Part join in
// the compiled plan, which is exactly the shape the rule-based optimizer's
// predicate pushdown targets — BenchmarkPushdownAblation measures the win.
func NestedToFlatSelective(level int) nrc.Expr {
	checkLevel(level)
	guard := func(liVar string) nrc.Expr {
		return nrc.AndOf(
			nrc.GtOf(nrc.P(nrc.V(liVar), "l_quantity"), nrc.C(45.0)),
			nrc.GeOf(nrc.P(nrc.V("p"), "p_retailprice"), nrc.C(19.0)))
	}
	if level == 0 {
		return nrc.SumByOf(
			nrc.ForIn("li", nrc.V("NDB"),
				nrc.ForIn("p", nrc.V("Part"),
					nrc.IfThen(nrc.AndOf(
						nrc.EqOf(nrc.P(nrc.V("li"), "l_partkey"), nrc.P(nrc.V("p"), "p_partkey")),
						guard("li")),
						nrc.SingOf(nrc.Record(
							"name", nrc.P(nrc.V("p"), "p_name"),
							"total", nrc.MulOf(nrc.P(nrc.V("li"), "l_quantity"), nrc.P(nrc.V("p"), "p_retailprice")),
						))))),
			[]string{"name"}, []string{"total"})
	}
	top := hierarchy[level]
	tv := varFor(level)
	inner := nrc.SingOf(nrc.Record(
		"name", nrc.P(nrc.V(tv), top.narrow),
		"total", nrc.MulOf(nrc.P(nrc.V("li2"), "l_quantity"), nrc.P(nrc.V("p"), "p_retailprice")),
	))
	body := nrc.Expr(nrc.ForIn("p", nrc.V("Part"),
		nrc.IfThen(nrc.AndOf(
			nrc.EqOf(nrc.P(nrc.V("li2"), "l_partkey"), nrc.P(nrc.V("p"), "p_partkey")),
			guard("li2")),
			inner)))
	body = nrc.ForIn("li2", nrc.P(nrc.V(varFor(1)), hierarchy[1].bagAttr), body)
	for lvl := 2; lvl <= level; lvl++ {
		body = nrc.ForIn(varFor(lvl-1), nrc.P(nrc.V(varFor(lvl)), hierarchy[lvl].bagAttr), body)
	}
	return nrc.SumByOf(nrc.ForIn(tv, nrc.V("NDB"), body), []string{"name"}, []string{"total"})
}

// FlatSelective is a pure scan → select → project pipeline over the flat
// Lineitem relation, in the spirit of TPC-H Q6: keep lineitems whose
// discounted revenue l_extendedprice·(1−l_discount) clears a threshold and
// that are large and lightly discounted (~2% of generated rows survive all
// three conjuncts). The revenue conjunct is deliberately first: the row
// interpreter must box two intermediate floats per scanned row to evaluate
// it, while the vector kernels compute the whole expression in reused column
// scratch. Every operator in the compiled plan is narrow and every
// expression scalar, so the query isolates the columnar path's win from
// join/shuffle costs — BenchmarkVectorizeAblation runs it both ways.
func FlatSelective() nrc.Expr {
	l := nrc.V("l")
	revenue := func() nrc.Expr {
		return nrc.MulOf(
			nrc.P(l, "l_extendedprice"),
			nrc.SubOf(nrc.C(1.0), nrc.P(l, "l_discount")))
	}
	return nrc.ForIn("l", nrc.V("Lineitem"),
		nrc.IfThen(
			nrc.AndOf(
				nrc.GtOf(revenue(), nrc.C(60000.0)),
				nrc.AndOf(
					nrc.GtOf(nrc.P(l, "l_quantity"), nrc.C(45.0)),
					nrc.LtOf(nrc.P(l, "l_discount"), nrc.C(0.05)))),
			nrc.SingOf(nrc.Record(
				"l_orderkey", nrc.P(l, "l_orderkey"),
				"revenue", revenue(),
			))))
}

// PointLookup is a serving-shaped point query: fetch one order's lineitems
// by equality on l_orderkey. The generator emits LinesPerOrder rows per
// orderkey, so the predicate keeps LinesPerOrder/|Lineitem| of the relation
// (≤1% at any benchmarked scale) — the selectivity regime where a hash index
// scan replaces the full partition sweep. BenchmarkIndexScanAblation runs it
// with the l_orderkey index on and ablated (Config.NoIndexScan).
func PointLookup(orderkey int64) nrc.Expr {
	l := nrc.V("l")
	return nrc.ForIn("l", nrc.V("Lineitem"),
		nrc.IfThen(nrc.EqOf(nrc.P(l, "l_orderkey"), nrc.C(orderkey)),
			nrc.SingOf(nrc.Record(
				"l_orderkey", nrc.P(l, "l_orderkey"),
				"l_linenumber", nrc.P(l, "l_linenumber"),
				"l_quantity", nrc.P(l, "l_quantity"),
				"l_extendedprice", nrc.P(l, "l_extendedprice"),
			))))
}

// ValidateLevel reports whether level is a supported nesting depth; CLIs use
// it to reject bad input with a friendly error before Query/Env panic.
func ValidateLevel(level int) error {
	if level < 0 || level > MaxLevel {
		return fmt.Errorf("nesting level %d out of range 0-%d", level, MaxLevel)
	}
	return nil
}

// checkLevel turns the out-of-range index panics deep inside the query
// builders into an actionable message at the API boundary.
func checkLevel(level int) {
	if err := ValidateLevel(level); err != nil {
		panic("tpch: " + err.Error())
	}
}

// Query builds the benchmark query for a class, level and width. Levels
// outside 0..MaxLevel panic with a descriptive message.
func Query(class QueryClass, level int, wide bool) nrc.Expr {
	checkLevel(level)
	switch class {
	case FlatToNested:
		return FlatToNestedQuery(level, wide)
	case NestedToNested:
		return NestedToNestedQuery(level, !wide)
	default:
		return NestedToFlatQuery(level)
	}
}

// Env returns the input environment for a class/level/width. Nested classes
// read the wide materialized input (paper Section 6).
func Env(class QueryClass, level int, wide bool) nrc.Env {
	checkLevel(level)
	if class == FlatToNested {
		return FlatEnv()
	}
	return NestedEnv(level, true)
}
