package tpch

import (
	"testing"

	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/runner"
	"github.com/trance-go/trance/internal/value"
)

func smallTables() *Tables {
	return Generate(Config{Customers: 20, OrdersPerCustomer: 3, LinesPerOrder: 3, Parts: 15, Seed: 2})
}

func TestGenerateShapes(t *testing.T) {
	tb := smallTables()
	if len(tb.Region) != 5 || len(tb.Nation) != 25 {
		t.Fatalf("region/nation sizes: %d/%d", len(tb.Region), len(tb.Nation))
	}
	if len(tb.Customer) != 20 || len(tb.Orders) != 60 || len(tb.Lineitem) != 180 || len(tb.Part) != 15 {
		t.Fatalf("sizes: c=%d o=%d l=%d p=%d", len(tb.Customer), len(tb.Orders), len(tb.Lineitem), len(tb.Part))
	}
	// Rows must match declared schemas.
	checkRows := func(b value.Bag, bt nrc.BagType, name string) {
		tt := bt.Elem.(nrc.TupleType)
		for _, e := range b {
			if len(e.(value.Tuple)) != len(tt.Fields) {
				t.Fatalf("%s row width %d != schema %d", name, len(e.(value.Tuple)), len(tt.Fields))
			}
		}
	}
	checkRows(tb.Customer, CustomerType, "customer")
	checkRows(tb.Orders, OrdersType, "orders")
	checkRows(tb.Lineitem, LineitemType, "lineitem")
	checkRows(tb.Part, PartType, "part")
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig())
	b := Generate(DefaultConfig())
	if !value.Equal(a.Lineitem, b.Lineitem) || !value.Equal(a.Orders, b.Orders) {
		t.Fatal("generation must be deterministic for a fixed seed")
	}
}

func TestSkewConcentratesKeys(t *testing.T) {
	cfg := Config{Customers: 100, OrdersPerCustomer: 10, LinesPerOrder: 2, Parts: 20, Seed: 3}
	uniform := Generate(cfg)
	cfg.SkewFactor = 4
	skewed := Generate(cfg)

	maxShare := func(orders value.Bag) float64 {
		counts := map[int64]int{}
		for _, e := range orders {
			counts[e.(value.Tuple)[1].(int64)]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return float64(max) / float64(len(orders))
	}
	u, s := maxShare(uniform.Orders), maxShare(skewed.Orders)
	if s < 5*u {
		t.Fatalf("skew factor 4 should concentrate orders: uniform max share %.3f, skewed %.3f", u, s)
	}
	if s < 0.5 {
		t.Fatalf("at factor 4 the heaviest customer should dominate, got %.3f", s)
	}
}

func TestAllQueriesTypeCheck(t *testing.T) {
	for _, class := range []QueryClass{FlatToNested, NestedToNested, NestedToFlat} {
		for level := 0; level <= MaxLevel; level++ {
			for _, wide := range []bool{false, true} {
				q := Query(class, level, wide)
				env := Env(class, level, wide)
				if _, err := nrc.Check(q, env); err != nil {
					t.Fatalf("%s level %d wide=%t: %v", class, level, wide, err)
				}
			}
		}
	}
}

func TestBuildNestedMatchesQuery(t *testing.T) {
	tb := smallTables()
	for _, wide := range []bool{false, true} {
		for level := 0; level <= 2; level++ {
			q := FlatToNestedQuery(level, wide)
			if _, err := nrc.Check(q, FlatEnv()); err != nil {
				t.Fatal(err)
			}
			var s *nrc.Scope
			for name, b := range tb.Inputs() {
				s = s.Bind(name, b)
			}
			want := nrc.Eval(q, s).(value.Bag)
			got := BuildNested(tb, level, wide)
			if !value.Equal(got, want) {
				t.Fatalf("BuildNested(level=%d wide=%t) differs from query result", level, wide)
			}
		}
	}
}

func TestNestedTypeMatchesBuiltValue(t *testing.T) {
	tb := smallTables()
	for level := 0; level <= MaxLevel; level++ {
		b := BuildNested(tb, level, true)
		tt := NestedType(level, true)
		if len(b) == 0 {
			continue
		}
		if err := conforms(b[0], tt.Elem); err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
	}
}

func conforms(v value.Value, t nrc.Type) error {
	switch x := t.(type) {
	case nrc.TupleType:
		tup, ok := v.(value.Tuple)
		if !ok || len(tup) != len(x.Fields) {
			return errf("want tuple %s, got %s", x, value.Format(v))
		}
		for i, f := range x.Fields {
			if err := conforms(tup[i], f.Type); err != nil {
				return err
			}
		}
	case nrc.BagType:
		bag, ok := v.(value.Bag)
		if !ok {
			return errf("want bag, got %s", value.Format(v))
		}
		if len(bag) > 0 {
			return conforms(bag[0], x.Elem)
		}
	}
	return nil
}

func errf(format string, args ...any) error { return &testErr{msg: format, args: args} }

type testErr struct {
	msg  string
	args []any
}

func (e *testErr) Error() string { return e.msg }

// TestStrategiesAgreeOnSuite runs a sweep of the suite at tiny scale across
// Standard, SparkSQL-style and Shred+Unshred and checks all agree with the
// local evaluator.
func TestStrategiesAgreeOnSuite(t *testing.T) {
	tb := smallTables()
	cfg := runner.DefaultConfig()
	cfg.Parallelism = 4
	for _, class := range []QueryClass{FlatToNested, NestedToNested, NestedToFlat} {
		for level := 0; level <= 2; level++ {
			q := Query(class, level, false)
			env := Env(class, level, false)
			inputs := map[string]value.Bag{}
			if class == FlatToNested {
				inputs = tb.Inputs()
			} else {
				inputs["NDB"] = BuildNested(tb, level, true)
				inputs["Part"] = tb.Part
			}
			if _, err := nrc.Check(q, env); err != nil {
				t.Fatalf("%s L%d: %v", class, level, err)
			}
			var s *nrc.Scope
			for name, b := range inputs {
				s = s.Bind(name, b)
			}
			want := nrc.Eval(q, s).(value.Bag)

			for _, strat := range []runner.Strategy{runner.Standard, runner.SparkSQLStyle, runner.ShredUnshred} {
				res := runner.Run(runner.Job{Query: q, Env: env, Inputs: inputs}, strat, cfg)
				if res.Failed() {
					t.Fatalf("%s %s L%d failed: %v", strat, class, level, res.Err)
				}
				got := make(value.Bag, 0)
				for _, r := range res.Output.Collect() {
					got = append(got, value.Tuple(r))
				}
				if !value.Equal(got, want) {
					t.Fatalf("%s %s L%d differs from oracle", strat, class, level)
				}
			}
		}
	}
}

func TestSkewStrategiesAgree(t *testing.T) {
	cfg := Config{Customers: 30, OrdersPerCustomer: 6, LinesPerOrder: 4, Parts: 20, Seed: 5, SkewFactor: 3}
	tb := Generate(cfg)
	rcfg := runner.DefaultConfig()
	q := Query(NestedToNested, 2, false)
	env := Env(NestedToNested, 2, false)
	inputs := map[string]value.Bag{"NDB": BuildNested(tb, 2, true), "Part": tb.Part}
	if _, err := nrc.Check(q, env); err != nil {
		t.Fatal(err)
	}
	var s *nrc.Scope
	for name, b := range inputs {
		s = s.Bind(name, b)
	}
	want := nrc.Eval(q, s).(value.Bag)
	for _, strat := range []runner.Strategy{runner.StandardSkew, runner.ShredUnshredSkew} {
		res := runner.Run(runner.Job{Query: q, Env: env, Inputs: inputs}, strat, rcfg)
		if res.Failed() {
			t.Fatalf("%s failed: %v", strat, res.Err)
		}
		got := make(value.Bag, 0)
		for _, r := range res.Output.Collect() {
			got = append(got, value.Tuple(r))
		}
		if !value.Equal(got, want) {
			t.Fatalf("%s differs from oracle on skewed data", strat)
		}
	}
}
