package tpch

import (
	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/value"
)

// BuildNested materializes the flat-to-nested result at the given level
// directly in memory — the nested input of the nested-to-* suites (the paper
// uses the materialized flat-to-nested output as input). It is equivalent to
// evaluating FlatToNestedQuery with the local evaluator but far faster.
func BuildNested(t *Tables, level int, wide bool) value.Bag {
	if level == 0 {
		idx := fieldIndexes(LineitemType, leafFields(wide))
		out := make(value.Bag, len(t.Lineitem))
		for i, e := range t.Lineitem {
			out[i] = project(e.(value.Tuple), idx)
		}
		return out
	}

	// Leaf: lineitems grouped by order key.
	leafIdx := fieldIndexes(LineitemType, leafFields(wide))
	fkIdx := indexOf(LineitemType, "l_orderkey")
	childBags := map[int64]value.Bag{}
	for _, e := range t.Lineitem {
		row := e.(value.Tuple)
		k := row[fkIdx].(int64)
		childBags[k] = append(childBags[k], project(row, leafIdx))
	}

	tables := map[string]value.Bag{
		"Orders": t.Orders, "Customer": t.Customer, "Nation": t.Nation, "Region": t.Region,
	}
	var topBag value.Bag
	for lvl := 1; lvl <= level; lvl++ {
		u := hierarchy[lvl]
		rows := tables[u.table]
		keyIdx := indexOf(u.typ, u.key)
		attrIdx := fieldIndexes(u.typ, levelFields(lvl, wide))
		parentFKIdx := -1
		if lvl < level {
			parentFKIdx = indexOf(u.typ, hierarchy[lvl+1].childFK)
		}
		cur := map[int64]value.Bag{}
		topBag = nil
		for _, e := range rows {
			row := e.(value.Tuple)
			key := row[keyIdx].(int64)
			bag := childBags[key]
			if bag == nil {
				bag = value.Bag{}
			}
			nt := append(project(row, attrIdx), bag)
			if parentFKIdx >= 0 {
				pk := row[parentFKIdx].(int64)
				cur[pk] = append(cur[pk], nt)
			} else {
				topBag = append(topBag, nt)
			}
		}
		childBags = cur
	}
	if topBag == nil {
		topBag = value.Bag{}
	}
	return topBag
}

func project(row value.Tuple, idx []int) value.Tuple {
	out := make(value.Tuple, len(idx), len(idx)+1)
	for i, j := range idx {
		out[i] = row[j]
	}
	return out
}

func indexOf(b nrc.BagType, name string) int {
	return b.Elem.(nrc.TupleType).Index(name)
}

func fieldIndexes(b nrc.BagType, names []string) []int {
	out := make([]int, len(names))
	for i, n := range names {
		out[i] = indexOf(b, n)
	}
	return out
}
