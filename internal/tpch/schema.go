package tpch

import (
	"github.com/trance-go/trance/internal/nrc"
)

// Table schemas (standard TPC-H attributes).
var (
	RegionType = nrc.BagOf(nrc.Tup(
		"r_regionkey", nrc.IntT, "r_name", nrc.StringT, "r_comment", nrc.StringT))

	NationType = nrc.BagOf(nrc.Tup(
		"n_nationkey", nrc.IntT, "n_name", nrc.StringT, "n_regionkey", nrc.IntT,
		"n_comment", nrc.StringT))

	CustomerType = nrc.BagOf(nrc.Tup(
		"c_custkey", nrc.IntT, "c_name", nrc.StringT, "c_address", nrc.StringT,
		"c_nationkey", nrc.IntT, "c_phone", nrc.StringT, "c_acctbal", nrc.RealT,
		"c_mktsegment", nrc.StringT, "c_comment", nrc.StringT))

	OrdersType = nrc.BagOf(nrc.Tup(
		"o_orderkey", nrc.IntT, "o_custkey", nrc.IntT, "o_orderstatus", nrc.StringT,
		"o_totalprice", nrc.RealT, "o_orderdate", nrc.DateT, "o_orderpriority", nrc.StringT,
		"o_clerk", nrc.StringT, "o_shippriority", nrc.IntT, "o_comment", nrc.StringT))

	LineitemType = nrc.BagOf(nrc.Tup(
		"l_orderkey", nrc.IntT, "l_partkey", nrc.IntT, "l_suppkey", nrc.IntT,
		"l_linenumber", nrc.IntT, "l_quantity", nrc.RealT, "l_extendedprice", nrc.RealT,
		"l_discount", nrc.RealT, "l_tax", nrc.RealT, "l_returnflag", nrc.StringT,
		"l_linestatus", nrc.StringT, "l_shipdate", nrc.DateT, "l_commitdate", nrc.DateT,
		"l_receiptdate", nrc.DateT, "l_shipinstruct", nrc.StringT, "l_shipmode", nrc.StringT,
		"l_comment", nrc.StringT))

	PartType = nrc.BagOf(nrc.Tup(
		"p_partkey", nrc.IntT, "p_name", nrc.StringT, "p_mfgr", nrc.StringT,
		"p_brand", nrc.StringT, "p_type", nrc.StringT, "p_size", nrc.IntT,
		"p_container", nrc.StringT, "p_retailprice", nrc.RealT, "p_comment", nrc.StringT))
)

// FlatEnv is the environment of the flat base relations.
func FlatEnv() nrc.Env {
	return nrc.Env{
		"Region":   RegionType,
		"Nation":   NationType,
		"Customer": CustomerType,
		"Orders":   OrdersType,
		"Lineitem": LineitemType,
		"Part":     PartType,
	}
}

// unit describes one level of the paper's hierarchy: Lineitem at level 0,
// then Orders, Customer, Nation, Region.
type unit struct {
	table   string // input relation
	key     string // unit key attribute
	childFK string // attribute of the child unit referencing key
	narrow  string // the single attribute kept by narrow variants
	bagAttr string // name of the nested collection holding the child units
	typ     nrc.BagType
}

// hierarchy lists the units bottom-up. Index = nesting level introduced.
var hierarchy = []unit{
	{table: "Lineitem", key: "", childFK: "", narrow: "", bagAttr: "", typ: LineitemType},
	{table: "Orders", key: "o_orderkey", childFK: "l_orderkey", narrow: "o_orderdate", bagAttr: "lineitems", typ: OrdersType},
	{table: "Customer", key: "c_custkey", childFK: "o_custkey", narrow: "c_name", bagAttr: "orders", typ: CustomerType},
	{table: "Nation", key: "n_nationkey", childFK: "c_nationkey", narrow: "n_name", bagAttr: "custs", typ: NationType},
	{table: "Region", key: "r_regionkey", childFK: "n_regionkey", narrow: "r_name", bagAttr: "nations", typ: RegionType},
}

// MaxLevel is the deepest nesting level of the suite.
const MaxLevel = 4

// leafFields returns the lineitem attributes kept at the lowest level.
func leafFields(wide bool) []string {
	if wide {
		return fieldNames(LineitemType)
	}
	return []string{"l_partkey", "l_quantity"}
}

// levelFields returns the attributes kept at level lvl (1-based).
func levelFields(lvl int, wide bool) []string {
	u := hierarchy[lvl]
	if wide {
		return fieldNames(u.typ)
	}
	// Narrow keeps the display attribute; the unit key is retained as well so
	// the nesting remains joinable downstream.
	if u.narrow == u.key {
		return []string{u.key}
	}
	return []string{u.key, u.narrow}
}

func fieldNames(b nrc.BagType) []string {
	tt := b.Elem.(nrc.TupleType)
	out := make([]string, len(tt.Fields))
	for i, f := range tt.Fields {
		out[i] = f.Name
	}
	return out
}

func fieldType(b nrc.BagType, name string) nrc.Type {
	return b.Elem.(nrc.TupleType).Lookup(name)
}

// NestedType is the type of the materialized flat-to-nested result at the
// given level.
func NestedType(level int, wide bool) nrc.BagType {
	elem := leafElem(wide)
	for l := 1; l <= level; l++ {
		u := hierarchy[l]
		var fs []nrc.Field
		for _, a := range levelFields(l, wide) {
			fs = append(fs, nrc.Field{Name: a, Type: fieldType(u.typ, a)})
		}
		fs = append(fs, nrc.Field{Name: u.bagAttr, Type: nrc.BagType{Elem: elem}})
		elem = nrc.TupleType{Fields: fs}
	}
	return nrc.BagType{Elem: elem}
}

func leafElem(wide bool) nrc.TupleType {
	var fs []nrc.Field
	for _, a := range leafFields(wide) {
		fs = append(fs, nrc.Field{Name: a, Type: fieldType(LineitemType, a)})
	}
	return nrc.TupleType{Fields: fs}
}

// NestedEnv is the environment of the nested-to-* queries: the materialized
// nested input NDB plus Part.
func NestedEnv(level int, wide bool) nrc.Env {
	return nrc.Env{"NDB": NestedType(level, wide), "Part": PartType}
}
