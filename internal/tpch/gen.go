// Package tpch implements the paper's TPC-H micro-benchmark (Section 6): a
// deterministic generator with Zipf-skewed foreign keys (skew factor 0–4, 0 =
// uniform, mirroring the skewed TPC-H generator the paper uses), and the
// flat-to-nested / nested-to-nested / nested-to-flat query suites with 0–4
// levels of nesting in narrow and wide variants.
//
// The level hierarchy follows the paper: Lineitem at level 0, grouped across
// Orders, Customer, Nation, then Region as the level increases, so the number
// of top-level tuples decreases as nesting deepens.
package tpch

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/trance-go/trance/internal/value"
)

// Config sizes the generated database.
type Config struct {
	Customers         int
	OrdersPerCustomer int // average; skew redistributes
	LinesPerOrder     int // average; skew redistributes
	Parts             int
	// SkewFactor is the Zipf exponent of the order→customer and
	// lineitem→order assignments: 0 generates uniform keys, 4 concentrates
	// most rows on a few heavy keys (paper Section 6, Benchmarks).
	SkewFactor int
	Seed       int64
}

// DefaultConfig is a laptop-scale stand-in for the paper's SF100 dataset.
func DefaultConfig() Config {
	return Config{Customers: 200, OrdersPerCustomer: 5, LinesPerOrder: 4, Parts: 100, Seed: 1}
}

// Tables holds the generated base relations as nested-value bags.
type Tables struct {
	Region   value.Bag
	Nation   value.Bag
	Customer value.Bag
	Orders   value.Bag
	Lineitem value.Bag
	Part     value.Bag
}

var regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var nationNames = []string{
	"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
	"GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
	"MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
	"VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
}

var partAdjectives = []string{"almond", "azure", "beige", "blush", "burnished", "chiffon", "cornsilk", "forest", "ghost", "honeydew"}
var partNouns = []string{"bolt", "cog", "dowel", "flange", "gasket", "hinge", "pin", "rivet", "washer", "wheel"}

// zipfWeights precomputes a cumulative distribution over n keys with
// exponent z (z = 0 is uniform).
func zipfWeights(n int, z float64) []float64 {
	cdf := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		w := 1.0
		if z > 0 {
			w = 1.0 / math.Pow(float64(i+1), z)
		}
		total += w
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return cdf
}

func pick(r *rand.Rand, cdf []float64) int {
	x := r.Float64()
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Generate builds the database deterministically from the config.
func Generate(cfg Config) *Tables {
	r := rand.New(rand.NewSource(cfg.Seed))
	t := &Tables{}

	for i, name := range regionNames {
		t.Region = append(t.Region, value.Tuple{int64(i), name, "region comment " + name})
	}
	for i, name := range nationNames {
		t.Nation = append(t.Nation, value.Tuple{int64(i), name, int64(i % len(regionNames)), "nation comment " + name})
	}
	for i := 0; i < cfg.Parts; i++ {
		name := partAdjectives[i%len(partAdjectives)] + " " + partNouns[(i/len(partAdjectives))%len(partNouns)]
		t.Part = append(t.Part, value.Tuple{
			int64(i + 1),
			fmt.Sprintf("%s #%d", name, i+1),
			fmt.Sprintf("Manufacturer#%d", i%5+1),
			fmt.Sprintf("Brand#%d%d", i%5+1, i%4+1),
			name,
			int64(i%50 + 1),
			"JUMBO PKG",
			float64(900+(i%1100)) / 100,
			"part comment",
		})
	}
	for i := 0; i < cfg.Customers; i++ {
		t.Customer = append(t.Customer, value.Tuple{
			int64(i + 1),
			fmt.Sprintf("Customer#%09d", i+1),
			fmt.Sprintf("addr-%d", i),
			int64(i % len(nationNames)),
			fmt.Sprintf("%02d-%07d", i%34+10, i),
			float64(r.Intn(1000000)) / 100,
			[]string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}[i%5],
			"customer comment",
		})
	}

	z := float64(cfg.SkewFactor)
	custCDF := zipfWeights(cfg.Customers, z)
	nOrders := cfg.Customers * cfg.OrdersPerCustomer
	for i := 0; i < nOrders; i++ {
		cust := pick(r, custCDF) + 1
		t.Orders = append(t.Orders, value.Tuple{
			int64(i + 1),
			int64(cust),
			[]string{"O", "F", "P"}[r.Intn(3)],
			float64(r.Intn(50000000)) / 100,
			value.MakeDate(1992+r.Intn(7), 1+r.Intn(12), 1+r.Intn(28)),
			fmt.Sprintf("%d-PRIORITY", r.Intn(5)+1),
			fmt.Sprintf("Clerk#%09d", r.Intn(1000)),
			int64(0),
			"order comment",
		})
	}
	orderCDF := zipfWeights(nOrders, z)
	nLines := nOrders * cfg.LinesPerOrder
	for i := 0; i < nLines; i++ {
		okey := i/cfg.LinesPerOrder + 1
		if z > 0 {
			okey = pick(r, orderCDF) + 1
		}
		t.Lineitem = append(t.Lineitem, value.Tuple{
			int64(okey),
			int64(r.Intn(cfg.Parts) + 1),
			int64(r.Intn(100) + 1),
			int64(i%7 + 1),
			float64(r.Intn(50) + 1),
			float64(r.Intn(10000000)) / 100,
			float64(r.Intn(11)) / 100,
			float64(r.Intn(9)) / 100,
			[]string{"A", "N", "R"}[r.Intn(3)],
			[]string{"F", "O"}[r.Intn(2)],
			value.MakeDate(1992+r.Intn(7), 1+r.Intn(12), 1+r.Intn(28)),
			value.MakeDate(1992+r.Intn(7), 1+r.Intn(12), 1+r.Intn(28)),
			value.MakeDate(1992+r.Intn(7), 1+r.Intn(12), 1+r.Intn(28)),
			"DELIVER IN PERSON",
			[]string{"AIR", "FOB", "MAIL", "RAIL", "SHIP", "TRUCK", "REG AIR"}[r.Intn(7)],
			"lineitem comment",
		})
	}
	return t
}

// Inputs returns the flat relations as a runner input map.
func (t *Tables) Inputs() map[string]value.Bag {
	return map[string]value.Bag{
		"Region":   t.Region,
		"Nation":   t.Nation,
		"Customer": t.Customer,
		"Orders":   t.Orders,
		"Lineitem": t.Lineitem,
		"Part":     t.Part,
	}
}
