package runner

import (
	"fmt"
	"sync/atomic"

	"github.com/trance-go/trance/internal/core"
	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/plan"
)

// Choice is the outcome of the Auto strategy's compile-time route selection.
type Choice struct {
	// Strategy is the concrete route chosen (never Auto).
	Strategy Strategy
	// Reasons records the decision inputs, for Explain and /metrics.
	Reasons []string
}

// ChooseStrategy resolves the Auto meta-strategy for one query: it compiles
// the standard plan, reads the dataset statistics in cfg.Stats, and picks
//
//   - a skew-aware variant when any scanned input has a column whose heavy-key
//     row fraction reaches cfg.AutoSkewFraction (paper Section 5: skewed keys
//     saturate single partitions under key-based shuffling);
//   - the shredded route (with unshredding, so the output shape matches
//     Standard) when a pushed-down predicate with estimated selectivity at or
//     below cfg.AutoSelectivity lands on a nested input — shredding avoids
//     materializing inner collections the predicate discards;
//   - Standard otherwise, and always when statistics are absent or the cost
//     model is ablated (cfg.NoCostModel).
//
// Both signals together select ShredUnshredSkew. The decision is deterministic
// in (query, env, cfg).
func ChooseStrategy(q nrc.Expr, env nrc.Env, cfg Config) (Choice, error) {
	if cfg.NoCostModel || len(cfg.Stats) == 0 {
		return Choice{Strategy: Standard, Reasons: []string{"no statistics available; defaulting to standard"}}, nil
	}
	skewAt := cfg.AutoSkewFraction
	if skewAt <= 0 {
		skewAt = DefaultAutoSkewFraction
	}
	selAt := cfg.AutoSelectivity
	if selAt <= 0 {
		selAt = DefaultAutoSelectivity
	}

	if _, err := nrc.Check(q, env); err != nil {
		return Choice{}, err
	}
	c, err := core.NewCompiler(env)
	if err != nil {
		return Choice{}, err
	}
	c.NoPrune = cfg.NoColumnPruning
	op, err := c.Compile(q)
	if err != nil {
		return Choice{}, fmt.Errorf("auto: compile standard plan: %w", err)
	}
	if !cfg.NoPredicatePushdown {
		op, _ = plan.Optimize(op)
	}

	var reasons []string
	skewed, shreddy := false, false
	seenSkew := map[string]bool{}
	seenShred := map[string]bool{}
	walkPlan(op, func(node plan.Op) {
		switch x := node.(type) {
		case *plan.Scan:
			te, ok := cfg.Stats[x.Input]
			if !ok || seenSkew[x.Input] {
				return
			}
			seenSkew[x.Input] = true
			for _, col := range x.Cols {
				ce := te.Cols[col.Name]
				if ce.HeavyFraction >= skewAt {
					skewed = true
					reasons = append(reasons, fmt.Sprintf(
						"input %s: heavy-key fraction %.2f on column %s ≥ threshold %.2f → skew-aware route",
						x.Input, ce.HeavyFraction, col.Name, skewAt))
					break
				}
			}
		case *plan.Select:
			scan, ok := scanBelowSelects(x)
			if !ok || seenShred[scan.Input] {
				return
			}
			te, ok := cfg.Stats[scan.Input]
			if !ok || !nestedInput(env, scan.Input) {
				return
			}
			seenShred[scan.Input] = true
			sel := pushedSelectivity(x, scan, te)
			if sel <= selAt {
				shreddy = true
				reasons = append(reasons, fmt.Sprintf(
					"input %s: pushed predicate selectivity %.2f ≤ threshold %.2f on a nested input → shredded route",
					scan.Input, sel, selAt))
			}
		}
	})

	ch := Choice{Strategy: Standard}
	switch {
	case skewed && shreddy:
		ch.Strategy = ShredUnshredSkew
	case skewed:
		ch.Strategy = StandardSkew
	case shreddy:
		ch.Strategy = ShredUnshred
	default:
		reasons = append(reasons, fmt.Sprintf(
			"no input reaches the skew threshold (%.2f) and no selective pushed predicate on a nested input (≤ %.2f) → standard",
			skewAt, selAt))
	}
	ch.Reasons = reasons
	return ch, nil
}

// walkPlan visits every node of the plan, pre-order.
func walkPlan(op plan.Op, visit func(plan.Op)) {
	visit(op)
	for _, ch := range op.Children() {
		walkPlan(ch, visit)
	}
}

// scanBelowSelects peels a chain of selections and returns the Scan it sits
// on, if any — the shape predicate pushdown produces for scan-level filters.
func scanBelowSelects(s *plan.Select) (*plan.Scan, bool) {
	in := s.In
	for {
		switch x := in.(type) {
		case *plan.Select:
			in = x.In
		case *plan.Scan:
			return x, true
		default:
			return nil, false
		}
	}
}

// pushedSelectivity estimates the combined selectivity of the select chain
// over the scan, using the scan's column statistics.
func pushedSelectivity(s *plan.Select, scan *plan.Scan, te plan.TableEstimate) float64 {
	cols := make([]plan.ColEstimate, len(scan.Cols))
	for i, c := range scan.Cols {
		cols[i] = te.Cols[c.Name]
	}
	sel := 1.0
	var node plan.Op = s
	for {
		sl, ok := node.(*plan.Select)
		if !ok {
			return sel
		}
		if sl.NullifyCols == nil { // outer-preserving selections keep every row
			sel *= plan.Selectivity(sl.Pred, cols)
		}
		node = sl.In
	}
}

// nestedInput reports whether the input's element type contains a bag-typed
// field — the inputs the shredded route represents as dictionaries.
func nestedInput(env nrc.Env, name string) bool {
	bt, ok := env[name].(nrc.BagType)
	if !ok {
		return false
	}
	tt, ok := bt.Elem.(nrc.TupleType)
	if !ok {
		return false
	}
	for _, f := range tt.Fields {
		if _, isBag := f.Type.(nrc.BagType); isBag {
			return true
		}
	}
	return false
}

// autoChoices counts compile-time Auto resolutions by chosen strategy
// (process-wide; served by tranced /metrics).
var autoChoices [Auto + 1]atomic.Int64

// AutoCounters returns the process-wide count of Auto strategy resolutions,
// keyed by the chosen route's CLI name. Decisions are counted once per
// compilation (cached compilations do not re-count).
func AutoCounters() map[string]int64 {
	out := map[string]int64{}
	for _, s := range AllStrategies() {
		if n := autoChoices[s].Load(); n > 0 {
			out[s.CLIName()] = n
		}
	}
	return out
}
