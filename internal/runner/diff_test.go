// Differential oracle harness: a seeded byte-stream generator (the same
// technique as the AST generator in internal/parse/fuzz_test.go, extended to
// well-typed queries of the distributed fragment over random nested datasets)
// produces hundreds of random NRC queries, each executed under all seven
// concrete strategies plus AUTO × {optimized+cost model, ablated} — sixteen
// distributed runs per query — and every result is compared against the
// tuple-at-a-time nrc.Eval reference semantics. Datasets are uniform or
// heavily skewed (a hot key carrying ~70% of R), per-run statistics feed the
// cost model and Auto's route choice, and the broadcast limit varies so joins
// exercise broadcast, swapped-broadcast, and shuffle paths. Any disagreement
// is a soundness bug in the compiler, the engine, the rule-based optimizer,
// or the cost-based planning layer.
package runner_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/plan"
	"github.com/trance-go/trance/internal/runner"
	"github.com/trance-go/trance/internal/shred"
	"github.com/trance-go/trance/internal/stats"
	"github.com/trance-go/trance/internal/value"
)

// diffEnv is the fixed input environment of the generated queries: a
// two-level nested relation R (with an inner bag per item) and a flat
// relation S to join with.
func diffEnv() nrc.Env {
	return nrc.Env{
		"R": nrc.BagOf(nrc.Tup(
			"a", nrc.IntT,
			"b", nrc.StringT,
			"c", nrc.RealT,
			"items", nrc.BagOf(nrc.Tup(
				"v", nrc.IntT,
				"w", nrc.StringT,
				"tags", nrc.BagOf(nrc.Tup("t", nrc.IntT)),
			)),
		)),
		"S": nrc.BagOf(nrc.Tup("k", nrc.IntT, "name", nrc.StringT)),
	}
}

var diffStrs = []string{"ash", "birch", "cedar", "oak"}

// dgen deterministically derives datasets and queries from a byte stream.
type dgen struct {
	data []byte
	i    int
}

func (g *dgen) b() byte {
	if g.i >= len(g.data) {
		return 0
	}
	v := g.data[g.i]
	g.i++
	return v
}

func (g *dgen) n(n int) int    { return int(g.b()) % n }
func (g *dgen) coin() bool     { return g.b()%2 == 0 }
func (g *dgen) str() string    { return diffStrs[g.n(len(diffStrs))] }
func (g *dgen) intv() int64    { return int64(g.n(5)) }
func (g *dgen) realv() float64 { return float64(g.n(4)) + 0.5 }

// dataset builds small random nested inputs: key ranges overlap deliberately
// so joins hit, miss, and duplicate; bags are frequently empty. One seed in
// four draws the skewed shape instead: a hot key carries ~70% of a larger R
// (and appears in S), so collected statistics cross the Auto skew threshold
// and the skew-aware operators' heavy/light split actually triggers.
func (g *dgen) dataset() map[string]value.Bag {
	skewed := g.n(4) == 0
	nR, nS := g.n(6), g.n(5)
	var hot int64
	if skewed {
		hot = g.intv()
		nR, nS = 20+g.n(5), 4+g.n(4)
	}
	R := value.Bag{}
	for i := 0; i < nR; i++ {
		items := value.Bag{}
		for j := g.n(4); j > 0; j-- {
			tags := value.Bag{}
			for k := g.n(3); k > 0; k-- {
				tags = append(tags, value.Tuple{g.intv()})
			}
			items = append(items, value.Tuple{g.intv(), g.str(), tags})
		}
		a := g.intv()
		if skewed && i%10 < 7 {
			a = hot
		}
		R = append(R, value.Tuple{a, g.str(), g.realv(), items})
	}
	S := value.Bag{}
	for i := 0; i < nS; i++ {
		k := g.intv()
		if skewed && i == 0 {
			k = hot
		}
		S = append(S, value.Tuple{k, g.str()})
	}
	return map[string]value.Bag{"R": R, "S": S}
}

// path lazily constructs a scalar access path, so every use gets fresh AST
// nodes (trees must not share nodes across positions).
type path struct {
	mk  func() nrc.Expr
	typ nrc.Type
}

func projPath(v string, typ nrc.Type, fields ...string) path {
	return path{typ: typ, mk: func() nrc.Expr { return nrc.P(nrc.V(v), fields...) }}
}

// scope tracks the scalar paths available to predicates and heads.
type scope struct{ paths []path }

func (s *scope) ofType(t nrc.Type) []path {
	var out []path
	for _, p := range s.paths {
		if nrc.TypesEqual(p.typ, t) {
			out = append(out, p)
		}
	}
	return out
}

// constOf builds a literal of the given scalar type.
func (g *dgen) constOf(t nrc.Type) nrc.Expr {
	switch {
	case nrc.TypesEqual(t, nrc.IntT):
		return nrc.C(g.intv())
	case nrc.TypesEqual(t, nrc.RealT):
		return nrc.C(g.realv())
	default:
		return nrc.C(g.str())
	}
}

var cmpBuilders = []func(l, r nrc.Expr) *nrc.Cmp{nrc.EqOf, nrc.NeOf, nrc.LtOf, nrc.LeOf, nrc.GtOf, nrc.GeOf}

// atom builds one comparison over the scope: path vs constant, path vs path
// of the same type, or (rarely) a constant-only comparison that the
// optimizer's constant folding collapses.
func (g *dgen) atom(sc *scope) nrc.Expr {
	ts := []nrc.Type{nrc.IntT, nrc.RealT, nrc.StringT}
	t := ts[g.n(len(ts))]
	cands := sc.ofType(t)
	cmp := cmpBuilders[g.n(len(cmpBuilders))]
	if len(cands) == 0 || g.n(8) == 0 {
		return cmp(g.constOf(t), g.constOf(t))
	}
	l := cands[g.n(len(cands))].mk()
	if len(cands) > 1 && g.coin() {
		return cmp(l, cands[g.n(len(cands))].mk())
	}
	return cmp(l, g.constOf(t))
}

// pred builds a small boolean combination of atoms.
func (g *dgen) pred(sc *scope) nrc.Expr {
	p := g.atom(sc)
	for extra := g.n(3); extra > 0; extra-- {
		q := g.atom(sc)
		if g.n(4) == 0 {
			q = nrc.NotOf(q)
		}
		if g.coin() {
			p = nrc.AndOf(p, q)
		} else {
			p = nrc.OrOf(p, q)
		}
	}
	return p
}

// scalarExpr builds a head expression of the given type from the scope.
func (g *dgen) scalarExpr(sc *scope, t nrc.Type) nrc.Expr {
	cands := sc.ofType(t)
	if len(cands) == 0 || g.n(6) == 0 {
		return g.constOf(t)
	}
	e := cands[g.n(len(cands))].mk()
	if nrc.TypesEqual(t, nrc.StringT) || g.n(3) != 0 {
		return e
	}
	ops := []func(l, r nrc.Expr) *nrc.Arith{nrc.AddOf, nrc.SubOf, nrc.MulOf}
	return ops[g.n(len(ops))](e, g.constOf(t))
}

// comp builds a root comprehension producing {f1: int, f2: real, f3: string}
// tuples. The generator chain is: R always; optionally a join with S (keyed,
// constant-keyed, or cross), optionally an unnest of x.items, optionally a
// deeper unnest of it.tags; then an optional residual guard. withSub
// additionally adds a bag-valued head field built by a correlated inner
// comprehension (over x.items, or it.tags when the items were consumed by an
// unnest), which compiles to outer operators, nullifying selections, and Γ.
func (g *dgen) comp(withSub bool) nrc.Expr {
	sc := &scope{paths: []path{
		projPath("x", nrc.IntT, "a"),
		projPath("x", nrc.StringT, "b"),
		projPath("x", nrc.RealT, "c"),
	}}
	var guards []nrc.Expr

	useJoin := g.coin()
	if useJoin {
		switch g.n(4) {
		case 0:
			// Constant-keyed join: the equality feeds join-side derivation.
			guards = append(guards, nrc.EqOf(nrc.P(nrc.V("s"), "k"), nrc.C(g.intv())))
			guards = append(guards, nrc.EqOf(nrc.P(nrc.V("x"), "a"), nrc.P(nrc.V("s"), "k")))
		case 1:
			// Cross join (no equality links x and s).
		default:
			guards = append(guards, nrc.EqOf(nrc.P(nrc.V("x"), "a"), nrc.P(nrc.V("s"), "k")))
		}
		sc.paths = append(sc.paths,
			projPath("s", nrc.IntT, "k"),
			projPath("s", nrc.StringT, "name"))
	}
	useItems := g.coin()
	useTags := false
	if useItems {
		sc.paths = append(sc.paths,
			projPath("it", nrc.IntT, "v"),
			projPath("it", nrc.StringT, "w"))
		// withSub reserves it.tags for the correlated inner comprehension:
		// a bag flattened by an enclosing for cannot be iterated again
		// (the unnesting stage refuses consumed bag columns).
		if !withSub && g.coin() {
			useTags = true
			sc.paths = append(sc.paths, projPath("tg", nrc.IntT, "t"))
		}
	}
	if g.coin() {
		guards = append(guards, g.pred(sc))
	}
	// A selective point guard on R.a (indexed in ~3/4 of the seeds): the
	// generator's free-form predicates reach a Scan almost exclusively as
	// range conjuncts with default-estimated selectivity, which the measured
	// range gate (indexScanMaxRangeSelectivity) rightly refuses — without an
	// equality that converts at 1/NDV, the matrix's index dimension would go
	// vacuous.
	if g.n(3) == 0 {
		guards = append(guards, nrc.EqOf(nrc.P(nrc.V("x"), "a"), nrc.C(g.intv())))
	}

	fields := []any{
		"f1", g.scalarExpr(sc, nrc.IntT),
		"f2", g.scalarExpr(sc, nrc.RealT),
		"f3", g.scalarExpr(sc, nrc.StringT),
	}
	if withSub {
		// Inner comprehension over a bag not consumed by an outer unnest:
		// x.items normally, it.tags when the items were unnested above.
		innerVar := "it2"
		innerPaths := []path{projPath("it2", nrc.IntT, "v"), projPath("it2", nrc.StringT, "w")}
		src := nrc.P(nrc.V("x"), "items")
		if useItems {
			innerVar = "tg2"
			innerPaths = []path{projPath("tg2", nrc.IntT, "t")}
			src = nrc.P(nrc.V("it"), "tags")
		}
		isc := &scope{paths: append(append([]path{}, sc.paths...), innerPaths...)}
		head := nrc.SingOf(nrc.Record(
			"p", g.scalarExpr(isc, nrc.IntT),
			"q", g.scalarExpr(isc, nrc.RealT)))
		var body nrc.Expr = head
		if g.coin() {
			body = nrc.IfThen(g.pred(isc), head)
		}
		fields = append(fields, "sub", nrc.ForIn(innerVar, src, body))
	}

	body := nrc.Expr(nrc.SingOf(nrc.Record(fields...)))
	for i := len(guards) - 1; i >= 0; i-- {
		body = nrc.IfThen(guards[i], body)
	}
	if useTags {
		body = nrc.ForIn("tg", nrc.P(nrc.V("it"), "tags"), body)
	}
	if useItems {
		body = nrc.ForIn("it", nrc.P(nrc.V("x"), "items"), body)
	}
	if useJoin {
		body = nrc.ForIn("s", nrc.V("S"), body)
	}
	return nrc.ForIn("x", nrc.V("R"), body)
}

// query builds one top-level query: a plain flat or nested comprehension, or
// a root aggregate / dedup / union over flat comprehensions.
func (g *dgen) query() nrc.Expr {
	switch g.n(8) {
	case 0:
		return nrc.SumByOf(g.comp(false), []string{"f1", "f3"}, []string{"f2"})
	case 1:
		return nrc.SumByOf(g.comp(false), []string{"f3"}, []string{"f2"})
	case 2:
		// groupBy does not shred (its nested output attribute would need a
		// dictionary), so the shred-compatible deep flat shape is dedup∘union.
		return nrc.DedupOf(nrc.UnionOf(g.comp(false), g.comp(false)))
	case 3:
		return nrc.DedupOf(g.comp(false))
	case 4:
		return nrc.UnionOf(g.comp(false), g.comp(false))
	case 5, 6:
		return g.comp(true)
	default:
		return g.comp(false)
	}
}

// diffConfig is the cluster sizing for differential runs: small enough to be
// fast, parallel enough to exercise shuffles. The full configuration carries
// collected statistics and a generator-chosen broadcast limit; the ablated
// configuration disables both the rule-based optimizer and the cost model
// (so every seed also runs the un-annotated plans Auto degrades to Standard
// on). vec toggles the columnar batch path independently, so every seed runs
// both the vectorized kernels and the row-at-a-time interpreter they must be
// bit-identical to.
func diffConfig(full, vec, noIdx, boxedEx bool, ests map[string]plan.TableEstimate, limit int64) runner.Config {
	cfg := runner.DefaultConfig()
	cfg.Parallelism = 3
	cfg.NoPredicatePushdown = !full
	cfg.NoCostModel = !full
	cfg.NoVectorize = !vec
	cfg.NoIndexScan = noIdx
	cfg.BoxedExchange = boxedEx
	cfg.Stats = ests
	cfg.BroadcastLimit = limit
	return cfg
}

// diffIndexCols are the scalar columns the generator may index: every
// top-level scalar of R and S (inner-bag columns are not indexable).
var diffIndexCols = []struct{ ds, col string }{
	{"R", "a"}, {"R", "b"}, {"R", "c"}, {"S", "k"}, {"S", "name"},
}

// chooseIndexes draws the seed's index configuration: each top-level scalar
// column independently gains a hash index, an ordered index, both, or none.
// Returns the flag map to stamp into the collected statistics.
func (g *dgen) chooseIndexes() map[string]map[string][2]bool {
	out := map[string]map[string][2]bool{}
	for _, ic := range diffIndexCols {
		h, o := g.coin(), g.coin()
		if !h && !o {
			continue
		}
		if out[ic.ds] == nil {
			out[ic.ds] = map[string][2]bool{}
		}
		out[ic.ds][ic.col] = [2]bool{h, o}
	}
	return out
}

// applyIndexes stamps the chosen index flags into the collected statistics —
// the same shape a catalog session's resolve produces — and publishes the
// shredded-route estimate aliases so IndexScan conversion happens on the
// shredded top components too.
func applyIndexes(ests map[string]plan.TableEstimate, chosen map[string]map[string][2]bool) {
	for ds, cols := range chosen {
		te, ok := ests[ds]
		if !ok {
			continue
		}
		for col, kinds := range cols {
			ce := te.Cols[col]
			ce.IndexHash, ce.IndexOrdered = kinds[0], kinds[1]
			te.Cols[col] = ce
		}
		ests[shred.MatName(ds, nil)] = te
	}
}

// collectDiffStats gathers per-input statistics the way a catalog session
// would, sized to the differential cluster.
func collectDiffStats(env nrc.Env, inputs map[string]value.Bag) map[string]plan.TableEstimate {
	ests := map[string]plan.TableEstimate{}
	for name, b := range inputs {
		bt := env[name].(nrc.BagType)
		ests[name] = stats.Collect(b, bt, stats.Options{Parallelism: 3}).Estimate()
	}
	return ests
}

// oracleEval runs the reference evaluator.
func oracleEval(q nrc.Expr, env nrc.Env, inputs map[string]value.Bag) (value.Bag, error) {
	if _, err := nrc.Check(q, env); err != nil {
		return nil, err
	}
	var s *nrc.Scope
	for name, b := range inputs {
		s = s.Bind(name, b)
	}
	return nrc.Eval(q, s).(value.Bag), nil
}

// nestedOutput converts a strategy's result dataset back to the nested value
// the oracle produces: rows as tuples for standard and unshredding routes,
// value-unshredding of the materialized components for the shredded routes
// that stop at the dictionary representation (SHRED, SHRED-SKEW). cq.Strategy
// is the resolved route, so AUTO runs land in the right branch too.
func nestedOutput(cq *runner.Compiled, res *runner.Result) (value.Bag, error) {
	if cq.Strategy.IsShredded() && !cq.Strategy.Unshreds() {
		top := make([]value.Tuple, 0)
		for _, r := range res.Shredded[cq.Mat.TopName].Collect() {
			top = append(top, value.Tuple(r))
		}
		dicts := map[string][]value.Tuple{}
		for _, d := range cq.Mat.Dicts {
			rows := make([]value.Tuple, 0)
			for _, r := range res.Shredded[d.Name].Collect() {
				rows = append(rows, value.Tuple(r))
			}
			dicts[strings.Join(d.Path, "_")] = rows
		}
		return shred.UnshredValue(top, dicts, cq.Mat.OutType)
	}
	out := make(value.Bag, 0)
	for _, r := range res.Output.Collect() {
		out = append(out, value.Tuple(r))
	}
	return out, nil
}

// diffStrategies covers every concrete route plus the statistics-driven
// meta-strategy.
var diffStrategies = append(runner.AllStrategies(), runner.Auto)

// diffBroadcastLimits are the generator-selected broadcast limits: 0 forces
// every annotated join to shuffle, 200 bytes lets only tiny sides broadcast
// (exercising the swap path), and the default 64 KB broadcasts everything at
// differential scale.
var diffBroadcastLimits = []int64{0, 200, 64 << 10}

// runDifferential executes one generated query under the full
// strategy × {full, ablated} × {vectorized, row-only} × {indexed,
// NoIndexScan} × {columnar-exchange, boxed-exchange} matrix and compares
// each run against the oracle (the index arm only splits full runs: ablated
// runs skip annotation and so never plan index scans; the exchange arm only
// splits full vectorized indexed runs — the columnar shuffle path is on
// everywhere else, so the boxed ablation is the interesting extra arm). The
// query is regenerated from the same bytes for every compilation
// (compilation annotates ASTs in place). Returns the number of runs whose
// plans the optimizer changed, the number of vectorized runs that actually
// executed at least one columnar batch, the number of runs that planned at
// least one index scan, and the number of runs that moved typed column
// buffers across a shuffle exchange, or an error describing the first
// divergence.
func runDifferential(data []byte, strict bool) (optimized, vectorized, indexed, columnar int, err error) {
	env := diffEnv()
	g := &dgen{data: data}
	inputs := g.dataset()
	limit := diffBroadcastLimits[g.n(len(diffBroadcastLimits))]
	chosen := g.chooseIndexes()
	queryAt := g.i
	mkQuery := func() nrc.Expr {
		qg := &dgen{data: data, i: queryAt}
		return qg.query()
	}
	q := mkQuery()

	want, err := oracleEval(q, env, inputs)
	if err != nil {
		return 0, 0, 0, 0, fmt.Errorf("generated query fails Check (generator bug): %v\n%s", err, nrc.Print(q))
	}
	ests := collectDiffStats(env, inputs)
	applyIndexes(ests, chosen)

	for _, strat := range diffStrategies {
		for _, full := range []bool{true, false} {
			noIdxArms := []bool{false}
			if full {
				noIdxArms = []bool{false, true}
			}
			for _, vec := range []bool{true, false} {
				for _, noIdx := range noIdxArms {
					boxedArms := []bool{false}
					if full && vec && !noIdx {
						boxedArms = []bool{false, true}
					}
					for _, boxedEx := range boxedArms {
						cfg := diffConfig(full, vec, noIdx, boxedEx, ests, limit)
						cq, cerr := runner.Compile(mkQuery(), env, strat, cfg)
						if cerr != nil {
							if strict {
								return optimized, vectorized, indexed, columnar, fmt.Errorf("%s (full=%t, vec=%t, noidx=%t, boxedex=%t) does not compile: %v\n%s",
									strat, full, vec, noIdx, boxedEx, cerr, nrc.Print(q))
							}
							return optimized, vectorized, indexed, columnar, errSkip
						}
						if full && vec && !noIdx && !boxedEx && cq.Opt.Total() > 0 {
							optimized++
						}
						if cq.Idx.Planned > 0 {
							if noIdx {
								return optimized, vectorized, indexed, columnar, fmt.Errorf(
									"%s planned %d index scans with NoIndexScan set\n%s", strat, cq.Idx.Planned, nrc.Print(q))
							}
							indexed++
						}
						res := cq.Execute(context.Background(), inputs, runner.NewRunContext(cfg, cq.Strategy))
						if res.Failed() {
							return optimized, vectorized, indexed, columnar, fmt.Errorf("%s (full=%t, vec=%t, noidx=%t, boxedex=%t) failed: %v\n%s",
								strat, full, vec, noIdx, boxedEx, res.Err, nrc.Print(q))
						}
						if vec && res.Metrics.VectorizedBatches > 0 {
							vectorized++
						}
						ex := res.Metrics.Exchange
						if boxedEx && ex.ColumnarBuffers > 0 {
							return optimized, vectorized, indexed, columnar, fmt.Errorf(
								"%s moved %d columnar buffers with BoxedExchange set\n%s", strat, ex.ColumnarBuffers, nrc.Print(q))
						}
						if ex.ColumnarBuffers > 0 {
							columnar++
						}
						got, gerr := nestedOutput(cq, res)
						if gerr != nil {
							return optimized, vectorized, indexed, columnar, fmt.Errorf("%s (full=%t, vec=%t, noidx=%t, boxedex=%t) unshred: %v\n%s",
								strat, full, vec, noIdx, boxedEx, gerr, nrc.Print(q))
						}
						if !value.Equal(got, want) {
							return optimized, vectorized, indexed, columnar, fmt.Errorf(
								"%s (full=%t, vec=%t, noidx=%t, boxedex=%t, resolved %s, bcast=%d, idx-planned=%d) diverges from the nrc.Eval oracle\nquery:\n%s\ninputs: %s\n got: %s\nwant: %s\nexplain:\n%s",
								strat, full, vec, noIdx, boxedEx, cq.Strategy, limit, cq.Idx.Planned, nrc.Print(q), value.Format(value.Tuple{inputs["R"], inputs["S"]}),
								value.Format(got), value.Format(want), cq.Explain())
						}
					}
				}
			}
		}
	}
	return optimized, vectorized, indexed, columnar, nil
}

// errSkip marks an uncompilable fuzz-generated query (tolerated only in the
// fuzz target; the curated seeds of TestDifferentialOracle must all compile).
var errSkip = fmt.Errorf("skip")

// seedBytes derives a deterministic byte stream per seed (same scheme as the
// parser fuzz seeds, longer so deep queries draw enough entropy).
func seedBytes(seed int) []byte {
	data := make([]byte, 96)
	for i := range data {
		data[i] = byte((seed*131 + i*17 + i*i*3) % 256)
	}
	return data
}

// TestDifferentialOracle is the headline soundness gate: 300 generated
// queries × (7 strategies + AUTO) × {full, ablated} × {vectorized,
// row-only} × {indexed, NoIndexScan} × {columnar-exchange, boxed-exchange},
// every run compared against the reference evaluator. Runs under -race in CI.
func TestDifferentialOracle(t *testing.T) {
	n := 300
	if testing.Short() {
		n = 60
	}
	optimized, vectorized, indexed, columnar := 0, 0, 0, 0
	for seed := 0; seed < n; seed++ {
		opt, vec, idx, col, err := runDifferential(seedBytes(seed), true)
		optimized += opt
		vectorized += vec
		indexed += idx
		columnar += col
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	// The harness must actually exercise the optimizer, not vacuously pass
	// on plans it never changes.
	if optimized < n/4 {
		t.Fatalf("only %d/%d×8 optimized runs changed a plan — generator no longer exercises the optimizer", optimized, n)
	}
	// Likewise the vectorized half of the matrix must actually run columnar
	// batches, not silently fall back to the row interpreter everywhere.
	if vectorized < n/4 {
		t.Fatalf("only %d/%d×16 vectorized runs executed a columnar batch — generator no longer exercises the vectorizer", vectorized, n)
	}
	// And the index arm must actually plan index scans, not vacuously agree
	// because no generated predicate ever hit an indexed column.
	if indexed < n/4 {
		t.Fatalf("only %d runs planned an index scan across %d seeds — generator no longer exercises index planning", indexed, n)
	}
	// And the columnar-exchange arm must actually move typed buffers across
	// shuffles, not silently spill to boxed rows on every generated query.
	if columnar < n/4 {
		t.Fatalf("only %d runs moved typed column buffers across an exchange over %d seeds — the columnar shuffle path is no longer exercised", columnar, n)
	}
	t.Logf("%d queries × ~56 runs agreed with the oracle; optimizer changed plans in %d runs; %d runs executed columnar batches; %d runs planned index scans; %d runs shuffled typed column buffers", n, optimized, vectorized, indexed, columnar)
}

// TestAnalyzeStableAcrossRoutes re-runs a sampled subset of the differential
// seeds with per-operator instrumentation enabled across the {vectorized,
// row-only} × {indexed, index-ablated} matrix and checks that EXPLAIN ANALYZE
// is an observation, not an intervention: every combination still agrees with
// the oracle, the root operator's measured actual_rows equals the oracle
// cardinality in every combination, and the analyzed explain text renders the
// runtime annotations.
func TestAnalyzeStableAcrossRoutes(t *testing.T) {
	step := 25
	if testing.Short() {
		step = 75
	}
	checked, measuredRoots := 0, 0
	for seed := 0; seed < 300; seed += step {
		data := seedBytes(seed)
		env := diffEnv()
		g := &dgen{data: data}
		inputs := g.dataset()
		limit := diffBroadcastLimits[g.n(len(diffBroadcastLimits))]
		chosen := g.chooseIndexes()
		queryAt := g.i
		mkQuery := func() nrc.Expr {
			qg := &dgen{data: data, i: queryAt}
			return qg.query()
		}

		want, err := oracleEval(mkQuery(), env, inputs)
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}
		ests := collectDiffStats(env, inputs)
		applyIndexes(ests, chosen)

		for _, vec := range []bool{true, false} {
			for _, noIdx := range []bool{false, true} {
				cfg := diffConfig(true, vec, noIdx, false, ests, limit)
				cq, cerr := runner.Compile(mkQuery(), env, runner.Standard, cfg)
				if cerr != nil {
					t.Fatalf("seed %d (vec=%t, noidx=%t): compile: %v", seed, vec, noIdx, cerr)
				}
				a := plan.NewAnalysis()
				res := cq.ExecuteWithOpts(context.Background(), inputs,
					runner.NewRunContext(cfg, cq.Strategy), runner.ExecOptions{Analysis: a})
				if res.Failed() {
					t.Fatalf("seed %d (vec=%t, noidx=%t): %v", seed, vec, noIdx, res.Err)
				}
				got, gerr := nestedOutput(cq, res)
				if gerr != nil {
					t.Fatalf("seed %d (vec=%t, noidx=%t): %v", seed, vec, noIdx, gerr)
				}
				if !value.Equal(got, want) {
					t.Fatalf("seed %d (vec=%t, noidx=%t): instrumented run diverges from the oracle\n got: %s\nwant: %s",
						seed, vec, noIdx, value.Format(got), value.Format(want))
				}
				// Only measured roots are held to the oracle cardinality;
				// a plan whose root the executor never instrumented (e.g. a
				// pure leaf) renders without the check.
				if ns := res.Analyze.Lookup(cq.Plan); ns != nil {
					if actual := ns.RowsOut.Load(); actual != int64(len(want)) {
						t.Fatalf("seed %d (vec=%t, noidx=%t): root actual_rows=%d, oracle cardinality=%d",
							seed, vec, noIdx, actual, len(want))
					}
					measuredRoots++
				}
				if text := cq.ExplainAnalyze(res); !strings.Contains(text, "[actual_rows=") {
					t.Fatalf("seed %d (vec=%t, noidx=%t): analyzed explain carries no runtime annotation:\n%s",
						seed, vec, noIdx, text)
				}
				checked++
			}
		}
	}
	if measuredRoots < checked/2 {
		t.Fatalf("only %d/%d runs had a measured root operator — instrumentation no longer covers the generated plans", measuredRoots, checked)
	}
	t.Logf("%d instrumented runs matched the oracle; %d had measured roots with stable actual_rows", checked, measuredRoots)
}

// FuzzDifferential lets the fuzzer drive the generator byte stream directly.
// Queries the generator derives are well-typed by construction; any oracle
// divergence is a real bug.
func FuzzDifferential(f *testing.F) {
	f.Add(seedBytes(0))
	f.Add(seedBytes(7))
	f.Add(seedBytes(42))
	f.Add([]byte{})
	f.Add([]byte{255, 1, 254, 3, 252, 7, 248, 15, 240, 31, 224, 63, 192, 127, 128})
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, _, _, _, err := runDifferential(data, false); err != nil {
			if err == errSkip {
				t.Skip("generated query outside the compilable fragment")
			}
			t.Fatal(err)
		}
	})
}
