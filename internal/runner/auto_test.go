package runner_test

import (
	"context"
	"strings"
	"testing"

	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/plan"
	"github.com/trance-go/trance/internal/runner"
	"github.com/trance-go/trance/internal/stats"
	"github.com/trance-go/trance/internal/value"
)

// flatEnv: R{k,v} joined with S{k,name} — the flat join the skew signal
// drives; the nested env carries an inner bag for the shred signal.
func flatAutoEnv() nrc.Env {
	return nrc.Env{
		"R": nrc.BagOf(nrc.Tup("k", nrc.IntT, "v", nrc.IntT)),
		"S": nrc.BagOf(nrc.Tup("k", nrc.IntT, "name", nrc.StringT)),
	}
}

// flatAutoData builds R with nR rows (60% sharing k=0 when skewed, uniform
// keys otherwise) and a small S covering the key range.
func flatAutoData(nR int, skewed bool) (value.Bag, value.Bag) {
	r := make(value.Bag, nR)
	for i := range r {
		k := int64(i % 500)
		if skewed && i%5 < 3 {
			k = 0
		}
		r[i] = value.Tuple{k, int64(i)}
	}
	s := make(value.Bag, 100)
	for i := range s {
		s[i] = value.Tuple{int64(i * 5), "n" + string(rune('a'+i%26))}
	}
	return r, s
}

func flatJoinQuery() nrc.Expr {
	return nrc.ForIn("r", nrc.V("R"),
		nrc.ForIn("s", nrc.V("S"),
			nrc.IfThen(nrc.EqOf(nrc.P(nrc.V("r"), "k"), nrc.P(nrc.V("s"), "k")),
				nrc.SingOf(nrc.Record("k", nrc.P(nrc.V("r"), "k"), "name", nrc.P(nrc.V("s"), "name"))))))
}

func nestedAutoEnv() nrc.Env {
	return nrc.Env{"RN": nrc.BagOf(nrc.Tup("k", nrc.IntT, "items", nrc.BagOf(nrc.Tup("v", nrc.IntT))))}
}

func nestedAutoData(n int, skewed bool) value.Bag {
	out := make(value.Bag, n)
	for i := range out {
		k := int64(i)
		if skewed && i%5 < 3 {
			k = 0
		}
		items := value.Bag{value.Tuple{int64(i)}, value.Tuple{int64(i + 1)}}
		out[i] = value.Tuple{k, items}
	}
	return out
}

// selectiveNestedQuery filters RN on a highly selective key predicate; the
// pushed-down selection over the nested input is the shred-route signal.
func selectiveNestedQuery() nrc.Expr {
	return nrc.ForIn("r", nrc.V("RN"),
		nrc.IfThen(nrc.EqOf(nrc.P(nrc.V("r"), "k"), nrc.C(5)),
			nrc.SingOf(nrc.Record("k", nrc.P(nrc.V("r"), "k"), "items", nrc.P(nrc.V("r"), "items")))))
}

func collectStats(t testing.TB, env nrc.Env, inputs map[string]value.Bag, par int) map[string]plan.TableEstimate {
	t.Helper()
	out := map[string]plan.TableEstimate{}
	for name, b := range inputs {
		bt := env[name].(nrc.BagType)
		out[name] = stats.Collect(b, bt, stats.Options{Parallelism: par}).Estimate()
	}
	return out
}

// TestAutoPicksRoute drives the Auto strategy across the dataset/query pairs
// of the decision matrix and checks the route the cost model chooses.
func TestAutoPicksRoute(t *testing.T) {
	cfg := runner.DefaultConfig()
	cfg.Parallelism = 4

	t.Run("uniform flat → standard", func(t *testing.T) {
		r, s := flatAutoData(4000, false)
		cfg := cfg
		cfg.Stats = collectStats(t, flatAutoEnv(), map[string]value.Bag{"R": r, "S": s}, cfg.Parallelism)
		cq, err := runner.Compile(flatJoinQuery(), flatAutoEnv(), runner.Auto, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if cq.Strategy != runner.Standard || cq.Requested != runner.Auto {
			t.Fatalf("chose %s (requested %s), want STANDARD", cq.Strategy, cq.Requested)
		}
	})

	t.Run("skewed flat → standard-skew", func(t *testing.T) {
		r, s := flatAutoData(4000, true)
		cfg := cfg
		cfg.Stats = collectStats(t, flatAutoEnv(), map[string]value.Bag{"R": r, "S": s}, cfg.Parallelism)
		cq, err := runner.Compile(flatJoinQuery(), flatAutoEnv(), runner.Auto, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if cq.Strategy != runner.StandardSkew {
			t.Fatalf("chose %s, want STANDARD-SKEW; reasons: %v", cq.Strategy, cq.AutoReasons)
		}
		if len(cq.AutoReasons) == 0 || !strings.Contains(cq.AutoReasons[0], "heavy-key fraction") {
			t.Fatalf("reasons missing the skew signal: %v", cq.AutoReasons)
		}
	})

	t.Run("selective nested → shred+unshred", func(t *testing.T) {
		rn := nestedAutoData(400, false)
		cfg := cfg
		cfg.Stats = collectStats(t, nestedAutoEnv(), map[string]value.Bag{"RN": rn}, cfg.Parallelism)
		cq, err := runner.Compile(selectiveNestedQuery(), nestedAutoEnv(), runner.Auto, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if cq.Strategy != runner.ShredUnshred {
			t.Fatalf("chose %s, want SHRED+UNSHRED; reasons: %v", cq.Strategy, cq.AutoReasons)
		}
	})

	t.Run("skewed selective nested → shred+unshred-skew", func(t *testing.T) {
		rn := nestedAutoData(4000, true)
		cfg := cfg
		cfg.Stats = collectStats(t, nestedAutoEnv(), map[string]value.Bag{"RN": rn}, cfg.Parallelism)
		// The hot key collapses k's NDV; filter on it still estimates
		// selectively enough (1/NDV of the residual keys ≪ threshold).
		cq, err := runner.Compile(selectiveNestedQuery(), nestedAutoEnv(), runner.Auto, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if cq.Strategy != runner.ShredUnshredSkew {
			t.Fatalf("chose %s, want SHRED+UNSHRED-SKEW; reasons: %v", cq.Strategy, cq.AutoReasons)
		}
	})

	t.Run("no statistics → standard", func(t *testing.T) {
		cq, err := runner.Compile(flatJoinQuery(), flatAutoEnv(), runner.Auto, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if cq.Strategy != runner.Standard {
			t.Fatalf("chose %s without stats, want STANDARD", cq.Strategy)
		}
		if len(cq.AutoReasons) == 0 || !strings.Contains(cq.AutoReasons[0], "no statistics") {
			t.Fatalf("reasons = %v", cq.AutoReasons)
		}
	})

	t.Run("ablated cost model → standard", func(t *testing.T) {
		r, s := flatAutoData(4000, true)
		cfg := cfg
		cfg.Stats = collectStats(t, flatAutoEnv(), map[string]value.Bag{"R": r, "S": s}, cfg.Parallelism)
		cfg.NoCostModel = true
		cq, err := runner.Compile(flatJoinQuery(), flatAutoEnv(), runner.Auto, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if cq.Strategy != runner.Standard {
			t.Fatalf("chose %s under NoCostModel, want STANDARD", cq.Strategy)
		}
	})
}

// TestAutoFallsBackWhenShredFails: groupBy cannot compile through the
// shredded route; when Auto picks it anyway (selective predicate on a nested
// input), compilation must fall back to the standard variant, not fail.
func TestAutoFallsBackWhenShredFails(t *testing.T) {
	rn := nestedAutoData(400, false)
	cfg := runner.DefaultConfig()
	cfg.Parallelism = 4
	cfg.Stats = collectStats(t, nestedAutoEnv(), map[string]value.Bag{"RN": rn}, cfg.Parallelism)
	q := nrc.GroupByOf(
		nrc.ForIn("r", nrc.V("RN"),
			nrc.IfThen(nrc.EqOf(nrc.P(nrc.V("r"), "k"), nrc.C(5)),
				nrc.SingOf(nrc.Record("k", nrc.P(nrc.V("r"), "k"), "n", nrc.C(1))))),
		"k")
	cq, err := runner.Compile(q, nestedAutoEnv(), runner.Auto, cfg)
	if err != nil {
		t.Fatalf("auto compile failed instead of falling back: %v", err)
	}
	if cq.Strategy != runner.Standard {
		t.Fatalf("fell back to %s, want STANDARD; reasons: %v", cq.Strategy, cq.AutoReasons)
	}
	found := false
	for _, r := range cq.AutoReasons {
		if strings.Contains(r, "falling back") {
			found = true
		}
	}
	if !found {
		t.Fatalf("fallback not recorded in reasons: %v", cq.AutoReasons)
	}
	// The fallback artifact must actually run.
	res := cq.Execute(context.Background(), map[string]value.Bag{"RN": rn}, runner.NewRunContext(cfg, cq.Strategy))
	if res.Err != nil {
		t.Fatalf("fallback execution failed: %v", res.Err)
	}
}

// TestAutoExplainShowsChoice: the Explain of an Auto compilation names the
// chosen route and the reasons.
func TestAutoExplainShowsChoice(t *testing.T) {
	r, s := flatAutoData(4000, true)
	cfg := runner.DefaultConfig()
	cfg.Parallelism = 4
	cfg.Stats = collectStats(t, flatAutoEnv(), map[string]value.Bag{"R": r, "S": s}, cfg.Parallelism)
	cq, err := runner.Compile(flatJoinQuery(), flatAutoEnv(), runner.Auto, cfg)
	if err != nil {
		t.Fatal(err)
	}
	text := cq.Explain()
	if !strings.Contains(text, "strategy: STANDARD-SKEW (auto-selected)") {
		t.Fatalf("explain missing auto-selected strategy line:\n%s", text)
	}
	if !strings.Contains(text, "auto: input R: heavy-key fraction") {
		t.Fatalf("explain missing auto reason line:\n%s", text)
	}
}

// TestAutoCountersAdvance: compile-time Auto resolutions are counted by
// chosen route.
func TestAutoCountersAdvance(t *testing.T) {
	before := runner.AutoCounters()["standard"]
	cfg := runner.DefaultConfig()
	if _, err := runner.Compile(flatJoinQuery(), flatAutoEnv(), runner.Auto, cfg); err != nil {
		t.Fatal(err)
	}
	if after := runner.AutoCounters()["standard"]; after != before+1 {
		t.Fatalf("standard counter %d → %d, want +1", before, after)
	}
}

// BenchmarkAutoStrategy compares Auto against the manual routes on a skewed
// shuffle join — both sides exceed the broadcast limit, so the heavy key
// saturates one partition unless the skew-aware operators split it. Auto must
// track the best manual strategy (it resolves to the skew-aware route at
// compile time) and beat the worst. Compare with benchstat; compilation and
// statistics collection stay outside the timer.
func BenchmarkAutoStrategy(b *testing.B) {
	// R: 20000 rows, 90% on the hot key. S: 3000 rows over 300 keys (~90 KB,
	// over the 64 KB broadcast limit, so the join must shuffle; hot-key fanout
	// 10). Under a plain hash shuffle one partition carries ~90% of the join
	// output; the skew-aware route keeps the heavy rows in place and broadcasts
	// their matches instead.
	r := make(value.Bag, 20000)
	for i := range r {
		k := int64(1 + i%299)
		if i%10 < 9 {
			k = 0
		}
		r[i] = value.Tuple{k, int64(i)}
	}
	s := make(value.Bag, 3000)
	for i := range s {
		s[i] = value.Tuple{int64(i % 300), "name-of-supplier-" + string(rune('a'+i%26))}
	}
	env := flatAutoEnv()
	inputs := map[string]value.Bag{"R": r, "S": s}
	cfg := runner.DefaultConfig()
	cfg.Parallelism = 8
	cfg.Stats = collectStats(b, env, inputs, cfg.Parallelism)

	for _, strat := range []runner.Strategy{runner.Standard, runner.StandardSkew, runner.ShredUnshred, runner.Auto} {
		b.Run(strat.CLIName(), func(b *testing.B) {
			cq, err := runner.Compile(flatJoinQuery(), env, strat, cfg)
			if err != nil {
				b.Fatal(err)
			}
			rows, err := cq.InputRows(inputs)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := cq.ExecuteRows(context.Background(), rows, runner.NewRunContext(cfg, cq.Strategy))
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		})
	}
}
