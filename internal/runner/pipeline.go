package runner

import (
	"fmt"
	"time"

	"github.com/trance-go/trance/internal/core"
	"github.com/trance-go/trance/internal/dataflow"
	"github.com/trance-go/trance/internal/exec"
	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/shred"
	"github.com/trance-go/trance/internal/value"
)

// PipelineStep is one constituent query of a multi-step pipeline; it may
// reference the outputs of earlier steps by name.
type PipelineStep struct {
	Name  string
	Query nrc.Expr
}

// PipelineResult reports a pipeline run: per-step runtimes and the first
// failure, if any. In shredded strategies intermediate results stay shredded
// between steps (paper Section 4: shredded output feeds the next constituent
// query without reconstruction).
type PipelineResult struct {
	Strategy    Strategy
	StepElapsed []time.Duration
	FailedStep  int // -1 when every step completed
	Err         error
	Metrics     dataflow.Snapshot
	// Output is the final step's result dataset (top bag when shredded).
	Output *dataflow.Dataset
}

// Failed reports whether any step crashed.
func (r *PipelineResult) Failed() bool { return r.Err != nil }

// RunPipeline executes the steps in order under one strategy, binding each
// step's output as an input of later steps.
func RunPipeline(steps []PipelineStep, env nrc.Env, inputs map[string]value.Bag, strat Strategy, cfg Config) *PipelineResult {
	ctx := NewRunContext(cfg, strat)
	res := &PipelineResult{Strategy: strat, FailedStep: -1}

	// Accumulate step output types.
	scope := nrc.Env{}
	for k, v := range env {
		scope[k] = v
	}

	ex := exec.New(ctx)
	ex.SkewAware = strat.skewAware()

	if strat.IsShredded() {
		runPipelineShredded(steps, scope, inputs, ex, cfg, res)
	} else {
		runPipelineStandard(steps, scope, inputs, ex, cfg, res)
	}
	res.Metrics = ctx.Metrics.Snapshot()
	return res
}

func runPipelineStandard(steps []PipelineStep, scope nrc.Env, inputs map[string]value.Bag, ex *exec.Executor, cfg Config, res *PipelineResult) {
	for name, b := range inputs {
		ex.BindRows(name, rowsOf(b))
	}
	for i, st := range steps {
		t, err := nrc.Check(st.Query, scope)
		if err != nil {
			res.fail(i, fmt.Errorf("step %s: %w", st.Name, err))
			return
		}
		c, err := core.NewCompiler(scope)
		if err != nil {
			res.fail(i, err)
			return
		}
		c.NoPrune = cfg.NoColumnPruning
		op, err := c.Compile(st.Query)
		if err != nil {
			res.fail(i, fmt.Errorf("step %s compile: %w", st.Name, err))
			return
		}
		start := time.Now()
		out, err := ex.Run(op)
		if err == nil {
			out.Force() // charge trailing fused narrow work to this step
		}
		res.StepElapsed = append(res.StepElapsed, time.Since(start))
		if err != nil {
			res.fail(i, fmt.Errorf("step %s: %w", st.Name, err))
			return
		}
		ex.Bind(st.Name, out)
		scope[st.Name] = t
		res.Output = out
	}
}

func runPipelineShredded(steps []PipelineStep, scope nrc.Env, inputs map[string]value.Bag, ex *exec.Executor, cfg Config, res *PipelineResult) {
	// Value-shred the base inputs (input preparation, untimed).
	for name, b := range inputs {
		bt, ok := scope[name].(nrc.BagType)
		if !ok {
			res.fail(0, fmt.Errorf("input %s is not a bag", name))
			return
		}
		si, err := shred.ShredInput(name, b, bt)
		if err != nil {
			res.fail(0, err)
			return
		}
		for comp, rows := range si.Rows {
			ex.BindRows(comp, tuplesToRows(rows))
		}
	}

	for i, st := range steps {
		t, err := nrc.Check(st.Query, scope)
		if err != nil {
			res.fail(i, fmt.Errorf("step %s: %w", st.Name, err))
			return
		}
		mat, err := shred.ShredQuery(st.Query, scope, st.Name, shred.Options{DomainElimination: cfg.DomainElimination})
		if err != nil {
			res.fail(i, fmt.Errorf("step %s shredding: %w", st.Name, err))
			return
		}
		cenv := nrc.Env{}
		for name, it := range scope {
			b, ok := it.(nrc.BagType)
			if !ok {
				continue
			}
			ienv, err := shred.InputEnv(name, b)
			if err != nil {
				res.fail(i, err)
				return
			}
			for k, v := range ienv {
				cenv[k] = v
			}
		}
		c, err := core.NewCompiler(cenv)
		if err != nil {
			res.fail(i, err)
			return
		}
		c.NoPrune = cfg.NoColumnPruning
		stmts, err := c.CompileProgram(mat.Program)
		if err != nil {
			res.fail(i, fmt.Errorf("step %s compile: %w", st.Name, err))
			return
		}
		start := time.Now()
		outs, err := ex.RunProgram(stmts)
		res.StepElapsed = append(res.StepElapsed, time.Since(start))
		if err != nil {
			res.fail(i, fmt.Errorf("step %s: %w", st.Name, err))
			return
		}
		// Register the step's shredded output as an input of later steps
		// under the MatName convention.
		ex.Bind(shred.MatName(st.Name, nil), outs[mat.TopName])
		scope[st.Name] = t
		res.Output = outs[mat.TopName]
	}
}

func (r *PipelineResult) fail(step int, err error) {
	r.FailedStep = step
	r.Err = err
}
