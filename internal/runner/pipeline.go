package runner

import (
	"context"
	"fmt"
	"time"

	"github.com/trance-go/trance/internal/dataflow"
	"github.com/trance-go/trance/internal/exec"
	"github.com/trance-go/trance/internal/index"
	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/shred"
	"github.com/trance-go/trance/internal/value"
)

// PipelineStep is one constituent query of a multi-step pipeline; it may
// reference the outputs of earlier steps by name.
type PipelineStep struct {
	Name  string
	Query nrc.Expr
}

// PipelineResult reports a pipeline run: per-step runtimes and the first
// failure, if any. In shredded strategies intermediate results stay shredded
// between steps (paper Section 4: shredded output feeds the next constituent
// query without reconstruction); only the final step unshreds under the
// unshredding strategies. The whole pipeline typechecks and compiles before
// any step executes, so a malformed step fails the run with an empty
// StepElapsed rather than after earlier steps have burned time.
type PipelineResult struct {
	Strategy    Strategy
	StepElapsed []time.Duration
	FailedStep  int // -1 when every step completed
	Err         error
	Metrics     dataflow.Snapshot
	// Output is the final step's result dataset (top bag when shredded
	// without unshredding).
	Output *dataflow.Dataset
}

// Failed reports whether any step crashed.
func (r *PipelineResult) Failed() bool { return r.Err != nil }

func (r *PipelineResult) fail(step int, err error) {
	r.FailedStep = step
	r.Err = err
}

// StepError tags a pipeline typecheck/compile failure with the step it
// occurred in, so callers can report "step 2 of 5" without parsing messages.
type StepError struct {
	Step int
	Name string
	Err  error
}

func (e *StepError) Error() string {
	return fmt.Sprintf("step %s (#%d): %v", e.Name, e.Step+1, e.Err)
}

func (e *StepError) Unwrap() error { return e.Err }

// ResolveSteps typechecks the steps in order against the base environment
// and returns, per step, the environment the step compiles against (the base
// env plus the output types of every prior step) and the step's checked
// output type. These per-step environments are what makes prepared-pipeline
// fingerprints env-aware: a step's cache key covers the resolved types of the
// outputs it consumes.
func ResolveSteps(steps []PipelineStep, env nrc.Env) (envs []nrc.Env, outs []nrc.Type, err error) {
	if len(steps) == 0 {
		return nil, nil, fmt.Errorf("pipeline has no steps")
	}
	scope := nrc.Env{}
	for k, v := range env {
		scope[k] = v
	}
	for i, st := range steps {
		if st.Name == "" {
			return nil, nil, &StepError{Step: i, Name: "?", Err: fmt.Errorf("step has no name")}
		}
		if _, dup := scope[st.Name]; dup {
			return nil, nil, &StepError{Step: i, Name: st.Name, Err: fmt.Errorf("name already bound")}
		}
		t, err := nrc.Check(st.Query, scope)
		if err != nil {
			return nil, nil, &StepError{Step: i, Name: st.Name, Err: err}
		}
		stepEnv := nrc.Env{}
		for k, v := range scope {
			stepEnv[k] = v
		}
		envs = append(envs, stepEnv)
		outs = append(outs, t)
		scope[st.Name] = t
	}
	return envs, outs, nil
}

// StepStrategy is the effective strategy for one step: intermediate steps of
// an unshredding pipeline stay shredded (their consumers read the shredded
// components directly), only the last step pays for unshredding.
func StepStrategy(strat Strategy, last bool) Strategy {
	if last || !strat.unshreds() {
		return strat
	}
	if strat == ShredUnshredSkew {
		return ShredSkew
	}
	return Shred
}

// CompiledStep is one compiled constituent of a CompiledPipeline.
type CompiledStep struct {
	Name string
	// Out is the step's checked (nested) output type.
	Out nrc.Type
	// CQ is the step's compiled artifact under the step's effective strategy.
	CQ *Compiled
}

// CompiledPipeline holds the per-step compiled artifacts of a pipeline. Like
// Compiled, it is immutable after construction and safe to Execute from many
// goroutines at once over different inputs.
type CompiledPipeline struct {
	Strategy Strategy
	Cfg      Config
	Steps    []CompiledStep
}

// CompilePipeline typechecks and compiles every step up front (each against
// the base env extended with prior outputs). Serving paths that run the same
// pipeline repeatedly should compile the steps through a plan cache instead
// and assemble the CompiledPipeline themselves — the root package's
// PreparePipeline does.
func CompilePipeline(steps []PipelineStep, env nrc.Env, strat Strategy, cfg Config) (*CompiledPipeline, error) {
	envs, outs, err := ResolveSteps(steps, env)
	if err != nil {
		return nil, err
	}
	cp := &CompiledPipeline{Strategy: strat, Cfg: cfg}
	for i, st := range steps {
		eff := StepStrategy(strat, i == len(steps)-1)
		cq, err := CompileStep(st.Query, envs[i], eff, cfg, st.Name)
		if err != nil {
			return nil, &StepError{Step: i, Name: st.Name, Err: err}
		}
		cp.Steps = append(cp.Steps, CompiledStep{Name: st.Name, Out: outs[i], CQ: cq})
	}
	return cp, nil
}

// Execute runs the compiled steps in order over one set of inputs on the
// given dataflow context: InputRows + ExecuteRows. All steps share one
// executor, so each step's output — the nested dataset on standard routes,
// the materialized shredded components on shredded routes — is visible to
// later steps without re-conversion. Input preparation stays outside the
// timed region.
func (cp *CompiledPipeline) Execute(ctx context.Context, inputs map[string]value.Bag, dctx *dataflow.Context) *PipelineResult {
	rows, err := cp.Steps[0].CQ.InputRows(inputs)
	if err != nil {
		return &PipelineResult{Strategy: cp.Strategy, FailedStep: 0, Err: err, Metrics: dctx.Metrics.Snapshot()}
	}
	return cp.ExecuteRows(ctx, rows, dctx)
}

// ExecuteRows is Execute over pre-converted input rows (the first step's
// Compiled.InputRows); serving paths evaluating a fixed dataset repeatedly
// compute the conversion once and pass it here.
func (cp *CompiledPipeline) ExecuteRows(ctx context.Context, rows map[string][]dataflow.Row, dctx *dataflow.Context) *PipelineResult {
	return cp.ExecuteRowsIndexed(ctx, rows, nil, dctx)
}

// ExecuteRowsIndexed is ExecuteRows with bound secondary indexes, keyed like
// rows for the pipeline's route (see Compiled.MapIndexes); IndexScan nodes of
// any step resolve spans against them.
func (cp *CompiledPipeline) ExecuteRowsIndexed(ctx context.Context, rows map[string][]dataflow.Row, idxs map[string]*index.Set, dctx *dataflow.Context) *PipelineResult {
	res := &PipelineResult{Strategy: cp.Strategy, FailedStep: -1}
	func() {
		var err error
		step := 0
		defer func() {
			if err != nil && res.Err == nil {
				res.fail(step, err)
			}
		}()
		defer recoverTo(&err, "pipeline execute")

		ex := exec.New(dctx)
		ex.SkewAware = cp.Strategy.skewAware()
		ex.Indexes = idxs
		for name, r := range rows {
			ex.BindRows(name, r)
		}
		for i, st := range cp.Steps {
			step = i
			sres := &Result{Strategy: st.CQ.Strategy, Mat: st.CQ.Mat}
			st.CQ.runOn(ctx, ex, sres, nil)
			res.StepElapsed = append(res.StepElapsed, sres.Elapsed)
			if sres.Err != nil {
				err = fmt.Errorf("step %s: %w", st.Name, sres.Err)
				return
			}
			res.Output = sres.Output
			if i == len(cp.Steps)-1 {
				break
			}
			// Bind the step's output as an input of later steps: the nested
			// dataset under the step name, or the shredded top bag under the
			// MatName convention (the step's dictionaries were already bound
			// per materialized assignment by the shredded executor).
			if st.CQ.Strategy.IsShredded() {
				ex.Bind(shred.MatName(st.Name, nil), sres.Shredded[st.CQ.Mat.TopName])
			} else {
				ex.Bind(st.Name, sres.Output)
			}
		}
	}()
	res.Metrics = dctx.Metrics.Snapshot()
	return res
}

// RunPipeline executes the steps in order under one strategy, binding each
// step's output as an input of later steps: one-shot compile + execute.
// Serving paths should use the root package's PreparePipeline, which reuses
// the process-wide plan cache across calls.
func RunPipeline(steps []PipelineStep, env nrc.Env, inputs map[string]value.Bag, strat Strategy, cfg Config) *PipelineResult {
	cp, err := CompilePipeline(steps, env, strat, cfg)
	if err != nil {
		res := &PipelineResult{Strategy: strat, FailedStep: 0, Err: err}
		if se, ok := err.(*StepError); ok {
			res.FailedStep = se.Step
		}
		return res
	}
	return cp.Execute(context.Background(), inputs, NewRunContext(cfg, strat))
}
