// Golden EXPLAIN fixtures: the before/after-optimizer plans of the TPC-H
// query classes (levels 0–2), the selective pushdown benchmark queries, and
// the biomedical pipeline are pinned under testdata/*.explain so optimizer
// plan changes show up as reviewable diffs. Regenerate with
//
//	go test ./internal/runner -run TestGoldenExplains -update
package runner_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/trance-go/trance/internal/biomed"
	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/plan"
	"github.com/trance-go/trance/internal/runner"
	"github.com/trance-go/trance/internal/stats"
	"github.com/trance-go/trance/internal/tpch"
	"github.com/trance-go/trance/internal/value"
)

var update = flag.Bool("update", false, "rewrite golden explain fixtures")

func TestGoldenExplains(t *testing.T) {
	cfg := runner.DefaultConfig()
	write := func(name, content string) {
		t.Helper()
		path := filepath.Join("testdata", name)
		if *update {
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden fixture %s (regenerate with -update): %v", path, err)
		}
		if string(want) != content {
			t.Errorf("%s differs from golden fixture (regenerate with -update after reviewing):\n%s",
				path, firstDiff(string(want), content))
		}
	}

	for _, class := range []tpch.QueryClass{tpch.FlatToNested, tpch.NestedToNested, tpch.NestedToFlat} {
		for level := 0; level <= 2; level++ {
			var sb strings.Builder
			q := tpch.Query(class, level, false)
			env := tpch.Env(class, level, false)
			for _, strat := range []runner.Strategy{runner.Standard, runner.ShredUnshred} {
				cq, err := runner.Compile(q, env, strat, cfg)
				if err != nil {
					t.Fatalf("%s L%d %s: %v", class, level, strat, err)
				}
				sb.WriteString(cq.Explain())
				sb.WriteString("\n")
			}
			write(fmt.Sprintf("tpch-%s-l%d.explain", class, level), sb.String())
		}
	}

	// The selective pushdown benchmark queries.
	{
		var sb strings.Builder
		q := tpch.NestedToFlatSelective(2)
		env := tpch.Env(tpch.NestedToFlat, 2, false)
		for _, strat := range []runner.Strategy{runner.Standard, runner.ShredUnshred} {
			cq, err := runner.Compile(q, env, strat, cfg)
			if err != nil {
				t.Fatalf("selective L2 %s: %v", strat, err)
			}
			sb.WriteString(cq.Explain())
			sb.WriteString("\n")
		}
		write("tpch-selective-l2.explain", sb.String())
	}
	{
		var sb strings.Builder
		cq, err := runner.Compile(biomed.SelectiveBurden(), biomed.Env(), runner.Standard, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sb.WriteString(cq.Explain())
		write("biomed-selective.explain", sb.String())
	}

	// The all-narrow Q6-style scan pipeline of the vectorize ablation: every
	// operator annotated, two [vec] and one fallback with its reason.
	{
		var sb strings.Builder
		for _, strat := range []runner.Strategy{runner.Standard, runner.ShredUnshred} {
			cq, err := runner.Compile(tpch.FlatSelective(), tpch.FlatEnv(), strat, cfg)
			if err != nil {
				t.Fatalf("flat selective %s: %v", strat, err)
			}
			sb.WriteString(cq.Explain())
			sb.WriteString("\n")
		}
		write("tpch-flat-selective.explain", sb.String())
	}

	// The five-step biomedical pipeline under the standard route.
	{
		cp, err := runner.CompilePipeline(biomed.Steps(), biomed.Env(), runner.Standard, cfg)
		if err != nil {
			t.Fatal(err)
		}
		write("biomed-pipeline.explain", cp.ExplainPipeline())
	}

	// Cost-annotated plans: the same flat-to-nested query compiled against
	// statistics of a small and a large generated database. At laptop scale
	// every join side fits under the default 64 KB broadcast limit; at the
	// large scale the base relations exceed it, so the identical query flips
	// from broadcast to shuffle joins — the flip the fixtures pin.
	for _, sc := range []struct {
		name string
		gen  tpch.Config
	}{
		{name: "tpch-cost-small.explain",
			gen: tpch.Config{Customers: 20, OrdersPerCustomer: 2, LinesPerOrder: 2, Parts: 10, Seed: 1}},
		{name: "tpch-cost-large.explain",
			gen: tpch.Config{Customers: 400, OrdersPerCustomer: 5, LinesPerOrder: 5, Parts: 5000, Seed: 1}},
	} {
		env := tpch.Env(tpch.FlatToNested, 1, false)
		scfg := cfg
		scfg.Stats = collectTpchStats(env, tpch.Generate(sc.gen).Inputs())
		var sb strings.Builder
		q := tpch.Query(tpch.FlatToNested, 1, false)
		for _, strat := range []runner.Strategy{runner.Standard, runner.ShredUnshred} {
			cq, err := runner.Compile(q, env, strat, scfg)
			if err != nil {
				t.Fatalf("%s %s: %v", sc.name, strat, err)
			}
			sb.WriteString(cq.Explain())
			sb.WriteString("\n")
		}
		write(sc.name, sb.String())
	}
}

// collectTpchStats gathers statistics for every generated relation the
// environment declares, keyed by input name as plan.Annotate expects.
func collectTpchStats(env nrc.Env, inputs map[string]value.Bag) map[string]plan.TableEstimate {
	ests := map[string]plan.TableEstimate{}
	for name, typ := range env {
		bt, ok := typ.(nrc.BagType)
		if !ok {
			continue
		}
		ests[name] = stats.Collect(inputs[name], bt, stats.Options{}).Estimate()
	}
	return ests
}

// firstDiff returns a compact report of the first differing line.
func firstDiff(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n- %s\n+ %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("length differs: want %d lines, got %d", len(wl), len(gl))
}

// TestExplainsAreDeterministic compiles the same query twice and requires
// byte-identical Explain output — the property the golden fixtures rely on.
func TestExplainsAreDeterministic(t *testing.T) {
	cfg := runner.DefaultConfig()
	for _, strat := range []runner.Strategy{runner.Standard, runner.ShredUnshred} {
		a, err := runner.Compile(tpch.Query(tpch.NestedToNested, 2, false), tpch.Env(tpch.NestedToNested, 2, false), strat, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := runner.Compile(tpch.Query(tpch.NestedToNested, 2, false), tpch.Env(tpch.NestedToNested, 2, false), strat, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.Explain() != b.Explain() {
			t.Fatalf("%s: explain output is nondeterministic", strat)
		}
	}
}
