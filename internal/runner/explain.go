package runner

import (
	"fmt"
	"strings"

	"github.com/trance-go/trance/internal/plan"
)

// Explain renders every compiled plan of the artifact, showing the plan
// before and after the rule-based optimizer pass (predicate pushdown, select
// fusion, constant folding) plus the optimizer's rule-hit counters. Plans the
// optimizer left unchanged are printed once. The output backs
// `trance query -explain`, the tranced GET /explain route, and the golden
// fixtures under internal/runner/testdata.
func (cq *Compiled) Explain() string {
	var sb strings.Builder
	if cq.Requested == Auto {
		fmt.Fprintf(&sb, "strategy: %s (auto-selected)\n", cq.Strategy)
		for _, r := range cq.AutoReasons {
			fmt.Fprintf(&sb, "auto: %s\n", r)
		}
	} else {
		fmt.Fprintf(&sb, "strategy: %s\n", cq.Strategy)
	}
	if cq.Cfg.NoPredicatePushdown {
		sb.WriteString("optimizer: disabled (NoPredicatePushdown)\n")
	} else {
		fmt.Fprintf(&sb, "optimizer: %s\n", cq.Opt.String())
	}
	if cq.Cfg.NoVectorize {
		sb.WriteString("vectorize: disabled (NoVectorize)\n")
	} else {
		fmt.Fprintf(&sb, "vectorize: %s\n", cq.Vec.String())
	}
	if cq.Cfg.NoIndexScan {
		sb.WriteString("index: disabled (NoIndexScan)\n")
	} else if cq.Idx.Planned > 0 {
		fmt.Fprintf(&sb, "index: %s\n", cq.Idx.String())
	}
	if cq.Plan != nil {
		explainPair(&sb, "plan", cq.RawPlan, cq.Plan)
	}
	for i, st := range cq.Stmts {
		var raw plan.Op
		if i < len(cq.RawStmts) {
			raw = cq.RawStmts[i].Plan
		}
		explainPair(&sb, "assignment "+st.Name, raw, st.Plan)
	}
	if cq.Unshred != nil {
		explainPair(&sb, "unshred plan", cq.RawUnshred, cq.Unshred)
	}
	return sb.String()
}

// explainPair prints one plan section; when the optimizer changed the plan,
// both the before and after trees are shown.
func explainPair(sb *strings.Builder, what string, raw, opt plan.Op) {
	after := plan.Explain(opt)
	if raw == nil {
		fmt.Fprintf(sb, "=== %s ===\n%s", what, after)
		return
	}
	before := plan.Explain(raw)
	if before == after {
		fmt.Fprintf(sb, "=== %s (unchanged by optimizer) ===\n%s", what, after)
		return
	}
	fmt.Fprintf(sb, "=== %s (before optimizer) ===\n%s", what, before)
	fmt.Fprintf(sb, "=== %s (after optimizer) ===\n%s", what, after)
}

// ExplainPipeline renders the Explain of every step of a compiled pipeline.
func (cp *CompiledPipeline) ExplainPipeline() string {
	var sb strings.Builder
	for i, st := range cp.Steps {
		fmt.Fprintf(&sb, "--- step %d: %s ---\n%s", i+1, st.Name, st.CQ.Explain())
	}
	return sb.String()
}
