package runner

import (
	"fmt"
	"strings"
	"time"

	"github.com/trance-go/trance/internal/plan"
)

// Explain renders every compiled plan of the artifact, showing the plan
// before and after the rule-based optimizer pass (predicate pushdown, select
// fusion, constant folding) plus the optimizer's rule-hit counters. Plans the
// optimizer left unchanged are printed once. The output backs
// `trance query -explain`, the tranced GET /explain route, and the golden
// fixtures under internal/runner/testdata.
func (cq *Compiled) Explain() string {
	var sb strings.Builder
	cq.explainHeader(&sb)
	if cq.Plan != nil {
		explainPair(&sb, "plan", cq.RawPlan, cq.Plan)
	}
	for i, st := range cq.Stmts {
		var raw plan.Op
		if i < len(cq.RawStmts) {
			raw = cq.RawStmts[i].Plan
		}
		explainPair(&sb, "assignment "+st.Name, raw, st.Plan)
	}
	if cq.Unshred != nil {
		explainPair(&sb, "unshred plan", cq.RawUnshred, cq.Unshred)
	}
	return sb.String()
}

// explainHeader writes the strategy/optimizer/vectorize/index preamble shared
// by Explain and ExplainAnalyze.
func (cq *Compiled) explainHeader(sb *strings.Builder) {
	if cq.Requested == Auto {
		fmt.Fprintf(sb, "strategy: %s (auto-selected)\n", cq.Strategy)
		for _, r := range cq.AutoReasons {
			fmt.Fprintf(sb, "auto: %s\n", r)
		}
	} else {
		fmt.Fprintf(sb, "strategy: %s\n", cq.Strategy)
	}
	if cq.Cfg.NoPredicatePushdown {
		sb.WriteString("optimizer: disabled (NoPredicatePushdown)\n")
	} else {
		fmt.Fprintf(sb, "optimizer: %s\n", cq.Opt.String())
	}
	if cq.Cfg.NoVectorize {
		sb.WriteString("vectorize: disabled (NoVectorize)\n")
	} else {
		fmt.Fprintf(sb, "vectorize: %s\n", cq.Vec.String())
	}
	if cq.Cfg.NoIndexScan {
		sb.WriteString("index: disabled (NoIndexScan)\n")
	} else if cq.Idx.Planned > 0 {
		fmt.Fprintf(sb, "index: %s\n", cq.Idx.String())
	}
}

// ExplainAnalyze renders the compiled plans annotated with the per-operator
// runtime statistics of one execution (res must come from a run with
// ExecOptions.Analysis set). Each operator line gains actual rows, wall time,
// and batch counts beside its static [est_rows=…] annotation; joins and index
// scans additionally get a q-error summary block comparing the optimizer's
// cardinality estimate against the observed row count.
func (cq *Compiled) ExplainAnalyze(res *Result) string {
	var sb strings.Builder
	cq.explainHeader(&sb)
	a := res.Analyze
	if a == nil {
		sb.WriteString("analyze: no runtime statistics collected (run with analyze enabled)\n")
		return sb.String()
	}
	wall := map[string]time.Duration{}
	for _, st := range res.Metrics.StageWall {
		wall[st.Stage] += st.Wall
	}
	// Shuffle stages are named under the operator's base stage plus a side
	// suffix ("join#1/L"); node stats carry the base name, so the exchange
	// accounting aggregates under the text before the first '/'.
	exch := map[string]plan.ExchangeStat{}
	for _, se := range res.Metrics.StageExchange {
		base := se.Stage
		if i := strings.IndexByte(base, '/'); i >= 0 {
			base = base[:i]
		}
		cur := exch[base]
		cur.ColumnarBuffers += se.ColumnarBuffers
		cur.BoxedBuffers += se.BoxedBuffers
		cur.ColumnarBytes += se.ColumnarBytes
		cur.BoxedBytes += se.BoxedBytes
		exch[base] = cur
	}
	if cq.Plan != nil {
		fmt.Fprintf(&sb, "=== plan (analyzed) ===\n%s", plan.ExplainAnalyzed(cq.Plan, a, wall, exch))
	}
	for _, st := range cq.Stmts {
		fmt.Fprintf(&sb, "=== assignment %s (analyzed) ===\n%s", st.Name, plan.ExplainAnalyzed(st.Plan, a, wall, exch))
	}
	if cq.Unshred != nil {
		fmt.Fprintf(&sb, "=== unshred plan (analyzed) ===\n%s", plan.ExplainAnalyzed(cq.Unshred, a, wall, exch))
	}
	qerrs := cq.qErrors(a)
	if len(qerrs) > 0 {
		sb.WriteString("=== q-error (estimate vs actual) ===\n")
		for _, q := range qerrs {
			fmt.Fprintf(&sb, "q-error %.2f  est=%d actual=%d  %s\n", q.Q, q.Est, q.Actual, q.Node)
		}
	}
	fmt.Fprintf(&sb, "execution: wall=%s shuffled=%dB rows_shuffled=%d\n",
		res.Elapsed.Round(time.Microsecond), res.Metrics.ShuffleBytes, res.Metrics.ShuffleRecords)
	if e := res.Metrics.Exchange; e.ColumnarBuffers+e.BoxedBuffers > 0 {
		fmt.Fprintf(&sb, "exchange: columnar_buffers=%d boxed_buffers=%d columnar_bytes=%dB boxed_bytes=%dB\n",
			e.ColumnarBuffers, e.BoxedBuffers, e.ColumnarBytes, e.BoxedBytes)
	}
	return sb.String()
}

// qErrors collects estimate-vs-actual ratios from every compiled plan tree.
func (cq *Compiled) qErrors(a *plan.Analysis) []plan.QError {
	var out []plan.QError
	if cq.Plan != nil {
		out = append(out, plan.QErrors(cq.Plan, a)...)
	}
	for _, st := range cq.Stmts {
		out = append(out, plan.QErrors(st.Plan, a)...)
	}
	if cq.Unshred != nil {
		out = append(out, plan.QErrors(cq.Unshred, a)...)
	}
	return out
}

// explainPair prints one plan section; when the optimizer changed the plan,
// both the before and after trees are shown.
func explainPair(sb *strings.Builder, what string, raw, opt plan.Op) {
	after := plan.Explain(opt)
	if raw == nil {
		fmt.Fprintf(sb, "=== %s ===\n%s", what, after)
		return
	}
	before := plan.Explain(raw)
	if before == after {
		fmt.Fprintf(sb, "=== %s (unchanged by optimizer) ===\n%s", what, after)
		return
	}
	fmt.Fprintf(sb, "=== %s (before optimizer) ===\n%s", what, before)
	fmt.Fprintf(sb, "=== %s (after optimizer) ===\n%s", what, after)
}

// ExplainPipeline renders the Explain of every step of a compiled pipeline.
func (cp *CompiledPipeline) ExplainPipeline() string {
	var sb strings.Builder
	for i, st := range cp.Steps {
		fmt.Fprintf(&sb, "--- step %d: %s ---\n%s", i+1, st.Name, st.CQ.Explain())
	}
	return sb.String()
}
