package runner

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/trance-go/trance/internal/dataflow"
	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/testdata"
	"github.com/trance-go/trance/internal/value"
)

func TestStrategyNames(t *testing.T) {
	names := map[Strategy]string{
		Standard:      "STANDARD",
		SparkSQLStyle: "SPARK-SQL",
		Shred:         "SHRED",
		ShredUnshred:  "SHRED+UNSHRED",
		ShredSkew:     "SHRED-SKEW",
	}
	for s, want := range names {
		if s.String() != want {
			t.Fatalf("%d: got %s want %s", s, s, want)
		}
	}
	if !Shred.IsShredded() || Standard.IsShredded() {
		t.Fatal("IsShredded wrong")
	}
	if !ShredSkew.skewAware() || Shred.skewAware() {
		t.Fatal("skewAware wrong")
	}
	if !ShredUnshred.unshreds() || Shred.unshreds() {
		t.Fatal("unshreds wrong")
	}
}

func TestRunReportsCompileErrors(t *testing.T) {
	q := nrc.ForIn("x", nrc.V("Missing"), nrc.SingOf(nrc.Record("a", nrc.C(1))))
	res := Run(Job{Query: q, Env: nrc.Env{}, Inputs: nil}, Standard, DefaultConfig())
	if !res.Failed() {
		t.Fatal("unbound input must fail")
	}
}

func TestRunShredExposesMaterializedProgram(t *testing.T) {
	inputs := map[string]value.Bag{"COP": testdata.SmallCOP(), "Part": testdata.SmallPart()}
	res := Run(Job{Query: testdata.RunningExample(), Env: testdata.Env(), Inputs: inputs},
		Shred, DefaultConfig())
	if res.Failed() {
		t.Fatal(res.Err)
	}
	if res.Mat == nil || len(res.Mat.Dicts) != 2 {
		t.Fatalf("materialized metadata missing: %+v", res.Mat)
	}
	if res.Shredded[res.Mat.TopName] == nil {
		t.Fatal("top bag dataset missing")
	}
	for _, d := range res.Mat.Dicts {
		if res.Shredded[d.Name] == nil {
			t.Fatalf("dictionary %s dataset missing", d.Name)
		}
	}
}

func TestPipelineFailurePropagates(t *testing.T) {
	steps := []PipelineStep{
		{Name: "S1", Query: nrc.ForIn("x", nrc.V("R"), nrc.SingOf(nrc.Record("a", nrc.P(nrc.V("x"), "a"))))},
		{Name: "S2", Query: nrc.ForIn("x", nrc.V("Nope"), nrc.SingOf(nrc.Record("a", nrc.P(nrc.V("x"), "a"))))},
	}
	env := nrc.Env{"R": nrc.BagOf(nrc.Tup("a", nrc.IntT))}
	inputs := map[string]value.Bag{"R": {value.Tuple{int64(1)}}}
	res := RunPipeline(steps, env, inputs, Standard, DefaultConfig())
	if !res.Failed() || res.FailedStep != 1 {
		t.Fatalf("expected failure at step 1, got %d / %v", res.FailedStep, res.Err)
	}
	// The whole pipeline compiles before anything executes, so a malformed
	// later step fails the run without burning time on earlier steps.
	if len(res.StepElapsed) != 0 {
		t.Fatalf("no step should have executed: %v", res.StepElapsed)
	}
}

func TestPipelineDuplicateStepName(t *testing.T) {
	mk := func() nrc.Expr {
		return nrc.ForIn("x", nrc.V("R"), nrc.SingOf(nrc.Record("a", nrc.P(nrc.V("x"), "a"))))
	}
	steps := []PipelineStep{{Name: "S1", Query: mk()}, {Name: "S1", Query: mk()}}
	env := nrc.Env{"R": nrc.BagOf(nrc.Tup("a", nrc.IntT))}
	res := RunPipeline(steps, env, map[string]value.Bag{"R": {}}, Standard, DefaultConfig())
	if !res.Failed() || res.FailedStep != 1 {
		t.Fatalf("duplicate step name must fail at step 1: %d / %v", res.FailedStep, res.Err)
	}
}

// A pipeline under an unshredding strategy keeps intermediate results
// shredded and unshreds only the final output, which must agree with the
// standard route.
func TestPipelineShredUnshredFinalStep(t *testing.T) {
	env := nrc.Env{"R": nrc.BagOf(nrc.Tup(
		"k", nrc.IntT,
		"items", nrc.BagOf(nrc.Tup("v", nrc.IntT)),
	))}
	inputs := map[string]value.Bag{"R": {
		value.Tuple{int64(1), value.Bag{value.Tuple{int64(10)}, value.Tuple{int64(3)}}},
		value.Tuple{int64(2), value.Bag{}},
	}}
	mkSteps := func() []PipelineStep {
		return []PipelineStep{
			{Name: "Big", Query: nrc.ForIn("r", nrc.V("R"),
				nrc.SingOf(nrc.Record(
					"k", nrc.P(nrc.V("r"), "k"),
					"big", nrc.ForIn("it", nrc.P(nrc.V("r"), "items"),
						nrc.IfThen(nrc.GtOf(nrc.P(nrc.V("it"), "v"), nrc.C(int64(5))),
							nrc.SingOf(nrc.V("it")))))))},
			{Name: "Out", Query: nrc.ForIn("b", nrc.V("Big"),
				nrc.SingOf(nrc.Record(
					"k2", nrc.P(nrc.V("b"), "k"),
					"big2", nrc.P(nrc.V("b"), "big"))))},
		}
	}
	std := RunPipeline(mkSteps(), env, inputs, Standard, DefaultConfig())
	shr := RunPipeline(mkSteps(), env, inputs, ShredUnshred, DefaultConfig())
	if std.Failed() || shr.Failed() {
		t.Fatalf("std=%v shr=%v", std.Err, shr.Err)
	}
	var a, b value.Bag
	for _, r := range std.Output.CollectSorted() {
		a = append(a, value.Tuple(r))
	}
	for _, r := range shr.Output.CollectSorted() {
		b = append(b, value.Tuple(r))
	}
	if !value.Equal(a, b) {
		t.Fatalf("unshredded pipeline output differs:\n got %s\nwant %s", value.Format(b), value.Format(a))
	}
}

func TestNoColumnPruningStillCorrect(t *testing.T) {
	inputs := map[string]value.Bag{"COP": testdata.SmallCOP(), "Part": testdata.SmallPart()}
	cfg := DefaultConfig()
	cfg.NoColumnPruning = true
	a := Run(Job{Query: testdata.RunningExample(), Env: testdata.Env(), Inputs: inputs}, Standard, cfg)
	b := Run(Job{Query: testdata.RunningExample(), Env: testdata.Env(), Inputs: inputs}, Standard, DefaultConfig())
	if a.Failed() || b.Failed() {
		t.Fatalf("%v / %v", a.Err, b.Err)
	}
	ab := make(value.Bag, 0)
	for _, r := range a.Output.Collect() {
		ab = append(ab, value.Tuple(r))
	}
	bb := make(value.Bag, 0)
	for _, r := range b.Output.Collect() {
		bb = append(bb, value.Tuple(r))
	}
	if !value.Equal(ab, bb) {
		t.Fatal("pruning changed results")
	}
	if a.Metrics.ShuffleBytes < b.Metrics.ShuffleBytes {
		t.Fatal("pruning should not increase shuffle volume")
	}
}

// Compile once, execute twice (different contexts): results must match the
// one-shot Run and each other, proving compiled artifacts carry no per-run
// state.
func TestCompileOnceExecuteMany(t *testing.T) {
	inputs := map[string]value.Bag{"COP": testdata.SmallCOP(), "Part": testdata.SmallPart()}
	cfg := DefaultConfig()
	for _, strat := range []Strategy{Standard, ShredUnshred} {
		cq, err := Compile(testdata.RunningExample(), testdata.Env(), strat, cfg)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		want := Run(Job{Query: testdata.RunningExample(), Env: testdata.Env(), Inputs: inputs}, strat, cfg)
		if want.Failed() {
			t.Fatalf("%s run: %v", strat, want.Err)
		}
		for i := 0; i < 2; i++ {
			res := cq.Execute(context.Background(), inputs, NewRunContext(cfg, strat))
			if res.Failed() {
				t.Fatalf("%s execute %d: %v", strat, i, res.Err)
			}
			if got, exp := bagOfRows(res.Output.Collect()), bagOfRows(want.Output.Collect()); !value.Equal(got, exp) {
				t.Fatalf("%s execute %d differs from Run:\n got %s\nwant %s",
					strat, i, value.Format(got), value.Format(exp))
			}
		}
	}
}

func bagOfRows(rows []dataflow.Row) value.Bag {
	out := make(value.Bag, 0, len(rows))
	for _, r := range rows {
		out = append(out, value.Tuple(r))
	}
	return out
}

// Malformed input data (a raw Go int is not a value-model scalar) used to
// panic a partition task and kill the process; it must now degrade to
// Result.Err.
func TestExecutePanicBecomesError(t *testing.T) {
	env := nrc.Env{"R": nrc.BagOf(nrc.Tup("a", nrc.IntT))}
	q := nrc.ForIn("x", nrc.V("R"),
		nrc.SingOf(nrc.Record("b", nrc.AddOf(nrc.P(nrc.V("x"), "a"), nrc.C(int64(1))))))
	bad := map[string]value.Bag{"R": {value.Tuple{int(7)}}}
	res := Run(Job{Query: q, Env: env, Inputs: bad}, Standard, DefaultConfig())
	if !res.Failed() {
		t.Fatal("malformed input data must fail the run, not crash or succeed")
	}
	if !strings.Contains(res.Err.Error(), "panic") {
		t.Fatalf("error should mention the recovered panic: %v", res.Err)
	}
}

// Cancelling the context aborts a shredded execution between statements.
func TestExecuteHonorsCancellation(t *testing.T) {
	inputs := map[string]value.Bag{"COP": testdata.SmallCOP(), "Part": testdata.SmallPart()}
	cq, err := Compile(testdata.RunningExample(), testdata.Env(), Shred, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := cq.Execute(ctx, inputs, NewRunContext(DefaultConfig(), Shred))
	if !res.Failed() || !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", res.Err)
	}
}
