// Package runner orchestrates the evaluation strategies compared in the
// paper's experiments (Section 6): the standard compilation route, the
// shredded route with and without unshredding, their skew-aware variants, and
// a SparkSQL-style flattening baseline.
package runner

import (
	"context"
	"time"

	"github.com/trance-go/trance/internal/dataflow"
	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/plan"
	"github.com/trance-go/trance/internal/shred"
	"github.com/trance-go/trance/internal/value"
)

// Strategy selects an evaluation route.
type Strategy int

// The strategies of the paper's evaluation.
const (
	// Standard is the standard compilation route (paper Section 3).
	Standard Strategy = iota
	// SparkSQLStyle models the paper's SparkSQL competitor: flattening with
	// operators kept at their source relations (no partitioning-guarantee
	// reuse, no cogroup fusion, no shredding).
	SparkSQLStyle
	// Shred is shredded compilation with domain elimination, leaving the
	// output in shredded (materialized dictionary) form.
	Shred
	// ShredUnshred additionally restores the nested output.
	ShredUnshred
	// StandardSkew is Standard with skew-aware operators.
	StandardSkew
	// ShredSkew is Shred with skew-aware operators.
	ShredSkew
	// ShredUnshredSkew is ShredUnshred with skew-aware operators.
	ShredUnshredSkew
	// Auto picks a concrete route per query at compile time from dataset
	// statistics (Config.Stats): a skew-aware variant when a scanned input's
	// heavy-key fraction exceeds Config.AutoSkewFraction, the shredded route
	// (with unshredding, so the output shape matches Standard) when a
	// selective pushed-down predicate lands on a nested input, Standard
	// otherwise. The Compiled artifact records the chosen route in Strategy
	// and the inputs to the decision in AutoReasons. See docs/COSTMODEL.md.
	Auto
)

// String returns the paper's name for the strategy.
func (s Strategy) String() string {
	switch s {
	case Standard:
		return "STANDARD"
	case SparkSQLStyle:
		return "SPARK-SQL"
	case Shred:
		return "SHRED"
	case ShredUnshred:
		return "SHRED+UNSHRED"
	case StandardSkew:
		return "STANDARD-SKEW"
	case ShredSkew:
		return "SHRED-SKEW"
	case ShredUnshredSkew:
		return "SHRED+UNSHRED-SKEW"
	case Auto:
		return "AUTO"
	}
	return "?"
}

// IsShredded reports whether the strategy runs the shredded pipeline.
func (s Strategy) IsShredded() bool {
	switch s {
	case Shred, ShredUnshred, ShredSkew, ShredUnshredSkew:
		return true
	}
	return false
}

func (s Strategy) skewAware() bool {
	switch s {
	case StandardSkew, ShredSkew, ShredUnshredSkew:
		return true
	}
	return false
}

func (s Strategy) unshreds() bool {
	return s == ShredUnshred || s == ShredUnshredSkew
}

// SkewAware reports whether the strategy uses the skew-resilient operators
// of paper Section 5.
func (s Strategy) SkewAware() bool { return s.skewAware() }

// Unshreds reports whether the strategy restores nested output from the
// shredded representation (its Result.Output rows are the nested value, like
// Standard's).
func (s Strategy) Unshreds() bool { return s.unshreds() }

// AllStrategies lists every explicit strategy in presentation order (Auto is
// a meta-strategy resolving to one of these and is deliberately excluded).
func AllStrategies() []Strategy {
	return []Strategy{Standard, SparkSQLStyle, Shred, ShredUnshred, StandardSkew, ShredSkew, ShredUnshredSkew}
}

// CLIName returns the lowercase name CLIs and HTTP APIs use for the
// strategy (ParseStrategy's inverse).
func (s Strategy) CLIName() string {
	switch s {
	case Standard:
		return "standard"
	case SparkSQLStyle:
		return "sparksql"
	case Shred:
		return "shred"
	case ShredUnshred:
		return "shred+unshred"
	case StandardSkew:
		return "standard-skew"
	case ShredSkew:
		return "shred-skew"
	case ShredUnshredSkew:
		return "shred+unshred-skew"
	case Auto:
		return "auto"
	}
	return "?"
}

// ParseStrategy resolves a CLI/HTTP strategy name (including "auto").
func ParseStrategy(name string) (Strategy, bool) {
	for _, s := range append(AllStrategies(), Auto) {
		if s.CLIName() == name {
			return s, true
		}
	}
	return 0, false
}

// Config sizes the simulated cluster.
type Config struct {
	// Parallelism is the partition count used by shuffles.
	Parallelism int
	// Workers bounds the engine's shared goroutine pool (0 = NumCPU). Set it
	// to 1 to execute the same partitioned plan sequentially — the
	// parallel-scaling benchmarks compare exactly these two settings.
	Workers           int
	MaxPartitionBytes int64
	BroadcastLimit    int64
	// DomainElimination toggles the Section 4 optimization (on for the
	// paper's Shred strategy; the ablation bench turns it off).
	DomainElimination bool
	// NoColumnPruning disables column pruning (paper Section 3
	// optimizations; used by the ablation bench).
	NoColumnPruning bool
	// NoPredicatePushdown disables the rule-based plan optimizer (predicate
	// pushdown, select fusion, constant folding — see plan.Optimize and
	// docs/OPTIMIZER.md); used by the ablation bench and the differential
	// oracle harness.
	NoPredicatePushdown bool
	// NoVectorize disables the columnar batch execution path: narrow
	// operators stay on the row-at-a-time interpreter even when their
	// expressions compile to vector kernels (see exec.AnnotateVectorize and
	// docs/VECTORIZE.md). Results are identical either way — this is the
	// vectorizer's ablation knob, exercised by the differential oracle and
	// BenchmarkVectorizeAblation.
	NoVectorize bool

	// Stats provides per-input table statistics (keyed by the input variable
	// name) to the cost-based planning layer: join method choice and input
	// ordering (plan.Annotate) and the Auto strategy's route selection.
	// Sessions fill it from catalog statistics; nil disables both.
	Stats map[string]plan.TableEstimate
	// NoCostModel is the cost layer's ablation knob: plans get no cost
	// annotations (joins fall back to the runtime size heuristic) and Auto
	// resolves to Standard.
	NoCostModel bool
	// NoIndexScan is the index subsystem's ablation knob: the planner keeps
	// pushed-down predicates as full-scan selections even over indexed
	// columns (see plan.AnnotateOpts, docs/INDEXES.md, and
	// BenchmarkIndexScanAblation). Results are identical either way.
	NoIndexScan bool
	// BoxedExchange is the columnar exchange's ablation knob: key-based
	// shuffles move boxed rows instead of typed column buffers (see
	// dataflow/colbuffer.go, docs/VECTORIZE.md, and
	// BenchmarkColumnarShuffle). Results are identical either way — the
	// differential oracle runs both arms.
	BoxedExchange bool
	// AutoSkewFraction is the heavy-key row fraction at or above which Auto
	// picks a skew-aware route; 0 means DefaultAutoSkewFraction.
	AutoSkewFraction float64
	// AutoSelectivity is the estimated pushed-predicate selectivity at or
	// below which Auto routes a query over nested inputs through the shredded
	// pipeline; 0 means DefaultAutoSelectivity.
	AutoSelectivity float64
}

// Auto-selection thresholds (see docs/COSTMODEL.md for the rationale).
const (
	DefaultAutoSkewFraction = 0.15
	DefaultAutoSelectivity  = 0.25
)

// DefaultConfig returns a laptop-scale stand-in for the paper's cluster.
func DefaultConfig() Config {
	return Config{
		Parallelism:       8,
		MaxPartitionBytes: 0,
		BroadcastLimit:    64 << 10,
		DomainElimination: true,
	}
}

// Job is a query over named nested inputs.
type Job struct {
	Name  string
	Query nrc.Expr
	Env   nrc.Env
	// Inputs provides nested input values. Standard routes bind them as
	// top-level rows; shredded routes value-shred them before the timer
	// starts (the paper reports runtime after caching all inputs).
	Inputs map[string]value.Bag
}

// Result reports one strategy execution.
type Result struct {
	Strategy Strategy
	// Output is the result dataset: nested rows for Standard/SparkSQL and
	// unshredding strategies, the materialized top bag for Shred.
	Output *dataflow.Dataset
	// Shredded holds every materialized assignment for shredded strategies.
	Shredded map[string]*dataflow.Dataset
	// Mat is the materialized program (shredded strategies only).
	Mat     *shred.Materialized
	Metrics dataflow.Snapshot
	Elapsed time.Duration
	// Analyze holds per-operator runtime statistics when the run executed
	// with ExecOptions.Analysis set (EXPLAIN ANALYZE); nil otherwise.
	Analyze *plan.Analysis
	// TraceID identifies the request trace this run was recorded under, when
	// the caller attached one; empty otherwise.
	TraceID string
	// Err is non-nil when the run failed (e.g. simulated memory saturation —
	// the paper's F entries).
	Err error
}

// Failed reports whether the run crashed.
func (r *Result) Failed() bool { return r.Err != nil }

// Run executes the job under the given strategy: one-shot compile + execute.
// Serving paths that evaluate the same query repeatedly should Compile once
// and Execute per request instead (the root package's Prepare API does).
func Run(job Job, strat Strategy, cfg Config) *Result {
	cq, err := Compile(job.Query, job.Env, strat, cfg)
	if err != nil {
		return &Result{Strategy: strat, Err: err}
	}
	return cq.Execute(context.Background(), job.Inputs, NewRunContext(cfg, strat))
}

func rowsOf(b value.Bag) []dataflow.Row {
	out := make([]dataflow.Row, len(b))
	for i, e := range b {
		if t, ok := e.(value.Tuple); ok {
			out[i] = dataflow.Row(t)
		} else {
			out[i] = dataflow.Row{e}
		}
	}
	return out
}

func tuplesToRows(ts []value.Tuple) []dataflow.Row {
	out := make([]dataflow.Row, len(ts))
	for i, t := range ts {
		out[i] = dataflow.Row(t)
	}
	return out
}
