// Package runner orchestrates the evaluation strategies compared in the
// paper's experiments (Section 6): the standard compilation route, the
// shredded route with and without unshredding, their skew-aware variants, and
// a SparkSQL-style flattening baseline.
package runner

import (
	"fmt"
	"time"

	"github.com/trance-go/trance/internal/core"
	"github.com/trance-go/trance/internal/dataflow"
	"github.com/trance-go/trance/internal/exec"
	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/plan"
	"github.com/trance-go/trance/internal/shred"
	"github.com/trance-go/trance/internal/value"
)

// Strategy selects an evaluation route.
type Strategy int

// The strategies of the paper's evaluation.
const (
	// Standard is the standard compilation route (paper Section 3).
	Standard Strategy = iota
	// SparkSQLStyle models the paper's SparkSQL competitor: flattening with
	// operators kept at their source relations (no partitioning-guarantee
	// reuse, no cogroup fusion, no shredding).
	SparkSQLStyle
	// Shred is shredded compilation with domain elimination, leaving the
	// output in shredded (materialized dictionary) form.
	Shred
	// ShredUnshred additionally restores the nested output.
	ShredUnshred
	// StandardSkew is Standard with skew-aware operators.
	StandardSkew
	// ShredSkew is Shred with skew-aware operators.
	ShredSkew
	// ShredUnshredSkew is ShredUnshred with skew-aware operators.
	ShredUnshredSkew
)

// String returns the paper's name for the strategy.
func (s Strategy) String() string {
	switch s {
	case Standard:
		return "STANDARD"
	case SparkSQLStyle:
		return "SPARK-SQL"
	case Shred:
		return "SHRED"
	case ShredUnshred:
		return "SHRED+UNSHRED"
	case StandardSkew:
		return "STANDARD-SKEW"
	case ShredSkew:
		return "SHRED-SKEW"
	case ShredUnshredSkew:
		return "SHRED+UNSHRED-SKEW"
	}
	return "?"
}

// IsShredded reports whether the strategy runs the shredded pipeline.
func (s Strategy) IsShredded() bool {
	switch s {
	case Shred, ShredUnshred, ShredSkew, ShredUnshredSkew:
		return true
	}
	return false
}

func (s Strategy) skewAware() bool {
	switch s {
	case StandardSkew, ShredSkew, ShredUnshredSkew:
		return true
	}
	return false
}

func (s Strategy) unshreds() bool {
	return s == ShredUnshred || s == ShredUnshredSkew
}

// Config sizes the simulated cluster.
type Config struct {
	// Parallelism is the partition count used by shuffles.
	Parallelism int
	// Workers bounds the engine's shared goroutine pool (0 = NumCPU). Set it
	// to 1 to execute the same partitioned plan sequentially — the
	// parallel-scaling benchmarks compare exactly these two settings.
	Workers           int
	MaxPartitionBytes int64
	BroadcastLimit    int64
	// DomainElimination toggles the Section 4 optimization (on for the
	// paper's Shred strategy; the ablation bench turns it off).
	DomainElimination bool
	// NoColumnPruning disables column pruning (paper Section 3
	// optimizations; used by the ablation bench).
	NoColumnPruning bool
}

// DefaultConfig returns a laptop-scale stand-in for the paper's cluster.
func DefaultConfig() Config {
	return Config{
		Parallelism:       8,
		MaxPartitionBytes: 0,
		BroadcastLimit:    64 << 10,
		DomainElimination: true,
	}
}

// Job is a query over named nested inputs.
type Job struct {
	Name  string
	Query nrc.Expr
	Env   nrc.Env
	// Inputs provides nested input values. Standard routes bind them as
	// top-level rows; shredded routes value-shred them before the timer
	// starts (the paper reports runtime after caching all inputs).
	Inputs map[string]value.Bag
}

// Result reports one strategy execution.
type Result struct {
	Strategy Strategy
	// Output is the result dataset: nested rows for Standard/SparkSQL and
	// unshredding strategies, the materialized top bag for Shred.
	Output *dataflow.Dataset
	// Shredded holds every materialized assignment for shredded strategies.
	Shredded map[string]*dataflow.Dataset
	// Mat is the materialized program (shredded strategies only).
	Mat     *shred.Materialized
	Metrics dataflow.Snapshot
	Elapsed time.Duration
	// Err is non-nil when the run failed (e.g. simulated memory saturation —
	// the paper's F entries).
	Err error
}

// Failed reports whether the run crashed.
func (r *Result) Failed() bool { return r.Err != nil }

// Run executes the job under the given strategy.
func Run(job Job, strat Strategy, cfg Config) *Result {
	ctx := dataflow.NewContext(cfg.Parallelism)
	ctx.Workers = cfg.Workers
	ctx.MaxPartitionBytes = cfg.MaxPartitionBytes
	ctx.BroadcastLimit = cfg.BroadcastLimit
	if strat == SparkSQLStyle {
		ctx.DisableGuarantees = true
	}
	res := &Result{Strategy: strat}

	if strat.IsShredded() {
		runShredded(job, strat, cfg, ctx, res)
	} else {
		runStandard(job, strat, cfg, ctx, res)
	}
	res.Metrics = ctx.Metrics.Snapshot()
	return res
}

func runStandard(job Job, strat Strategy, cfg Config, ctx *dataflow.Context, res *Result) {
	if _, err := nrc.Check(job.Query, job.Env); err != nil {
		res.Err = err
		return
	}
	c, err := core.NewCompiler(job.Env)
	if err != nil {
		res.Err = err
		return
	}
	c.NoPrune = cfg.NoColumnPruning
	op, err := c.Compile(job.Query)
	if err != nil {
		res.Err = fmt.Errorf("compile: %w", err)
		return
	}
	ex := exec.New(ctx)
	ex.SkewAware = strat.skewAware()
	for name, b := range job.Inputs {
		ex.BindRows(name, rowsOf(b))
	}

	start := time.Now()
	out, err := ex.Run(op)
	if err == nil {
		out.Force() // charge trailing fused narrow work to the timed region
	}
	res.Elapsed = time.Since(start)
	if err != nil {
		res.Err = err
		return
	}
	res.Output = out
}

func runShredded(job Job, strat Strategy, cfg Config, ctx *dataflow.Context, res *Result) {
	mat, err := shred.ShredQuery(job.Query, job.Env, "Q", shred.Options{DomainElimination: cfg.DomainElimination})
	if err != nil {
		res.Err = fmt.Errorf("shredding: %w", err)
		return
	}
	res.Mat = mat

	// Compiler environment: shredded components of every input.
	cenv := nrc.Env{}
	for name, t := range job.Env {
		b, ok := t.(nrc.BagType)
		if !ok {
			res.Err = fmt.Errorf("input %s is not a bag", name)
			return
		}
		ienv, err := shred.InputEnv(name, b)
		if err != nil {
			res.Err = err
			return
		}
		for k, v := range ienv {
			cenv[k] = v
		}
	}
	c, err := core.NewCompiler(cenv)
	if err != nil {
		res.Err = err
		return
	}
	c.NoPrune = cfg.NoColumnPruning
	stmts, err := c.CompileProgram(mat.Program)
	if err != nil {
		res.Err = fmt.Errorf("compile shredded: %w", err)
		return
	}

	// Value-shred the inputs (input preparation, outside the timer).
	ex := exec.New(ctx)
	ex.SkewAware = strat.skewAware()
	for name, b := range job.Inputs {
		si, err := shred.ShredInput(name, b, job.Env[name].(nrc.BagType))
		if err != nil {
			res.Err = err
			return
		}
		for comp, rows := range si.Rows {
			ex.BindRows(comp, tuplesToRows(rows))
		}
	}

	start := time.Now()
	outs, err := ex.RunProgram(stmts)
	if err != nil {
		res.Elapsed = time.Since(start)
		res.Err = err
		return
	}
	res.Shredded = outs
	res.Output = outs[mat.TopName]

	if strat.unshreds() {
		uplan, err := shred.BuildUnshredPlan(mat)
		if err != nil {
			res.Elapsed = time.Since(start)
			res.Err = err
			return
		}
		if !cfg.NoColumnPruning {
			uplan = plan.Prune(uplan)
		}
		out, err := ex.Run(uplan)
		if err == nil {
			out.Force()
		}
		res.Elapsed = time.Since(start)
		if err != nil {
			res.Err = err
			return
		}
		res.Output = out
		return
	}
	res.Elapsed = time.Since(start)
}

func rowsOf(b value.Bag) []dataflow.Row {
	out := make([]dataflow.Row, len(b))
	for i, e := range b {
		if t, ok := e.(value.Tuple); ok {
			out[i] = dataflow.Row(t)
		} else {
			out[i] = dataflow.Row{e}
		}
	}
	return out
}

func tuplesToRows(ts []value.Tuple) []dataflow.Row {
	out := make([]dataflow.Row, len(ts))
	for i, t := range ts {
		out[i] = dataflow.Row(t)
	}
	return out
}
