package runner

import (
	"context"
	"strings"
	"testing"

	"github.com/trance-go/trance/internal/plan"
	"github.com/trance-go/trance/internal/testdata"
	"github.com/trance-go/trance/internal/value"
)

// compiledPlans collects every plan tree the artifact executes.
func compiledPlans(cq *Compiled) []plan.Op {
	var out []plan.Op
	if cq.Plan != nil {
		out = append(out, cq.Plan)
	}
	for _, st := range cq.Stmts {
		out = append(out, st.Plan)
	}
	if cq.Unshred != nil {
		out = append(out, cq.Unshred)
	}
	return out
}

func forEachOp(op plan.Op, fn func(plan.Op)) {
	fn(op)
	for _, ch := range op.Children() {
		forEachOp(ch, fn)
	}
}

// narrowInput returns the single input of a row-at-a-time operator, nil for
// wide or leaf operators. These are the operators whose instrumented closures
// record RowsIn, so rows flowing into them must equal the rows their input
// reported flowing out.
func narrowInput(op plan.Op) plan.Op {
	switch x := op.(type) {
	case *plan.Select:
		return x.In
	case *plan.Extend:
		return x.In
	case *plan.Project:
		return x.In
	case *plan.AddIndex:
		return x.In
	case *plan.Unnest:
		return x.In
	}
	return nil
}

// TestAnalyzeRowConservation runs an instrumented execution and checks the
// per-operator counters against the dataflow's own invariants: every narrow
// operator consumed exactly the rows its input produced, the root operator
// produced exactly the rows the result holds, and every wide operator's
// recorded stage resolves against Result.Metrics — which is what makes the
// rendered analyze wall totals agree with the run's stage walls.
func TestAnalyzeRowConservation(t *testing.T) {
	inputs := map[string]value.Bag{"COP": testdata.SmallCOP(), "Part": testdata.SmallPart()}
	cfg := DefaultConfig()
	for _, strat := range []Strategy{Standard, Shred, ShredUnshred, StandardSkew, ShredSkew, ShredUnshredSkew} {
		cq, err := Compile(testdata.RunningExample(), testdata.Env(), strat, cfg)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		a := plan.NewAnalysis()
		res := cq.ExecuteWithOpts(context.Background(), inputs, NewRunContext(cfg, strat), ExecOptions{Analysis: a})
		if res.Failed() {
			t.Fatalf("%s: %v", strat, res.Err)
		}
		if res.Analyze != a {
			t.Fatalf("%s: Result.Analyze not wired through", strat)
		}

		stages := map[string]bool{}
		for _, st := range res.Metrics.StageWall {
			stages[st.Stage] = true
		}
		chains, wides := 0, 0
		for _, p := range compiledPlans(cq) {
			forEachOp(p, func(op plan.Op) {
				ns := a.Lookup(op)
				if ns == nil {
					return
				}
				if ns.Stage != "" {
					wides++
					if !stages[ns.Stage] {
						t.Errorf("%s: %s recorded stage %q absent from Result.Metrics stage walls",
							strat, op.Describe(), ns.Stage)
					}
				}
				in := narrowInput(op)
				if in == nil {
					return
				}
				child := a.Lookup(in)
				if child == nil {
					return
				}
				chains++
				if got, want := ns.RowsIn.Load(), child.RowsOut.Load(); got != want {
					t.Errorf("%s: %s consumed %d rows but its input %s produced %d",
						strat, op.Describe(), got, in.Describe(), want)
				}
			})
		}
		if chains == 0 {
			t.Fatalf("%s: no narrow chains were instrumented — conservation check is vacuous", strat)
		}

		// The last executed plan's root feeds the result verbatim.
		rootPlan := cq.Plan
		if cq.Unshred != nil {
			rootPlan = cq.Unshred
		} else if rootPlan == nil && len(cq.Stmts) > 0 {
			rootPlan = cq.Stmts[len(cq.Stmts)-1].Plan
		}
		out := res.Output
		if out == nil && cq.Mat != nil {
			out = res.Shredded[cq.Mat.TopName]
		}
		if ns := a.Lookup(rootPlan); ns != nil && out != nil {
			if got, want := ns.RowsOut.Load(), out.Count(); got != want {
				t.Errorf("%s: root reported %d rows, result holds %d", strat, got, want)
			}
		}
		t.Logf("%s: %d narrow chains conserved, %d wide stages resolved", strat, chains, wides)
	}
}

// TestExplainAnalyzeRendering checks the analyzed explain text carries the
// runtime annotations and the execution footer, and that a result from an
// uninstrumented run degrades to an explicit notice instead of bare output.
func TestExplainAnalyzeRendering(t *testing.T) {
	inputs := map[string]value.Bag{"COP": testdata.SmallCOP(), "Part": testdata.SmallPart()}
	cfg := DefaultConfig()
	cq, err := Compile(testdata.RunningExample(), testdata.Env(), Standard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := plan.NewAnalysis()
	res := cq.ExecuteWithOpts(context.Background(), inputs, NewRunContext(cfg, Standard), ExecOptions{Analysis: a})
	if res.Failed() {
		t.Fatal(res.Err)
	}
	text := cq.ExplainAnalyze(res)
	for _, want := range []string{"=== plan (analyzed) ===", "[actual_rows=", "execution: wall="} {
		if !strings.Contains(text, want) {
			t.Fatalf("analyzed explain missing %q:\n%s", want, text)
		}
	}

	plain := cq.Execute(context.Background(), inputs, NewRunContext(cfg, Standard))
	if plain.Failed() {
		t.Fatal(plain.Err)
	}
	if got := cq.ExplainAnalyze(plain); !strings.Contains(got, "no runtime statistics") {
		t.Fatalf("uninstrumented result should say so:\n%s", got)
	}
}

// TestAnalyzeOffLeavesNoTrace: the default Execute path must not allocate or
// attach any analysis state.
func TestAnalyzeOffLeavesNoTrace(t *testing.T) {
	inputs := map[string]value.Bag{"COP": testdata.SmallCOP(), "Part": testdata.SmallPart()}
	cfg := DefaultConfig()
	cq, err := Compile(testdata.RunningExample(), testdata.Env(), Standard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := cq.Execute(context.Background(), inputs, NewRunContext(cfg, Standard))
	if res.Failed() {
		t.Fatal(res.Err)
	}
	if res.Analyze != nil {
		t.Fatal("analyze-off run carries an Analysis")
	}
}
