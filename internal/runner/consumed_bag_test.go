// Regression tests for a silent-wrong-answer class the differential oracle
// harness uncovered: an unnest flattens a bag column in place (the unnested
// attribute is tombstoned), so a query that iterates or copies the same bag
// attribute a second time used to read NULL and return empty inner bags.
// Such queries are now refused at compile time with a descriptive error.
package runner_test

import (
	"strings"
	"testing"

	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/runner"
)

func TestConsumedBagReuseIsRefused(t *testing.T) {
	env := nrc.Env{"R": nrc.BagOf(nrc.Tup(
		"a", nrc.IntT,
		"items", nrc.BagOf(nrc.Tup("v", nrc.IntT)),
	))}
	cases := map[string]func() nrc.Expr{
		// Two sibling nested head fields over the same bag: the first child
		// level consumes x.items, the second would read its tombstone.
		"sibling nested fields": func() nrc.Expr {
			return nrc.ForIn("x", nrc.V("R"), nrc.SingOf(nrc.Record(
				"a", nrc.P(nrc.V("x"), "a"),
				"s1", nrc.ForIn("i", nrc.P(nrc.V("x"), "items"), nrc.SingOf(nrc.Record("v", nrc.P(nrc.V("i"), "v")))),
				"s2", nrc.ForIn("j", nrc.P(nrc.V("x"), "items"), nrc.SingOf(nrc.Record("w", nrc.P(nrc.V("j"), "v")))),
			)))
		},
		// Re-iterating a bag consumed by an enclosing for.
		"re-iteration under the consuming for": func() nrc.Expr {
			return nrc.ForIn("x", nrc.V("R"),
				nrc.ForIn("i", nrc.P(nrc.V("x"), "items"),
					nrc.SingOf(nrc.Record(
						"v", nrc.P(nrc.V("i"), "v"),
						"sub", nrc.ForIn("j", nrc.P(nrc.V("x"), "items"), nrc.SingOf(nrc.Record("w", nrc.P(nrc.V("j"), "v")))),
					))))
		},
		// A plain copy field sitting NEXT TO a nested field that iterates
		// the same bag (column-path fields resolve before nested fields
		// compile, so the copy must be re-checked after consumption).
		"copy sibling of a consuming nested field": func() nrc.Expr {
			return nrc.ForIn("x", nrc.V("R"), nrc.SingOf(nrc.Record(
				"a", nrc.P(nrc.V("x"), "a"),
				"b", nrc.P(nrc.V("x"), "items"),
				"n", nrc.ForIn("y", nrc.P(nrc.V("x"), "items"), nrc.SingOf(nrc.Record("v", nrc.P(nrc.V("y"), "v")))),
			)))
		},
		// Same, with the nested field before the copy.
		"consuming nested field then copy sibling": func() nrc.Expr {
			return nrc.ForIn("x", nrc.V("R"), nrc.SingOf(nrc.Record(
				"n", nrc.ForIn("y", nrc.P(nrc.V("x"), "items"), nrc.SingOf(nrc.Record("v", nrc.P(nrc.V("y"), "v")))),
				"b", nrc.P(nrc.V("x"), "items"),
			)))
		},
		// Copying the consumed bag into the head.
		"head copy of the consumed bag": func() nrc.Expr {
			return nrc.ForIn("x", nrc.V("R"),
				nrc.ForIn("i", nrc.P(nrc.V("x"), "items"),
					nrc.SingOf(nrc.Record(
						"v", nrc.P(nrc.V("i"), "v"),
						"sub", nrc.P(nrc.V("x"), "items"),
					))))
		},
	}
	for name, mk := range cases {
		for _, pushdown := range []bool{true, false} {
			cfg := runner.DefaultConfig()
			cfg.NoPredicatePushdown = !pushdown
			_, err := runner.Compile(mk(), env, runner.Standard, cfg)
			if err == nil {
				t.Fatalf("%s (pushdown=%t): must be refused at compile time — executing it would silently return empty inner bags", name, pushdown)
			}
			if !strings.Contains(err.Error(), "already flattened") {
				t.Fatalf("%s (pushdown=%t): want the consumed-bag diagnostic, got: %v", name, pushdown, err)
			}
		}
	}
}

// The guard must survive coordinate remapping: when the FIRST nested head
// field itself contains a nested field, the child frame runs its own column
// remap, and the consumed mark for the shared bag must translate back into
// the parent's coordinates — otherwise the sibling compiles against the
// tombstone and silently returns empty bags (found by code review of the
// original fix).
func TestConsumedBagGuardSurvivesDeepNesting(t *testing.T) {
	env := nrc.Env{"R": nrc.BagOf(nrc.Tup(
		"a", nrc.IntT,
		"items", nrc.BagOf(nrc.Tup(
			"v", nrc.IntT,
			"tags", nrc.BagOf(nrc.Tup("t", nrc.IntT)),
		)),
	))}
	q := nrc.ForIn("x", nrc.V("R"), nrc.SingOf(nrc.Record(
		"a", nrc.P(nrc.V("x"), "a"),
		"s1", nrc.ForIn("i", nrc.P(nrc.V("x"), "items"), nrc.SingOf(nrc.Record(
			"v", nrc.P(nrc.V("i"), "v"),
			"ss", nrc.ForIn("tg", nrc.P(nrc.V("i"), "tags"), nrc.SingOf(nrc.Record("t", nrc.P(nrc.V("tg"), "t")))),
		))),
		"s2", nrc.ForIn("j", nrc.P(nrc.V("x"), "items"), nrc.SingOf(nrc.Record("w", nrc.P(nrc.V("j"), "v")))),
	)))
	_, err := runner.Compile(q, env, runner.Standard, runner.DefaultConfig())
	if err == nil {
		t.Fatal("deep-nested sibling reuse of x.items must be refused at compile time")
	}
	if !strings.Contains(err.Error(), "already flattened") {
		t.Fatalf("want the consumed-bag diagnostic, got: %v", err)
	}
}

// Distinct bags — even of identical shape — may each be iterated once; only
// genuine reuse is refused.
func TestDistinctBagsStillCompile(t *testing.T) {
	env := nrc.Env{"R": nrc.BagOf(nrc.Tup(
		"xs", nrc.BagOf(nrc.Tup("v", nrc.IntT)),
		"ys", nrc.BagOf(nrc.Tup("v", nrc.IntT)),
	))}
	q := nrc.ForIn("r", nrc.V("R"), nrc.SingOf(nrc.Record(
		"s1", nrc.ForIn("i", nrc.P(nrc.V("r"), "xs"), nrc.SingOf(nrc.Record("v", nrc.P(nrc.V("i"), "v")))),
		"s2", nrc.ForIn("j", nrc.P(nrc.V("r"), "ys"), nrc.SingOf(nrc.Record("w", nrc.P(nrc.V("j"), "v")))),
	)))
	if _, err := runner.Compile(q, env, runner.Standard, runner.DefaultConfig()); err != nil {
		t.Fatalf("distinct sibling bags must compile: %v", err)
	}
}
