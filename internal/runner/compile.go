package runner

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"github.com/trance-go/trance/internal/core"
	"github.com/trance-go/trance/internal/dataflow"
	"github.com/trance-go/trance/internal/exec"
	"github.com/trance-go/trance/internal/index"
	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/plan"
	"github.com/trance-go/trance/internal/shred"
	"github.com/trance-go/trance/internal/trace"
	"github.com/trance-go/trance/internal/value"
)

// Compiled holds every compile-time artifact of one (query, environment,
// strategy, config) combination: the pruned standard plan, or the
// materialized shredded program with its compiled statements and (for
// unshredding strategies) the pruned unshred plan. A Compiled is immutable
// after Compile returns and safe to Execute from many goroutines at once
// over different inputs — plan operators and their scalar expressions are
// pure, and every run gets its own executor and dataflow context.
type Compiled struct {
	Strategy Strategy
	Cfg      Config
	Env      nrc.Env

	// Requested is the strategy Compile was asked for. It differs from
	// Strategy only when it was Auto: Strategy then holds the concrete route
	// ChooseStrategy resolved, and AutoReasons records why.
	Requested   Strategy
	AutoReasons []string

	// Plan is the algebraic plan of the standard routes (nil when shredded).
	Plan plan.Op
	// Mat is the materialized shredded program (shredded routes only).
	Mat *shred.Materialized
	// Stmts are the compiled assignments of the shredded program.
	Stmts []core.CompiledStmt
	// Unshred is the pruned plan restoring nested output (unshredding
	// strategies only).
	Unshred plan.Op

	// RawPlan, RawStmts and RawUnshred keep the pre-optimizer plans so
	// Explain can show before/after diffs. They alias the optimized fields
	// when the optimizer is disabled (Config.NoPredicatePushdown).
	RawPlan    plan.Op
	RawStmts   []core.CompiledStmt
	RawUnshred plan.Op
	// Opt accumulates the optimizer's rule-hit counters over every plan of
	// this compilation.
	Opt plan.OptStats
	// Vec accumulates the vectorizer's verdicts over every plan of this
	// compilation (zero when Config.NoVectorize skipped annotation).
	Vec plan.VecStats
	// Idx accumulates the planner's Select→IndexScan conversions over every
	// plan of this compilation (zero when Config.NoIndexScan ablated them).
	Idx plan.IndexStats
}

// recoverTo converts a panic into an error carrying the stack, so malformed
// queries degrade to failed compilations/runs instead of crashing the
// process (the serving layer turns these into HTTP errors).
func recoverTo(err *error, what string) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("%s panicked: %v\n%s", what, r, debug.Stack())
	}
}

// Compile runs typechecking, (shredded) compilation and plan pruning for the
// strategy exactly once, producing an artifact that can be executed many
// times. Compile-time panics are converted into errors.
//
// Compile type-annotates the query's AST in place (nrc.Check); do not
// Compile the same expression tree from several goroutines concurrently —
// the prepared-query layer serializes its per-strategy compilations for
// this reason.
func Compile(q nrc.Expr, env nrc.Env, strat Strategy, cfg Config) (*Compiled, error) {
	return CompileStep(q, env, strat, cfg, "Q")
}

// CompileStep is Compile with an explicit materialization name for the
// shredded route. Pipeline steps need it: a step's materialized components
// are bound under topName (the step name), so later steps — compiled against
// shred.InputEnv(topName, …) — resolve them.
func CompileStep(q nrc.Expr, env nrc.Env, strat Strategy, cfg Config, topName string) (cq *Compiled, err error) {
	defer recoverTo(&err, "compile")
	if _, cerr := nrc.Check(q, env); cerr != nil {
		return nil, cerr
	}
	cq = &Compiled{Strategy: strat, Cfg: cfg, Env: env, Requested: strat}
	if strat == Auto {
		choice, cerr := ChooseStrategy(q, env, cfg)
		if cerr != nil {
			return nil, cerr
		}
		cq.Strategy = choice.Strategy
		cq.AutoReasons = choice.Reasons
	}
	if cq.Strategy.IsShredded() {
		err := cq.compileShredded(q, topName)
		if err == nil {
			countAutoChoice(cq)
			return cq, nil
		}
		if cq.Requested != Auto {
			return nil, err
		}
		// Auto picked a shredded route the shredding compiler cannot handle
		// (e.g. an unsupported operator): fall back to the standard variant
		// with the same skew-awareness rather than failing the query.
		cq.AutoReasons = append(cq.AutoReasons,
			fmt.Sprintf("shredded route unavailable (%v); falling back to the standard variant", err))
		if cq.Strategy.skewAware() {
			cq.Strategy = StandardSkew
		} else {
			cq.Strategy = Standard
		}
		cq.Mat, cq.Stmts, cq.RawStmts, cq.Unshred, cq.RawUnshred = nil, nil, nil, nil, nil
	}
	if err := cq.compileStandard(q); err != nil {
		return nil, err
	}
	countAutoChoice(cq)
	return cq, nil
}

func countAutoChoice(cq *Compiled) {
	if cq.Requested == Auto {
		autoChoices[cq.Strategy].Add(1)
	}
}

// annotate applies the cost model (plan.Annotate) when table statistics are
// available and the ablation knob is off. Shredded component scans carry no
// statistics, so annotation is a no-op for most shredded-plan internals — a
// documented limitation (docs/COSTMODEL.md).
func (cq *Compiled) annotate(op plan.Op) plan.Op {
	if cq.Cfg.NoCostModel || len(cq.Cfg.Stats) == 0 {
		return op
	}
	out, ist := plan.AnnotateOpts(op, cq.Cfg.Stats, plan.AnnotateOptions{
		BroadcastLimit: cq.Cfg.BroadcastLimit,
		NoIndexScan:    cq.Cfg.NoIndexScan,
	})
	cq.Idx.Add(ist)
	return out
}

func (cq *Compiled) compileStandard(q nrc.Expr) error {
	c, err := core.NewCompiler(cq.Env)
	if err != nil {
		return err
	}
	c.NoPrune = cq.Cfg.NoColumnPruning
	op, err := c.Compile(q)
	if err != nil {
		return fmt.Errorf("compile: %w", err)
	}
	cq.RawPlan = op
	cq.Plan = cq.annotate(cq.optimize(op))
	cq.vectorize(cq.Plan, cq.RawPlan)
	return nil
}

// vectorize records the vectorizer's per-operator verdicts on a finished plan
// (rendered by Explain, counted in /metrics) unless the ablation knob is on.
// The executor consults the same compiler at run time, so the annotation is
// exactly what ExecuteRows will do. The pre-optimizer copy kept for Explain
// diffs is annotated too (without counting), so before/after trees compare
// under the same notation.
func (cq *Compiled) vectorize(op, raw plan.Op) {
	if cq.Cfg.NoVectorize || op == nil {
		return
	}
	cq.Vec.Add(exec.AnnotateVectorize(op))
	if raw != nil && raw != op {
		exec.AnnotateVectorizeQuiet(raw)
	}
}

// optimize runs the rule-based plan optimizer (predicate pushdown, select
// fusion, constant folding) unless the ablation flag disables it, folding the
// rule-hit counters into cq.Opt.
func (cq *Compiled) optimize(op plan.Op) plan.Op {
	if cq.Cfg.NoPredicatePushdown {
		return op
	}
	out, st := plan.Optimize(op)
	cq.Opt.Add(st)
	return out
}

func (cq *Compiled) compileShredded(q nrc.Expr, topName string) error {
	mat, err := shred.ShredQuery(q, cq.Env, topName, shred.Options{DomainElimination: cq.Cfg.DomainElimination})
	if err != nil {
		return fmt.Errorf("shredding: %w", err)
	}
	cq.Mat = mat

	// Compiler environment: shredded components of every input.
	cenv := nrc.Env{}
	for name, t := range cq.Env {
		b, ok := t.(nrc.BagType)
		if !ok {
			return fmt.Errorf("input %s is not a bag", name)
		}
		ienv, err := shred.InputEnv(name, b)
		if err != nil {
			return err
		}
		for k, v := range ienv {
			cenv[k] = v
		}
	}
	c, err := core.NewCompiler(cenv)
	if err != nil {
		return err
	}
	c.NoPrune = cq.Cfg.NoColumnPruning
	stmts, err := c.CompileProgram(mat.Program)
	if err != nil {
		return fmt.Errorf("compile shredded: %w", err)
	}
	cq.RawStmts = stmts
	cq.Stmts = make([]core.CompiledStmt, len(stmts))
	for i, st := range stmts {
		cq.Stmts[i] = core.CompiledStmt{Name: st.Name, Plan: cq.annotate(cq.optimize(st.Plan))}
		cq.vectorize(cq.Stmts[i].Plan, st.Plan)
	}

	if cq.Strategy.unshreds() {
		uplan, err := shred.BuildUnshredPlan(mat)
		if err != nil {
			return fmt.Errorf("unshred plan: %w", err)
		}
		if !cq.Cfg.NoColumnPruning {
			uplan = plan.Prune(uplan)
		}
		cq.RawUnshred = uplan
		cq.Unshred = cq.annotate(cq.optimize(uplan))
		cq.vectorize(cq.Unshred, cq.RawUnshred)
	}
	return nil
}

// NewRunContext builds the dataflow context Run uses for one execution under
// the config and strategy. Callers serving concurrent requests attach a
// shared worker pool (ctx.SharedPool) before executing.
func NewRunContext(cfg Config, strat Strategy) *dataflow.Context {
	ctx := dataflow.NewContext(cfg.Parallelism)
	ctx.Workers = cfg.Workers
	ctx.MaxPartitionBytes = cfg.MaxPartitionBytes
	ctx.BroadcastLimit = cfg.BroadcastLimit
	ctx.BoxedExchange = cfg.BoxedExchange
	if strat == SparkSQLStyle {
		ctx.DisableGuarantees = true
	}
	return ctx
}

// InputRows converts nested inputs into the engine rows Execute binds:
// top-level rows for standard routes, value-shredded component rows for
// shredded routes. The conversion depends only on the route and the input
// environment, so callers evaluating a fixed dataset repeatedly (a serving
// process) compute it once and pass the result to ExecuteRows. The returned
// rows are never mutated by the engine and may be shared by any number of
// concurrent executions.
func (cq *Compiled) InputRows(inputs map[string]value.Bag) (map[string][]dataflow.Row, error) {
	rows := map[string][]dataflow.Row{}
	for name, b := range inputs {
		comps, err := cq.InputRowsOne(name, b)
		if err != nil {
			return nil, err
		}
		for comp, rs := range comps {
			rows[comp] = rs
		}
	}
	return rows, nil
}

// InputRowsOne converts a single named input into its engine datasets: one
// entry under the input's own name for non-shredded strategies, the
// value-shredded dictionary components for shredded ones. The result
// depends only on (name, bag, declared type, route kind), so callers
// evaluating many queries over the same dataset may convert once per route
// and share the rows (see trance.Session).
func (cq *Compiled) InputRowsOne(name string, b value.Bag) (rows map[string][]dataflow.Row, err error) {
	defer recoverTo(&err, "input preparation")
	if !cq.Strategy.IsShredded() {
		return map[string][]dataflow.Row{name: rowsOf(b)}, nil
	}
	bt, ok := cq.Env[name].(nrc.BagType)
	if !ok {
		return nil, fmt.Errorf("input %s is not a bag", name)
	}
	si, err := shred.ShredInput(name, b, bt)
	if err != nil {
		return nil, err
	}
	rows = map[string][]dataflow.Row{}
	for comp, ts := range si.Rows {
		rows[comp] = tuplesToRows(ts)
	}
	return rows, nil
}

// Execute evaluates the compiled artifacts over one set of inputs on the
// given dataflow context: InputRows + ExecuteRows. It never shares mutable
// state with other executions of the same Compiled, so any number may run
// concurrently; panics anywhere in execution degrade to Result.Err. The
// context's cancellation is honored between statements (best effort — an
// individual statement runs to completion).
func (cq *Compiled) Execute(ctx context.Context, inputs map[string]value.Bag, dctx *dataflow.Context) *Result {
	return cq.ExecuteWithOpts(ctx, inputs, dctx, ExecOptions{})
}

// ExecuteWithOpts is Execute with observability options.
func (cq *Compiled) ExecuteWithOpts(ctx context.Context, inputs map[string]value.Bag, dctx *dataflow.Context, opts ExecOptions) *Result {
	rows, err := cq.InputRows(inputs)
	if err != nil {
		return &Result{Strategy: cq.Strategy, Mat: cq.Mat, Err: err, Metrics: dctx.Metrics.Snapshot()}
	}
	return cq.ExecuteRowsOpts(ctx, rows, cq.BuildIndexes(inputs), dctx, opts)
}

// BuildIndexes constructs secondary-index sets for every input column the
// compile-time statistics flag as indexed, keyed for this compilation's route
// (see MapIndexes). It returns nil when no plan of this compilation carries
// an IndexScan, so callers without index scans pay nothing. Serving callers
// reuse the catalog's persistent indexes instead (see trance.Session);
// IndexScan degrades to a full scan plus its span predicate when executed
// without them, so passing nil is always sound.
func (cq *Compiled) BuildIndexes(inputs map[string]value.Bag) map[string]*index.Set {
	if cq.Idx.Planned == 0 {
		return nil
	}
	var byDataset map[string]*index.Set
	for name, b := range inputs {
		te, ok := cq.Cfg.Stats[name]
		if !ok {
			continue
		}
		bt, isBag := cq.Env[name].(nrc.BagType)
		if !isBag {
			continue
		}
		var set *index.Set
		for colName, ce := range te.Cols {
			if !ce.IndexHash && !ce.IndexOrdered {
				continue
			}
			off := colOffset(bt, colName)
			if off < 0 {
				continue
			}
			vals := make([]value.Value, len(b))
			for i, e := range b {
				if t, isT := e.(value.Tuple); isT {
					vals[i] = t[off]
				} else {
					vals[i] = e
				}
			}
			ci, err := index.Build(colName, ce.IndexHash, ce.IndexOrdered, vals)
			if err != nil {
				continue
			}
			if set == nil {
				set = index.NewSet()
			}
			set.Put(ci)
		}
		if set != nil {
			if byDataset == nil {
				byDataset = map[string]*index.Set{}
			}
			byDataset[name] = set
		}
	}
	return cq.MapIndexes(byDataset)
}

// colOffset finds a top-level scalar column's tuple offset ("_value" for
// scalar-element bags).
func colOffset(bt nrc.BagType, col string) int {
	if tt, ok := bt.Elem.(nrc.TupleType); ok {
		for i, f := range tt.Fields {
			if f.Name == col {
				return i
			}
		}
		return -1
	}
	if col == "_value" {
		return 0
	}
	return -1
}

// MapIndexes re-keys per-dataset index sets for this compilation's route:
// dataset names on standard routes, shredded top-component names on shredded
// routes. The mapping is sound because value shredding preserves top-level
// row order and keeps scalar columns in place (bags become labels), so the
// positions and keys of a dataset index address the top dictionary's rows
// verbatim.
func (cq *Compiled) MapIndexes(byDataset map[string]*index.Set) map[string]*index.Set {
	if len(byDataset) == 0 {
		return nil
	}
	if !cq.Strategy.IsShredded() {
		return byDataset
	}
	out := make(map[string]*index.Set, len(byDataset))
	for name, s := range byDataset {
		out[shred.MatName(name, nil)] = s
	}
	return out
}

// ExecuteRows is Execute over pre-converted input rows (see InputRows).
// Input preparation stays outside the timed region either way — the paper
// reports runtime after caching all inputs.
func (cq *Compiled) ExecuteRows(ctx context.Context, rows map[string][]dataflow.Row, dctx *dataflow.Context) *Result {
	return cq.ExecuteRowsIndexed(ctx, rows, nil, dctx)
}

// ExecuteRowsIndexed is ExecuteRows with bound secondary indexes, keyed like
// rows (see MapIndexes). IndexScan nodes resolve spans against them; inputs
// without a usable entry fall back to full scans plus the span predicate.
func (cq *Compiled) ExecuteRowsIndexed(ctx context.Context, rows map[string][]dataflow.Row, idxs map[string]*index.Set, dctx *dataflow.Context) *Result {
	return cq.ExecuteRowsOpts(ctx, rows, idxs, dctx, ExecOptions{})
}

// ExecOptions carries per-execution observability hooks.
type ExecOptions struct {
	// Analysis, when non-nil, collects per-operator runtime statistics
	// (EXPLAIN ANALYZE) into the given collector; the Result carries it as
	// Result.Analyze. Nil leaves execution uninstrumented.
	Analysis *plan.Analysis
	// Span, when non-nil, receives per-statement execute child spans.
	Span *trace.Span
}

// ExecuteRowsOpts is ExecuteRowsIndexed with observability options.
func (cq *Compiled) ExecuteRowsOpts(ctx context.Context, rows map[string][]dataflow.Row, idxs map[string]*index.Set, dctx *dataflow.Context, opts ExecOptions) *Result {
	res := &Result{Strategy: cq.Strategy, Mat: cq.Mat, Analyze: opts.Analysis}
	func() {
		var err error
		defer func() {
			if err != nil && res.Err == nil {
				res.Err = err
			}
		}()
		defer recoverTo(&err, "execute")
		ex := exec.New(dctx)
		ex.SkewAware = cq.Strategy.skewAware()
		ex.Vectorize = !cq.Cfg.NoVectorize
		ex.Indexes = idxs
		ex.Analysis = opts.Analysis
		for name, r := range rows {
			ex.BindRows(name, r)
		}
		cq.runOn(ctx, ex, res, opts.Span)
	}()
	res.Metrics = dctx.Metrics.Snapshot()
	return res
}

// runOn evaluates the compiled plans on an existing executor. Pipelines use
// it to share one executor (and therefore the bindings of prior steps'
// outputs) across the steps of a run. sp, when non-nil, receives one child
// span per executed statement.
func (cq *Compiled) runOn(ctx context.Context, ex *exec.Executor, res *Result, sp *trace.Span) {
	if cq.Strategy.IsShredded() {
		cq.executeShredded(ctx, ex, res, sp)
	} else {
		cq.executeStandard(ctx, ex, res, sp)
	}
}

func (cq *Compiled) executeStandard(ctx context.Context, ex *exec.Executor, res *Result, sp *trace.Span) {
	if err := ctx.Err(); err != nil {
		res.Err = err
		return
	}

	start := time.Now()
	ssp := sp.Child("execute plan")
	out, err := ex.Run(cq.Plan)
	if err == nil {
		out.Force() // charge trailing fused narrow work to the timed region
		err = out.Err()
	}
	ssp.End()
	res.Elapsed = time.Since(start)
	if err != nil {
		res.Err = err
		return
	}
	res.Output = out
}

func (cq *Compiled) executeShredded(ctx context.Context, ex *exec.Executor, res *Result, sp *trace.Span) {
	start := time.Now()
	outs := map[string]*dataflow.Dataset{}
	for _, st := range cq.Stmts {
		if err := ctx.Err(); err != nil {
			res.Elapsed = time.Since(start)
			res.Err = err
			return
		}
		ssp := sp.Child("execute " + st.Name)
		d, err := ex.Run(st.Plan)
		if err == nil {
			ex.Bind(st.Name, d) // forces once for all downstream consumers
			err = d.Err()
		}
		ssp.End()
		if err != nil {
			res.Elapsed = time.Since(start)
			res.Err = fmt.Errorf("assignment %s: %w", st.Name, err)
			return
		}
		outs[st.Name] = d
	}
	res.Shredded = outs
	res.Output = outs[cq.Mat.TopName]

	if cq.Strategy.unshreds() {
		if err := ctx.Err(); err != nil {
			res.Elapsed = time.Since(start)
			res.Err = err
			return
		}
		ssp := sp.Child("execute unshred")
		out, err := ex.Run(cq.Unshred)
		if err == nil {
			out.Force()
			err = out.Err()
		}
		ssp.End()
		res.Elapsed = time.Since(start)
		if err != nil {
			res.Err = err
			return
		}
		res.Output = out
		return
	}
	res.Elapsed = time.Since(start)
}

// OutputPlan returns the plan whose column schema matches the Output dataset
// Execute produces: the standard plan, the unshred plan, or the shredded
// program's top assignment.
func (cq *Compiled) OutputPlan() plan.Op {
	switch {
	case cq.Plan != nil:
		return cq.Plan
	case cq.Unshred != nil:
		return cq.Unshred
	default:
		for _, st := range cq.Stmts {
			if st.Name == cq.Mat.TopName {
				return st.Plan
			}
		}
	}
	return nil
}
