// Package biomed implements the paper's biomedical benchmark (Section 6): a
// synthetic stand-in for the ICGC datasets (the real data is access-gated —
// see docs/ARCHITECTURE.md, Substitutions) and the five-step end-to-end
// driver-gene pipeline E2E based on Zhang & Wang [47].
//
// Shapes mirror the paper's inputs: Occurrences is the two-level nested BN2
// (samples → mutations → candidate gene annotations, as produced by the
// Ensembl VEP), Network is the one-level nested BN1 (the STRING
// protein-protein network), and Samples/CopyNumber/SOImpact are the flat
// BF1/BF2/BF3 (SOImpact is the tiny Sequence Ontology score table).
package biomed

import (
	"fmt"
	"math/rand"

	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/runner"
	"github.com/trance-go/trance/internal/value"
)

// Schema types.
var (
	// CandidateType is one VEP consequence annotation.
	CandidateType = nrc.Tup("c_gene", nrc.IntT, "c_impact", nrc.StringT, "c_sift", nrc.RealT)
	// MutationType is one somatic mutation with its candidate effects. As in
	// the ICGC simple-somatic-mutation format, each mutation row carries its
	// donor sample ID redundantly.
	MutationType = nrc.Tup("m_sample", nrc.StringT, "m_id", nrc.IntT, "m_start", nrc.IntT,
		"m_candidates", nrc.BagOf(CandidateType))
	// OccurrencesType is BN2: two-level nested mutation occurrences.
	OccurrencesType = nrc.BagOf(nrc.Tup("o_sample", nrc.StringT,
		"o_mutations", nrc.BagOf(MutationType)))
	// NetworkType is BN1: one-level nested gene interaction network.
	NetworkType = nrc.BagOf(nrc.Tup("n_gene", nrc.IntT,
		"n_edges", nrc.BagOf(nrc.Tup("e_gene", nrc.IntT, "e_dist", nrc.RealT))))
	// SamplesType is BF1.
	SamplesType = nrc.BagOf(nrc.Tup("s_sample", nrc.StringT, "s_site", nrc.StringT))
	// CopyNumberType is BF2.
	CopyNumberType = nrc.BagOf(nrc.Tup("cn_sample", nrc.StringT, "cn_gene", nrc.IntT, "cn_copies", nrc.RealT))
	// SOImpactType is BF3.
	SOImpactType = nrc.BagOf(nrc.Tup("i_impact", nrc.StringT, "i_score", nrc.RealT))
)

// Env is the input environment of the pipeline.
func Env() nrc.Env {
	return nrc.Env{
		"Occurrences": OccurrencesType,
		"Network":     NetworkType,
		"Samples":     SamplesType,
		"CopyNumber":  CopyNumberType,
		"SOImpact":    SOImpactType,
	}
}

// Config sizes the synthetic dataset.
type Config struct {
	Samples            int
	MutationsPerSample int // average
	CandidatesPerMut   int // average
	Genes              int
	EdgesPerGene       int // average
	Seed               int64
}

// SmallConfig mirrors the paper's "small dataset" variant.
func SmallConfig() Config {
	return Config{Samples: 30, MutationsPerSample: 8, CandidatesPerMut: 3, Genes: 60, EdgesPerGene: 6, Seed: 11}
}

// FullConfig mirrors the paper's full dataset (scaled to the simulator).
func FullConfig() Config {
	return Config{Samples: 120, MutationsPerSample: 20, CandidatesPerMut: 4, Genes: 150, EdgesPerGene: 12, Seed: 11}
}

var impacts = []string{"HIGH", "MODERATE", "LOW", "MODIFIER"}
var sites = []string{"breast", "colon", "lung", "ovary", "prostate", "skin"}

// Generate builds the synthetic dataset deterministically.
func Generate(cfg Config) map[string]value.Bag {
	r := rand.New(rand.NewSource(cfg.Seed))

	occurrences := make(value.Bag, 0, cfg.Samples)
	samples := make(value.Bag, 0, cfg.Samples)
	var copyNumber value.Bag
	mutID := int64(0)
	for i := 0; i < cfg.Samples; i++ {
		sample := fmt.Sprintf("SA%05d", i+1)
		samples = append(samples, value.Tuple{sample, sites[i%len(sites)]})
		muts := value.Bag{}
		for j := 0; j < 1+r.Intn(2*cfg.MutationsPerSample); j++ {
			mutID++
			cands := value.Bag{}
			for k := 0; k < 1+r.Intn(2*cfg.CandidatesPerMut); k++ {
				cands = append(cands, value.Tuple{
					int64(1 + r.Intn(cfg.Genes)),
					impacts[r.Intn(len(impacts))],
					float64(r.Intn(100)) / 100,
				})
			}
			muts = append(muts, value.Tuple{sample, mutID, int64(r.Intn(1 << 20)), cands})
		}
		occurrences = append(occurrences, value.Tuple{sample, muts})
		// Copy number for a subset of genes per sample.
		for g := 1; g <= cfg.Genes; g++ {
			if r.Intn(3) == 0 {
				continue // missing copy-number call
			}
			copyNumber = append(copyNumber, value.Tuple{sample, int64(g), float64(r.Intn(5))})
		}
	}

	network := make(value.Bag, 0, cfg.Genes)
	for g := 1; g <= cfg.Genes; g++ {
		edges := value.Bag{}
		for e := 0; e < 1+r.Intn(2*cfg.EdgesPerGene); e++ {
			edges = append(edges, value.Tuple{
				int64(1 + r.Intn(cfg.Genes)),
				float64(1+r.Intn(999)) / 1000,
			})
		}
		network = append(network, value.Tuple{int64(g), edges})
	}

	soImpact := value.Bag{}
	for i, imp := range impacts {
		soImpact = append(soImpact, value.Tuple{imp, float64(len(impacts)-i) / float64(len(impacts))})
	}

	return map[string]value.Bag{
		"Occurrences": occurrences,
		"Network":     network,
		"Samples":     samples,
		"CopyNumber":  copyNumber,
		"SOImpact":    soImpact,
	}
}

// SelectiveBurden is a flat variant of the Step1 burden aggregation with two
// selective guards: only near-deleterious candidates (c_sift ≥ 0.9, ~10% of
// generated candidates) against impactful consequence classes (i_score ≥
// 0.5) contribute. The sift guard compiles to a residual selection above the
// SOImpact join and the score guard filters the join's other side — the
// shapes the rule-based optimizer's predicate pushdown targets
// (BenchmarkPushdownAblation measures the win on this query).
func SelectiveBurden() nrc.Expr {
	return nrc.SumByOf(
		nrc.ForIn("o", nrc.V("Occurrences"),
			nrc.ForIn("m", nrc.P(nrc.V("o"), "o_mutations"),
				nrc.ForIn("c", nrc.P(nrc.V("m"), "m_candidates"),
					nrc.ForIn("i", nrc.V("SOImpact"),
						nrc.IfThen(
							nrc.AndOf(
								nrc.EqOf(nrc.P(nrc.V("c"), "c_impact"), nrc.P(nrc.V("i"), "i_impact")),
								nrc.AndOf(
									nrc.GeOf(nrc.P(nrc.V("c"), "c_sift"), nrc.C(0.9)),
									nrc.GeOf(nrc.P(nrc.V("i"), "i_score"), nrc.C(0.5)))),
							nrc.SingOf(nrc.Record(
								"gene", nrc.P(nrc.V("c"), "c_gene"),
								"burden", nrc.MulOf(nrc.P(nrc.V("c"), "c_sift"), nrc.P(nrc.V("i"), "i_score"))))))))),
		[]string{"gene"}, []string{"burden"})
}

// Steps builds the five constituent queries of E2E.
//
// Step1 flattens the whole of Occurrences with nested joins (SOImpact at the
// candidate level, CopyNumber keyed by sample and gene), aggregates a hybrid
// burden score per gene, and regroups to nested output per sample.
//
// Step2 joins the Network with the first level of Step1's output — the
// data-explosion step of the paper (gene sets × network edges) — aggregating
// a network-propagated effect per hub gene.
//
// Steps 3–5 connect samples to tumour sites, aggregate per gene, and emit
// the final flat driver scores.
func Steps() []runner.PipelineStep {
	step1 := nrc.ForIn("o", nrc.V("Occurrences"),
		nrc.SingOf(nrc.Record(
			"sample", nrc.P(nrc.V("o"), "o_sample"),
			"genes", nrc.SumByOf(
				nrc.ForIn("m", nrc.P(nrc.V("o"), "o_mutations"),
					nrc.ForIn("c", nrc.P(nrc.V("m"), "m_candidates"),
						nrc.ForIn("i", nrc.V("SOImpact"),
							nrc.IfThen(nrc.EqOf(nrc.P(nrc.V("c"), "c_impact"), nrc.P(nrc.V("i"), "i_impact")),
								nrc.ForIn("cn", nrc.V("CopyNumber"),
									nrc.IfThen(
										nrc.AndOf(
											nrc.EqOf(nrc.P(nrc.V("cn"), "cn_sample"), nrc.P(nrc.V("m"), "m_sample")),
											nrc.EqOf(nrc.P(nrc.V("cn"), "cn_gene"), nrc.P(nrc.V("c"), "c_gene"))),
										nrc.SingOf(nrc.Record(
											"gene", nrc.P(nrc.V("c"), "c_gene"),
											"burden", nrc.MulOf(
												nrc.MulOf(nrc.P(nrc.V("c"), "c_sift"), nrc.P(nrc.V("i"), "i_score")),
												nrc.AddOf(nrc.P(nrc.V("cn"), "cn_copies"), nrc.C(0.01))),
										)))))))),
				[]string{"gene"}, []string{"burden"}),
		)))

	// The gene-set generator comes first so the shredded route localizes the
	// join to the genes dictionary (domain-elimination rule 1); the network
	// is flattened by an uncorrelated subquery joined on the edge gene.
	edges := nrc.ForIn("n", nrc.V("Network"),
		nrc.ForIn("e", nrc.P(nrc.V("n"), "n_edges"),
			nrc.SingOf(nrc.Record(
				"hub", nrc.P(nrc.V("n"), "n_gene"),
				"egene", nrc.P(nrc.V("e"), "e_gene"),
				"dist", nrc.P(nrc.V("e"), "e_dist"),
			))))
	step2 := nrc.ForIn("s1", nrc.V("Step1"),
		nrc.SingOf(nrc.Record(
			"sample", nrc.P(nrc.V("s1"), "sample"),
			"nodes", nrc.SumByOf(
				nrc.ForIn("g", nrc.P(nrc.V("s1"), "genes"),
					nrc.ForIn("ed", edges,
						nrc.IfThen(nrc.EqOf(nrc.P(nrc.V("g"), "gene"), nrc.P(nrc.V("ed"), "egene")),
							nrc.SingOf(nrc.Record(
								"gene", nrc.P(nrc.V("ed"), "hub"),
								"effect", nrc.MulOf(nrc.P(nrc.V("g"), "burden"), nrc.P(nrc.V("ed"), "dist")),
							))))),
				[]string{"gene"}, []string{"effect"}),
		)))

	step3 := nrc.SumByOf(
		nrc.ForIn("s2", nrc.V("Step2"),
			nrc.ForIn("bs", nrc.V("Samples"),
				nrc.IfThen(nrc.EqOf(nrc.P(nrc.V("bs"), "s_sample"), nrc.P(nrc.V("s2"), "sample")),
					nrc.ForIn("nd", nrc.P(nrc.V("s2"), "nodes"),
						nrc.SingOf(nrc.Record(
							"site", nrc.P(nrc.V("bs"), "s_site"),
							"gene", nrc.P(nrc.V("nd"), "gene"),
							"score", nrc.P(nrc.V("nd"), "effect"),
						)))))),
		[]string{"site", "gene"}, []string{"score"})

	step4 := nrc.SumByOf(
		nrc.ForIn("x", nrc.V("Step3"),
			nrc.SingOf(nrc.Record("gene", nrc.P(nrc.V("x"), "gene"), "score", nrc.P(nrc.V("x"), "score")))),
		[]string{"gene"}, []string{"score"})

	step5 := nrc.SumByOf(
		nrc.ForIn("x", nrc.V("Step4"),
			nrc.ForIn("n", nrc.V("Network"),
				nrc.IfThen(nrc.EqOf(nrc.P(nrc.V("n"), "n_gene"), nrc.P(nrc.V("x"), "gene")),
					nrc.SingOf(nrc.Record("gene", nrc.P(nrc.V("x"), "gene"), "final", nrc.P(nrc.V("x"), "score")))))),
		[]string{"gene"}, []string{"final"})

	return []runner.PipelineStep{
		{Name: "Step1", Query: step1},
		{Name: "Step2", Query: step2},
		{Name: "Step3", Query: step3},
		{Name: "Step4", Query: step4},
		{Name: "Step5", Query: step5},
	}
}
