package biomed

import (
	"testing"

	"github.com/trance-go/trance/internal/nrc"
	"github.com/trance-go/trance/internal/runner"
	"github.com/trance-go/trance/internal/value"
)

func TestGenerateShapes(t *testing.T) {
	data := Generate(SmallConfig())
	if len(data["Occurrences"]) != 30 || len(data["Samples"]) != 30 {
		t.Fatalf("sample counts wrong: %d occ, %d samples", len(data["Occurrences"]), len(data["Samples"]))
	}
	if len(data["SOImpact"]) != 4 {
		t.Fatalf("SOImpact should be tiny, got %d", len(data["SOImpact"]))
	}
	// Occurrences must be two-level nested.
	first := data["Occurrences"][0].(value.Tuple)
	muts := first[1].(value.Bag)
	if len(muts) == 0 {
		t.Fatal("sample without mutations")
	}
	if _, ok := muts[0].(value.Tuple)[3].(value.Bag); !ok {
		t.Fatal("mutations must carry candidate bags")
	}
}

func TestStepsTypeCheck(t *testing.T) {
	scope := Env()
	for _, st := range Steps() {
		ty, err := nrc.Check(st.Query, scope)
		if err != nil {
			t.Fatalf("%s: %v", st.Name, err)
		}
		scope[st.Name] = ty
	}
	// The final output must be flat (no unshredding needed — paper Fig. 9).
	if !nrc.IsFlatBag(scope["Step5"]) {
		t.Fatalf("Step5 must be flat, got %s", scope["Step5"])
	}
}

// oraclePipeline evaluates all steps with the local evaluator.
func oraclePipeline(t *testing.T, inputs map[string]value.Bag) value.Bag {
	t.Helper()
	scope := Env()
	var s *nrc.Scope
	for name, b := range inputs {
		s = s.Bind(name, b)
	}
	var last value.Value
	for _, st := range Steps() {
		ty, err := nrc.Check(st.Query, scope)
		if err != nil {
			t.Fatalf("%s: %v", st.Name, err)
		}
		last = nrc.Eval(st.Query, s)
		s = s.Bind(st.Name, last)
		scope[st.Name] = ty
	}
	return last.(value.Bag)
}

func TestPipelineStrategiesMatchOracle(t *testing.T) {
	cfg := SmallConfig()
	cfg.Samples = 8
	cfg.Genes = 20
	inputs := Generate(cfg)
	want := oraclePipeline(t, inputs)

	rcfg := runner.DefaultConfig()
	rcfg.Parallelism = 4
	for _, strat := range []runner.Strategy{runner.Standard, runner.SparkSQLStyle, runner.Shred} {
		res := runner.RunPipeline(Steps(), Env(), inputs, strat, rcfg)
		if res.Failed() {
			t.Fatalf("%s failed at step %d: %v", strat, res.FailedStep, res.Err)
		}
		if len(res.StepElapsed) != 5 {
			t.Fatalf("%s: want 5 step timings, got %d", strat, len(res.StepElapsed))
		}
		got := make(value.Bag, 0)
		for _, r := range res.Output.Collect() {
			got = append(got, value.Tuple(r))
		}
		if !approxEqualBags(got, want, 1e-9) {
			t.Fatalf("%s pipeline output differs from oracle:\n got %s\nwant %s",
				strat, value.Format(got), value.Format(want))
		}
	}
}

// approxEqualBags compares bags of flat tuples with a relative tolerance on
// floats: distributed sums accumulate in a different order than the local
// evaluator, so exact float equality cannot be expected.
func approxEqualBags(a, b value.Bag, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(v value.Value) string { return value.Key(v.(value.Tuple)[0]) }
	idx := map[string]value.Tuple{}
	for _, e := range b {
		idx[key(e)] = e.(value.Tuple)
	}
	for _, e := range a {
		at := e.(value.Tuple)
		bt, ok := idx[key(e)]
		if !ok || len(at) != len(bt) {
			return false
		}
		for i := range at {
			af, aIsF := at[i].(float64)
			bf, bIsF := bt[i].(float64)
			if aIsF && bIsF {
				diff := af - bf
				if diff < 0 {
					diff = -diff
				}
				scale := 1.0
				if bf > 1 || bf < -1 {
					scale = bf
					if scale < 0 {
						scale = -scale
					}
				}
				if diff > tol*scale {
					return false
				}
				continue
			}
			if !value.Equal(at[i], bt[i]) {
				return false
			}
		}
	}
	return true
}

func TestPipelineShredShufflesLess(t *testing.T) {
	inputs := Generate(SmallConfig())
	rcfg := runner.DefaultConfig()
	rcfg.BroadcastLimit = 0
	std := runner.RunPipeline(Steps(), Env(), inputs, runner.Standard, rcfg)
	shr := runner.RunPipeline(Steps(), Env(), inputs, runner.Shred, rcfg)
	if std.Failed() || shr.Failed() {
		t.Fatalf("pipeline failed: %v / %v", std.Err, shr.Err)
	}
	if shr.Metrics.ShuffleBytes >= std.Metrics.ShuffleBytes {
		t.Fatalf("shred should shuffle less on E2E: shred=%d standard=%d",
			shr.Metrics.ShuffleBytes, std.Metrics.ShuffleBytes)
	}
}
