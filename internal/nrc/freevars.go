package nrc

// FreeVarsProgram returns the free variables of a multi-step pipeline — the
// inputs it needs from the environment. Each step may consume the outputs of
// earlier steps; those names are not free. The catalog layer uses it to
// resolve a pipeline's datasets by name.
func FreeVarsProgram(steps []Assignment) map[string]bool {
	out := map[string]bool{}
	bound := map[string]bool{}
	for _, st := range steps {
		for v := range FreeVars(st.Expr) {
			if !bound[v] {
				out[v] = true
			}
		}
		bound[st.Name] = true
	}
	return out
}
