package nrc

import "github.com/trance-go/trance/internal/value"

// The builder functions construct AST nodes concisely; they are the public
// authoring surface for queries (see examples/).

// C builds a scalar constant. Go ints are widened to int64.
func C(v any) *Const {
	switch x := v.(type) {
	case int:
		return &Const{Val: int64(x)}
	case int64, float64, string, bool, value.Date:
		return &Const{Val: x}
	default:
		panic("nrc.C: unsupported constant type")
	}
}

// V references a variable.
func V(name string) *Var { return &Var{Name: name} }

// P is field projection e.field; extra fields chain: P(e, "a", "b") = e.a.b.
func P(e Expr, fields ...string) Expr {
	for _, f := range fields {
		e = &Proj{Tuple: e, Field: f}
	}
	return e
}

// Record builds a tuple constructor from alternating name, Expr pairs.
func Record(pairs ...any) *TupleCtor {
	if len(pairs)%2 != 0 {
		panic("nrc.Record: need name/expr pairs")
	}
	fs := make([]NamedExpr, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		fs = append(fs, NamedExpr{Name: pairs[i].(string), Expr: pairs[i+1].(Expr)})
	}
	return &TupleCtor{Fields: fs}
}

// SingOf builds the singleton bag {e}.
func SingOf(e Expr) *Sing { return &Sing{Elem: e} }

// EmptyOf builds the empty bag of the given element type.
func EmptyOf(elem Type) *Empty { return &Empty{ElemType: elem} }

// GetOf extracts the element of a singleton bag.
func GetOf(e Expr) *Get { return &Get{Bag: e} }

// ForIn builds "for v in src union body".
func ForIn(v string, src, body Expr) *For { return &For{Var: v, Source: src, Body: body} }

// UnionOf builds e1 ⊎ e2.
func UnionOf(l, r Expr) *Union { return &Union{L: l, R: r} }

// LetIn builds "let v := val in body".
func LetIn(v string, val, body Expr) *Let { return &Let{Var: v, Val: val, Body: body} }

// IfThen builds "if cond then e" (bag-typed, empty bag otherwise).
func IfThen(cond, then Expr) *If { return &If{Cond: cond, Then: then} }

// IfElse builds "if cond then t else e".
func IfElse(cond, then, els Expr) *If { return &If{Cond: cond, Then: then, Else: els} }

// Comparison builders.
func EqOf(l, r Expr) *Cmp { return &Cmp{Op: Eq, L: l, R: r} }
func NeOf(l, r Expr) *Cmp { return &Cmp{Op: Ne, L: l, R: r} }
func LtOf(l, r Expr) *Cmp { return &Cmp{Op: Lt, L: l, R: r} }
func LeOf(l, r Expr) *Cmp { return &Cmp{Op: Le, L: l, R: r} }
func GtOf(l, r Expr) *Cmp { return &Cmp{Op: Gt, L: l, R: r} }
func GeOf(l, r Expr) *Cmp { return &Cmp{Op: Ge, L: l, R: r} }

// Arithmetic builders.
func AddOf(l, r Expr) *Arith { return &Arith{Op: Add, L: l, R: r} }
func SubOf(l, r Expr) *Arith { return &Arith{Op: Sub, L: l, R: r} }
func MulOf(l, r Expr) *Arith { return &Arith{Op: Mul, L: l, R: r} }
func DivOf(l, r Expr) *Arith { return &Arith{Op: Div, L: l, R: r} }

// Boolean builders.
func NotOf(e Expr) *Not        { return &Not{E: e} }
func AndOf(l, r Expr) *BoolBin { return &BoolBin{And: true, L: l, R: r} }
func OrOf(l, r Expr) *BoolBin  { return &BoolBin{And: false, L: l, R: r} }

// DedupOf builds dedup(e).
func DedupOf(e Expr) *Dedup { return &Dedup{E: e} }

// GroupByOf builds groupBy_keys(e) with the group attribute named "group".
func GroupByOf(e Expr, keys ...string) *GroupBy {
	return &GroupBy{E: e, Keys: keys, GroupAs: "group"}
}

// SumByOf builds sumBy^values_keys(e).
func SumByOf(e Expr, keys []string, values []string) *SumBy {
	return &SumBy{E: e, Keys: keys, Values: values}
}

// MatLookupOf builds a lookup into a materialized dictionary.
func MatLookupOf(dict, label Expr) *MatLookup { return &MatLookup{Dict: dict, Label: label} }
