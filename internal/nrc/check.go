package nrc

import (
	"errors"
	"fmt"

	"github.com/trance-go/trance/internal/value"
)

// ExprError attaches the AST node at which type checking failed. Check wraps
// every error in one (tagging the innermost failing node), so layers that
// know source positions for nodes — internal/parse keeps a position map for
// parsed queries — can render caret diagnostics for type errors too. The
// message is unchanged; extract the node with errors.As.
type ExprError struct {
	Node Expr
	Err  error
}

func (e *ExprError) Error() string { return e.Err.Error() }

func (e *ExprError) Unwrap() error { return e.Err }

// Env maps names (inputs and prior assignments) to types.
type Env map[string]Type

// Check type-checks e against env, annotates every node with its type, and
// returns the root type.
func Check(e Expr, env Env) (Type, error) {
	c := &checker{}
	c.push()
	for k, v := range env {
		c.bind(k, v)
	}
	return c.check(e)
}

// CheckProgram checks each assignment in order, extending the environment
// with assignment results, and returns the type of every statement.
func CheckProgram(p *Program, env Env) (map[string]Type, error) {
	scope := Env{}
	for k, v := range env {
		scope[k] = v
	}
	out := map[string]Type{}
	for _, st := range p.Stmts {
		t, err := Check(st.Expr, scope)
		if err != nil {
			return nil, fmt.Errorf("assignment %s: %w", st.Name, err)
		}
		scope[st.Name] = t
		out[st.Name] = t
	}
	return out, nil
}

type checker struct {
	scopes []map[string]Type
}

func (c *checker) push()                    { c.scopes = append(c.scopes, map[string]Type{}) }
func (c *checker) pop()                     { c.scopes = c.scopes[:len(c.scopes)-1] }
func (c *checker) bind(name string, t Type) { c.scopes[len(c.scopes)-1][name] = t }
func (c *checker) lookup(name string) (Type, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if t, ok := c.scopes[i][name]; ok {
			return t, true
		}
	}
	return nil, false
}

func (c *checker) check(e Expr) (Type, error) {
	t, err := c.checkInner(e)
	if err != nil {
		// Tag the innermost failing node only: recursive calls come back
		// already wrapped, and the deepest node gives the sharpest position.
		var xe *ExprError
		if !errors.As(err, &xe) {
			err = &ExprError{Node: e, Err: err}
		}
		return nil, err
	}
	e.setType(t)
	return t, nil
}

func (c *checker) checkInner(e Expr) (Type, error) {
	switch x := e.(type) {
	case *Const:
		switch x.Val.(type) {
		case int64:
			return IntT, nil
		case float64:
			return RealT, nil
		case string:
			return StringT, nil
		case bool:
			return BoolT, nil
		case value.Date:
			return DateT, nil
		}
		return nil, fmt.Errorf("constant of unsupported type %T", x.Val)

	case *Var:
		t, ok := c.lookup(x.Name)
		if !ok {
			return nil, fmt.Errorf("unbound variable %q", x.Name)
		}
		return t, nil

	case *Proj:
		tt, err := c.check(x.Tuple)
		if err != nil {
			return nil, err
		}
		tup, ok := tt.(TupleType)
		if !ok {
			return nil, fmt.Errorf("projection .%s on non-tuple %s", x.Field, tt)
		}
		ft := tup.Lookup(x.Field)
		if ft == nil {
			return nil, fmt.Errorf("no field %q in %s", x.Field, tup)
		}
		return ft, nil

	case *TupleCtor:
		fs := make([]Field, len(x.Fields))
		for i, f := range x.Fields {
			ft, err := c.check(f.Expr)
			if err != nil {
				return nil, err
			}
			fs[i] = Field{Name: f.Name, Type: ft}
		}
		return TupleType{Fields: fs}, nil

	case *Sing:
		et, err := c.check(x.Elem)
		if err != nil {
			return nil, err
		}
		return BagType{Elem: et}, nil

	case *Empty:
		return BagType{Elem: x.ElemType}, nil

	case *Get:
		bt, err := c.check(x.Bag)
		if err != nil {
			return nil, err
		}
		b, ok := bt.(BagType)
		if !ok {
			return nil, fmt.Errorf("get on non-bag %s", bt)
		}
		return b.Elem, nil

	case *For:
		st, err := c.check(x.Source)
		if err != nil {
			return nil, err
		}
		b, ok := st.(BagType)
		if !ok {
			return nil, fmt.Errorf("for %s: source is not a bag: %s", x.Var, st)
		}
		c.push()
		c.bind(x.Var, b.Elem)
		bt, err := c.check(x.Body)
		c.pop()
		if err != nil {
			return nil, err
		}
		if _, ok := bt.(BagType); !ok {
			return nil, fmt.Errorf("for %s: body is not a bag: %s", x.Var, bt)
		}
		return bt, nil

	case *Union:
		lt, err := c.check(x.L)
		if err != nil {
			return nil, err
		}
		rt, err := c.check(x.R)
		if err != nil {
			return nil, err
		}
		if !TypesEqual(lt, rt) {
			return nil, fmt.Errorf("union of unequal types %s vs %s", lt, rt)
		}
		if _, ok := lt.(BagType); !ok {
			return nil, fmt.Errorf("union of non-bags %s", lt)
		}
		return lt, nil

	case *Let:
		vt, err := c.check(x.Val)
		if err != nil {
			return nil, err
		}
		c.push()
		c.bind(x.Var, vt)
		bt, err := c.check(x.Body)
		c.pop()
		return bt, err

	case *If:
		ct, err := c.check(x.Cond)
		if err != nil {
			return nil, err
		}
		if !TypesEqual(ct, BoolT) {
			return nil, fmt.Errorf("if condition is %s, not bool", ct)
		}
		tt, err := c.check(x.Then)
		if err != nil {
			return nil, err
		}
		if x.Else == nil {
			if _, ok := tt.(BagType); !ok {
				return nil, fmt.Errorf("if-then without else must be bag-typed, got %s", tt)
			}
			return tt, nil
		}
		et, err := c.check(x.Else)
		if err != nil {
			return nil, err
		}
		if !TypesEqual(tt, et) {
			return nil, fmt.Errorf("if branches differ: %s vs %s", tt, et)
		}
		return tt, nil

	case *Cmp:
		lt, err := c.check(x.L)
		if err != nil {
			return nil, err
		}
		rt, err := c.check(x.R)
		if err != nil {
			return nil, err
		}
		if !comparable(lt, rt) {
			return nil, fmt.Errorf("cannot compare %s %s %s", lt, x.Op, rt)
		}
		return BoolT, nil

	case *Arith:
		lt, err := c.check(x.L)
		if err != nil {
			return nil, err
		}
		rt, err := c.check(x.R)
		if err != nil {
			return nil, err
		}
		ln, lr := numeric(lt)
		rn, rr := numeric(rt)
		if !ln || !rn {
			return nil, fmt.Errorf("arithmetic %s on %s and %s", x.Op, lt, rt)
		}
		if lr || rr || x.Op == Div {
			return RealT, nil
		}
		return IntT, nil

	case *Not:
		t, err := c.check(x.E)
		if err != nil {
			return nil, err
		}
		if !TypesEqual(t, BoolT) {
			return nil, fmt.Errorf("not on %s", t)
		}
		return BoolT, nil

	case *BoolBin:
		lt, err := c.check(x.L)
		if err != nil {
			return nil, err
		}
		rt, err := c.check(x.R)
		if err != nil {
			return nil, err
		}
		if !TypesEqual(lt, BoolT) || !TypesEqual(rt, BoolT) {
			return nil, fmt.Errorf("boolean op on %s and %s", lt, rt)
		}
		return BoolT, nil

	case *Dedup:
		t, err := c.check(x.E)
		if err != nil {
			return nil, err
		}
		if !IsFlatBag(t) {
			return nil, fmt.Errorf("dedup requires a flat bag, got %s", t)
		}
		return t, nil

	case *GroupBy:
		t, err := c.check(x.E)
		if err != nil {
			return nil, err
		}
		tup, err := bagOfTuples(t, "groupBy")
		if err != nil {
			return nil, err
		}
		var keyFields, rest []Field
		for _, f := range tup.Fields {
			if contains(x.Keys, f.Name) {
				if !flatKey(f.Type) {
					return nil, fmt.Errorf("groupBy key %s is not flat: %s", f.Name, f.Type)
				}
				keyFields = append(keyFields, f)
			} else {
				rest = append(rest, f)
			}
		}
		if len(keyFields) != len(x.Keys) {
			return nil, fmt.Errorf("groupBy keys %v not all present in %s", x.Keys, tup)
		}
		out := append(append([]Field{}, keyFields...),
			Field{Name: x.GroupAs, Type: BagType{Elem: TupleType{Fields: rest}}})
		return BagType{Elem: TupleType{Fields: out}}, nil

	case *SumBy:
		t, err := c.check(x.E)
		if err != nil {
			return nil, err
		}
		tup, err := bagOfTuples(t, "sumBy")
		if err != nil {
			return nil, err
		}
		var out []Field
		for _, k := range x.Keys {
			ft := tup.Lookup(k)
			if ft == nil {
				return nil, fmt.Errorf("sumBy key %s missing in %s", k, tup)
			}
			if !flatKey(ft) {
				return nil, fmt.Errorf("sumBy key %s is not flat: %s", k, ft)
			}
			out = append(out, Field{Name: k, Type: ft})
		}
		for _, v := range x.Values {
			ft := tup.Lookup(v)
			if ft == nil {
				return nil, fmt.Errorf("sumBy value %s missing in %s", v, tup)
			}
			if n, _ := numeric(ft); !n {
				return nil, fmt.Errorf("sumBy value %s is not numeric: %s", v, ft)
			}
			out = append(out, Field{Name: v, Type: ft})
		}
		return BagType{Elem: TupleType{Fields: out}}, nil

	case *NewLabel:
		for _, f := range x.Capture {
			if _, err := c.check(f.Expr); err != nil {
				return nil, err
			}
		}
		return LabelT, nil

	case *MatchLabel:
		lt, err := c.check(x.Label)
		if err != nil {
			return nil, err
		}
		if !TypesEqual(lt, LabelT) {
			return nil, fmt.Errorf("match on non-label %s", lt)
		}
		if len(x.Params) != len(x.ParamTypes) {
			return nil, fmt.Errorf("match: %d params, %d types", len(x.Params), len(x.ParamTypes))
		}
		c.push()
		for i, p := range x.Params {
			c.bind(p, x.ParamTypes[i])
		}
		bt, err := c.check(x.Body)
		c.pop()
		return bt, err

	case *Lambda:
		c.push()
		c.bind(x.Param, LabelT)
		bt, err := c.check(x.Body)
		c.pop()
		if err != nil {
			return nil, err
		}
		b, ok := bt.(BagType)
		if !ok {
			return nil, fmt.Errorf("dictionary body must be a bag, got %s", bt)
		}
		elem, ok := b.Elem.(TupleType)
		if !ok {
			elem = TupleType{Fields: []Field{{Name: "_1", Type: b.Elem}}}
		}
		return DictType{Elem: elem}, nil

	case *Lookup:
		dt, err := c.check(x.Dict)
		if err != nil {
			return nil, err
		}
		d, ok := dt.(DictType)
		if !ok {
			return nil, fmt.Errorf("lookup on non-dictionary %s", dt)
		}
		lt, err := c.check(x.Label)
		if err != nil {
			return nil, err
		}
		if !TypesEqual(lt, LabelT) {
			return nil, fmt.Errorf("lookup with non-label key %s", lt)
		}
		return BagType{Elem: d.Elem}, nil

	case *MatLookup:
		dt, err := c.check(x.Dict)
		if err != nil {
			return nil, err
		}
		tup, err := bagOfTuples(dt, "matLookup")
		if err != nil {
			return nil, err
		}
		if len(tup.Fields) == 0 || !TypesEqual(tup.Fields[0].Type, LabelT) {
			return nil, fmt.Errorf("matLookup dictionary must start with a label column: %s", tup)
		}
		lt, err := c.check(x.Label)
		if err != nil {
			return nil, err
		}
		if !TypesEqual(lt, LabelT) {
			return nil, fmt.Errorf("matLookup with non-label key %s", lt)
		}
		return BagType{Elem: TupleType{Fields: tup.Fields[1:]}}, nil
	}
	return nil, fmt.Errorf("nrc: unknown expression %T", e)
}

func bagOfTuples(t Type, op string) (TupleType, error) {
	b, ok := t.(BagType)
	if !ok {
		return TupleType{}, fmt.Errorf("%s on non-bag %s", op, t)
	}
	tup, ok := b.Elem.(TupleType)
	if !ok {
		return TupleType{}, fmt.Errorf("%s on bag of non-tuples %s", op, t)
	}
	return tup, nil
}

func comparable(a, b Type) bool {
	if an, _ := numeric(a); an {
		if bn, _ := numeric(b); bn {
			return true
		}
	}
	return TypesEqual(a, b) && (IsScalar(a) || TypesEqual(a, LabelT))
}

func numeric(t Type) (isNumeric, isReal bool) {
	s, ok := t.(ScalarType)
	if !ok {
		return false, false
	}
	switch s.Kind {
	case Int:
		return true, false
	case Real:
		return true, true
	}
	return false, false
}

func flatKey(t Type) bool {
	switch t.(type) {
	case ScalarType, LabelType:
		return true
	}
	return false
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
