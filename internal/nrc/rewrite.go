package nrc

import "fmt"

// FreeVars returns the free variables of e.
func FreeVars(e Expr) map[string]bool {
	out := map[string]bool{}
	freeVars(e, map[string]bool{}, out)
	return out
}

func freeVars(e Expr, bound map[string]bool, out map[string]bool) {
	switch x := e.(type) {
	case nil:
	case *Const, *Empty:
	case *Var:
		if !bound[x.Name] {
			out[x.Name] = true
		}
	case *Proj:
		freeVars(x.Tuple, bound, out)
	case *TupleCtor:
		for _, f := range x.Fields {
			freeVars(f.Expr, bound, out)
		}
	case *Sing:
		freeVars(x.Elem, bound, out)
	case *Get:
		freeVars(x.Bag, bound, out)
	case *For:
		freeVars(x.Source, bound, out)
		withBound(bound, x.Var, func() { freeVars(x.Body, bound, out) })
	case *Union:
		freeVars(x.L, bound, out)
		freeVars(x.R, bound, out)
	case *Let:
		freeVars(x.Val, bound, out)
		withBound(bound, x.Var, func() { freeVars(x.Body, bound, out) })
	case *If:
		freeVars(x.Cond, bound, out)
		freeVars(x.Then, bound, out)
		if x.Else != nil {
			freeVars(x.Else, bound, out)
		}
	case *Cmp:
		freeVars(x.L, bound, out)
		freeVars(x.R, bound, out)
	case *Arith:
		freeVars(x.L, bound, out)
		freeVars(x.R, bound, out)
	case *Not:
		freeVars(x.E, bound, out)
	case *BoolBin:
		freeVars(x.L, bound, out)
		freeVars(x.R, bound, out)
	case *Dedup:
		freeVars(x.E, bound, out)
	case *GroupBy:
		freeVars(x.E, bound, out)
	case *SumBy:
		freeVars(x.E, bound, out)
	case *NewLabel:
		for _, f := range x.Capture {
			freeVars(f.Expr, bound, out)
		}
	case *MatchLabel:
		freeVars(x.Label, bound, out)
		old := map[string]bool{}
		for _, p := range x.Params {
			old[p] = bound[p]
			bound[p] = true
		}
		freeVars(x.Body, bound, out)
		for _, p := range x.Params {
			bound[p] = old[p]
		}
	case *Lambda:
		withBound(bound, x.Param, func() { freeVars(x.Body, bound, out) })
	case *Lookup:
		freeVars(x.Dict, bound, out)
		freeVars(x.Label, bound, out)
	case *MatLookup:
		freeVars(x.Dict, bound, out)
		freeVars(x.Label, bound, out)
	default:
		panic(fmt.Sprintf("nrc freeVars: unknown expression %T", e))
	}
}

func withBound(bound map[string]bool, name string, fn func()) {
	old := bound[name]
	bound[name] = true
	fn()
	bound[name] = old
}

// Copy deep-copies an expression tree. Types stored on the source nodes are
// carried over; structural rewrites that change typing must re-Check.
func Copy(e Expr) Expr {
	return Substitute(e, nil)
}

// Substitute returns a copy of e with free occurrences of each variable in
// subst replaced by (a copy of) its expression. Binders shadow as expected.
// Each copied node inherits the source node's stored type (when the copy has
// none of its own), so compiler stages that read types off rewritten
// fragments — e.g. the materializer flattening a tuple-typed head — keep
// working; a re-Check overrides them wherever the rewrite changed typing.
func Substitute(e Expr, subst map[string]Expr) Expr {
	out := substitute(e, subst)
	if out != nil && out.Type() == nil {
		if t := e.Type(); t != nil {
			SetType(out, t)
		}
	}
	return out
}

func substitute(e Expr, subst map[string]Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *Const:
		return &Const{Val: x.Val}
	case *Var:
		if r, ok := subst[x.Name]; ok {
			return Substitute(r, nil) // copy of the replacement
		}
		return &Var{Name: x.Name}
	case *Proj:
		return &Proj{Tuple: Substitute(x.Tuple, subst), Field: x.Field}
	case *TupleCtor:
		fs := make([]NamedExpr, len(x.Fields))
		for i, f := range x.Fields {
			fs[i] = NamedExpr{Name: f.Name, Expr: Substitute(f.Expr, subst)}
		}
		return &TupleCtor{Fields: fs}
	case *Sing:
		return &Sing{Elem: Substitute(x.Elem, subst)}
	case *Empty:
		return &Empty{ElemType: x.ElemType}
	case *Get:
		return &Get{Bag: Substitute(x.Bag, subst)}
	case *For:
		return &For{
			Var:    x.Var,
			Source: Substitute(x.Source, subst),
			Body:   Substitute(x.Body, without(subst, x.Var)),
		}
	case *Union:
		return &Union{L: Substitute(x.L, subst), R: Substitute(x.R, subst)}
	case *Let:
		return &Let{
			Var:  x.Var,
			Val:  Substitute(x.Val, subst),
			Body: Substitute(x.Body, without(subst, x.Var)),
		}
	case *If:
		return &If{
			Cond: Substitute(x.Cond, subst),
			Then: Substitute(x.Then, subst),
			Else: Substitute(x.Else, subst),
		}
	case *Cmp:
		return &Cmp{Op: x.Op, L: Substitute(x.L, subst), R: Substitute(x.R, subst)}
	case *Arith:
		return &Arith{Op: x.Op, L: Substitute(x.L, subst), R: Substitute(x.R, subst)}
	case *Not:
		return &Not{E: Substitute(x.E, subst)}
	case *BoolBin:
		return &BoolBin{And: x.And, L: Substitute(x.L, subst), R: Substitute(x.R, subst)}
	case *Dedup:
		return &Dedup{E: Substitute(x.E, subst)}
	case *GroupBy:
		return &GroupBy{E: Substitute(x.E, subst), Keys: append([]string{}, x.Keys...), GroupAs: x.GroupAs}
	case *SumBy:
		return &SumBy{
			E:      Substitute(x.E, subst),
			Keys:   append([]string{}, x.Keys...),
			Values: append([]string{}, x.Values...),
		}
	case *NewLabel:
		fs := make([]NamedExpr, len(x.Capture))
		for i, f := range x.Capture {
			fs[i] = NamedExpr{Name: f.Name, Expr: Substitute(f.Expr, subst)}
		}
		return &NewLabel{Site: x.Site, Capture: fs}
	case *MatchLabel:
		s := subst
		for _, p := range x.Params {
			s = without(s, p)
		}
		return &MatchLabel{
			Label:      Substitute(x.Label, subst),
			Site:       x.Site,
			Params:     append([]string{}, x.Params...),
			ParamTypes: append([]Type{}, x.ParamTypes...),
			Body:       Substitute(x.Body, s),
		}
	case *Lambda:
		return &Lambda{Param: x.Param, Body: Substitute(x.Body, without(subst, x.Param))}
	case *Lookup:
		return &Lookup{Dict: Substitute(x.Dict, subst), Label: Substitute(x.Label, subst)}
	case *MatLookup:
		return &MatLookup{Dict: Substitute(x.Dict, subst), Label: Substitute(x.Label, subst)}
	default:
		panic(fmt.Sprintf("nrc substitute: unknown expression %T", e))
	}
}

func without(subst map[string]Expr, name string) map[string]Expr {
	if subst == nil {
		return nil
	}
	if _, ok := subst[name]; !ok {
		return subst
	}
	out := make(map[string]Expr, len(subst))
	for k, v := range subst {
		if k != name {
			out[k] = v
		}
	}
	return out
}

// InlineLets replaces every let binding by substitution — the Normalize step
// of the materialization algorithm (paper Figure 5, line 3). NRC is pure, so
// inlining preserves semantics; it may duplicate work, which the plan-level
// common-subexpression handling tolerates at this scale.
func InlineLets(e Expr) Expr {
	e = Substitute(e, nil)
	return inlineLets(e)
}

func inlineLets(e Expr) Expr {
	if l, ok := e.(*Let); ok {
		val := inlineLets(l.Val)
		body := inlineLets(l.Body)
		return inlineLets(Substitute(body, map[string]Expr{l.Var: val}))
	}
	return mapChildren(e, inlineLets)
}

// MapChildren rebuilds e with fn applied to every direct child expression.
// Binders are not tracked; callers needing capture-avoidance must handle
// shadowing themselves.
func MapChildren(e Expr, fn func(Expr) Expr) Expr { return mapChildren(e, fn) }

// Children returns the direct child expressions of e.
func Children(e Expr) []Expr {
	var out []Expr
	mapChildren(e, func(c Expr) Expr {
		out = append(out, c)
		return c
	})
	return out
}

// mapChildren rebuilds e with fn applied to every direct child expression.
func mapChildren(e Expr, fn func(Expr) Expr) Expr {
	switch x := e.(type) {
	case *Const, *Var, *Empty, nil:
		return e
	case *Proj:
		return &Proj{Tuple: fn(x.Tuple), Field: x.Field}
	case *TupleCtor:
		fs := make([]NamedExpr, len(x.Fields))
		for i, f := range x.Fields {
			fs[i] = NamedExpr{Name: f.Name, Expr: fn(f.Expr)}
		}
		return &TupleCtor{Fields: fs}
	case *Sing:
		return &Sing{Elem: fn(x.Elem)}
	case *Get:
		return &Get{Bag: fn(x.Bag)}
	case *For:
		return &For{Var: x.Var, Source: fn(x.Source), Body: fn(x.Body)}
	case *Union:
		return &Union{L: fn(x.L), R: fn(x.R)}
	case *Let:
		return &Let{Var: x.Var, Val: fn(x.Val), Body: fn(x.Body)}
	case *If:
		var els Expr
		if x.Else != nil {
			els = fn(x.Else)
		}
		return &If{Cond: fn(x.Cond), Then: fn(x.Then), Else: els}
	case *Cmp:
		return &Cmp{Op: x.Op, L: fn(x.L), R: fn(x.R)}
	case *Arith:
		return &Arith{Op: x.Op, L: fn(x.L), R: fn(x.R)}
	case *Not:
		return &Not{E: fn(x.E)}
	case *BoolBin:
		return &BoolBin{And: x.And, L: fn(x.L), R: fn(x.R)}
	case *Dedup:
		return &Dedup{E: fn(x.E)}
	case *GroupBy:
		return &GroupBy{E: fn(x.E), Keys: x.Keys, GroupAs: x.GroupAs}
	case *SumBy:
		return &SumBy{E: fn(x.E), Keys: x.Keys, Values: x.Values}
	case *NewLabel:
		fs := make([]NamedExpr, len(x.Capture))
		for i, f := range x.Capture {
			fs[i] = NamedExpr{Name: f.Name, Expr: fn(f.Expr)}
		}
		return &NewLabel{Site: x.Site, Capture: fs}
	case *MatchLabel:
		return &MatchLabel{Label: fn(x.Label), Site: x.Site, Params: x.Params, ParamTypes: x.ParamTypes, Body: fn(x.Body)}
	case *Lambda:
		return &Lambda{Param: x.Param, Body: fn(x.Body)}
	case *Lookup:
		return &Lookup{Dict: fn(x.Dict), Label: fn(x.Label)}
	case *MatLookup:
		return &MatLookup{Dict: fn(x.Dict), Label: fn(x.Label)}
	default:
		panic(fmt.Sprintf("nrc mapChildren: unknown expression %T", e))
	}
}
